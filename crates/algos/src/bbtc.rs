//! Block-based triangle counting, in the style of BBTC (paper §5.1.4,
//! item 1: "improves load balancing in TC through better partitioning").
//!
//! The adjacency matrix is tiled into `B × B` vertex-range blocks. Each
//! edge `(u, v)` (forward-oriented, `u ∈ block_i`, `v ∈ block_j`) is
//! assigned to tile `(i, j)`, and tiles are processed as independent tasks:
//! for each edge of a tile, intersect the endpoints' forward lists. This
//! reproduces BBTC's strategy — fine-grained 2D tasks for load balance at
//! the cost of materializing a per-tile edge index (extra preprocessing and
//! lost streaming locality), which is why BBTC trails the other baselines
//! in Table 5.

use std::time::{Duration, Instant};

use rayon::prelude::*;

use lotus_graph::UndirectedCsr;

use crate::intersect::count_merge;
use crate::preprocess::degree_order_and_orient;

/// End-to-end result of a block-based run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BbtcResult {
    /// Total triangles.
    pub triangles: u64,
    /// Preprocessing time (degree ordering + tile construction).
    pub preprocess: Duration,
    /// Counting time.
    pub count: Duration,
    /// Number of non-empty tiles processed.
    pub tiles: usize,
}

impl BbtcResult {
    /// End-to-end duration.
    pub fn total_time(&self) -> Duration {
        self.preprocess + self.count
    }
}

/// Block-based counter configuration.
#[derive(Debug, Clone, Copy)]
pub struct BbtcCounter {
    /// Number of vertex-range blocks per matrix dimension.
    pub blocks: u32,
}

impl Default for BbtcCounter {
    fn default() -> Self {
        Self { blocks: 64 }
    }
}

impl BbtcCounter {
    /// Creates a counter with the given block grid size.
    pub fn new(blocks: u32) -> Self {
        assert!(blocks >= 1);
        Self { blocks }
    }

    /// Runs end-to-end: degree ordering, tile construction, counting.
    pub fn count(&self, graph: &UndirectedCsr) -> BbtcResult {
        let pre_start = Instant::now();
        let pre = degree_order_and_orient(graph);
        let forward = &pre.forward;
        let n = forward.num_vertices().max(1);
        let blocks = self.blocks.min(n);
        let block_size = n.div_ceil(blocks);

        // Bucket forward edges into 2D tiles.
        let tile_of = |u: u32, v: u32| -> usize {
            let bi = (u / block_size) as usize;
            let bj = (v / block_size) as usize;
            bi * blocks as usize + bj
        };
        let mut tiles: Vec<Vec<(u32, u32)>> = vec![Vec::new(); blocks as usize * blocks as usize];
        for v in 0..forward.num_vertices() {
            for &u in forward.neighbors(v) {
                tiles[tile_of(v, u)].push((v, u));
            }
        }
        tiles.retain(|t| !t.is_empty());
        let preprocess = pre_start.elapsed();

        let count_start = Instant::now();
        let triangles: u64 = tiles
            .par_iter()
            .map(|tile| {
                let mut local = 0u64;
                for &(v, u) in tile {
                    local += count_merge(forward.neighbors(v), forward.neighbors(u));
                }
                local
            })
            .sum();
        BbtcResult {
            triangles,
            preprocess,
            count: count_start.elapsed(),
            tiles: tiles.len(),
        }
    }
}

/// Convenience: triangle count only, default grid.
pub fn bbtc_count(graph: &UndirectedCsr) -> u64 {
    BbtcCounter::default().count(graph).triangles
}

#[cfg(test)]
mod tests {
    use super::*;
    use lotus_graph::builder::graph_from_edges;

    #[test]
    fn counts_k4() {
        let g = graph_from_edges([(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        assert_eq!(bbtc_count(&g), 4);
    }

    #[test]
    fn one_block_equals_many_blocks() {
        let g = lotus_gen::Rmat::new(9, 8).generate(51);
        let a = BbtcCounter::new(1).count(&g).triangles;
        let b = BbtcCounter::new(16).count(&g).triangles;
        let c = BbtcCounter::new(301).count(&g).triangles;
        assert_eq!(a, b);
        assert_eq!(b, c);
    }

    #[test]
    fn agrees_with_forward_on_rmat() {
        let g = lotus_gen::Rmat::new(10, 10).generate(61);
        assert_eq!(bbtc_count(&g), crate::forward::forward_count(&g));
    }

    #[test]
    fn blocks_larger_than_graph_are_clamped() {
        let g = graph_from_edges([(0, 1), (1, 2), (0, 2)]);
        let r = BbtcCounter::new(1000).count(&g);
        assert_eq!(r.triangles, 1);
        assert!(r.tiles >= 1);
    }

    #[test]
    fn tile_count_reported() {
        let g = lotus_gen::Rmat::new(8, 8).generate(3);
        let r = BbtcCounter::new(8).count(&g);
        assert!(r.tiles > 1 && r.tiles <= 64);
    }
}
