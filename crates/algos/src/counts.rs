//! Reference counters and triangle-derived graph metrics.
//!
//! [`brute_force_count`] is the independent correctness oracle used by the
//! test suite: a literal triple loop over vertex IDs, sharing no code with
//! the optimized algorithms. The clustering-coefficient helpers are the
//! canonical *application* of triangle counting (the paper's motivation
//! cites community detection and social-network analysis).

use lotus_graph::UndirectedCsr;

use crate::forward::per_vertex_counts;

/// Counts triangles by checking all vertex triples. O(|V|³) — only for
/// graphs of a few hundred vertices; panics above 2048 vertices to catch
/// accidental misuse in benchmarks.
pub fn brute_force_count(graph: &UndirectedCsr) -> u64 {
    let n = graph.num_vertices();
    assert!(
        n <= 2048,
        "brute force is O(V^3); graph too large ({n} vertices)"
    );
    let mut count = 0u64;
    for a in 0..n {
        for b in (a + 1)..n {
            if !graph.has_edge(a, b) {
                continue;
            }
            for c in (b + 1)..n {
                if graph.has_edge(a, c) && graph.has_edge(b, c) {
                    count += 1;
                }
            }
        }
    }
    count
}

/// Local clustering coefficient of every vertex:
/// `2·T(v) / (deg(v)·(deg(v)−1))`, 0 for degree < 2.
pub fn local_clustering_coefficients(graph: &UndirectedCsr) -> Vec<f64> {
    let tri = per_vertex_counts(graph);
    (0..graph.num_vertices())
        .map(|v| {
            let d = graph.degree(v) as u64;
            if d < 2 {
                0.0
            } else {
                2.0 * tri[v as usize] as f64 / (d * (d - 1)) as f64
            }
        })
        .collect()
}

/// Average local clustering coefficient (Watts–Strogatz definition).
pub fn average_clustering(graph: &UndirectedCsr) -> f64 {
    let c = local_clustering_coefficients(graph);
    if c.is_empty() {
        return 0.0;
    }
    c.iter().sum::<f64>() / c.len() as f64
}

/// Global transitivity: `3·triangles / wedges`, where a wedge is an
/// unordered path of length two.
pub fn transitivity(graph: &UndirectedCsr) -> f64 {
    let triangles = crate::forward::forward_count(graph);
    let wedges: u64 = (0..graph.num_vertices())
        .map(|v| {
            let d = graph.degree(v) as u64;
            d * d.saturating_sub(1) / 2
        })
        .sum();
    if wedges == 0 {
        0.0
    } else {
        3.0 * triangles as f64 / wedges as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lotus_graph::builder::graph_from_edges;

    #[test]
    fn brute_force_k4() {
        let g = graph_from_edges([(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        assert_eq!(brute_force_count(&g), 4);
    }

    #[test]
    fn brute_force_empty_and_tree() {
        assert_eq!(brute_force_count(&graph_from_edges(std::iter::empty())), 0);
        let tree = graph_from_edges([(0, 1), (0, 2), (1, 3), (1, 4)]);
        assert_eq!(brute_force_count(&tree), 0);
    }

    #[test]
    #[should_panic]
    fn brute_force_rejects_large_graphs() {
        let g = graph_from_edges((0..3000u32).map(|v| (v, v + 1)));
        let _ = brute_force_count(&g);
    }

    #[test]
    fn clique_clustering_is_one() {
        let g = graph_from_edges([(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        for c in local_clustering_coefficients(&g) {
            assert!((c - 1.0).abs() < 1e-12);
        }
        assert!((average_clustering(&g) - 1.0).abs() < 1e-12);
        assert!((transitivity(&g) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn star_clustering_is_zero() {
        let g = graph_from_edges((1..6).map(|v| (0, v)));
        assert_eq!(average_clustering(&g), 0.0);
        assert_eq!(transitivity(&g), 0.0);
    }

    #[test]
    fn bowtie_center_coefficient() {
        // Vertex 2 joins two triangles: deg 4, T(2)=2 → c = 2·2/(4·3) = 1/3.
        let g = graph_from_edges([(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4)]);
        let c = local_clustering_coefficients(&g);
        assert!((c[2] - 1.0 / 3.0).abs() < 1e-12);
        assert!((c[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn brute_force_matches_forward_on_random_graphs() {
        for seed in [3u64, 9, 27] {
            let g = lotus_gen::ErdosRenyi::new(120, 700).generate(seed);
            assert_eq!(brute_force_count(&g), crate::forward::forward_count(&g));
        }
    }
}
