//! DOULION approximate triangle counting (Tsourakakis et al., KDD'09;
//! paper §6.2).
//!
//! Sparsify the graph by keeping each edge independently with probability
//! `p`, count triangles exactly on the sparsified graph, and scale by
//! `1/p³`. An unbiased estimator whose variance shrinks as `p` grows —
//! the classic speed/accuracy dial for massive graphs, included here as
//! the approximate-TC representative the paper situates LOTUS against.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use lotus_graph::{EdgeList, UndirectedCsr};

use crate::forward::forward_count;

/// Result of a DOULION estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DoulionEstimate {
    /// Estimated triangle count (`sparse_count / p³`).
    pub estimate: f64,
    /// Exact triangle count of the sparsified graph.
    pub sparse_triangles: u64,
    /// Edges kept by the sparsifier.
    pub kept_edges: u64,
    /// The sampling probability used.
    pub p: f64,
}

impl DoulionEstimate {
    /// Rounded estimate.
    pub fn rounded(&self) -> u64 {
        self.estimate.round() as u64
    }
}

/// Runs DOULION: sparsify with keep-probability `p`, count, rescale.
///
/// # Panics
/// Panics unless `0 < p <= 1`.
pub fn doulion_estimate(graph: &UndirectedCsr, p: f64, seed: u64) -> DoulionEstimate {
    assert!(p > 0.0 && p <= 1.0, "p must be in (0, 1]");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut kept = Vec::new();
    for v in 0..graph.num_vertices() {
        for &u in graph.upper_neighbors(v) {
            if rng.gen::<f64>() < p {
                kept.push((v, u));
            }
        }
    }
    let kept_edges = kept.len() as u64;
    let mut el = EdgeList::from_pairs_with_vertices(kept, graph.num_vertices());
    el.canonicalize();
    let sparse = UndirectedCsr::from_canonical_edges(&el);
    let sparse_triangles = forward_count(&sparse);
    DoulionEstimate {
        estimate: sparse_triangles as f64 / (p * p * p),
        sparse_triangles,
        kept_edges,
        p,
    }
}

/// Averages `runs` independent DOULION estimates (variance reduction).
pub fn doulion_mean_estimate(graph: &UndirectedCsr, p: f64, runs: u32, seed: u64) -> f64 {
    assert!(runs > 0);
    (0..runs)
        .map(|i| doulion_estimate(graph, p, seed.wrapping_add(i as u64)).estimate)
        .sum::<f64>()
        / runs as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn p_one_is_exact() {
        let g = lotus_gen::Rmat::new(9, 8).generate(5);
        let exact = forward_count(&g);
        let est = doulion_estimate(&g, 1.0, 7);
        assert_eq!(est.rounded(), exact);
        assert_eq!(est.kept_edges, g.num_edges());
    }

    #[test]
    fn sparsifier_keeps_roughly_p_edges() {
        let g = lotus_gen::Rmat::new(11, 8).generate(5);
        let est = doulion_estimate(&g, 0.5, 11);
        let expected = g.num_edges() as f64 * 0.5;
        assert!(
            (est.kept_edges as f64 - expected).abs() < expected * 0.1,
            "kept {} expected ~{expected}",
            est.kept_edges
        );
    }

    #[test]
    fn estimate_is_close_on_triangle_rich_graph() {
        // Averaged estimator should land within ~15% on a large-count
        // graph with p = 0.5.
        let g = lotus_gen::Rmat::new(11, 16).generate(3);
        let exact = forward_count(&g) as f64;
        let est = doulion_mean_estimate(&g, 0.5, 5, 13);
        let rel = (est - exact).abs() / exact;
        assert!(rel < 0.15, "estimate {est} vs exact {exact} (rel {rel:.3})");
    }

    #[test]
    #[should_panic]
    fn rejects_zero_p() {
        let g = lotus_gen::Rmat::new(6, 4).generate(1);
        let _ = doulion_estimate(&g, 0.0, 1);
    }
}
