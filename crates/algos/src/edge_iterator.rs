//! Edge-iterator triangle counting (paper §2.2) — the GraphGrind-style
//! baseline of Table 5.
//!
//! For each edge `(u, v)`, count the common neighbours of the endpoints
//! over their *full* neighbour lists. Every triangle is discovered once per
//! edge (3 times total), so the sum is divided by 3. Degree ordering is
//! still applied end-to-end as in the paper's evaluation ("all algorithms
//! use degree ordering", §5.1.4): it shortens merge scans by putting hubs
//! at low IDs.

use std::time::{Duration, Instant};

use rayon::prelude::*;

use lotus_graph::UndirectedCsr;

use crate::intersect::IntersectKind;
use crate::preprocess::degree_order_and_orient;

/// End-to-end result of an edge-iterator run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeIteratorResult {
    /// Total triangles.
    pub triangles: u64,
    /// Preprocessing time (degree ordering).
    pub preprocess: Duration,
    /// Counting time.
    pub count: Duration,
}

impl EdgeIteratorResult {
    /// End-to-end duration.
    pub fn total_time(&self) -> Duration {
        self.preprocess + self.count
    }
}

/// Runs edge-iterator TC end-to-end with degree ordering.
pub fn edge_iterator_count_timed(
    graph: &UndirectedCsr,
    kernel: IntersectKind,
) -> EdgeIteratorResult {
    let pre_start = Instant::now();
    let pre = degree_order_and_orient(graph);
    let preprocess = pre_start.elapsed();

    let count_start = Instant::now();
    let g = &pre.graph;
    let triple: u64 = (0..g.num_vertices())
        .into_par_iter()
        .map(|v| {
            // Each undirected edge is visited once, at its higher endpoint.
            let mut local = 0u64;
            for &u in g.lower_neighbors(v) {
                local += kernel.count(g.neighbors(v), g.neighbors(u));
            }
            local
        })
        .sum();
    debug_assert_eq!(
        triple % 3,
        0,
        "each triangle must be counted exactly 3 times"
    );
    EdgeIteratorResult {
        triangles: triple / 3,
        preprocess,
        count: count_start.elapsed(),
    }
}

/// Convenience: triangle count only.
pub fn edge_iterator_count(graph: &UndirectedCsr) -> u64 {
    edge_iterator_count_timed(graph, IntersectKind::Merge).triangles
}

#[cfg(test)]
mod tests {
    use super::*;
    use lotus_graph::builder::graph_from_edges;

    #[test]
    fn counts_k4() {
        let g = graph_from_edges([(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        assert_eq!(edge_iterator_count(&g), 4);
    }

    #[test]
    fn counts_bowtie() {
        // Two triangles sharing vertex 2.
        let g = graph_from_edges([(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4)]);
        assert_eq!(edge_iterator_count(&g), 2);
    }

    #[test]
    fn empty_graph() {
        let g = graph_from_edges(std::iter::empty());
        assert_eq!(edge_iterator_count(&g), 0);
    }

    #[test]
    fn agrees_with_forward_on_rmat() {
        let g = lotus_gen::Rmat::new(9, 8).generate(23);
        assert_eq!(edge_iterator_count(&g), crate::forward::forward_count(&g));
    }

    #[test]
    fn kernels_agree() {
        let g = lotus_gen::Rmat::new(8, 6).generate(5);
        let want = edge_iterator_count(&g);
        for k in IntersectKind::ALL {
            assert_eq!(edge_iterator_count_timed(&g, k).triangles, want);
        }
    }
}
