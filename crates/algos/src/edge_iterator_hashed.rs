//! Edge-iterator-hashed triangle counting (Schank & Wagner; paper §6.1):
//! the edge iterator with a hash container per vertex replacing the merge
//! join ("uses a hash container to identify the common neighbours of the
//! endpoints of each node").

use std::time::{Duration, Instant};

use rayon::prelude::*;

use lotus_graph::UndirectedCsr;

use crate::intersect::hash::HashSide;
use crate::preprocess::degree_order_and_orient;

/// End-to-end result of an edge-iterator-hashed run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeIteratorHashedResult {
    /// Total triangles.
    pub triangles: u64,
    /// Preprocessing time.
    pub preprocess: Duration,
    /// Counting time.
    pub count: Duration,
}

impl EdgeIteratorHashedResult {
    /// End-to-end duration.
    pub fn total_time(&self) -> Duration {
        self.preprocess + self.count
    }
}

/// Runs edge-iterator-hashed end-to-end with degree ordering.
pub fn edge_iterator_hashed_timed(graph: &UndirectedCsr) -> EdgeIteratorHashedResult {
    let pre_start = Instant::now();
    let pre = degree_order_and_orient(graph);
    let preprocess = pre_start.elapsed();

    let count_start = Instant::now();
    let g = &pre.graph;
    let triple: u64 = (0..g.num_vertices())
        .into_par_iter()
        .fold(
            || (HashSide::<u32>::new(), 0u64),
            |(mut side, mut total), v| {
                let nv = g.neighbors(v);
                let lower = g.lower_neighbors(v);
                if !lower.is_empty() && !nv.is_empty() {
                    side.fill(nv);
                    for &u in lower {
                        total += side.count(g.neighbors(u));
                    }
                }
                (side, total)
            },
        )
        .map(|(_, total)| total)
        .sum();
    debug_assert_eq!(triple % 3, 0);
    EdgeIteratorHashedResult {
        triangles: triple / 3,
        preprocess,
        count: count_start.elapsed(),
    }
}

/// Convenience: triangle count only.
pub fn edge_iterator_hashed_count(graph: &UndirectedCsr) -> u64 {
    edge_iterator_hashed_timed(graph).triangles
}

#[cfg(test)]
mod tests {
    use super::*;
    use lotus_graph::builder::graph_from_edges;

    #[test]
    fn counts_k4() {
        let g = graph_from_edges([(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        assert_eq!(edge_iterator_hashed_count(&g), 4);
    }

    #[test]
    fn agrees_with_plain_edge_iterator() {
        let g = lotus_gen::Rmat::new(9, 10).generate(81);
        assert_eq!(
            edge_iterator_hashed_count(&g),
            crate::edge_iterator::edge_iterator_count(&g)
        );
    }

    #[test]
    fn triangle_free_bipartite() {
        let g = graph_from_edges((0..10u32).flat_map(|a| (10..20u32).map(move |b| (a, b))));
        assert_eq!(edge_iterator_hashed_count(&g), 0);
    }
}
