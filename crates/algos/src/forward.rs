//! The Forward algorithm (paper Algorithm 1) — the baseline LOTUS is
//! measured against and the strategy used by GAP's triangle counter.
//!
//! After degree-descending relabeling, each vertex keeps only its lower-ID
//! neighbours (`N⁻`); for every `v` and every `u ∈ N⁻(v)` the count of
//! `|N⁻(v) ∩ N⁻(u)|` is accumulated. Each triangle `(a < b < c)` is found
//! exactly once, at `v = c`, `u = b`.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use rayon::prelude::*;

use lotus_graph::{Csr, UndirectedCsr};
use lotus_resilience::{fault_point, RunGuard, StopReason};

use crate::intersect::IntersectKind;
use crate::preprocess::degree_order_and_orient;

/// End-to-end result of a Forward run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ForwardResult {
    /// Total triangles.
    pub triangles: u64,
    /// Time spent relabeling and orienting.
    pub preprocess: Duration,
    /// Time spent counting.
    pub count: Duration,
}

impl ForwardResult {
    /// End-to-end duration (the paper reports end-to-end times, §5.1.4).
    pub fn total_time(&self) -> Duration {
        self.preprocess + self.count
    }
}

/// Configurable Forward counter.
#[derive(Debug, Clone, Copy, Default)]
pub struct ForwardCounter {
    /// Intersection kernel for the inner loop.
    pub kernel: IntersectKind,
    /// Skip degree ordering (count on the input ordering directly).
    /// The paper's §5.5 notes this is competitive for graphs with a very
    /// small number of very-high-degree hubs.
    pub skip_relabel: bool,
}

impl ForwardCounter {
    /// A counter with merge-join intersection and degree ordering.
    pub fn new() -> Self {
        Self::default()
    }

    /// Selects the intersection kernel.
    pub fn with_kernel(mut self, kernel: IntersectKind) -> Self {
        self.kernel = kernel;
        self
    }

    /// Toggles degree ordering.
    pub fn with_relabel(mut self, relabel: bool) -> Self {
        self.skip_relabel = !relabel;
        self
    }

    /// Runs end-to-end: preprocessing plus counting.
    pub fn count(&self, graph: &UndirectedCsr) -> ForwardResult {
        let pre_start = Instant::now();
        let forward = if self.skip_relabel {
            graph.forward_graph()
        } else {
            degree_order_and_orient(graph).forward
        };
        let preprocess = pre_start.elapsed();

        let count_start = Instant::now();
        let triangles = count_oriented(&forward, self.kernel);
        ForwardResult {
            triangles,
            preprocess,
            count: count_start.elapsed(),
        }
    }
}

/// Counts triangles of an already-oriented forward graph (each list holds
/// only lower-ID neighbours, sorted ascending).
pub fn count_oriented(forward: &Csr<u32>, kernel: IntersectKind) -> u64 {
    (0..forward.num_vertices())
        .into_par_iter()
        .map(|v| {
            let nv = forward.neighbors(v);
            rayon::sched::log_read(nv, "forward.n_minus");
            let mut local = 0u64;
            for &u in nv {
                local += kernel.count(nv, forward.neighbors(u));
            }
            local
        })
        .sum()
}

/// Guarded variant of [`count_oriented`]: polls the guard every 256
/// vertices. On a stop, returns the partial sum accumulated so far with
/// the reason.
///
/// # Errors
/// Returns the guard's stop reason together with the partial sum
/// accumulated before the stop.
pub fn count_oriented_guarded(
    forward: &Csr<u32>,
    kernel: IntersectKind,
    guard: &RunGuard,
) -> Result<u64, (StopReason, u64)> {
    let stopped = AtomicBool::new(false);
    let partial = (0..forward.num_vertices())
        .into_par_iter()
        .map(|v| {
            if stopped.load(Ordering::Relaxed) {
                return 0;
            }
            if v & 0xff == 0 && guard.should_stop().is_some() {
                stopped.store(true, Ordering::Relaxed);
                return 0;
            }
            let nv = forward.neighbors(v);
            rayon::sched::log_read(nv, "forward.n_minus");
            let mut local = 0u64;
            for &u in nv {
                local += kernel.count(nv, forward.neighbors(u));
            }
            local
        })
        .sum();
    match guard.should_stop() {
        Some(reason) if stopped.load(Ordering::Relaxed) => Err((reason, partial)),
        _ => Ok(partial),
    }
}

/// End-to-end guarded Forward count with degree ordering: orients the
/// graph (checking the guard before and after), then counts under the
/// guard. Partial counts from an interrupted counting loop are returned
/// with the reason; an interruption during orientation reports 0.
///
/// # Errors
/// Returns the guard's stop reason together with the partial count
/// (0 when orientation itself was interrupted).
pub fn forward_count_guarded(
    graph: &UndirectedCsr,
    guard: &RunGuard,
) -> Result<u64, (StopReason, u64)> {
    fault_point!(panic: "algos.forward.count");
    if let Some(reason) = guard.should_stop() {
        return Err((reason, 0));
    }
    let forward = degree_order_and_orient(graph).forward;
    if let Some(reason) = guard.should_stop() {
        return Err((reason, 0));
    }
    count_oriented_guarded(&forward, IntersectKind::default(), guard)
}

/// Convenience: end-to-end Forward count with default settings.
pub fn forward_count(graph: &UndirectedCsr) -> u64 {
    ForwardCounter::new().count(graph).triangles
}

/// Per-vertex triangle participation counts (each triangle increments all
/// three of its corners), computed with the Forward orientation. Used by
/// clustering-coefficient applications.
pub fn per_vertex_counts(graph: &UndirectedCsr) -> Vec<u64> {
    use std::sync::atomic::{AtomicU64, Ordering};
    let forward = graph.forward_graph();
    let counts: Vec<AtomicU64> = (0..graph.num_vertices())
        .map(|_| AtomicU64::new(0))
        .collect();
    (0..forward.num_vertices()).into_par_iter().for_each(|v| {
        let nv = forward.neighbors(v);
        for &u in nv {
            crate::intersect::merge::merge_for_each(nv, forward.neighbors(u), |w| {
                counts[v as usize].fetch_add(1, Ordering::Relaxed);
                counts[u as usize].fetch_add(1, Ordering::Relaxed);
                counts[w as usize].fetch_add(1, Ordering::Relaxed);
            });
        }
    });
    counts
        .into_iter()
        .map(std::sync::atomic::AtomicU64::into_inner)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lotus_graph::builder::graph_from_edges;

    fn k4() -> UndirectedCsr {
        graph_from_edges([(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)])
    }

    #[test]
    fn counts_k4() {
        assert_eq!(forward_count(&k4()), 4);
    }

    #[test]
    fn counts_triangle_with_tail() {
        let g = graph_from_edges([(0, 1), (1, 2), (0, 2), (2, 3)]);
        assert_eq!(forward_count(&g), 1);
    }

    #[test]
    fn counts_triangle_free_graph() {
        let g = graph_from_edges([(0, 1), (1, 2), (2, 3), (3, 0)]); // 4-cycle
        assert_eq!(forward_count(&g), 0);
    }

    #[test]
    fn all_kernels_agree() {
        let g = k4();
        for k in IntersectKind::ALL {
            let r = ForwardCounter::new().with_kernel(k).count(&g);
            assert_eq!(r.triangles, 4, "kernel {k:?}");
        }
    }

    #[test]
    fn skip_relabel_is_still_correct() {
        let g = k4();
        let r = ForwardCounter::new().with_relabel(false).count(&g);
        assert_eq!(r.triangles, 4);
    }

    #[test]
    fn per_vertex_counts_k4() {
        // Every vertex of K4 is in 3 triangles.
        assert_eq!(per_vertex_counts(&k4()), vec![3, 3, 3, 3]);
    }

    #[test]
    fn per_vertex_counts_sum_is_three_t() {
        let g = graph_from_edges([(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4)]);
        let pv = per_vertex_counts(&g);
        assert_eq!(pv.iter().sum::<u64>(), 3 * forward_count(&g));
    }

    #[test]
    fn result_total_time_adds_up() {
        let r = ForwardCounter::new().count(&k4());
        assert_eq!(r.total_time(), r.preprocess + r.count);
    }
}
