//! Forward-hashed triangle counting (Schank & Wagner; paper §6.1).
//!
//! The Forward algorithm with a hash container replacing the merge join:
//! for each vertex the lower-neighbour list is loaded into a hash set once,
//! then each neighbour's list probes it. Saves re-scanning `N⁻(v)` for
//! every neighbour at the cost of hashing instructions — the trade-off the
//! paper cites when arguing merge join is better for short lists (§4.4.3).

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use rayon::prelude::*;

use lotus_graph::{Csr, UndirectedCsr};
use lotus_resilience::{RunGuard, StopReason};

use crate::intersect::hash::HashSide;
use crate::preprocess::degree_order_and_orient;

/// End-to-end result of a forward-hashed run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ForwardHashedResult {
    /// Total triangles.
    pub triangles: u64,
    /// Preprocessing time.
    pub preprocess: Duration,
    /// Counting time.
    pub count: Duration,
}

impl ForwardHashedResult {
    /// End-to-end duration.
    pub fn total_time(&self) -> Duration {
        self.preprocess + self.count
    }
}

/// Counts triangles of an oriented forward graph with per-vertex hash sets.
///
/// The hash set is part of the rayon fold accumulator, so each worker
/// reuses one allocation across its whole vertex range.
pub fn count_oriented_hashed(forward: &Csr<u32>) -> u64 {
    (0..forward.num_vertices())
        .into_par_iter()
        .fold(
            || (HashSide::<u32>::new(), 0u64),
            |(mut side, mut total), v| {
                let nv = forward.neighbors(v);
                rayon::sched::log_read(nv, "forward_hashed.n_minus");
                if nv.len() >= 2 {
                    side.fill(nv);
                    for &u in nv {
                        total += side.count(forward.neighbors(u));
                    }
                }
                (side, total)
            },
        )
        .map(|(_, total)| total)
        .sum()
}

/// Runs forward-hashed TC end-to-end with degree ordering.
pub fn forward_hashed_count_timed(graph: &UndirectedCsr) -> ForwardHashedResult {
    let pre_start = Instant::now();
    let pre = degree_order_and_orient(graph);
    let preprocess = pre_start.elapsed();

    let count_start = Instant::now();
    let triangles = count_oriented_hashed(&pre.forward);
    ForwardHashedResult {
        triangles,
        preprocess,
        count: count_start.elapsed(),
    }
}

/// Guarded variant of [`count_oriented_hashed`]: polls the guard every
/// 256 vertices; each worker keeps its reusable hash set. On a stop,
/// returns the partial sum with the reason.
///
/// # Errors
/// Returns the guard's stop reason together with the partial sum
/// accumulated before the stop.
pub fn count_oriented_hashed_guarded(
    forward: &Csr<u32>,
    guard: &RunGuard,
) -> Result<u64, (StopReason, u64)> {
    let stopped = AtomicBool::new(false);
    let partial = (0..forward.num_vertices())
        .into_par_iter()
        .fold(
            || (HashSide::<u32>::new(), 0u64),
            |(mut side, mut total), v| {
                if stopped.load(Ordering::Relaxed) {
                    return (side, total);
                }
                if v & 0xff == 0 && guard.should_stop().is_some() {
                    stopped.store(true, Ordering::Relaxed);
                    return (side, total);
                }
                let nv = forward.neighbors(v);
                rayon::sched::log_read(nv, "forward_hashed.n_minus");
                if nv.len() >= 2 {
                    side.fill(nv);
                    for &u in nv {
                        total += side.count(forward.neighbors(u));
                    }
                }
                (side, total)
            },
        )
        .map(|(_, total)| total)
        .sum();
    match guard.should_stop() {
        Some(reason) if stopped.load(Ordering::Relaxed) => Err((reason, partial)),
        _ => Ok(partial),
    }
}

/// End-to-end guarded forward-hashed count: orientation (guard checked
/// before and after) plus guarded counting. This is the driver of the
/// memory-budget fallback path in `lotus-core`.
///
/// # Errors
/// Returns the guard's stop reason together with the partial count
/// (0 when orientation itself was interrupted).
pub fn forward_hashed_count_guarded(
    graph: &UndirectedCsr,
    guard: &RunGuard,
) -> Result<u64, (StopReason, u64)> {
    if let Some(reason) = guard.should_stop() {
        return Err((reason, 0));
    }
    let forward = degree_order_and_orient(graph).forward;
    if let Some(reason) = guard.should_stop() {
        return Err((reason, 0));
    }
    count_oriented_hashed_guarded(&forward, guard)
}

/// Convenience: triangle count only.
pub fn forward_hashed_count(graph: &UndirectedCsr) -> u64 {
    forward_hashed_count_timed(graph).triangles
}

#[cfg(test)]
mod tests {
    use super::*;
    use lotus_graph::builder::graph_from_edges;

    #[test]
    fn counts_k4() {
        let g = graph_from_edges([(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        assert_eq!(forward_hashed_count(&g), 4);
    }

    #[test]
    fn counts_petersen_graph() {
        // The Petersen graph is triangle-free.
        let outer = (0..5).map(|i| (i, (i + 1) % 5));
        let spokes = (0..5).map(|i| (i, i + 5));
        let inner = (0..5).map(|i| (i + 5, (i + 2) % 5 + 5));
        let g = graph_from_edges(outer.chain(spokes).chain(inner));
        assert_eq!(forward_hashed_count(&g), 0);
    }

    #[test]
    fn agrees_with_forward_on_rmat() {
        let g = lotus_gen::Rmat::new(9, 10).generate(31);
        assert_eq!(forward_hashed_count(&g), crate::forward::forward_count(&g));
    }
}
