//! A minimal FxHash-style hasher for integer keys.
//!
//! The default SipHash tables are a known bottleneck for hot integer-keyed
//! sets (Rust Performance Book, "Hashing"); rustc's Fx multiplicative hash
//! is the standard fast replacement. The crates-io `rustc-hash` package is
//! not on the approved dependency list, so the (tiny, well-known) algorithm
//! is reimplemented here.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative word-at-a-time hasher (the rustc `FxHasher` algorithm).
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline(always)]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline(always)]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            self.add(u64::from_le_bytes(word));
        }
    }

    #[inline(always)]
    fn write_u32(&mut self, n: u32) {
        self.add(n as u64);
    }

    #[inline(always)]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline(always)]
    fn write_u16(&mut self, n: u16) {
        self.add(n as u64);
    }

    #[inline(always)]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;
/// Fast integer-keyed hash set.
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;
/// Fast integer-keyed hash map.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_basics() {
        let mut s: FxHashSet<u32> = FxHashSet::default();
        for i in 0..1000u32 {
            s.insert(i * 7);
        }
        assert_eq!(s.len(), 1000);
        assert!(s.contains(&63));
        assert!(!s.contains(&64));
    }

    #[test]
    fn map_basics() {
        let mut m: FxHashMap<u64, u64> = FxHashMap::default();
        m.insert(1, 10);
        m.insert(2, 20);
        assert_eq!(m[&1], 10);
        assert_eq!(m.get(&3), None);
    }

    #[test]
    fn hash_differs_for_different_keys() {
        use std::hash::BuildHasher;
        let b = FxBuildHasher::default();
        let h = |x: u32| b.hash_one(x);
        assert_ne!(h(1), h(2));
        assert_eq!(h(42), h(42));
    }

    #[test]
    fn byte_write_fallback() {
        let mut h = FxHasher::default();
        h.write(b"hello world, more than eight bytes");
        assert_ne!(h.finish(), 0);
    }
}
