//! GBBS-style triangle counting: the Forward algorithm with *nested*
//! parallelism (paper §5.1.4, item 4).
//!
//! GBBS parallelizes the intersection itself, splitting long neighbour
//! lists so a single hub's work is shared between workers. This matters for
//! load balance on skewed graphs: without it, the worker that draws the
//! densest hub becomes the straggler.

use std::time::{Duration, Instant};

use rayon::prelude::*;

use lotus_graph::{Csr, UndirectedCsr};

use crate::intersect::count_merge;
use crate::preprocess::degree_order_and_orient;

/// Neighbour lists at least this long have their per-neighbour loop run in
/// parallel. GBBS uses a comparable granularity cut-off to bound overhead.
const PAR_DEGREE_THRESHOLD: usize = 512;

/// End-to-end result of a GBBS-style run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GbbsResult {
    /// Total triangles.
    pub triangles: u64,
    /// Preprocessing time.
    pub preprocess: Duration,
    /// Counting time.
    pub count: Duration,
}

impl GbbsResult {
    /// End-to-end duration.
    pub fn total_time(&self) -> Duration {
        self.preprocess + self.count
    }
}

/// Counts triangles of an oriented forward graph with nested parallelism.
pub fn count_oriented_nested(forward: &Csr<u32>) -> u64 {
    (0..forward.num_vertices())
        .into_par_iter()
        .map(|v| {
            let nv = forward.neighbors(v);
            if nv.len() >= PAR_DEGREE_THRESHOLD {
                // Inner parallel loop: hubs split their neighbour scans.
                nv.par_iter()
                    .map(|&u| count_merge(nv, forward.neighbors(u)))
                    .sum()
            } else {
                let mut local = 0u64;
                for &u in nv {
                    local += count_merge(nv, forward.neighbors(u));
                }
                local
            }
        })
        .sum()
}

/// Runs GBBS-style TC end-to-end with degree ordering.
pub fn gbbs_count_timed(graph: &UndirectedCsr) -> GbbsResult {
    let pre_start = Instant::now();
    let pre = degree_order_and_orient(graph);
    let preprocess = pre_start.elapsed();

    let count_start = Instant::now();
    let triangles = count_oriented_nested(&pre.forward);
    GbbsResult {
        triangles,
        preprocess,
        count: count_start.elapsed(),
    }
}

/// Convenience: triangle count only.
pub fn gbbs_count(graph: &UndirectedCsr) -> u64 {
    gbbs_count_timed(graph).triangles
}

#[cfg(test)]
mod tests {
    use super::*;
    use lotus_graph::builder::graph_from_edges;

    #[test]
    fn counts_k4() {
        let g = graph_from_edges([(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        assert_eq!(gbbs_count(&g), 4);
    }

    #[test]
    fn agrees_with_forward_on_rmat() {
        let g = lotus_gen::Rmat::new(10, 12).generate(41);
        assert_eq!(gbbs_count(&g), crate::forward::forward_count(&g));
    }

    #[test]
    fn nested_path_is_exercised_by_clique() {
        // In a clique, high-ID vertices have forward lists longer than the
        // threshold, forcing the inner parallel branch.
        let n = PAR_DEGREE_THRESHOLD as u32 + 32;
        let edges = (0..n).flat_map(|u| ((u + 1)..n).map(move |v| (u, v)));
        let g = graph_from_edges(edges);
        let expected = (n as u64) * (n as u64 - 1) * (n as u64 - 2) / 6;
        assert_eq!(gbbs_count(&g), expected);
    }
}
