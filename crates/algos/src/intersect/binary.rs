//! Binary-search intersection.
//!
//! Probes the longer sorted list by binary search for each element of the
//! shorter list: O(|short| · log |long|). Wins when the list lengths are
//! very skewed — e.g. a short non-hub list against a huge hub list — which
//! is exactly the situation §3.3 of the paper identifies (and which also
//! reduces the fruitless hub-edge accesses measured in Table 1).

use lotus_graph::NeighborId;

/// Counts `|a ∩ b|` by binary-searching the longer slice.
#[inline]
pub fn count_binary<N: NeighborId>(a: &[N], b: &[N]) -> u64 {
    let (short, long) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    let mut count = 0u64;
    // Successive probes are ascending, so the searched window can shrink
    // from the left after each hit position.
    let mut lo = 0usize;
    for &x in short {
        match long[lo..].binary_search(&x) {
            Ok(pos) => {
                count += 1;
                lo += pos + 1;
            }
            Err(pos) => {
                lo += pos;
            }
        }
        if lo >= long.len() {
            break;
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intersect::testutil::{reference, sorted_list};

    #[test]
    fn skewed_lengths() {
        let short = [10u32, 500, 900];
        let long: Vec<u32> = (0..1000).collect();
        assert_eq!(count_binary(&short, &long), 3);
        assert_eq!(count_binary(&long, &short), 3);
    }

    #[test]
    fn window_shrinking_is_correct() {
        for seed in 0..30u64 {
            let a = sorted_list(seed, 10, 100);
            let b = sorted_list(seed * 31 + 7, 70, 100);
            assert_eq!(count_binary(&a, &b), reference(&a, &b), "seed {seed}");
        }
    }

    #[test]
    fn all_match() {
        let a = [5u32, 6, 7];
        let b: Vec<u32> = (0..100).collect();
        assert_eq!(count_binary(&a, &b), 3);
    }

    #[test]
    fn empty() {
        assert_eq!(count_binary::<u32>(&[], &[1, 2]), 0);
    }
}
