//! Dense-bitmap intersection.
//!
//! Latapy's new-vertex-listing approach (paper §6.1): mark one list's
//! elements in a bitmap over the vertex universe, probe with the other in
//! O(1) per element, then *unmark* (never memset the whole bitmap — that
//! would be O(|V|) per vertex). LOTUS's H2H array generalizes this idea
//! from "the edges of one vertex" to "all edges between hubs".

use lotus_graph::NeighborId;

/// Reusable bitmap over a fixed vertex universe.
#[derive(Debug, Clone)]
pub struct Bitmap {
    words: Vec<u64>,
}

impl Bitmap {
    /// Creates an all-zero bitmap covering `universe` vertex IDs.
    pub fn new(universe: usize) -> Self {
        Self {
            words: vec![0u64; universe.div_ceil(64)],
        }
    }

    /// Number of representable IDs.
    pub fn universe(&self) -> usize {
        self.words.len() * 64
    }

    /// Sets bit `i`.
    #[inline(always)]
    pub fn set(&mut self, i: usize) {
        self.words[i >> 6] |= 1u64 << (i & 63);
    }

    /// Clears bit `i`.
    #[inline(always)]
    pub fn clear(&mut self, i: usize) {
        self.words[i >> 6] &= !(1u64 << (i & 63));
    }

    /// Tests bit `i`.
    #[inline(always)]
    pub fn test(&self, i: usize) -> bool {
        (self.words[i >> 6] >> (i & 63)) & 1 != 0
    }

    /// Marks all elements of `items`.
    pub fn mark<N: NeighborId>(&mut self, items: &[N]) {
        for &x in items {
            self.set(x.index());
        }
    }

    /// Unmarks all elements of `items` (restores the all-zero invariant
    /// without an O(universe) clear).
    pub fn unmark<N: NeighborId>(&mut self, items: &[N]) {
        for &x in items {
            self.clear(x.index());
        }
    }

    /// Counts how many elements of `probe` are currently marked.
    #[inline]
    pub fn count_marked<N: NeighborId>(&self, probe: &[N]) -> u64 {
        #[cfg(feature = "telemetry")]
        lotus_telemetry::counters::add(lotus_telemetry::Counter::BitmapProbes, probe.len() as u64);
        probe.iter().filter(|x| self.test(x.index())).count() as u64
    }

    /// Convenience one-shot intersection: mark `a`, probe `b`, unmark `a`.
    pub fn count<N: NeighborId>(&mut self, a: &[N], b: &[N]) -> u64 {
        self.mark(a);
        let n = self.count_marked(b);
        self.unmark(a);
        #[cfg(feature = "telemetry")]
        {
            use lotus_telemetry::{counters, Counter};
            counters::incr(Counter::Intersections);
            counters::add(Counter::FruitlessIntersections, u64::from(n == 0));
        }
        n
    }

    /// True when no bit is set (test helper; O(universe/64)).
    pub fn is_all_zero(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intersect::testutil::{reference, sorted_list};

    #[test]
    fn bit_ops() {
        let mut b = Bitmap::new(100);
        assert!(!b.test(7));
        b.set(7);
        assert!(b.test(7));
        b.clear(7);
        assert!(!b.test(7));
        assert!(b.universe() >= 100);
    }

    #[test]
    fn one_shot_count_restores_zero() {
        let mut bm = Bitmap::new(300);
        for seed in 0..10u64 {
            let a = sorted_list(seed, 30, 300);
            let b = sorted_list(seed + 5, 50, 300);
            assert_eq!(bm.count(&a, &b), reference(&a, &b));
            assert!(bm.is_all_zero(), "bitmap leaked bits after count");
        }
    }

    #[test]
    fn u16_items() {
        let mut bm = Bitmap::new(1 << 16);
        assert_eq!(bm.count(&[1u16, 2, 3], &[2u16, 3, 4]), 2);
    }

    #[test]
    fn boundary_bits() {
        let mut b = Bitmap::new(128);
        b.set(63);
        b.set(64);
        b.set(127);
        assert!(b.test(63) && b.test(64) && b.test(127));
        assert!(!b.test(62) && !b.test(65) && !b.test(126));
    }
}
