//! Branch-free binary-search intersection (paper §6.3, citing Khuong &
//! Morin / Knuth).
//!
//! Data-dependent branches in binary search mispredict ~50% of the time;
//! the branch-free variant replaces the taken/not-taken decision with a
//! conditional base-pointer update that compiles to a conditional move.
//! Used by GPU-era TC work (reference 33 in the paper) and measured against the
//! other kernels in the `intersect` bench.

use lotus_graph::NeighborId;

/// Branch-free lower bound: index of the first element `>= x`.
///
/// The loop structure (halving a power-of-two window) has no
/// data-dependent branches; the compare feeds a select.
#[inline]
pub fn branchless_lower_bound<N: NeighborId>(hay: &[N], x: N) -> usize {
    if hay.is_empty() {
        return 0;
    }
    let mut base = 0usize;
    let mut size = hay.len();
    while size > 1 {
        let half = size / 2;
        // Conditional move: advance base when the probe is still below x.
        // SAFETY: the loop maintains `base + size <= hay.len()` — it holds
        // on entry (`base = 0`, `size = hay.len()`) and each iteration
        // either shrinks `size` by `half` or moves `half` from `size` to
        // `base`, leaving the sum unchanged. With `size > 1` and
        // `half = size / 2 >= 1`, the probe index satisfies
        // `base + half - 1 < base + size <= hay.len()`.
        debug_assert!(base + half - 1 < hay.len());
        let probe = unsafe { *hay.get_unchecked(base + half - 1) };
        base = if probe < x { base + half } else { base };
        size -= half;
    }
    base + usize::from(hay[base] < x)
}

/// Counts `|a ∩ b|` by branch-free binary search of the longer slice.
#[inline]
pub fn count_branchless<N: NeighborId>(a: &[N], b: &[N]) -> u64 {
    let (short, long) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    let mut count = 0u64;
    let mut from = 0usize;
    for &x in short {
        let rest = &long[from..];
        let pos = branchless_lower_bound(rest, x);
        if pos < rest.len() && rest[pos] == x {
            count += 1;
            from += pos + 1;
        } else {
            from += pos;
        }
        if from >= long.len() {
            break;
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intersect::testutil::{reference, sorted_list};

    #[test]
    fn lower_bound_matches_partition_point() {
        for seed in 0..20u64 {
            let hay = sorted_list(seed, 33, 200);
            for x in 0..200u32 {
                assert_eq!(
                    branchless_lower_bound(&hay, x),
                    hay.partition_point(|&y| y < x),
                    "seed {seed} x {x}"
                );
            }
        }
    }

    #[test]
    fn lower_bound_edge_cases() {
        assert_eq!(branchless_lower_bound::<u32>(&[], 5), 0);
        assert_eq!(branchless_lower_bound(&[3u32], 2), 0);
        assert_eq!(branchless_lower_bound(&[3u32], 3), 0);
        assert_eq!(branchless_lower_bound(&[3u32], 4), 1);
    }

    #[test]
    fn count_agrees_with_reference() {
        for seed in 0..30u64 {
            let a = sorted_list(seed, 25, 300);
            let b = sorted_list(seed.wrapping_mul(7) + 3, 90, 300);
            assert_eq!(count_branchless(&a, &b), reference(&a, &b), "seed {seed}");
            assert_eq!(count_branchless(&b, &a), reference(&a, &b));
        }
    }

    #[test]
    fn u16_inputs() {
        let a = [1u16, 4, 9];
        let b = [0u16, 4, 8, 9, 11];
        assert_eq!(count_branchless(&a, &b), 2);
    }
}
