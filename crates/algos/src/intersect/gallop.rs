//! Galloping (exponential-search) intersection.
//!
//! For each element of the shorter list, gallop forward in the longer list
//! by doubling steps, then binary-search the final window. Adaptive:
//! O(|short| · log(gap)) — degrades gracefully to merge-join behaviour on
//! similar-length lists and to binary-search behaviour on skewed ones.

use lotus_graph::NeighborId;

/// Finds the first index `>= x` in `hay[from..]`, galloping then bisecting.
#[inline]
fn gallop_lower_bound<N: NeighborId>(hay: &[N], from: usize, x: N) -> usize {
    let mut step = 1usize;
    let mut lo = from;
    let mut hi = from;
    while hi < hay.len() && hay[hi] < x {
        lo = hi;
        hi = hi.saturating_add(step).min(hay.len());
        step <<= 1;
    }
    lo + hay[lo..hi].partition_point(|&y| y < x)
}

/// Counts `|a ∩ b|` by galloping through the longer slice.
#[inline]
pub fn count_gallop<N: NeighborId>(a: &[N], b: &[N]) -> u64 {
    let (short, long) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    let mut count = 0u64;
    let mut pos = 0usize;
    for &x in short {
        pos = gallop_lower_bound(long, pos, x);
        if pos >= long.len() {
            break;
        }
        if long[pos] == x {
            count += 1;
            pos += 1;
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intersect::testutil::{reference, sorted_list};

    #[test]
    fn lower_bound_finds_first_geq() {
        let hay = [2u32, 4, 6, 8, 10];
        assert_eq!(gallop_lower_bound(&hay, 0, 5), 2);
        assert_eq!(gallop_lower_bound(&hay, 0, 6), 2);
        assert_eq!(gallop_lower_bound(&hay, 0, 1), 0);
        assert_eq!(gallop_lower_bound(&hay, 0, 11), 5);
        assert_eq!(gallop_lower_bound(&hay, 3, 9), 4);
    }

    #[test]
    fn agrees_with_reference() {
        for seed in 0..30u64 {
            let a = sorted_list(seed, 15, 200);
            let b = sorted_list(seed * 13 + 1, 120, 200);
            assert_eq!(count_gallop(&a, &b), reference(&a, &b), "seed {seed}");
        }
    }

    #[test]
    fn clustered_matches() {
        let a = [100u32, 101, 102];
        let b: Vec<u32> = (0..1000).collect();
        assert_eq!(count_gallop(&a, &b), 3);
    }

    #[test]
    fn empty_and_singleton() {
        assert_eq!(count_gallop::<u32>(&[], &[]), 0);
        assert_eq!(count_gallop(&[7u32], &[7]), 1);
        assert_eq!(count_gallop(&[7u32], &[8]), 0);
    }
}
