//! Hash-probe intersection.
//!
//! Used by the Forward-hashed algorithm (Schank & Wagner; paper §6.1):
//! insert one list into a hash set, probe with the other. The paper notes
//! hashing "imposes more instruction count per memory access, a higher
//! memory footprint, and a higher preprocessing time" (§5.7) — the
//! benchmark `intersect` quantifies that trade-off against merge join.

use lotus_graph::NeighborId;

use crate::fx::FxHashSet;

/// One-shot hash intersection: builds a set from the shorter slice,
/// probes with the longer. Prefer [`HashSide`] when one side is reused.
#[inline]
pub fn count_hash<N: NeighborId>(a: &[N], b: &[N]) -> u64 {
    let (short, long) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    let set: FxHashSet<N> = short.iter().copied().collect();
    long.iter().filter(|x| set.contains(x)).count() as u64
}

/// A reusable hashed side: build once per vertex, probe with each
/// neighbour's list (the forward-hashed inner loop).
#[derive(Debug, Default)]
pub struct HashSide<N> {
    set: FxHashSet<N>,
}

impl<N: NeighborId> HashSide<N> {
    /// Creates an empty side.
    pub fn new() -> Self {
        Self {
            set: FxHashSet::default(),
        }
    }

    /// Replaces the contents with `items` (reusing the allocation).
    pub fn fill(&mut self, items: &[N]) {
        self.set.clear();
        self.set.extend(items.iter().copied());
    }

    /// Counts how many elements of `probe` are in the side.
    #[inline]
    pub fn count(&self, probe: &[N]) -> u64 {
        probe.iter().filter(|x| self.set.contains(x)).count() as u64
    }

    /// Number of elements currently held.
    pub fn len(&self) -> usize {
        self.set.len()
    }

    /// Whether the side is empty.
    pub fn is_empty(&self) -> bool {
        self.set.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intersect::testutil::{reference, sorted_list};

    #[test]
    fn one_shot_agrees_with_reference() {
        for seed in 0..20u64 {
            let a = sorted_list(seed, 40, 150);
            let b = sorted_list(seed + 77, 60, 150);
            assert_eq!(count_hash(&a, &b), reference(&a, &b));
        }
    }

    #[test]
    fn reusable_side() {
        let mut side: HashSide<u32> = HashSide::new();
        side.fill(&[1, 3, 5, 7]);
        assert_eq!(side.len(), 4);
        assert_eq!(side.count(&[3, 4, 5]), 2);
        side.fill(&[10]);
        assert_eq!(side.count(&[3, 4, 5]), 0);
        assert_eq!(side.count(&[10]), 1);
        assert!(!side.is_empty());
    }

    #[test]
    fn u16_side() {
        let mut side: HashSide<u16> = HashSide::new();
        side.fill(&[2, 4]);
        assert_eq!(side.count(&[1, 2, 3, 4]), 2);
    }
}
