//! Linear merge-join intersection.
//!
//! The workhorse kernel: one pass over both sorted lists, O(|a| + |b|).
//! LOTUS uses merge join for its NNN phase because non-hub neighbour lists
//! are short (§4.4.3) and the streaming access pattern is prefetch-friendly.

use lotus_graph::NeighborId;

/// Records one merge-join's telemetry: the intersection itself, its
/// steps (total index advances), and whether it was fruitless. Compiled
/// out (together with the step arithmetic at the call sites) unless the
/// `telemetry` feature is on.
#[cfg(feature = "telemetry")]
#[inline]
fn record_merge(steps: u64, matches: u64) {
    use lotus_telemetry::{counters, Counter};
    counters::incr(Counter::Intersections);
    counters::add(Counter::MergeSteps, steps);
    counters::add(Counter::FruitlessIntersections, u64::from(matches == 0));
}

/// Counts `|a ∩ b|` by merging two sorted, duplicate-free slices.
#[inline]
pub fn count_merge<N: NeighborId>(a: &[N], b: &[N]) -> u64 {
    let mut i = 0;
    let mut j = 0;
    let mut count = 0u64;
    while i < a.len() && j < b.len() {
        let x = a[i];
        let y = b[j];
        // Branch structure matches the classic three-way merge; the
        // equality case is rare on sparse graphs, so test it last.
        if x < y {
            i += 1;
        } else if y < x {
            j += 1;
        } else {
            count += 1;
            i += 1;
            j += 1;
        }
    }
    #[cfg(feature = "telemetry")]
    record_merge((i + j) as u64, count);
    count
}

/// Merge-join that also invokes `on_match` for every common element
/// (used by per-vertex counting and the streaming extension).
#[inline]
pub fn merge_for_each<N: NeighborId>(a: &[N], b: &[N], mut on_match: impl FnMut(N)) -> u64 {
    let mut i = 0;
    let mut j = 0;
    let mut count = 0u64;
    while i < a.len() && j < b.len() {
        let x = a[i];
        let y = b[j];
        if x < y {
            i += 1;
        } else if y < x {
            j += 1;
        } else {
            on_match(x);
            count += 1;
            i += 1;
            j += 1;
        }
    }
    #[cfg(feature = "telemetry")]
    record_merge((i + j) as u64, count);
    count
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_overlap() {
        assert_eq!(count_merge(&[1u32, 3, 5, 7], &[2, 3, 5, 8]), 2);
    }

    #[test]
    fn identical_lists() {
        let a = [1u32, 2, 3, 4];
        assert_eq!(count_merge(&a, &a), 4);
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(count_merge::<u32>(&[], &[]), 0);
        assert_eq!(count_merge(&[1u32], &[]), 0);
    }

    #[test]
    fn for_each_collects_matches() {
        let mut got = Vec::new();
        let n = merge_for_each(&[1u32, 4, 6, 9], &[4, 5, 9], |m| got.push(m));
        assert_eq!(n, 2);
        assert_eq!(got, vec![4, 9]);
    }
}
