//! Neighbour-list intersection kernels.
//!
//! Triangle counting reduces to counting common elements of two sorted
//! neighbour lists; the kernel choice dominates the instruction mix
//! (paper §2.2, §6.3). Five kernels are provided:
//!
//! * [`merge`] — linear merge join; what LOTUS uses for its short non-hub
//!   lists ("prevents overheads imposed by other solutions", §4.4.3).
//! * [`binary`] — probe the longer list by binary search.
//! * [`gallop`] — exponential (galloping) search, adaptive to size skew.
//! * [`hash`] — probe a pre-built hash set (Forward-hashed style).
//! * [`bitmap`] — probe a dense bitmap (new-vertex-listing style).
//!
//! All kernels are generic over the stored neighbour width so they serve
//! both the 32-bit NHE lists and LOTUS's 16-bit HE lists.

pub mod binary;
pub mod bitmap;
pub mod branchless;
pub mod gallop;
pub mod hash;
pub mod merge;

pub use binary::count_binary;
pub use bitmap::Bitmap;
pub use branchless::count_branchless;
pub use gallop::count_gallop;
pub use hash::{count_hash, HashSide};
pub use merge::count_merge;

use lotus_graph::NeighborId;

/// Dynamic selector over the stateless intersection kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IntersectKind {
    /// Linear merge join (LOTUS's choice for short lists).
    #[default]
    Merge,
    /// Binary search of the longer list.
    Binary,
    /// Galloping search.
    Gallop,
    /// Branch-free binary search (§6.3).
    Branchless,
    /// Hash-set probe (builds the set per call; prefer
    /// [`hash::HashSide`] for amortized reuse).
    Hash,
}

impl IntersectKind {
    /// All stateless kernels, for sweeps.
    pub const ALL: [IntersectKind; 5] = [
        IntersectKind::Merge,
        IntersectKind::Binary,
        IntersectKind::Gallop,
        IntersectKind::Branchless,
        IntersectKind::Hash,
    ];

    /// Human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            IntersectKind::Merge => "merge",
            IntersectKind::Binary => "binary",
            IntersectKind::Gallop => "gallop",
            IntersectKind::Branchless => "branchless",
            IntersectKind::Hash => "hash",
        }
    }

    /// Counts `|a ∩ b|` with the selected kernel. Both inputs must be
    /// sorted ascending and duplicate-free.
    #[inline]
    pub fn count<N: NeighborId>(&self, a: &[N], b: &[N]) -> u64 {
        match self {
            IntersectKind::Merge => count_merge(a, b),
            IntersectKind::Binary => count_binary(a, b),
            IntersectKind::Gallop => count_gallop(a, b),
            IntersectKind::Branchless => count_branchless(a, b),
            IntersectKind::Hash => count_hash(a, b),
        }
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    use lotus_graph::NeighborId;

    /// Reference intersection via double loop (inputs sorted, distinct).
    pub fn reference<N: NeighborId>(a: &[N], b: &[N]) -> u64 {
        a.iter().filter(|x| b.contains(x)).count() as u64
    }

    /// Deterministic pseudo-random sorted distinct list.
    pub fn sorted_list(seed: u64, len: usize, universe: u32) -> Vec<u32> {
        let mut state = seed.wrapping_mul(0x2545F4914F6CDD1D).wrapping_add(1);
        let mut v: Vec<u32> = (0..len * 2)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state % universe as u64) as u32
            })
            .collect();
        v.sort_unstable();
        v.dedup();
        v.truncate(len);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::testutil::{reference, sorted_list};
    use super::*;

    #[test]
    fn kernels_agree_on_random_lists() {
        for seed in 0..20u64 {
            let a = sorted_list(seed, 50, 300);
            let b = sorted_list(seed + 100, 80, 300);
            let want = reference(&a, &b);
            for k in IntersectKind::ALL {
                assert_eq!(k.count(&a, &b), want, "kernel {k:?} seed {seed}");
            }
        }
    }

    #[test]
    fn kernels_handle_empty_and_disjoint() {
        let a: Vec<u32> = vec![];
        let b = vec![1u32, 2, 3];
        for k in IntersectKind::ALL {
            assert_eq!(k.count(&a, &b), 0);
            assert_eq!(k.count(&b, &a), 0);
            assert_eq!(k.count(&[10u32, 20], &[1, 2, 3]), 0);
        }
    }

    #[test]
    fn kernels_work_on_u16() {
        let a = vec![1u16, 5, 9, 200];
        let b = vec![5u16, 9, 10];
        for k in IntersectKind::ALL {
            assert_eq!(k.count(&a, &b), 2);
        }
    }

    #[test]
    fn names_are_distinct() {
        let names: std::collections::HashSet<_> = IntersectKind::ALL
            .iter()
            .map(super::IntersectKind::name)
            .collect();
        assert_eq!(names.len(), 5);
    }
}
