#![warn(missing_docs)]

//! Baseline triangle-counting algorithms and intersection kernels.
//!
//! Implements every comparator the paper evaluates against (§2.2, §5.1.4):
//!
//! * [`node_iterator`] — enumerate neighbour pairs per vertex, probe edges.
//! * [`edge_iterator`] — intersect endpoint lists per edge (the
//!   GraphGrind-style baseline).
//! * [`forward`] — the Forward algorithm (Algorithm 1 of the paper): degree
//!   ordering plus `N⁻ ∩ N⁻` intersections; the GAP-style baseline and
//!   LOTUS's direct point of comparison.
//! * [`forward_hashed`] — Forward with a hash container (Schank & Wagner).
//! * [`gbbs`] — Forward with nested (intra-intersection) parallelism, the
//!   GBBS-style baseline.
//! * [`bbtc`] — block-based TC in the style of BBTC (2D tiling of the
//!   adjacency for load balance).
//!
//! The [`intersect`] module provides the five neighbour-list intersection
//! kernels the paper's related work discusses (§2.2, §6.3): merge join,
//! binary search, galloping, hashing, and bitmap lookup.

pub mod bbtc;
pub mod counts;
pub mod doulion;
pub mod edge_iterator;
pub mod edge_iterator_hashed;
pub mod forward;
pub mod forward_hashed;
pub mod fx;
pub mod gbbs;
pub mod intersect;
pub mod new_vertex_listing;
pub mod node_iterator;
pub mod node_iterator_core;
pub mod preprocess;

pub use counts::brute_force_count;
pub use forward::forward_count;
pub use intersect::IntersectKind;
