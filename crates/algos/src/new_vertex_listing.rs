//! Latapy's new-vertex-listing algorithm (paper §6.1).
//!
//! The node-iterator improved for high-degree vertices: mark one vertex's
//! neighbourhood in a dense bitmap, then scan neighbours' lists probing
//! the bitmap in O(1) per entry. The paper highlights that LOTUS
//! generalizes this bitmap from "the edges of one vertex" to "all edges
//! between hubs" (the H2H array).

use std::time::{Duration, Instant};

use rayon::prelude::*;

use lotus_graph::UndirectedCsr;

use crate::intersect::Bitmap;
use crate::preprocess::degree_order_and_orient;

/// End-to-end result of a new-vertex-listing run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NewVertexListingResult {
    /// Total triangles.
    pub triangles: u64,
    /// Preprocessing time.
    pub preprocess: Duration,
    /// Counting time.
    pub count: Duration,
}

impl NewVertexListingResult {
    /// End-to-end duration.
    pub fn total_time(&self) -> Duration {
        self.preprocess + self.count
    }
}

/// Runs new-vertex-listing end-to-end with degree ordering. Each rayon
/// worker keeps one bitmap over the vertex universe (fold accumulator)
/// and unmarks after every vertex, so clears stay O(degree).
pub fn new_vertex_listing_timed(graph: &UndirectedCsr) -> NewVertexListingResult {
    let pre_start = Instant::now();
    let pre = degree_order_and_orient(graph);
    let forward = &pre.forward;
    let preprocess = pre_start.elapsed();

    let count_start = Instant::now();
    let universe = forward.num_vertices() as usize;
    let triangles: u64 = (0..forward.num_vertices())
        .into_par_iter()
        .fold(
            || (Bitmap::new(universe.max(1)), 0u64),
            |(mut bitmap, mut total), v| {
                let nv = forward.neighbors(v);
                if nv.len() >= 2 {
                    bitmap.mark(nv);
                    for &u in nv {
                        total += bitmap.count_marked(forward.neighbors(u));
                    }
                    bitmap.unmark(nv);
                }
                (bitmap, total)
            },
        )
        .map(|(_, total)| total)
        .sum();
    NewVertexListingResult {
        triangles,
        preprocess,
        count: count_start.elapsed(),
    }
}

/// Convenience: triangle count only.
pub fn new_vertex_listing_count(graph: &UndirectedCsr) -> u64 {
    new_vertex_listing_timed(graph).triangles
}

#[cfg(test)]
mod tests {
    use super::*;
    use lotus_graph::builder::graph_from_edges;

    #[test]
    fn counts_k4() {
        let g = graph_from_edges([(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        assert_eq!(new_vertex_listing_count(&g), 4);
    }

    #[test]
    fn agrees_with_forward_on_rmat() {
        let g = lotus_gen::Rmat::new(10, 8).generate(91);
        assert_eq!(
            new_vertex_listing_count(&g),
            crate::forward::forward_count(&g)
        );
    }

    #[test]
    fn empty_graph() {
        let g = graph_from_edges(std::iter::empty());
        assert_eq!(new_vertex_listing_count(&g), 0);
    }

    #[test]
    fn dense_hub_neighbourhood() {
        // A hub whose neighbours form a long path: exercises large marked
        // sets with partial overlap.
        let n = 200u32;
        let mut edges: Vec<(u32, u32)> = (1..n).map(|v| (0, v)).collect();
        edges.extend((1..n - 1).map(|v| (v, v + 1)));
        let g = graph_from_edges(edges);
        assert_eq!(new_vertex_listing_count(&g), (n - 2) as u64);
    }
}
