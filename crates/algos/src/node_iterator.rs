//! Node-iterator triangle counting (paper §2.2).
//!
//! For each vertex, enumerate pairs of neighbours and probe whether they
//! are connected. Restricting pairs to *upper* neighbours (`u, w > v`)
//! counts each triangle exactly once at its lowest-ID corner. O(Σ deg²·log)
//! — slow on skewed graphs, kept as an independent correctness oracle and
//! as the historical baseline the Forward algorithm improves on.

use rayon::prelude::*;

use lotus_graph::UndirectedCsr;

/// Counts triangles by enumerating upper-neighbour pairs per vertex.
pub fn node_iterator_count(graph: &UndirectedCsr) -> u64 {
    (0..graph.num_vertices())
        .into_par_iter()
        .map(|v| {
            let ups = graph.upper_neighbors(v);
            let mut local = 0u64;
            for (i, &u) in ups.iter().enumerate() {
                let nu = graph.neighbors(u);
                for &w in &ups[i + 1..] {
                    // Pairs are ascending, so (u, w) with u < w.
                    if nu.binary_search(&w).is_ok() {
                        local += 1;
                    }
                }
            }
            local
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lotus_graph::builder::graph_from_edges;

    #[test]
    fn counts_k4() {
        let g = graph_from_edges([(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        assert_eq!(node_iterator_count(&g), 4);
    }

    #[test]
    fn counts_two_disjoint_triangles() {
        let g = graph_from_edges([(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)]);
        assert_eq!(node_iterator_count(&g), 2);
    }

    #[test]
    fn star_has_no_triangles() {
        let g = graph_from_edges((1..20).map(|v| (0, v)));
        assert_eq!(node_iterator_count(&g), 0);
    }

    #[test]
    fn agrees_with_forward_on_random_graph() {
        let g = lotus_gen::Rmat::new(9, 8).generate(17);
        assert_eq!(node_iterator_count(&g), crate::forward::forward_count(&g));
    }
}
