//! Node-iterator-core triangle counting (Schank & Wagner; paper §6.1).
//!
//! "Prioritizes vertices with smaller degree and removes the vertex after
//! processing": equivalent to orienting every edge from earlier-peeled to
//! later-peeled endpoint and intersecting the *later-peeled* neighbour
//! lists, whose length is bounded by the graph's degeneracy. The paper
//! notes LOTUS's phase structure echoes this algorithm (count hub
//! triangles, remove hubs, count the rest).

use std::time::{Duration, Instant};

use rayon::prelude::*;

use lotus_graph::degeneracy::core_decomposition;
use lotus_graph::UndirectedCsr;

use crate::intersect::count_merge;

/// End-to-end result of a node-iterator-core run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeIteratorCoreResult {
    /// Total triangles.
    pub triangles: u64,
    /// The degeneracy of the graph (bounds every oriented list).
    pub degeneracy: u32,
    /// Preprocessing time (peeling + reorientation).
    pub preprocess: Duration,
    /// Counting time.
    pub count: Duration,
}

impl NodeIteratorCoreResult {
    /// End-to-end duration.
    pub fn total_time(&self) -> Duration {
        self.preprocess + self.count
    }
}

/// Runs node-iterator-core end-to-end.
pub fn node_iterator_core_timed(graph: &UndirectedCsr) -> NodeIteratorCoreResult {
    let pre_start = Instant::now();
    let cores = core_decomposition(graph);
    let relabeling = cores.peeling_relabeling();
    let peeled = relabeling.apply(graph);
    let preprocess = pre_start.elapsed();

    // Under the peeling relabeling, a vertex's *upper* neighbours are the
    // ones remaining when it is removed; their count is ≤ degeneracy.
    let count_start = Instant::now();
    let triangles = (0..peeled.num_vertices())
        .into_par_iter()
        .map(|v| {
            let ups = peeled.upper_neighbors(v);
            let mut local = 0u64;
            for &u in ups {
                local += count_merge(ups, peeled.upper_neighbors(u));
            }
            local
        })
        .sum();
    NodeIteratorCoreResult {
        triangles,
        degeneracy: cores.degeneracy,
        preprocess,
        count: count_start.elapsed(),
    }
}

/// Convenience: triangle count only.
pub fn node_iterator_core_count(graph: &UndirectedCsr) -> u64 {
    node_iterator_core_timed(graph).triangles
}

#[cfg(test)]
mod tests {
    use super::*;
    use lotus_graph::builder::graph_from_edges;

    #[test]
    fn counts_k4() {
        let g = graph_from_edges([(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        let r = node_iterator_core_timed(&g);
        assert_eq!(r.triangles, 4);
        assert_eq!(r.degeneracy, 3);
    }

    #[test]
    fn counts_star_plus_triangles() {
        let mut edges: Vec<(u32, u32)> = (1..50).map(|v| (0, v)).collect();
        edges.push((1, 2));
        edges.push((3, 4));
        let g = graph_from_edges(edges);
        assert_eq!(node_iterator_core_count(&g), 2);
    }

    #[test]
    fn agrees_with_forward_on_rmat() {
        let g = lotus_gen::Rmat::new(10, 10).generate(71);
        assert_eq!(
            node_iterator_core_count(&g),
            crate::forward::forward_count(&g)
        );
    }

    #[test]
    fn oriented_lists_bounded_by_degeneracy() {
        // The complexity argument behind the algorithm: work per edge is
        // O(degeneracy), far below max degree on skewed graphs.
        let g = lotus_gen::Rmat::new(10, 10).generate(72);
        let r = node_iterator_core_timed(&g);
        let max_degree = (0..g.num_vertices()).map(|v| g.degree(v)).max().unwrap();
        assert!(
            r.degeneracy < max_degree / 2,
            "{} vs {max_degree}",
            r.degeneracy
        );
    }
}
