//! Shared preprocessing for the baseline algorithms: degree ordering and
//! the forward (oriented) graph.
//!
//! Every comparator in the paper's evaluation "uses degree ordering to
//! accelerate TC" (§5.1.4) and times are end-to-end including this step, so
//! the pipeline records its own duration.

use std::time::{Duration, Instant};

use lotus_graph::{Csr, Relabeling, UndirectedCsr};

/// Output of baseline preprocessing: the relabeled symmetric graph, the
/// oriented forward graph (lower neighbours only), and timings.
#[derive(Debug, Clone)]
pub struct Preprocessed {
    /// Degree-ordered symmetric graph.
    pub graph: UndirectedCsr,
    /// Forward-oriented graph: `N⁻(v)` lists under the new ordering.
    pub forward: Csr<u32>,
    /// The relabeling that was applied.
    pub relabeling: Relabeling,
    /// Wall time of the whole preprocessing step.
    pub elapsed: Duration,
}

/// Relabels by descending degree and materializes the forward graph.
pub fn degree_order_and_orient(graph: &UndirectedCsr) -> Preprocessed {
    let start = Instant::now();
    let relabeling = Relabeling::degree_descending(&graph.degrees());
    let relabeled = relabeling.apply(graph);
    let forward = relabeled.forward_graph();
    Preprocessed {
        graph: relabeled,
        forward,
        relabeling,
        elapsed: start.elapsed(),
    }
}

/// Orients an already-ordered graph without relabeling (identity ordering).
pub fn orient_only(graph: &UndirectedCsr) -> Preprocessed {
    let start = Instant::now();
    let relabeling = Relabeling::identity(graph.num_vertices());
    let forward = graph.forward_graph();
    Preprocessed {
        graph: graph.clone(),
        forward,
        relabeling,
        elapsed: start.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lotus_graph::builder::graph_from_edges;

    #[test]
    fn degree_ordering_gives_hub_id_zero() {
        let g = graph_from_edges([(0, 4), (1, 4), (2, 4), (3, 4), (1, 2)]);
        let p = degree_order_and_orient(&g);
        assert_eq!(p.relabeling.new_id(4), 0);
        assert_eq!(p.graph.degree(0), 4);
        // Forward graph halves the entries.
        assert_eq!(p.forward.num_entries(), g.num_edges());
    }

    #[test]
    fn orient_only_keeps_ids() {
        let g = graph_from_edges([(0, 1), (1, 2)]);
        let p = orient_only(&g);
        assert_eq!(p.relabeling.new_id(2), 2);
        assert_eq!(p.forward.neighbors(2), &[1]);
    }

    #[test]
    fn hub_lists_in_forward_graph_contain_only_hubs() {
        // After descending-degree relabeling, a vertex's lower neighbours
        // all have higher-or-equal degree (paper §3.1's key setup).
        let g = graph_from_edges([(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (4, 0)]);
        let p = degree_order_and_orient(&g);
        for v in 0..p.graph.num_vertices() {
            for &u in p.forward.neighbors(v) {
                assert!(p.graph.degree(u) >= p.graph.degree(v) || u < v);
            }
        }
    }
}
