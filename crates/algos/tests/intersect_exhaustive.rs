//! Exhaustive agreement test for the intersection kernels.
//!
//! Enumerates *every* pair of sorted duplicate-free lists over a small
//! universe (each subset of `0..UNIVERSE` encoded as a bitmask) and checks
//! that all kernels — including the stateful bitmap — agree with the merge
//! join, whose count in turn equals the popcount of the mask intersection.
//! This covers every boundary shape the search kernels can hit: empty
//! inputs, singletons, full overlap, disjoint ranges, and all interleavings.

use lotus_algos::intersect::{Bitmap, IntersectKind};

const UNIVERSE: u32 = 7; // 2^7 subsets → 16 384 ordered pairs per width

fn subset(mask: u32) -> Vec<u32> {
    (0..UNIVERSE).filter(|&i| mask & (1 << i) != 0).collect()
}

#[test]
fn all_kernels_agree_exhaustively() {
    let mut bitmap = Bitmap::new(UNIVERSE as usize);
    for ma in 0..1u32 << UNIVERSE {
        let a = subset(ma);
        for mb in 0..1u32 << UNIVERSE {
            let b = subset(mb);
            let want = (ma & mb).count_ones() as u64;
            assert_eq!(
                IntersectKind::Merge.count(&a, &b),
                want,
                "merge {ma:b} {mb:b}"
            );
            for k in IntersectKind::ALL {
                assert_eq!(k.count(&a, &b), want, "{} {ma:b} {mb:b}", k.name());
            }
            assert_eq!(bitmap.count(&a, &b), want, "bitmap {ma:b} {mb:b}");
        }
    }
}

#[test]
fn all_kernels_agree_exhaustively_u16() {
    // Same sweep at the 16-bit width LOTUS uses for HE lists, on a
    // reduced universe to keep the quadratic sweep fast.
    const U: u32 = 5;
    let mut bitmap = Bitmap::new(U as usize);
    for ma in 0..1u32 << U {
        let a: Vec<u16> = (0..U)
            .filter(|&i| ma & (1 << i) != 0)
            .map(|i| i as u16)
            .collect();
        for mb in 0..1u32 << U {
            let b: Vec<u16> = (0..U)
                .filter(|&i| mb & (1 << i) != 0)
                .map(|i| i as u16)
                .collect();
            let want = (ma & mb).count_ones() as u64;
            for k in IntersectKind::ALL {
                assert_eq!(k.count(&a, &b), want, "{} {ma:b} {mb:b}", k.name());
            }
            assert_eq!(bitmap.count(&a, &b), want, "bitmap {ma:b} {mb:b}");
        }
    }
}
