//! Relative density of vertex subsets (paper §3.4).
//!
//! `RD_S = (|E'| / |V'|²) / (|E| / |V|²)` for the sub-graph induced by
//! `S ⊂ V`. For the hub set the paper reports an average of 1809× — the
//! observation that justifies the dense H2H bit array.

use lotus_graph::UndirectedCsr;

/// Number of edges of the sub-graph induced by `subset` (given as a
/// sorted, deduplicated vertex list).
pub fn induced_edges(graph: &UndirectedCsr, subset: &[u32]) -> u64 {
    let mut member = vec![false; graph.num_vertices() as usize];
    for &v in subset {
        member[v as usize] = true;
    }
    let mut edges = 0u64;
    for &v in subset {
        for &u in graph.upper_neighbors(v) {
            if member[u as usize] {
                edges += 1;
            }
        }
    }
    edges
}

/// Relative density of the sub-graph induced by `subset`.
pub fn relative_density(graph: &UndirectedCsr, subset: &[u32]) -> f64 {
    let nv = graph.num_vertices() as f64;
    let ne = graph.num_edges() as f64;
    let sv = subset.len() as f64;
    if nv == 0.0 || ne == 0.0 || sv == 0.0 {
        return 0.0;
    }
    let se = induced_edges(graph, subset) as f64;
    (se / (sv * sv)) / (ne / (nv * nv))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lotus_graph::builder::graph_from_edges;

    #[test]
    fn induced_edges_of_triangle_in_larger_graph() {
        let g = graph_from_edges([(0, 1), (1, 2), (0, 2), (2, 3), (3, 4)]);
        assert_eq!(induced_edges(&g, &[0, 1, 2]), 3);
        assert_eq!(induced_edges(&g, &[3, 4]), 1);
        assert_eq!(induced_edges(&g, &[0, 4]), 0);
    }

    #[test]
    fn whole_graph_has_relative_density_one() {
        let g = graph_from_edges([(0, 1), (1, 2), (0, 2), (2, 3)]);
        let all: Vec<u32> = (0..g.num_vertices()).collect();
        assert!((relative_density(&g, &all) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn dense_core_has_high_relative_density() {
        // Clique of 4 among 100 otherwise sparse vertices.
        let mut edges = vec![(0u32, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)];
        edges.extend((4..100).map(|v| (v, (v + 1) % 100)));
        let g = graph_from_edges(edges);
        let rd = relative_density(&g, &[0, 1, 2, 3]);
        assert!(rd > 30.0, "expected dense core, got {rd}");
    }

    #[test]
    fn empty_subset_is_zero() {
        let g = graph_from_edges([(0, 1)]);
        assert_eq!(relative_density(&g, &[]), 0.0);
    }
}
