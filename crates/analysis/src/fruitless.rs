//! Fruitless-search measurement (paper §3.3, Table 1 column 8).
//!
//! For a non-hub vertex `v` with no hub neighbours, any hub entry touched
//! while intersecting `N⁻(v)` with its neighbours' lists can never yield a
//! triangle (`N_v ∩ N_u = N_v ∩ (N_u \ Hubs)`). The paper measures, with
//! merge-join intersection, what fraction of edge accesses made while
//! processing such vertices point at hubs — 53.3% on average — and LOTUS's
//! NNN phase eliminates them by construction.

use rayon::prelude::*;

use lotus_graph::{Csr, UndirectedCsr};

/// Access tally of a fruitless-search measurement.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FruitlessSearches {
    /// Edge entries touched while processing hub-free non-hub vertices.
    pub accesses: u64,
    /// Of those, entries that point at hub vertices.
    pub hub_accesses: u64,
}

impl FruitlessSearches {
    /// Fraction of avoidable (hub-pointing) accesses.
    pub fn fraction(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.hub_accesses as f64 / self.accesses as f64
        }
    }
}

/// Merge join that counts element touches, split by hub/non-hub target.
fn merge_accesses(a: &[u32], b: &[u32], hub_count: u32, out: &mut FruitlessSearches) {
    let mut i = 0;
    let mut j = 0;
    let touch = |x: u32, out: &mut FruitlessSearches| {
        out.accesses += 1;
        if x < hub_count {
            out.hub_accesses += 1;
        }
    };
    if let Some(&x) = a.first() {
        touch(x, out);
    }
    if let Some(&x) = b.first() {
        touch(x, out);
    }
    while i < a.len() && j < b.len() {
        let x = a[i];
        let y = b[j];
        if x < y {
            i += 1;
            if i < a.len() {
                touch(a[i], out);
            }
        } else if y < x {
            j += 1;
            if j < b.len() {
                touch(b[j], out);
            }
        } else {
            i += 1;
            j += 1;
            if i < a.len() {
                touch(a[i], out);
            }
            if j < b.len() {
                touch(b[j], out);
            }
        }
    }
}

/// Measures fruitless searches on a degree-ordered graph whose first
/// `hub_count` IDs are the hubs.
///
/// Only vertices that are non-hubs *and* have no hub neighbour at all
/// (`N_v ∩ Hubs = ∅`, over the full neighbourhood) contribute, matching
/// the paper's definition.
pub fn measure_fruitless(
    graph: &UndirectedCsr,
    forward: &Csr<u32>,
    hub_count: u32,
) -> FruitlessSearches {
    (hub_count..graph.num_vertices())
        .into_par_iter()
        .map(|v| {
            let mut local = FruitlessSearches::default();
            // Full neighbourhood check: sorted lists put hubs first.
            if graph.neighbors(v).first().is_some_and(|&u| u < hub_count) {
                return local;
            }
            let nv = forward.neighbors(v);
            for &u in nv {
                merge_accesses(nv, forward.neighbors(u), hub_count, &mut local);
            }
            local
        })
        .reduce(FruitlessSearches::default, |mut a, b| {
            a.accesses += b.accesses;
            a.hub_accesses += b.hub_accesses;
            a
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lotus_graph::builder::graph_from_edges;

    #[test]
    fn merge_accesses_counts_touches() {
        let mut out = FruitlessSearches::default();
        merge_accesses(&[1, 5, 9], &[2, 5], 3, &mut out);
        assert!(out.accesses >= 4);
        assert!(out.hub_accesses >= 1); // entries 1 and 2 are hubs
        assert!(out.hub_accesses < out.accesses);
    }

    #[test]
    fn hub_free_vertices_accessing_hub_entries_are_measured() {
        // Degree-ordered toy graph: hub 0; vertices 3 and 4 are hub-free
        // but their neighbour 2's list contains hub 0.
        let g = graph_from_edges([(0, 1), (0, 2), (1, 2), (2, 3), (2, 4), (3, 4)]);
        let forward = g.forward_graph();
        let f = measure_fruitless(&g, &forward, 1);
        assert!(f.accesses > 0);
        assert!(
            f.hub_accesses > 0,
            "vertex 4 loads N<(3) / N<(4) containing 2 → 0? {f:?}"
        );
    }

    #[test]
    fn vertices_with_hub_edges_are_excluded() {
        // Star: every non-hub touches the hub, so nothing qualifies.
        let g = graph_from_edges((1..10).map(|v| (0, v)));
        let forward = g.forward_graph();
        let f = measure_fruitless(&g, &forward, 1);
        assert_eq!(f.accesses, 0);
        assert_eq!(f.fraction(), 0.0);
    }

    #[test]
    fn fraction_is_bounded() {
        let g = lotus_gen::Rmat::new(10, 8).generate(3);
        let pre = lotus_algos::preprocess::degree_order_and_orient(&g);
        let hubs = (g.num_vertices() / 100).max(1);
        let f = measure_fruitless(&pre.graph, &pre.forward, hubs);
        let frac = f.fraction();
        assert!((0.0..=1.0).contains(&frac));
    }
}
