//! H2H bit-array characteristics (paper Table 8).

use lotus_core::LotusGraph;

/// One row of Table 8.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct H2hStats {
    /// Fraction of set bits.
    pub density: f64,
    /// Fraction of 64-byte blocks with no set bit.
    pub zero_cachelines: f64,
    /// Size of the array in bytes.
    pub bytes: u64,
    /// Hub-to-hub edges recorded.
    pub edges: u64,
}

/// Extracts the Table 8 statistics from a LOTUS graph.
pub fn h2h_stats(lg: &LotusGraph) -> H2hStats {
    H2hStats {
        density: lg.h2h.density(),
        zero_cachelines: lg.h2h.zero_cacheline_fraction(),
        bytes: lg.h2h.size_bytes(),
        edges: lg.h2h.bits_set(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lotus_core::config::{HubCount, LotusConfig};
    use lotus_core::preprocess::build_lotus_graph;

    #[test]
    fn stats_are_consistent() {
        let g = lotus_gen::Rmat::new(10, 12).generate(5);
        let cfg = LotusConfig::default().with_hub_count(HubCount::Fixed(128));
        let lg = build_lotus_graph(&g, &cfg);
        let s = h2h_stats(&lg);
        assert!(s.density > 0.0 && s.density < 1.0);
        assert!((0.0..=1.0).contains(&s.zero_cachelines));
        assert_eq!(s.edges, lg.h2h.bits_set());
        assert!(s.bytes > 0);
    }

    #[test]
    fn sparse_h2h_has_zero_cachelines() {
        // Table 8's web-graph rows show 75–95% zero cachelines: hub edges
        // cluster on a few hot lines. A low-density H2H must leave many
        // 64-byte blocks untouched.
        let g = lotus_gen::Rmat::new(12, 4)
            .with_params(lotus_gen::RmatParams::WEB)
            .generate(7);
        let cfg = LotusConfig::default().with_hub_count(HubCount::Fixed(2048));
        let s = h2h_stats(&build_lotus_graph(&g, &cfg));
        assert!(s.density < 0.01, "density {}", s.density);
        assert!(
            s.zero_cachelines > 0.3,
            "zero cachelines {}",
            s.zero_cachelines
        );
    }
}
