//! Topological characteristics of hubs (paper Table 1).
//!
//! With hubs defined as the top fraction of vertices by degree (1% in
//! Table 1), this module computes per-dataset: the edge-class split
//! (hub-to-hub / hub-to-non-hub / non-hub), the share of triangles that
//! contain a hub, the relative density of the hub sub-graph, and the
//! fruitless-search fraction.

use lotus_core::config::{HubCount, LotusConfig};
use lotus_core::count::LotusCounter;
use lotus_graph::UndirectedCsr;

use crate::density::relative_density;
use crate::fruitless::measure_fruitless;

/// One row of Table 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HubStats {
    /// Number of hubs used.
    pub hub_count: u32,
    /// Fraction of edges between two hubs.
    pub hub_to_hub: f64,
    /// Fraction of edges between a hub and a non-hub.
    pub hub_to_nonhub: f64,
    /// Fraction of edges with no hub endpoint.
    pub nonhub: f64,
    /// Fraction of triangles containing at least one hub.
    pub hub_triangles: f64,
    /// Relative density of the hub sub-graph (§3.4).
    pub relative_density: f64,
    /// Fraction of avoidable hub-edge accesses (§3.3).
    pub fruitless: f64,
}

impl HubStats {
    /// Total hub-edge fraction (hub-to-hub + hub-to-non-hub).
    pub fn hub_edges_total(&self) -> f64 {
        self.hub_to_hub + self.hub_to_nonhub
    }
}

/// Computes Table 1 statistics with hubs = the top `hub_fraction` of
/// vertices by degree (the paper uses 0.01).
pub fn hub_stats(graph: &UndirectedCsr, hub_fraction: f64) -> HubStats {
    let n = graph.num_vertices();
    let hub_count = (((n as f64) * hub_fraction).ceil() as u32)
        .clamp(1, n.max(1))
        .min(1 << 16);
    hub_stats_with_count(graph, hub_count)
}

/// Computes Table 1 statistics with an explicit hub count.
pub fn hub_stats_with_count(graph: &UndirectedCsr, hub_count: u32) -> HubStats {
    // LOTUS with Fixed(hub_count) relabels hubs to the front and splits
    // both edges and triangles by type — everything Table 1 needs.
    let config = LotusConfig::default().with_hub_count(HubCount::Fixed(hub_count));
    let lg = lotus_core::preprocess::build_lotus_graph(graph, &config);
    let result = LotusCounter::new(config).count_prepared(&lg);

    let total_edges = graph.num_edges().max(1) as f64;
    let h2h_edges = lg.h2h.bits_set() as f64;
    let hub_edges = lg.he_edges() as f64; // all edges with a hub endpoint
    let nonhub_edges = lg.nhe_edges() as f64;

    // Hub set in *original* IDs for the density computation.
    let hubs: Vec<u32> = (0..hub_count).map(|h| lg.relabeling.old_id(h)).collect();

    // Fruitless searches on the degree-ordered view.
    let pre = lotus_algos::preprocess::degree_order_and_orient(graph);
    let fruitless = measure_fruitless(&pre.graph, &pre.forward, hub_count).fraction();

    HubStats {
        hub_count,
        hub_to_hub: h2h_edges / total_edges,
        hub_to_nonhub: (hub_edges - h2h_edges) / total_edges,
        nonhub: nonhub_edges / total_edges,
        hub_triangles: result.stats.hub_triangle_fraction(),
        relative_density: relative_density(graph, &hubs),
        fruitless,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fractions_partition_the_edge_set() {
        let g = lotus_gen::Rmat::new(10, 10).generate(3);
        let s = hub_stats(&g, 0.01);
        let sum = s.hub_to_hub + s.hub_to_nonhub + s.nonhub;
        assert!((sum - 1.0).abs() < 1e-9, "sum {sum}");
        assert!(s.hub_to_hub >= 0.0 && s.nonhub >= 0.0);
    }

    #[test]
    fn skewed_graph_matches_paper_shape() {
        // Table 1's qualitative claims on a web-style R-MAT graph: 1% of
        // vertices carry a majority of edges, most triangles touch a hub,
        // and the hub sub-graph is far denser than the whole. (Scaled-down
        // R-MAT is milder than the paper's billion-edge crawls, so the
        // thresholds sit below the paper's averages of 72.9% / 93.4% /
        // 1809× / 53.3%.)
        let g = lotus_gen::Rmat::new(14, 32)
            .with_params(lotus_gen::RmatParams::WEB)
            .generate(7);
        let s = hub_stats(&g, 0.01);
        assert!(
            s.hub_edges_total() > 0.5,
            "hub edges {}",
            s.hub_edges_total()
        );
        assert!(s.hub_triangles > 0.85, "hub triangles {}", s.hub_triangles);
        assert!(s.relative_density > 100.0, "RD {}", s.relative_density);
        assert!(
            s.fruitless > 0.3 && s.fruitless < 0.9,
            "fruitless {}",
            s.fruitless
        );
    }

    #[test]
    fn uniform_graph_has_weak_hubs() {
        let g = lotus_gen::ErdosRenyi::new(4096, 40_000).generate(5);
        let s = hub_stats(&g, 0.01);
        assert!(
            s.hub_edges_total() < 0.2,
            "ER hubs carry few edges: {}",
            s.hub_edges_total()
        );
    }

    #[test]
    fn explicit_hub_count() {
        let g = lotus_gen::Rmat::new(9, 8).generate(1);
        let s = hub_stats_with_count(&g, 32);
        assert_eq!(s.hub_count, 32);
    }
}
