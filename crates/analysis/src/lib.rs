#![warn(missing_docs)]

//! Topology analyses behind the paper's motivation and evaluation tables.
//!
//! * [`hub_stats`] — edge-class fractions, hub-triangle share, relative
//!   density and fruitless searches (Table 1).
//! * [`density`] — relative density of vertex subsets (§3.4).
//! * [`fruitless`] — avoidable hub-edge accesses during non-hub processing
//!   (§3.3, Table 1 column 8).
//! * [`topology_size`] — CSX vs LOTUS topology bytes (Table 7).
//! * [`h2h_stats`] — H2H density and zero-cacheline fractions (Table 8).
//! * [`load_balance`] — idle-time comparison of edge-balanced partitioning
//!   vs squared edge tiling (Table 9), both as a deterministic
//!   list-scheduling model and as a real threaded measurement.

pub mod density;
pub mod fruitless;
pub mod h2h_stats;
pub mod hub_stats;
pub mod load_balance;
pub mod topology_size;

pub use h2h_stats::H2hStats;
pub use hub_stats::HubStats;
pub use load_balance::IdleTimes;
pub use topology_size::TopologySizes;
