//! Load-balance comparison: edge-balanced partitioning vs squared edge
//! tiling (paper Table 9, §5.8).
//!
//! Table 9 measures per-thread idle time during phase 1. This module
//! provides two measurements:
//!
//! * a **deterministic list-scheduling model** — every task's cost is its
//!   exact pair count; tasks are dispatched greedily to the earliest-free
//!   of `T` virtual workers. This reproduces the load-balance effect
//!   regardless of the physical core count (the substitution for a
//!   128-thread machine, DESIGN.md §3);
//! * a **real threaded measurement** — `T` OS threads drain a shared task
//!   queue while timing their busy intervals (meaningful when the host
//!   actually has multiple cores).

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;

use lotus_core::count::count_single_tile;
use lotus_core::tiling::{make_tiles, SqrtFractions, Tile};
use lotus_core::LotusGraph;
use lotus_graph::partition::edge_balanced;

/// Result of an idle-time measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IdleTimes {
    /// Mean worker idle share of the makespan, in `[0, 1)`.
    pub average_idle: f64,
    /// Number of tasks scheduled.
    pub tasks: usize,
    /// Number of workers.
    pub workers: usize,
}

/// Phase-1 pair count of a vertex-range task under edge-balanced
/// partitioning: `Σ_v d(v)(d(v)−1)/2` over HE degrees.
fn range_pair_work(lg: &LotusGraph, start: u32, end: u32) -> u64 {
    (start..end)
        .map(|v| {
            let d = lg.he.degree(v) as u64;
            d * d.saturating_sub(1) / 2
        })
        .sum()
}

/// Greedy list scheduling of task costs onto `workers` workers (each task
/// goes to the earliest-free worker, modelling a dynamic work queue).
/// Returns the mean idle fraction of the makespan.
pub fn schedule_idle(costs: &[u64], workers: usize) -> f64 {
    assert!(workers >= 1);
    let mut finish = vec![0u64; workers];
    for &c in costs {
        let idx = finish
            .iter()
            .enumerate()
            .min_by_key(|&(_, &f)| f)
            .map_or(0, |(i, _)| i);
        finish[idx] += c;
    }
    let makespan = finish.iter().copied().max().unwrap_or(0);
    if makespan == 0 {
        return 0.0;
    }
    let idle: u64 = finish.iter().map(|&f| makespan - f).sum();
    idle as f64 / (makespan as f64 * workers as f64)
}

/// Models Table 9's *edge balanced* row: the HE sub-graph is cut into
/// `256 × workers` contiguous ranges with equal edge counts (the paper's
/// comparison policy), whose phase-1 pair work is then list-scheduled.
pub fn edge_balanced_idle(lg: &LotusGraph, workers: usize) -> IdleTimes {
    let ranges = edge_balanced(&lg.he, 256 * workers);
    let costs: Vec<u64> = ranges
        .iter()
        .map(|r| range_pair_work(lg, r.start, r.end))
        .collect();
    IdleTimes {
        average_idle: schedule_idle(&costs, workers),
        tasks: costs.len(),
        workers,
    }
}

/// Models Table 9's *squared edge tiling* row: phase-1 tiles (threshold
/// 512, `2 × workers` partitions per vertex) are list-scheduled.
pub fn squared_tiling_idle(lg: &LotusGraph, workers: usize, threshold: u32) -> IdleTimes {
    let tiles = make_tiles(&lg.he, threshold, 2 * workers);
    let costs: Vec<u64> = tiles.iter().map(Tile::work).collect();
    IdleTimes {
        average_idle: schedule_idle(&costs, workers),
        tasks: costs.len(),
        workers,
    }
}

/// Real threaded execution of phase-1 tiles over a shared queue, timing
/// each worker's busy interval. Returns `(idle, hhh_hhn_found)`.
pub fn measure_idle_threaded(lg: &LotusGraph, workers: usize, threshold: u32) -> (IdleTimes, u64) {
    let tiles = make_tiles(&lg.he, threshold, 2 * workers);
    let next = AtomicUsize::new(0);
    let found = AtomicU64::new(0);
    let busy_ns: Vec<AtomicU64> = (0..workers).map(|_| AtomicU64::new(0)).collect();

    let wall = Instant::now();
    std::thread::scope(|s| {
        for busy in &busy_ns {
            let next = &next;
            let found = &found;
            let tiles = &tiles;
            s.spawn(move || {
                let mut local = 0u64;
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= tiles.len() {
                        break;
                    }
                    let t = &tiles[i];
                    let start = Instant::now();
                    local += count_single_tile(&lg.h2h, lg.hub_neighbors(t.v), t);
                    busy.fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
                }
                found.fetch_add(local, Ordering::Relaxed);
            });
        }
    });
    let makespan = wall.elapsed().as_nanos() as f64;

    let idle = if makespan == 0.0 {
        0.0
    } else {
        busy_ns
            .iter()
            .map(|b| 1.0 - (b.load(Ordering::Relaxed) as f64 / makespan).min(1.0))
            .sum::<f64>()
            / workers as f64
    };
    (
        IdleTimes {
            average_idle: idle,
            tasks: tiles.len(),
            workers,
        },
        found.into_inner(),
    )
}

/// Re-exported tiling helper so report binaries can sweep partition counts.
pub fn tiling_fractions(partitions: usize) -> SqrtFractions {
    SqrtFractions::new(partitions)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lotus_core::config::{HubCount, LotusConfig};
    use lotus_core::preprocess::build_lotus_graph;

    fn skewed_lotus_graph() -> LotusGraph {
        let g = lotus_gen::Rmat::new(11, 16).generate(3);
        let cfg = LotusConfig::default().with_hub_count(HubCount::Fixed(128));
        build_lotus_graph(&g, &cfg)
    }

    #[test]
    fn schedule_idle_balanced_tasks() {
        // 8 equal tasks over 4 workers → zero idle.
        assert_eq!(schedule_idle(&[5; 8], 4), 0.0);
    }

    #[test]
    fn schedule_idle_single_giant_task() {
        // One giant task among tiny ones → ~3/4 idle with 4 workers.
        let idle = schedule_idle(&[1000, 1, 1, 1], 4);
        assert!(idle > 0.7, "{idle}");
    }

    #[test]
    fn tiling_beats_edge_balanced_on_skewed_graph() {
        // Table 9's claim: squared edge tiling has (much) lower idle time.
        let lg = skewed_lotus_graph();
        let eb = edge_balanced_idle(&lg, 16);
        let set = squared_tiling_idle(&lg, 16, 512);
        assert!(
            set.average_idle <= eb.average_idle,
            "tiling {:.3} vs edge-balanced {:.3}",
            set.average_idle,
            eb.average_idle
        );
        assert!(
            set.average_idle < 0.10,
            "tiling idle {:.3}",
            set.average_idle
        );
    }

    #[test]
    fn threaded_measurement_counts_correctly() {
        let lg = skewed_lotus_graph();
        let tiles = make_tiles(&lg.he, 512, 8);
        let expected = lotus_core::count::count_hub_phase(&lg, &tiles);
        let (_idle, found) = measure_idle_threaded(&lg, 4, 512);
        assert_eq!(found, expected.0 + expected.1);
    }

    #[test]
    fn idle_times_fields() {
        let lg = skewed_lotus_graph();
        let r = squared_tiling_idle(&lg, 2, 512);
        assert_eq!(r.workers, 2);
        assert!(r.tasks > 0);
        assert!((0.0..1.0).contains(&r.average_idle));
    }
}
