//! Topology-size accounting (paper Table 7, §5.6).
//!
//! Compares the bytes of topology data between the plain CSX
//! representation (8-byte index entries, 4-byte neighbour IDs, symmetric
//! edges removed as the Forward algorithm uses) and the LOTUS structure
//! (two sub-graph indices, 2-byte HE entries, 4-byte NHE entries, plus the
//! H2H bit array). The paper reports an average 4.1% *reduction* despite
//! the extra index and bit array, because half the edges shrink to 16 bits.

use lotus_core::LotusGraph;
use lotus_graph::UndirectedCsr;

/// One row of Table 7, in bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TopologySizes {
    /// Neighbour entries only, symmetric edges removed (`4·|E|`).
    pub csx_edges: u64,
    /// Index + entries of the forward CSX (`8(|V|+1) + 4·|E|`).
    pub csx: u64,
    /// The LOTUS structure: HE + NHE indices and entries + H2H.
    pub lotus: u64,
}

impl TopologySizes {
    /// Size growth of LOTUS over CSX, in percent (negative = smaller).
    pub fn growth_percent(&self) -> f64 {
        if self.csx == 0 {
            0.0
        } else {
            (self.lotus as f64 - self.csx as f64) / self.csx as f64 * 100.0
        }
    }
}

/// Computes the Table 7 sizes for a graph and its LOTUS structure.
pub fn topology_sizes(graph: &UndirectedCsr, lg: &LotusGraph) -> TopologySizes {
    let v = graph.num_vertices() as u64;
    let e = graph.num_edges();
    let csx_edges = 4 * e;
    let csx = 8 * (v + 1) + csx_edges;
    TopologySizes {
        csx_edges,
        csx,
        lotus: lg.topology_bytes(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lotus_core::config::{HubCount, LotusConfig};
    use lotus_core::preprocess::build_lotus_graph;

    #[test]
    fn accounting_matches_structure() {
        let g = lotus_gen::Rmat::new(10, 10).generate(9);
        let cfg = LotusConfig::default().with_hub_count(HubCount::Fixed(64));
        let lg = build_lotus_graph(&g, &cfg);
        let t = topology_sizes(&g, &lg);

        assert_eq!(t.csx_edges, 4 * g.num_edges());
        assert_eq!(t.csx, 8 * (g.num_vertices() as u64 + 1) + 4 * g.num_edges());
        // LOTUS bytes: 2 indices + 2B HE + 4B NHE + H2H.
        let expected = 2 * 8 * (g.num_vertices() as u64 + 1)
            + 2 * lg.he_edges()
            + 4 * lg.nhe_edges()
            + lg.h2h.size_bytes();
        assert_eq!(t.lotus, expected);
    }

    #[test]
    fn hub_heavy_graph_shrinks() {
        // When most edges are hub edges, halving their width outweighs the
        // extra index and H2H array (the SK-Domain effect of Table 7).
        let g = lotus_gen::Rmat::new(14, 32)
            .with_params(lotus_gen::RmatParams::WEB)
            .generate(3);
        let cfg = LotusConfig::default().with_hub_count(HubCount::Fixed(512));
        let lg = build_lotus_graph(&g, &cfg);
        let t = topology_sizes(&g, &lg);
        assert!(
            t.growth_percent() < 0.0,
            "expected shrink, got {:.1}% (he {} / nhe {})",
            t.growth_percent(),
            lg.he_edges(),
            lg.nhe_edges()
        );
    }

    #[test]
    fn growth_percent_of_zero_graph() {
        let t = TopologySizes {
            csx_edges: 0,
            csx: 0,
            lotus: 0,
        };
        assert_eq!(t.growth_percent(), 0.0);
    }
}
