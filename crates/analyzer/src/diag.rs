//! Machine-readable diagnostics, mirroring `lotus check`'s violation
//! format: every finding names a rule, a file, a line, and a severity,
//! and the whole report renders as stable, ordered JSON (hand-rolled,
//! like `lotus-telemetry`'s writer — no external dependencies).

use std::fmt;

/// Severity of a finding. All project rules gate the build, so the
/// distinction is informational: `Error` findings are violations of a
/// hard rule, `Warning` marks report-hygiene issues (e.g. stale
/// waivers).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// A hard project-rule violation.
    Error,
    /// A hygiene issue that still fails the gate until resolved.
    Warning,
}

impl Severity {
    /// Stable lowercase name used in JSON output.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
        }
    }
}

/// One lint finding.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Kebab-case rule identifier (see the catalog in DESIGN.md §10).
    pub rule: &'static str,
    /// Severity class.
    pub severity: Severity,
    /// Repo-relative path with forward slashes.
    pub file: String,
    /// 1-based line; 0 means the finding concerns the file as a whole.
    pub line: u32,
    /// Human-readable explanation.
    pub message: String,
    /// Whether a waiver (file entry or inline allow) covers the finding.
    pub waived: bool,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let waived = if self.waived { " (waived)" } else { "" };
        write!(
            f,
            "{}[{}] {}:{}: {}{waived}",
            self.severity.as_str(),
            self.rule,
            self.file,
            self.line,
            self.message
        )
    }
}

/// A full lint run: all findings plus scan statistics.
#[derive(Debug, Clone, Default)]
pub struct LintReport {
    /// Every finding, waived ones included, ordered by (file, line).
    pub findings: Vec<Finding>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

impl LintReport {
    /// Number of findings not covered by a waiver.
    pub fn unwaived(&self) -> usize {
        self.findings.iter().filter(|f| !f.waived).count()
    }

    /// Whether the gate passes: zero unwaived findings.
    pub fn is_clean(&self) -> bool {
        self.unwaived() == 0
    }

    /// Renders the report as stable JSON (keys in fixed order, findings
    /// sorted by file/line/rule).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256 + self.findings.len() * 128);
        out.push_str(
            "{\n  \"schema_version\": 1,\n  \"tool\": \"lotus-analyzer\",\n  \"mode\": \"lint\",\n",
        );
        out.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        out.push_str(&format!("  \"total\": {},\n", self.findings.len()));
        out.push_str(&format!("  \"unwaived\": {},\n", self.unwaived()));
        out.push_str("  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {");
            out.push_str(&format!("\"rule\": {}, ", json_str(f.rule)));
            out.push_str(&format!(
                "\"severity\": {}, ",
                json_str(f.severity.as_str())
            ));
            out.push_str(&format!("\"file\": {}, ", json_str(&f.file)));
            out.push_str(&format!("\"line\": {}, ", f.line));
            out.push_str(&format!("\"message\": {}, ", json_str(&f.message)));
            out.push_str(&format!("\"waived\": {}", f.waived));
            out.push('}');
        }
        if !self.findings.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }

    /// Sorts findings into the stable report order.
    pub fn sort(&mut self) {
        self.findings
            .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    }
}

impl fmt::Display for LintReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for finding in &self.findings {
            writeln!(f, "{finding}")?;
        }
        write!(
            f,
            "{} file(s) scanned, {} finding(s), {} unwaived",
            self.files_scanned,
            self.findings.len(),
            self.unwaived()
        )
    }
}

/// Escapes a string for JSON output.
pub(crate) fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(file: &str, line: u32, waived: bool) -> Finding {
        Finding {
            rule: "no-panic",
            severity: Severity::Error,
            file: file.to_owned(),
            line,
            message: "library code calls `unwrap`".to_owned(),
            waived,
        }
    }

    #[test]
    fn unwaived_counts_only_active_findings() {
        let report = LintReport {
            findings: vec![finding("a.rs", 1, true), finding("b.rs", 2, false)],
            files_scanned: 2,
        };
        assert_eq!(report.unwaived(), 1);
        assert!(!report.is_clean());
    }

    #[test]
    fn empty_report_is_clean() {
        assert!(LintReport::default().is_clean());
    }

    #[test]
    fn json_is_parseable_and_ordered() {
        let mut report = LintReport {
            findings: vec![finding("b.rs", 2, false), finding("a.rs", 9, true)],
            files_scanned: 2,
        };
        report.sort();
        assert_eq!(report.findings[0].file, "a.rs");
        let json = report.to_json();
        let parsed = lotus_telemetry::json::parse(&json).expect("valid JSON");
        assert_eq!(
            parsed
                .get("unwaived")
                .and_then(lotus_telemetry::json::Json::as_u64),
            Some(1)
        );
        let findings = parsed
            .get("findings")
            .and_then(|v| v.as_array())
            .expect("findings array");
        assert_eq!(findings.len(), 2);
        assert_eq!(
            findings[0].get("file").and_then(|v| v.as_str()),
            Some("a.rs")
        );
    }

    #[test]
    fn json_escapes_quotes() {
        assert_eq!(json_str("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
    }
}
