//! Workspace scanning and orchestration: walks every `.rs` file under
//! `crates/`, `shims/` and `src/`, runs the rule catalog, applies the
//! waiver file, and reports stale waivers.

use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

use crate::diag::{Finding, LintReport, Severity};
use crate::locks::{run_lock_suite, LockSuiteReport, LOCK_RULES};
use crate::rules;
use crate::waiver::{WaiverError, WaiverSet};

/// Default repo-relative location of the waiver file.
pub const DEFAULT_WAIVER_FILE: &str = "analyzer-waivers.json";

/// One source file to lint: repo-relative path plus contents.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Repo-relative path with forward slashes.
    pub path: String,
    /// File contents.
    pub src: String,
}

/// Failure of a workspace analysis run.
#[derive(Debug)]
pub enum AnalyzeError {
    /// A file or directory could not be read.
    Io(io::Error),
    /// The waiver file is malformed.
    Waiver(WaiverError),
}

impl fmt::Display for AnalyzeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalyzeError::Io(e) => write!(f, "analysis failed reading sources: {e}"),
            AnalyzeError::Waiver(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for AnalyzeError {}

impl From<io::Error> for AnalyzeError {
    fn from(e: io::Error) -> Self {
        AnalyzeError::Io(e)
    }
}

impl From<WaiverError> for AnalyzeError {
    fn from(e: WaiverError) -> Self {
        AnalyzeError::Waiver(e)
    }
}

/// Lints a set of in-memory files (no waivers applied).
pub fn lint_files(files: &[SourceFile]) -> LintReport {
    let mut findings = Vec::new();
    for f in files {
        rules::lint_source(&f.path, &f.src, &mut findings);
    }
    let mut report = LintReport {
        findings,
        files_scanned: files.len(),
    };
    report.sort();
    report
}

/// Collects every `.rs` file of the workspace rooted at `root`
/// (`crates/`, `shims/` and the root `src/`), sorted by path.
///
/// # Errors
///
/// Returns the underlying [`io::Error`] when a directory or file cannot
/// be read.
pub fn collect_workspace_files(root: &Path) -> io::Result<Vec<SourceFile>> {
    let mut out = Vec::new();
    for top in ["crates", "shims", "src"] {
        let dir = root.join(top);
        if dir.is_dir() {
            walk(&dir, root, &mut out)?;
        }
    }
    out.sort_by(|a, b| a.path.cmp(&b.path));
    Ok(out)
}

fn walk(dir: &Path, root: &Path, out: &mut Vec<SourceFile>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name().to_string_lossy().into_owned();
        if name.starts_with('.') || name == "target" {
            continue;
        }
        if path.is_dir() {
            walk(&path, root, out)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            out.push(SourceFile {
                path: rel,
                src: fs::read_to_string(&path)?,
            });
        }
    }
    Ok(())
}

/// Full analysis: scan the workspace at `root`, apply the waiver file
/// at `waiver_path` (missing file = empty set), and append
/// `stale-waiver` findings for entries that matched nothing.
///
/// # Errors
///
/// Returns [`AnalyzeError`] when sources cannot be read or the waiver
/// file is malformed.
pub fn analyze_workspace(root: &Path, waiver_path: &Path) -> Result<LintReport, AnalyzeError> {
    let files = collect_workspace_files(root)?;
    let mut report = lint_files(&files);
    // Lock-rule waivers belong to `analyze locks`; holding one must not
    // read as stale here (and vice versa).
    let mut waivers = WaiverSet::load(waiver_path)?;
    waivers
        .waivers
        .retain(|w| !LOCK_RULES.iter().any(|(r, _)| *r == w.rule));
    let stale: Vec<(String, String)> = waivers
        .apply(&mut report)
        .into_iter()
        .map(|w| (w.rule.clone(), w.file.clone()))
        .collect();
    append_stale_findings(&mut report.findings, &stale, root, waiver_path);
    report.sort();
    Ok(report)
}

/// Full lock-discipline analysis: scan the workspace at `root`, run the
/// static lock-order pass plus the planted controls, and apply the
/// lock-rule entries of the waiver file at `waiver_path`.
///
/// # Errors
///
/// Returns [`AnalyzeError`] when sources cannot be read or the waiver
/// file is malformed.
pub fn analyze_locks_workspace(
    root: &Path,
    waiver_path: &Path,
) -> Result<LockSuiteReport, AnalyzeError> {
    let files = collect_workspace_files(root)?;
    let mut report = run_lock_suite(&files);
    let mut waivers = WaiverSet::load(waiver_path)?;
    waivers
        .waivers
        .retain(|w| LOCK_RULES.iter().any(|(r, _)| *r == w.rule));
    // Reuse the lint waiver machinery through a shim report.
    let mut shim = LintReport {
        findings: std::mem::take(&mut report.findings),
        files_scanned: report.files_scanned,
    };
    let stale: Vec<(String, String)> = waivers
        .apply(&mut shim)
        .into_iter()
        .map(|w| (w.rule.clone(), w.file.clone()))
        .collect();
    report.findings = shim.findings;
    append_stale_findings(&mut report.findings, &stale, root, waiver_path);
    report.sort();
    Ok(report)
}

/// Appends a `stale-waiver` finding per waiver that matched nothing.
fn append_stale_findings(
    findings: &mut Vec<Finding>,
    stale: &[(String, String)],
    root: &Path,
    waiver_path: &Path,
) {
    let waiver_rel = waiver_path
        .strip_prefix(root)
        .unwrap_or(waiver_path)
        .to_string_lossy()
        .replace('\\', "/");
    for (rule, file) in stale {
        findings.push(Finding {
            rule: "stale-waiver",
            severity: Severity::Warning,
            file: waiver_rel.clone(),
            line: 0,
            message: format!("waiver for rule `{rule}` on `{file}` matches no finding; remove it"),
            waived: false,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(path: &str, src: &str) -> SourceFile {
        SourceFile {
            path: path.to_owned(),
            src: src.to_owned(),
        }
    }

    #[test]
    fn lint_files_aggregates_and_sorts() {
        let report = lint_files(&[
            file(
                "crates/b/src/lib.rs",
                "fn f(o: Option<u32>) -> u32 { o.unwrap() }",
            ),
            file("crates/a/src/lib.rs", "fn g() { panic!(\"x\") }"),
        ]);
        assert_eq!(report.files_scanned, 2);
        assert_eq!(report.findings.len(), 2);
        assert_eq!(report.findings[0].file, "crates/a/src/lib.rs");
    }

    #[test]
    fn collect_walks_this_workspace() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let files = collect_workspace_files(&root).expect("workspace readable");
        assert!(files
            .iter()
            .any(|f| f.path == "crates/analyzer/src/engine.rs"));
        assert!(files.iter().any(|f| f.path.starts_with("shims/par/")));
        // Sorted and repo-relative.
        assert!(files.windows(2).all(|w| w[0].path <= w[1].path));
    }

    #[test]
    fn analyze_reports_stale_waivers() {
        let dir = std::env::temp_dir().join(format!("lotus-analyzer-test-{}", std::process::id()));
        let src_dir = dir.join("crates/x/src");
        fs::create_dir_all(&src_dir).expect("mkdir");
        fs::write(src_dir.join("lib.rs"), "pub fn ok() -> u32 { 1 }\n").expect("write");
        let waivers = dir.join("analyzer-waivers.json");
        fs::write(
            &waivers,
            r#"{"schema_version":1,"waivers":[{"rule":"no-panic","file":"crates/x/src/lib.rs","reason":"gone"}]}"#,
        )
        .expect("write waivers");
        let report = analyze_workspace(&dir, &waivers).expect("analyze");
        assert_eq!(report.findings.len(), 1);
        assert_eq!(report.findings[0].rule, "stale-waiver");
        assert!(!report.is_clean());
        fs::remove_dir_all(&dir).ok();
    }
}
