//! A minimal, dependency-free Rust lexer.
//!
//! The lint rules only need a faithful token stream — identifiers,
//! literals, comments, punctuation — with correct line numbers, not a
//! full grammar. The tricky parts a naive `split_whitespace` scanner
//! gets wrong are handled properly:
//!
//! * nested block comments (`/* a /* b */ c */`),
//! * raw strings with hash fences (`r#"…"#`, `br##"…"##`, `cr#"…"#`),
//! * C-string literals (`c"…"`, stable since Rust 1.77) vs. identifiers
//!   that merely start with `c` (`crate`, `counters`),
//! * lifetimes vs. char literals (`<'a>` vs. `'a'` vs. `'\''`),
//! * raw identifiers (`r#type`),
//! * multi-line strings (line numbers keep counting inside).
//!
//! Anything the lexer does not recognise falls through to a single-byte
//! [`TokKind::Punct`] token, so the scan never gets stuck.

/// Token categories. Deliberately coarse: rules match on identifier
/// text and adjacency, not on a parse tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword, including raw identifiers (`r#type`).
    Ident,
    /// A lifetime such as `'a` or `'static`.
    Lifetime,
    /// Any string literal: `"…"`, `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`,
    /// `c"…"`, `cr#"…"#`.
    Str,
    /// A character literal such as `'x'`, `'\n'` or `'\''`.
    Char,
    /// A numeric literal (any base, optional fraction and suffix).
    Num,
    /// A `// …` comment, including doc comments (`///`, `//!`).
    LineComment,
    /// A `/* … */` comment; nesting is respected.
    BlockComment,
    /// Any other single character.
    Punct,
}

impl TokKind {
    /// Whether this token is source code (not a comment).
    pub fn is_code(self) -> bool {
        !matches!(self, TokKind::LineComment | TokKind::BlockComment)
    }
}

/// One token: its kind, exact source text, and 1-based start line.
#[derive(Debug, Clone, Copy)]
pub struct Tok<'a> {
    /// Category.
    pub kind: TokKind,
    /// The exact source slice, delimiters included.
    pub text: &'a str,
    /// 1-based line number of the token's first character.
    pub line: u32,
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Tokenizes `src`. Never fails: unrecognised bytes become punctuation.
pub fn lex(src: &str) -> Vec<Tok<'_>> {
    let b = src.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    while i < b.len() {
        let start = i;
        let start_line = line;
        let c = b[i];
        let kind = match c {
            b'\n' => {
                line += 1;
                i += 1;
                continue;
            }
            _ if c.is_ascii_whitespace() => {
                i += 1;
                continue;
            }
            b'/' if b.get(i + 1) == Some(&b'/') => {
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                TokKind::LineComment
            }
            b'/' if b.get(i + 1) == Some(&b'*') => {
                i += 2;
                let mut depth = 1u32;
                while i < b.len() && depth > 0 {
                    match b[i] {
                        b'\n' => {
                            line += 1;
                            i += 1;
                        }
                        b'/' if b.get(i + 1) == Some(&b'*') => {
                            depth += 1;
                            i += 2;
                        }
                        b'*' if b.get(i + 1) == Some(&b'/') => {
                            depth -= 1;
                            i += 2;
                        }
                        _ => i += 1,
                    }
                }
                TokKind::BlockComment
            }
            b'"' => {
                i = scan_plain_string(b, i, &mut line);
                TokKind::Str
            }
            b'r' | b'b' | b'c' => {
                if let Some(end) = scan_raw_or_byte_string(b, i, &mut line) {
                    i = end;
                    TokKind::Str
                } else if c == b'r'
                    && b.get(i + 1) == Some(&b'#')
                    && b.get(i + 2).copied().is_some_and(is_ident_start)
                {
                    // Raw identifier `r#type`.
                    i += 3;
                    while i < b.len() && is_ident_continue(b[i]) {
                        i += 1;
                    }
                    TokKind::Ident
                } else {
                    i += 1;
                    while i < b.len() && is_ident_continue(b[i]) {
                        i += 1;
                    }
                    TokKind::Ident
                }
            }
            b'\'' => {
                let (end, kind) = scan_char_or_lifetime(src, i);
                i = end;
                kind
            }
            _ if c.is_ascii_digit() => {
                i += 1;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                // A fraction, but not the start of a `..` range.
                if i < b.len()
                    && b[i] == b'.'
                    && b.get(i + 1).copied().is_some_and(|d| d.is_ascii_digit())
                {
                    i += 1;
                    while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                        i += 1;
                    }
                }
                TokKind::Num
            }
            _ if is_ident_start(c) => {
                i += 1;
                while i < b.len() && is_ident_continue(b[i]) {
                    i += 1;
                }
                TokKind::Ident
            }
            _ => {
                i += 1;
                TokKind::Punct
            }
        };
        toks.push(Tok {
            kind,
            text: &src[start..i],
            line: start_line,
        });
    }
    toks
}

/// Scans a `"…"` string starting at the opening quote; returns the index
/// one past the closing quote. Escapes and embedded newlines handled.
fn scan_plain_string(b: &[u8], open: usize, line: &mut u32) -> usize {
    let mut i = open + 1;
    while i < b.len() {
        match b[i] {
            b'\\' => i += 2,
            b'"' => return i + 1,
            b'\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

/// Recognises `r"…"`, `r#"…"#`, `b"…"`, `br"…"`, `br#"…"#`, `c"…"`,
/// `cr"…"`, `cr#"…"#` starting at `open` (which holds `r`, `b` or `c`).
/// Returns the end index, or `None` if the bytes at `open` are not a
/// string prefix (e.g. an identifier that merely starts with `r`).
fn scan_raw_or_byte_string(b: &[u8], open: usize, line: &mut u32) -> Option<usize> {
    let mut j = open;
    if b[j] == b'b' || b[j] == b'c' {
        j += 1;
    }
    // When `open` holds `r` the prefix itself is the raw marker; after a
    // `b` or `c` an `r` may follow (`br"…"`, `cr#"…"#`).
    let raw = b.get(j) == Some(&b'r');
    if raw {
        j += 1;
    }
    if raw {
        let mut hashes = 0usize;
        while b.get(j) == Some(&b'#') {
            hashes += 1;
            j += 1;
        }
        if b.get(j) != Some(&b'"') {
            return None;
        }
        j += 1;
        // Raw strings have no escapes: scan for `"` followed by the fence.
        while j < b.len() {
            if b[j] == b'\n' {
                *line += 1;
            } else if b[j] == b'"'
                && b[j + 1..]
                    .iter()
                    .take(hashes)
                    .filter(|&&h| h == b'#')
                    .count()
                    == hashes
            {
                return Some(j + 1 + hashes);
            }
            j += 1;
        }
        Some(j)
    } else if b.get(j) == Some(&b'"') {
        Some(scan_plain_string(b, j, line))
    } else {
        None
    }
}

/// Disambiguates `'…` into a char literal or a lifetime, starting at the
/// quote. Returns `(end_index, kind)`.
fn scan_char_or_lifetime(src: &str, open: usize) -> (usize, TokKind) {
    let b = src.as_bytes();
    if b.get(open + 1) == Some(&b'\\') {
        // Escaped char literal: skip `'\x`, then scan to the close quote
        // (covers `'\''`, `'\\'`, `'\u{…}'`).
        let mut j = open + 3;
        while j < b.len() && b[j] != b'\'' {
            j += 1;
        }
        return ((j + 1).min(b.len()), TokKind::Char);
    }
    let Some(ch) = src[open + 1..].chars().next() else {
        return (open + 1, TokKind::Punct);
    };
    let after = open + 1 + ch.len_utf8();
    if b.get(after) == Some(&b'\'') && ch != '\'' {
        (after + 1, TokKind::Char)
    } else if ch == '_' || ch.is_alphabetic() {
        let mut j = open + 1;
        while j < b.len() && is_ident_continue(b[j]) {
            j += 1;
        }
        (j, TokKind::Lifetime)
    } else {
        (open + 1, TokKind::Punct)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokKind> {
        lex(src).iter().map(|t| t.kind).collect()
    }

    #[test]
    fn idents_and_puncts() {
        let toks = lex("fn main() {}");
        let texts: Vec<_> = toks.iter().map(|t| t.text).collect();
        assert_eq!(texts, ["fn", "main", "(", ")", "{", "}"]);
    }

    #[test]
    fn line_numbers_advance() {
        let toks = lex("a\nb\n\nc");
        let lines: Vec<_> = toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, [1, 2, 4]);
    }

    #[test]
    fn nested_block_comment_is_one_token() {
        let toks = lex("/* a /* b */ c */ x");
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[0].kind, TokKind::BlockComment);
        assert_eq!(toks[1].text, "x");
    }

    #[test]
    fn raw_string_with_fence() {
        let toks = lex(r####"let s = r#"has "quotes" inside"#;"####);
        let strs: Vec<_> = toks.iter().filter(|t| t.kind == TokKind::Str).collect();
        assert_eq!(strs.len(), 1);
        assert_eq!(strs[0].text, r####"r#"has "quotes" inside"#"####);
    }

    #[test]
    fn lifetime_vs_char_literal() {
        assert_eq!(
            kinds("<'a> 'x' '\\'' 'static"),
            [
                TokKind::Punct,
                TokKind::Lifetime,
                TokKind::Punct,
                TokKind::Char,
                TokKind::Char,
                TokKind::Lifetime,
            ]
        );
    }

    #[test]
    fn byte_and_raw_byte_strings() {
        assert_eq!(
            kinds(r###"b"x" br#"y"# r"z" ready"###),
            [TokKind::Str, TokKind::Str, TokKind::Str, TokKind::Ident]
        );
    }

    #[test]
    fn c_string_literals() {
        // `c"…"` and `cr#"…"#` are literals; `crate`/`cfg` stay idents.
        assert_eq!(
            kinds(r###"c"null terminated" cr#"fen"ced"# cr"plain" crate cfg"###),
            [
                TokKind::Str,
                TokKind::Str,
                TokKind::Str,
                TokKind::Ident,
                TokKind::Ident,
            ]
        );
        let toks = lex(r###"let p = cr##"deep "# fence"##;"###);
        let strs: Vec<_> = toks.iter().filter(|t| t.kind == TokKind::Str).collect();
        assert_eq!(strs.len(), 1);
        assert_eq!(strs[0].text, r###"cr##"deep "# fence"##"###);
    }

    #[test]
    fn c_string_with_escape_and_newline() {
        // Escaped quote does not close the literal; embedded newlines
        // keep the line counter honest for following tokens.
        let toks = lex("c\"a\\\"b\nc\"\nx");
        assert_eq!(toks[0].kind, TokKind::Str);
        assert_eq!(toks[1].text, "x");
        assert_eq!(toks[1].line, 3);
    }

    #[test]
    fn raw_identifier() {
        let toks = lex("r#type + rest");
        assert_eq!(toks[0].kind, TokKind::Ident);
        assert_eq!(toks[0].text, "r#type");
    }

    #[test]
    fn numbers_with_bases_and_suffixes() {
        assert_eq!(
            kinds("0x3ff 1_000u64 3.25 0..n"),
            [
                TokKind::Num,
                TokKind::Num,
                TokKind::Num,
                TokKind::Num,
                TokKind::Punct,
                TokKind::Punct,
                TokKind::Ident,
            ]
        );
    }

    #[test]
    fn multiline_string_counts_lines() {
        let toks = lex("\"a\nb\"\nx");
        assert_eq!(toks[0].kind, TokKind::Str);
        assert_eq!(toks[1].text, "x");
        assert_eq!(toks[1].line, 3);
    }
}
