//! `lotus-analyzer` — project-specific static analysis for LOTUS.
//!
//! Two engines behind the `lotus analyze` CLI gate (DESIGN.md §10):
//!
//! * **Source lint engine** ([`engine`], [`rules`], [`lexer`]): a
//!   hand-rolled Rust lexer plus token-stream rules enforcing the
//!   project's concurrency and hygiene invariants — SAFETY comments on
//!   `unsafe`, no panicking calls in library code, `Relaxed`-only
//!   telemetry atomics, guard polling in lotus-core, and `# Errors`
//!   docs on public fallible APIs. Findings are machine-readable JSON
//!   ([`diag`]) with a checked-in waiver file ([`waiver`]), mirroring
//!   `lotus check`'s violation format.
//! * **Race checker** ([`race`]): replays the parallel kernels under
//!   seeded deterministic schedules (`shims/par`'s scheduler mode)
//!   while a shadow access log detects overlapping unsynchronized
//!   writes across logical tasks, and verifies schedule-order
//!   independence of every result.

pub mod diag;
pub mod engine;
pub mod lexer;
pub mod race;
pub mod rules;
pub mod waiver;

pub use diag::{Finding, LintReport, Severity};
pub use engine::{
    analyze_workspace, collect_workspace_files, lint_files, SourceFile, DEFAULT_WAIVER_FILE,
};
pub use race::{planted_overlap, run_suite, RaceSuiteReport, ScenarioOutcome, FIXED_SEEDS};
pub use rules::RULES;
pub use waiver::{Waiver, WaiverSet};
