//! `lotus-analyzer` — project-specific static analysis for LOTUS.
//!
//! Three engines behind the `lotus analyze` CLI gate (DESIGN.md §10, §15):
//!
//! * **Source lint engine** ([`engine`], [`rules`], [`lexer`]): a
//!   hand-rolled Rust lexer plus token-stream rules enforcing the
//!   project's concurrency and hygiene invariants — SAFETY comments on
//!   `unsafe`, no panicking calls in library code, `Relaxed`-only
//!   telemetry atomics, guard polling in lotus-core, and `# Errors`
//!   docs on public fallible APIs. Findings are machine-readable JSON
//!   ([`diag`]) with a checked-in waiver file ([`waiver`]), mirroring
//!   `lotus check`'s violation format.
//! * **Race checker** ([`race`]): replays the parallel kernels under
//!   seeded deterministic schedules (`shims/par`'s scheduler mode)
//!   while a shadow access log detects overlapping unsynchronized
//!   writes across logical tasks, and verifies schedule-order
//!   independence of every result.
//! * **Lock-order pass** ([`locks`] plus the item parser): a syntax-aware
//!   pass over the same lexer that inventories every mutex in the
//!   workspace, derives the cross-crate `held → acquired` graph, and
//!   reports ABBA cycles, blocking calls under a live guard, and
//!   same-scope double acquisition — cross-checked at runtime against
//!   `lotus_telemetry::sync`'s lock witness.

pub mod diag;
pub mod engine;
pub mod lexer;
pub mod locks;
mod parser;
pub mod race;
pub mod rules;
pub mod waiver;

pub use diag::{Finding, LintReport, Severity};
pub use engine::{
    analyze_locks_workspace, analyze_workspace, collect_workspace_files, lint_files, SourceFile,
    DEFAULT_WAIVER_FILE,
};
pub use locks::{run_lock_suite, LockControl, LockEdge, LockGraph, LockSuiteReport, LOCK_RULES};
pub use race::{planted_overlap, run_suite, RaceSuiteReport, ScenarioOutcome, FIXED_SEEDS};
pub use rules::RULES;
pub use waiver::{Waiver, WaiverSet};
