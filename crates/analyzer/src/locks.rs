//! Static lock-order analysis (DESIGN.md §15).
//!
//! Built on the item parser ([`crate::parser`]): per crate, the pass
//! inventories lock fields (`Mutex`/`RwLock`/`TracedMutex` struct
//! fields and `static`s), resolves guard-returning helper functions,
//! computes a flow-insensitive *lock effect* (which locks a function
//! may acquire, whether it may block) closed over the crate-local call
//! graph, and then walks every non-test function body with a guard
//! lifetime model to extract:
//!
//! * **lock-order edges** `A → B` (lock `B` acquired while `A` held),
//!   merged into a cross-crate graph checked for cycles (ABBA
//!   candidates, rule `lock-order-cycle`);
//! * **blocking calls under a guard** — `write_all`/`sync_data`/
//!   `sync_all`/`accept`/argument-less `join()`, directly or via a
//!   crate-local callee, and condvar waits while holding an unrelated
//!   lock (rule `lock-blocking-call`);
//! * **double acquisition** of one lock in a single scope (rule
//!   `lock-double-acquire`).
//!
//! The guard lifetime model mirrors the borrow rules the code actually
//! relies on: `let`-bound guards die at the `}` closing their block or
//! at `drop(guard)`; temporaries die at the `;` ending their statement
//! (so `mem::take(&mut *m.lock())` before a join is clean); `if`/
//! `while` condition temporaries die at the condition's `{`; `match`
//! and `for`-head temporaries live through the expression; `if let`/
//! `while let` bindings die with their block.
//!
//! Documented blind spots (DESIGN.md §15): calls through trait objects
//! or function pointers, guards passed by reference or stored in
//! locals, lock collections iterated through a local name, closures
//! (analyzed in their lexical context even when deferred), and
//! same-named lock fields across types of one crate (first wins).
//!
//! Planted negative controls — an ABBA pair, a blocking write under a
//! guard, a double acquire — are analyzed on every run; a control that
//! fails to fire fails the gate, proving the detector itself works.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use crate::diag::{json_str, Finding, Severity};
use crate::engine::SourceFile;
use crate::lexer::{lex, Tok, TokKind};
use crate::parser::{parse_items, FnDef, ParsedFile};
use crate::rules::{
    inline_allows, is_ident, is_punct, match_delim, next_code, prev_code, test_mask,
};

/// Rule catalog for `lotus analyze locks` (kept separate from the lint
/// [`crate::rules::RULES`] so each mode's waivers are scoped to it).
pub const LOCK_RULES: [(&str, &str); 3] = [
    (
        "lock-order-cycle",
        "the static lock-order graph contains a cycle (ABBA deadlock candidate)",
    ),
    (
        "lock-blocking-call",
        "blocking I/O, thread join, accept, or condvar wait while holding a lock guard",
    ),
    (
        "lock-double-acquire",
        "the same lock is acquired twice in one scope (self-deadlock)",
    ),
];

/// Method names treated as blocking when called with a guard live.
const BLOCKING_METHODS: [&str; 4] = ["sync_data", "sync_all", "write_all", "accept"];

/// Method names never resolved to crate-local functions: common std
/// container/iterator/atomic vocabulary that would otherwise collide
/// with same-named project functions.
const SKIP_METHODS: [&str; 40] = [
    "clone",
    "unwrap",
    "unwrap_or",
    "unwrap_or_else",
    "unwrap_or_default",
    "expect",
    "map",
    "map_err",
    "and_then",
    "ok",
    "iter",
    "iter_mut",
    "into_iter",
    "len",
    "is_empty",
    "push",
    "pop",
    "push_back",
    "pop_front",
    "push_front",
    "insert",
    "remove",
    "get",
    "get_mut",
    "take",
    "replace",
    "load",
    "store",
    "fetch_add",
    "swap",
    "send",
    "recv",
    "extend",
    "drain",
    "clear",
    "retain",
    "spawn",
    "min",
    "max",
    "contains_key",
];

/// One directed lock-order edge: `to` was acquired while `from` was
/// held, first observed at `file:line`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockEdge {
    /// Lock held at the acquisition site.
    pub from: String,
    /// Lock acquired under it.
    pub to: String,
    /// Repo-relative file of the first site establishing the edge.
    pub file: String,
    /// 1-based line of that site.
    pub line: u32,
}

/// The cross-crate static lock-order graph.
#[derive(Debug, Clone, Default)]
pub struct LockGraph {
    /// Every lock acquired anywhere in non-test code, sorted.
    pub nodes: Vec<String>,
    /// Ordering edges, sorted by `(from, to)`; one entry per pair.
    pub edges: Vec<LockEdge>,
}

impl LockGraph {
    /// Whether the graph contains the ordering edge `from → to`.
    #[must_use]
    pub fn has_edge(&self, from: &str, to: &str) -> bool {
        self.edges.iter().any(|e| e.from == from && e.to == to)
    }

    /// Finds a cycle, returned as a node path whose last element
    /// repeats the first (`[a, b, a]`), or `None` if acyclic.
    #[must_use]
    pub fn cycle(&self) -> Option<Vec<String>> {
        // Iterative white/grey/black DFS over the adjacency map.
        let index: BTreeMap<&str, usize> = self
            .nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (n.as_str(), i))
            .collect();
        let mut adj = vec![Vec::new(); self.nodes.len()];
        for e in &self.edges {
            if let (Some(&f), Some(&t)) = (index.get(e.from.as_str()), index.get(e.to.as_str())) {
                adj[f].push(t);
            }
        }
        let mut color = vec![0u8; self.nodes.len()]; // 0 white, 1 grey, 2 black
        for start in 0..self.nodes.len() {
            if color[start] != 0 {
                continue;
            }
            // Stack of (node, next-neighbor index); `path` mirrors it.
            let mut stack = vec![(start, 0usize)];
            color[start] = 1;
            while let Some(&mut (node, ref mut next)) = stack.last_mut() {
                if let Some(&succ) = adj[node].get(*next) {
                    *next += 1;
                    match color[succ] {
                        0 => {
                            color[succ] = 1;
                            stack.push((succ, 0));
                        }
                        1 => {
                            // Back edge: the cycle is the stack suffix
                            // from `succ` onward, closed with `succ`.
                            let mut path: Vec<String> = stack
                                .iter()
                                .map(|&(n, _)| self.nodes[n].clone())
                                .skip_while(|n| *n != self.nodes[succ])
                                .collect();
                            path.push(self.nodes[succ].clone());
                            return Some(path);
                        }
                        _ => {}
                    }
                } else {
                    color[node] = 2;
                    stack.pop();
                }
            }
        }
        None
    }

    /// Whether the ordering relation is cycle-free.
    #[must_use]
    pub fn is_acyclic(&self) -> bool {
        self.cycle().is_none()
    }
}

/// Outcome of one planted negative control.
#[derive(Debug, Clone)]
pub struct LockControl {
    /// Control name (`planted-abba`, …).
    pub name: &'static str,
    /// Rule the control must trigger.
    pub rule: &'static str,
    /// Whether the detector fired on the planted source.
    pub flagged: bool,
}

/// A full `analyze locks` run: graph, findings, planted controls.
#[derive(Debug, Clone, Default)]
pub struct LockSuiteReport {
    /// The cross-crate lock-order graph.
    pub graph: LockGraph,
    /// Findings, waived ones included, sorted by `(file, line, rule)`.
    pub findings: Vec<Finding>,
    /// Planted-control outcomes, in fixed order.
    pub controls: Vec<LockControl>,
    /// Number of `.rs` files analyzed.
    pub files_scanned: usize,
}

impl LockSuiteReport {
    /// Number of findings not covered by a waiver or inline allow.
    #[must_use]
    pub fn unwaived(&self) -> usize {
        self.findings.iter().filter(|f| !f.waived).count()
    }

    /// Whether every planted control fired.
    #[must_use]
    pub fn controls_ok(&self) -> bool {
        self.controls.iter().all(|c| c.flagged)
    }

    /// Gate: zero unwaived findings and every control fired.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.unwaived() == 0 && self.controls_ok()
    }

    /// Sorts findings into the stable report order.
    pub fn sort(&mut self) {
        self.findings
            .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    }

    /// Renders the report as stable JSON (fixed key order, findings
    /// and edges sorted), mirroring the lint/race report shapes.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(512 + self.findings.len() * 128);
        out.push_str(
            "{\n  \"schema_version\": 1,\n  \"tool\": \"lotus-analyzer\",\n  \"mode\": \"locks\",\n",
        );
        out.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        out.push_str("  \"nodes\": [");
        for (i, n) in self.graph.nodes.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&json_str(n));
        }
        out.push_str("],\n  \"edges\": [");
        for (i, e) in self.graph.edges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"from\": {}, \"to\": {}, \"file\": {}, \"line\": {}}}",
                json_str(&e.from),
                json_str(&e.to),
                json_str(&e.file),
                e.line
            ));
        }
        if !self.graph.edges.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n");
        out.push_str(&format!("  \"acyclic\": {},\n", self.graph.is_acyclic()));
        out.push_str(&format!("  \"total\": {},\n", self.findings.len()));
        out.push_str(&format!("  \"unwaived\": {},\n", self.unwaived()));
        out.push_str("  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {");
            out.push_str(&format!("\"rule\": {}, ", json_str(f.rule)));
            out.push_str(&format!(
                "\"severity\": {}, ",
                json_str(f.severity.as_str())
            ));
            out.push_str(&format!("\"file\": {}, ", json_str(&f.file)));
            out.push_str(&format!("\"line\": {}, ", f.line));
            out.push_str(&format!("\"message\": {}, ", json_str(&f.message)));
            out.push_str(&format!("\"waived\": {}", f.waived));
            out.push('}');
        }
        if !self.findings.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n  \"controls\": [");
        for (i, c) in self.controls.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"name\": {}, \"rule\": {}, \"flagged\": {}}}",
                json_str(c.name),
                json_str(c.rule),
                c.flagged
            ));
        }
        if !self.controls.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }
}

impl fmt::Display for LockSuiteReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for finding in &self.findings {
            writeln!(f, "{finding}")?;
        }
        writeln!(
            f,
            "lock-order graph: {} node(s), {} edge(s){}",
            self.graph.nodes.len(),
            self.graph.edges.len(),
            if self.graph.is_acyclic() {
                ", acyclic"
            } else {
                ", CYCLIC"
            }
        )?;
        for e in &self.graph.edges {
            writeln!(f, "  {} -> {} ({}:{})", e.from, e.to, e.file, e.line)?;
        }
        for c in &self.controls {
            writeln!(
                f,
                "control '{}' ({}): {}",
                c.name,
                c.rule,
                if c.flagged {
                    "fired"
                } else {
                    "MISSED — detector failed to fire"
                }
            )?;
        }
        write!(
            f,
            "{} file(s) scanned, {} finding(s), {} unwaived",
            self.files_scanned,
            self.findings.len(),
            self.unwaived()
        )
    }
}

/// Runs the full lock suite: static analysis over `files` plus the
/// planted negative controls.
#[must_use]
pub fn run_lock_suite(files: &[SourceFile]) -> LockSuiteReport {
    let (graph, findings) = analyze_lock_sources(files);
    let mut report = LockSuiteReport {
        graph,
        findings,
        controls: run_controls(),
        files_scanned: files.len(),
    };
    report.sort();
    report
}

// ---------------------------------------------------------------------
// Per-crate model
// ---------------------------------------------------------------------

struct FileData<'a> {
    path: &'a str,
    toks: Vec<Tok<'a>>,
    allows: Vec<(u32, String)>,
}

#[derive(Clone)]
struct LockInfo {
    id: String,
    rwlock: bool,
}

/// Guard-returning helper classification.
#[derive(Clone, PartialEq, Eq)]
enum Helper {
    /// Always acquires this lock (e.g. `Registry::lock`).
    Fixed(String),
    /// Locks whichever mutex is passed as parameter `i` (e.g.
    /// `shims/par`'s `fn lock<T>(m: &Mutex<T>)`).
    Param(usize),
}

struct FnSig {
    file: usize,
    def: FnDef,
}

#[derive(Default, Clone)]
struct Effects {
    acquires: BTreeSet<String>,
    /// `(callee name, blocking op)` when the function may block.
    blocking: Option<(String, String)>,
    calls: BTreeSet<usize>,
}

struct CrateModel<'a> {
    files: Vec<FileData<'a>>,
    fields: BTreeMap<String, LockInfo>,
    statics: BTreeMap<String, String>,
    condvars: BTreeSet<String>,
    fns: Vec<FnSig>,
    by_name: BTreeMap<String, Vec<usize>>,
    helpers: Vec<Option<Helper>>,
    effects: Vec<Effects>,
}

/// `crates/x/...` → `crates/x`; `shims/x/...` → `shims/x`;
/// `src/...` → `src`; anything else keeps its first component.
fn crate_key(path: &str) -> String {
    let mut it = path.split('/');
    match (it.next(), it.next()) {
        (Some(a @ ("crates" | "shims")), Some(b)) => format!("{a}/{b}"),
        (Some(a), _) => a.to_owned(),
        _ => path.to_owned(),
    }
}

fn is_test_path(path: &str) -> bool {
    path.contains("/tests/") || path.contains("/benches/") || path.contains("/examples/")
}

/// Extracts `field: TracedMutex::new("name", …)` literal names.
fn traced_names(toks: &[Tok<'_>], out: &mut BTreeMap<String, String>) {
    for (i, t) in toks.iter().enumerate() {
        if !(is_ident(t, "TracedMutex") || is_ident(t, "TracedCondvar")) {
            continue;
        }
        // Forward: `:: new ( "lit"`.
        let Some(c1) = next_code(toks, i) else {
            continue;
        };
        let Some(c2) = next_code(toks, c1) else {
            continue;
        };
        if !is_punct(&toks[c1], ":") || !is_punct(&toks[c2], ":") {
            continue;
        }
        let Some(new_i) = next_code(toks, c2) else {
            continue;
        };
        if !is_ident(&toks[new_i], "new") {
            continue;
        }
        let Some(open) = next_code(toks, new_i) else {
            continue;
        };
        if !is_punct(&toks[open], "(") {
            continue;
        }
        let Some(lit_i) = next_code(toks, open) else {
            continue;
        };
        if toks[lit_i].kind != TokKind::Str {
            continue;
        }
        // Backward: `field :`.
        let Some(colon) = prev_code(toks, i) else {
            continue;
        };
        if !is_punct(&toks[colon], ":") {
            continue;
        }
        let Some(field_i) = prev_code(toks, colon) else {
            continue;
        };
        if toks[field_i].kind != TokKind::Ident {
            continue;
        }
        let lit = toks[lit_i].text;
        if lit.len() >= 2 {
            out.entry(toks[field_i].text.to_owned())
                .or_insert_with(|| lit[1..lit.len() - 1].to_owned());
        }
    }
}

fn build_crate_model<'a>(key: &str, files: &[&'a SourceFile]) -> CrateModel<'a> {
    let mut data = Vec::with_capacity(files.len());
    let mut parsed: Vec<ParsedFile> = Vec::with_capacity(files.len());
    let mut traced = BTreeMap::new();
    for f in files {
        let toks = lex(&f.src);
        let mask = test_mask(&toks);
        let allows = inline_allows(&toks);
        traced_names(&toks, &mut traced);
        parsed.push(parse_items(&toks, &mask));
        data.push(FileData {
            path: &f.path,
            toks,
            allows,
        });
    }
    let mut fields = BTreeMap::new();
    let mut statics = BTreeMap::new();
    let mut condvars = BTreeSet::new();
    let mut fns = Vec::new();
    for (fi, p) in parsed.iter().enumerate() {
        for s in &p.structs {
            for field in &s.fields {
                if field.ty.contains("Condvar") {
                    condvars.insert(field.name.clone());
                    continue;
                }
                let traced_mutex = field.ty.contains("TracedMutex<");
                let rwlock = field.ty.contains("RwLock<");
                if !(traced_mutex || rwlock || field.ty.contains("Mutex<")) {
                    continue;
                }
                let id = if traced_mutex {
                    traced
                        .get(&field.name)
                        .cloned()
                        .unwrap_or_else(|| format!("{key}::{}.{}", s.name, field.name))
                } else {
                    format!("{key}::{}.{}", s.name, field.name)
                };
                fields
                    .entry(field.name.clone())
                    .or_insert(LockInfo { id, rwlock });
            }
        }
        for st in &p.statics {
            if st.ty.contains("Mutex<") || st.ty.contains("RwLock<") {
                statics
                    .entry(st.name.clone())
                    .or_insert_with(|| format!("{key}::{}", st.name));
            }
        }
        for d in &p.fns {
            fns.push(FnSig {
                file: fi,
                def: d.clone(),
            });
        }
    }
    let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
    for (i, f) in fns.iter().enumerate() {
        by_name.entry(f.def.name.clone()).or_default().push(i);
    }
    let mut model = CrateModel {
        files: data,
        fields,
        statics,
        condvars,
        fns,
        by_name,
        helpers: Vec::new(),
        effects: Vec::new(),
    };
    model.helpers = model.fns.iter().map(|f| detect_helper(&model, f)).collect();
    model.effects = compute_effects(&model);
    model
}

/// Stage 1: classify guard-returning helpers from signature + direct
/// field/static acquisitions only.
fn detect_helper(model: &CrateModel<'_>, f: &FnSig) -> Option<Helper> {
    if !f.def.ret.contains("Guard") {
        return None;
    }
    for (i, (_, ty)) in f.def.params.iter().enumerate() {
        if ty.contains("Mutex<") || ty.contains("RwLock<") {
            return Some(Helper::Param(i));
        }
    }
    let (open, close) = f.def.body?;
    let toks = &model.files[f.file].toks;
    let mut k = open + 1;
    while k < close {
        if let Some(id) = direct_acquire_at(model, toks, k) {
            return Some(Helper::Fixed(id));
        }
        k += 1;
    }
    None
}

/// Detects a direct `recv.lock()` / `recv.read()` / `recv.write()` on a
/// known lock field or static at token `k` (which must hold the `.`).
fn direct_acquire_at(model: &CrateModel<'_>, toks: &[Tok<'_>], k: usize) -> Option<String> {
    if !is_punct(&toks[k], ".") {
        return None;
    }
    let name_i = next_code(toks, k)?;
    if toks[name_i].kind != TokKind::Ident {
        return None;
    }
    let name = toks[name_i].text;
    let open = next_code(toks, name_i)?;
    if !is_punct(&toks[open], "(") {
        return None;
    }
    let recv = receiver(toks, k)?;
    match name {
        "lock" | "try_lock" => model
            .fields
            .get(recv)
            .map(|l| l.id.clone())
            .or_else(|| model.statics.get(recv).cloned()),
        "read" | "write" => model
            .fields
            .get(recv)
            .filter(|l| l.rwlock)
            .map(|l| l.id.clone()),
        _ => None,
    }
}

/// Index of the receiver identifier of the method call whose `.` is at
/// `k`, skipping one `[…]` index suffix (`deques[i].lock()`).
fn receiver_idx(toks: &[Tok<'_>], k: usize) -> Option<usize> {
    let mut p = prev_code(toks, k)?;
    if is_punct(&toks[p], "]") {
        let mut depth = 0i64;
        loop {
            let t = &toks[p];
            if is_punct(t, "]") {
                depth += 1;
            } else if is_punct(t, "[") {
                depth -= 1;
                if depth == 0 {
                    p = prev_code(toks, p)?;
                    break;
                }
            }
            if p == 0 {
                return None;
            }
            p -= 1;
        }
    }
    (toks[p].kind == TokKind::Ident).then_some(p)
}

/// Resolves the receiver identifier text of the method call whose `.`
/// is at `k`.
fn receiver<'a>(toks: &'a [Tok<'a>], k: usize) -> Option<&'a str> {
    receiver_idx(toks, k).map(|p| toks[p].text)
}

/// Walks back to the first token of the place/postfix chain ending in
/// the acquisition at `k` (`self.shared.queue.lock()` → `self`;
/// `lock(&m)` → `lock`). Returns `None` when the chain hangs off a
/// call result.
fn chain_start(toks: &[Tok<'_>], k: usize) -> Option<usize> {
    let mut cur = if is_punct(&toks[k], ".") {
        receiver_idx(toks, k)?
    } else {
        k
    };
    loop {
        let Some(p) = prev_code(toks, cur) else {
            return Some(cur);
        };
        if is_punct(&toks[p], ".") {
            let q = prev_code(toks, p)?;
            if toks[q].kind == TokKind::Ident {
                cur = q;
                continue;
            }
            if is_punct(&toks[q], ")") {
                return None;
            }
            return Some(cur);
        }
        if is_punct(&toks[p], ":") {
            let q = prev_code(toks, p)?;
            if is_punct(&toks[q], ":") {
                if let Some(r) = prev_code(toks, q) {
                    if toks[r].kind == TokKind::Ident {
                        cur = r;
                        continue;
                    }
                }
            }
            return Some(cur);
        }
        return Some(cur);
    }
}

/// Adapter methods that pass the guard through unchanged, so a binding
/// after them still owns the guard.
const GUARD_ADAPTERS: [&str; 3] = ["unwrap", "expect", "unwrap_or_else"];

/// Whether the value produced by the acquisition call at `k` reaches
/// the end of its statement intact — i.e. the `let` binding owns the
/// guard rather than something derived from it
/// (`m.lock().unwrap_or_else(..)` yes; `lock(&m).take()` no).
fn guard_flows_to_stmt_end(toks: &[Tok<'_>], k: usize) -> bool {
    let open = if is_punct(&toks[k], ".") {
        next_code(toks, k).and_then(|n| next_code(toks, n))
    } else {
        next_code(toks, k)
    };
    let Some(open) = open else {
        return false;
    };
    let mut end = match_delim(toks, open, "(", ")");
    loop {
        let Some(n) = next_code(toks, end) else {
            return false;
        };
        let t = &toks[n];
        if is_punct(t, ";") || is_punct(t, "{") {
            return true;
        }
        if is_punct(t, "?") {
            end = n;
            continue;
        }
        if is_punct(t, ".") {
            let Some(m) = next_code(toks, n) else {
                return false;
            };
            if toks[m].kind == TokKind::Ident && GUARD_ADAPTERS.contains(&toks[m].text) {
                if let Some(o) = next_code(toks, m) {
                    if is_punct(&toks[o], "(") {
                        end = match_delim(toks, o, "(", ")");
                        continue;
                    }
                }
            }
            return false;
        }
        return false;
    }
}

/// Finds the `=` of a `let`/`if let` statement between `s` and `k`,
/// skipping `==`, `=>`, and compound assignment operators.
fn find_eq(toks: &[Tok<'_>], s: usize, k: usize) -> Option<usize> {
    let mut j = s;
    while j < k {
        if is_punct(&toks[j], "=") {
            let next_is_eq_or_gt = toks
                .get(j + 1)
                .is_some_and(|t| is_punct(t, "=") || is_punct(t, ">"));
            let prev_compound = j > 0
                && ["=", "<", ">", "!", "+", "-", "*", "/", "&", "|", "^", "%"]
                    .iter()
                    .any(|p| is_punct(&toks[j - 1], p));
            if next_is_eq_or_gt || prev_compound {
                j += 2;
                continue;
            }
            return Some(j);
        }
        j += 1;
    }
    None
}

/// First identifier strictly inside the paren group opening at `open`.
fn first_ident_in<'a>(toks: &'a [Tok<'a>], open: usize) -> Option<&'a str> {
    let mut depth = 0i64;
    for t in &toks[open..] {
        if is_punct(t, "(") {
            depth += 1;
        } else if is_punct(t, ")") {
            depth -= 1;
            if depth == 0 {
                return None;
            }
        } else if t.kind == TokKind::Ident {
            return Some(t.text);
        }
    }
    None
}

/// Splits the paren group opening at `open` into top-level argument
/// token ranges.
fn split_args(toks: &[Tok<'_>], open: usize) -> Vec<(usize, usize)> {
    let mut args = Vec::new();
    let mut depth = 0i64;
    let mut start = open + 1;
    let mut k = open;
    while k < toks.len() {
        let t = &toks[k];
        if is_punct(t, "(") || is_punct(t, "[") || is_punct(t, "{") {
            depth += 1;
        } else if is_punct(t, ")") || is_punct(t, "]") || is_punct(t, "}") {
            depth -= 1;
            if depth == 0 {
                if k > start {
                    args.push((start, k));
                }
                return args;
            }
        } else if is_punct(t, ",") && depth == 1 {
            args.push((start, k));
            start = k + 1;
        }
        k += 1;
    }
    args
}

/// One classified site in a function body.
enum Site {
    Acquire {
        lock: String,
    },
    Wait {
        condvar: String,
        guard_arg: Option<String>,
    },
    Blocking {
        what: String,
    },
    Call {
        callees: Vec<usize>,
    },
    Release {
        var: String,
    },
}

/// Classifies the token at `k` as a lock-relevant site, if any.
/// `enclosing` is the index of the function being scanned (excluded
/// from call resolution so `append`-style recursion does not fold a
/// function's own effects into its call sites).
fn classify(
    model: &CrateModel<'_>,
    file: usize,
    k: usize,
    enclosing: Option<usize>,
) -> Option<Site> {
    let toks = &model.files[file].toks;
    let t = &toks[k];
    if is_punct(t, ".") {
        return classify_method(model, file, k, enclosing);
    }
    if t.kind == TokKind::Ident {
        return classify_free(model, toks, k, enclosing);
    }
    None
}

fn classify_method(
    model: &CrateModel<'_>,
    file: usize,
    k: usize,
    enclosing: Option<usize>,
) -> Option<Site> {
    let toks = &model.files[file].toks;
    let name_i = next_code(toks, k)?;
    if toks[name_i].kind != TokKind::Ident {
        return None;
    }
    let name = toks[name_i].text;
    let open = next_code(toks, name_i)?;
    if !is_punct(&toks[open], "(") {
        return None;
    }
    match name {
        "lock" | "try_lock" => {
            let recv = receiver(toks, k)?;
            if recv == "self" {
                return resolve_self_helper(model, name, enclosing);
            }
            direct_acquire_at(model, toks, k).map(|lock| Site::Acquire { lock })
        }
        "read" | "write" => direct_acquire_at(model, toks, k).map(|lock| Site::Acquire { lock }),
        "wait" | "wait_timeout" | "wait_while" => {
            let recv = receiver(toks, k)?;
            if !model.condvars.contains(recv) {
                return None;
            }
            Some(Site::Wait {
                condvar: recv.to_owned(),
                guard_arg: first_ident_in(toks, open).map(str::to_owned),
            })
        }
        n if BLOCKING_METHODS.contains(&n) => Some(Site::Blocking { what: n.to_owned() }),
        "join" => {
            // Only the argument-less thread join; `PathBuf::join(..)`
            // and `slice.join(sep)` take arguments.
            let after = next_code(toks, open)?;
            is_punct(&toks[after], ")").then(|| Site::Blocking {
                what: "join".to_owned(),
            })
        }
        n if SKIP_METHODS.contains(&n) => None,
        _ => {
            let recv = receiver(toks, k)?;
            let callees = if recv == "self" {
                let owner = enclosing.and_then(|e| model.fns[e].def.owner.clone())?;
                candidate_fns(model, name, Some(&owner), enclosing)
            } else {
                candidate_fns(model, name, None, enclosing)
            };
            let callees = arity_filter(model, callees, split_args(toks, open).len());
            finish_call(model, callees)
        }
    }
}

/// Drops candidates whose declared parameter count does not match the
/// call site (separates `TcpStream::shutdown(how)` from a project
/// `shutdown()`, for example).
fn arity_filter(model: &CrateModel<'_>, mut callees: Vec<usize>, nargs: usize) -> Vec<usize> {
    callees.retain(|&i| model.fns[i].def.params.len() == nargs);
    callees
}

fn classify_free(
    model: &CrateModel<'_>,
    toks: &[Tok<'_>],
    k: usize,
    enclosing: Option<usize>,
) -> Option<Site> {
    let name = toks[k].text;
    let open = next_code(toks, k)?;
    if !is_punct(&toks[open], "(") {
        return None;
    }
    if let Some(p) = prev_code(toks, k) {
        if is_punct(&toks[p], ".") || is_ident(&toks[p], "fn") {
            return None;
        }
        if is_punct(&toks[p], ":") {
            // Path call `…::name(`: resolve one path segment back.
            let seg_colon = prev_code(toks, p)?;
            if !is_punct(&toks[seg_colon], ":") {
                return None;
            }
            let seg_i = prev_code(toks, seg_colon)?;
            if toks[seg_i].kind != TokKind::Ident {
                return None;
            }
            let seg = toks[seg_i].text;
            let deeper = prev_code(toks, seg_i).is_some_and(|q| is_punct(&toks[q], ":"));
            if seg == "Self" {
                let owner = enclosing.and_then(|e| model.fns[e].def.owner.clone())?;
                let callees = candidate_fns(model, name, Some(&owner), enclosing);
                return finish_acquire_or_call(model, toks, open, callees);
            }
            if seg.chars().next().is_some_and(|c| c.is_ascii_uppercase()) {
                let callees = candidate_fns(model, name, Some(seg), enclosing);
                return finish_acquire_or_call(model, toks, open, callees);
            }
            if deeper {
                // `std::mem::take(…)` and friends: out of scope.
                return None;
            }
            // `module::free_fn(…)` within the crate.
            let callees = free_fns(model, name, enclosing);
            return finish_acquire_or_call(model, toks, open, callees);
        }
    }
    if name == "drop" {
        return first_ident_in(toks, open).map(|v| Site::Release { var: v.to_owned() });
    }
    let callees = free_fns(model, name, enclosing);
    finish_acquire_or_call(model, toks, open, callees)
}

fn resolve_self_helper(
    model: &CrateModel<'_>,
    name: &str,
    enclosing: Option<usize>,
) -> Option<Site> {
    let owner = enclosing.and_then(|e| model.fns[e].def.owner.clone())?;
    let cands = candidate_fns(model, name, Some(&owner), enclosing);
    if let [single] = cands[..] {
        if let Some(Helper::Fixed(id)) = &model.helpers[single] {
            return Some(Site::Acquire { lock: id.clone() });
        }
    }
    None
}

fn candidate_fns(
    model: &CrateModel<'_>,
    name: &str,
    owner: Option<&str>,
    enclosing: Option<usize>,
) -> Vec<usize> {
    model
        .by_name
        .get(name)
        .map(|v| {
            v.iter()
                .copied()
                .filter(|&i| Some(i) != enclosing)
                .filter(|&i| match owner {
                    Some(o) => model.fns[i].def.owner.as_deref() == Some(o),
                    None => true,
                })
                .collect()
        })
        .unwrap_or_default()
}

fn free_fns(model: &CrateModel<'_>, name: &str, enclosing: Option<usize>) -> Vec<usize> {
    model
        .by_name
        .get(name)
        .map(|v| {
            v.iter()
                .copied()
                .filter(|&i| Some(i) != enclosing && model.fns[i].def.owner.is_none())
                .collect()
        })
        .unwrap_or_default()
}

/// Turns a resolved candidate set into an `Acquire` (when it is a
/// single guard helper) or a plain `Call`.
fn finish_acquire_or_call(
    model: &CrateModel<'_>,
    toks: &[Tok<'_>],
    open: usize,
    callees: Vec<usize>,
) -> Option<Site> {
    let callees = arity_filter(model, callees, split_args(toks, open).len());
    if let [single] = callees[..] {
        match &model.helpers[single] {
            Some(Helper::Fixed(id)) => {
                return Some(Site::Acquire { lock: id.clone() });
            }
            Some(Helper::Param(i)) => {
                let args = split_args(toks, open);
                let (lo, hi) = *args.get(*i)?;
                let lock = toks[lo..hi]
                    .iter()
                    .filter(|t| t.kind == TokKind::Ident)
                    .find_map(|t| {
                        model
                            .fields
                            .get(t.text)
                            .map(|l| l.id.clone())
                            .or_else(|| model.statics.get(t.text).cloned())
                    })?;
                return Some(Site::Acquire { lock });
            }
            None => {}
        }
    }
    finish_call(model, callees)
}

fn finish_call(model: &CrateModel<'_>, callees: Vec<usize>) -> Option<Site> {
    if callees.is_empty() {
        return None;
    }
    if callees
        .iter()
        .all(|&i| matches!(&model.helpers[i], Some(Helper::Fixed(_))))
    {
        if let Some(Helper::Fixed(id)) = &model.helpers[callees[0]] {
            let id = id.clone();
            if callees
                .iter()
                .all(|&i| model.helpers[i] == Some(Helper::Fixed(id.clone())))
            {
                return Some(Site::Acquire { lock: id });
            }
        }
    }
    Some(Site::Call { callees })
}

/// Stage 2: direct lock effects per function, closed transitively over
/// crate-local calls.
fn compute_effects(model: &CrateModel<'_>) -> Vec<Effects> {
    let mut effects: Vec<Effects> = Vec::with_capacity(model.fns.len());
    for (fi, f) in model.fns.iter().enumerate() {
        let mut e = Effects::default();
        if let Some((open, close)) = f.def.body {
            let mut k = open + 1;
            while k < close {
                match classify(model, f.file, k, Some(fi)) {
                    Some(Site::Acquire { lock }) => {
                        e.acquires.insert(lock);
                    }
                    Some(Site::Blocking { what }) if e.blocking.is_none() => {
                        e.blocking = Some((f.def.name.clone(), what));
                    }
                    Some(Site::Call { callees }) => {
                        e.calls.extend(callees);
                    }
                    _ => {}
                }
                k += 1;
            }
        }
        effects.push(e);
    }
    // Fixpoint over the crate-local call graph.
    loop {
        let mut changed = false;
        for fi in 0..effects.len() {
            let calls: Vec<usize> = effects[fi].calls.iter().copied().collect();
            for c in calls {
                let (acq, blk) = {
                    let ce = &effects[c];
                    (ce.acquires.clone(), ce.blocking.clone())
                };
                let e = &mut effects[fi];
                for a in acq {
                    changed |= e.acquires.insert(a);
                }
                if e.blocking.is_none() {
                    if let Some(b) = blk {
                        e.blocking = Some(b);
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
    effects
}

// ---------------------------------------------------------------------
// Stateful body scan
// ---------------------------------------------------------------------

struct Guard {
    lock: String,
    var: Option<String>,
    depth: i64,
    temp: bool,
    /// Kill when the `}` closing this depth is reached (`if let` /
    /// `while let` bindings die with their block).
    kill_at: Option<i64>,
}

struct ScanOut {
    findings: Vec<Finding>,
    edges: BTreeMap<(String, String), (String, u32)>,
    nodes: BTreeSet<String>,
}

fn emit(
    out: &mut Vec<Finding>,
    allows: &[(u32, String)],
    path: &str,
    rule: &'static str,
    line: u32,
    message: String,
) {
    let waived = allows
        .iter()
        .any(|(l, r)| r == rule && (*l == line || l + 1 == line));
    out.push(Finding {
        rule,
        severity: Severity::Error,
        file: path.to_owned(),
        line,
        message,
        waived,
    });
}

fn held_list(guards: &[Guard]) -> String {
    let names: Vec<String> = guards.iter().map(|g| format!("`{}`", g.lock)).collect();
    names.join(", ")
}

/// Extracts the binding name of the statement starting at `stmt_start`
/// whose right-hand side produced a guard: `let [mut] name = …`, or the
/// last pattern identifier of `if let` / `while let`.
fn stmt_binding(toks: &[Tok<'_>], stmt_start: usize, upto: usize) -> Option<String> {
    let first = &toks[stmt_start];
    if is_ident(first, "let") {
        let mut j = next_code(toks, stmt_start)?;
        if is_ident(&toks[j], "mut") {
            j = next_code(toks, j)?;
        }
        return (toks[j].kind == TokKind::Ident).then(|| toks[j].text.to_owned());
    }
    if is_ident(first, "if") || is_ident(first, "while") {
        let second = next_code(toks, stmt_start)?;
        if !is_ident(&toks[second], "let") {
            return None;
        }
        // Last pattern identifier before the `=`.
        let mut j = second + 1;
        let mut last = None;
        while j < upto {
            let t = &toks[j];
            if is_punct(t, "=") {
                break;
            }
            if t.kind == TokKind::Ident && !is_ident(t, "mut") && !is_ident(t, "ref") {
                last = Some(t.text.to_owned());
            }
            j += 1;
        }
        return last;
    }
    None
}

#[allow(clippy::too_many_lines)]
fn scan_fn_body(model: &CrateModel<'_>, fi: usize, out: &mut ScanOut) {
    let f = &model.fns[fi];
    let Some((open, close)) = f.def.body else {
        return;
    };
    let file = f.file;
    let toks = &model.files[file].toks;
    let path = model.files[file].path;
    let allows = &model.files[file].allows;
    let mut depth = 0i64;
    let mut round = 0i64;
    let mut guards: Vec<Guard> = Vec::new();
    let mut stmt_start: Option<usize> = None;
    let mut stmt_bound = false;
    // Statement head of each open block, for head-temporary lifetimes.
    let mut heads: Vec<Option<&str>> = Vec::new();
    let mut k = open + 1;
    while k < close {
        let t = &toks[k];
        if !t.kind.is_code() {
            k += 1;
            continue;
        }
        if is_punct(t, "(") || is_punct(t, "[") {
            round += 1;
        } else if is_punct(t, ")") || is_punct(t, "]") {
            round -= 1;
        } else if is_punct(t, ",") && round == 0 {
            // Match-arm / struct-literal separators end the current
            // temporary's statement scope.
            guards.retain(|g| !(g.temp && g.depth == depth));
            stmt_start = None;
            k += 1;
            continue;
        }
        if stmt_start.is_none() && !is_punct(t, "{") && !is_punct(t, "}") && !is_punct(t, ";") {
            stmt_start = Some(k);
            stmt_bound = false;
        }
        if is_punct(t, "{") {
            // `if` / `while` condition temporaries die before the block
            // runs; `match` scrutinees and `for`-head iterators do not.
            let head_kills = stmt_start.is_some_and(|s| {
                let h = &toks[s];
                (is_ident(h, "if") || is_ident(h, "while"))
                    && next_code(toks, s).is_none_or(|n| !is_ident(&toks[n], "let"))
            });
            if head_kills {
                guards.retain(|g| !(g.temp && g.depth == depth));
            }
            heads.push(stmt_start.map(|s| toks[s].text));
            depth += 1;
            stmt_start = None;
            k += 1;
            continue;
        }
        if is_punct(t, "}") {
            guards.retain(|g| g.depth < depth && g.kill_at != Some(depth));
            depth -= 1;
            // `if let` / `match` / `for` head temporaries (scrutinees,
            // iterator chains) die when the statement-expression ends.
            if matches!(
                heads.pop().flatten(),
                Some("if" | "while" | "match" | "for")
            ) {
                guards.retain(|g| !(g.temp && g.depth == depth));
            }
            stmt_start = None;
            k += 1;
            continue;
        }
        if is_punct(t, ";") {
            guards.retain(|g| !(g.temp && g.depth == depth));
            stmt_start = None;
            k += 1;
            continue;
        }
        match classify(model, file, k, Some(fi)) {
            Some(Site::Acquire { lock }) => {
                out.nodes.insert(lock.clone());
                if guards.iter().any(|g| g.lock == lock) {
                    emit(
                        &mut out.findings,
                        allows,
                        path,
                        "lock-double-acquire",
                        t.line,
                        format!(
                            "`{}` is acquired again while already held in this scope (self-deadlock)",
                            lock
                        ),
                    );
                } else {
                    for g in &guards {
                        out.edges
                            .entry((g.lock.clone(), lock.clone()))
                            .or_insert_with(|| (path.to_owned(), t.line));
                    }
                }
                let var = if stmt_bound {
                    None
                } else {
                    stmt_start.and_then(|s| {
                        let v = stmt_binding(toks, s, k)?;
                        let eq = find_eq(toks, s, k)?;
                        let eq_next = next_code(toks, eq)?;
                        let start = chain_start(toks, k)?;
                        (eq_next == start && guard_flows_to_stmt_end(toks, k)).then_some(v)
                    })
                };
                if var.is_some() {
                    stmt_bound = true;
                }
                let if_let_bound = var.is_some()
                    && stmt_start
                        .is_some_and(|s| is_ident(&toks[s], "if") || is_ident(&toks[s], "while"));
                guards.push(Guard {
                    lock,
                    temp: var.is_none(),
                    var,
                    depth,
                    kill_at: if_let_bound.then_some(depth + 1),
                });
            }
            Some(Site::Release { var }) => {
                if let Some(pos) = guards.iter().rposition(|g| g.var.as_deref() == Some(&var)) {
                    guards.remove(pos);
                }
            }
            Some(Site::Wait { condvar, guard_arg }) => {
                let others: Vec<&Guard> = guards
                    .iter()
                    .filter(|g| g.var.as_deref() != guard_arg.as_deref() || g.var.is_none())
                    .collect();
                if !others.is_empty() {
                    let names: Vec<String> =
                        others.iter().map(|g| format!("`{}`", g.lock)).collect();
                    emit(
                        &mut out.findings,
                        allows,
                        path,
                        "lock-blocking-call",
                        t.line,
                        format!(
                            "waits on condvar `{condvar}` while holding {}",
                            names.join(", ")
                        ),
                    );
                }
            }
            Some(Site::Blocking { what }) if !guards.is_empty() => {
                emit(
                    &mut out.findings,
                    allows,
                    path,
                    "lock-blocking-call",
                    t.line,
                    format!("blocking `{what}` while holding {}", held_list(&guards)),
                );
            }
            Some(Site::Call { callees }) if !guards.is_empty() => {
                let mut acq = BTreeSet::new();
                let mut blocking: Option<(String, String)> = None;
                for &c in &callees {
                    acq.extend(model.effects[c].acquires.iter().cloned());
                    if blocking.is_none() {
                        blocking = model.effects[c].blocking.clone();
                    }
                }
                for a in &acq {
                    if guards.iter().any(|g| &g.lock == a) {
                        continue;
                    }
                    out.nodes.insert(a.clone());
                    for g in &guards {
                        out.edges
                            .entry((g.lock.clone(), a.clone()))
                            .or_insert_with(|| (path.to_owned(), t.line));
                    }
                }
                if let Some((via, what)) = blocking {
                    emit(
                        &mut out.findings,
                        allows,
                        path,
                        "lock-blocking-call",
                        t.line,
                        format!(
                            "calls `{via}`, which performs blocking `{what}`, while holding {}",
                            held_list(&guards)
                        ),
                    );
                }
            }
            _ => {}
        }
        k += 1;
    }
}

// ---------------------------------------------------------------------
// Whole-run assembly
// ---------------------------------------------------------------------

/// Analyzes `files` (grouped per crate) and returns the merged graph
/// plus all findings, cycle findings included.
pub(crate) fn analyze_lock_sources(files: &[SourceFile]) -> (LockGraph, Vec<Finding>) {
    let mut by_crate: BTreeMap<String, Vec<&SourceFile>> = BTreeMap::new();
    for f in files {
        if is_test_path(&f.path) {
            continue;
        }
        by_crate.entry(crate_key(&f.path)).or_default().push(f);
    }
    let mut out = ScanOut {
        findings: Vec::new(),
        edges: BTreeMap::new(),
        nodes: BTreeSet::new(),
    };
    let mut allows_by_file: BTreeMap<String, Vec<(u32, String)>> = BTreeMap::new();
    for (key, group) in &by_crate {
        let model = build_crate_model(key, group);
        for fd in &model.files {
            allows_by_file.insert(fd.path.to_owned(), fd.allows.clone());
        }
        for fi in 0..model.fns.len() {
            if model.fns[fi].def.masked {
                continue;
            }
            scan_fn_body(&model, fi, &mut out);
        }
    }
    let mut graph = LockGraph::default();
    for (f, t) in out.edges.keys() {
        out.nodes.insert(f.clone());
        out.nodes.insert(t.clone());
    }
    graph.nodes = out.nodes.iter().cloned().collect();
    graph.edges = out
        .edges
        .iter()
        .map(|((f, t), (file, line))| LockEdge {
            from: f.clone(),
            to: t.clone(),
            file: file.clone(),
            line: *line,
        })
        .collect();
    let mut findings = out.findings;
    // Cycle findings: peel one edge per reported cycle so independent
    // cycles each get a finding (capped defensively).
    let mut work = graph.clone();
    for _ in 0..8 {
        let Some(cyc) = work.cycle() else {
            break;
        };
        let chain = cyc
            .iter()
            .map(|n| format!("`{n}`"))
            .collect::<Vec<_>>()
            .join(" -> ");
        let (file, line) = graph
            .edges
            .iter()
            .find(|e| cyc.len() > 1 && e.from == cyc[0] && e.to == cyc[1])
            .map_or((String::new(), 0), |e| (e.file.clone(), e.line));
        let allows = allows_by_file.get(&file).cloned().unwrap_or_default();
        emit(
            &mut findings,
            &allows,
            &file,
            "lock-order-cycle",
            line,
            format!("lock-order cycle: {chain} (ABBA deadlock candidate)"),
        );
        if cyc.len() >= 2 {
            let (last_from, last_to) = (cyc[cyc.len() - 2].clone(), cyc[cyc.len() - 1].clone());
            work.edges
                .retain(|e| !(e.from == last_from && e.to == last_to));
        } else {
            break;
        }
    }
    (graph, findings)
}

// ---------------------------------------------------------------------
// Planted negative controls
// ---------------------------------------------------------------------

const PLANTED_ABBA: &str = "\
struct PlantedAbba {\n\
    a: Mutex<u32>,\n\
    b: Mutex<u32>,\n\
}\n\
impl PlantedAbba {\n\
    fn forward(&self) {\n\
        let ga = self.a.lock();\n\
        let gb = self.b.lock();\n\
        drop(gb);\n\
        drop(ga);\n\
    }\n\
    fn backward(&self) {\n\
        let gb = self.b.lock();\n\
        let ga = self.a.lock();\n\
        drop(ga);\n\
        drop(gb);\n\
    }\n\
}\n";

const PLANTED_BLOCKING: &str = "\
struct PlantedBlocking {\n\
    log: Mutex<std::fs::File>,\n\
}\n\
impl PlantedBlocking {\n\
    fn commit(&self, buf: &[u8]) {\n\
        let mut f = self.log.lock();\n\
        f.write_all(buf);\n\
        f.sync_data();\n\
    }\n\
}\n";

const PLANTED_DOUBLE: &str = "\
struct PlantedDouble {\n\
    m: Mutex<u32>,\n\
}\n\
impl PlantedDouble {\n\
    fn oops(&self) -> u32 {\n\
        let g1 = self.m.lock();\n\
        let g2 = self.m.lock();\n\
        *g1 + *g2\n\
    }\n\
}\n";

const PLANTED_CONTROLS: [(&str, &str, &str); 3] = [
    ("planted-abba", "lock-order-cycle", PLANTED_ABBA),
    ("planted-blocking", "lock-blocking-call", PLANTED_BLOCKING),
    ("planted-double", "lock-double-acquire", PLANTED_DOUBLE),
];

fn run_controls() -> Vec<LockControl> {
    PLANTED_CONTROLS
        .iter()
        .map(|&(name, rule, src)| {
            let files = [SourceFile {
                path: format!("planted/{name}.rs"),
                src: src.to_owned(),
            }];
            let (_, findings) = analyze_lock_sources(&files);
            LockControl {
                name,
                rule,
                flagged: findings.iter().any(|f| f.rule == rule && !f.waived),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sf(path: &str, src: &str) -> SourceFile {
        SourceFile {
            path: path.to_owned(),
            src: src.to_owned(),
        }
    }

    fn run(src: &str) -> (LockGraph, Vec<Finding>) {
        analyze_lock_sources(&[sf("crates/t/src/lib.rs", src)])
    }

    #[test]
    fn planted_controls_all_fire() {
        let controls = run_controls();
        assert_eq!(controls.len(), 3);
        for c in &controls {
            assert!(c.flagged, "control {} did not fire", c.name);
        }
    }

    #[test]
    fn abba_order_is_a_cycle_finding() {
        let (graph, findings) = run(
            "use std::sync::Mutex;\n\
             pub struct S { a: Mutex<u32>, b: Mutex<u32> }\n\
             impl S {\n\
                 pub fn fwd(&self) { let g = self.a.lock().unwrap(); let h = self.b.lock().unwrap(); drop(g); drop(h); }\n\
                 pub fn bwd(&self) { let g = self.b.lock().unwrap(); let h = self.a.lock().unwrap(); drop(g); drop(h); }\n\
             }\n",
        );
        assert!(graph.has_edge("crates/t::S.a", "crates/t::S.b"));
        assert!(graph.has_edge("crates/t::S.b", "crates/t::S.a"));
        assert!(!graph.is_acyclic());
        assert!(findings.iter().any(|f| f.rule == "lock-order-cycle"));
    }

    #[test]
    fn blocking_write_under_guard_is_flagged() {
        let (_, findings) = run(
            "use std::sync::Mutex;\n\
             pub struct S { m: Mutex<std::fs::File> }\n\
             impl S {\n\
                 pub fn f(&self) { let mut g = self.m.lock().unwrap(); g.write_all(b\"x\").unwrap(); }\n\
             }\n",
        );
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "lock-blocking-call");
        assert!(findings[0].message.contains("write_all"));
    }

    #[test]
    fn take_then_join_pattern_is_clean() {
        // The guard inside `mem::take(&mut *…lock()…)` is a temporary
        // that dies at the `;`, so the join below holds nothing.
        let (_, findings) = run("use std::sync::Mutex;\n\
             pub struct P { workers: Mutex<Vec<std::thread::JoinHandle<()>>> }\n\
             impl P {\n\
                 pub fn shutdown(&self) {\n\
                     let handles = std::mem::take(&mut *self.workers.lock().unwrap());\n\
                     for h in handles {\n\
                         h.join().unwrap();\n\
                     }\n\
                 }\n\
             }\n");
        assert!(findings.is_empty(), "unexpected: {findings:?}");
    }

    #[test]
    fn double_acquire_in_one_scope_is_flagged() {
        let (_, findings) = run(
            "use std::sync::Mutex;\n\
             pub struct S { m: Mutex<u32> }\n\
             impl S {\n\
                 pub fn f(&self) { let a = self.m.lock().unwrap(); let b = self.m.lock().unwrap(); drop(a); drop(b); }\n\
             }\n",
        );
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "lock-double-acquire");
    }

    #[test]
    fn drop_releases_the_guard() {
        let (graph, findings) = run(
            "use std::sync::Mutex;\n\
             pub struct S { a: Mutex<u32>, b: Mutex<u32> }\n\
             impl S {\n\
                 pub fn f(&self) { let g = self.a.lock().unwrap(); drop(g); let _h = self.b.lock().unwrap(); }\n\
             }\n",
        );
        assert!(findings.is_empty());
        assert!(
            graph.edges.is_empty(),
            "unexpected edges: {:?}",
            graph.edges
        );
        assert_eq!(graph.nodes.len(), 2);
    }

    #[test]
    fn param_helper_resolves_to_argument_lock() {
        // shims/par idiom: a free `lock(&mutex)` poison-stripping helper.
        let (graph, findings) = run("use std::sync::{Mutex, MutexGuard};\n\
             fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {\n\
                 m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)\n\
             }\n\
             pub struct P { q: Mutex<u32>, r: Mutex<u32> }\n\
             impl P {\n\
                 pub fn f(&self) { let g = lock(&self.q); let _h = lock(&self.r); drop(g); }\n\
             }\n");
        assert!(findings.is_empty(), "unexpected: {findings:?}");
        assert!(graph.has_edge("crates/t::P.q", "crates/t::P.r"));
    }

    #[test]
    fn callee_effects_add_edges_at_call_site() {
        let (graph, _) = run("use std::sync::Mutex;\n\
             pub struct S { flag: Mutex<bool>, data: Mutex<u32> }\n\
             impl S {\n\
                 fn is_on(&self) -> bool { *self.flag.lock().unwrap() }\n\
                 pub fn f(&self) {\n\
                     let g = self.data.lock().unwrap();\n\
                     if self.is_on() {\n\
                         let _ = &g;\n\
                     }\n\
                 }\n\
             }\n");
        assert!(graph.has_edge("crates/t::S.data", "crates/t::S.flag"));
    }

    #[test]
    fn condvar_wait_on_own_guard_is_clean() {
        let (_, findings) = run("use std::sync::{Condvar, Mutex};\n\
             pub struct S { m: Mutex<bool>, cv: Condvar }\n\
             impl S {\n\
                 pub fn park(&self) {\n\
                     let mut g = self.m.lock().unwrap();\n\
                     while !*g {\n\
                         g = self.cv.wait(g).unwrap();\n\
                     }\n\
                 }\n\
             }\n");
        assert!(findings.is_empty(), "unexpected: {findings:?}");
    }

    #[test]
    fn condvar_wait_holding_another_lock_is_flagged() {
        let (_, findings) = run("use std::sync::{Condvar, Mutex};\n\
             pub struct S { m: Mutex<bool>, other: Mutex<u32>, cv: Condvar }\n\
             impl S {\n\
                 pub fn park(&self) {\n\
                     let a = self.other.lock().unwrap();\n\
                     let g = self.m.lock().unwrap();\n\
                     let g = self.cv.wait(g).unwrap();\n\
                     drop(g);\n\
                     drop(a);\n\
                 }\n\
             }\n");
        assert!(findings
            .iter()
            .any(|f| f.rule == "lock-blocking-call" && f.message.contains("condvar")));
    }

    #[test]
    fn inline_allow_waives_a_lock_finding() {
        let (_, findings) = run(
            "use std::sync::Mutex;\n\
             pub struct S { m: Mutex<std::fs::File> }\n\
             impl S {\n\
                 pub fn f(&self) {\n\
                     let mut g = self.m.lock().unwrap();\n\
                     // analyzer: allow(lock-blocking-call): flush must happen under the commit lock\n\
                     g.write_all(b\"x\").unwrap();\n\
                 }\n\
             }\n",
        );
        assert_eq!(findings.len(), 1);
        assert!(findings[0].waived);
    }

    #[test]
    fn while_condition_temporary_dies_at_body_open() {
        let (graph, findings) = run("use std::sync::Mutex;\n\
             pub struct S { m: Mutex<bool>, b: Mutex<u32> }\n\
             impl S {\n\
                 pub fn f(&self) {\n\
                     while *self.m.lock().unwrap() {\n\
                         let _g = self.b.lock().unwrap();\n\
                     }\n\
                 }\n\
             }\n");
        assert!(findings.is_empty());
        assert!(
            graph.edges.is_empty(),
            "unexpected edges: {:?}",
            graph.edges
        );
    }

    #[test]
    fn if_let_scrutinee_lives_through_block_then_dies() {
        // Edition-2021 semantics: the scrutinee temporary is live inside
        // the `if let` block (edge expected) but dropped at its `}`.
        let (graph, _) = run("use std::sync::Mutex;\n\
             pub struct S { m: Mutex<Option<u32>>, b: Mutex<u32>, c: Mutex<u32> }\n\
             impl S {\n\
                 pub fn inside(&self) {\n\
                     if let Some(v) = self.m.lock().unwrap().take() {\n\
                         let _g = self.b.lock().unwrap();\n\
                         let _ = v;\n\
                     }\n\
                 }\n\
                 pub fn after(&self) {\n\
                     if let Some(v) = self.m.lock().unwrap().take() {\n\
                         let _ = v;\n\
                     }\n\
                     let _g = self.c.lock().unwrap();\n\
                 }\n\
             }\n");
        assert!(graph.has_edge("crates/t::S.m", "crates/t::S.b"));
        assert!(!graph.has_edge("crates/t::S.m", "crates/t::S.c"));
    }

    #[test]
    fn statics_and_rwlocks_are_inventoried() {
        let (graph, findings) = run(
            "use std::sync::{Mutex, RwLock};\n\
             static REG: Mutex<Vec<u32>> = Mutex::new(Vec::new());\n\
             pub struct S { m: Mutex<u32>, s: RwLock<u32> }\n\
             impl S {\n\
                 pub fn f(&self) { let g = self.m.lock().unwrap(); REG.lock().unwrap().push(1); drop(g); }\n\
                 pub fn r(&self) { let g = self.s.read().unwrap(); let _h = self.m.lock().unwrap(); drop(g); }\n\
             }\n",
        );
        assert!(findings.is_empty(), "unexpected: {findings:?}");
        assert!(graph.has_edge("crates/t::S.m", "crates/t::REG"));
        assert!(graph.has_edge("crates/t::S.s", "crates/t::S.m"));
    }

    #[test]
    fn traced_mutex_uses_registered_name() {
        let (graph, _) = run(
            "use lotus_telemetry::sync::TracedMutex;\n\
             use std::sync::Mutex;\n\
             pub struct S { inner: TracedMutex<u32>, b: Mutex<u32> }\n\
             impl S {\n\
                 pub fn new() -> Self { Self { inner: TracedMutex::new(\"t.inner\", 0), b: Mutex::new(0) } }\n\
                 pub fn f(&self) { let g = self.inner.lock(); let _h = self.b.lock().unwrap(); drop(g); }\n\
             }\n",
        );
        assert!(graph.has_edge("t.inner", "crates/t::S.b"));
    }

    #[test]
    fn report_json_is_stable_and_structured() {
        let files = [sf(
            "crates/t/src/lib.rs",
            "use std::sync::Mutex;\n\
             pub struct S { a: Mutex<u32>, b: Mutex<u32> }\n\
             impl S {\n\
                 pub fn f(&self) { let g = self.a.lock().unwrap(); let _h = self.b.lock().unwrap(); drop(g); }\n\
             }\n",
        )];
        let report = run_lock_suite(&files);
        assert!(report.controls_ok());
        let json = report.to_json();
        assert_eq!(json, run_lock_suite(&files).to_json(), "output not stable");
        for needle in [
            "\"schema_version\": 1",
            "\"mode\": \"locks\"",
            "\"acyclic\": true",
            "\"nodes\": [\"crates/t::S.a\", \"crates/t::S.b\"]",
            "\"controls\": [",
            "\"flagged\": true",
        ] {
            assert!(json.contains(needle), "missing {needle} in:\n{json}");
        }
    }
}
