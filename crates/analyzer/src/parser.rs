//! A lightweight item/block parser layered on the lexer.
//!
//! The lock-discipline pass needs more shape than the token-stream
//! rules: which `fn` bodies exist, which `impl` owns them, what fields
//! a struct declares, and where a body's braces open and close. This
//! module recovers exactly that much structure — items, not
//! expressions — and leaves everything inside a body as a raw token
//! range for [`crate::locks`]'s scanner to walk.
//!
//! Deliberate non-goals (documented blind spots, DESIGN.md §15): no
//! type inference, no trait resolution (calls through trait objects are
//! invisible), no nested `fn` items inside bodies, and tuple-struct
//! fields are skipped (locks live in named fields here).

use crate::lexer::{Tok, TokKind};
use crate::rules::{is_ident, is_punct, match_delim, next_code};

/// A named struct field: `name: Type`.
#[derive(Debug, Clone)]
pub(crate) struct FieldDef {
    /// Field name.
    pub name: String,
    /// Type text with all whitespace/comments dropped, e.g.
    /// `TracedMutex<VecDeque<Job>>`.
    pub ty: String,
}

/// A struct item with named fields (tuple/unit structs have none).
#[derive(Debug, Clone)]
pub(crate) struct StructDef {
    /// Type name.
    pub name: String,
    /// Named fields in declaration order.
    pub fields: Vec<FieldDef>,
}

/// A `static NAME: Type` item, found at any nesting depth (function
/// bodies included — `fn`-local lock statics are real locks).
#[derive(Debug, Clone)]
pub(crate) struct StaticDef {
    /// Static name.
    pub name: String,
    /// Type text, whitespace dropped.
    pub ty: String,
}

/// A function item: enough signature to resolve calls plus the body's
/// token range.
#[derive(Debug, Clone)]
pub(crate) struct FnDef {
    /// Function name.
    pub name: String,
    /// `impl` type the function belongs to (`None` for free functions).
    pub owner: Option<String>,
    /// Return-type text (everything between `->` and the body or `;`),
    /// whitespace dropped; empty when the function returns `()`.
    pub ret: String,
    /// `(pattern name, type text)` per parameter; receivers (`self`)
    /// are skipped.
    pub params: Vec<(String, String)>,
    /// Token indexes of the body's `{` and `}`; `None` for trait
    /// method declarations and extern fns.
    pub body: Option<(usize, usize)>,
    /// Whether the function sits inside test-only code.
    pub masked: bool,
}

/// Everything the item parser recovers from one file.
#[derive(Debug, Clone, Default)]
pub(crate) struct ParsedFile {
    /// Struct items with named fields.
    pub structs: Vec<StructDef>,
    /// Function items, impl methods included.
    pub fns: Vec<FnDef>,
    /// `static` items (any depth).
    pub statics: Vec<StaticDef>,
}

/// Parses item structure out of a token stream. `mask` marks test-only
/// tokens (same convention as the lint rules).
pub(crate) fn parse_items(toks: &[Tok<'_>], mask: &[bool]) -> ParsedFile {
    let mut out = ParsedFile::default();
    scan_items(toks, mask, 0, toks.len(), None, &mut out);
    collect_statics(toks, &mut out);
    out
}

/// Joins token texts into canonical whitespace-free type text.
fn type_text(toks: &[Tok<'_>]) -> String {
    let mut s = String::new();
    for t in toks {
        if t.kind.is_code() {
            s.push_str(t.text);
        }
    }
    s
}

/// Skips a `<…>` generic-argument list starting at `i` (which must hold
/// `<`), tolerating `->` inside `Fn(..) -> T` bounds. Returns the index
/// one past the closing `>`.
fn skip_generics(toks: &[Tok<'_>], i: usize) -> usize {
    let mut depth = 0i64;
    let mut j = i;
    while j < toks.len() {
        let t = &toks[j];
        if is_punct(t, "<") {
            depth += 1;
        } else if is_punct(t, ">") {
            // `->`'s `>` is not a closer.
            let arrow = j > 0 && is_punct(&toks[j - 1], "-");
            if !arrow {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
        }
        j += 1;
    }
    j
}

/// Walks `[lo, hi)` at item position, recursing into `impl`/`mod`
/// bodies. `owner` names the enclosing `impl` type, if any.
fn scan_items(
    toks: &[Tok<'_>],
    mask: &[bool],
    lo: usize,
    hi: usize,
    owner: Option<&str>,
    out: &mut ParsedFile,
) {
    let mut i = lo;
    while i < hi {
        let t = &toks[i];
        if !t.kind.is_code() {
            i += 1;
            continue;
        }
        if is_ident(t, "impl") {
            i = parse_impl(toks, mask, i, hi, out);
        } else if is_ident(t, "mod") {
            // `mod name { … }` recurses; `mod name;` is skipped.
            let Some(name_i) = next_code(toks, i) else {
                break;
            };
            let mut j = name_i + 1;
            while j < hi && !is_punct(&toks[j], "{") && !is_punct(&toks[j], ";") {
                j += 1;
            }
            if j < hi && is_punct(&toks[j], "{") {
                let close = match_delim(toks, j, "{", "}");
                scan_items(toks, mask, j + 1, close.min(hi), owner, out);
                i = close + 1;
            } else {
                i = j + 1;
            }
        } else if is_ident(t, "struct") {
            i = parse_struct(toks, i, hi, out);
        } else if is_ident(t, "fn") {
            i = parse_fn(toks, mask, i, hi, owner, out);
        } else if is_ident(t, "enum") || is_ident(t, "union") || is_ident(t, "trait") {
            // Skip the whole item body (trait default methods are a
            // documented blind spot).
            let mut j = i + 1;
            while j < hi && !is_punct(&toks[j], "{") && !is_punct(&toks[j], ";") {
                j += 1;
            }
            i = if j < hi && is_punct(&toks[j], "{") {
                match_delim(toks, j, "{", "}") + 1
            } else {
                j + 1
            };
        } else if is_punct(t, "{") {
            // A stray block at item position (macro invocation body,
            // `thread_local! { … }`); statics inside are still found by
            // the flat static scan.
            i = match_delim(toks, i, "{", "}") + 1;
        } else {
            i += 1;
        }
    }
}

/// Parses `impl … { … }` starting at the `impl` keyword; returns the
/// index one past the body.
fn parse_impl(
    toks: &[Tok<'_>],
    mask: &[bool],
    at: usize,
    hi: usize,
    out: &mut ParsedFile,
) -> usize {
    let mut j = at + 1;
    if j < hi && is_punct(&toks[j], "<") {
        j = skip_generics(toks, j);
    }
    // Collect header tokens up to the body; `impl Trait for Type` takes
    // the ident after `for`, otherwise the first ident is the type.
    let mut ty: Option<String> = None;
    let mut after_for = false;
    while j < hi && !is_punct(&toks[j], "{") && !is_punct(&toks[j], ";") {
        let t = &toks[j];
        if is_ident(t, "for") {
            after_for = true;
            ty = None;
        } else if t.kind == TokKind::Ident && ty.is_none() && !is_ident(t, "where") {
            // Take the *last* path segment: `fmt::Debug for X` never
            // gets here with `ty` unset after `for` resets it, and
            // `crate::Registry` resolves to `Registry`.
            let mut k = j;
            while k + 2 < hi && is_punct(&toks[k + 1], ":") && is_punct(&toks[k + 2], ":") {
                if let Some(n) = next_code(toks, k + 2) {
                    if toks[n].kind == TokKind::Ident {
                        k = n;
                        continue;
                    }
                }
                break;
            }
            ty = Some(toks[k].text.to_owned());
            j = k;
        }
        j += 1;
    }
    let _ = after_for;
    if j >= hi || !is_punct(&toks[j], "{") {
        return j + 1;
    }
    let close = match_delim(toks, j, "{", "}");
    let owner = ty.unwrap_or_default();
    scan_items(
        toks,
        mask,
        j + 1,
        close.min(hi),
        if owner.is_empty() { None } else { Some(&owner) },
        out,
    );
    close + 1
}

/// Parses `struct Name { fields }` starting at the keyword; returns the
/// index one past the item.
fn parse_struct(toks: &[Tok<'_>], at: usize, hi: usize, out: &mut ParsedFile) -> usize {
    let Some(name_i) = next_code(toks, at) else {
        return at + 1;
    };
    if toks[name_i].kind != TokKind::Ident {
        return name_i;
    }
    let name = toks[name_i].text.to_owned();
    let mut j = name_i + 1;
    if j < hi && is_punct(&toks[j], "<") {
        j = skip_generics(toks, j);
    }
    // Tuple struct: skip `( … )` then run to the `;`.
    if j < hi && is_punct(&toks[j], "(") {
        let close = match_delim(toks, j, "(", ")");
        out.structs.push(StructDef {
            name,
            fields: Vec::new(),
        });
        let mut k = close + 1;
        while k < hi && !is_punct(&toks[k], ";") {
            k += 1;
        }
        return k + 1;
    }
    // Skip a where clause to reach `{` (or `;` for a unit struct).
    while j < hi && !is_punct(&toks[j], "{") && !is_punct(&toks[j], ";") {
        j += 1;
    }
    if j >= hi || is_punct(&toks[j], ";") {
        out.structs.push(StructDef {
            name,
            fields: Vec::new(),
        });
        return j + 1;
    }
    let close = match_delim(toks, j, "{", "}");
    let mut fields = Vec::new();
    let mut k = j + 1;
    while k < close {
        let t = &toks[k];
        if !t.kind.is_code() {
            k += 1;
            continue;
        }
        if is_punct(t, "#") {
            // Attribute: skip `#[…]`.
            if let Some(open) = next_code(toks, k) {
                if is_punct(&toks[open], "[") {
                    k = match_delim(toks, open, "[", "]") + 1;
                    continue;
                }
            }
            k += 1;
            continue;
        }
        if is_ident(t, "pub") {
            k += 1;
            if k < close && is_punct(&toks[k], "(") {
                k = match_delim(toks, k, "(", ")") + 1;
            }
            continue;
        }
        if t.kind == TokKind::Ident {
            // `name : Type` up to a top-level `,`.
            let Some(colon) = next_code(toks, k) else {
                break;
            };
            if !is_punct(&toks[colon], ":") {
                k += 1;
                continue;
            }
            let (ty_end, _) = scan_to_comma(toks, colon + 1, close);
            fields.push(FieldDef {
                name: t.text.to_owned(),
                ty: type_text(&toks[colon + 1..ty_end]),
            });
            k = ty_end + 1;
            continue;
        }
        k += 1;
    }
    out.structs.push(StructDef { name, fields });
    close + 1
}

/// Scans from `from` to the next `,` at zero angle/paren/bracket depth,
/// stopping at `hi`. Returns `(index_of_comma_or_hi, depth_balanced)`.
fn scan_to_comma(toks: &[Tok<'_>], from: usize, hi: usize) -> (usize, bool) {
    let mut angle = 0i64;
    let mut round = 0i64;
    let mut square = 0i64;
    let mut j = from;
    while j < hi {
        let t = &toks[j];
        if is_punct(t, "<") {
            angle += 1;
        } else if is_punct(t, ">") && !(j > 0 && is_punct(&toks[j - 1], "-")) {
            angle -= 1;
        } else if is_punct(t, "(") {
            round += 1;
        } else if is_punct(t, ")") {
            round -= 1;
        } else if is_punct(t, "[") {
            square += 1;
        } else if is_punct(t, "]") {
            square -= 1;
        } else if is_punct(t, ",") && angle == 0 && round == 0 && square == 0 {
            return (j, true);
        }
        j += 1;
    }
    (hi, angle == 0 && round == 0 && square == 0)
}

/// Parses a `fn` item starting at the keyword; returns the index one
/// past the body (or the `;`).
fn parse_fn(
    toks: &[Tok<'_>],
    mask: &[bool],
    at: usize,
    hi: usize,
    owner: Option<&str>,
    out: &mut ParsedFile,
) -> usize {
    let Some(name_i) = next_code(toks, at) else {
        return at + 1;
    };
    if toks[name_i].kind != TokKind::Ident {
        return name_i;
    }
    let name = toks[name_i].text.to_owned();
    let mut j = name_i + 1;
    if j < hi && is_punct(&toks[j], "<") {
        j = skip_generics(toks, j);
    }
    if j >= hi || !is_punct(&toks[j], "(") {
        return j;
    }
    let pclose = match_delim(toks, j, "(", ")");
    let params = parse_params(toks, j + 1, pclose);
    // Return type: tokens between `->` and the body/`;`/`where`.
    let mut k = pclose + 1;
    let mut ret_lo = None;
    while k < hi
        && !is_punct(&toks[k], "{")
        && !is_punct(&toks[k], ";")
        && !is_ident(&toks[k], "where")
    {
        if ret_lo.is_none() && k > pclose && is_punct(&toks[k], ">") && is_punct(&toks[k - 1], "-")
        {
            ret_lo = Some(k + 1);
        }
        k += 1;
    }
    let ret = ret_lo.map_or(String::new(), |lo| type_text(&toks[lo..k.min(hi)]));
    // Skip the where clause to the body.
    while k < hi && !is_punct(&toks[k], "{") && !is_punct(&toks[k], ";") {
        k += 1;
    }
    let body = (k < hi && is_punct(&toks[k], "{")).then(|| (k, match_delim(toks, k, "{", "}")));
    out.fns.push(FnDef {
        name,
        owner: owner.map(str::to_owned),
        ret,
        params,
        body,
        masked: mask.get(at).copied().unwrap_or(false),
    });
    body.map_or(k + 1, |(_, close)| close + 1)
}

/// Parses `(pattern: Type, …)` between `lo` and `hi` (the parens
/// excluded). `self` receivers are dropped.
fn parse_params(toks: &[Tok<'_>], lo: usize, hi: usize) -> Vec<(String, String)> {
    let mut params = Vec::new();
    let mut j = lo;
    while j < hi {
        let (comma, _) = scan_to_comma(toks, j, hi);
        let piece = &toks[j..comma];
        // Split at the first top-level `:` (not `::`).
        let mut colon = None;
        for (idx, t) in piece.iter().enumerate() {
            if is_punct(t, ":")
                && !(idx + 1 < piece.len() && is_punct(&piece[idx + 1], ":"))
                && !(idx > 0 && is_punct(&piece[idx - 1], ":"))
            {
                colon = Some(idx);
                break;
            }
        }
        if let Some(c) = colon {
            let pat = &piece[..c];
            let is_self = pat.iter().any(|t| is_ident(t, "self"));
            let name = pat
                .iter()
                .rev()
                .find(|t| t.kind == TokKind::Ident && !is_ident(t, "mut"))
                .map(|t| t.text.to_owned());
            if let Some(name) = name {
                if !is_self {
                    params.push((name, type_text(&piece[c + 1..])));
                }
            }
        }
        j = comma + 1;
    }
    params
}

/// Flat scan for `static [mut] NAME: Type =` at any depth; lifetimes
/// (`'static`) are a different token kind and never match.
fn collect_statics(toks: &[Tok<'_>], out: &mut ParsedFile) {
    let mut i = 0;
    while i < toks.len() {
        if !is_ident(&toks[i], "static") {
            i += 1;
            continue;
        }
        let Some(mut name_i) = next_code(toks, i) else {
            break;
        };
        if is_ident(&toks[name_i], "mut") {
            let Some(n) = next_code(toks, name_i) else {
                break;
            };
            name_i = n;
        }
        if toks[name_i].kind != TokKind::Ident {
            i = name_i;
            continue;
        }
        let Some(colon) = next_code(toks, name_i) else {
            break;
        };
        if !is_punct(&toks[colon], ":") {
            i = name_i + 1;
            continue;
        }
        // Type runs to the `=` (or `;` for extern statics).
        let mut j = colon + 1;
        while j < toks.len() && !is_punct(&toks[j], "=") && !is_punct(&toks[j], ";") {
            j += 1;
        }
        out.statics.push(StaticDef {
            name: toks[name_i].text.to_owned(),
            ty: type_text(&toks[colon + 1..j]),
        });
        i = j + 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::rules::test_mask;

    fn parse(src: &str) -> ParsedFile {
        let toks = lex(src);
        let mask = test_mask(&toks);
        parse_items(&toks, &mask)
    }

    #[test]
    fn structs_with_fields_and_generics() {
        let p = parse(
            "pub struct Shared { queue: Mutex<VecDeque<Job>>, wake: Condvar, capacity: usize }\n\
             struct Pair<T>(T, T);\n\
             struct Unit;",
        );
        assert_eq!(p.structs.len(), 3);
        let shared = &p.structs[0];
        assert_eq!(shared.name, "Shared");
        assert_eq!(shared.fields.len(), 3);
        assert_eq!(shared.fields[0].name, "queue");
        assert_eq!(shared.fields[0].ty, "Mutex<VecDeque<Job>>");
        assert_eq!(shared.fields[1].ty, "Condvar");
        assert!(p.structs[1].fields.is_empty());
    }

    #[test]
    fn comma_inside_generics_does_not_split_fields() {
        let p = parse("struct S { durable: Mutex<HashMap<String, String>>, n: u32 }");
        assert_eq!(p.structs[0].fields.len(), 2);
        assert_eq!(p.structs[0].fields[0].ty, "Mutex<HashMap<String,String>>");
    }

    #[test]
    fn impl_methods_carry_their_owner() {
        let p = parse(
            "impl Registry {\n    fn lock(&self) -> MutexGuard<'_, Inner> { self.inner.lock() }\n}\n\
             impl fmt::Debug for Registry { fn fmt(&self, f: &mut F) -> fmt::Result { ok() } }\n\
             fn free() {}",
        );
        assert_eq!(p.fns.len(), 3);
        assert_eq!(p.fns[0].name, "lock");
        assert_eq!(p.fns[0].owner.as_deref(), Some("Registry"));
        assert!(p.fns[0].ret.contains("MutexGuard"));
        assert_eq!(p.fns[1].name, "fmt");
        assert_eq!(p.fns[1].owner.as_deref(), Some("Registry"));
        assert_eq!(p.fns[2].owner, None);
        assert!(p.fns[2].body.is_some());
    }

    #[test]
    fn generic_fn_params_resolve() {
        let p = parse("fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> { m.lock().unwrap() }");
        assert_eq!(p.fns.len(), 1);
        assert_eq!(
            p.fns[0].params,
            vec![("m".to_owned(), "&Mutex<T>".to_owned())]
        );
        assert!(p.fns[0].ret.contains("Guard"));
    }

    #[test]
    fn fn_local_static_is_found() {
        let p = parse(
            "fn limit_lock() -> MutexGuard<'static, usize> {\n\
                 static LIMIT: Mutex<usize> = Mutex::new(0);\n\
                 LIMIT.lock().unwrap()\n\
             }",
        );
        assert_eq!(p.statics.len(), 1);
        assert_eq!(p.statics[0].name, "LIMIT");
        assert_eq!(p.statics[0].ty, "Mutex<usize>");
    }

    #[test]
    fn test_items_are_masked() {
        let p = parse(
            "fn real() {}\n\
             #[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {}\n}",
        );
        let real = p.fns.iter().find(|f| f.name == "real").expect("real");
        let t = p.fns.iter().find(|f| f.name == "t").expect("t");
        assert!(!real.masked);
        assert!(t.masked);
    }

    #[test]
    fn nested_mod_and_where_clause() {
        let p = parse(
            "mod inner {\n    pub struct S { m: Mutex<u8> }\n    impl S { fn get(&self) where Self: Sized { } }\n}",
        );
        assert_eq!(p.structs.len(), 1);
        assert_eq!(p.fns[0].owner.as_deref(), Some("S"));
        assert!(p.fns[0].body.is_some());
    }
}
