//! Deterministic-schedule race checking over the LOTUS kernels.
//!
//! Built on `shims/par`'s scheduler mode ([`rayon::sched`]): inside
//! [`rayon::sched::with_schedule`] every parallel-for replays its task
//! bodies in a seeded permutation while the instrumented kernels log the
//! address ranges each logical task reads and writes (the per-vertex
//! degree/entry windows of Algorithm 2, the HE/NHE lists the three
//! counting phases of Algorithm 3 scan, the forward drivers' `N⁻`
//! lists). Two properties are checked per scenario:
//!
//! 1. **no overlap** — no two distinct tasks write overlapping byte
//!    ranges, and no task reads a range another task writes
//!    (synchronized atomics are deliberately not logged: the shadow log
//!    models *plain* accesses);
//! 2. **order independence** — the scheduled result equals the
//!    unscheduled reference, under every seed.
//!
//! [`planted_overlap`] is the negative control: a test-only kernel with
//! a real overlapping window claim, proving the detector actually fires.

use lotus_core::config::HubCount;
use lotus_core::per_vertex::count_per_vertex;
use lotus_core::preprocess::build_lotus_graph;
use lotus_core::{LotusConfig, LotusCounter};
use lotus_graph::UndirectedCsr;
use lotus_resilience::RunGuard;
use rayon::hb::{self, Event};
use rayon::sched::{self, Access, ClockInfo, RaceReport, SERIAL_TASK};

use crate::diag::json_str;

/// The fixed seeds CI replays (documented in DESIGN.md §10).
pub const FIXED_SEEDS: [u64; 3] = [7, 42, 0x5EED];

/// One scenario under one seed.
#[derive(Debug)]
pub struct ScenarioOutcome {
    /// Kernel-under-test name.
    pub scenario: &'static str,
    /// Schedule seed.
    pub seed: u64,
    /// Shadow-access-log verdict.
    pub race: RaceReport,
    /// Whether the scheduled run reproduced the unscheduled reference.
    pub agrees: bool,
}

impl ScenarioOutcome {
    /// Clean = no races and the result matched the reference.
    pub fn is_clean(&self) -> bool {
        self.race.is_clean() && self.agrees
    }
}

/// One planted-race negative control: a fixture with a deliberate
/// synchronization bug that the detector must flag.
#[derive(Debug)]
pub struct ControlOutcome {
    /// Control name (one per sync feature, see [`planted_controls`]).
    pub name: &'static str,
    /// The detector's verdict on the planted bug.
    pub report: RaceReport,
}

impl ControlOutcome {
    /// A control passes by being *flagged* — a clean report means the
    /// detector went blind to this bug class.
    pub fn flagged(&self) -> bool {
        !self.report.is_clean()
    }
}

/// All scenarios across all seeds, plus the planted negative controls.
#[derive(Debug, Default)]
pub struct RaceSuiteReport {
    /// Per-(scenario, seed) outcomes.
    pub outcomes: Vec<ScenarioOutcome>,
    /// Planted-race controls (must all be flagged).
    pub controls: Vec<ControlOutcome>,
}

impl RaceSuiteReport {
    /// Whether every scenario is race-free and order-independent, and
    /// every planted control was caught.
    pub fn is_clean(&self) -> bool {
        self.outcomes.iter().all(ScenarioOutcome::is_clean)
            && self.controls.iter().all(ControlOutcome::flagged)
    }

    /// Renders the suite as stable JSON for the CI artifact.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256 + self.outcomes.len() * 160);
        out.push_str(
            "{\n  \"schema_version\": 1,\n  \"tool\": \"lotus-analyzer\",\n  \"mode\": \"race\",\n",
        );
        out.push_str(&format!("  \"clean\": {},\n", self.is_clean()));
        out.push_str("  \"outcomes\": [");
        for (i, o) in self.outcomes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {");
            out.push_str(&format!("\"scenario\": {}, ", json_str(o.scenario)));
            out.push_str(&format!("\"seed\": {}, ", o.seed));
            out.push_str(&format!("\"regions\": {}, ", o.race.regions));
            out.push_str(&format!("\"accesses\": {}, ", o.race.accesses));
            out.push_str(&format!("\"races\": {}, ", o.race.total_races));
            out.push_str(&format!("\"agrees\": {}, ", o.agrees));
            out.push_str("\"race_details\": [");
            push_races(&mut out, &o.race);
            out.push_str("]}");
        }
        if !self.outcomes.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n  \"controls\": [");
        for (i, c) in self.controls.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {");
            out.push_str(&format!("\"name\": {}, ", json_str(c.name)));
            out.push_str(&format!("\"flagged\": {}, ", c.flagged()));
            out.push_str(&format!("\"races\": {}, ", c.report.total_races));
            out.push_str("\"race_details\": [");
            push_races(&mut out, &c.report);
            out.push_str("]}");
        }
        if !self.controls.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }
}

/// Appends one report's races (with clock evidence) as JSON objects.
fn push_races(out: &mut String, report: &RaceReport) {
    for (j, r) in report.races.iter().enumerate() {
        if j > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!(
            "{{\"label_a\": {}, \"task_a\": {}, \"label_b\": {}, \"task_b\": {}, \
             \"write_write\": {}, \"overlap_len\": {}, \"clock_a\": {}, \"clock_b\": {}}}",
            json_str(r.label_a),
            r.task_a,
            json_str(r.label_b),
            r.task_b,
            r.write_write,
            r.overlap_len,
            clock_json(&r.clock_a),
            clock_json(&r.clock_b)
        ));
    }
}

/// One side's clock evidence as a JSON object. The serial mainline is
/// `"region": null`; an unjoined task is `"join": null`.
fn clock_json(c: &ClockInfo) -> String {
    let region = if c.region == u32::MAX {
        "null".to_owned()
    } else {
        c.region.to_string()
    };
    let task = if c.task == SERIAL_TASK {
        "null".to_owned()
    } else {
        c.task.to_string()
    };
    let join = c.join.map_or("null".to_owned(), |j| j.to_string());
    format!(
        "{{\"region\": {region}, \"task\": {task}, \"epoch\": {}, \"fork\": {}, \"join\": {join}}}",
        c.epoch, c.fork
    )
}

fn test_graph() -> UndirectedCsr {
    lotus_gen::Rmat::new(8, 8).generate(3)
}

fn config() -> LotusConfig {
    LotusConfig::default().with_hub_count(HubCount::Fixed(32))
}

/// Runs every shipped LOTUS kernel under every seed, comparing against
/// the unscheduled reference result.
pub fn run_suite(seeds: &[u64]) -> RaceSuiteReport {
    let g = test_graph();
    let mut outcomes = Vec::new();

    let mut scenario = |name: &'static str, f: &dyn Fn(&UndirectedCsr) -> u64| {
        let reference = f(&g);
        for &seed in seeds {
            let (value, race) = sched::with_schedule(seed, || f(&g));
            outcomes.push(ScenarioOutcome {
                scenario: name,
                seed,
                race,
                agrees: value == reference,
            });
        }
    };

    scenario("preprocess+phases", &|g| {
        LotusCounter::new(config()).count(g).total()
    });
    scenario("phases-guarded", &|g| {
        LotusCounter::new(config())
            .count_guarded(g, &RunGuard::unlimited())
            .map_or(u64::MAX, |r| r.total())
    });
    scenario("per-vertex", &|g| {
        let lg = build_lotus_graph(g, &config());
        count_per_vertex(&lg).iter().sum()
    });
    scenario("forward", &|g| lotus_algos::forward_count(g));
    scenario("forward-hashed", &|g| {
        lotus_algos::forward_hashed::forward_hashed_count(g)
    });

    RaceSuiteReport {
        outcomes,
        controls: planted_controls(),
    }
}

fn ev_access(region: u32, task: u32, write: bool, base: usize, len: usize) -> Event {
    Event::Access(Access {
        region,
        task,
        write,
        base,
        len,
        label: if write {
            "control.write"
        } else {
            "control.read"
        },
    })
}

/// The planted-race negative controls — one deliberate bug per
/// synchronization feature the happens-before detector models. Each
/// must come back flagged; a clean verdict means the detector lost
/// sight of that bug class.
///
/// - `planted-overlap` (PR-4 control): sibling tasks claim overlapping
///   windows inside one region — caught by the basic fork-level
///   concurrency check.
/// - `missing-join`: a forked region never joins, so nothing orders its
///   write before the continuation's read.
/// - `dropped-combine`: in a reduction region, one task's combine edge
///   is missing — its write must stay unordered against the
///   continuation even though the region joined.
/// - `relaxed-publication`: a producer "publishes" with a Relaxed flag
///   (no release/acquire edge recorded), so the consumer's read races;
///   the same stream with the edges present is verified clean by the
///   detector's own tests.
pub fn planted_controls() -> Vec<ControlOutcome> {
    let missing_join = [
        Event::Fork {
            region: 0,
            tasks: 1,
        },
        Event::Begin { region: 0, task: 0 },
        ev_access(0, 0, true, 0x1000, 8),
        Event::End { region: 0, task: 0 },
        // Join deliberately missing.
        ev_access(u32::MAX, SERIAL_TASK, false, 0x1000, 8),
    ];

    let dropped_combine = [
        Event::Fork {
            region: 0,
            tasks: 2,
        },
        Event::Begin { region: 0, task: 0 },
        ev_access(0, 0, true, 0x1000, 8),
        Event::End { region: 0, task: 0 },
        Event::Begin { region: 0, task: 1 },
        ev_access(0, 1, true, 0x2000, 8),
        Event::Combine { region: 0, task: 1 },
        Event::End { region: 0, task: 1 },
        Event::Join { region: 0 },
        ev_access(u32::MAX, SERIAL_TASK, false, 0x1000, 8),
        ev_access(u32::MAX, SERIAL_TASK, false, 0x2000, 8),
    ];

    // Producer writes, then flips a completion flag with `Relaxed` —
    // which records no Release event — and the consumer polls the flag
    // and reads. Without the publication edge the read races.
    let relaxed_publication = [
        Event::Fork {
            region: 0,
            tasks: 2,
        },
        Event::Begin { region: 0, task: 0 },
        ev_access(0, 0, true, 0x3000, 64),
        // (a correct kernel would record Release { addr } here)
        Event::End { region: 0, task: 0 },
        Event::Begin { region: 0, task: 1 },
        // (…and Acquire { addr } here)
        ev_access(0, 1, false, 0x3000, 64),
        Event::End { region: 0, task: 1 },
        Event::Join { region: 0 },
    ];

    vec![
        ControlOutcome {
            name: "planted-overlap",
            report: planted_overlap(FIXED_SEEDS[0], 16),
        },
        ControlOutcome {
            name: "missing-join",
            report: hb::detect(&missing_join),
        },
        ControlOutcome {
            name: "dropped-combine",
            report: hb::detect(&dropped_combine),
        },
        ControlOutcome {
            name: "relaxed-publication",
            report: hb::detect(&relaxed_publication),
        },
    ]
}

/// Negative control: a kernel with a *real* overlapping write claim.
///
/// Task `i` owns the window `out[i .. i+2]`, so neighbouring tasks
/// overlap in one slot — the classic off-by-one tile-boundary bug in
/// hub-partitioned kernels. The slots are atomics so the demo stays
/// well-defined on a genuinely parallel runtime; the *logged* ranges are plain
/// writes, which is exactly what the shadow log checks.
pub fn planted_overlap(seed: u64, tasks: usize) -> RaceReport {
    use std::sync::atomic::{AtomicU32, Ordering};

    use rayon::prelude::*;

    let out: Vec<AtomicU32> = (0..=tasks).map(|_| AtomicU32::new(0)).collect();
    let ((), report) = sched::with_schedule(seed, || {
        (0..tasks).into_par_iter().for_each(|i| {
            let window = &out[i..i + 2];
            sched::log_write(window, "planted.window");
            window[0].fetch_add(1, Ordering::Relaxed);
            window[1].fetch_add(1, Ordering::Relaxed);
        });
    });
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn planted_overlap_is_detected() {
        let report = planted_overlap(FIXED_SEEDS[0], 16);
        assert!(!report.is_clean(), "planted overlap must be detected");
        assert!(report.races.iter().all(|r| r.write_write));
        assert!(report.races.iter().all(|r| r.overlap_len == 4)); // one u32 slot
    }

    #[test]
    fn suite_json_shape() {
        let mut suite = RaceSuiteReport::default();
        suite.outcomes.push(ScenarioOutcome {
            scenario: "demo",
            seed: 7,
            race: RaceReport::default(),
            agrees: true,
        });
        let parsed = lotus_telemetry::json::parse(&suite.to_json()).expect("valid JSON");
        assert_eq!(
            parsed
                .get("clean")
                .and_then(lotus_telemetry::json::Json::as_bool),
            Some(true)
        );
    }

    #[test]
    fn planted_controls_all_flagged() {
        let controls = planted_controls();
        let names: Vec<_> = controls.iter().map(|c| c.name).collect();
        assert_eq!(
            names,
            [
                "planted-overlap",
                "missing-join",
                "dropped-combine",
                "relaxed-publication"
            ]
        );
        for c in &controls {
            assert!(c.flagged(), "control {} must be flagged", c.name);
        }
    }

    #[test]
    fn missing_join_control_shows_unjoined_clock() {
        let c = &planted_controls()[1];
        let race = &c.report.races[0];
        // The forked task's clock carries no join stamp — that is the
        // evidence the ordering edge is absent.
        assert!(race.clock_a.join.is_none() || race.clock_b.join.is_none());
    }

    #[test]
    fn dropped_combine_control_races_only_on_uncombined_task() {
        let c = &planted_controls()[2];
        assert!(c.flagged());
        // Only task 0 (combine edge dropped) may race; task 1's combine
        // edge orders it before the continuation.
        for race in &c.report.races {
            for (task, clock) in [(race.task_a, &race.clock_a), (race.task_b, &race.clock_b)] {
                if task != SERIAL_TASK {
                    assert_eq!(task, 0, "combined task must not race");
                    assert!(clock.join.is_none());
                }
            }
        }
    }

    #[test]
    fn relaxed_publication_control_is_read_write() {
        let c = &planted_controls()[3];
        assert!(c.flagged());
        assert!(c.report.races.iter().any(|r| !r.write_write));
    }

    #[test]
    fn control_json_carries_clock_evidence() {
        let suite = RaceSuiteReport {
            outcomes: Vec::new(),
            controls: planted_controls(),
        };
        let json = suite.to_json();
        let parsed = lotus_telemetry::json::parse(&json).expect("valid JSON");
        // All controls flagged and no real scenarios → overall clean.
        assert_eq!(
            parsed
                .get("clean")
                .and_then(lotus_telemetry::json::Json::as_bool),
            Some(true)
        );
        assert!(
            json.contains("\"clock_a\""),
            "races must carry clock evidence"
        );
        assert!(json.contains("\"relaxed-publication\""));
    }
}
