//! Deterministic-schedule race checking over the LOTUS kernels.
//!
//! Built on `shims/par`'s scheduler mode ([`rayon::sched`]): inside
//! [`rayon::sched::with_schedule`] every parallel-for replays its task
//! bodies in a seeded permutation while the instrumented kernels log the
//! address ranges each logical task reads and writes (the per-vertex
//! degree/entry windows of Algorithm 2, the HE/NHE lists the three
//! counting phases of Algorithm 3 scan, the forward drivers' `N⁻`
//! lists). Two properties are checked per scenario:
//!
//! 1. **no overlap** — no two distinct tasks write overlapping byte
//!    ranges, and no task reads a range another task writes
//!    (synchronized atomics are deliberately not logged: the shadow log
//!    models *plain* accesses);
//! 2. **order independence** — the scheduled result equals the
//!    unscheduled reference, under every seed.
//!
//! [`planted_overlap`] is the negative control: a test-only kernel with
//! a real overlapping window claim, proving the detector actually fires.

use lotus_core::config::HubCount;
use lotus_core::per_vertex::count_per_vertex;
use lotus_core::preprocess::build_lotus_graph;
use lotus_core::{LotusConfig, LotusCounter};
use lotus_graph::UndirectedCsr;
use lotus_resilience::RunGuard;
use rayon::sched::{self, RaceReport};

use crate::diag::json_str;

/// The fixed seeds CI replays (documented in DESIGN.md §10).
pub const FIXED_SEEDS: [u64; 3] = [7, 42, 0x5EED];

/// One scenario under one seed.
#[derive(Debug)]
pub struct ScenarioOutcome {
    /// Kernel-under-test name.
    pub scenario: &'static str,
    /// Schedule seed.
    pub seed: u64,
    /// Shadow-access-log verdict.
    pub race: RaceReport,
    /// Whether the scheduled run reproduced the unscheduled reference.
    pub agrees: bool,
}

impl ScenarioOutcome {
    /// Clean = no races and the result matched the reference.
    pub fn is_clean(&self) -> bool {
        self.race.is_clean() && self.agrees
    }
}

/// All scenarios across all seeds.
#[derive(Debug, Default)]
pub struct RaceSuiteReport {
    /// Per-(scenario, seed) outcomes.
    pub outcomes: Vec<ScenarioOutcome>,
}

impl RaceSuiteReport {
    /// Whether every scenario is race-free and order-independent.
    pub fn is_clean(&self) -> bool {
        self.outcomes.iter().all(ScenarioOutcome::is_clean)
    }

    /// Renders the suite as stable JSON for the CI artifact.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256 + self.outcomes.len() * 160);
        out.push_str(
            "{\n  \"schema_version\": 1,\n  \"tool\": \"lotus-analyzer\",\n  \"mode\": \"race\",\n",
        );
        out.push_str(&format!("  \"clean\": {},\n", self.is_clean()));
        out.push_str("  \"outcomes\": [");
        for (i, o) in self.outcomes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {");
            out.push_str(&format!("\"scenario\": {}, ", json_str(o.scenario)));
            out.push_str(&format!("\"seed\": {}, ", o.seed));
            out.push_str(&format!("\"regions\": {}, ", o.race.regions));
            out.push_str(&format!("\"accesses\": {}, ", o.race.accesses));
            out.push_str(&format!("\"races\": {}, ", o.race.total_races));
            out.push_str(&format!("\"agrees\": {}, ", o.agrees));
            out.push_str("\"race_details\": [");
            for (j, r) in o.race.races.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!(
                    "{{\"label_a\": {}, \"task_a\": {}, \"label_b\": {}, \"task_b\": {}, \
                     \"write_write\": {}, \"overlap_len\": {}}}",
                    json_str(r.label_a),
                    r.task_a,
                    json_str(r.label_b),
                    r.task_b,
                    r.write_write,
                    r.overlap_len
                ));
            }
            out.push_str("]}");
        }
        if !self.outcomes.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }
}

fn test_graph() -> UndirectedCsr {
    lotus_gen::Rmat::new(8, 8).generate(3)
}

fn config() -> LotusConfig {
    LotusConfig::default().with_hub_count(HubCount::Fixed(32))
}

/// Runs every shipped LOTUS kernel under every seed, comparing against
/// the unscheduled reference result.
pub fn run_suite(seeds: &[u64]) -> RaceSuiteReport {
    let g = test_graph();
    let mut outcomes = Vec::new();

    let mut scenario = |name: &'static str, f: &dyn Fn(&UndirectedCsr) -> u64| {
        let reference = f(&g);
        for &seed in seeds {
            let (value, race) = sched::with_schedule(seed, || f(&g));
            outcomes.push(ScenarioOutcome {
                scenario: name,
                seed,
                race,
                agrees: value == reference,
            });
        }
    };

    scenario("preprocess+phases", &|g| {
        LotusCounter::new(config()).count(g).total()
    });
    scenario("phases-guarded", &|g| {
        LotusCounter::new(config())
            .count_guarded(g, &RunGuard::unlimited())
            .map_or(u64::MAX, |r| r.total())
    });
    scenario("per-vertex", &|g| {
        let lg = build_lotus_graph(g, &config());
        count_per_vertex(&lg).iter().sum()
    });
    scenario("forward", &|g| lotus_algos::forward_count(g));
    scenario("forward-hashed", &|g| {
        lotus_algos::forward_hashed::forward_hashed_count(g)
    });

    RaceSuiteReport { outcomes }
}

/// Negative control: a kernel with a *real* overlapping write claim.
///
/// Task `i` owns the window `out[i .. i+2]`, so neighbouring tasks
/// overlap in one slot — the classic off-by-one tile-boundary bug in
/// hub-partitioned kernels. The slots are atomics so the demo stays
/// well-defined on a genuinely parallel runtime; the *logged* ranges are plain
/// writes, which is exactly what the shadow log checks.
pub fn planted_overlap(seed: u64, tasks: usize) -> RaceReport {
    use std::sync::atomic::{AtomicU32, Ordering};

    use rayon::prelude::*;

    let out: Vec<AtomicU32> = (0..=tasks).map(|_| AtomicU32::new(0)).collect();
    let ((), report) = sched::with_schedule(seed, || {
        (0..tasks).into_par_iter().for_each(|i| {
            let window = &out[i..i + 2];
            sched::log_write(window, "planted.window");
            window[0].fetch_add(1, Ordering::Relaxed);
            window[1].fetch_add(1, Ordering::Relaxed);
        });
    });
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn planted_overlap_is_detected() {
        let report = planted_overlap(FIXED_SEEDS[0], 16);
        assert!(!report.is_clean(), "planted overlap must be detected");
        assert!(report.races.iter().all(|r| r.write_write));
        assert!(report.races.iter().all(|r| r.overlap_len == 4)); // one u32 slot
    }

    #[test]
    fn suite_json_shape() {
        let mut suite = RaceSuiteReport::default();
        suite.outcomes.push(ScenarioOutcome {
            scenario: "demo",
            seed: 7,
            race: RaceReport::default(),
            agrees: true,
        });
        let parsed = lotus_telemetry::json::parse(&suite.to_json()).expect("valid JSON");
        assert_eq!(
            parsed
                .get("clean")
                .and_then(lotus_telemetry::json::Json::as_bool),
            Some(true)
        );
    }
}
