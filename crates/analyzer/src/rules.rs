//! The project rule catalog (DESIGN.md §10).
//!
//! Every rule scans the token stream of one file; none of them needs a
//! full parse. Test code is exempt from most rules: tokens under a
//! `#[cfg(test)]` / `#[test]` item, and whole files under `tests/`,
//! `benches/` or `examples/`, are masked out (except where a rule says
//! otherwise, e.g. `no-seqcst` applies everywhere).
//!
//! Findings can be suppressed two ways, both leaving an audit trail:
//! an inline `// analyzer: allow(rule-name): reason` comment on the
//! offending line or the line above, or an entry in the checked-in
//! waiver file (see [`crate::waiver`]).

use crate::diag::{Finding, Severity};
use crate::lexer::{lex, Tok, TokKind};

/// `(id, summary)` of every rule, for CLI help and docs.
pub const RULES: [(&str, &str); 10] = [
    (
        "safety-comment",
        "`unsafe` requires a `// SAFETY:` (or `# Safety` doc) justification within 10 lines",
    ),
    (
        "no-panic",
        "no `unwrap`/`expect`/`panic!`/`todo!`/`unimplemented!` in library code (tests exempt)",
    ),
    (
        "no-seqcst",
        "`SeqCst` ordering is forbidden workspace-wide (tests included) outside the waiver allowlist",
    ),
    (
        "relaxed-telemetry",
        "atomic orderings inside crates/telemetry must be `Ordering::Relaxed`",
    ),
    (
        "guard-poll",
        "lotus-core fns taking `&RunGuard` must poll `should_stop()` or forward the guard",
    ),
    (
        "result-errors-doc",
        "`pub fn … -> Result` requires an `# Errors` doc section or `#[must_use = \"…\"]`",
    ),
    (
        "stale-waiver",
        "waiver entries that match no finding must be removed",
    ),
    (
        "no-thread-spawn",
        "raw `std::thread` spawning is confined to `shims/par` and the daemon layers `crates/serve` / `crates/cluster` (tests exempt)",
    ),
    (
        "no-shared-mut-statics",
        "`static mut` is forbidden; `UnsafeCell` is confined to SAFETY-annotated `shims/par` internals",
    ),
    (
        "relaxed-handshake",
        "handshake flags (`*_done`/`*_ready`) must not use `Ordering::Relaxed` — publication needs Acquire/Release",
    ),
];

/// Marker for inline suppressions: `// analyzer: allow(rule): reason`.
const ALLOW_MARKER: &str = "analyzer: allow(";

struct Ctx<'a> {
    path: &'a str,
    toks: &'a [Tok<'a>],
    /// `true` for tokens inside test-only code.
    mask: &'a [bool],
    /// `(line, rule)` pairs from inline allow comments.
    allows: &'a [(u32, String)],
}

impl Ctx<'_> {
    fn emit(&self, out: &mut Vec<Finding>, rule: &'static str, line: u32, message: String) {
        let waived = self
            .allows
            .iter()
            .any(|(l, r)| r == rule && (*l == line || l + 1 == line));
        out.push(Finding {
            rule,
            severity: Severity::Error,
            file: self.path.to_owned(),
            line,
            message,
            waived,
        });
    }
}

/// Runs every rule over one source file, appending findings to `out`.
pub(crate) fn lint_source(path: &str, src: &str, out: &mut Vec<Finding>) {
    let toks = lex(src);
    let whole_file_test =
        path.contains("/tests/") || path.contains("/benches/") || path.contains("/examples/");
    let mask = if whole_file_test {
        vec![true; toks.len()]
    } else {
        test_mask(&toks)
    };
    let allows = inline_allows(&toks);
    let ctx = Ctx {
        path,
        toks: &toks,
        mask: &mask,
        allows: &allows,
    };
    rule_safety_comment(&ctx, out);
    rule_no_panic(&ctx, out);
    rule_no_seqcst(&ctx, out);
    rule_relaxed_telemetry(&ctx, out);
    rule_guard_poll(&ctx, out);
    rule_result_errors_doc(&ctx, out);
    rule_no_thread_spawn(&ctx, out);
    rule_no_shared_mut_statics(&ctx, out);
    rule_relaxed_handshake(&ctx, out);
}

pub(crate) fn is_punct(t: &Tok<'_>, s: &str) -> bool {
    t.kind == TokKind::Punct && t.text == s
}

pub(crate) fn is_ident(t: &Tok<'_>, s: &str) -> bool {
    t.kind == TokKind::Ident && t.text == s
}

pub(crate) fn is_comment(t: &Tok<'_>) -> bool {
    !t.kind.is_code()
}

/// Index of the next non-comment token after `i`.
pub(crate) fn next_code(toks: &[Tok<'_>], i: usize) -> Option<usize> {
    toks.iter()
        .enumerate()
        .skip(i + 1)
        .find(|(_, t)| t.kind.is_code())
        .map(|(j, _)| j)
}

/// Index of the previous non-comment token before `i`.
pub(crate) fn prev_code(toks: &[Tok<'_>], i: usize) -> Option<usize> {
    toks[..i].iter().rposition(|t| t.kind.is_code())
}

/// Index of the delimiter matching `toks[open_idx]`, or the last token
/// if the file is truncated.
pub(crate) fn match_delim(toks: &[Tok<'_>], open_idx: usize, open: &str, close: &str) -> usize {
    let mut depth = 0i64;
    for (k, t) in toks.iter().enumerate().skip(open_idx) {
        if is_punct(t, open) {
            depth += 1;
        } else if is_punct(t, close) {
            depth -= 1;
            if depth == 0 {
                return k;
            }
        }
    }
    toks.len().saturating_sub(1)
}

/// Marks every token belonging to an item decorated with a test
/// attribute (`#[test]`, `#[cfg(test)]`, `#[cfg(any(test, …))]`, …).
pub(crate) fn test_mask(toks: &[Tok<'_>]) -> Vec<bool> {
    let mut mask = vec![false; toks.len()];
    let mut i = 0;
    while i < toks.len() {
        if !is_punct(&toks[i], "#") {
            i += 1;
            continue;
        }
        let Some(mut j) = next_code(toks, i) else {
            break;
        };
        let inner = is_punct(&toks[j], "!");
        if inner {
            let Some(after_bang) = next_code(toks, j) else {
                break;
            };
            j = after_bang;
        }
        if !is_punct(&toks[j], "[") {
            i += 1;
            continue;
        }
        let close = match_delim(toks, j, "[", "]");
        let has_test = toks[j..=close].iter().any(|t| is_ident(t, "test"));
        if inner || !has_test {
            i = close + 1;
            continue;
        }
        // Skip trailing comments and further attributes to reach the item.
        let mut k = close + 1;
        loop {
            while k < toks.len() && is_comment(&toks[k]) {
                k += 1;
            }
            if k < toks.len() && is_punct(&toks[k], "#") {
                if let Some(a) = next_code(toks, k) {
                    if is_punct(&toks[a], "[") {
                        k = match_delim(toks, a, "[", "]") + 1;
                        continue;
                    }
                }
            }
            break;
        }
        // The item extends to the first top-level `;` or a matched `{…}`.
        let mut end = k;
        while end < toks.len() {
            if is_punct(&toks[end], ";") {
                break;
            }
            if is_punct(&toks[end], "{") {
                end = match_delim(toks, end, "{", "}");
                break;
            }
            end += 1;
        }
        let end = end.min(toks.len().saturating_sub(1));
        for m in &mut mask[i..=end] {
            *m = true;
        }
        i = end + 1;
    }
    mask
}

/// Collects inline `// analyzer: allow(rule): reason` suppressions.
pub(crate) fn inline_allows(toks: &[Tok<'_>]) -> Vec<(u32, String)> {
    let mut out = Vec::new();
    for t in toks {
        if !is_comment(t) {
            continue;
        }
        if let Some(pos) = t.text.find(ALLOW_MARKER) {
            let rest = &t.text[pos + ALLOW_MARKER.len()..];
            if let Some(rule) = rest.split(')').next() {
                out.push((t.line, rule.trim().to_owned()));
            }
        }
    }
    out
}

fn has_safety_text(s: &str) -> bool {
    s.contains("SAFETY:") || s.contains("# Safety")
}

/// `safety-comment`: every `unsafe` outside tests needs a nearby
/// `// SAFETY:` comment (or a `# Safety` doc section for `unsafe fn`).
/// The 10-line window leaves room for a multi-line justification whose
/// `SAFETY:` marker opens the block.
fn rule_safety_comment(ctx: &Ctx<'_>, out: &mut Vec<Finding>) {
    for (i, t) in ctx.toks.iter().enumerate() {
        if !is_ident(t, "unsafe") || ctx.mask[i] {
            continue;
        }
        let line = t.line;
        let mut justified = ctx.toks[..i]
            .iter()
            .rev()
            .take_while(|c| c.line + 10 >= line)
            .any(|c| is_comment(c) && has_safety_text(c.text));
        if !justified {
            // Also accept a trailing comment on the same line.
            justified = ctx.toks[i + 1..]
                .iter()
                .take_while(|c| c.line == line)
                .any(|c| is_comment(c) && has_safety_text(c.text));
        }
        if !justified {
            ctx.emit(
                out,
                "safety-comment",
                line,
                "`unsafe` without a `// SAFETY:` justification within 10 lines".to_owned(),
            );
        }
    }
}

/// `no-panic`: library code must not call `.unwrap()`/`.expect()` or
/// invoke `panic!`/`todo!`/`unimplemented!`. `unreachable!` and the
/// assert family stay allowed: they document impossibility rather than
/// fallibility.
fn rule_no_panic(ctx: &Ctx<'_>, out: &mut Vec<Finding>) {
    for (i, t) in ctx.toks.iter().enumerate() {
        if t.kind != TokKind::Ident || ctx.mask[i] {
            continue;
        }
        match t.text {
            "unwrap" | "expect" => {
                let dotted = prev_code(ctx.toks, i).is_some_and(|p| is_punct(&ctx.toks[p], "."));
                let called = next_code(ctx.toks, i).is_some_and(|n| is_punct(&ctx.toks[n], "("));
                if dotted && called {
                    ctx.emit(
                        out,
                        "no-panic",
                        t.line,
                        format!(
                            "library code calls `.{}()`; return a typed error instead",
                            t.text
                        ),
                    );
                }
            }
            "panic" | "todo" | "unimplemented"
                if next_code(ctx.toks, i).is_some_and(|n| is_punct(&ctx.toks[n], "!")) =>
            {
                ctx.emit(
                    out,
                    "no-panic",
                    t.line,
                    format!(
                        "library code invokes `{}!`; return a typed error instead",
                        t.text
                    ),
                );
            }
            _ => {}
        }
    }
}

/// `no-seqcst`: applies everywhere, tests included — sequentially
/// consistent ordering hides the actual synchronization contract.
fn rule_no_seqcst(ctx: &Ctx<'_>, out: &mut Vec<Finding>) {
    for t in ctx.toks {
        if is_ident(t, "SeqCst") {
            ctx.emit(
                out,
                "no-seqcst",
                t.line,
                "`SeqCst` is forbidden workspace-wide; state the real contract with \
                 Relaxed/Acquire/Release"
                    .to_owned(),
            );
        }
    }
}

/// `relaxed-telemetry`: inside crates/telemetry every atomic ordering
/// must be `Relaxed` — counters are monotonic statistics, and anything
/// stronger hints at a counter being misused for synchronization.
fn rule_relaxed_telemetry(ctx: &Ctx<'_>, out: &mut Vec<Finding>) {
    if !ctx.path.starts_with("crates/telemetry/") {
        return;
    }
    for (i, t) in ctx.toks.iter().enumerate() {
        if !is_ident(t, "Ordering") || ctx.mask[i] {
            continue;
        }
        let Some(c1) = next_code(ctx.toks, i) else {
            continue;
        };
        let Some(c2) = next_code(ctx.toks, c1) else {
            continue;
        };
        let Some(v) = next_code(ctx.toks, c2) else {
            continue;
        };
        if is_punct(&ctx.toks[c1], ":")
            && is_punct(&ctx.toks[c2], ":")
            && ctx.toks[v].kind == TokKind::Ident
            && ctx.toks[v].text != "Relaxed"
        {
            ctx.emit(
                out,
                "relaxed-telemetry",
                ctx.toks[v].line,
                format!(
                    "telemetry atomics must use `Ordering::Relaxed` (found `{}`)",
                    ctx.toks[v].text
                ),
            );
        }
    }
}

/// `guard-poll`: in lotus-core, a fn that accepts `&RunGuard` exists to
/// be interruptible — its body must poll `should_stop()` or pass the
/// guard on to a callee that does.
fn rule_guard_poll(ctx: &Ctx<'_>, out: &mut Vec<Finding>) {
    if !ctx.path.starts_with("crates/core/src") {
        return;
    }
    let toks = ctx.toks;
    let mut i = 0;
    while i < toks.len() {
        if !is_ident(&toks[i], "fn") || ctx.mask[i] {
            i += 1;
            continue;
        }
        let Some(name_i) = next_code(toks, i) else {
            break;
        };
        // Find the parameter list, stepping over generics (whose `->`
        // arrows inside Fn bounds must not unbalance the angles).
        let mut k = name_i + 1;
        let mut angle = 0i64;
        let popen = loop {
            if k >= toks.len() {
                break None;
            }
            let t = &toks[k];
            if is_punct(t, "-") && toks.get(k + 1).is_some_and(|n| is_punct(n, ">")) {
                k += 2;
                continue;
            }
            if is_punct(t, "<") {
                angle += 1;
            } else if is_punct(t, ">") {
                angle -= 1;
            } else if is_punct(t, "(") && angle == 0 {
                break Some(k);
            } else if is_punct(t, "{") || is_punct(t, ";") {
                break None;
            }
            k += 1;
        };
        let Some(popen) = popen else {
            i = name_i + 1;
            continue;
        };
        let pclose = match_delim(toks, popen, "(", ")");
        let guard_name = find_run_guard_param(toks, popen, pclose);
        let Some(guard_name) = guard_name else {
            i = pclose + 1;
            continue;
        };
        // Locate the body (a declaration-only `;` has nothing to check).
        let mut b = pclose + 1;
        while b < toks.len() && !is_punct(&toks[b], "{") && !is_punct(&toks[b], ";") {
            b += 1;
        }
        if b >= toks.len() || is_punct(&toks[b], ";") {
            i = b + 1;
            continue;
        }
        let bclose = match_delim(toks, b, "{", "}");
        let polled = toks[b..=bclose]
            .iter()
            .any(|t| is_ident(t, "should_stop") || is_ident(t, guard_name));
        if !polled {
            ctx.emit(
                out,
                "guard-poll",
                toks[i].line,
                format!(
                    "fn `{}` takes `&RunGuard` but neither polls `should_stop()` nor \
                     forwards the guard",
                    toks[name_i].text
                ),
            );
        }
        i = bclose + 1;
    }
}

/// Finds the name of a `…: &RunGuard` parameter between `popen..=pclose`.
fn find_run_guard_param<'a>(toks: &[Tok<'a>], popen: usize, pclose: usize) -> Option<&'a str> {
    for p in popen..=pclose.min(toks.len() - 1) {
        if !is_ident(&toks[p], "RunGuard") {
            continue;
        }
        // Walk back over `&`, lifetimes and `::` path separators to the
        // parameter's `name:` colon.
        let mut q = p;
        while let Some(prev) = prev_code(toks, q) {
            let t = &toks[prev];
            if is_punct(t, "&") || t.kind == TokKind::Lifetime || t.kind == TokKind::Ident {
                q = prev;
                continue;
            }
            if is_punct(t, ":") {
                if let Some(pp) = prev_code(toks, prev) {
                    if is_punct(&toks[pp], ":") {
                        // `::` path separator — keep walking.
                        q = pp;
                        continue;
                    }
                    if toks[pp].kind == TokKind::Ident {
                        return Some(toks[pp].text);
                    }
                }
            }
            break;
        }
    }
    None
}

/// `result-errors-doc`: a `pub fn` returning any `…Result` type must
/// carry an `# Errors` doc section (rustdoc convention) or a reasoned
/// `#[must_use = "…"]`. Bare `#[must_use]` is not accepted: `Result` is
/// already `must_use`, so that spelling trips `clippy::double_must_use`.
fn rule_result_errors_doc(ctx: &Ctx<'_>, out: &mut Vec<Finding>) {
    let toks = ctx.toks;
    for (i, t) in toks.iter().enumerate() {
        if !is_ident(t, "pub") || ctx.mask[i] {
            continue;
        }
        let Some(fn_i) = next_code(toks, i) else {
            continue;
        };
        if !is_ident(&toks[fn_i], "fn") {
            continue; // `pub(crate)`, `pub struct`, …
        }
        let Some(name_i) = next_code(toks, fn_i) else {
            continue;
        };
        let Some(ret) = signature_return_ident(toks, name_i) else {
            continue;
        };
        // Exact match only: the workspace's `FooResult` types are plain
        // stats structs, not fallible `Result`s.
        if ret != "Result" {
            continue;
        }
        if has_errors_doc_or_reasoned_must_use(toks, i) {
            continue;
        }
        ctx.emit(
            out,
            "result-errors-doc",
            toks[name_i].line,
            format!(
                "pub fn `{}` returns `{ret}` but has no `# Errors` doc section \
                 (or `#[must_use = \"…\"]` with a reason)",
                toks[name_i].text
            ),
        );
    }
}

/// The last path segment of a fn signature's return type, if any.
/// Scans from just after the fn name to the body/`;`, tracking paren and
/// angle depth so arrows inside `Fn(...) -> T` bounds are ignored.
fn signature_return_ident<'a>(toks: &[Tok<'a>], name_i: usize) -> Option<&'a str> {
    let mut k = name_i + 1;
    let mut paren = 0i64;
    let mut angle = 0i64;
    let arrow_at = loop {
        if k >= toks.len() {
            return None;
        }
        let t = &toks[k];
        if is_punct(t, "-") && toks.get(k + 1).is_some_and(|n| is_punct(n, ">")) {
            if paren == 0 && angle == 0 {
                break k + 2;
            }
            k += 2;
            continue;
        }
        if is_punct(t, "(") {
            paren += 1;
        } else if is_punct(t, ")") {
            paren -= 1;
        } else if is_punct(t, "<") {
            angle += 1;
        } else if is_punct(t, ">") {
            angle -= 1;
        } else if (is_punct(t, "{") || is_punct(t, ";")) && paren == 0 {
            return None;
        }
        k += 1;
    };
    // First identifier of the return type (skipping `&`, lifetimes and
    // `mut`), then follow `::` path separators to the last segment.
    let mut seg: Option<usize> = None;
    let mut k = arrow_at;
    while k < toks.len() {
        let t = &toks[k];
        if is_punct(t, "&") || t.kind == TokKind::Lifetime || is_ident(t, "mut") || is_comment(t) {
            k += 1;
            continue;
        }
        if t.kind == TokKind::Ident {
            seg = Some(k);
        }
        break;
    }
    let mut seg = seg?;
    while let Some(c1) = next_code(toks, seg) {
        let Some(c2) = next_code(toks, c1) else { break };
        let Some(nxt) = next_code(toks, c2) else {
            break;
        };
        if is_punct(&toks[c1], ":") && is_punct(&toks[c2], ":") && toks[nxt].kind == TokKind::Ident
        {
            seg = nxt;
        } else {
            break;
        }
    }
    Some(toks[seg].text)
}

/// Whether the doc/attr block immediately above token `i` contains an
/// `# Errors` doc section or a `#[must_use = "…"]` with a reason.
fn has_errors_doc_or_reasoned_must_use(toks: &[Tok<'_>], i: usize) -> bool {
    let mut j = i;
    while j > 0 {
        j -= 1;
        let t = &toks[j];
        if is_comment(t) {
            if t.text.contains("# Errors") {
                return true;
            }
            continue;
        }
        if is_punct(t, "]") {
            // Reverse-match the attribute brackets.
            let mut depth = 0i64;
            let mut open = j;
            loop {
                let t = &toks[open];
                if is_punct(t, "]") {
                    depth += 1;
                } else if is_punct(t, "[") {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                if open == 0 {
                    return false;
                }
                open -= 1;
            }
            let attr = &toks[open..=j];
            if attr.iter().any(|t| is_ident(t, "must_use")) && attr.iter().any(|t| is_punct(t, "="))
            {
                return true;
            }
            // Step over the `#` introducing the attribute.
            j = open;
            if let Some(h) = prev_code(toks, open) {
                if is_punct(&toks[h], "#") {
                    j = h;
                }
            }
            continue;
        }
        break;
    }
    false
}

/// Paths whose library code may spawn OS threads: the work-stealing
/// pool itself and the serving layer's accept/worker/load-gen threads.
/// Everything else must go through the `rayon` shim so the pool's
/// thread budget, panic isolation and telemetry stay authoritative.
fn may_spawn_threads(path: &str) -> bool {
    path.starts_with("shims/par/")
        || path.starts_with("crates/serve/")
        || path.starts_with("crates/cluster/")
}

/// `no-thread-spawn`: flags `thread::spawn` / `thread::Builder` outside
/// the two sanctioned layers. Tests are exempt — a test harness driving
/// real concurrency is fine; library code smuggling its own threads
/// past the pool is not.
fn rule_no_thread_spawn(ctx: &Ctx<'_>, out: &mut Vec<Finding>) {
    if may_spawn_threads(ctx.path) {
        return;
    }
    for (i, t) in ctx.toks.iter().enumerate() {
        if !is_ident(t, "thread") || ctx.mask[i] {
            continue;
        }
        let Some(c1) = next_code(ctx.toks, i) else {
            continue;
        };
        let Some(c2) = next_code(ctx.toks, c1) else {
            continue;
        };
        let Some(callee) = next_code(ctx.toks, c2) else {
            continue;
        };
        if is_punct(&ctx.toks[c1], ":")
            && is_punct(&ctx.toks[c2], ":")
            && (is_ident(&ctx.toks[callee], "spawn") || is_ident(&ctx.toks[callee], "Builder"))
        {
            ctx.emit(
                out,
                "no-thread-spawn",
                t.line,
                format!(
                    "`thread::{}` outside `shims/par`/`crates/serve`/`crates/cluster`; \
                     parallel work must go through the rayon shim's pool",
                    ctx.toks[callee].text
                ),
            );
        }
    }
}

/// `no-shared-mut-statics`: `static mut` is flagged workspace-wide
/// (tests included — there is always a sound alternative), and
/// `UnsafeCell` is confined to `shims/par` pool internals where it must
/// carry a `// SAFETY:` justification like any other `unsafe` surface.
fn rule_no_shared_mut_statics(ctx: &Ctx<'_>, out: &mut Vec<Finding>) {
    for (i, t) in ctx.toks.iter().enumerate() {
        if is_ident(t, "static")
            && next_code(ctx.toks, i).is_some_and(|n| is_ident(&ctx.toks[n], "mut"))
        {
            ctx.emit(
                out,
                "no-shared-mut-statics",
                t.line,
                "`static mut` creates unsynchronized shared `&mut`; use an atomic, a lock, \
                 or `OnceLock`"
                    .to_owned(),
            );
        }
        if is_ident(t, "UnsafeCell") && !ctx.mask[i] {
            if !ctx.path.starts_with("shims/par/") {
                ctx.emit(
                    out,
                    "no-shared-mut-statics",
                    t.line,
                    "`UnsafeCell` outside `shims/par`; shared mutability belongs behind the \
                     pool's audited internals"
                        .to_owned(),
                );
            } else {
                let line = t.line;
                let justified = ctx.toks[..i]
                    .iter()
                    .rev()
                    .take_while(|c| c.line + 10 >= line)
                    .any(|c| is_comment(c) && has_safety_text(c.text));
                if !justified {
                    ctx.emit(
                        out,
                        "no-shared-mut-statics",
                        line,
                        "`UnsafeCell` in pool internals without a `// SAFETY:` justification \
                         within 10 lines"
                            .to_owned(),
                    );
                }
            }
        }
    }
}

/// Whether an identifier names a completion/readiness handshake flag.
fn is_handshake_name(name: &str) -> bool {
    let lower = name.to_ascii_lowercase();
    lower == "done" || lower == "ready" || lower.ends_with("_done") || lower.ends_with("_ready")
}

/// `relaxed-handshake`: a statement that touches a `*_done`/`*_ready`
/// flag with `Ordering::Relaxed` is the classic broken-publication
/// pattern — the flag becomes visible without the data it guards.
/// Detection is line-based: a handshake-named identifier and a
/// `Relaxed` ordering on the same line.
fn rule_relaxed_handshake(ctx: &Ctx<'_>, out: &mut Vec<Finding>) {
    let relaxed_lines: Vec<u32> = ctx
        .toks
        .iter()
        .filter(|t| is_ident(t, "Relaxed"))
        .map(|t| t.line)
        .collect();
    if relaxed_lines.is_empty() {
        return;
    }
    for (i, t) in ctx.toks.iter().enumerate() {
        if t.kind != TokKind::Ident || ctx.mask[i] || !is_handshake_name(t.text) {
            continue;
        }
        if relaxed_lines.contains(&t.line) {
            ctx.emit(
                out,
                "relaxed-handshake",
                t.line,
                format!(
                    "handshake flag `{}` used with `Ordering::Relaxed`; publication requires \
                     Release on the store and Acquire on the load",
                    t.text
                ),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn findings(path: &str, src: &str) -> Vec<Finding> {
        let mut out = Vec::new();
        lint_source(path, src, &mut out);
        out
    }

    fn rules_of(f: &[Finding]) -> Vec<&'static str> {
        f.iter().map(|x| x.rule).collect()
    }

    #[test]
    fn flags_unwrap_in_library_code() {
        let f = findings(
            "crates/x/src/lib.rs",
            "fn f(o: Option<u32>) -> u32 { o.unwrap() }",
        );
        assert_eq!(rules_of(&f), ["no-panic"]);
        assert_eq!(f[0].line, 1);
    }

    #[test]
    fn unwrap_in_cfg_test_module_is_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n  fn f(o: Option<u32>) -> u32 { o.unwrap() }\n}\n";
        assert!(findings("crates/x/src/lib.rs", src).is_empty());
    }

    #[test]
    fn unwrap_in_tests_dir_is_exempt() {
        let src = "fn f(o: Option<u32>) -> u32 { o.unwrap() }";
        assert!(findings("crates/x/tests/it.rs", src).is_empty());
    }

    #[test]
    fn unwrap_or_else_is_not_flagged() {
        let src = "fn f(o: Option<u32>) -> u32 { o.unwrap_or_else(|| 0) }";
        assert!(findings("crates/x/src/lib.rs", src).is_empty());
    }

    #[test]
    fn panic_macro_is_flagged_but_unreachable_is_not() {
        let src = "fn f(x: u32) { if x > 2 { panic!(\"boom\") } else { unreachable!() } }";
        let f = findings("crates/x/src/lib.rs", src);
        assert_eq!(rules_of(&f), ["no-panic"]);
    }

    #[test]
    fn unsafe_without_safety_comment() {
        let src = "fn f(p: *const u8) -> u8 { unsafe { *p } }";
        let f = findings("crates/x/src/lib.rs", src);
        assert_eq!(rules_of(&f), ["safety-comment"]);
    }

    #[test]
    fn unsafe_with_safety_comment_is_clean() {
        let src = "fn f(p: *const u8) -> u8 {\n  // SAFETY: caller guarantees p is valid\n  unsafe { *p }\n}";
        assert!(findings("crates/x/src/lib.rs", src).is_empty());
    }

    #[test]
    fn unsafe_inside_macro_body_still_needs_safety() {
        let src = "macro_rules! deref {\n  ($p:expr) => { unsafe { *$p } };\n}\n";
        let f = findings("crates/x/src/lib.rs", src);
        assert_eq!(rules_of(&f), ["safety-comment"]);
    }

    #[test]
    fn seqcst_is_flagged_even_in_tests() {
        let src = "#[cfg(test)]\nmod tests {\n  use std::sync::atomic::Ordering;\n  fn f() { let _ = Ordering::SeqCst; }\n}\n";
        let f = findings("crates/x/src/lib.rs", src);
        assert_eq!(rules_of(&f), ["no-seqcst"]);
    }

    #[test]
    fn telemetry_ordering_must_be_relaxed() {
        let src = "fn f(c: &std::sync::atomic::AtomicU64) { c.store(1, Ordering::Release); }";
        let f = findings("crates/telemetry/src/counters.rs", src);
        assert_eq!(rules_of(&f), ["relaxed-telemetry"]);
        // Outside crates/telemetry the rule does not apply.
        assert!(findings("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn guard_poll_flags_ignored_guard() {
        let src = "fn run(g: &RunGuard) -> u32 { 42 }";
        let f = findings("crates/core/src/x.rs", src);
        assert_eq!(rules_of(&f), ["guard-poll"]);
    }

    #[test]
    fn guard_poll_accepts_polling_and_forwarding() {
        let polling =
            "fn run(g: &RunGuard) -> u32 { if g.should_stop().is_some() { 0 } else { 1 } }";
        assert!(findings("crates/core/src/x.rs", polling).is_empty());
        let forwarding = "fn run(the_guard: &RunGuard) -> u32 { inner(the_guard) }";
        assert!(findings("crates/core/src/x.rs", forwarding).is_empty());
    }

    #[test]
    fn pub_result_fn_needs_errors_doc() {
        let src = "pub fn f() -> Result<(), E> { Ok(()) }";
        let f = findings("crates/x/src/lib.rs", src);
        assert_eq!(rules_of(&f), ["result-errors-doc"]);
    }

    #[test]
    fn errors_doc_section_satisfies_the_rule() {
        let src = "/// Does f.\n///\n/// # Errors\n///\n/// Fails when e.\npub fn f() -> Result<(), E> { Ok(()) }";
        assert!(findings("crates/x/src/lib.rs", src).is_empty());
    }

    #[test]
    fn reasoned_must_use_satisfies_the_rule() {
        let src = "#[must_use = \"handle the failure\"]\npub fn f() -> io::Result<()> { Ok(()) }";
        assert!(findings("crates/x/src/lib.rs", src).is_empty());
    }

    #[test]
    fn non_result_pub_fn_is_fine() {
        let src = "pub fn f() -> u32 { 0 }\npub fn g(h: impl Fn(u32) -> u64) { h(1); }";
        assert!(findings("crates/x/src/lib.rs", src).is_empty());
    }

    #[test]
    fn thread_spawn_is_confined_to_pool_and_serve() {
        let spawn = "fn f() { std::thread::spawn(|| {}); }";
        let builder = "fn f() { std::thread::Builder::new(); }";
        assert_eq!(
            rules_of(&findings("crates/core/src/x.rs", spawn)),
            ["no-thread-spawn"]
        );
        assert_eq!(
            rules_of(&findings("crates/core/src/x.rs", builder)),
            ["no-thread-spawn"]
        );
        assert!(findings("shims/par/src/pool.rs", spawn).is_empty());
        assert!(findings("crates/serve/src/server.rs", builder).is_empty());
        assert!(findings("crates/cluster/src/coordinator.rs", builder).is_empty());
        // Tests may drive real threads.
        let in_test = "#[cfg(test)]\nmod tests {\n  fn f() { std::thread::spawn(|| {}); }\n}\n";
        assert!(findings("crates/core/src/x.rs", in_test).is_empty());
    }

    #[test]
    fn static_mut_is_flagged_everywhere() {
        let src = "static mut COUNTER: u32 = 0;";
        assert_eq!(
            rules_of(&findings("crates/x/src/lib.rs", src)),
            ["no-shared-mut-statics"]
        );
        // Even inside the pool internals.
        assert_eq!(
            rules_of(&findings("shims/par/src/pool.rs", src)),
            ["no-shared-mut-statics"]
        );
    }

    #[test]
    fn unsafe_cell_needs_pool_internals_and_safety_comment() {
        let bare = "struct S { v: UnsafeCell<u32> }";
        assert_eq!(
            rules_of(&findings("crates/x/src/lib.rs", bare)),
            ["no-shared-mut-statics"]
        );
        assert_eq!(
            rules_of(&findings("shims/par/src/pool.rs", bare)),
            ["no-shared-mut-statics"]
        );
        let justified = "// SAFETY: only the owning worker dereferences between fences\nstruct S { v: UnsafeCell<u32> }";
        assert!(findings("shims/par/src/pool.rs", justified).is_empty());
    }

    #[test]
    fn relaxed_handshake_flags_done_and_ready_names() {
        let bad = "fn f(io_done: &AtomicBool) {\n  io_done.store(true, Ordering::Relaxed);\n}";
        let f = findings("crates/x/src/lib.rs", bad);
        assert_eq!(rules_of(&f), ["relaxed-handshake"]);
        // Release/Acquire handshakes and non-handshake names are fine.
        let good = "fn f(x: &AtomicBool) {\n  let io_done = x.load(Ordering::Acquire);\n  let stopped = x.load(Ordering::Relaxed);\n  let _ = (io_done, stopped);\n}";
        assert!(findings("crates/x/src/lib.rs", good).is_empty());
    }

    #[test]
    fn inline_allow_marks_finding_waived() {
        let src =
            "fn f(o: Option<u32>) -> u32 {\n  // analyzer: allow(no-panic): demo\n  o.unwrap()\n}";
        let f = findings("crates/x/src/lib.rs", src);
        assert_eq!(f.len(), 1);
        assert!(f[0].waived);
    }
}
