//! The checked-in waiver file: deliberate, reviewed exceptions to the
//! lint rules.
//!
//! Format (JSON, parsed with `lotus-telemetry`'s dependency-free
//! parser):
//!
//! ```json
//! {
//!   "schema_version": 1,
//!   "waivers": [
//!     {
//!       "rule": "no-panic",
//!       "file": "crates/resilience/src/fault.rs",
//!       "reason": "fault points deliberately panic when armed"
//!     }
//!   ]
//! }
//! ```
//!
//! A waiver matches every finding of `rule` in `file` (repo-relative,
//! forward slashes). A `reason` is mandatory: the file is the audit
//! trail. Waivers that match nothing are themselves reported as
//! `stale-waiver` findings so the file cannot accumulate dead entries.

use std::fmt;
use std::path::Path;

use crate::diag::LintReport;

/// One reviewed exception.
#[derive(Debug, Clone)]
pub struct Waiver {
    /// Rule identifier the waiver applies to.
    pub rule: String,
    /// Repo-relative file the waiver covers.
    pub file: String,
    /// Why the exception is justified (mandatory).
    pub reason: String,
}

/// All waivers of the checked-in waiver file.
#[derive(Debug, Clone, Default)]
pub struct WaiverSet {
    /// Entries in file order.
    pub waivers: Vec<Waiver>,
}

/// Failure to load or understand the waiver file.
#[derive(Debug)]
pub enum WaiverError {
    /// The file could not be read.
    Io(std::io::Error),
    /// The file is not valid JSON.
    Parse(String),
    /// The JSON is valid but missing required fields.
    Schema(String),
}

impl fmt::Display for WaiverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WaiverError::Io(e) => write!(f, "cannot read waiver file: {e}"),
            WaiverError::Parse(e) => write!(f, "waiver file is not valid JSON: {e}"),
            WaiverError::Schema(e) => write!(f, "waiver file schema error: {e}"),
        }
    }
}

impl std::error::Error for WaiverError {}

impl WaiverSet {
    /// Loads waivers from `path`. A missing file is an empty set: the
    /// gate then requires a fully clean workspace.
    ///
    /// # Errors
    ///
    /// Returns [`WaiverError`] when the file exists but cannot be read
    /// or does not follow the documented schema.
    pub fn load(path: &Path) -> Result<Self, WaiverError> {
        if !path.exists() {
            return Ok(Self::default());
        }
        let text = std::fs::read_to_string(path).map_err(WaiverError::Io)?;
        Self::parse(&text)
    }

    /// Parses the waiver file format.
    ///
    /// # Errors
    ///
    /// Returns [`WaiverError`] on malformed JSON or a missing/empty
    /// `rule`, `file` or `reason` field.
    pub fn parse(text: &str) -> Result<Self, WaiverError> {
        let root =
            lotus_telemetry::json::parse(text).map_err(|e| WaiverError::Parse(e.to_string()))?;
        let entries = root
            .get("waivers")
            .and_then(|v| v.as_array())
            .ok_or_else(|| WaiverError::Schema("missing `waivers` array".to_owned()))?;
        let mut waivers = Vec::with_capacity(entries.len());
        for (idx, entry) in entries.iter().enumerate() {
            let field = |name: &str| -> Result<String, WaiverError> {
                entry
                    .get(name)
                    .and_then(|v| v.as_str())
                    .filter(|s| !s.is_empty())
                    .map(str::to_owned)
                    .ok_or_else(|| {
                        WaiverError::Schema(format!("waiver #{idx}: missing or empty `{name}`"))
                    })
            };
            waivers.push(Waiver {
                rule: field("rule")?,
                file: field("file")?,
                reason: field("reason")?,
            });
        }
        Ok(Self { waivers })
    }

    /// Marks findings covered by a waiver and returns the entries that
    /// matched nothing (stale waivers).
    pub fn apply(&self, report: &mut LintReport) -> Vec<&Waiver> {
        let mut used = vec![false; self.waivers.len()];
        for finding in &mut report.findings {
            if finding.waived {
                continue; // already covered by an inline allow
            }
            for (w_idx, w) in self.waivers.iter().enumerate() {
                if w.rule == finding.rule && w.file == finding.file {
                    finding.waived = true;
                    used[w_idx] = true;
                    break;
                }
            }
        }
        self.waivers
            .iter()
            .zip(&used)
            .filter_map(|(w, &u)| (!u).then_some(w))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::{Finding, Severity};

    fn finding(rule: &'static str, file: &str) -> Finding {
        Finding {
            rule,
            severity: Severity::Error,
            file: file.to_owned(),
            line: 3,
            message: "m".to_owned(),
            waived: false,
        }
    }

    const SAMPLE: &str = r#"{
        "schema_version": 1,
        "waivers": [
            {"rule": "no-panic", "file": "crates/x/src/lib.rs", "reason": "demo"}
        ]
    }"#;

    #[test]
    fn parses_and_applies() {
        let set = WaiverSet::parse(SAMPLE).expect("valid waiver file");
        let mut report = LintReport {
            findings: vec![
                finding("no-panic", "crates/x/src/lib.rs"),
                finding("no-panic", "crates/y/src/lib.rs"),
            ],
            files_scanned: 2,
        };
        let stale = set.apply(&mut report);
        assert!(stale.is_empty());
        assert!(report.findings[0].waived);
        assert!(!report.findings[1].waived);
        assert_eq!(report.unwaived(), 1);
    }

    #[test]
    fn unused_waiver_is_reported_stale() {
        let set = WaiverSet::parse(SAMPLE).expect("valid waiver file");
        let mut report = LintReport::default();
        let stale = set.apply(&mut report);
        assert_eq!(stale.len(), 1);
        assert_eq!(stale[0].rule, "no-panic");
    }

    #[test]
    fn missing_reason_is_rejected() {
        let bad = r#"{"waivers": [{"rule": "no-panic", "file": "a.rs"}]}"#;
        assert!(matches!(WaiverSet::parse(bad), Err(WaiverError::Schema(_))));
    }

    #[test]
    fn missing_file_is_empty_set() {
        let set = WaiverSet::load(Path::new("/nonexistent/waivers.json")).expect("empty");
        assert!(set.waivers.is_empty());
    }
}
