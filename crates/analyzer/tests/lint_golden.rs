//! Golden-JSON snapshot of the lint engine over a torture fixture:
//! raw strings, nested block comments, fenced raw strings, c-string
//! literals (`c"…"`, `cr#"…"#`), lifetimes vs char literals, and
//! `unsafe` inside a macro with its SAFETY comment.
//! The exact JSON (rule, line, severity, waived flags) is pinned so any
//! lexer or rule regression shows up as a diff. The fixture is stored as
//! `.txt` so the workspace gate does not scan its deliberate violations.

use lotus_analyzer::{lint_files, SourceFile};

const FIXTURE: &str = include_str!("fixtures/tricky.rs.txt");

#[test]
fn tricky_fixture_matches_golden_json() {
    let files = [SourceFile {
        // A path without /tests/ so the fixture is linted as library code.
        path: "fixtures/tricky.rs".to_owned(),
        src: FIXTURE.to_owned(),
    }];
    let report = lint_files(&files);
    let expected = include_str!("fixtures/tricky.golden.json");
    assert_eq!(
        report.to_json(),
        expected,
        "lint output diverged from the golden snapshot; \
         if the change is intentional, regenerate tricky.golden.json"
    );
}

#[test]
fn tricky_fixture_finding_shape() {
    let files = [SourceFile {
        path: "fixtures/tricky.rs".to_owned(),
        src: FIXTURE.to_owned(),
    }];
    let report = lint_files(&files);
    // Four live violations (unwrap, SeqCst, missing SAFETY, and the
    // expect placed after the c-string decoys) and one inline-waived
    // expect; the macro's SAFETY-commented unsafe and all string/
    // comment decoys — c-strings included — contribute nothing.
    assert_eq!(report.findings.len(), 5);
    assert_eq!(report.unwaived(), 4);
    let rules: Vec<_> = report
        .findings
        .iter()
        .filter(|f| !f.waived)
        .map(|f| f.rule)
        .collect();
    assert!(rules.contains(&"no-panic"));
    assert!(rules.contains(&"no-seqcst"));
    assert!(rules.contains(&"safety-comment"));
}
