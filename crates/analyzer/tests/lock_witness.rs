//! Cross-check between the *runtime* lock witness and the *static*
//! lock-order graph (DESIGN.md §15).
//!
//! Exercises the instrumented serving layer — worker pool, registry,
//! durable store — then asserts that every lock-order edge the witness
//! recorded at runtime is also present in the graph `analyze locks`
//! derives from the sources, and that the dynamic edge set is acyclic.
//! A dynamic edge missing from the static graph means the analyzer has
//! a blind spot on real code; a cycle means a deadlock candidate
//! slipped into the serving layer.
//!
//! When the witness is disarmed (release build without the
//! `lock-witness` feature) the report is empty and the test passes
//! vacuously.

use std::path::Path;

use lotus_resilience::MemoryBudget;
use lotus_serve::pool::WorkerPool;
use lotus_serve::{DurableStore, Registry};
use lotus_telemetry::sync::{witness_report, WitnessFilter};

/// Drives the instrumented serving-layer types through their normal
/// lifecycles so the witness records their acquisition orders.
fn exercise_serving_layer() {
    // Worker pool: submit real jobs, then shut down (queue/wake/
    // shutting_down/workers orderings).
    let pool = WorkerPool::new(2, 8).expect("spawn pool");
    for i in 0..8u32 {
        while !pool.try_submit(Box::new(move || {
            std::hint::black_box(i);
        })) {
            std::thread::yield_now();
        }
    }
    pool.shutdown();

    // Registry: load enough graphs into a tiny budget to trigger the
    // LRU eviction path, plus an explicit evict (inner/evict_hook).
    let reg = Registry::new(MemoryBudget::from_bytes(1 << 20));
    reg.set_evict_hook(|_| {});
    for (name, spec) in [
        ("wa", "rmat:6:4:1"),
        ("wb", "rmat:6:4:2"),
        ("wc", "er:64:128:3"),
    ] {
        reg.load(name, spec).expect("load graph");
    }
    reg.evict("wb");

    // Durable store: register, checkpoint, evict (durable/journal
    // commit orderings).
    let dir = std::env::temp_dir().join(format!("lotus-lock-witness-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let store = DurableStore::open(&dir).expect("open store").0;
    let graph = lotus_gen::Rmat::new(6, 4).generate(7);
    store
        .record_register("w", "rmat:6:4:7", &graph)
        .expect("register");
    store.checkpoint().expect("checkpoint");
    store.record_evict("w").expect("evict");
    drop(store);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn dynamic_edges_are_a_subset_of_the_static_graph() {
    exercise_serving_layer();
    let dynamic = witness_report(WitnessFilter::Prefix("serve."));
    if dynamic.nodes.is_empty() {
        // Witness disarmed (release build without `lock-witness`).
        return;
    }
    assert!(
        dynamic.cycle().is_none(),
        "runtime lock-order cycle: {:?}",
        dynamic.cycle()
    );
    assert!(
        !dynamic.edges.is_empty(),
        "exercising the serving layer should record at least one ordering edge"
    );

    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = lotus_analyzer::analyze_locks_workspace(
        &root,
        &root.join(lotus_analyzer::DEFAULT_WAIVER_FILE),
    )
    .expect("static lock analysis");
    assert!(report.graph.is_acyclic(), "static lock-order graph cyclic");
    for (from, to) in &dynamic.edges {
        assert!(
            report.graph.has_edge(from, to),
            "witness observed `{from}` -> `{to}` at runtime but the static \
             graph has no such edge — the analyzer has a blind spot here \
             (static edges: {:?})",
            report
                .graph
                .edges
                .iter()
                .map(|e| format!("{} -> {}", e.from, e.to))
                .collect::<Vec<_>>()
        );
    }
}
