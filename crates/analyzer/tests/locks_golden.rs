//! Golden-JSON snapshot of `analyze locks` over a lock-discipline
//! torture fixture (ABBA pair, blocking write, inline-waived write,
//! double acquire, plus clean patterns that must stay silent), and a
//! round-trip check that the emitted artifact parses back into the
//! same graph, findings, and control outcomes. The fixture is stored
//! as `.txt` so the workspace gate does not scan its deliberate
//! violations.

use lotus_analyzer::{run_lock_suite, SourceFile};
use lotus_telemetry::json;

const FIXTURE: &str = include_str!("fixtures/locky.rs.txt");

fn fixture_report() -> lotus_analyzer::LockSuiteReport {
    run_lock_suite(&[SourceFile {
        // A path without /tests/ so the fixture is analyzed as library code.
        path: "fixtures/locky.rs".to_owned(),
        src: FIXTURE.to_owned(),
    }])
}

#[test]
fn locky_fixture_matches_golden_json() {
    let expected = include_str!("fixtures/locky.golden.json");
    assert_eq!(
        fixture_report().to_json(),
        expected,
        "lock-analysis output diverged from the golden snapshot; \
         if the change is intentional, regenerate locky.golden.json"
    );
}

#[test]
fn locky_fixture_finding_shape() {
    let report = fixture_report();
    // The ABBA cycle, the live blocking write, and the double acquire
    // are unwaived; the allow-commented write is waived; the clean
    // patterns (take-then-join, drop-then-relock, own-guard wait)
    // contribute nothing.
    assert_eq!(report.findings.len(), 4);
    assert_eq!(report.unwaived(), 3);
    assert!(!report.graph.is_acyclic());
    assert!(report.controls_ok());
    let rules: Vec<_> = report
        .findings
        .iter()
        .filter(|f| !f.waived)
        .map(|f| f.rule)
        .collect();
    assert!(rules.contains(&"lock-order-cycle"));
    assert!(rules.contains(&"lock-blocking-call"));
    assert!(rules.contains(&"lock-double-acquire"));
}

#[test]
fn locks_json_round_trips_through_the_parser() {
    let report = fixture_report();
    let doc = json::parse(&report.to_json()).expect("artifact is valid JSON");

    assert_eq!(doc.get("mode").and_then(json::Json::as_str), Some("locks"));
    assert_eq!(
        doc.get("schema_version").and_then(json::Json::as_u64),
        Some(1)
    );
    assert_eq!(
        doc.get("acyclic").and_then(json::Json::as_bool),
        Some(report.graph.is_acyclic())
    );
    assert_eq!(
        doc.get("total").and_then(json::Json::as_u64),
        Some(report.findings.len() as u64)
    );
    assert_eq!(
        doc.get("unwaived").and_then(json::Json::as_u64),
        Some(report.unwaived() as u64)
    );

    let nodes = doc.get("nodes").and_then(json::Json::as_array).unwrap();
    let parsed_nodes: Vec<&str> = nodes.iter().filter_map(json::Json::as_str).collect();
    assert_eq!(parsed_nodes, report.graph.nodes);

    let edges = doc.get("edges").and_then(json::Json::as_array).unwrap();
    assert_eq!(edges.len(), report.graph.edges.len());
    for (parsed, edge) in edges.iter().zip(&report.graph.edges) {
        assert_eq!(
            parsed.get("from").and_then(json::Json::as_str),
            Some(edge.from.as_str())
        );
        assert_eq!(
            parsed.get("to").and_then(json::Json::as_str),
            Some(edge.to.as_str())
        );
        assert_eq!(
            parsed.get("line").and_then(json::Json::as_u64),
            Some(u64::from(edge.line))
        );
    }

    let findings = doc.get("findings").and_then(json::Json::as_array).unwrap();
    assert_eq!(findings.len(), report.findings.len());
    for (parsed, finding) in findings.iter().zip(&report.findings) {
        assert_eq!(
            parsed.get("rule").and_then(json::Json::as_str),
            Some(finding.rule)
        );
        assert_eq!(
            parsed.get("waived").and_then(json::Json::as_bool),
            Some(finding.waived)
        );
    }

    let controls = doc.get("controls").and_then(json::Json::as_array).unwrap();
    assert_eq!(controls.len(), report.controls.len());
    for (parsed, control) in controls.iter().zip(&report.controls) {
        assert_eq!(
            parsed.get("name").and_then(json::Json::as_str),
            Some(control.name)
        );
        assert_eq!(
            parsed.get("flagged").and_then(json::Json::as_bool),
            Some(control.flagged)
        );
    }
}
