//! End-to-end race-checker acceptance: every shipped kernel must be
//! race-free and order-independent under all fixed seeds, and the
//! planted overlap must be caught (the detector actually fires).

use lotus_analyzer::{planted_overlap, run_suite, FIXED_SEEDS};

#[test]
fn shipped_kernels_clean_under_all_fixed_seeds() {
    let suite = run_suite(&FIXED_SEEDS);
    assert_eq!(suite.outcomes.len(), 5 * FIXED_SEEDS.len());
    for o in &suite.outcomes {
        assert!(
            o.race.is_clean(),
            "{} seed {}: {} race(s): {:?}",
            o.scenario,
            o.seed,
            o.race.total_races,
            o.race.races
        );
        assert!(
            o.agrees,
            "{} seed {}: scheduled result diverged",
            o.scenario, o.seed
        );
    }
    // Every planted negative control must be flagged, or the clean
    // verdict above is worthless.
    assert_eq!(suite.controls.len(), 4);
    for c in &suite.controls {
        assert!(c.flagged(), "planted control '{}' was missed", c.name);
    }
    assert!(suite.is_clean());
}

#[test]
fn instrumentation_is_live() {
    // The shadow log must actually see the kernels' accesses; a suite
    // that is "clean" because nothing was logged proves nothing.
    let suite = run_suite(&FIXED_SEEDS[..1]);
    for o in &suite.outcomes {
        assert!(
            o.race.accesses > 0,
            "{}: no shadow-log accesses recorded — instrumentation lost",
            o.scenario
        );
        assert!(
            o.race.regions > 0,
            "{}: no parallel regions seen",
            o.scenario
        );
    }
}

#[test]
fn planted_overlap_caught_under_every_fixed_seed() {
    for seed in FIXED_SEEDS {
        let report = planted_overlap(seed, 32);
        assert!(
            !report.is_clean(),
            "seed {seed}: planted overlap escaped detection"
        );
        assert!(report.races.iter().all(|r| r.write_write));
    }
}

#[test]
fn suite_report_json_parses() {
    let suite = run_suite(&FIXED_SEEDS[..1]);
    let json = suite.to_json();
    let parsed = lotus_telemetry::json::parse(&json).expect("suite JSON parses");
    assert_eq!(parsed.get("mode").and_then(|v| v.as_str()), Some("race"));
    assert_eq!(
        parsed
            .get("clean")
            .and_then(lotus_telemetry::json::Json::as_bool),
        Some(true)
    );
    let outcomes = parsed
        .get("outcomes")
        .and_then(|v| v.as_array())
        .expect("outcomes array");
    assert_eq!(outcomes.len(), 5);
}
