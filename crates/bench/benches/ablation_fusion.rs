//! Loop-fusion ablation (paper §4.5): LOTUS keeps the HNN and NNN loops
//! separate so each phase's random accesses stay within one small
//! structure; this bench measures the fused alternative.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use lotus_core::config::LotusConfig;
use lotus_core::count::LotusCounter;
use lotus_core::preprocess::build_lotus_graph;
use lotus_gen::{Dataset, DatasetScale};

fn bench_fusion(c: &mut Criterion) {
    let dataset = Dataset::by_name("SK")
        .expect("known")
        .at_scale(DatasetScale::Tiny);
    let graph = dataset.generate();
    let lg = build_lotus_graph(&graph, &LotusConfig::default());

    let mut group = c.benchmark_group("fusion");
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    group.sample_size(20);
    for (label, fuse) in [("split", false), ("fused", true)] {
        let counter = LotusCounter::new(LotusConfig::default().with_fused_phases(fuse));
        group.bench_function(label, |b| {
            b.iter(|| black_box(counter.count_prepared(&lg).total()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fusion);
criterion_main!(benches);
