//! Hub-count ablation: LOTUS counting time as the hub set grows from
//! "none" (degenerates to Forward-on-NHE) to "most vertices" (degenerates
//! to pure H2H probing). The paper fixes 64K (§4.2); this sweep shows the
//! sensitivity of that choice.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use lotus_core::config::{HubCount, LotusConfig};
use lotus_core::count::LotusCounter;
use lotus_core::preprocess::build_lotus_graph;
use lotus_gen::{Dataset, DatasetScale};

fn bench_hub_count(c: &mut Criterion) {
    let dataset = Dataset::by_name("Twtr")
        .expect("known")
        .at_scale(DatasetScale::Tiny);
    let graph = dataset.generate();
    let n = graph.num_vertices();

    let mut group = c.benchmark_group("hub_count");
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    group.sample_size(15);
    for hubs in [0u32, n / 256, n / 64, n / 16, n / 4] {
        let config = LotusConfig::default().with_hub_count(HubCount::Fixed(hubs));
        let lg = build_lotus_graph(&graph, &config);
        let counter = LotusCounter::new(config);
        group.bench_with_input(BenchmarkId::from_parameter(hubs), &lg, |b, lg| {
            b.iter(|| black_box(counter.count_prepared(lg).total()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_hub_count);
criterion_main!(benches);
