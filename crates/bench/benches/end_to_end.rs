//! End-to-end TC benchmark per algorithm (the Criterion counterpart of
//! Table 5). Uses three representative datasets at Tiny scale so the
//! whole run completes quickly; set `LOTUS_SCALE=full` for larger runs.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use lotus_bench::harness::{run_algorithm, scale_from_env, Algorithm};
use lotus_gen::{Dataset, DatasetScale};

fn bench_scale() -> DatasetScale {
    match scale_from_env() {
        // Criterion repeats each measurement many times; default one size
        // below the report binaries.
        DatasetScale::Small => DatasetScale::Tiny,
        other => other,
    }
}

fn bench_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("end_to_end");
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    group.sample_size(10);
    for name in ["LJGrp", "Twtr", "SK"] {
        let dataset = Dataset::by_name(name)
            .expect("known dataset")
            .at_scale(bench_scale());
        let graph = dataset.generate();
        for alg in Algorithm::ALL {
            group.bench_with_input(BenchmarkId::new(alg.name(), name), &graph, |b, g| {
                b.iter(|| black_box(run_algorithm(alg, g).triangles));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_end_to_end);
criterion_main!(benches);
