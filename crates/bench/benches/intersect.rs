//! Intersection-kernel micro-benchmarks (paper §6.3 context): merge vs
//! binary vs gallop vs hash vs bitmap on similar-length and skewed lists.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use lotus_algos::intersect::{Bitmap, IntersectKind};

/// Deterministic sorted distinct list.
fn sorted_list(seed: u64, len: usize, universe: u32) -> Vec<u32> {
    let mut state = seed.wrapping_mul(0x2545F4914F6CDD1D) | 1;
    let mut v: Vec<u32> = (0..len * 2)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % universe as u64) as u32
        })
        .collect();
    v.sort_unstable();
    v.dedup();
    v.truncate(len);
    v
}

fn bench_intersect(c: &mut Criterion) {
    let universe = 1 << 20;
    let cases = [
        (
            "similar_1k_1k",
            sorted_list(1, 1000, universe),
            sorted_list(2, 1000, universe),
        ),
        (
            "skewed_32_8k",
            sorted_list(3, 32, universe),
            sorted_list(4, 8192, universe),
        ),
        (
            "short_16_16",
            sorted_list(5, 16, universe),
            sorted_list(6, 16, universe),
        ),
    ];

    let mut group = c.benchmark_group("intersect");
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    for (case, a, b) in &cases {
        for k in IntersectKind::ALL {
            group.bench_with_input(BenchmarkId::new(k.name(), case), &(a, b), |bch, (a, b)| {
                bch.iter(|| black_box(k.count(a, b)));
            });
        }
        group.bench_with_input(BenchmarkId::new("bitmap", case), &(a, b), |bch, (a, b)| {
            let mut bm = Bitmap::new(universe as usize);
            bch.iter(|| black_box(bm.count(a, b)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_intersect);
criterion_main!(benches);
