//! Per-phase LOTUS benchmarks (the Criterion counterpart of Figure 6):
//! preprocessing, HHH+HHN, HNN, and NNN measured separately on a prepared
//! LOTUS graph.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use lotus_core::count::{count_hnn_phase, count_hub_phase, count_nnn_phase};
use lotus_core::preprocess::build_lotus_graph;
use lotus_core::tiling::make_tiles;
use lotus_core::LotusConfig;
use lotus_gen::{Dataset, DatasetScale};

fn bench_phases(c: &mut Criterion) {
    let dataset = Dataset::by_name("Twtr")
        .expect("known")
        .at_scale(DatasetScale::Tiny);
    let graph = dataset.generate();
    let config = LotusConfig::default();
    let lg = build_lotus_graph(&graph, &config);
    let tiles = make_tiles(
        &lg.he,
        config.tiling_threshold,
        config.partitions_per_vertex,
    );

    let mut group = c.benchmark_group("phases");
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    group.sample_size(20);
    group.bench_function("preprocess", |b| {
        b.iter(|| black_box(build_lotus_graph(&graph, &config).he_edges()));
    });
    group.bench_function("hhh_hhn", |b| {
        b.iter(|| black_box(count_hub_phase(&lg, &tiles)));
    });
    group.bench_function("hnn", |b| b.iter(|| black_box(count_hnn_phase(&lg))));
    group.bench_function("nnn", |b| b.iter(|| black_box(count_nnn_phase(&lg))));
    group.finish();
}

criterion_group!(benches, bench_phases);
criterion_main!(benches);
