//! Preprocessing cost comparison: LOTUS's Algorithm 2 (hub-first relabel
//! plus HE/NHE/H2H construction) vs the baselines' degree ordering plus
//! forward orientation. §5.4 reports preprocessing at 19.4% of LOTUS's
//! end-to-end time.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use lotus_algos::preprocess::degree_order_and_orient;
use lotus_core::preprocess::build_lotus_graph;
use lotus_core::LotusConfig;
use lotus_gen::{Dataset, DatasetScale};

fn bench_preprocessing(c: &mut Criterion) {
    let dataset = Dataset::by_name("Twtr")
        .expect("known")
        .at_scale(DatasetScale::Tiny);
    let graph = dataset.generate();
    let config = LotusConfig::default();

    let mut group = c.benchmark_group("preprocessing");
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    group.sample_size(20);
    group.bench_function("lotus_build", |b| {
        b.iter(|| black_box(build_lotus_graph(&graph, &config).he_edges()));
    });
    group.bench_function("degree_order_orient", |b| {
        b.iter(|| black_box(degree_order_and_orient(&graph).forward.num_entries()));
    });
    group.finish();
}

criterion_group!(benches, bench_preprocessing);
criterion_main!(benches);
