//! Topology-representation benchmark (paper §3.2): traversal cost of
//! 32-bit CSX vs delta-varint-compressed lists vs LOTUS's 16-bit HE
//! lists. Compression saves bytes but must not slow the hot read path —
//! the constraint that led LOTUS to fixed-width narrow IDs.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use lotus_algos::intersect::{count_merge, IntersectKind};
use lotus_algos::preprocess::degree_order_and_orient;
use lotus_core::preprocess::build_lotus_graph;
use lotus_core::LotusConfig;
use lotus_gen::{Dataset, DatasetScale};
use lotus_graph::varint::{count_merge_varint, VarintCsr};

fn bench_representation(c: &mut Criterion) {
    let dataset = Dataset::by_name("SK")
        .expect("known")
        .at_scale(DatasetScale::Tiny);
    let graph = dataset.generate();
    let pre = degree_order_and_orient(&graph);
    let forward = &pre.forward;
    let varint = VarintCsr::from_csr(forward);
    let lg = build_lotus_graph(&graph, &LotusConfig::default());

    let mut group = c.benchmark_group("representation");
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    group.sample_size(15);
    group.bench_function("csx_u32_merge", |b| {
        b.iter(|| {
            black_box(lotus_algos::forward::count_oriented(
                forward,
                IntersectKind::Merge,
            ))
        });
    });
    group.bench_function("varint_merge", |b| {
        b.iter(|| {
            let total: u64 = (0..forward.num_vertices())
                .map(|v| {
                    let nv = forward.neighbors(v);
                    nv.iter()
                        .map(|&u| count_merge_varint(nv, varint.neighbors(u)))
                        .sum::<u64>()
                })
                .sum();
            black_box(total)
        });
    });
    group.bench_function("lotus_he_u16_merge", |b| {
        // The HE sub-graph's 16-bit lists, merged pairwise as HNN does.
        b.iter(|| {
            let total: u64 = (0..lg.num_vertices())
                .map(|v| {
                    let he_v = lg.hub_neighbors(v);
                    lg.nonhub_neighbors(v)
                        .iter()
                        .map(|&u| count_merge(he_v, lg.hub_neighbors(u)))
                        .sum::<u64>()
                })
                .sum();
            black_box(total)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_representation);
criterion_main!(benches);
