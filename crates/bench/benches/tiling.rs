//! Phase-1 scheduling benchmark (the Criterion counterpart of Table 9):
//! squared edge tiling vs whole-vertex tasks vs edge-balanced ranges.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use lotus_core::count::{count_hub_phase, count_single_tile};
use lotus_core::preprocess::build_lotus_graph;
use lotus_core::tiling::{make_tiles, Tile};
use lotus_core::LotusConfig;
use lotus_gen::{Dataset, DatasetScale};
use lotus_graph::partition::edge_balanced;
use rayon::prelude::*;

fn bench_tiling(c: &mut Criterion) {
    let dataset = Dataset::by_name("Twtr10")
        .expect("known")
        .at_scale(DatasetScale::Tiny);
    let graph = dataset.generate();
    let config = LotusConfig::default();
    let lg = build_lotus_graph(&graph, &config);

    let tiles_set = make_tiles(&lg.he, 512, config.partitions_per_vertex);
    // No splitting: every vertex is one tile regardless of degree.
    let tiles_whole = make_tiles(&lg.he, u32::MAX, config.partitions_per_vertex);

    let mut group = c.benchmark_group("tiling");
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    group.sample_size(20);
    group.bench_function("squared_edge_tiling", |b| {
        b.iter(|| black_box(count_hub_phase(&lg, &tiles_set)));
    });
    group.bench_function("whole_vertex_tasks", |b| {
        b.iter(|| black_box(count_hub_phase(&lg, &tiles_whole)));
    });
    group.bench_function("edge_balanced_ranges", |b| {
        let ranges = edge_balanced(&lg.he, 256 * rayon::current_num_threads());
        b.iter(|| {
            let total: u64 = ranges
                .par_iter()
                .map(|r| {
                    let mut local = 0u64;
                    for v in r.iter() {
                        let he = lg.hub_neighbors(v);
                        let t = Tile {
                            v,
                            begin: 0,
                            end: he.len() as u32,
                        };
                        local += count_single_tile(&lg.h2h, he, &t);
                    }
                    local
                })
                .sum();
            black_box(total)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_tiling);
criterion_main!(benches);
