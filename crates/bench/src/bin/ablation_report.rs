//! Regenerates the ablation studies (kernels, fusion, hub count).
fn main() {
    let scale = lotus_bench::harness::scale_from_env();
    println!("{}", lotus_bench::reports::ablation_report(scale));
}
