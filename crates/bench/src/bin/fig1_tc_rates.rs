//! Regenerates Figure 1 (average TC rates).
fn main() {
    let scale = lotus_bench::harness::scale_from_env();
    println!("{}", lotus_bench::reports::fig1_tc_rates(scale));
}
