//! Regenerates Figure 4 (LLC and DTLB misses).
fn main() {
    let scale = lotus_bench::harness::scale_from_env();
    println!("{}", lotus_bench::reports::fig4_locality(scale));
}
