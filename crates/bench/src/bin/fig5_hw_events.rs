//! Regenerates Figure 5 (hardware event comparison).
fn main() {
    let scale = lotus_bench::harness::scale_from_env();
    println!("{}", lotus_bench::reports::fig5_hw_events(scale));
}
