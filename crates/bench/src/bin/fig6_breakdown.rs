//! Regenerates Figure 6 (execution breakdown).
fn main() {
    let scale = lotus_bench::harness::scale_from_env();
    println!("{}", lotus_bench::reports::fig6_breakdown(scale));
}
