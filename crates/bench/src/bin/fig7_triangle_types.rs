//! Regenerates Figure 7 (hub vs non-hub triangles).
fn main() {
    let scale = lotus_bench::harness::scale_from_env();
    println!("{}", lotus_bench::reports::fig7_triangle_types(scale));
}
