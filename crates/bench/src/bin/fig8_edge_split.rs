//! Regenerates Figure 8 (HE/NHE edge split).
fn main() {
    let scale = lotus_bench::harness::scale_from_env();
    println!("{}", lotus_bench::reports::fig8_edge_split(scale));
}
