//! Regenerates Figure 9 (H2H cacheline locality).
fn main() {
    let scale = lotus_bench::harness::scale_from_env();
    println!("{}", lotus_bench::reports::fig9_h2h_locality(scale));
}
