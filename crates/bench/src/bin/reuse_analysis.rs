//! Reuse-distance analysis of H2H accesses (supports §5.7's claim that a
//! modest cache satisfies >90% of H2H probes).
//!
//! Unlike Figure 9's frequency ordering, this computes the *exact*
//! fully-associative-LRU miss-ratio curve via Mattson stack distances, so
//! "cache size needed for X% hits" is a true statement about an LRU cache
//! rather than an upper bound from hot-line pinning.
//!
//! ```text
//! cargo run --release -p lotus-bench --bin reuse_analysis
//! ```

use lotus_bench::table::Table;
use lotus_core::preprocess::build_lotus_graph;
use lotus_core::LotusConfig;
use lotus_gen::DatasetScale;
use lotus_perfsim::instrumented::lotus::record_h2h_trace;

fn main() {
    // Trace recording costs 8 bytes per hub-pair probe: stay at Tiny.
    let mut t =
        Table::new("H2H reuse-distance analysis: LRU miss ratio vs cache capacity (Tiny scale)")
            .headers(&[
                "Dataset",
                "Probes",
                "H2H-Lines",
                "Miss@1%",
                "Miss@5%",
                "Miss@25%",
                "Lines@99%",
            ]);
    for d in lotus_bench::harness::small_suite(DatasetScale::Tiny) {
        let g = d.generate();
        let lg = build_lotus_graph(&g, &LotusConfig::paper());
        let trace = record_h2h_trace(&lg);
        let profile = trace.profile();
        let total_lines = lg.h2h.size_bytes().div_ceil(64).max(1) as usize;
        let miss = |frac: f64| {
            format!(
                "{:.4}",
                profile.miss_ratio_at(((total_lines as f64) * frac) as usize)
            )
        };
        t.row(vec![
            d.name.into(),
            profile.total.to_string(),
            total_lines.to_string(),
            miss(0.01),
            miss(0.05),
            miss(0.25),
            profile
                .capacity_for_hit_fraction(0.99)
                .map_or("-".to_string(), |c| c.to_string()),
        ]);
    }
    t.footnote("Paper §5.7: 64MB (25% of H2H) satisfies >90% of accesses on billion-edge graphs");
    t.footnote("Phase-1's streamed inner loop makes consecutive probes share lines, so");
    t.footnote("LRU does even better than the paper's frequency bound — same conclusion.");
    println!("{}", t.render());
}
