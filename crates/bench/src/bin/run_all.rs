//! Runs every experiment in sequence and prints all tables — the one-shot
//! reproduction of the paper's evaluation section.
//!
//! ```text
//! LOTUS_SCALE=small cargo run -p lotus-bench --release --bin run_all
//! ```
//!
//! Figures 4, 5 and 9 drive the cache simulator, which replays every
//! memory access; they run one scale lower than the timing tables to keep
//! the wall time reasonable.

use lotus_bench::reports;
use lotus_gen::DatasetScale;

fn main() {
    let scale = lotus_bench::harness::scale_from_env();
    // The perfsim figures replay every access through the cache model —
    // run those a scale lower.
    let sim_scale = match scale {
        DatasetScale::Tiny | DatasetScale::Small => DatasetScale::Tiny,
        DatasetScale::Full => DatasetScale::Small,
    };
    let workers = std::env::var("LOTUS_WORKERS")
        .ok()
        .and_then(|w| w.parse().ok())
        .unwrap_or(32);

    type Section = (&'static str, Box<dyn Fn() -> String>);
    let sections: Vec<Section> = vec![
        ("Table 4", Box::new(move || reports::table4_datasets(scale))),
        (
            "Table 1",
            Box::new(move || reports::table1_hub_stats(scale)),
        ),
        ("Table 5", Box::new(move || reports::table5_endtoend(scale))),
        ("Table 6", Box::new(move || reports::table6_large(scale))),
        ("Figure 1", Box::new(move || reports::fig1_tc_rates(scale))),
        (
            "Figure 4",
            Box::new(move || reports::fig4_locality(sim_scale)),
        ),
        (
            "Figure 5",
            Box::new(move || reports::fig5_hw_events(sim_scale)),
        ),
        ("Figure 6", Box::new(move || reports::fig6_breakdown(scale))),
        (
            "Figure 7",
            Box::new(move || reports::fig7_triangle_types(scale)),
        ),
        (
            "Figure 8",
            Box::new(move || reports::fig8_edge_split(scale)),
        ),
        (
            "Table 7",
            Box::new(move || reports::table7_topology_size(scale)),
        ),
        ("Table 8", Box::new(move || reports::table8_h2h(scale))),
        (
            "Figure 9",
            Box::new(move || reports::fig9_h2h_locality(sim_scale)),
        ),
        (
            "Table 9",
            Box::new(move || reports::table9_tiling(scale, workers)),
        ),
        (
            "Ablations",
            Box::new(move || reports::ablation_report(scale)),
        ),
    ];

    for (name, run) in sections {
        eprintln!(">>> running {name} ...");
        let start = std::time::Instant::now();
        println!("{}", run());
        eprintln!("    {name} done in {:.1}s\n", start.elapsed().as_secs_f64());
    }
}
