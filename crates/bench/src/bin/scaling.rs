//! Thread-scaling report: LOTUS counting time across rayon pool sizes.
//!
//! The paper evaluates on 32–128 core machines (Table 3); this report
//! sweeps local thread counts so multi-core hosts can reproduce the
//! scaling behaviour (on a single-core host all rows are flat — the
//! sweep infrastructure is still exercised).
//!
//! ```text
//! LOTUS_SCALE=small cargo run --release -p lotus-bench --bin scaling
//! ```
//!
//! Set `LOTUS_SCALING_JSON=curve.json` to also write the
//! machine-readable scaling-curve artifact (schema documented in
//! EXPERIMENTS.md).

use std::fmt::Write as _;
use std::time::Instant;

use lotus_bench::table::{secs, Table};
use lotus_core::count::LotusCounter;
use lotus_core::preprocess::build_lotus_graph;
use lotus_core::LotusConfig;
use lotus_gen::Dataset;

struct Curve {
    dataset: &'static str,
    vertices: usize,
    edges: usize,
    wall_ms: Vec<f64>,
}

fn curves_json(threads: &[usize], curves: &[Curve]) -> String {
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    let mut out = String::from("{\n  \"schema_version\": 1,\n  \"report\": \"scaling\",\n");
    let _ = write!(
        out,
        "  \"environment\": {{ \"cores\": {cores} }},\n  \"threads\": ["
    );
    let list: Vec<String> = threads.iter().map(ToString::to_string).collect();
    let _ = write!(out, "{}],\n  \"curves\": [", list.join(", "));
    for (i, c) in curves.iter().enumerate() {
        let sep = if i == 0 { "" } else { "," };
        let walls: Vec<String> = c.wall_ms.iter().map(|w| format!("{w:.3}")).collect();
        let speedups: Vec<String> = c
            .wall_ms
            .iter()
            .map(|&w| format!("{:.3}", c.wall_ms[0] / w.max(f64::MIN_POSITIVE)))
            .collect();
        let _ = write!(
            out,
            "{sep}\n    {{ \"dataset\": \"{}\", \"vertices\": {}, \"edges\": {}, \
             \"wall_ms\": [{}], \"speedup\": [{}] }}",
            c.dataset,
            c.vertices,
            c.edges,
            walls.join(", "),
            speedups.join(", ")
        );
    }
    out.push_str("\n  ]\n}\n");
    out
}

fn main() {
    let scale = lotus_bench::harness::scale_from_env();
    let threads = [1usize, 2, 4, 8];
    let mut headers: Vec<String> = vec!["Dataset".into()];
    headers.extend(threads.iter().map(|t| format!("{t}thr")));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut t = Table::new("Thread scaling: Lotus counting time (seconds)").headers(&header_refs);

    let mut curves = Vec::new();
    for name in ["Twtr", "SK", "UKDls"] {
        let Some(dataset) = Dataset::by_name(name) else {
            eprintln!("scaling: unknown dataset {name}");
            std::process::exit(2);
        };
        let dataset = dataset.at_scale(scale);
        let graph = dataset.generate();
        let lg = build_lotus_graph(&graph, &LotusConfig::default());
        let mut cells = vec![name.to_string()];
        let mut curve = Curve {
            dataset: name,
            vertices: graph.num_vertices() as usize,
            edges: graph.num_edges() as usize,
            wall_ms: Vec::new(),
        };
        for &n in &threads {
            let pool = match rayon::ThreadPoolBuilder::new().num_threads(n).build() {
                Ok(pool) => pool,
                Err(e) => {
                    eprintln!("scaling: failed to build {n}-thread pool: {e}");
                    std::process::exit(2);
                }
            };
            let counter = LotusCounter::new(LotusConfig::default());
            let start = Instant::now();
            let total = pool.install(|| counter.count_prepared(&lg).total());
            let elapsed = start.elapsed();
            cells.push(secs(elapsed));
            curve.wall_ms.push(elapsed.as_secs_f64() * 1e3);
            assert!(total > 0);
        }
        t.row(cells);
        curves.push(curve);
    }
    t.footnote(format!(
        "Host exposes {} hardware thread(s); speedups require a multi-core host",
        std::thread::available_parallelism().map_or(1, std::num::NonZero::get)
    ));
    println!("{}", t.render());

    if let Ok(path) = std::env::var("LOTUS_SCALING_JSON") {
        if let Err(e) = std::fs::write(&path, curves_json(&threads, &curves)) {
            eprintln!("scaling: cannot write '{path}': {e}");
            std::process::exit(1);
        }
        println!("wrote scaling curves to {path}");
    }
}
