//! Thread-scaling report: LOTUS counting time across rayon pool sizes.
//!
//! The paper evaluates on 32–128 core machines (Table 3); this report
//! sweeps local thread counts so multi-core hosts can reproduce the
//! scaling behaviour (on a single-core host all rows are flat — the
//! sweep infrastructure is still exercised).
//!
//! ```text
//! LOTUS_SCALE=small cargo run --release -p lotus-bench --bin scaling
//! ```

use std::time::Instant;

use lotus_bench::table::{secs, Table};
use lotus_core::count::LotusCounter;
use lotus_core::preprocess::build_lotus_graph;
use lotus_core::LotusConfig;
use lotus_gen::Dataset;

fn main() {
    let scale = lotus_bench::harness::scale_from_env();
    let threads = [1usize, 2, 4, 8];
    let mut headers: Vec<String> = vec!["Dataset".into()];
    headers.extend(threads.iter().map(|t| format!("{t}thr")));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut t = Table::new("Thread scaling: Lotus counting time (seconds)").headers(&header_refs);

    for name in ["Twtr", "SK", "UKDls"] {
        let Some(dataset) = Dataset::by_name(name) else {
            eprintln!("scaling: unknown dataset {name}");
            std::process::exit(2);
        };
        let dataset = dataset.at_scale(scale);
        let graph = dataset.generate();
        let lg = build_lotus_graph(&graph, &LotusConfig::default());
        let mut cells = vec![name.to_string()];
        for &n in &threads {
            let pool = match rayon::ThreadPoolBuilder::new().num_threads(n).build() {
                Ok(pool) => pool,
                Err(e) => {
                    eprintln!("scaling: failed to build {n}-thread pool: {e}");
                    std::process::exit(2);
                }
            };
            let counter = LotusCounter::new(LotusConfig::default());
            let start = Instant::now();
            let total = pool.install(|| counter.count_prepared(&lg).total());
            cells.push(secs(start.elapsed()));
            assert!(total > 0);
        }
        t.row(cells);
    }
    t.footnote(format!(
        "Host exposes {} hardware thread(s); speedups require a multi-core host",
        std::thread::available_parallelism().map_or(1, std::num::NonZero::get)
    ));
    println!("{}", t.render());
}
