//! Regenerates Table 1 (topological characteristics of hubs).
fn main() {
    let scale = lotus_bench::harness::scale_from_env();
    println!("{}", lotus_bench::reports::table1_hub_stats(scale));
}
