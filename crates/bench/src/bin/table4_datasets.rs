//! Regenerates Table 4 (dataset inventory).
fn main() {
    let scale = lotus_bench::harness::scale_from_env();
    println!("{}", lotus_bench::reports::table4_datasets(scale));
}
