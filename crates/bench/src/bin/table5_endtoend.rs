//! Regenerates Table 5 (end-to-end TC times vs baselines).
fn main() {
    let scale = lotus_bench::harness::scale_from_env();
    println!("{}", lotus_bench::reports::table5_endtoend(scale));
}
