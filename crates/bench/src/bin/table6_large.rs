//! Regenerates Table 6 (large-graph TC times, GBBS vs Lotus).
fn main() {
    let scale = lotus_bench::harness::scale_from_env();
    println!("{}", lotus_bench::reports::table6_large(scale));
}
