//! Regenerates Table 7 (topology data sizes).
fn main() {
    let scale = lotus_bench::harness::scale_from_env();
    println!("{}", lotus_bench::reports::table7_topology_size(scale));
}
