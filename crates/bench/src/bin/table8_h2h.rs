//! Regenerates Table 8 (H2H bit array characteristics).
fn main() {
    let scale = lotus_bench::harness::scale_from_env();
    println!("{}", lotus_bench::reports::table8_h2h(scale));
}
