//! Regenerates Table 9 (idle time: edge-balanced vs squared edge tiling).
fn main() {
    let scale = lotus_bench::harness::scale_from_env();
    let workers = std::env::var("LOTUS_WORKERS")
        .ok()
        .and_then(|w| w.parse().ok())
        .unwrap_or(32);
    println!("{}", lotus_bench::reports::table9_tiling(scale, workers));
}
