//! The `cluster` section of the benchmark artifact: a loadgen run
//! driven against a fan-out coordinator instead of a single daemon.
//!
//! The section lives under the top-level `"cluster"` key of a
//! `BENCH.json` document, beside (not instead of) the single-node
//! `"serve"` section, so one artifact can carry both sides of the
//! scale-out comparison. Its layout is the [`ServeSection`] fields
//! plus `shards`, the fleet size behind the coordinator:
//!
//! ```json
//! "cluster": {
//!   "shards": 3,
//!   "suite": "ci", "graph": "rmat:9:8:7",
//!   "connections": 4, "requests": 200, ...
//! }
//! ```
//!
//! [`crate::BenchReport::parse`] tolerates the extra key (schema v1
//! unknown-field contract), exactly as it does for `"serve"`.

use lotus_telemetry::json::Json;

use crate::serve_section::ServeSection;

/// Aggregated coordinator-path measurements: the usual serving-layer
/// numbers plus how many shard daemons stood behind them.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ClusterSection {
    /// Shard daemons in the fleet during the run.
    pub shards: u64,
    /// The request-latency measurements (same schema as `"serve"`).
    pub section: ServeSection,
}

impl ClusterSection {
    /// Serializes to the `"cluster"` JSON object (flat: `shards` plus
    /// every [`ServeSection`] field).
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut members = vec![("shards".to_string(), Json::Int(self.shards as i64))];
        if let Json::Obj(rest) = self.section.to_json() {
            members.extend(rest);
        }
        Json::Obj(members)
    }

    /// Parses a `"cluster"` object (unknown fields ignored, missing
    /// numeric fields default to zero — the same tolerance as
    /// [`ServeSection::from_json`]).
    ///
    /// # Errors
    /// Returns a description when required string fields are absent.
    pub fn from_json(v: &Json) -> Result<ClusterSection, String> {
        Ok(ClusterSection {
            shards: v.get("shards").and_then(Json::as_u64).unwrap_or(0),
            section: ServeSection::from_json(v)?,
        })
    }

    /// Extracts the section from a whole `BENCH.json` document, if the
    /// document carries one.
    ///
    /// # Errors
    /// Returns a description when the document is not valid JSON or
    /// the present section is malformed; `Ok(None)` when there is no
    /// `"cluster"` key at all.
    pub fn from_document(text: &str) -> Result<Option<ClusterSection>, String> {
        let v = lotus_telemetry::json::parse(text).map_err(|e| e.to_string())?;
        match v.get("cluster") {
            Some(section) => Ok(Some(ClusterSection::from_json(section)?)),
            None => Ok(None),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::SCHEMA_VERSION;

    fn sample() -> ClusterSection {
        ClusterSection {
            shards: 3,
            section: ServeSection {
                suite: "ci".into(),
                graph: "rmat:9:8:7".into(),
                connections: 4,
                requests: 200,
                ok: 200,
                p50_us: 900,
                p90_us: 2300,
                p99_us: 5100,
                throughput_rps: 1100.0,
                wall_ms: 180,
                ..ServeSection::default()
            },
        }
    }

    #[test]
    fn json_round_trip() {
        let section = sample();
        let back = ClusterSection::from_json(&section.to_json()).unwrap();
        assert_eq!(back, section);
    }

    #[test]
    fn document_extraction_beside_a_serve_section() {
        let doc = Json::Obj(vec![
            ("schema_version".into(), Json::Int(SCHEMA_VERSION)),
            ("suite".into(), Json::Str("ci".into())),
            ("runs".into(), Json::Arr(vec![])),
            ("serve".into(), sample().section.to_json()),
            ("cluster".into(), sample().to_json()),
        ]);
        let text = doc.pretty();
        assert_eq!(ClusterSection::from_document(&text), Ok(Some(sample())));
        // Both sections coexist; neither reader trips on the other.
        let serve = ServeSection::from_document(&text).unwrap().unwrap();
        assert_eq!(serve, sample().section);
        crate::BenchReport::parse(&text).unwrap();
    }

    #[test]
    fn absence_and_malformation_are_distinct() {
        assert_eq!(ClusterSection::from_document("{}"), Ok(None));
        assert!(ClusterSection::from_document("not json").is_err());
        let missing = Json::Obj(vec![("cluster".into(), Json::Obj(vec![]))]);
        assert!(ClusterSection::from_document(&missing.pretty()).is_err());
    }
}
