//! The perf-regression gate behind `lotus bench compare`.
//!
//! Two `BENCH.json` artifacts are diffed run-by-run, matched on
//! `(dataset, algorithm)`. Three classes of outcome:
//!
//! * **Hard failures** — triangle counts differ (a correctness bug, no
//!   tolerance applies), a baseline run is missing from the current
//!   artifact, or the artifacts have incompatible schema versions.
//! * **Regressions** — `wall_ms` grew beyond `(1 + tolerance) ×`
//!   baseline. Speedups never fail.
//! * **Notes** — informational only: counter drift (tile visits depend
//!   on the thread count, so counters are not gated), runs present only
//!   in the current artifact, and environment differences.

use std::fmt;

use crate::report::{BenchReport, BenchRun};
use crate::serve_section::ServeSection;

/// Tolerance used by the CI gate when none is given on the command line.
pub const DEFAULT_TOLERANCE: f64 = 0.25;

/// Severity of one [`Finding`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Informational; never fails the gate.
    Note,
    /// `wall_ms` grew beyond tolerance.
    Regression,
    /// Correctness or structural mismatch; tolerance does not apply.
    Failure,
}

/// One comparison observation.
#[derive(Debug, Clone, PartialEq)]
pub struct Finding {
    /// How serious it is.
    pub severity: Severity,
    /// Human-readable description, one line.
    pub message: String,
}

impl Finding {
    fn note(message: String) -> Finding {
        Finding {
            severity: Severity::Note,
            message,
        }
    }

    fn regression(message: String) -> Finding {
        Finding {
            severity: Severity::Regression,
            message,
        }
    }

    fn failure(message: String) -> Finding {
        Finding {
            severity: Severity::Failure,
            message,
        }
    }
}

/// Outcome of comparing a current artifact against a baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct Comparison {
    /// Tolerance the gate ran with (fractional, e.g. `0.25` = ±25%).
    pub tolerance: f64,
    /// Everything observed, notes included.
    pub findings: Vec<Finding>,
    /// Runs compared (matched pairs).
    pub matched: usize,
}

impl Comparison {
    /// True when no regression or failure was found.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.findings.iter().all(|f| f.severity == Severity::Note)
    }

    /// Findings of a given severity.
    #[must_use]
    pub fn with_severity(&self, severity: Severity) -> Vec<&Finding> {
        self.findings
            .iter()
            .filter(|f| f.severity == severity)
            .collect()
    }
}

impl fmt::Display for Comparison {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "bench compare: {} matched run(s), tolerance {:.0}%",
            self.matched,
            self.tolerance * 100.0
        )?;
        for finding in &self.findings {
            let tag = match finding.severity {
                Severity::Note => "note",
                Severity::Regression => "REGRESSION",
                Severity::Failure => "FAIL",
            };
            writeln!(f, "  [{tag}] {}", finding.message)?;
        }
        if self.passed() {
            writeln!(f, "result: PASS")
        } else {
            writeln!(f, "result: FAIL")
        }
    }
}

/// Compares `current` against `baseline` at the given fractional
/// tolerance. See the module docs for what fails versus what is noted.
#[must_use]
pub fn compare(baseline: &BenchReport, current: &BenchReport, tolerance: f64) -> Comparison {
    let mut findings = Vec::new();
    let mut matched = 0usize;

    if baseline.schema_version != current.schema_version {
        findings.push(Finding::failure(format!(
            "schema_version mismatch: baseline {} vs current {}",
            baseline.schema_version, current.schema_version
        )));
    }
    if baseline.suite != current.suite {
        findings.push(Finding::note(format!(
            "suite differs: baseline '{}' vs current '{}'",
            baseline.suite, current.suite
        )));
    }
    if baseline.environment.threads != current.environment.threads {
        findings.push(Finding::note(format!(
            "thread count differs: baseline {} vs current {} (times may not be comparable)",
            baseline.environment.threads, current.environment.threads
        )));
    }
    if baseline.environment.telemetry != current.environment.telemetry {
        findings.push(Finding::note(format!(
            "telemetry armed in one artifact only (baseline {}, current {})",
            baseline.environment.telemetry, current.environment.telemetry
        )));
    }

    for base in &baseline.runs {
        let Some(cur) = current.find(&base.dataset, &base.algorithm) else {
            findings.push(Finding::failure(format!(
                "{}/{}: run present in baseline but missing from current artifact",
                base.dataset, base.algorithm
            )));
            continue;
        };
        matched += 1;
        compare_run(base, cur, tolerance, &mut findings);
    }

    for cur in &current.runs {
        if baseline.find(&cur.dataset, &cur.algorithm).is_none() {
            findings.push(Finding::note(format!(
                "{}/{}: new run not present in baseline (refresh the baseline to gate it)",
                cur.dataset, cur.algorithm
            )));
        }
    }

    Comparison {
        tolerance,
        findings,
        matched,
    }
}

/// Gates the serving layer: compares the `serve` sections of two
/// artifacts. Only gates when *both* documents carry a section — a
/// baseline predating the serving layer must not fail every CI run —
/// and a section present on one side only is noted.
///
/// Failures: any protocol/transport errors in the current run, or zero
/// successful requests. Regressions: `p99_us` beyond
/// `(1 + tolerance) ×` baseline. Throughput and `max_sustained_rps`
/// drops are notes (they swing with runner load far more than tail
/// latency does).
#[must_use]
pub fn compare_serve(
    baseline: Option<&ServeSection>,
    current: Option<&ServeSection>,
    tolerance: f64,
) -> Vec<Finding> {
    let mut findings = Vec::new();
    let (base, cur) = match (baseline, current) {
        (Some(base), Some(cur)) => (base, cur),
        (None, None) => return findings,
        (Some(_), None) => {
            findings.push(Finding::failure(
                "serve: baseline has a serve section but the current artifact does not".into(),
            ));
            return findings;
        }
        (None, Some(_)) => {
            findings.push(Finding::note(
                "serve: new serve section not present in baseline (refresh the baseline to gate it)"
                    .into(),
            ));
            return findings;
        }
    };

    if cur.errors > 0 {
        findings.push(Finding::failure(format!(
            "serve: {} protocol/transport error(s) in the current run (baseline {})",
            cur.errors, base.errors
        )));
    }
    if cur.ok == 0 {
        findings.push(Finding::failure(
            "serve: no request succeeded in the current run".into(),
        ));
    }

    let limit = base.p99_us as f64 * (1.0 + tolerance);
    if base.p99_us > 0 && cur.p99_us as f64 > limit {
        findings.push(Finding::regression(format!(
            "serve: p99 {} us exceeds baseline {} us by {:+.1}% (limit {:+.0}%)",
            cur.p99_us,
            base.p99_us,
            (cur.p99_us as f64 / base.p99_us as f64 - 1.0) * 100.0,
            tolerance * 100.0
        )));
    } else if base.p99_us > 0 && (cur.p99_us as f64) < base.p99_us as f64 / (1.0 + tolerance) {
        findings.push(Finding::note(format!(
            "serve: p99 improved {} -> {} us; consider refreshing the baseline",
            base.p99_us, cur.p99_us
        )));
    }

    if base.throughput_rps > 0.0 && cur.throughput_rps < base.throughput_rps / (1.0 + tolerance) {
        findings.push(Finding::note(format!(
            "serve: throughput dropped {:.1} -> {:.1} req/s",
            base.throughput_rps, cur.throughput_rps
        )));
    }
    if base.max_sustained_rps > 0.0
        && cur.max_sustained_rps < base.max_sustained_rps / (1.0 + tolerance)
    {
        findings.push(Finding::note(format!(
            "serve: max sustained rate dropped {:.1} -> {:.1} req/s",
            base.max_sustained_rps, cur.max_sustained_rps
        )));
    }
    findings
}

fn compare_run(base: &BenchRun, cur: &BenchRun, tolerance: f64, findings: &mut Vec<Finding>) {
    let key = format!("{}/{}", base.dataset, base.algorithm);

    // Triangle counts are exact; any drift is a correctness failure.
    if base.triangles != cur.triangles {
        findings.push(Finding::failure(format!(
            "{key}: triangle count changed: baseline {} vs current {} (correctness, not perf)",
            base.triangles, cur.triangles
        )));
    }

    let limit = base.wall_ms * (1.0 + tolerance);
    if cur.wall_ms > limit && base.wall_ms > 0.0 {
        findings.push(Finding::regression(format!(
            "{key}: wall_ms {:.2} exceeds baseline {:.2} by {:+.1}% (limit {:+.0}%)",
            cur.wall_ms,
            base.wall_ms,
            (cur.wall_ms / base.wall_ms - 1.0) * 100.0,
            tolerance * 100.0
        )));
    } else if base.wall_ms > 0.0 && cur.wall_ms < base.wall_ms / (1.0 + tolerance) {
        findings.push(Finding::note(format!(
            "{key}: wall_ms improved {:.2} -> {:.2} ({:+.1}%); consider refreshing the baseline",
            base.wall_ms,
            cur.wall_ms,
            (cur.wall_ms / base.wall_ms - 1.0) * 100.0
        )));
    }

    // Counters are informational: tile visits scale with the thread
    // count, so machines with different parallelism disagree legitimately.
    for (name, base_value) in &base.counters {
        let cur_value = cur.counter(name);
        if *base_value > 0 && cur_value == 0 {
            findings.push(Finding::note(format!(
                "{key}: counter '{name}' dropped to 0 (baseline {base_value}); telemetry off?"
            )));
        } else if *base_value > 0 {
            let ratio = cur_value as f64 / *base_value as f64;
            if !(0.5..=2.0).contains(&ratio) {
                findings.push(Finding::note(format!(
                    "{key}: counter '{name}' drifted {base_value} -> {cur_value} ({ratio:.2}x)"
                )));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::envinfo::EnvInfo;
    use crate::report::{PhaseMillis, SCHEMA_VERSION};

    fn env() -> EnvInfo {
        EnvInfo {
            commit: "test".into(),
            threads: 4,
            cpu: "test".into(),
            os: "linux".into(),
            arch: "x86_64".into(),
            telemetry: true,
        }
    }

    fn run(dataset: &str, algorithm: &str, triangles: u64, wall_ms: f64) -> BenchRun {
        BenchRun {
            dataset: dataset.into(),
            algorithm: algorithm.into(),
            vertices: 100,
            edges: 500,
            triangles,
            wall_ms,
            phases_ms: PhaseMillis::default(),
            counters: vec![("intersections", 1000)],
            edges_per_sec: 500.0 / (wall_ms / 1e3),
            triangles_per_sec: triangles as f64 / (wall_ms / 1e3),
        }
    }

    fn report(runs: Vec<BenchRun>) -> BenchReport {
        BenchReport {
            schema_version: SCHEMA_VERSION,
            suite: "ci".into(),
            environment: env(),
            runs,
        }
    }

    #[test]
    fn identical_artifacts_pass() {
        let a = report(vec![run("d", "Lotus", 42, 10.0)]);
        let cmp = compare(&a, &a.clone(), DEFAULT_TOLERANCE);
        assert!(cmp.passed(), "{cmp}");
        assert_eq!(cmp.matched, 1);
    }

    #[test]
    fn within_tolerance_slowdown_passes() {
        let base = report(vec![run("d", "Lotus", 42, 10.0)]);
        let cur = report(vec![run("d", "Lotus", 42, 12.0)]);
        assert!(compare(&base, &cur, 0.25).passed());
    }

    #[test]
    fn injected_regression_beyond_tolerance_fails() {
        let base = report(vec![run("d", "Lotus", 42, 10.0)]);
        let cur = report(vec![run("d", "Lotus", 42, 14.0)]); // +40% > 25%
        let cmp = compare(&base, &cur, 0.25);
        assert!(!cmp.passed(), "{cmp}");
        assert_eq!(cmp.with_severity(Severity::Regression).len(), 1);
        assert!(cmp.to_string().contains("REGRESSION"), "{cmp}");
    }

    #[test]
    fn tolerance_boundary_is_exclusive() {
        let base = report(vec![run("d", "Lotus", 42, 10.0)]);
        // Exactly at the limit: passes (gate fires strictly beyond it).
        let at = report(vec![run("d", "Lotus", 42, 12.5)]);
        assert!(compare(&base, &at, 0.25).passed());
        let over = report(vec![run("d", "Lotus", 42, 12.6)]);
        assert!(!compare(&base, &over, 0.25).passed());
    }

    #[test]
    fn speedup_is_a_note_not_a_failure() {
        let base = report(vec![run("d", "Lotus", 42, 10.0)]);
        let cur = report(vec![run("d", "Lotus", 42, 2.0)]);
        let cmp = compare(&base, &cur, 0.25);
        assert!(cmp.passed(), "{cmp}");
        assert!(!cmp.with_severity(Severity::Note).is_empty());
    }

    #[test]
    fn triangle_mismatch_is_a_hard_failure_regardless_of_tolerance() {
        let base = report(vec![run("d", "Lotus", 42, 10.0)]);
        let cur = report(vec![run("d", "Lotus", 41, 10.0)]);
        let cmp = compare(&base, &cur, 1000.0);
        assert!(!cmp.passed());
        assert_eq!(cmp.with_severity(Severity::Failure).len(), 1);
        assert!(cmp.to_string().contains("correctness"), "{cmp}");
    }

    #[test]
    fn missing_baseline_run_fails_extra_run_notes() {
        let base = report(vec![run("d", "Lotus", 42, 10.0), run("d", "GAP", 42, 10.0)]);
        let cur = report(vec![run("d", "Lotus", 42, 10.0), run("e", "Lotus", 7, 3.0)]);
        let cmp = compare(&base, &cur, 0.25);
        assert!(!cmp.passed());
        let failures = cmp.with_severity(Severity::Failure);
        assert_eq!(failures.len(), 1);
        assert!(
            failures[0].message.contains("d/GAP"),
            "{}",
            failures[0].message
        );
        assert!(cmp
            .with_severity(Severity::Note)
            .iter()
            .any(|f| f.message.contains("e/Lotus")));
    }

    #[test]
    fn schema_version_mismatch_fails() {
        let base = report(vec![run("d", "Lotus", 42, 10.0)]);
        let mut cur = base.clone();
        cur.schema_version = 2;
        assert!(!compare(&base, &cur, 0.25).passed());
    }

    #[test]
    fn counter_drift_and_env_changes_are_notes() {
        let base = report(vec![run("d", "Lotus", 42, 10.0)]);
        let mut cur = report(vec![run("d", "Lotus", 42, 10.0)]);
        cur.environment.threads = 16;
        cur.environment.telemetry = false;
        cur.runs[0].counters = vec![("intersections", 5000)];
        let cmp = compare(&base, &cur, 0.25);
        assert!(cmp.passed(), "{cmp}");
        let notes = cmp.with_severity(Severity::Note);
        assert!(notes.iter().any(|f| f.message.contains("thread count")));
        assert!(notes.iter().any(|f| f.message.contains("drifted")));
    }

    fn serve(p99_us: u64, errors: u64) -> ServeSection {
        ServeSection {
            suite: "ci".into(),
            graph: "rmat:9:8:7".into(),
            connections: 1024,
            requests: 4096,
            ok: 4096 - errors,
            errors,
            p99_us,
            throughput_rps: 5000.0,
            max_sustained_rps: 6000.0,
            ..ServeSection::default()
        }
    }

    #[test]
    fn serve_gate_passes_identical_and_skips_absent_sections() {
        let base = serve(4000, 0);
        assert!(compare_serve(Some(&base), Some(&base.clone()), 0.25)
            .iter()
            .all(|f| f.severity == Severity::Note));
        assert!(compare_serve(None, None, 0.25).is_empty());
        // New section, no baseline: a note, not a gate.
        let only_new = compare_serve(None, Some(&base), 0.25);
        assert!(only_new.iter().all(|f| f.severity == Severity::Note));
        // Section vanished from the current artifact: hard failure.
        let vanished = compare_serve(Some(&base), None, 0.25);
        assert_eq!(vanished[0].severity, Severity::Failure);
    }

    #[test]
    fn serve_gate_fails_on_errors_and_p99_regressions() {
        let base = serve(4000, 0);
        let errored = serve(4000, 3);
        let findings = compare_serve(Some(&base), Some(&errored), 0.25);
        assert!(findings
            .iter()
            .any(|f| f.severity == Severity::Failure && f.message.contains("error")));

        let slow = serve(9000, 0); // +125% > 25%
        let findings = compare_serve(Some(&base), Some(&slow), 0.25);
        assert!(findings
            .iter()
            .any(|f| f.severity == Severity::Regression && f.message.contains("p99")));

        // Within tolerance: clean.
        let ok = serve(4500, 0);
        assert!(compare_serve(Some(&base), Some(&ok), 0.25)
            .iter()
            .all(|f| f.severity == Severity::Note));
    }

    #[test]
    fn serve_throughput_drops_are_notes() {
        let base = serve(4000, 0);
        let mut slow = serve(4000, 0);
        slow.throughput_rps = 100.0;
        slow.max_sustained_rps = 100.0;
        let findings = compare_serve(Some(&base), Some(&slow), 0.25);
        assert_eq!(findings.len(), 2);
        assert!(findings.iter().all(|f| f.severity == Severity::Note));
    }

    #[test]
    fn round_trip_then_compare_is_stable() {
        // serialize -> parse -> compare: the ISSUE's acceptance loop.
        let base = report(vec![run("d", "Lotus", 42, 10.0)]);
        let parsed = BenchReport::parse(&base.to_pretty_string()).unwrap();
        assert!(compare(&base, &parsed, 0.0).passed());
    }
}
