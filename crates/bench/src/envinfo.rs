//! The `environment` block of `BENCH.json`: enough context to judge
//! whether two benchmark artifacts are comparable (same machine class,
//! same commit, same thread count, counters armed or not).

use lotus_telemetry::json::Json;

/// Environment captured alongside a benchmark run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnvInfo {
    /// Git commit (from `LOTUS_COMMIT`/`GITHUB_SHA`, else `git
    /// rev-parse`, else `unknown`).
    pub commit: String,
    /// Worker threads the parallel runtime will use.
    pub threads: u64,
    /// CPU model string (from `/proc/cpuinfo` where available).
    pub cpu: String,
    /// Operating system (`std::env::consts::OS`).
    pub os: String,
    /// Architecture (`std::env::consts::ARCH`).
    pub arch: String,
    /// Whether this build records work counters (`telemetry` feature).
    pub telemetry: bool,
}

impl EnvInfo {
    /// Captures the current process environment.
    #[must_use]
    pub fn capture() -> EnvInfo {
        EnvInfo {
            commit: detect_commit(),
            threads: rayon::current_num_threads().max(1) as u64,
            cpu: detect_cpu(),
            os: std::env::consts::OS.to_string(),
            arch: std::env::consts::ARCH.to_string(),
            telemetry: lotus_telemetry::enabled(),
        }
    }

    /// Serializes to the schema's `environment` object.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("commit".into(), Json::Str(self.commit.clone())),
            ("threads".into(), Json::Int(self.threads as i64)),
            ("cpu".into(), Json::Str(self.cpu.clone())),
            ("os".into(), Json::Str(self.os.clone())),
            ("arch".into(), Json::Str(self.arch.clone())),
            ("telemetry".into(), Json::Bool(self.telemetry)),
        ])
    }

    /// Parses the schema's `environment` object; missing fields get
    /// neutral defaults so older artifacts stay readable.
    #[must_use]
    pub fn from_json(v: &Json) -> EnvInfo {
        let str_field = |key: &str| {
            v.get(key)
                .and_then(Json::as_str)
                .unwrap_or("unknown")
                .to_string()
        };
        EnvInfo {
            commit: str_field("commit"),
            threads: v.get("threads").and_then(Json::as_u64).unwrap_or(0),
            cpu: str_field("cpu"),
            os: str_field("os"),
            arch: str_field("arch"),
            telemetry: v.get("telemetry").and_then(Json::as_bool).unwrap_or(false),
        }
    }
}

fn detect_commit() -> String {
    for var in ["LOTUS_COMMIT", "GITHUB_SHA"] {
        if let Ok(sha) = std::env::var(var) {
            if !sha.trim().is_empty() {
                return sha.trim().to_string();
            }
        }
    }
    std::process::Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

fn detect_cpu() -> String {
    if let Ok(info) = std::fs::read_to_string("/proc/cpuinfo") {
        for line in info.lines() {
            if let Some(rest) = line.strip_prefix("model name") {
                if let Some((_, model)) = rest.split_once(':') {
                    return model.trim().to_string();
                }
            }
        }
    }
    "unknown".to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capture_fills_every_field() {
        let e = EnvInfo::capture();
        assert!(e.threads >= 1);
        assert!(!e.os.is_empty());
        assert!(!e.arch.is_empty());
        assert!(!e.commit.is_empty());
        assert_eq!(e.telemetry, lotus_telemetry::enabled());
    }

    #[test]
    fn json_round_trip() {
        let e = EnvInfo {
            commit: "deadbeef".into(),
            threads: 8,
            cpu: "Test CPU @ 3.0GHz".into(),
            os: "linux".into(),
            arch: "x86_64".into(),
            telemetry: true,
        };
        assert_eq!(EnvInfo::from_json(&e.to_json()), e);
    }

    #[test]
    fn missing_fields_default() {
        let e = EnvInfo::from_json(&Json::Obj(vec![]));
        assert_eq!(e.commit, "unknown");
        assert_eq!(e.threads, 0);
        assert!(!e.telemetry);
    }
}
