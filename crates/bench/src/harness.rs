//! Shared experiment plumbing: algorithm dispatch, end-to-end timing, and
//! environment-controlled dataset selection.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock, PoisonError};
use std::time::Duration;

use lotus_algos::bbtc::BbtcCounter;
use lotus_algos::edge_iterator::edge_iterator_count_timed;
use lotus_algos::forward::ForwardCounter;
use lotus_algos::gbbs::gbbs_count_timed;
use lotus_algos::intersect::IntersectKind;
use lotus_core::count::LotusCounter;
use lotus_core::LotusConfig;
use lotus_gen::{Dataset, DatasetScale};
use lotus_graph::UndirectedCsr;

/// The five comparators of Table 5 (paper §5.1.4) plus LOTUS.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algorithm {
    /// Block-based TC (BBTC analog).
    Bbtc,
    /// Edge iterator (GraphGrind analog).
    GraphGrind,
    /// Forward with merge join (GAP analog).
    Gap,
    /// Forward with nested parallel intersection (GBBS analog).
    Gbbs,
    /// LOTUS.
    Lotus,
}

impl Algorithm {
    /// All algorithms in the paper's column order.
    pub const ALL: [Algorithm; 5] = [
        Algorithm::Bbtc,
        Algorithm::GraphGrind,
        Algorithm::Gap,
        Algorithm::Gbbs,
        Algorithm::Lotus,
    ];

    /// Table column label.
    pub fn name(&self) -> &'static str {
        match self {
            Algorithm::Bbtc => "BBTC",
            Algorithm::GraphGrind => "GGrnd",
            Algorithm::Gap => "GAP",
            Algorithm::Gbbs => "GBBS",
            Algorithm::Lotus => "Lotus",
        }
    }
}

/// One end-to-end run: triangle count and wall time including
/// preprocessing (as the paper reports, §5.1.4).
#[derive(Debug, Clone, Copy)]
pub struct RunOutcome {
    /// Total triangles found.
    pub triangles: u64,
    /// End-to-end wall time.
    pub elapsed: Duration,
}

/// Runs one algorithm end-to-end on a graph.
pub fn run_algorithm(alg: Algorithm, graph: &UndirectedCsr) -> RunOutcome {
    match alg {
        Algorithm::Bbtc => {
            let r = BbtcCounter::default().count(graph);
            RunOutcome {
                triangles: r.triangles,
                elapsed: r.total_time(),
            }
        }
        Algorithm::GraphGrind => {
            let r = edge_iterator_count_timed(graph, IntersectKind::Merge);
            RunOutcome {
                triangles: r.triangles,
                elapsed: r.total_time(),
            }
        }
        Algorithm::Gap => {
            let r = ForwardCounter::new().count(graph);
            RunOutcome {
                triangles: r.triangles,
                elapsed: r.total_time(),
            }
        }
        Algorithm::Gbbs => {
            let r = gbbs_count_timed(graph);
            RunOutcome {
                triangles: r.triangles,
                elapsed: r.total_time(),
            }
        }
        Algorithm::Lotus => {
            let r = LotusCounter::new(LotusConfig::default()).count(graph);
            RunOutcome {
                triangles: r.total(),
                elapsed: r.breakdown.total(),
            }
        }
    }
}

/// Process-wide cache of generated suite graphs: several reports walk the
/// same datasets, and generation (not counting) would otherwise dominate
/// `run_all`'s wall time.
pub fn cached_graph(d: &Dataset) -> Arc<UndirectedCsr> {
    type Key = (String, u32, u64);
    type Cache = Mutex<HashMap<Key, Arc<UndirectedCsr>>>;
    static CACHE: OnceLock<Cache> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    let key = (d.name.to_string(), d.scale, d.seed);
    if let Some(g) = cache
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .get(&key)
    {
        return Arc::clone(g);
    }
    let g = Arc::new(d.generate());
    cache
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .insert(key, Arc::clone(&g));
    g
}

/// Dataset scale from `LOTUS_SCALE` (`tiny` | `small` | `full`).
pub fn scale_from_env() -> DatasetScale {
    match std::env::var("LOTUS_SCALE").as_deref() {
        Ok("tiny") => DatasetScale::Tiny,
        Ok("full") => DatasetScale::Full,
        _ => DatasetScale::Small,
    }
}

/// Applies the `LOTUS_DATASETS` comma-separated name filter.
pub fn filter_datasets(mut datasets: Vec<Dataset>) -> Vec<Dataset> {
    if let Ok(filter) = std::env::var("LOTUS_DATASETS") {
        let names: Vec<&str> = filter.split(',').map(str::trim).collect();
        datasets.retain(|d| names.contains(&d.name));
    }
    datasets
}

/// The Table 5 datasets at the requested scale, filtered by env.
pub fn small_suite(scale: DatasetScale) -> Vec<Dataset> {
    filter_datasets(
        Dataset::small_suite()
            .into_iter()
            .map(|d| d.at_scale(scale))
            .collect(),
    )
}

/// The Table 6 datasets at the requested scale, filtered by env.
pub fn large_suite(scale: DatasetScale) -> Vec<Dataset> {
    filter_datasets(
        Dataset::large_suite()
            .into_iter()
            .map(|d| d.at_scale(scale))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use lotus_gen::Rmat;

    #[test]
    fn all_algorithms_agree_end_to_end() {
        let g = Rmat::new(9, 8).generate(77);
        let outcomes: Vec<RunOutcome> = Algorithm::ALL
            .iter()
            .map(|&a| run_algorithm(a, &g))
            .collect();
        for w in outcomes.windows(2) {
            assert_eq!(w[0].triangles, w[1].triangles);
        }
        assert!(outcomes.iter().all(|o| o.elapsed > Duration::ZERO));
    }

    #[test]
    fn names_are_unique() {
        let names: std::collections::HashSet<_> =
            Algorithm::ALL.iter().map(super::Algorithm::name).collect();
        assert_eq!(names.len(), 5);
    }

    #[test]
    fn suites_respect_scale() {
        let tiny = small_suite(DatasetScale::Tiny);
        assert!(!tiny.is_empty());
        assert!(tiny.iter().all(|d| d.scale <= 13));
    }
}
