//! Benchmark harness regenerating every table and figure of the LOTUS
//! paper's evaluation (§5).
//!
//! Each experiment is a pure function in [`reports`] returning the
//! formatted table; the `src/bin/*` binaries are thin wrappers so
//! `cargo run -p lotus-bench --release --bin table5_endtoend` prints the
//! same rows the paper reports. Criterion micro-benchmarks live under
//! `benches/`.
//!
//! Dataset sizing is controlled by the `LOTUS_SCALE` environment variable
//! (`tiny` | `small` | `full`, default `small`); `LOTUS_DATASETS` filters
//! rows by comma-separated dataset names.
//!
//! The machine-readable side — `lotus bench --suite <name> --json` — is
//! built from [`suite`] (named dataset × algorithm matrices), [`report`]
//! (the versioned `BENCH.json` artifact), [`envinfo`] (its environment
//! block), and [`compare`] (the perf-regression gate).

pub mod cluster_section;
pub mod compare;
pub mod envinfo;
pub mod harness;
pub mod report;
pub mod reports;
pub mod serve_section;
pub mod suite;
pub mod table;

pub use cluster_section::ClusterSection;
pub use compare::{Comparison, DEFAULT_TOLERANCE};
pub use envinfo::EnvInfo;
pub use harness::{run_algorithm, Algorithm};
pub use report::{BenchReport, BenchRun};
pub use serve_section::ServeSection;
pub use suite::BenchSuite;
pub use table::Table;
