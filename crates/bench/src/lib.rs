//! Benchmark harness regenerating every table and figure of the LOTUS
//! paper's evaluation (§5).
//!
//! Each experiment is a pure function in [`reports`] returning the
//! formatted table; the `src/bin/*` binaries are thin wrappers so
//! `cargo run -p lotus-bench --release --bin table5_endtoend` prints the
//! same rows the paper reports. Criterion micro-benchmarks live under
//! `benches/`.
//!
//! Dataset sizing is controlled by the `LOTUS_SCALE` environment variable
//! (`tiny` | `small` | `full`, default `small`); `LOTUS_DATASETS` filters
//! rows by comma-separated dataset names.

pub mod harness;
pub mod reports;
pub mod table;

pub use harness::{run_algorithm, Algorithm};
pub use table::Table;
