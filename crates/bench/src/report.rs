//! The machine-readable benchmark artifact (`BENCH.json`, schema v1).
//!
//! A [`BenchReport`] is the versioned, schema-stable record of one suite
//! run: per-run wall times, the per-phase breakdown, telemetry counter
//! totals, and GraphChallenge-style rate metrics (edges/s, triangles/s)
//! that make triangle-counting runs comparable over time, plus an
//! environment block. Serialization is dependency-free via
//! [`lotus_telemetry::json`]; parsing tolerates unknown fields so the
//! schema can grow without breaking old readers.
//!
//! Schema v1 layout:
//!
//! ```json
//! {
//!   "schema_version": 1,
//!   "suite": "ci",
//!   "environment": {"commit", "threads", "cpu", "os", "arch", "telemetry"},
//!   "runs": [{
//!     "dataset", "algorithm", "vertices", "edges", "triangles",
//!     "wall_ms",
//!     "phases_ms": {"preprocess", "hhh_hhn", "hnn", "nnn"},
//!     "counters": {"<counter name>": total, ...},
//!     "edges_per_sec", "triangles_per_sec"
//!   }, ...]
//! }
//! ```

use std::time::Instant;

use lotus_core::count::LotusCounter;
use lotus_core::LotusConfig;
use lotus_telemetry::json::{Json, JsonError};
use lotus_telemetry::Counter;

use crate::envinfo::EnvInfo;
use crate::harness::{run_algorithm, Algorithm};
use crate::suite::BenchSuite;

/// The current schema version emitted by [`BenchReport::to_json`].
pub const SCHEMA_VERSION: i64 = 1;

/// Per-phase wall times of one run, in milliseconds. Zero for
/// algorithms that do not have the LOTUS phase structure.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PhaseMillis {
    /// Algorithm 2 preprocessing.
    pub preprocess: f64,
    /// Phase 1 (HHH + HHN).
    pub hhh_hhn: f64,
    /// Phase 2 (HNN).
    pub hnn: f64,
    /// Phase 3 (NNN).
    pub nnn: f64,
}

impl PhaseMillis {
    fn to_json(self) -> Json {
        Json::Obj(vec![
            ("preprocess".into(), Json::Float(self.preprocess)),
            ("hhh_hhn".into(), Json::Float(self.hhh_hhn)),
            ("hnn".into(), Json::Float(self.hnn)),
            ("nnn".into(), Json::Float(self.nnn)),
        ])
    }

    fn from_json(v: &Json) -> PhaseMillis {
        let field = |key: &str| v.get(key).and_then(Json::as_f64).unwrap_or(0.0);
        PhaseMillis {
            preprocess: field("preprocess"),
            hhh_hhn: field("hhh_hhn"),
            hnn: field("hnn"),
            nnn: field("nnn"),
        }
    }
}

/// One cell of the dataset × algorithm matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRun {
    /// Suite dataset name.
    pub dataset: String,
    /// Algorithm name (see [`Algorithm::name`]).
    pub algorithm: String,
    /// Graph vertices.
    pub vertices: u64,
    /// Graph undirected edges.
    pub edges: u64,
    /// Triangles found (the correctness cross-check between artifacts).
    pub triangles: u64,
    /// End-to-end wall time (including preprocessing), milliseconds.
    pub wall_ms: f64,
    /// Per-phase breakdown (paper Fig. 6); zero for non-LOTUS runs.
    pub phases_ms: PhaseMillis,
    /// Telemetry counter totals for this run, in
    /// [`Counter::ALL`] order. All zero in a `telemetry`-off build.
    pub counters: Vec<(&'static str, u64)>,
    /// GraphChallenge-style rate: `edges / wall seconds`.
    pub edges_per_sec: f64,
    /// Rate: `triangles / wall seconds`.
    pub triangles_per_sec: f64,
}

impl BenchRun {
    /// The `(dataset, algorithm)` key runs are matched by in compare.
    #[must_use]
    pub fn key(&self) -> (String, String) {
        (self.dataset.clone(), self.algorithm.clone())
    }

    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("dataset".into(), Json::Str(self.dataset.clone())),
            ("algorithm".into(), Json::Str(self.algorithm.clone())),
            ("vertices".into(), Json::Int(self.vertices as i64)),
            ("edges".into(), Json::Int(self.edges as i64)),
            ("triangles".into(), Json::Int(self.triangles as i64)),
            ("wall_ms".into(), Json::Float(self.wall_ms)),
            ("phases_ms".into(), self.phases_ms.to_json()),
            (
                "counters".into(),
                Json::Obj(
                    self.counters
                        .iter()
                        .map(|(name, value)| ((*name).to_string(), Json::Int(*value as i64)))
                        .collect(),
                ),
            ),
            ("edges_per_sec".into(), Json::Float(self.edges_per_sec)),
            (
                "triangles_per_sec".into(),
                Json::Float(self.triangles_per_sec),
            ),
        ])
    }

    fn from_json(v: &Json) -> Result<BenchRun, String> {
        let str_field = |key: &str| {
            v.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("run is missing string field '{key}'"))
        };
        let int_field = |key: &str| {
            v.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("run is missing integer field '{key}'"))
        };
        let float_field = |key: &str| {
            v.get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("run is missing number field '{key}'"))
        };
        let counters = match v.get("counters") {
            Some(Json::Obj(members)) => members
                .iter()
                .filter_map(|(name, value)| {
                    // Unknown counter names are skipped so old readers
                    // survive schema growth.
                    let c = Counter::from_name(name)?;
                    Some((c.name(), value.as_u64().unwrap_or(0)))
                })
                .collect(),
            _ => Vec::new(),
        };
        Ok(BenchRun {
            dataset: str_field("dataset")?,
            algorithm: str_field("algorithm")?,
            vertices: int_field("vertices")?,
            edges: int_field("edges")?,
            triangles: int_field("triangles")?,
            wall_ms: float_field("wall_ms")?,
            phases_ms: v
                .get("phases_ms")
                .map(PhaseMillis::from_json)
                .unwrap_or_default(),
            counters,
            edges_per_sec: float_field("edges_per_sec")?,
            triangles_per_sec: float_field("triangles_per_sec")?,
        })
    }

    /// The counter total recorded under `name`, zero when absent.
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| *n == name)
            .map_or(0, |(_, v)| *v)
    }
}

/// One execution of a matrix cell: `(triangles, wall_ms, phases_ms)`.
/// LOTUS runs directly (not via [`run_algorithm`]) so the per-phase
/// breakdown lands in the artifact; baselines report zero phases.
fn run_cell(algorithm: Algorithm, graph: &lotus_graph::UndirectedCsr) -> (u64, f64, PhaseMillis) {
    match algorithm {
        Algorithm::Lotus => {
            let start = Instant::now();
            let r = LotusCounter::new(LotusConfig::auto(graph)).count(graph);
            let wall = start.elapsed().as_secs_f64() * 1e3;
            let b = &r.breakdown;
            (
                r.total(),
                wall,
                PhaseMillis {
                    preprocess: b.preprocess.as_secs_f64() * 1e3,
                    hhh_hhn: b.hhh_hhn.as_secs_f64() * 1e3,
                    hnn: b.hnn.as_secs_f64() * 1e3,
                    nnn: b.nnn.as_secs_f64() * 1e3,
                },
            )
        }
        other => {
            let outcome = run_algorithm(other, graph);
            (
                outcome.triangles,
                outcome.elapsed.as_secs_f64() * 1e3,
                PhaseMillis::default(),
            )
        }
    }
}

/// A complete benchmark artifact.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Schema version of the artifact (see [`SCHEMA_VERSION`]).
    pub schema_version: i64,
    /// Suite name that produced it.
    pub suite: String,
    /// Environment block.
    pub environment: EnvInfo,
    /// All runs, in suite order.
    pub runs: Vec<BenchRun>,
}

impl BenchReport {
    /// Runs every cell of the suite's matrix and collects the artifact.
    /// Each cell executes [`BenchSuite::reps`] times and the fastest
    /// repetition is reported (minimum wall time is far more
    /// noise-robust than any single run, keeping the CI gate's
    /// tolerance meaningful). Telemetry (when compiled in) is reset
    /// around each repetition so counter totals are per-run; the work
    /// is deterministic per cell, so the last repetition's counters
    /// stand for all of them. Graphs are generated once per dataset.
    #[must_use]
    pub fn run_suite(suite: &BenchSuite) -> BenchReport {
        let mut runs = Vec::with_capacity(suite.len());
        for dataset in &suite.datasets {
            let graph = dataset.generate();
            for &algorithm in &suite.algorithms {
                lotus_telemetry::reset();
                let mut best = run_cell(algorithm, &graph);
                for _ in 1..suite.reps.max(1) {
                    lotus_telemetry::reset();
                    let rep = run_cell(algorithm, &graph);
                    if rep.1 < best.1 {
                        best = rep;
                    }
                }
                let (triangles, wall_ms, phases_ms) = best;
                let counters = lotus_telemetry::counters::snapshot()
                    .iter()
                    .map(|(c, v)| (c.name(), v))
                    .collect();
                let wall_secs = (wall_ms / 1e3).max(1e-9);
                runs.push(BenchRun {
                    dataset: dataset.name.clone(),
                    algorithm: algorithm.name().to_string(),
                    vertices: u64::from(graph.num_vertices()),
                    edges: graph.num_edges(),
                    triangles,
                    wall_ms,
                    phases_ms,
                    counters,
                    edges_per_sec: graph.num_edges() as f64 / wall_secs,
                    triangles_per_sec: triangles as f64 / wall_secs,
                });
            }
        }
        BenchReport {
            schema_version: SCHEMA_VERSION,
            suite: suite.name.clone(),
            environment: EnvInfo::capture(),
            runs,
        }
    }

    /// Serializes to the schema v1 JSON tree.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("schema_version".into(), Json::Int(self.schema_version)),
            ("suite".into(), Json::Str(self.suite.clone())),
            ("environment".into(), self.environment.to_json()),
            (
                "runs".into(),
                Json::Arr(self.runs.iter().map(BenchRun::to_json).collect()),
            ),
        ])
    }

    /// Pretty-printed JSON document (the on-disk `BENCH.json` format).
    #[must_use]
    pub fn to_pretty_string(&self) -> String {
        self.to_json().pretty()
    }

    /// Parses a `BENCH.json` document, validating the schema version
    /// and every run's required fields.
    ///
    /// # Errors
    /// Returns a description of the first schema problem: bad JSON, a
    /// wrong `schema_version`, or a run missing required fields.
    pub fn parse(text: &str) -> Result<BenchReport, String> {
        let v = lotus_telemetry::json::parse(text).map_err(|e: JsonError| e.to_string())?;
        let schema_version = v
            .get("schema_version")
            .and_then(Json::as_u64)
            .ok_or("missing schema_version")? as i64;
        if schema_version != SCHEMA_VERSION {
            return Err(format!(
                "unsupported schema_version {schema_version} (this build reads {SCHEMA_VERSION})"
            ));
        }
        let suite = v
            .get("suite")
            .and_then(Json::as_str)
            .ok_or("missing suite")?
            .to_string();
        let environment = EnvInfo::from_json(v.get("environment").unwrap_or(&Json::Null));
        let runs = v
            .get("runs")
            .and_then(Json::as_array)
            .ok_or("missing runs array")?
            .iter()
            .map(BenchRun::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(BenchReport {
            schema_version,
            suite,
            environment,
            runs,
        })
    }

    /// Finds a run by `(dataset, algorithm)`.
    #[must_use]
    pub fn find(&self, dataset: &str, algorithm: &str) -> Option<&BenchRun> {
        self.runs
            .iter()
            .find(|r| r.dataset == dataset && r.algorithm == algorithm)
    }

    /// One human-oriented summary line per run.
    #[must_use]
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "suite '{}' on {} ({} threads, telemetry {}):",
            self.suite,
            self.environment.cpu,
            self.environment.threads,
            if self.environment.telemetry {
                "on"
            } else {
                "off"
            },
        );
        for r in &self.runs {
            let _ = writeln!(
                out,
                "  {:<14} {:<6} {:>12} triangles  {:>9.2} ms  {:>12.0} edges/s",
                r.dataset, r.algorithm, r.triangles, r.wall_ms, r.edges_per_sec
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::SuiteDataset;
    use lotus_gen::RmatParams;
    use std::sync::{Mutex, MutexGuard, PoisonError};

    /// Suite runs reset and read the process-global telemetry state, so
    /// tests that invoke [`BenchReport::run_suite`] hold this lock.
    fn suite_lock() -> MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn tiny_suite() -> BenchSuite {
        BenchSuite {
            name: "test".into(),
            datasets: vec![SuiteDataset::rmat("r9", 9, 8, RmatParams::GRAPH500, 3)],
            algorithms: vec![Algorithm::Gap, Algorithm::Lotus],
            reps: 2,
        }
    }

    #[test]
    fn run_suite_fills_the_matrix_and_agrees() {
        let _guard = suite_lock();
        let report = BenchReport::run_suite(&tiny_suite());
        assert_eq!(report.schema_version, SCHEMA_VERSION);
        assert_eq!(report.runs.len(), 2);
        let gap = report.find("r9", "GAP").unwrap();
        let lotus = report.find("r9", "Lotus").unwrap();
        assert_eq!(gap.triangles, lotus.triangles);
        assert!(lotus.wall_ms > 0.0);
        assert!(lotus.edges_per_sec > 0.0);
        // The LOTUS run carries a populated breakdown.
        assert!(lotus.phases_ms.preprocess > 0.0);
        // Counter presence matches the build's telemetry mode.
        assert_eq!(
            lotus.counter("intersections") > 0,
            lotus_telemetry::enabled()
        );
    }

    #[test]
    fn json_round_trip_is_lossless_modulo_float_text() {
        let _guard = suite_lock();
        let report = BenchReport::run_suite(&tiny_suite());
        let text = report.to_pretty_string();
        let back = BenchReport::parse(&text).unwrap();
        assert_eq!(back.suite, report.suite);
        assert_eq!(back.environment, report.environment);
        assert_eq!(back.runs.len(), report.runs.len());
        for (a, b) in report.runs.iter().zip(&back.runs) {
            assert_eq!(a.key(), b.key());
            assert_eq!(a.triangles, b.triangles);
            assert_eq!(a.counters, b.counters);
            assert!((a.wall_ms - b.wall_ms).abs() < 1e-9);
            assert!((a.phases_ms.nnn - b.phases_ms.nnn).abs() < 1e-9);
        }
        // A second serialize → parse is exact (canonical text form).
        let again = BenchReport::parse(&back.to_pretty_string()).unwrap();
        assert_eq!(again, back);
    }

    #[test]
    fn parse_rejects_bad_documents() {
        assert!(BenchReport::parse("not json").is_err());
        assert!(BenchReport::parse("{}").is_err());
        let wrong_version = r#"{"schema_version": 99, "suite": "x", "runs": []}"#;
        let err = BenchReport::parse(wrong_version).unwrap_err();
        assert!(err.contains("schema_version 99"), "{err}");
        let missing_field = r#"{"schema_version": 1, "suite": "x",
            "runs": [{"dataset": "d", "algorithm": "a"}]}"#;
        let err = BenchReport::parse(missing_field).unwrap_err();
        assert!(err.contains("missing"), "{err}");
    }

    #[test]
    fn parse_tolerates_unknown_fields_and_counters() {
        let text = r#"{
          "schema_version": 1, "suite": "x", "future_field": [1,2],
          "environment": {"commit": "c", "threads": 4, "cpu": "t",
                          "os": "linux", "arch": "x", "telemetry": false},
          "runs": [{
            "dataset": "d", "algorithm": "Lotus",
            "vertices": 10, "edges": 20, "triangles": 5,
            "wall_ms": 1.5, "extra": true,
            "counters": {"intersections": 7, "counter_from_the_future": 9},
            "edges_per_sec": 100.0, "triangles_per_sec": 10.0
          }]
        }"#;
        let report = BenchReport::parse(text).unwrap();
        let run = &report.runs[0];
        assert_eq!(run.counter("intersections"), 7);
        assert_eq!(run.counter("counter_from_the_future"), 0);
        assert_eq!(run.phases_ms, PhaseMillis::default());
    }

    #[test]
    fn summary_lists_every_run() {
        let _guard = suite_lock();
        let report = BenchReport::run_suite(&tiny_suite());
        let s = report.summary();
        assert!(s.contains("GAP") && s.contains("Lotus"), "{s}");
        assert!(s.contains("edges/s"), "{s}");
    }
}
