//! Ablation studies of LOTUS design choices.
//!
//! * Intersection kernel (§6.3): merge vs binary vs gallop vs hash inside
//!   the Forward baseline.
//! * Phase fusion (§4.5): fused vs split HNN+NNN loops.
//! * Hub count (§4.2 / §5.5): sweep the number of hubs.

use std::time::Instant;

use lotus_algos::forward::ForwardCounter;
use lotus_algos::intersect::IntersectKind;
use lotus_core::config::{HubCount, LotusConfig};
use lotus_core::count::LotusCounter;
use lotus_gen::{Dataset, DatasetScale};

use crate::table::{secs, Table};

/// Representative dataset for the ablations (Twtr is the paper's go-to
/// medium social network).
fn ablation_dataset(scale: DatasetScale) -> Dataset {
    // Falls back to the first suite entry if the catalog is ever renamed,
    // so the report degrades instead of aborting `lotus bench`.
    Dataset::by_name("Twtr")
        .unwrap_or(Dataset::all()[0])
        .at_scale(scale)
}

/// Runs all three ablations and renders one combined report.
pub fn ablation_report(scale: DatasetScale) -> String {
    let d = ablation_dataset(scale);
    let g = d.generate();
    let mut out = String::new();

    // 1. Intersection kernels in the Forward baseline.
    let mut t = Table::new(format!(
        "Ablation A: intersection kernel (Forward, {})",
        d.name
    ))
    .headers(&["Kernel", "CountTime", "Triangles"]);
    for k in IntersectKind::ALL {
        let r = ForwardCounter::new().with_kernel(k).count(&g);
        t.row(vec![
            k.name().into(),
            secs(r.count),
            r.triangles.to_string(),
        ]);
    }
    out.push_str(&t.render());
    out.push('\n');

    // 2. Fused vs split HNN+NNN (the paper argues for split, §4.5).
    let mut t = Table::new(format!(
        "Ablation B: HNN+NNN loop fusion (Lotus, {})",
        d.name
    ))
    .headers(&["Variant", "CountTime", "Triangles"]);
    for (label, fuse) in [("split (paper)", false), ("fused", true)] {
        let cfg = LotusConfig::default().with_fused_phases(fuse);
        let lg = lotus_core::preprocess::build_lotus_graph(&g, &cfg);
        let start = Instant::now();
        let r = LotusCounter::new(cfg).count_prepared(&lg);
        let elapsed = start.elapsed();
        t.row(vec![label.into(), secs(elapsed), r.total().to_string()]);
    }
    out.push_str(&t.render());
    out.push('\n');

    // 3. Hub-count sweep.
    let mut t = Table::new(format!("Ablation C: hub count sweep (Lotus, {})", d.name))
        .headers(&["Hubs", "EndToEnd", "HubTri%", "HE-Edge%"]);
    let n = g.num_vertices();
    for hubs in [n / 256, n / 64, n / 16, n / 4].iter().filter(|&&h| h >= 1) {
        let cfg = LotusConfig::default().with_hub_count(HubCount::Fixed(*hubs));
        let r = LotusCounter::new(cfg).count(&g);
        t.row(vec![
            cfg.resolved_hub_count(n).to_string(),
            secs(r.breakdown.total()),
            crate::table::pct(r.stats.hub_triangle_fraction()),
            crate::table::pct(r.stats.hub_edge_fraction()),
        ]);
    }
    out.push_str(&t.render());
    out.push('\n');

    // 4. The §6.1 algorithm family, end-to-end.
    let mut t = Table::new(format!(
        "Ablation D: TC algorithm family, §6.1 ({})",
        d.name
    ))
    .headers(&["Algorithm", "EndToEnd", "Triangles"]);
    {
        let r = ForwardCounter::new().count(&g);
        t.row(vec![
            "forward".into(),
            secs(r.total_time()),
            r.triangles.to_string(),
        ]);
        let r = lotus_algos::forward_hashed::forward_hashed_count_timed(&g);
        t.row(vec![
            "forward-hashed".into(),
            secs(r.total_time()),
            r.triangles.to_string(),
        ]);
        let r = lotus_algos::edge_iterator_hashed::edge_iterator_hashed_timed(&g);
        t.row(vec![
            "edge-iterator-hashed".into(),
            secs(r.total_time()),
            r.triangles.to_string(),
        ]);
        let r = lotus_algos::node_iterator_core::node_iterator_core_timed(&g);
        t.row(vec![
            format!("node-iterator-core (degeneracy {})", r.degeneracy),
            secs(r.total_time()),
            r.triangles.to_string(),
        ]);
        let r = lotus_algos::new_vertex_listing::new_vertex_listing_timed(&g);
        t.row(vec![
            "new-vertex-listing".into(),
            secs(r.total_time()),
            r.triangles.to_string(),
        ]);
        let start = Instant::now();
        let lotus = LotusCounter::default().count(&g);
        t.row(vec![
            "lotus".into(),
            secs(start.elapsed()),
            lotus.total().to_string(),
        ]);
    }
    out.push_str(&t.render());
    out.push('\n');

    // 5. Approximate TC (DOULION, §6.2): accuracy/speed vs exact.
    let mut t = Table::new(format!("Ablation E: DOULION approximate TC ({})", d.name))
        .headers(&["p", "Time", "Estimate", "Error%"]);
    let exact = LotusCounter::default().count(&g).total() as f64;
    for p in [0.1, 0.25, 0.5, 1.0] {
        let start = Instant::now();
        let est = lotus_algos::doulion::doulion_estimate(&g, p, 42);
        let err = (est.estimate - exact).abs() / exact * 100.0;
        t.row(vec![
            format!("{p:.2}"),
            secs(start.elapsed()),
            format!("{:.0}", est.estimate),
            format!("{err:.1}"),
        ]);
    }
    out.push_str(&t.render());
    out.push('\n');

    // 6. HNN blocking (§7): block size sweep.
    let mut t = Table::new(format!("Ablation F: blocked HNN, §7 ({})", d.name)).headers(&[
        "BlockBits",
        "Time",
        "HNN",
    ]);
    let lg = lotus_core::preprocess::build_lotus_graph(&g, &LotusConfig::default());
    let start = Instant::now();
    let plain = lotus_core::count::count_hnn_phase(&lg);
    t.row(vec![
        "unblocked".into(),
        secs(start.elapsed()),
        plain.to_string(),
    ]);
    for bits in [10u32, 13, 16] {
        let start = Instant::now();
        let hnn = lotus_core::blocking::count_hnn_blocked(&lg, bits);
        assert_eq!(hnn, plain, "blocked HNN must match");
        t.row(vec![
            bits.to_string(),
            secs(start.elapsed()),
            hnn.to_string(),
        ]);
    }
    out.push_str(&t.render());
    out.push('\n');

    // 7. Representation: CSX vs delta-varint vs LOTUS (§3.2).
    let mut t = Table::new(format!(
        "Ablation G: topology representation, §3.2 ({})",
        d.name
    ))
    .headers(&["Representation", "Bytes", "CountTime", "Triangles"]);
    {
        let pre = lotus_algos::preprocess::degree_order_and_orient(&g);
        let start = Instant::now();
        let tri = lotus_algos::forward::count_oriented(
            &pre.forward,
            lotus_algos::intersect::IntersectKind::Merge,
        );
        t.row(vec![
            "CSX 32-bit".into(),
            pre.forward.topology_bytes().to_string(),
            secs(start.elapsed()),
            tri.to_string(),
        ]);

        let vc = lotus_graph::varint::VarintCsr::from_csr(&pre.forward);
        let start = Instant::now();
        let tri_v: u64 = (0..pre.forward.num_vertices())
            .map(|v| {
                let nv = pre.forward.neighbors(v);
                nv.iter()
                    .map(|&u| lotus_graph::varint::count_merge_varint(nv, vc.neighbors(u)))
                    .sum::<u64>()
            })
            .sum();
        assert_eq!(tri_v, tri);
        t.row(vec![
            "delta-varint".into(),
            vc.topology_bytes().to_string(),
            secs(start.elapsed()),
            tri_v.to_string(),
        ]);

        t.row(vec![
            "LOTUS (HE16+NHE32+H2H)".into(),
            lg.topology_bytes().to_string(),
            "-".into(),
            "-".into(),
        ]);
    }
    out.push_str(&t.render());
    out.push('\n');

    // 8. H2H as a hash table vs the bit array (§5.7): instruction count
    //    per probe and memory footprint of the randomly accessed
    //    structure, from the instrumented replays.
    let mut t = Table::new(format!(
        "Ablation H: H2H bit array vs hash table, §5.7 ({})",
        d.name
    ))
    .headers(&["Structure", "RandomBytes", "Instr/Probe", "Found"]);
    {
        use lotus_perfsim::instrumented::{run_lotus, run_phase1_hash};
        use lotus_perfsim::MachineModel;
        let mut m_bits = MachineModel::tiny();
        let bits_out = run_lotus(&lg, &mut m_bits);
        let probes = bits_out.h2h_histogram.total_accesses().max(1);
        let tiles = lotus_core::tiling::make_tiles(&lg.he, u32::MAX, 1);
        let (hhh, hhn) = lotus_core::count::count_hub_phase(&lg, &tiles);

        let mut m_hash = MachineModel::tiny();
        let hash_out = run_phase1_hash(&lg, &mut m_hash);
        assert_eq!(hash_out.triangles, hhh + hhn);

        // The bit-array probe: base+mask ALU, one load, one branch, plus
        // its share of list streaming — measured from the hash replay's
        // instruction delta to keep the comparison apples-to-apples.
        let hash_instr = m_hash.report().instructions as f64 / probes as f64;
        t.row(vec![
            "bit array".into(),
            lg.h2h.size_bytes().to_string(),
            "~6".into(),
            (hhh + hhn).to_string(),
        ]);
        t.row(vec![
            "hash table".into(),
            hash_out.table_bytes.to_string(),
            format!("{hash_instr:.1}"),
            hash_out.triangles.to_string(),
        ]);
    }
    out.push_str(&t.render());
    out.push('\n');

    // 9. Two-level hubs (§7): how many HNN class-merges does splitting
    //    the HE sub-graph prune?
    let mut t = Table::new(format!("Ablation I: two-level hub split, §7 ({})", d.name)).headers(&[
        "SuperHubs",
        "Time",
        "Pruned%",
        "Triangles",
    ]);
    {
        let hubs = LotusConfig::default().resolved_hub_count(g.num_vertices());
        for supers in [hubs / 16, hubs / 4, hubs / 2] {
            let tl = lotus_core::two_level::build_two_level(&g, &LotusConfig::default(), supers);
            let start = Instant::now();
            let (total, stats) = tl.count();
            t.row(vec![
                supers.to_string(),
                secs(start.elapsed()),
                crate::table::pct(stats.pruned_fraction()),
                total.to_string(),
            ]);
        }
    }
    out.push_str(&t.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablation_smoke() {
        let out = ablation_report(DatasetScale::Tiny);
        for section in [
            "Ablation A",
            "Ablation B",
            "Ablation C",
            "Ablation D",
            "Ablation E",
            "Ablation F",
            "Ablation G",
            "Ablation H",
            "Ablation I",
        ] {
            assert!(out.contains(section), "missing {section}");
        }
        assert!(out.contains("merge"));
        assert!(out.contains("node-iterator-core"));
        assert!(out.contains("delta-varint"));
    }
}
