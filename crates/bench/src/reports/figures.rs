//! Generators for the paper's figures (1, 4, 5, 6, 7, 8, 9), rendered as
//! the tables of numbers behind each plot.

use lotus_algos::preprocess::degree_order_and_orient;
use lotus_core::count::LotusCounter;
use lotus_core::preprocess::build_lotus_graph;
use lotus_core::LotusConfig;
use lotus_gen::DatasetScale;
use lotus_perfsim::instrumented::{run_forward, run_lotus};
use lotus_perfsim::MachineModel;

use crate::harness::{run_algorithm, small_suite, Algorithm};
use crate::table::{pct, ratio, secs, Table};

/// Figure 1: average end-to-end TC rate (million edges/second) per
/// algorithm over the small-graph suite.
pub fn fig1_tc_rates(scale: DatasetScale) -> String {
    let mut t = Table::new("Figure 1: Average TC rate, end-to-end (million edges/s)")
        .headers(&["Algorithm", "MEdges/s"]);
    let datasets = small_suite(scale);
    for alg in Algorithm::ALL {
        let mut rate_sum = 0.0;
        for d in &datasets {
            let g = crate::harness::cached_graph(d);
            let o = run_algorithm(alg, &g);
            rate_sum += g.num_edges() as f64 / o.elapsed.as_secs_f64() / 1e6;
        }
        t.row(vec![
            alg.name().into(),
            format!("{:.2}", rate_sum / datasets.len().max(1) as f64),
        ]);
    }
    t.footnote("Rates averaged over the Table 5 dataset suite");
    t.render()
}

/// Machine model proportionate to the dataset scale: the suite graphs are
/// ~10³× smaller than the paper's, so at `Tiny`/`Small` the hierarchy is
/// scaled down too — otherwise every working set fits in a real L3/TLB
/// and the locality contrast the figures measure disappears.
fn sim_machine(scale: DatasetScale) -> MachineModel {
    match scale {
        DatasetScale::Tiny | DatasetScale::Small => MachineModel::tiny(),
        DatasetScale::Full => MachineModel::skylakex(),
    }
}

/// Runs the instrumented Forward and LOTUS kernels on one dataset and
/// returns `(forward report, lotus report)`.
fn simulate_pair(
    d: &lotus_gen::Dataset,
    scale: DatasetScale,
) -> (lotus_perfsim::SimReport, lotus_perfsim::SimReport) {
    let g = crate::harness::cached_graph(d);
    let pre = degree_order_and_orient(&g);
    let mut m_fwd = sim_machine(scale);
    let fwd_triangles = run_forward(&pre.forward, &mut m_fwd);

    let lg = build_lotus_graph(&g, &LotusConfig::default());
    let mut m_lotus = sim_machine(scale);
    let out = run_lotus(&lg, &mut m_lotus);
    assert_eq!(
        fwd_triangles, out.triangles,
        "instrumented kernels disagree"
    );
    (m_fwd.report(), m_lotus.report())
}

/// Figure 4: last-level-cache and DTLB misses, Forward vs LOTUS.
pub fn fig4_locality(scale: DatasetScale) -> String {
    let mut t = Table::new("Figure 4: Simulated LLC and DTLB misses (millions)").headers(&[
        "Dataset",
        "LLC-Fwd",
        "LLC-Lotus",
        "LLC-Ratio",
        "DTLB-Fwd",
        "DTLB-Lotus",
        "DTLB-Ratio",
    ]);
    let m = |x: u64| format!("{:.2}", x as f64 / 1e6);
    let mut llc_sum = 0.0;
    let mut tlb_sum = 0.0;
    let datasets = small_suite(scale);
    for d in &datasets {
        let (fwd, lotus) = simulate_pair(d, scale);
        let llc_ratio = fwd.llc_misses as f64 / lotus.llc_misses.max(1) as f64;
        let tlb_ratio = fwd.dtlb_misses as f64 / lotus.dtlb_misses.max(1) as f64;
        llc_sum += llc_ratio;
        tlb_sum += tlb_ratio;
        t.row(vec![
            d.name.into(),
            m(fwd.llc_misses),
            m(lotus.llc_misses),
            ratio(llc_ratio),
            m(fwd.dtlb_misses),
            m(lotus.dtlb_misses),
            ratio(tlb_ratio),
        ]);
    }
    let n = datasets.len().max(1) as f64;
    t.footnote(format!(
        "Average reduction: LLC {:.1}x, DTLB {:.1}x (paper [SkyLakeX]: 2.1x, 34.6x)",
        llc_sum / n,
        tlb_sum / n
    ));
    t.footnote(
        "Hierarchy scaled with the dataset (tiny model below Full scale); see lotus-perfsim",
    );
    t.render()
}

/// Figure 5: memory accesses, instructions and branch mispredictions,
/// Forward vs LOTUS.
pub fn fig5_hw_events(scale: DatasetScale) -> String {
    let mut t = Table::new("Figure 5: Simulated hardware events, Forward/Lotus ratios").headers(&[
        "Dataset",
        "MemAcc-Ratio",
        "Instr-Ratio",
        "BrMiss-Ratio",
    ]);
    let mut sums = [0.0f64; 3];
    let datasets = small_suite(scale);
    for d in &datasets {
        let (fwd, lotus) = simulate_pair(d, scale);
        let mem = fwd.memory_accesses as f64 / lotus.memory_accesses.max(1) as f64;
        let ins = fwd.instructions as f64 / lotus.instructions.max(1) as f64;
        let br = fwd.branch_mispredictions as f64 / lotus.branch_mispredictions.max(1) as f64;
        sums[0] += mem;
        sums[1] += ins;
        sums[2] += br;
        t.row(vec![d.name.into(), ratio(mem), ratio(ins), ratio(br)]);
    }
    let n = datasets.len().max(1) as f64;
    t.footnote(format!(
        "Average reduction: mem {:.1}x, instr {:.1}x, branch-miss {:.1}x (paper: 1.5x, 1.7x, 2.4x)",
        sums[0] / n,
        sums[1] / n,
        sums[2] / n
    ));
    t.render()
}

/// Figure 6: LOTUS execution-time breakdown.
pub fn fig6_breakdown(scale: DatasetScale) -> String {
    let mut t = Table::new("Figure 6: Lotus execution breakdown (seconds)").headers(&[
        "Dataset", "Preproc", "HHH+HHN", "HNN", "NNN", "Pre%", "NNN%ofTC",
    ]);
    let mut pre_sum = 0.0;
    let mut nnn_sum = 0.0;
    let datasets = small_suite(scale);
    for d in &datasets {
        let g = crate::harness::cached_graph(d);
        let r = LotusCounter::new(LotusConfig::default()).count(&g);
        let b = r.breakdown;
        pre_sum += b.preprocess_fraction();
        nnn_sum += b.nnn_fraction_of_counting();
        t.row(vec![
            d.name.into(),
            secs(b.preprocess),
            secs(b.hhh_hhn),
            secs(b.hnn),
            secs(b.nnn),
            pct(b.preprocess_fraction()),
            pct(b.nnn_fraction_of_counting()),
        ]);
    }
    let n = datasets.len().max(1) as f64;
    t.footnote(format!(
        "Averages: preprocessing {:.1}% of total, NNN {:.1}% of counting (paper: 19.4%, 40.4%)",
        pre_sum / n * 100.0,
        nnn_sum / n * 100.0
    ));
    t.render()
}

/// Figure 7: hub vs non-hub triangle counts.
pub fn fig7_triangle_types(scale: DatasetScale) -> String {
    let mut t = Table::new("Figure 7: Hub and non-hub triangles counted by Lotus")
        .headers(&["Dataset", "HHH", "HHN", "HNN", "NNN", "Hub%"]);
    let mut hub_sum = 0.0;
    let datasets = small_suite(scale);
    for d in &datasets {
        let g = crate::harness::cached_graph(d);
        let r = LotusCounter::new(LotusConfig::default()).count(&g);
        hub_sum += r.stats.hub_triangle_fraction();
        t.row(vec![
            d.name.into(),
            r.stats.hhh.to_string(),
            r.stats.hhn.to_string(),
            r.stats.hnn.to_string(),
            r.stats.nnn.to_string(),
            pct(r.stats.hub_triangle_fraction()),
        ]);
    }
    t.footnote(format!(
        "Average hub-triangle share: {:.1}% (paper: 68.9% with 64K hubs)",
        hub_sum / datasets.len().max(1) as f64 * 100.0
    ));
    t.render()
}

/// Figure 8: percentage of edges in the HE and NHE sub-graphs.
pub fn fig8_edge_split(scale: DatasetScale) -> String {
    let mut t = Table::new("Figure 8: Edges in HE and NHE sub-graphs").headers(&[
        "Dataset",
        "HE-Edges",
        "NHE-Edges",
        "HE%",
    ]);
    let mut he_sum = 0.0;
    let datasets = small_suite(scale);
    for d in &datasets {
        let g = crate::harness::cached_graph(d);
        let lg = build_lotus_graph(&g, &LotusConfig::default());
        he_sum += lg.hub_edge_fraction();
        t.row(vec![
            d.name.into(),
            lg.he_edges().to_string(),
            lg.nhe_edges().to_string(),
            pct(lg.hub_edge_fraction()),
        ]);
    }
    t.footnote(format!(
        "Average HE share: {:.1}% (paper: 50.1% with 64K hubs)",
        he_sum / datasets.len().max(1) as f64 * 100.0
    ));
    t.render()
}

/// Figure 9: cumulative accesses to the most frequently accessed H2H
/// cachelines.
pub fn fig9_h2h_locality(scale: DatasetScale) -> String {
    let mut t = Table::new(
        "Figure 9: H2H cacheline access concentration (lines needed for X% of accesses)",
    )
    .headers(&[
        "Dataset",
        "TotalLines",
        "50%",
        "75%",
        "90%",
        "99%",
        "90%Share",
    ]);
    for d in &small_suite(scale) {
        let g = crate::harness::cached_graph(d);
        // Paper hub count: Figure 9 studies the H2H array of §4.2's fixed
        // configuration, where weak hubs leave most rows cold.
        let lg = build_lotus_graph(&g, &LotusConfig::paper());
        let mut m = sim_machine(scale);
        let out = run_lotus(&lg, &mut m);
        let h = out.h2h_histogram;
        let lines_90 = h.lines_for_fraction(0.90);
        t.row(vec![
            d.name.into(),
            h.lines().to_string(),
            h.lines_for_fraction(0.50).to_string(),
            h.lines_for_fraction(0.75).to_string(),
            lines_90.to_string(),
            h.lines_for_fraction(0.99).to_string(),
            pct(lines_90 as f64 / h.lines().max(1) as f64),
        ]);
    }
    t.footnote("Paper: 1M cachelines (64MB, 25% of H2H) satisfy >90% of accesses");
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig7_and_fig8_smoke() {
        let f7 = fig7_triangle_types(DatasetScale::Tiny);
        assert!(f7.contains("Hub%"));
        let f8 = fig8_edge_split(DatasetScale::Tiny);
        assert!(f8.contains("HE%"));
    }
}
