//! Report generators — one function per paper table/figure.
//!
//! Every function returns the rendered table so binaries stay one-liners
//! and tests can smoke-run the experiments at `Tiny` scale.

pub mod ablation;
pub mod figures;
pub mod tables;

pub use ablation::ablation_report;
pub use figures::{
    fig1_tc_rates, fig4_locality, fig5_hw_events, fig6_breakdown, fig7_triangle_types,
    fig8_edge_split, fig9_h2h_locality,
};
pub use tables::{
    table1_hub_stats, table4_datasets, table5_endtoend, table6_large, table7_topology_size,
    table8_h2h, table9_tiling,
};
