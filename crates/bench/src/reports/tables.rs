//! Generators for the paper's tables (1, 4, 5, 6, 7, 8, 9).

use lotus_analysis::h2h_stats::h2h_stats;
use lotus_analysis::hub_stats::hub_stats;
use lotus_analysis::load_balance::{edge_balanced_idle, squared_tiling_idle};
use lotus_analysis::topology_size::topology_sizes;
use lotus_core::preprocess::build_lotus_graph;
use lotus_core::LotusConfig;
use lotus_gen::{Dataset, DatasetScale};
use lotus_graph::DegreeStats;

use crate::harness::{large_suite, run_algorithm, small_suite, Algorithm};
use crate::table::{pct, ratio, secs, Table};

/// Table 1: topological characteristics of hubs (1% of vertices with
/// maximum degrees selected as hubs).
pub fn table1_hub_stats(scale: DatasetScale) -> String {
    let mut t = Table::new("Table 1: Topological characteristics of hubs (1% hubs)").headers(&[
        "Dataset",
        "HubToHub%",
        "HubToNon%",
        "HubTotal%",
        "NonHub%",
        "HubTri%",
        "RelDensity",
        "Fruitless%",
    ]);
    let mut sums = [0.0f64; 7];
    let datasets = small_suite(scale);
    for d in &datasets {
        let g = crate::harness::cached_graph(d);
        let s = hub_stats(&g, 0.01);
        let cells = [
            s.hub_to_hub,
            s.hub_to_nonhub,
            s.hub_edges_total(),
            s.nonhub,
            s.hub_triangles,
            s.relative_density,
            s.fruitless,
        ];
        for (acc, v) in sums.iter_mut().zip(cells) {
            *acc += v;
        }
        t.row(vec![
            d.name.into(),
            pct(s.hub_to_hub),
            pct(s.hub_to_nonhub),
            pct(s.hub_edges_total()),
            pct(s.nonhub),
            pct(s.hub_triangles),
            format!("{:.0}", s.relative_density),
            pct(s.fruitless),
        ]);
    }
    let n = datasets.len().max(1) as f64;
    t.row(vec![
        "Average".into(),
        pct(sums[0] / n),
        pct(sums[1] / n),
        pct(sums[2] / n),
        pct(sums[3] / n),
        pct(sums[4] / n),
        format!("{:.0}", sums[5] / n),
        pct(sums[6] / n),
    ]);
    t.footnote("Paper averages: 18.1 / 54.8 / 72.9 / 27.1 / 93.4 / 1809 / 53.3");
    t.render()
}

/// Table 4: the dataset inventory.
pub fn table4_datasets(scale: DatasetScale) -> String {
    let mut t = Table::new("Table 4: Datasets (synthetic stand-ins, scaled)").headers(&[
        "Dataset",
        "Type",
        "|V|",
        "|E|",
        "MaxDeg",
        "Skew",
        "Triangles",
    ]);
    let mut all = small_suite(scale);
    all.extend(large_suite(scale));
    for d in &all {
        let g = crate::harness::cached_graph(d);
        let s = DegreeStats::of(&g);
        let triangles = lotus_core::count::lotus_count(&g);
        t.row(vec![
            d.name.into(),
            d.kind.tag().into(),
            s.num_vertices.to_string(),
            s.num_edges.to_string(),
            s.max_degree.to_string(),
            format!("{:.1}", s.mean_degree / s.median_degree.max(1) as f64),
            triangles.to_string(),
        ]);
    }
    t.render()
}

fn endtoend_table(title: &str, datasets: &[Dataset], algorithms: &[Algorithm]) -> String {
    let mut headers: Vec<&str> = vec!["Dataset"];
    headers.extend(
        algorithms
            .iter()
            .map(super::super::harness::Algorithm::name),
    );
    let mut t = Table::new(title).headers(&headers);

    let mut speedup_sums = vec![0.0f64; algorithms.len()];
    let mut rows = 0usize;
    for d in datasets {
        let g = crate::harness::cached_graph(d);
        let outcomes: Vec<_> = algorithms.iter().map(|&a| run_algorithm(a, &g)).collect();
        // Cross-check: every algorithm must report the same count.
        for w in outcomes.windows(2) {
            assert_eq!(
                w[0].triangles, w[1].triangles,
                "algorithms disagree on {}",
                d.name
            );
        }
        let lotus_idx = algorithms.iter().position(|&a| a == Algorithm::Lotus);
        let lotus_time = lotus_idx.map(|i| outcomes[i].elapsed.as_secs_f64());
        let mut cells = vec![d.name.to_string()];
        for (i, o) in outcomes.iter().enumerate() {
            cells.push(secs(o.elapsed));
            if let Some(lt) = lotus_time {
                if lt > 0.0 {
                    speedup_sums[i] += o.elapsed.as_secs_f64() / lt;
                }
            }
        }
        t.row(cells);
        rows += 1;
    }
    if rows > 0 {
        let mut cells = vec!["LotusSpdup".to_string()];
        for s in &speedup_sums {
            cells.push(ratio(s / rows as f64));
        }
        t.row(cells);
    }
    t.footnote("End-to-end seconds including preprocessing (single run per cell)");
    t.render()
}

/// Table 5: end-to-end TC execution times, small-graph suite.
pub fn table5_endtoend(scale: DatasetScale) -> String {
    endtoend_table(
        "Table 5: End-to-end TC execution times (seconds)",
        &small_suite(scale),
        &Algorithm::ALL,
    )
}

/// Table 6: end-to-end times on the large suite, GBBS vs LOTUS.
pub fn table6_large(scale: DatasetScale) -> String {
    endtoend_table(
        "Table 6: End-to-end TC execution times, large graphs (seconds)",
        &large_suite(scale),
        &[Algorithm::Gbbs, Algorithm::Lotus],
    )
}

/// Table 7: size of topology data.
pub fn table7_topology_size(scale: DatasetScale) -> String {
    let mut t = Table::new("Table 7: Size of topology data (MB)")
        .headers(&["Dataset", "CSXEdges", "CSX", "Lotus", "Growth%"]);
    let mut growth_sum = 0.0;
    let datasets = small_suite(scale);
    let mb = |b: u64| format!("{:.2}", b as f64 / (1024.0 * 1024.0));
    for d in &datasets {
        let g = crate::harness::cached_graph(d);
        let lg = build_lotus_graph(&g, &LotusConfig::default());
        let s = topology_sizes(&g, &lg);
        growth_sum += s.growth_percent();
        t.row(vec![
            d.name.into(),
            mb(s.csx_edges),
            mb(s.csx),
            mb(s.lotus),
            format!("{:+.1}", s.growth_percent()),
        ]);
    }
    t.footnote(format!(
        "Average growth: {:+.1}% (paper: -4.1% with 64K hubs on billion-edge graphs)",
        growth_sum / datasets.len().max(1) as f64
    ));
    t.render()
}

/// Table 8: H2H bit array characteristics.
///
/// Uses the paper's hub count (`min(2¹⁶, |V|)`) rather than `Auto`: the
/// table studies the structure of H2H under the paper's configuration,
/// where the weakest hubs are barely connected and leave cachelines empty.
pub fn table8_h2h(scale: DatasetScale) -> String {
    let mut t = Table::new("Table 8: Lotus H2H bit array characteristics (paper hub count)")
        .headers(&[
            "Dataset",
            "Density%",
            "ZeroCachelines%",
            "H2H-KB",
            "HubHubEdges",
        ]);
    for d in &small_suite(scale) {
        let g = crate::harness::cached_graph(d);
        let lg = build_lotus_graph(&g, &LotusConfig::paper());
        let s = h2h_stats(&lg);
        t.row(vec![
            d.name.into(),
            format!("{:.2}", s.density * 100.0),
            format!("{:.2}", s.zero_cachelines * 100.0),
            format!("{:.0}", s.bytes as f64 / 1024.0),
            s.edges.to_string(),
        ]);
    }
    t.render()
}

/// Table 9: average idle time, edge-balanced vs squared edge tiling.
///
/// Runs at the paper's hub count and sweeps the modelled thread count.
/// On the paper's billion-edge graphs a single hub holds 10–50% of all
/// phase-1 pair work, so 32 threads already starve under edge-balanced
/// partitioning; on the ~10³×-scaled suite the top hub's share is ~10³×
/// smaller, so the same starvation appears at proportionally higher
/// thread counts (and the tiling threshold scales 512 → 64 with it).
/// `workers` sets the middle column of the sweep.
pub fn table9_tiling(scale: DatasetScale, workers: usize) -> String {
    let sweep = [workers, workers * 64, workers * 256];
    let threshold = 64;
    let mut t = Table::new(
        "Table 9: Average idle time % of phase-1 work (EB = edge balanced, SET = squared edge tiling)",
    )
    .headers(&[
        "Dataset",
        &format!("EB@{}", sweep[0]),
        &format!("SET@{}", sweep[0]),
        &format!("EB@{}", sweep[1]),
        &format!("SET@{}", sweep[1]),
        &format!("EB@{}", sweep[2]),
        &format!("SET@{}", sweep[2]),
    ]);
    // The paper's Table 9 rows.
    let names = ["Twtr10", "TwtrMpi", "SK", "WbCc", "UKDls"];
    for d in small_suite(scale)
        .iter()
        .filter(|d| names.contains(&d.name))
    {
        let g = crate::harness::cached_graph(d);
        let lg = build_lotus_graph(&g, &LotusConfig::paper());
        let mut cells = vec![d.name.to_string()];
        for w in sweep {
            let eb = edge_balanced_idle(&lg, w);
            let set = squared_tiling_idle(&lg, w, threshold);
            cells.push(pct(eb.average_idle));
            cells.push(pct(set.average_idle));
        }
        t.row(cells);
    }
    t.footnote("Idle modelled by list-scheduling exact pair-work per task (see DESIGN.md)");
    t.footnote(format!(
        "Paper hub count, tiling threshold {threshold} (scaled from 512 with the datasets)"
    ));
    t.footnote("Paper [SkyLakeX, 32 threads]: edge-balanced 13.6-83.3%, squared tiling 0.7-3.3%");
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table9_smoke() {
        let out = table9_tiling(DatasetScale::Tiny, 8);
        assert!(out.contains("Twtr10"));
        assert!(out.contains("EB@8"));
        assert!(out.contains("SET@2048"));
    }

    #[test]
    fn table7_smoke() {
        let out = table7_topology_size(DatasetScale::Tiny);
        assert!(out.contains("LJGrp"));
        assert!(out.contains("Growth%"));
        assert!(out.contains("Average growth"));
    }
}
