//! The `serve` section of the benchmark artifact: request-latency
//! percentiles and throughput from a `lotus loadgen` run.
//!
//! The section lives under the top-level `"serve"` key of a
//! `BENCH.json` document. [`crate::BenchReport::parse`] tolerates
//! unknown fields (schema v1 contract), so a document carrying this
//! section alongside the counting runs stays readable by every
//! artifact consumer; readers that care call [`ServeSection::from_json`]
//! on the raw document.
//!
//! ```json
//! "serve": {
//!   "suite": "ci", "graph": "rmat:9:8:7",
//!   "connections": 4, "requests": 200,
//!   "ok": 198, "overloaded": 2, "deadline_expired": 0, "errors": 0,
//!   "p50_us": 850, "p90_us": 2100, "p99_us": 4800,
//!   "throughput_rps": 1234.5, "wall_ms": 162,
//!   "retries": 3, "snapshot_writes": 1, "journal_appends": 2,
//!   "journal_replays": 4, "quarantined": 0, "recovery_ms": 9
//! }
//! ```

use lotus_telemetry::json::Json;

/// Aggregated serving-layer measurements (see module docs for the JSON
/// layout).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ServeSection {
    /// Loadgen suite name (`ci`, `custom`, ...).
    pub suite: String,
    /// Graph spec the daemon served.
    pub graph: String,
    /// Concurrent connections driven.
    pub connections: u64,
    /// Requests issued in total.
    pub requests: u64,
    /// Successful responses.
    pub ok: u64,
    /// `Overloaded` rejections (admission control).
    pub overloaded: u64,
    /// `DeadlineExpired` responses.
    pub deadline_expired: u64,
    /// Any other error response.
    pub errors: u64,
    /// Median request latency, microseconds.
    pub p50_us: u64,
    /// 90th-percentile latency, microseconds.
    pub p90_us: u64,
    /// 99th-percentile latency, microseconds.
    pub p99_us: u64,
    /// Requests per second over the run.
    pub throughput_rps: f64,
    /// Wall time of the whole run, milliseconds.
    pub wall_ms: u64,
    /// Retried attempts (overload backoff / reconnects), counted
    /// separately from `requests` so percentiles stay honest.
    pub retries: u64,
    /// Daemon-side snapshots durably written (0 without a data dir).
    pub snapshot_writes: u64,
    /// Daemon-side journal records appended and synced.
    pub journal_appends: u64,
    /// Journal records the daemon replayed at startup.
    pub journal_replays: u64,
    /// Files the daemon quarantined during startup recovery.
    pub quarantined: u64,
    /// Milliseconds the daemon's startup recovery pass took.
    pub recovery_ms: u64,
    /// Peak concurrently open loadgen connections (multiplexed driver;
    /// 0 for artifacts written before the event-loop serving layer).
    pub open_conns: u64,
    /// Best completion rate sustained over any 1 s sliding window.
    pub max_sustained_rps: f64,
}

impl ServeSection {
    /// Serializes to the `"serve"` JSON object.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("suite".into(), Json::Str(self.suite.clone())),
            ("graph".into(), Json::Str(self.graph.clone())),
            ("connections".into(), Json::Int(self.connections as i64)),
            ("requests".into(), Json::Int(self.requests as i64)),
            ("ok".into(), Json::Int(self.ok as i64)),
            ("overloaded".into(), Json::Int(self.overloaded as i64)),
            (
                "deadline_expired".into(),
                Json::Int(self.deadline_expired as i64),
            ),
            ("errors".into(), Json::Int(self.errors as i64)),
            ("p50_us".into(), Json::Int(self.p50_us as i64)),
            ("p90_us".into(), Json::Int(self.p90_us as i64)),
            ("p99_us".into(), Json::Int(self.p99_us as i64)),
            ("throughput_rps".into(), Json::Float(self.throughput_rps)),
            ("wall_ms".into(), Json::Int(self.wall_ms as i64)),
            ("retries".into(), Json::Int(self.retries as i64)),
            (
                "snapshot_writes".into(),
                Json::Int(self.snapshot_writes as i64),
            ),
            (
                "journal_appends".into(),
                Json::Int(self.journal_appends as i64),
            ),
            (
                "journal_replays".into(),
                Json::Int(self.journal_replays as i64),
            ),
            ("quarantined".into(), Json::Int(self.quarantined as i64)),
            ("recovery_ms".into(), Json::Int(self.recovery_ms as i64)),
            ("open_conns".into(), Json::Int(self.open_conns as i64)),
            (
                "max_sustained_rps".into(),
                Json::Float(self.max_sustained_rps),
            ),
        ])
    }

    /// Parses a `"serve"` object (unknown fields are ignored, missing
    /// numeric fields default to zero).
    ///
    /// # Errors
    /// Returns a description when required string fields are absent.
    pub fn from_json(v: &Json) -> Result<ServeSection, String> {
        let str_field = |key: &str| {
            v.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("serve section is missing string field '{key}'"))
        };
        let int_field = |key: &str| v.get(key).and_then(Json::as_u64).unwrap_or(0);
        Ok(ServeSection {
            suite: str_field("suite")?,
            graph: str_field("graph")?,
            connections: int_field("connections"),
            requests: int_field("requests"),
            ok: int_field("ok"),
            overloaded: int_field("overloaded"),
            deadline_expired: int_field("deadline_expired"),
            errors: int_field("errors"),
            p50_us: int_field("p50_us"),
            p90_us: int_field("p90_us"),
            p99_us: int_field("p99_us"),
            throughput_rps: v
                .get("throughput_rps")
                .and_then(Json::as_f64)
                .unwrap_or(0.0),
            wall_ms: int_field("wall_ms"),
            // Durability fields arrived with schema-tolerant defaults:
            // documents written before them still parse.
            retries: int_field("retries"),
            snapshot_writes: int_field("snapshot_writes"),
            journal_appends: int_field("journal_appends"),
            journal_replays: int_field("journal_replays"),
            quarantined: int_field("quarantined"),
            recovery_ms: int_field("recovery_ms"),
            // Event-loop fields, same tolerance.
            open_conns: int_field("open_conns"),
            max_sustained_rps: v
                .get("max_sustained_rps")
                .and_then(Json::as_f64)
                .unwrap_or(0.0),
        })
    }

    /// Extracts the section from a whole `BENCH.json` document, if the
    /// document carries one.
    ///
    /// # Errors
    /// Returns a description when the document is not valid JSON or the
    /// present section is malformed; `Ok(None)` when there is no
    /// `"serve"` key at all.
    pub fn from_document(text: &str) -> Result<Option<ServeSection>, String> {
        let v = lotus_telemetry::json::parse(text).map_err(|e| e.to_string())?;
        match v.get("serve") {
            Some(section) => Ok(Some(ServeSection::from_json(section)?)),
            None => Ok(None),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{BenchReport, SCHEMA_VERSION};

    fn sample() -> ServeSection {
        ServeSection {
            suite: "ci".into(),
            graph: "rmat:9:8:7".into(),
            connections: 4,
            requests: 200,
            ok: 198,
            overloaded: 2,
            deadline_expired: 0,
            errors: 0,
            p50_us: 850,
            p90_us: 2100,
            p99_us: 4800,
            throughput_rps: 1234.5,
            wall_ms: 162,
            retries: 3,
            snapshot_writes: 1,
            journal_appends: 2,
            journal_replays: 4,
            quarantined: 1,
            recovery_ms: 9,
            open_conns: 4,
            max_sustained_rps: 1400.0,
        }
    }

    #[test]
    fn documents_without_durability_fields_default_to_zero() {
        let legacy = Json::Obj(vec![
            ("suite".into(), Json::Str("ci".into())),
            ("graph".into(), Json::Str("rmat:9:8:7".into())),
            ("requests".into(), Json::Int(10)),
        ]);
        let section = ServeSection::from_json(&legacy).unwrap();
        assert_eq!(section.retries, 0);
        assert_eq!(section.snapshot_writes, 0);
        assert_eq!(section.recovery_ms, 0);
        assert_eq!(section.open_conns, 0);
        assert!(section.max_sustained_rps.abs() < f64::EPSILON);
    }

    #[test]
    fn json_round_trip() {
        let section = sample();
        let back = ServeSection::from_json(&section.to_json()).unwrap();
        assert_eq!(back, section);
    }

    #[test]
    fn document_extraction_and_absence() {
        let mut doc = Json::Obj(vec![
            ("schema_version".into(), Json::Int(SCHEMA_VERSION)),
            ("suite".into(), Json::Str("ci".into())),
            ("runs".into(), Json::Arr(vec![])),
        ]);
        assert_eq!(ServeSection::from_document(&doc.pretty()), Ok(None));

        if let Json::Obj(members) = &mut doc {
            members.push(("serve".into(), sample().to_json()));
        }
        let text = doc.pretty();
        assert_eq!(ServeSection::from_document(&text), Ok(Some(sample())));
        // The counting-report parser tolerates the extra key (schema v1
        // unknown-field contract), so one artifact serves both readers.
        let report = BenchReport::parse(&text).unwrap();
        assert_eq!(report.suite, "ci");
    }

    #[test]
    fn missing_required_fields_are_reported() {
        let err = ServeSection::from_json(&Json::Obj(vec![])).unwrap_err();
        assert!(err.contains("suite"), "{err}");
        assert!(ServeSection::from_document("not json").is_err());
    }
}
