//! Named benchmark suites: the dataset × algorithm matrix behind
//! `lotus bench --suite <name>`.
//!
//! * `ci` — two seeded scale-12 R-MATs (social and web skew) across all
//!   five algorithms; small enough for a per-PR smoke gate, skewed
//!   enough that the LOTUS phases all do real work.
//! * `small` — the Table 5 datasets at `Tiny` scale, LOTUS + GAP.
//! * `full` — the Table 5 datasets at `Small` scale, all algorithms
//!   (the paper's end-to-end comparison, Table 5).

use lotus_gen::{Dataset, DatasetScale, Rmat, RmatParams};
use lotus_graph::UndirectedCsr;

use crate::harness::Algorithm;

/// One dataset of a suite: a stable name plus how to generate it.
#[derive(Debug, Clone, PartialEq)]
pub struct SuiteDataset {
    /// Stable name used in `BENCH.json` (runs are matched by it).
    pub name: String,
    source: Source,
}

#[derive(Debug, Clone, PartialEq)]
enum Source {
    Rmat {
        scale: u32,
        edge_factor: u32,
        params: RmatParams,
        seed: u64,
    },
    Paper(Dataset),
}

impl SuiteDataset {
    /// A seeded R-MAT entry.
    #[must_use]
    pub fn rmat(name: &str, scale: u32, edge_factor: u32, params: RmatParams, seed: u64) -> Self {
        SuiteDataset {
            name: name.to_string(),
            source: Source::Rmat {
                scale,
                edge_factor,
                params,
                seed,
            },
        }
    }

    /// A paper-suite dataset at the given scale.
    #[must_use]
    pub fn paper(d: Dataset, scale: DatasetScale) -> Self {
        let d = d.at_scale(scale);
        SuiteDataset {
            name: d.name.to_string(),
            source: Source::Paper(d),
        }
    }

    /// Generates the graph (deterministic per entry).
    #[must_use]
    pub fn generate(&self) -> UndirectedCsr {
        match &self.source {
            Source::Rmat {
                scale,
                edge_factor,
                params,
                seed,
            } => Rmat {
                scale: *scale,
                edge_factor: *edge_factor,
                params: *params,
                noise: 0.05,
            }
            .generate(*seed),
            Source::Paper(d) => d.generate(),
        }
    }
}

/// A named suite: the full dataset × algorithm matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchSuite {
    /// Suite name (recorded in `BENCH.json`).
    pub name: String,
    /// Datasets, in run order.
    pub datasets: Vec<SuiteDataset>,
    /// Algorithms run on every dataset.
    pub algorithms: Vec<Algorithm>,
    /// Repetitions per cell; the best (minimum) wall time is reported,
    /// which is far more noise-robust than a single run and keeps the
    /// CI perf gate's tolerance meaningful.
    pub reps: usize,
}

impl BenchSuite {
    /// Suite names accepted by [`BenchSuite::by_name`].
    pub const NAMES: [&'static str; 3] = ["ci", "small", "full"];

    /// Resolves a suite by name.
    #[must_use]
    pub fn by_name(name: &str) -> Option<BenchSuite> {
        match name {
            "ci" => Some(BenchSuite {
                name: "ci".into(),
                datasets: vec![
                    // Seed 7 matches the CI `lotus check` gate's graph.
                    SuiteDataset::rmat("rmat12-social", 12, 8, RmatParams::GRAPH500, 7),
                    SuiteDataset::rmat("rmat12-web", 12, 8, RmatParams::WEB, 7),
                ],
                algorithms: Algorithm::ALL.to_vec(),
                reps: 5,
            }),
            "small" => Some(BenchSuite {
                name: "small".into(),
                datasets: Dataset::small_suite()
                    .into_iter()
                    .map(|d| SuiteDataset::paper(d, DatasetScale::Tiny))
                    .collect(),
                algorithms: vec![Algorithm::Gap, Algorithm::Lotus],
                reps: 3,
            }),
            "full" => Some(BenchSuite {
                name: "full".into(),
                datasets: Dataset::small_suite()
                    .into_iter()
                    .map(|d| SuiteDataset::paper(d, DatasetScale::Small))
                    .collect(),
                algorithms: Algorithm::ALL.to_vec(),
                reps: 2,
            }),
            _ => None,
        }
    }

    /// Number of runs in the matrix.
    #[must_use]
    pub fn len(&self) -> usize {
        self.datasets.len() * self.algorithms.len()
    }

    /// True when the matrix is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_listed_suite_resolves() {
        for name in BenchSuite::NAMES {
            let suite = BenchSuite::by_name(name).expect(name);
            assert_eq!(suite.name, name);
            assert!(!suite.is_empty());
        }
        assert!(BenchSuite::by_name("nope").is_none());
    }

    #[test]
    fn ci_suite_is_the_documented_matrix() {
        let ci = BenchSuite::by_name("ci").unwrap();
        assert_eq!(ci.datasets.len(), 2);
        assert_eq!(ci.algorithms.len(), 5);
        assert_eq!(ci.len(), 10);
        assert_eq!(ci.datasets[0].name, "rmat12-social");
    }

    #[test]
    fn suite_dataset_names_are_unique() {
        for name in BenchSuite::NAMES {
            let suite = BenchSuite::by_name(name).unwrap();
            let mut names: Vec<_> = suite.datasets.iter().map(|d| d.name.clone()).collect();
            names.sort();
            names.dedup();
            assert_eq!(names.len(), suite.datasets.len(), "{name}");
        }
    }

    #[test]
    fn rmat_entry_generates_deterministically() {
        let d = SuiteDataset::rmat("x", 9, 8, RmatParams::GRAPH500, 3);
        let a = d.generate();
        let b = d.generate();
        assert_eq!(a.num_vertices(), 1 << 9);
        assert_eq!(a.num_edges(), b.num_edges());
    }
}
