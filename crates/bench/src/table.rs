//! Plain-text table formatting for the report binaries.

use std::fmt::Write as _;

/// A simple right-padded text table with a title and column headers.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    footnotes: Vec<String>,
}

impl Table {
    /// Creates a table with a title.
    pub fn new(title: impl Into<String>) -> Self {
        Self {
            title: title.into(),
            ..Self::default()
        }
    }

    /// Sets the column headers.
    pub fn headers(mut self, headers: &[&str]) -> Self {
        self.headers = headers
            .iter()
            .map(std::string::ToString::to_string)
            .collect();
        self
    }

    /// Appends a data row.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match header count"
        );
        self.rows.push(cells);
        self
    }

    /// Appends a footnote line printed under the table.
    pub fn footnote(&mut self, note: impl Into<String>) -> &mut Self {
        self.footnotes.push(note.into());
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as aligned text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line = |cells: &[String], widths: &[usize], out: &mut String| {
            let mut parts = Vec::with_capacity(cells.len());
            for (cell, w) in cells.iter().zip(widths) {
                parts.push(format!("{cell:>w$}", w = w));
            }
            let _ = writeln!(out, "{}", parts.join("  "));
        };
        line(&self.headers, &widths, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            line(row, &widths, &mut out);
        }
        for note in &self.footnotes {
            let _ = writeln!(out, "* {note}");
        }
        out
    }
}

/// Formats a duration in seconds with millisecond precision.
pub fn secs(d: std::time::Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

/// Formats a ratio as `N.N×`.
pub fn ratio(x: f64) -> String {
    format!("{x:.1}x")
}

/// Formats a fraction as a percentage.
pub fn pct(x: f64) -> String {
    format!("{:.1}", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("Demo").headers(&["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["long-name".into(), "12345".into()]);
        t.footnote("a note");
        let s = t.render();
        assert!(s.contains("== Demo =="));
        assert!(s.contains("long-name"));
        assert!(s.contains("* a note"));
        // Header row aligned to widest cell.
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[1].contains("name") && lines[1].contains("value"));
    }

    #[test]
    #[should_panic]
    fn row_width_mismatch_panics() {
        let mut t = Table::new("x").headers(&["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(secs(std::time::Duration::from_millis(1500)), "1.500");
        assert_eq!(ratio(2.25), "2.2x");
        assert_eq!(pct(0.934), "93.4");
    }
}
