//! Differential-correctness oracle.
//!
//! Exact triangle counting admits many independent implementations — the
//! paper's baselines (§2.2, §5.1.4) plus LOTUS itself — and they must all
//! agree on every graph. [`run`] executes the full roster on one graph,
//! reports any disagreement as a [`Rule::CountDisagreement`] violation,
//! and, when the disagreement survives a rebuild of the graph (i.e. it is
//! an algorithm bug rather than input corruption), greedily minimizes a
//! counterexample edge list for debugging.

use lotus_algos::bbtc::bbtc_count;
use lotus_algos::edge_iterator::edge_iterator_count;
use lotus_algos::edge_iterator_hashed::edge_iterator_hashed_count;
use lotus_algos::forward::ForwardCounter;
use lotus_algos::forward_hashed::forward_hashed_count;
use lotus_algos::gbbs::gbbs_count;
use lotus_algos::intersect::Bitmap;
use lotus_algos::new_vertex_listing::new_vertex_listing_count;
use lotus_algos::node_iterator::node_iterator_count;
use lotus_algos::node_iterator_core::node_iterator_core_count;
use lotus_algos::IntersectKind;
use lotus_core::config::{HubCount, LotusConfig};
use lotus_core::count::LotusCounter;
use lotus_graph::{EdgeList, UndirectedCsr};

use crate::validator::Validator;
use crate::violation::{Report, Rule, Violation};

/// One algorithm's verdict on a graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AlgorithmRun {
    /// Algorithm name (stable, kebab-case).
    pub name: &'static str,
    /// Triangles reported.
    pub triangles: u64,
}

/// Outcome of a differential run.
#[derive(Debug, Clone)]
pub struct DifferentialReport {
    /// Structural validation of the input graph (runs first: a corrupt
    /// graph explains away any disagreement below).
    pub structural: Report,
    /// Every algorithm's count.
    pub runs: Vec<AlgorithmRun>,
    /// Count disagreements, if any.
    pub disagreements: Report,
    /// A minimized edge list still exhibiting a disagreement, when the
    /// disagreement reproduces on a graph rebuilt from scratch.
    pub counterexample: Option<EdgeList>,
}

impl DifferentialReport {
    /// True when the graph is structurally sound and all algorithms agree.
    pub fn ok(&self) -> bool {
        self.structural.is_clean() && self.disagreements.is_clean()
    }

    /// The consensus count (only meaningful when [`DifferentialReport::ok`]).
    pub fn consensus(&self) -> Option<u64> {
        let first = self.runs.first()?.triangles;
        self.runs
            .iter()
            .all(|r| r.triangles == first)
            .then_some(first)
    }
}

/// Runs every algorithm in the roster on `graph`.
pub fn run_all(graph: &UndirectedCsr) -> Vec<AlgorithmRun> {
    let mut runs = vec![
        AlgorithmRun {
            name: "node-iterator",
            triangles: node_iterator_count(graph),
        },
        AlgorithmRun {
            name: "node-iterator-core",
            triangles: node_iterator_core_count(graph),
        },
        AlgorithmRun {
            name: "edge-iterator",
            triangles: edge_iterator_count(graph),
        },
        AlgorithmRun {
            name: "edge-iterator-hashed",
            triangles: edge_iterator_hashed_count(graph),
        },
    ];
    for kernel in IntersectKind::ALL {
        let name = match kernel {
            IntersectKind::Merge => "forward-merge",
            IntersectKind::Binary => "forward-binary",
            IntersectKind::Gallop => "forward-gallop",
            IntersectKind::Branchless => "forward-branchless",
            IntersectKind::Hash => "forward-hash",
        };
        runs.push(AlgorithmRun {
            name,
            triangles: ForwardCounter::new()
                .with_kernel(kernel)
                .count(graph)
                .triangles,
        });
    }
    runs.push(AlgorithmRun {
        name: "forward-bitmap",
        triangles: forward_bitmap_count(graph),
    });
    runs.push(AlgorithmRun {
        name: "forward-hashed",
        triangles: forward_hashed_count(graph),
    });
    runs.push(AlgorithmRun {
        name: "new-vertex-listing",
        triangles: new_vertex_listing_count(graph),
    });
    runs.push(AlgorithmRun {
        name: "gbbs",
        triangles: gbbs_count(graph),
    });
    runs.push(AlgorithmRun {
        name: "bbtc",
        triangles: bbtc_count(graph),
    });
    runs.push(AlgorithmRun {
        name: "lotus",
        triangles: LotusCounter::new(lotus_config_for(graph))
            .count(graph)
            .total(),
    });
    runs
}

/// Forward counting with the bitmap intersection kernel (new-vertex-listing
/// style), the sixth kernel of §2.2 — not in [`IntersectKind::ALL`] because
/// it is stateful.
fn forward_bitmap_count(graph: &UndirectedCsr) -> u64 {
    let forward = graph.forward_graph();
    let mut bitmap = Bitmap::new(forward.num_vertices() as usize);
    let mut total = 0u64;
    for v in 0..forward.num_vertices() {
        let nv = forward.neighbors(v);
        for &u in nv {
            total += bitmap.count(forward.neighbors(u), nv);
        }
    }
    total
}

/// Picks a LOTUS hub count that exercises all three phases even on the
/// tiny graphs the minimizer produces.
fn lotus_config_for(graph: &UndirectedCsr) -> LotusConfig {
    let hubs = (graph.num_vertices() / 2).clamp(1, 1 << 16);
    LotusConfig::default().with_hub_count(HubCount::Fixed(hubs))
}

/// Validates `graph` structurally, then runs the full algorithm roster and
/// reports any count disagreement. See [`DifferentialReport`].
pub fn run(graph: &UndirectedCsr) -> DifferentialReport {
    let structural = Validator::new().check_undirected(graph);
    let runs = run_all(graph);
    let disagreements = disagreement_report(&runs);

    // Minimization only makes sense for an algorithm bug: rebuild the graph
    // from its edges and re-check. Disagreement that vanishes on rebuild was
    // representational corruption, already pinpointed by `structural`.
    let counterexample = if disagreements.is_clean() {
        None
    } else {
        let edges = extract_edges(graph);
        let rebuilt = build(&edges, graph.num_vertices());
        if disagree(&rebuilt) {
            Some(minimize_with(edges, graph.num_vertices(), disagree))
        } else {
            None
        }
    };

    DifferentialReport {
        structural,
        runs,
        disagreements,
        counterexample,
    }
}

/// Converts a set of runs into a report (one violation per dissenting
/// algorithm, relative to the majority count).
pub fn disagreement_report(runs: &[AlgorithmRun]) -> Report {
    let mut report = Report::new();
    let Some(majority) = majority_count(runs) else {
        return report;
    };
    for r in runs {
        if r.triangles != majority {
            report.push(Violation::new(
                Rule::CountDisagreement,
                format!(
                    "{} reports {} triangles, majority reports {majority}",
                    r.name, r.triangles
                ),
            ));
        }
    }
    report
}

fn majority_count(runs: &[AlgorithmRun]) -> Option<u64> {
    let mut counts: Vec<(u64, usize)> = Vec::new();
    for r in runs {
        match counts.iter_mut().find(|(c, _)| *c == r.triangles) {
            Some((_, n)) => *n += 1,
            None => counts.push((r.triangles, 1)),
        }
    }
    counts.into_iter().max_by_key(|&(_, n)| n).map(|(c, _)| c)
}

fn extract_edges(graph: &UndirectedCsr) -> Vec<(u32, u32)> {
    let mut edges = Vec::with_capacity(graph.num_edges() as usize);
    for v in 0..graph.num_vertices() {
        for &u in graph.neighbors(v) {
            if u > v {
                edges.push((v, u));
            }
        }
    }
    edges
}

fn build(edges: &[(u32, u32)], num_vertices: u32) -> UndirectedCsr {
    let mut el = EdgeList::from_pairs_with_vertices(edges.to_vec(), num_vertices);
    el.canonicalize();
    UndirectedCsr::from_canonical_edges(&el)
}

fn disagree(graph: &UndirectedCsr) -> bool {
    !disagreement_report(&run_all(graph)).is_clean()
}

/// Budget on rebuild-and-rerun probes during minimization; keeps the
/// oracle's failure path bounded on large graphs.
const MINIMIZE_BUDGET: usize = 2_000;

/// Greedy delta-debugging on edges: repeatedly drop any single edge that
/// keeps `fails` true, until a pass removes nothing (1-minimal) or the
/// probe budget runs out. The production oracle passes the full-roster
/// disagreement predicate; tests inject cheaper ones.
pub fn minimize_with(
    mut edges: Vec<(u32, u32)>,
    num_vertices: u32,
    fails: impl Fn(&UndirectedCsr) -> bool,
) -> EdgeList {
    let mut probes = 0usize;
    let mut changed = true;
    while changed && probes < MINIMIZE_BUDGET {
        changed = false;
        let mut i = 0;
        while i < edges.len() && probes < MINIMIZE_BUDGET {
            let removed = edges.remove(i);
            probes += 1;
            if fails(&build(&edges, num_vertices)) {
                changed = true; // still failing without this edge: keep it out
            } else {
                edges.insert(i, removed);
                i += 1;
            }
        }
    }
    let mut el = EdgeList::from_pairs_with_vertices(edges, num_vertices);
    el.canonicalize();
    el
}

#[cfg(test)]
mod tests {
    use super::*;
    use lotus_graph::builder::graph_from_edges;
    use lotus_graph::Csr;

    #[test]
    fn roster_agrees_on_clean_graph() {
        // Two triangles sharing edge (1, 2), plus a pendant vertex.
        let g = graph_from_edges([(0, 1), (0, 2), (1, 2), (1, 3), (2, 3), (3, 4)]);
        let report = run(&g);
        assert!(report.ok(), "{:?}", report.disagreements);
        assert_eq!(report.consensus(), Some(2));
        assert!(
            report.runs.len() >= 13,
            "roster has {} entries",
            report.runs.len()
        );
        assert!(report.counterexample.is_none());
    }

    #[test]
    fn corrupted_unsorted_csr_is_detected() {
        // K4 with vertex 0's list scrambled: counts based on sorted-list
        // intersection diverge from probe-based ones; the structural pass
        // pinpoints the corruption and no counterexample is minimized
        // (the disagreement vanishes on rebuild).
        let csr = Csr::<u32>::from_adjacency(vec![
            vec![3, 1, 2],
            vec![0, 2, 3],
            vec![0, 1, 3],
            vec![0, 1, 2],
        ]);
        let g = UndirectedCsr::from_csr_unchecked(csr, 6);
        let report = run(&g);
        assert!(!report.ok());
        assert!(!report.structural.is_clean());
        assert!(
            report.structural.by_rule(Rule::ListSorted).next().is_some(),
            "{}",
            report.structural
        );
    }

    #[test]
    fn corrupted_asymmetric_csr_is_detected() {
        // Triangle with one direction of edge (1, 2) missing.
        let csr = Csr::<u32>::from_adjacency(vec![vec![1, 2], vec![0, 2], vec![0]]);
        let g = UndirectedCsr::from_csr_unchecked(csr, 3);
        let report = run(&g);
        assert!(!report.ok());
        assert!(report.structural.by_rule(Rule::Symmetric).next().is_some());
    }

    #[test]
    fn minimizer_shrinks_to_one_minimal_core() {
        // Stand-in failure predicate ("graph still contains a triangle")
        // playing the role of a real algorithm disagreement: the minimizer
        // must strip everything but a single triangle.
        let edges = vec![
            (0, 1),
            (0, 2),
            (1, 2),
            (2, 3),
            (3, 4),
            (4, 5),
            (2, 5),
            (1, 5),
        ];
        let minimal = minimize_with(edges, 6, |g| lotus_algos::brute_force_count(g) > 0);
        assert_eq!(
            minimal.len(),
            3,
            "minimal triangle witness: {:?}",
            minimal.pairs()
        );
        let g = build(minimal.pairs(), 6);
        assert_eq!(lotus_algos::brute_force_count(&g), 1);
    }

    #[test]
    fn extract_edges_round_trips() {
        let edges = vec![(0, 1), (0, 2), (1, 2), (2, 3)];
        let g = build(&edges, 4);
        assert_eq!(extract_edges(&g), edges);
        assert!(!disagree(&g));
    }

    #[test]
    fn majority_logic() {
        let runs = vec![
            AlgorithmRun {
                name: "a",
                triangles: 5,
            },
            AlgorithmRun {
                name: "b",
                triangles: 5,
            },
            AlgorithmRun {
                name: "c",
                triangles: 7,
            },
        ];
        let r = disagreement_report(&runs);
        assert_eq!(r.len(), 1);
        assert!(r.violations()[0].detail.contains('c'));
    }
}
