//! Workspace-wide invariant validator and differential-correctness oracle.
//!
//! Three layers of checking for the LOTUS reproduction:
//!
//! 1. **Structural validation** ([`Validator`]) — re-derives every CSX and
//!    `UndirectedCsr` invariant from the raw arrays (monotonic offsets,
//!    in-bounds IDs, sorted deduplicated lists, no self-loops, symmetry,
//!    the `N⁻`-prefix property) and reports machine-readable
//!    [`Violation`]s.
//! 2. **LOTUS-specific checks** ([`lotus::check_lotus_graph`]) — the
//!    relabeling is a bijective permutation, HE IDs fit 16 bits, HE/NHE
//!    respect the hub cutoff, H2H bits correspond exactly to hub–hub
//!    edges, the sub-graphs partition the edge set, and the per-type
//!    counts sum to an independent total
//!    ([`lotus::check_phase_sum`]).
//! 3. **Differential oracle** ([`differential::run`]) — executes every
//!    baseline algorithm in the workspace plus LOTUS on a graph, flags
//!    disagreements, and minimizes a counterexample edge list when the
//!    disagreement is a real algorithm bug.
//!
//! The same invariants back the `validate` cargo feature of `lotus-graph`
//! and `lotus-core` (cheap `debug_assert!` hooks inside the builders) and
//! the `lotus check <graph>` CLI subcommand (full offline audit).

pub mod differential;
pub mod lotus;
pub mod validator;
pub mod violation;

pub use differential::DifferentialReport;
pub use validator::Validator;
pub use violation::{Report, Rule, Violation};
