//! LOTUS-specific invariant checks (paper §4.2 / Figure 3a).
//!
//! These re-derive every structural property of a [`LotusGraph`] from
//! scratch rather than trusting `build_lotus_graph`: the relabeling must
//! be a bijective permutation, HE neighbour IDs must fit 16 bits and be
//! hubs, NHE entries must be non-hubs below their vertex, the H2H
//! triangular bit array must correspond exactly to the hub–hub HE edges
//! under [`pair_bit_index`], and the HE/NHE split must partition the
//! source edge set.

use lotus_core::h2h::pair_bit_index;
use lotus_core::stats::LotusStats;
use lotus_core::LotusGraph;

use crate::validator::Validator;
use crate::violation::{Report, Rule, Violation};

/// Largest hub count whose IDs fit the 16-bit HE entries (§4.2).
pub const MAX_HUBS: u32 = 1 << 16;

/// Checks every LOTUS structural invariant of `lg`, returning a report of
/// all violations found.
pub fn check_lotus_graph(lg: &LotusGraph) -> Report {
    let mut report = Validator::new().check_relabeling(&lg.relabeling);
    let n = lg.num_vertices();

    if lg.relabeling.len() != n as usize {
        report.push(Violation::new(
            Rule::RelabelingBijective,
            format!(
                "relabeling covers {} vertices, graph has {n}",
                lg.relabeling.len()
            ),
        ));
    }
    if lg.hub_count > MAX_HUBS {
        report.push(Violation::new(
            Rule::HubIdFitsU16,
            format!(
                "hub count {} exceeds the 16-bit HE ID space ({MAX_HUBS})",
                lg.hub_count
            ),
        ));
    }
    if lg.hub_count > n {
        report.push(Violation::new(
            Rule::HubCutoffRespected,
            format!("hub count {} exceeds vertex count {n}", lg.hub_count),
        ));
    }
    if lg.nhe.num_vertices() != n {
        report.push(Violation::new(
            Rule::EdgePartitionExact,
            format!(
                "HE covers {n} vertices but NHE covers {}",
                lg.nhe.num_vertices()
            ),
        ));
        return report; // per-vertex loops below assume matching shapes
    }

    let mut hub_hub_edges = 0u64;
    for v in 0..n {
        let mut prev: Option<u16> = None;
        for &h in lg.he.neighbors(v) {
            let h32 = h as u32;
            if h32 >= lg.hub_count {
                report.push(
                    Violation::new(
                        Rule::HubIdFitsU16,
                        format!("HE entry {h32} is not a hub (cutoff {})", lg.hub_count),
                    )
                    .at_vertex(v),
                );
            }
            if h32 >= v {
                report.push(
                    Violation::new(
                        Rule::HubCutoffRespected,
                        format!("HE entry {h32} is not lower than its vertex"),
                    )
                    .at_vertex(v),
                );
            }
            if prev.is_some_and(|p| p >= h) {
                report.push(
                    Violation::new(Rule::ListSorted, format!("HE entry {h32} after {prev:?}"))
                        .at_vertex(v),
                );
            }
            prev = Some(h);
            if v < lg.hub_count && h32 < v {
                hub_hub_edges += 1;
                if !lg.h2h.is_set(v, h32) {
                    report.push(
                        Violation::new(
                            Rule::H2HConsistent,
                            format!(
                                "H2H bit {} for hub pair ({v}, {h32}) is clear",
                                pair_bit_index(v, h32)
                            ),
                        )
                        .at_vertex(v),
                    );
                }
            }
        }

        let mut prev: Option<u32> = None;
        for &u in lg.nhe.neighbors(v) {
            if u < lg.hub_count {
                report.push(
                    Violation::new(
                        Rule::HubCutoffRespected,
                        format!("NHE entry {u} is a hub (cutoff {})", lg.hub_count),
                    )
                    .at_vertex(v),
                );
            }
            if u >= v {
                report.push(
                    Violation::new(
                        Rule::HubCutoffRespected,
                        format!("NHE entry {u} is not lower than its vertex"),
                    )
                    .at_vertex(v),
                );
            }
            if prev.is_some_and(|p| p >= u) {
                report.push(
                    Violation::new(Rule::ListSorted, format!("NHE entry {u} after {prev:?}"))
                        .at_vertex(v),
                );
            }
            prev = Some(u);
        }
        if v < lg.hub_count && !lg.nhe.neighbors(v).is_empty() {
            report.push(
                Violation::new(
                    Rule::HubCutoffRespected,
                    format!(
                        "hub {v} has {} NHE entries (must be 0)",
                        lg.nhe.neighbors(v).len()
                    ),
                )
                .at_vertex(v),
            );
        }
    }

    // H2H must contain *only* the bits implied by HE: equal totals together
    // with the per-edge is_set probes above imply exact correspondence.
    if lg.h2h.bits_set() != hub_hub_edges {
        report.push(Violation::new(
            Rule::H2HConsistent,
            format!(
                "H2H has {} bits set but HE holds {hub_hub_edges} hub-hub edges",
                lg.h2h.bits_set()
            ),
        ));
    }
    if lg.h2h.hub_count() != lg.hub_count {
        report.push(Violation::new(
            Rule::H2HConsistent,
            format!(
                "H2H sized for {} hubs, graph has {}",
                lg.h2h.hub_count(),
                lg.hub_count
            ),
        ));
    }
    if lg.he_edges() + lg.nhe_edges() != lg.num_edges {
        report.push(Violation::new(
            Rule::EdgePartitionExact,
            format!(
                "HE ({}) + NHE ({}) != |E| ({})",
                lg.he_edges(),
                lg.nhe_edges(),
                lg.num_edges
            ),
        ));
    }
    report
}

/// Checks that the four per-type triangle counts sum to a reference total
/// computed by an independent algorithm.
pub fn check_phase_sum(stats: &LotusStats, reference_total: u64) -> Report {
    let mut report = Report::new();
    if stats.total() != reference_total {
        report.push(Violation::new(
            Rule::PhaseSumMatchesTotal,
            format!(
                "HHH {} + HHN {} + HNN {} + NNN {} = {} != reference {reference_total}",
                stats.hhh,
                stats.hhn,
                stats.hnn,
                stats.nnn,
                stats.total()
            ),
        ));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use lotus_core::config::{HubCount, LotusConfig};
    use lotus_core::count::LotusCounter;
    use lotus_core::preprocess::build_lotus_graph;
    use lotus_graph::builder::graph_from_edges;
    use lotus_graph::UndirectedCsr;

    fn wheel() -> UndirectedCsr {
        // Hub 0 connected to a 5-cycle: 10 edges, 5 triangles.
        graph_from_edges([
            (0, 1),
            (0, 2),
            (0, 3),
            (0, 4),
            (0, 5),
            (1, 2),
            (2, 3),
            (3, 4),
            (4, 5),
            (5, 1),
        ])
    }

    #[test]
    fn built_lotus_graph_is_clean() {
        let cfg = LotusConfig::default().with_hub_count(HubCount::Fixed(2));
        let lg = build_lotus_graph(&wheel(), &cfg);
        let r = check_lotus_graph(&lg);
        assert!(r.is_clean(), "{r}");
    }

    #[test]
    fn corrupt_h2h_is_caught() {
        let cfg = LotusConfig::default().with_hub_count(HubCount::Fixed(4));
        let mut lg = build_lotus_graph(&wheel(), &cfg);
        // Rebuild H2H missing every bit: each hub-hub HE edge now reports
        // a clear bit, and the totals disagree.
        lg.h2h = lotus_core::h2h::TriBitArray::new(lg.hub_count);
        let r = check_lotus_graph(&lg);
        assert!(r.by_rule(Rule::H2HConsistent).next().is_some(), "{r}");
    }

    #[test]
    fn corrupt_edge_partition_is_caught() {
        let cfg = LotusConfig::default().with_hub_count(HubCount::Fixed(2));
        let mut lg = build_lotus_graph(&wheel(), &cfg);
        lg.num_edges += 1;
        let r = check_lotus_graph(&lg);
        assert!(r.by_rule(Rule::EdgePartitionExact).next().is_some(), "{r}");
    }

    #[test]
    fn phase_sum_checks_against_reference() {
        let g = wheel();
        let cfg = LotusConfig::default().with_hub_count(HubCount::Fixed(2));
        let result = LotusCounter::new(cfg).count(&g);
        assert!(check_phase_sum(&result.stats, 5).is_clean());
        let bad = check_phase_sum(&result.stats, 6);
        assert!(bad.by_rule(Rule::PhaseSumMatchesTotal).next().is_some());
    }
}
