//! Structural CSX/CSR invariant checks.
//!
//! The [`Validator`] never trusts constructors: it re-derives every
//! invariant from the raw offset and entry arrays, so it catches both
//! builder bugs and post-construction corruption (e.g. an unsafe kernel
//! scribbling over a neighbour list).

use lotus_graph::{Csr, EdgeList, NeighborId, Relabeling, UndirectedCsr};

use crate::violation::{Report, Rule, Violation};

/// Structural invariant checker for every graph representation in the
/// workspace.
#[derive(Debug, Clone, Copy, Default)]
pub struct Validator {
    /// When true, symmetry checking is skipped (for directed/oriented
    /// CSRs such as the Forward graph or HE/NHE sub-graphs).
    directed: bool,
}

impl Validator {
    /// A validator for symmetric (undirected) graphs.
    pub fn new() -> Self {
        Self::default()
    }

    /// A validator for directed/oriented CSRs (no symmetry requirement).
    pub fn directed() -> Self {
        Self { directed: true }
    }

    /// Checks the raw CSX invariants of any [`Csr`]: monotonic offsets
    /// covering the entry array, in-bounds neighbour IDs (`< id_bound`),
    /// sorted + deduplicated lists, and no self-loops.
    ///
    /// `id_bound` is normally `csr.num_vertices()`; LOTUS's HE sub-graph
    /// passes its hub cutoff instead.
    pub fn check_csr<N: NeighborId>(&self, csr: &Csr<N>, id_bound: u32) -> Report {
        let mut report = Report::new();
        let offsets = csr.offsets();
        let entries = csr.entries();

        if offsets.first() != Some(&0) {
            report.push(Violation::new(
                Rule::OffsetsMonotonic,
                format!("offsets start at {:?}, expected 0", offsets.first()),
            ));
        }
        for (i, w) in offsets.windows(2).enumerate() {
            if w[0] > w[1] {
                report.push(
                    Violation::new(
                        Rule::OffsetsMonotonic,
                        format!("offset[{}] = {} > offset[{}] = {}", i, w[0], i + 1, w[1]),
                    )
                    .at_vertex(i as u32)
                    .at_offset(w[0]),
                );
            }
        }
        if offsets.last().copied() != Some(entries.len() as u64) {
            report.push(Violation::new(
                Rule::OffsetsMonotonic,
                format!(
                    "final offset {:?} does not cover the {} entries",
                    offsets.last(),
                    entries.len()
                ),
            ));
        }
        // Per-list checks only make sense over well-formed offsets.
        if !report.is_clean() {
            return report;
        }

        for v in 0..csr.num_vertices() {
            let base = offsets[v as usize];
            let list = csr.neighbors(v);
            let mut prev: Option<u64> = None;
            for (i, &u) in list.iter().enumerate() {
                let u = u.to_vertex();
                let off = base + i as u64;
                if u >= id_bound {
                    report.push(
                        Violation::new(
                            Rule::NeighborInBounds,
                            format!("neighbour {u} >= bound {id_bound}"),
                        )
                        .at_vertex(v)
                        .at_offset(off),
                    );
                }
                if u == v {
                    report.push(
                        Violation::new(Rule::NoSelfLoop, format!("vertex {v} lists itself"))
                            .at_vertex(v)
                            .at_offset(off),
                    );
                }
                match prev {
                    Some(p) if p > u as u64 => {
                        report.push(
                            Violation::new(Rule::ListSorted, format!("{u} after {p}"))
                                .at_vertex(v)
                                .at_offset(off),
                        );
                    }
                    Some(p) if p == u as u64 => {
                        report.push(
                            Violation::new(
                                Rule::ListDeduplicated,
                                format!("duplicate neighbour {u}"),
                            )
                            .at_vertex(v)
                            .at_offset(off),
                        );
                    }
                    _ => {}
                }
                prev = Some(u as u64);
            }
        }
        report
    }

    /// Checks the full invariant set of an [`UndirectedCsr`]: all CSX
    /// invariants plus symmetry, the `2·|E|` entry count, and the
    /// `N⁻`-prefix property that the Forward orientation relies on.
    pub fn check_undirected(&self, g: &UndirectedCsr) -> Report {
        let mut report = self.check_csr(g.csr(), g.num_vertices());

        if g.csr().num_entries() != 2 * g.num_edges() {
            report.push(Violation::new(
                Rule::EdgeCountConsistent,
                format!(
                    "{} entries != 2 × {} edges",
                    g.csr().num_entries(),
                    g.num_edges()
                ),
            ));
        }

        for v in 0..g.num_vertices() {
            if !self.directed {
                for &u in g.neighbors(v) {
                    // Avoid UndirectedCsr::has_edge here: it binary-searches,
                    // which is itself invalid on an unsorted (corrupt) list.
                    if u < g.num_vertices() && !g.neighbors(u).contains(&v) {
                        report.push(
                            Violation::new(
                                Rule::Symmetric,
                                format!("{v} lists {u} but {u} does not list {v}"),
                            )
                            .at_vertex(v),
                        );
                    }
                }
            }
            // N⁻ prefix: every lower neighbour must be < v and jointly with
            // the upper slice reproduce the whole list.
            let lower = g.lower_neighbors(v);
            let upper = g.upper_neighbors(v);
            if lower.iter().any(|&u| u >= v)
                || upper.iter().any(|&u| u <= v)
                || lower.len() + upper.len() != g.neighbors(v).len()
            {
                report.push(
                    Violation::new(
                        Rule::LowerPrefix,
                        format!(
                            "N⁻ ({}) + N⁺ ({}) do not partition the list ({})",
                            lower.len(),
                            upper.len(),
                            g.neighbors(v).len()
                        ),
                    )
                    .at_vertex(v),
                );
            }
        }
        report
    }

    /// Checks that an [`EdgeList`] is canonical: every edge `(u, v)` has
    /// `u < v < num_vertices`, sorted strictly ascending (deduplicated).
    pub fn check_edge_list(&self, el: &EdgeList) -> Report {
        let mut report = Report::new();
        let n = el.num_vertices();
        for (i, w) in el.pairs().windows(2).enumerate() {
            if w[0] >= w[1] {
                report.push(
                    Violation::new(
                        Rule::ListSorted,
                        format!("edge {:?} not before {:?}", w[0], w[1]),
                    )
                    .at_offset(i as u64),
                );
            }
        }
        for (i, &(u, v)) in el.pairs().iter().enumerate() {
            if u == v {
                report.push(
                    Violation::new(Rule::NoSelfLoop, format!("self-loop ({u}, {v})"))
                        .at_vertex(u)
                        .at_offset(i as u64),
                );
            } else if u > v {
                report.push(
                    Violation::new(Rule::ListSorted, format!("edge ({u}, {v}) not (min, max)"))
                        .at_offset(i as u64),
                );
            }
            if u >= n || v >= n {
                report.push(
                    Violation::new(
                        Rule::NeighborInBounds,
                        format!("edge ({u}, {v}) out of range for {n} vertices"),
                    )
                    .at_offset(i as u64),
                );
            }
        }
        report
    }

    /// Checks that a [`Relabeling`] is a bijective permutation: both
    /// directions sized `n` and exact mutual inverses.
    pub fn check_relabeling(&self, r: &Relabeling) -> Report {
        let mut report = Report::new();
        let fwd = r.old_to_new();
        let inv = r.new_to_old();
        if fwd.len() != inv.len() {
            report.push(Violation::new(
                Rule::RelabelingBijective,
                format!(
                    "old→new has {} entries, new→old has {}",
                    fwd.len(),
                    inv.len()
                ),
            ));
            return report;
        }
        let n = fwd.len() as u64;
        for (old, &new) in fwd.iter().enumerate() {
            if (new as u64) >= n {
                report.push(
                    Violation::new(
                        Rule::RelabelingBijective,
                        format!("new ID {new} out of range 0..{n}"),
                    )
                    .at_vertex(old as u32),
                );
            } else if inv[new as usize] as usize != old {
                report.push(
                    Violation::new(
                        Rule::RelabelingBijective,
                        format!(
                            "old {old} → new {new}, but new {new} → old {}",
                            inv[new as usize]
                        ),
                    )
                    .at_vertex(old as u32),
                );
            }
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lotus_graph::builder::graph_from_edges;

    fn k4() -> UndirectedCsr {
        graph_from_edges([(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)])
    }

    #[test]
    fn clean_graph_passes() {
        let r = Validator::new().check_undirected(&k4());
        assert!(r.is_clean(), "{r}");
    }

    #[test]
    fn empty_graph_passes() {
        let g = graph_from_edges(std::iter::empty());
        assert!(Validator::new().check_undirected(&g).is_clean());
    }

    #[test]
    fn unsorted_list_is_caught_with_location() {
        // Vertex 0's list [2, 1] is unsorted.
        let csr = Csr::<u32>::from_adjacency(vec![vec![2, 1], vec![2], vec![0, 1]]);
        let r = Validator::directed().check_csr(&csr, 3);
        let v = r
            .by_rule(Rule::ListSorted)
            .next()
            .expect("sorted violation");
        assert_eq!(v.vertex, Some(0));
        assert_eq!(v.offset, Some(1));
    }

    #[test]
    fn duplicate_and_self_loop_are_caught() {
        let csr = Csr::<u32>::from_adjacency(vec![vec![0, 1, 1], vec![0]]);
        let r = Validator::directed().check_csr(&csr, 2);
        assert_eq!(r.by_rule(Rule::NoSelfLoop).count(), 1);
        assert_eq!(r.by_rule(Rule::ListDeduplicated).count(), 1);
    }

    #[test]
    fn out_of_bounds_neighbor_is_caught() {
        let csr = Csr::<u32>::from_adjacency(vec![vec![5], vec![]]);
        let r = Validator::directed().check_csr(&csr, 2);
        assert_eq!(r.by_rule(Rule::NeighborInBounds).count(), 1);
    }

    #[test]
    fn broken_symmetry_is_caught() {
        // 0 lists 1, but 1's list is empty.
        let csr = Csr::<u32>::from_adjacency(vec![vec![1], vec![]]);
        let g = UndirectedCsr::from_csr_unchecked(csr, 1);
        let r = Validator::new().check_undirected(&g);
        assert!(r.by_rule(Rule::Symmetric).next().is_some(), "{r}");
        // And the entry count no longer matches 2·|E|.
        assert!(r.by_rule(Rule::EdgeCountConsistent).next().is_some(), "{r}");
    }

    #[test]
    fn forward_graph_passes_directed_checks() {
        let f = k4().forward_graph();
        assert!(Validator::directed().check_csr(&f, 4).is_clean());
    }

    #[test]
    fn canonical_edge_list_passes_and_raw_fails() {
        let mut el = EdgeList::from_pairs(vec![(1, 0), (2, 2), (0, 1)]);
        let raw = Validator::new().check_edge_list(&el);
        assert!(!raw.is_clean());
        el.canonicalize();
        assert!(Validator::new().check_edge_list(&el).is_clean());
    }

    #[test]
    fn relabeling_checks() {
        let good = Relabeling::hub_first(&[3, 1, 4, 1, 5], 2);
        assert!(Validator::new().check_relabeling(&good).is_clean());
        let id = Relabeling::identity(10);
        assert!(Validator::new().check_relabeling(&id).is_clean());
    }
}
