//! Machine-readable diagnostics produced by the validator.
//!
//! Every failed invariant becomes a [`Violation`] carrying the broken
//! [`Rule`], the vertex it anchors to, and (when meaningful) the offset
//! into the flat neighbour array — enough for tooling to jump straight to
//! the corrupt entry. A [`Report`] aggregates violations and caps how
//! many it materializes so validating a thoroughly broken multi-gigabyte
//! graph cannot exhaust memory.

use std::fmt;

use lotus_graph::VertexId;

/// A structural invariant checked by the validator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Rule {
    /// CSX offsets must be non-decreasing, start at 0, and end at the
    /// entry count.
    OffsetsMonotonic,
    /// Every neighbour ID must be `< num_vertices` (or the stated bound).
    NeighborInBounds,
    /// Every neighbour list must be sorted ascending.
    ListSorted,
    /// Neighbour lists must not contain duplicate entries.
    ListDeduplicated,
    /// A vertex must not list itself as a neighbour.
    NoSelfLoop,
    /// `UndirectedCsr`: if `u` lists `v`, `v` must list `u`.
    Symmetric,
    /// `UndirectedCsr`: stored entries must equal `2 · num_edges`.
    EdgeCountConsistent,
    /// `UndirectedCsr`: `lower_neighbors(v)` must be exactly the `< v`
    /// prefix of the sorted list (the `N⁻` Forward orientation).
    LowerPrefix,
    /// A relabeling must be a bijective permutation of `0..n`.
    RelabelingBijective,
    /// LOTUS hub IDs must fit 16 bits (`hub_count ≤ 2¹⁶`) and every HE
    /// entry must be a hub.
    HubIdFitsU16,
    /// HE entries must be hubs `< v`; NHE entries must be non-hubs `< v`;
    /// hubs must have empty NHE lists.
    HubCutoffRespected,
    /// H2H bits must correspond exactly to hub–hub HE edges.
    H2HConsistent,
    /// HE + NHE edges must sum to the source graph's edge count.
    EdgePartitionExact,
    /// The per-type triangle counts (HHH, HHN, HNN, NNN) must sum to the
    /// reference total.
    PhaseSumMatchesTotal,
    /// Two triangle-counting implementations returned different totals.
    CountDisagreement,
}

impl Rule {
    /// Stable machine-readable rule name (kebab-case).
    pub fn name(self) -> &'static str {
        match self {
            Rule::OffsetsMonotonic => "offsets-monotonic",
            Rule::NeighborInBounds => "neighbor-in-bounds",
            Rule::ListSorted => "list-sorted",
            Rule::ListDeduplicated => "list-deduplicated",
            Rule::NoSelfLoop => "no-self-loop",
            Rule::Symmetric => "symmetric",
            Rule::EdgeCountConsistent => "edge-count-consistent",
            Rule::LowerPrefix => "lower-prefix",
            Rule::RelabelingBijective => "relabeling-bijective",
            Rule::HubIdFitsU16 => "hub-id-fits-u16",
            Rule::HubCutoffRespected => "hub-cutoff-respected",
            Rule::H2HConsistent => "h2h-consistent",
            Rule::EdgePartitionExact => "edge-partition-exact",
            Rule::PhaseSumMatchesTotal => "phase-sum-matches-total",
            Rule::CountDisagreement => "count-disagreement",
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One broken invariant, anchored to a location in the structure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The rule that failed.
    pub rule: Rule,
    /// The vertex the violation anchors to, when the rule is per-vertex.
    pub vertex: Option<VertexId>,
    /// Offset into the flat neighbour array, when the rule is per-entry.
    pub offset: Option<u64>,
    /// Human-readable detail (values involved, expectation vs reality).
    pub detail: String,
}

impl Violation {
    /// A violation with rule and detail only.
    pub fn new(rule: Rule, detail: impl Into<String>) -> Self {
        Self {
            rule,
            vertex: None,
            offset: None,
            detail: detail.into(),
        }
    }

    /// Anchors the violation to a vertex.
    #[must_use]
    pub fn at_vertex(mut self, v: VertexId) -> Self {
        self.vertex = Some(v);
        self
    }

    /// Anchors the violation to a flat-array offset.
    #[must_use]
    pub fn at_offset(mut self, o: u64) -> Self {
        self.offset = Some(o);
        self
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}]", self.rule)?;
        if let Some(v) = self.vertex {
            write!(f, " vertex {v}")?;
        }
        if let Some(o) = self.offset {
            write!(f, " offset {o}")?;
        }
        write!(f, ": {}", self.detail)
    }
}

/// Maximum violations a [`Report`] materializes; further failures are
/// only counted.
pub const MAX_RECORDED: usize = 100;

/// Aggregated validation outcome.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Report {
    violations: Vec<Violation>,
    /// Total violations found, including ones beyond [`MAX_RECORDED`].
    total: usize,
}

impl Report {
    /// An empty (clean) report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a violation (dropped beyond [`MAX_RECORDED`], but always
    /// counted).
    pub fn push(&mut self, v: Violation) {
        self.total += 1;
        if self.violations.len() < MAX_RECORDED {
            self.violations.push(v);
        }
    }

    /// Absorbs another report.
    pub fn merge(&mut self, other: Report) {
        self.total += other.total;
        let room = MAX_RECORDED.saturating_sub(self.violations.len());
        self.violations
            .extend(other.violations.into_iter().take(room));
    }

    /// True when no invariant failed.
    pub fn is_clean(&self) -> bool {
        self.total == 0
    }

    /// Total number of violations found (recorded or not).
    pub fn len(&self) -> usize {
        self.total
    }

    /// True when no invariant failed (mirrors [`Report::is_clean`]).
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// The recorded violations (at most [`MAX_RECORDED`]).
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// Violations matching a specific rule.
    pub fn by_rule(&self, rule: Rule) -> impl Iterator<Item = &Violation> {
        self.violations.iter().filter(move |v| v.rule == rule)
    }

    /// Converts to `Err(self)` when violations exist.
    ///
    /// # Errors
    /// Returns `Err(self)` when the report contains violations.
    pub fn into_result(self) -> Result<(), Report> {
        if self.is_clean() {
            Ok(())
        } else {
            Err(self)
        }
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_clean() {
            return write!(f, "ok: no violations");
        }
        writeln!(f, "{} violation(s):", self.total)?;
        for v in &self.violations {
            writeln!(f, "  {v}")?;
        }
        if self.total > self.violations.len() {
            writeln!(f, "  ... and {} more", self.total - self.violations.len())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn violation_display_includes_anchors() {
        let v = Violation::new(Rule::ListSorted, "7 after 9")
            .at_vertex(3)
            .at_offset(12);
        let s = v.to_string();
        assert!(s.contains("list-sorted"), "{s}");
        assert!(s.contains("vertex 3"), "{s}");
        assert!(s.contains("offset 12"), "{s}");
    }

    #[test]
    fn report_caps_recorded_violations() {
        let mut r = Report::new();
        for i in 0..(MAX_RECORDED + 50) {
            r.push(Violation::new(Rule::NoSelfLoop, format!("{i}")));
        }
        assert_eq!(r.len(), MAX_RECORDED + 50);
        assert_eq!(r.violations().len(), MAX_RECORDED);
        assert!(r.to_string().contains("and 50 more"));
    }

    #[test]
    fn merge_accumulates_totals() {
        let mut a = Report::new();
        a.push(Violation::new(Rule::Symmetric, "x"));
        let mut b = Report::new();
        b.push(Violation::new(Rule::NoSelfLoop, "y"));
        a.merge(b);
        assert_eq!(a.len(), 2);
        assert!(a.by_rule(Rule::Symmetric).count() == 1);
        assert!(a.into_result().is_err());
    }

    #[test]
    fn clean_report_is_ok() {
        let r = Report::new();
        assert!(r.is_clean());
        assert!(r.is_empty());
        assert_eq!(r.to_string(), "ok: no violations");
        assert!(r.into_result().is_ok());
    }

    #[test]
    fn rule_names_are_unique() {
        let all = [
            Rule::OffsetsMonotonic,
            Rule::NeighborInBounds,
            Rule::ListSorted,
            Rule::ListDeduplicated,
            Rule::NoSelfLoop,
            Rule::Symmetric,
            Rule::EdgeCountConsistent,
            Rule::LowerPrefix,
            Rule::RelabelingBijective,
            Rule::HubIdFitsU16,
            Rule::HubCutoffRespected,
            Rule::H2HConsistent,
            Rule::EdgePartitionExact,
            Rule::PhaseSumMatchesTotal,
            Rule::CountDisagreement,
        ];
        let names: std::collections::HashSet<_> = all.iter().map(|r| r.name()).collect();
        assert_eq!(names.len(), all.len());
    }
}
