//! Hand-rolled argument parsing (no external CLI dependency).

use std::fmt;

use lotus_resilience::MemoryBudget;

/// Usage text shown by `lotus help`.
pub const USAGE: &str = "\
lotus — locality-optimizing triangle counting (PPoPP'22 reproduction)

USAGE:
  lotus count <graph> [--algorithm lotus|forward|edge-iterator|gbbs|bbtc|adaptive]
                      [--hubs N] [--per-vertex] [--timeout SECS]
                      [--mem-budget SIZE] [--strict] [--threads N]
  lotus analyze [graph] <graph> [--hub-fraction F]
  lotus analyze lint [--waivers FILE] [--json FILE] [--deny-stale]
  lotus analyze race [--seeds A,B,C] [--json FILE]
  lotus analyze locks [--waivers FILE] [--json FILE]
  lotus generate <rmat|ba|er|ws> --scale S [--edge-factor F] [--seed X]
                 [--params social|web|mild] -o <file>
  lotus convert <input> <output> [--strict]
  lotus check <graph> [--hubs N] [--differential]
  lotus bench [--suite ci|small|full] [--json FILE] [--threads N]
  lotus bench compare <baseline.json> <current.json> [--tolerance F]
  lotus serve [--bind ADDR] [--port P] [--workers N] [--queue N]
              [--mem-budget SIZE] [--preload NAME=SPEC]...
              [--data-dir DIR] [--snapshot-interval SECS]
              [--event-threads N] [--max-conns N]
  lotus serve recover <data-dir> [--dry-run] [--json FILE]
  lotus cluster serve [--bind ADDR] [--port P] [--shard ADDR]...
                      [--data-dir DIR] [--deadline-ms MS]
                      [--allow-partial] [--retry-seed S]
  lotus cluster shard [serve flags] [--coordinator ADDR]
  lotus cluster query <addr> <action> (alias of lotus query)
  lotus query <addr> <ping|stats|drain|count NAME|per-vertex NAME
              [--range A..B]|kclique NAME K|load NAME SPEC|evict NAME
              |shard-stat|join ADDR> [--deadline-ms MS]
  lotus loadgen <addr> [--suite ci] [--connections N] [--requests M]
                [--seed S] [--graph SPEC] [--json FILE] [--pipeline P]
                [--legacy-threads] [--cluster]
  lotus help

Graph files: whitespace edge lists (any extension) or binary .lotg files.
--timeout interrupts the run cooperatively (exit code 124); --mem-budget
(e.g. 512m, 2g) degrades LOTUS to fit; --strict rejects text edge lists
with trailing garbage tokens instead of warning. --threads pins the
counting pool size (default: one worker per core).

bench runs a named dataset x algorithm suite (default ci) and, with
--json, writes the machine-readable BENCH.json artifact (schema v1,
documented in EXPERIMENTS.md). bench compare diffs two artifacts and
fails (exit 1) on triangle-count changes, missing runs, or wall-time
regressions beyond --tolerance (fractional, default 0.25 = +25%).
Builds without `--features telemetry` report all work counters as 0.

serve with --data-dir persists registered graphs (snapshots plus a
write-ahead manifest journal) and replays them on restart, quarantining
any torn or corrupt file instead of refusing to start;
--snapshot-interval bounds how often the journal is compacted. serve
recover replays a data directory offline and prints the recovery
report as JSON without starting a daemon (--dry-run also skips
quarantining and compaction).

serve multiplexes connections over a small set of readiness event
loops: --event-threads sizes the loop set (default: cores/4, max 4)
and --max-conns caps concurrently open connections (default 4096,
excess is refused with a structured Overloaded frame). loadgen drives
all connections through one multiplexed event loop; --pipeline keeps P
requests in flight per connection (default 1) and --legacy-threads
falls back to the old thread-per-connection driver.

cluster serve runs the fan-out coordinator (DESIGN.md §16): it fronts
the shard daemons named by repeatable --shard flags (more can join at
runtime via `lotus query <coordinator> join ADDR`), speaks the same
LSRV protocol as serve, and answers Count/PerVertex by summing exact
per-shard counts. --data-dir journals the shard map so a restarted
coordinator reconverges; --deadline-ms caps fan-out when a request
carries no deadline; --allow-partial degrades to a partial sum
(marked uncached) instead of failing when a shard is down. cluster
shard is serve plus an optional --coordinator ADDR to self-register
after binding. query shard-stat aggregates shard occupancy; query
join registers a shard endpoint with a coordinator. loadgen --cluster
drives a coordinator with a shard-safe mix (no k-clique, which
cluster mode rejects) and writes the BENCH artifact section under
\"cluster\" instead of \"serve\".

analyze lint runs the project-rule source lint over the workspace
(run from the repo root) against the checked-in waiver file; stale
waivers are reported but only fail the gate under --deny-stale.
analyze race replays every parallel kernel under seeded deterministic
schedules and fails on shadow-log races or order-dependent results.
analyze locks builds the static cross-crate lock-order graph and
fails on ordering cycles (ABBA candidates), blocking calls under a
live guard, double acquisition, or a planted control that does not
fire. All three gates share `lotus check`'s exit-code contract:
0 clean, 1 violations found, 2 usage error.

Exit codes: 0 success (including degraded runs), 1 runtime error or
violations found, 2 usage error, 101 isolated worker panic,
124 interrupted.";

/// A parsed subcommand.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `lotus count`.
    Count(CountArgs),
    /// `lotus analyze`.
    Analyze(AnalyzeArgs),
    /// `lotus generate`.
    Generate(GenerateArgs),
    /// `lotus convert`.
    Convert(ConvertArgs),
    /// `lotus check`.
    Check(CheckArgs),
    /// `lotus bench` (suite run or `compare`).
    Bench(BenchArgs),
    /// `lotus serve`.
    Serve(ServeCliArgs),
    /// `lotus serve recover`: offline durability-state inspection.
    ServeRecover(ServeRecoverArgs),
    /// `lotus cluster serve`: the fan-out coordinator daemon.
    ClusterServe(ClusterServeArgs),
    /// `lotus cluster shard`: a shard daemon, optionally self-registering.
    ClusterShard(ClusterShardArgs),
    /// `lotus query`.
    Query(QueryArgs),
    /// `lotus loadgen`.
    Loadgen(LoadgenCliArgs),
    /// `lotus help`.
    Help,
}

/// Arguments of `lotus serve`.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeCliArgs {
    /// Bind address (default `127.0.0.1`).
    pub bind: String,
    /// TCP port; 0 picks an ephemeral port.
    pub port: u16,
    /// Worker threads; 0 means one per core.
    pub workers: usize,
    /// Queue capacity; 0 means 4x workers.
    pub queue: usize,
    /// Registry memory budget (default 512m).
    pub mem_budget: Option<MemoryBudget>,
    /// Graphs to build before accepting connections (`--preload NAME=SPEC`).
    pub preload: Vec<(String, String)>,
    /// Durability directory (`--data-dir`); `None` = in-memory only.
    pub data_dir: Option<String>,
    /// Seconds between journal checkpoints (`--snapshot-interval`);
    /// `None` = checkpoint only at shutdown.
    pub snapshot_interval_secs: Option<u64>,
    /// Event-loop threads (`--event-threads`); 0 means cores/4 (max 4).
    pub event_threads: usize,
    /// Open-connection cap (`--max-conns`); 0 means 4096.
    pub max_conns: usize,
}

/// Arguments of `lotus cluster serve`.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterServeArgs {
    /// Bind address (default `127.0.0.1`).
    pub bind: String,
    /// TCP port; 0 picks an ephemeral port.
    pub port: u16,
    /// Shard daemon endpoints to join at startup (`--shard ADDR`, repeatable).
    pub shards: Vec<String>,
    /// Shard-map journal directory (`--data-dir`); `None` = in-memory only.
    pub data_dir: Option<String>,
    /// Fan-out deadline for requests that carry none (`--deadline-ms`).
    pub deadline_ms: Option<u64>,
    /// Degrade to partial sums instead of failing when a shard is down.
    pub allow_partial: bool,
    /// Seed for the shard-dial retry backoff (`--retry-seed`).
    pub retry_seed: Option<u64>,
}

/// Arguments of `lotus cluster shard`: a full serve daemon plus an
/// optional coordinator to self-register with once bound.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterShardArgs {
    /// The underlying daemon configuration (same flags as `lotus serve`).
    pub serve: ServeCliArgs,
    /// Coordinator address to send `ShardJoin` to (`--coordinator`).
    pub coordinator: Option<String>,
}

/// Arguments of `lotus serve recover`.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeRecoverArgs {
    /// The daemon data directory to replay.
    pub data_dir: String,
    /// Report only: quarantine nothing, compact nothing.
    pub dry_run: bool,
    /// Where to write the recovery report JSON, if anywhere.
    pub json: Option<String>,
}

/// Arguments of `lotus query`: target address plus one action.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryArgs {
    /// Daemon address (`host:port`).
    pub addr: String,
    /// What to ask the daemon.
    pub action: QueryAction,
    /// Optional cooperative deadline in milliseconds.
    pub deadline_ms: Option<u64>,
}

/// The single request a `lotus query` invocation issues.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryAction {
    /// Liveness probe.
    Ping,
    /// Daemon statistics.
    Stats,
    /// Graceful shutdown.
    Drain,
    /// Total triangle count of a registered graph.
    Count {
        /// Registered name or graph spec.
        name: String,
    },
    /// Per-vertex triangle counts over a vertex range.
    PerVertex {
        /// Registered name or graph spec.
        name: String,
        /// Half-open vertex range (`--range A..B`); `None` = default span.
        range: Option<(u32, u32)>,
    },
    /// k-clique count of a registered graph.
    KClique {
        /// Registered name or graph spec.
        name: String,
        /// Clique size.
        k: u32,
    },
    /// Admin: build and register a graph.
    Load {
        /// Registry name.
        name: String,
        /// Graph spec (`path:...`, `rmat:...`, `er:...`).
        spec: String,
    },
    /// Admin: drop a registered graph.
    Evict {
        /// Registry name.
        name: String,
    },
    /// Cluster: aggregated shard occupancy (fleet fan-out).
    ShardStat,
    /// Cluster admin: register a shard endpoint with a coordinator.
    Join {
        /// Shard daemon address (`host:port`).
        addr: String,
    },
}

/// Arguments of `lotus loadgen`.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadgenCliArgs {
    /// Daemon address (`host:port`).
    pub addr: String,
    /// Named suite preset (`ci`), if any.
    pub suite: Option<String>,
    /// Concurrent connections (default 4).
    pub connections: Option<usize>,
    /// Requests per connection (default 50).
    pub requests: Option<usize>,
    /// Mix seed (default 42).
    pub seed: Option<u64>,
    /// Graph spec the run warms and queries (default `rmat:9:8:7`).
    pub graph: Option<String>,
    /// Per-request deadline in milliseconds, if any.
    pub deadline_ms: Option<u64>,
    /// Where to write the BENCH-schema `serve` artifact, if anywhere.
    pub json: Option<String>,
    /// In-flight requests per connection (`--pipeline`, default 1).
    pub pipeline: Option<usize>,
    /// Use the legacy thread-per-connection driver (`--legacy-threads`).
    pub legacy_threads: bool,
    /// Target is a cluster coordinator (`--cluster`): use the
    /// shard-safe request mix and write the `cluster` artifact section.
    pub cluster: bool,
}

/// Arguments of `lotus bench`.
#[derive(Debug, Clone, PartialEq)]
pub enum BenchArgs {
    /// Run a named suite, optionally writing `BENCH.json`.
    Run(BenchRunArgs),
    /// Diff two `BENCH.json` artifacts and gate on regressions.
    Compare(BenchCompareArgs),
}

/// Arguments of a `lotus bench` suite run.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRunArgs {
    /// Suite name (`ci`, `small`, `full`).
    pub suite: String,
    /// Where to write the `BENCH.json` artifact, if anywhere.
    pub json: Option<String>,
    /// Thread-pool size override (`--threads`); `None` = one per core.
    pub threads: Option<usize>,
}

/// Arguments of `lotus bench compare`.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchCompareArgs {
    /// Baseline artifact path.
    pub baseline: String,
    /// Current artifact path.
    pub current: String,
    /// Fractional wall-time tolerance (0.25 = +25%).
    pub tolerance: f64,
}

/// Arguments of `lotus count`.
#[derive(Debug, Clone, PartialEq)]
pub struct CountArgs {
    /// Input graph path.
    pub input: String,
    /// Algorithm name (default `lotus`).
    pub algorithm: String,
    /// Optional fixed hub count.
    pub hubs: Option<u32>,
    /// Also print the 10 vertices with most triangles.
    pub per_vertex: bool,
    /// Cooperative deadline in seconds (`--timeout`).
    pub timeout: Option<f64>,
    /// Memory budget for the counting structures (`--mem-budget`).
    pub mem_budget: Option<MemoryBudget>,
    /// Reject (rather than warn about) malformed edge-list lines.
    pub strict: bool,
    /// Thread-pool size override (`--threads`); `None` = one per core.
    pub threads: Option<usize>,
}

/// Arguments of `lotus analyze`: a graph analysis or one of the two
/// static-analysis gates.
#[derive(Debug, Clone, PartialEq)]
pub enum AnalyzeArgs {
    /// `lotus analyze [graph] <path>` — the §3 hub/topology analysis.
    Graph(AnalyzeGraphArgs),
    /// `lotus analyze lint` — the project-rule source lint gate.
    Lint(AnalyzeLintArgs),
    /// `lotus analyze race` — the deterministic-schedule race checker.
    Race(AnalyzeRaceArgs),
    /// `lotus analyze locks` — the static lock-discipline gate.
    Locks(AnalyzeLocksArgs),
}

/// Arguments of `lotus analyze [graph] <path>`.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalyzeGraphArgs {
    /// Input graph path.
    pub input: String,
    /// Hub fraction for the §3 analysis (default 0.01).
    pub hub_fraction: f64,
}

/// Arguments of `lotus analyze lint`.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalyzeLintArgs {
    /// Waiver file path (default `analyzer-waivers.json`).
    pub waivers: Option<String>,
    /// Where to write the JSON diagnostics artifact, if anywhere.
    pub json: Option<String>,
    /// Fail (exit 1) on stale waivers instead of just reporting them.
    pub deny_stale: bool,
}

/// Arguments of `lotus analyze locks`.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalyzeLocksArgs {
    /// Waiver file path (default `analyzer-waivers.json`).
    pub waivers: Option<String>,
    /// Where to write the JSON lock-graph artifact, if anywhere.
    pub json: Option<String>,
}

/// Arguments of `lotus analyze race`.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalyzeRaceArgs {
    /// Schedule seeds (`--seeds 7,42,3` — empty means the fixed CI set).
    pub seeds: Vec<u64>,
    /// Where to write the JSON report artifact, if anywhere.
    pub json: Option<String>,
}

/// Arguments of `lotus generate`.
#[derive(Debug, Clone, PartialEq)]
pub struct GenerateArgs {
    /// Generator kind: `rmat`, `ba`, `er`, `ws`.
    pub kind: String,
    /// log2 vertex count.
    pub scale: u32,
    /// Edges per vertex (default 16).
    pub edge_factor: u32,
    /// Seed (default 42).
    pub seed: u64,
    /// R-MAT parameter preset.
    pub params: String,
    /// Output path.
    pub output: String,
}

/// Arguments of `lotus convert`.
#[derive(Debug, Clone, PartialEq)]
pub struct ConvertArgs {
    /// Input path.
    pub input: String,
    /// Output path.
    pub output: String,
    /// Reject (rather than warn about) malformed edge-list lines.
    pub strict: bool,
}

/// Arguments of `lotus check`.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckArgs {
    /// Input graph path.
    pub input: String,
    /// Optional fixed hub count for the LOTUS structure checks.
    pub hubs: Option<u32>,
    /// Also run the full differential oracle (every algorithm).
    pub differential: bool,
}

/// Parse failure with a user-facing message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError(pub String);

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}\n\n{USAGE}", self.0)
    }
}

fn take_value<'a>(
    flag: &str,
    it: &mut impl Iterator<Item = &'a str>,
) -> Result<String, ParseError> {
    it.next()
        .map(str::to_string)
        .ok_or_else(|| ParseError(format!("{flag} requires a value")))
}

fn parse_num<T: std::str::FromStr>(flag: &str, value: &str) -> Result<T, ParseError> {
    value
        .parse()
        .map_err(|_| ParseError(format!("invalid value '{value}' for {flag}")))
}

fn parse_threads<'a>(it: &mut impl Iterator<Item = &'a str>) -> Result<usize, ParseError> {
    let n: usize = parse_num("--threads", &take_value("--threads", it)?)?;
    if n == 0 {
        return Err(ParseError("--threads must be at least 1".into()));
    }
    Ok(n)
}

/// Parses an argument vector (without the program name).
///
/// # Errors
/// Returns a [`ParseError`] naming the first unknown command, unknown
/// flag, or invalid value.
pub fn parse(argv: &[&str]) -> Result<Command, ParseError> {
    let mut it = argv.iter().copied();
    let sub = it
        .next()
        .ok_or_else(|| ParseError("missing subcommand".into()))?;
    match sub {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "count" => {
            let mut input = None;
            let mut algorithm = "lotus".to_string();
            let mut hubs = None;
            let mut per_vertex = false;
            let mut timeout = None;
            let mut mem_budget = None;
            let mut strict = false;
            let mut threads = None;
            while let Some(arg) = it.next() {
                match arg {
                    "--algorithm" | "-a" => algorithm = take_value(arg, &mut it)?,
                    "--threads" => threads = Some(parse_threads(&mut it)?),
                    "--hubs" => hubs = Some(parse_num(arg, &take_value(arg, &mut it)?)?),
                    "--per-vertex" => per_vertex = true,
                    "--timeout" => {
                        let secs: f64 = parse_num(arg, &take_value(arg, &mut it)?)?;
                        if !(secs.is_finite() && secs >= 0.0) {
                            return Err(ParseError(
                                "--timeout must be a non-negative number of seconds".into(),
                            ));
                        }
                        timeout = Some(secs);
                    }
                    "--mem-budget" => {
                        let value = take_value(arg, &mut it)?;
                        mem_budget = Some(
                            MemoryBudget::parse(&value)
                                .map_err(|e| ParseError(format!("--mem-budget: {e}")))?,
                        );
                    }
                    "--strict" => strict = true,
                    _ if input.is_none() && !arg.starts_with('-') => {
                        input = Some(arg.to_string());
                    }
                    _ => return Err(ParseError(format!("unexpected argument '{arg}'"))),
                }
            }
            let input = input.ok_or_else(|| ParseError("count: missing graph path".into()))?;
            Ok(Command::Count(CountArgs {
                input,
                algorithm,
                hubs,
                per_vertex,
                timeout,
                mem_budget,
                strict,
                threads,
            }))
        }
        "analyze" => {
            let rest: Vec<&str> = it.collect();
            match rest.first().copied() {
                Some("lint") => {
                    let mut waivers = None;
                    let mut json = None;
                    let mut deny_stale = false;
                    let mut it = rest[1..].iter().copied();
                    while let Some(arg) = it.next() {
                        match arg {
                            "--waivers" | "-w" => waivers = Some(take_value(arg, &mut it)?),
                            "--json" | "-j" => json = Some(take_value(arg, &mut it)?),
                            "--deny-stale" => deny_stale = true,
                            _ => return Err(ParseError(format!("unexpected argument '{arg}'"))),
                        }
                    }
                    Ok(Command::Analyze(AnalyzeArgs::Lint(AnalyzeLintArgs {
                        waivers,
                        json,
                        deny_stale,
                    })))
                }
                Some("locks") => {
                    let mut waivers = None;
                    let mut json = None;
                    let mut it = rest[1..].iter().copied();
                    while let Some(arg) = it.next() {
                        match arg {
                            "--waivers" | "-w" => waivers = Some(take_value(arg, &mut it)?),
                            "--json" | "-j" => json = Some(take_value(arg, &mut it)?),
                            _ => return Err(ParseError(format!("unexpected argument '{arg}'"))),
                        }
                    }
                    Ok(Command::Analyze(AnalyzeArgs::Locks(AnalyzeLocksArgs {
                        waivers,
                        json,
                    })))
                }
                Some("race") => {
                    let mut seeds = Vec::new();
                    let mut json = None;
                    let mut it = rest[1..].iter().copied();
                    while let Some(arg) = it.next() {
                        match arg {
                            "--seeds" | "-s" => {
                                let value = take_value(arg, &mut it)?;
                                for part in value.split(',') {
                                    seeds.push(parse_num(arg, part.trim())?);
                                }
                            }
                            "--json" | "-j" => json = Some(take_value(arg, &mut it)?),
                            _ => return Err(ParseError(format!("unexpected argument '{arg}'"))),
                        }
                    }
                    Ok(Command::Analyze(AnalyzeArgs::Race(AnalyzeRaceArgs {
                        seeds,
                        json,
                    })))
                }
                _ => {
                    // Bare `analyze <path>` keeps working; `analyze graph
                    // <path>` is the explicit spelling.
                    let args = if rest.first() == Some(&"graph") {
                        &rest[1..]
                    } else {
                        &rest[..]
                    };
                    let mut input = None;
                    let mut hub_fraction = 0.01f64;
                    let mut it = args.iter().copied();
                    while let Some(arg) = it.next() {
                        match arg {
                            "--hub-fraction" => {
                                hub_fraction = parse_num(arg, &take_value(arg, &mut it)?)?;
                            }
                            _ if input.is_none() && !arg.starts_with('-') => {
                                input = Some(arg.to_string());
                            }
                            _ => return Err(ParseError(format!("unexpected argument '{arg}'"))),
                        }
                    }
                    let input =
                        input.ok_or_else(|| ParseError("analyze: missing graph path".into()))?;
                    if !(hub_fraction > 0.0 && hub_fraction <= 1.0) {
                        return Err(ParseError("--hub-fraction must be in (0, 1]".into()));
                    }
                    Ok(Command::Analyze(AnalyzeArgs::Graph(AnalyzeGraphArgs {
                        input,
                        hub_fraction,
                    })))
                }
            }
        }
        "generate" => {
            let kind = it
                .next()
                .ok_or_else(|| ParseError("generate: missing kind (rmat|ba|er|ws)".into()))?
                .to_string();
            let mut scale = None;
            let mut edge_factor = 16u32;
            let mut seed = 42u64;
            let mut params = "social".to_string();
            let mut output = None;
            while let Some(arg) = it.next() {
                match arg {
                    "--scale" | "-s" => {
                        scale = Some(parse_num(arg, &take_value(arg, &mut it)?)?);
                    }
                    "--edge-factor" | "-e" => {
                        edge_factor = parse_num(arg, &take_value(arg, &mut it)?)?;
                    }
                    "--seed" => seed = parse_num(arg, &take_value(arg, &mut it)?)?,
                    "--params" => params = take_value(arg, &mut it)?,
                    "-o" | "--output" => output = Some(take_value(arg, &mut it)?),
                    _ => return Err(ParseError(format!("unexpected argument '{arg}'"))),
                }
            }
            let scale = scale.ok_or_else(|| ParseError("generate: --scale required".into()))?;
            let output = output.ok_or_else(|| ParseError("generate: -o <file> required".into()))?;
            if !["rmat", "ba", "er", "ws"].contains(&kind.as_str()) {
                return Err(ParseError(format!("unknown generator '{kind}'")));
            }
            if !["social", "web", "mild"].contains(&params.as_str()) {
                return Err(ParseError(format!("unknown params preset '{params}'")));
            }
            Ok(Command::Generate(GenerateArgs {
                kind,
                scale,
                edge_factor,
                seed,
                params,
                output,
            }))
        }
        "check" => {
            let mut input = None;
            let mut hubs = None;
            let mut differential = false;
            while let Some(arg) = it.next() {
                match arg {
                    "--hubs" => hubs = Some(parse_num(arg, &take_value(arg, &mut it)?)?),
                    "--differential" => differential = true,
                    _ if input.is_none() && !arg.starts_with('-') => {
                        input = Some(arg.to_string());
                    }
                    _ => return Err(ParseError(format!("unexpected argument '{arg}'"))),
                }
            }
            let input = input.ok_or_else(|| ParseError("check: missing graph path".into()))?;
            Ok(Command::Check(CheckArgs {
                input,
                hubs,
                differential,
            }))
        }
        "bench" => {
            let rest: Vec<&str> = it.collect();
            if rest.first() == Some(&"compare") {
                let mut tolerance = 0.25f64;
                let mut paths = Vec::new();
                let mut it = rest[1..].iter().copied();
                while let Some(arg) = it.next() {
                    match arg {
                        "--tolerance" | "-t" => {
                            tolerance = parse_num(arg, &take_value(arg, &mut it)?)?;
                            if !(tolerance.is_finite() && tolerance >= 0.0) {
                                return Err(ParseError(
                                    "--tolerance must be a non-negative fraction (0.25 = +25%)"
                                        .into(),
                                ));
                            }
                        }
                        _ if !arg.starts_with('-') => paths.push(arg.to_string()),
                        _ => return Err(ParseError(format!("unexpected argument '{arg}'"))),
                    }
                }
                let mut paths = paths.into_iter();
                let baseline = paths
                    .next()
                    .ok_or_else(|| ParseError("bench compare: missing baseline path".into()))?;
                let current = paths
                    .next()
                    .ok_or_else(|| ParseError("bench compare: missing current path".into()))?;
                if let Some(extra) = paths.next() {
                    return Err(ParseError(format!("unexpected argument '{extra}'")));
                }
                Ok(Command::Bench(BenchArgs::Compare(BenchCompareArgs {
                    baseline,
                    current,
                    tolerance,
                })))
            } else {
                let mut suite = "ci".to_string();
                let mut json = None;
                let mut threads = None;
                let mut it = rest.iter().copied();
                while let Some(arg) = it.next() {
                    match arg {
                        "--suite" | "-s" => suite = take_value(arg, &mut it)?,
                        "--json" | "-j" => json = Some(take_value(arg, &mut it)?),
                        "--threads" => threads = Some(parse_threads(&mut it)?),
                        _ => return Err(ParseError(format!("unexpected argument '{arg}'"))),
                    }
                }
                Ok(Command::Bench(BenchArgs::Run(BenchRunArgs {
                    suite,
                    json,
                    threads,
                })))
            }
        }
        "convert" => {
            let mut positional = Vec::new();
            let mut strict = false;
            for arg in it {
                match arg {
                    "--strict" => strict = true,
                    _ if !arg.starts_with('-') => positional.push(arg.to_string()),
                    _ => return Err(ParseError(format!("unexpected argument '{arg}'"))),
                }
            }
            let mut positional = positional.into_iter();
            let input = positional
                .next()
                .ok_or_else(|| ParseError("convert: missing input path".into()))?;
            let output = positional
                .next()
                .ok_or_else(|| ParseError("convert: missing output path".into()))?;
            if let Some(extra) = positional.next() {
                return Err(ParseError(format!("unexpected argument '{extra}'")));
            }
            Ok(Command::Convert(ConvertArgs {
                input,
                output,
                strict,
            }))
        }
        "serve" => {
            let rest: Vec<&str> = it.collect();
            // `serve recover` is its own verb (offline replay); every
            // other positional under `serve` stays an error.
            if rest.first().copied() == Some("recover") {
                let mut data_dir = None;
                let mut dry_run = false;
                let mut json = None;
                let mut it = rest[1..].iter().copied();
                while let Some(arg) = it.next() {
                    match arg {
                        "--dry-run" => dry_run = true,
                        "--json" | "-j" => json = Some(take_value(arg, &mut it)?),
                        _ if data_dir.is_none() && !arg.starts_with('-') => {
                            data_dir = Some(arg.to_string());
                        }
                        _ => return Err(ParseError(format!("unexpected argument '{arg}'"))),
                    }
                }
                let data_dir = data_dir
                    .ok_or_else(|| ParseError("serve recover: missing data directory".into()))?;
                return Ok(Command::ServeRecover(ServeRecoverArgs {
                    data_dir,
                    dry_run,
                    json,
                }));
            }
            let mut bind = "127.0.0.1".to_string();
            let mut port = 0u16;
            let mut workers = 0usize;
            let mut queue = 0usize;
            let mut mem_budget = None;
            let mut preload = Vec::new();
            let mut data_dir = None;
            let mut snapshot_interval_secs = None;
            let mut event_threads = 0usize;
            let mut max_conns = 0usize;
            let mut it = rest.iter().copied();
            while let Some(arg) = it.next() {
                match arg {
                    "--bind" | "-b" => bind = take_value(arg, &mut it)?,
                    "--event-threads" => {
                        event_threads = parse_num(arg, &take_value(arg, &mut it)?)?;
                    }
                    "--max-conns" => max_conns = parse_num(arg, &take_value(arg, &mut it)?)?,
                    "--port" | "-p" => port = parse_num(arg, &take_value(arg, &mut it)?)?,
                    "--workers" | "-w" => workers = parse_num(arg, &take_value(arg, &mut it)?)?,
                    "--queue" | "-q" => queue = parse_num(arg, &take_value(arg, &mut it)?)?,
                    "--mem-budget" => {
                        let value = take_value(arg, &mut it)?;
                        mem_budget = Some(
                            MemoryBudget::parse(&value)
                                .map_err(|e| ParseError(format!("--mem-budget: {e}")))?,
                        );
                    }
                    "--preload" => {
                        let value = take_value(arg, &mut it)?;
                        let (name, spec) = value.split_once('=').ok_or_else(|| {
                            ParseError(format!("--preload expects NAME=SPEC, got '{value}'"))
                        })?;
                        if name.is_empty() || spec.is_empty() {
                            return Err(ParseError(format!(
                                "--preload expects NAME=SPEC, got '{value}'"
                            )));
                        }
                        preload.push((name.to_string(), spec.to_string()));
                    }
                    "--data-dir" => data_dir = Some(take_value(arg, &mut it)?),
                    "--snapshot-interval" => {
                        snapshot_interval_secs = Some(parse_num(arg, &take_value(arg, &mut it)?)?);
                    }
                    _ => return Err(ParseError(format!("unexpected argument '{arg}'"))),
                }
            }
            Ok(Command::Serve(ServeCliArgs {
                bind,
                port,
                workers,
                queue,
                mem_budget,
                preload,
                data_dir,
                snapshot_interval_secs,
                event_threads,
                max_conns,
            }))
        }
        "query" => {
            let mut deadline_ms = None;
            let mut positional = Vec::new();
            while let Some(arg) = it.next() {
                match arg {
                    "--deadline-ms" | "-d" => {
                        deadline_ms = Some(parse_num(arg, &take_value(arg, &mut it)?)?);
                    }
                    "--range" | "-r" => positional.push(("--range", take_value(arg, &mut it)?)),
                    _ if !arg.starts_with('-') => positional.push(("", arg.to_string())),
                    _ => return Err(ParseError(format!("unexpected argument '{arg}'"))),
                }
            }
            let mut range = None;
            let mut words = Vec::new();
            for (flag, value) in positional {
                if flag == "--range" {
                    let (a, b) = value.split_once("..").ok_or_else(|| {
                        ParseError(format!("--range expects A..B, got '{value}'"))
                    })?;
                    let start: u32 = parse_num("--range", a)?;
                    let end: u32 = parse_num("--range", b)?;
                    if start > end {
                        return Err(ParseError(format!(
                            "--range start {start} exceeds end {end}"
                        )));
                    }
                    range = Some((start, end));
                } else {
                    words.push(value);
                }
            }
            let mut words = words.into_iter();
            let addr = words
                .next()
                .ok_or_else(|| ParseError("query: missing daemon address".into()))?;
            let verb = words
                .next()
                .ok_or_else(|| ParseError("query: missing action".into()))?;
            let mut need = |what: &str| {
                words
                    .next()
                    .ok_or_else(|| ParseError(format!("query {verb}: missing {what}")))
            };
            let action = match verb.as_str() {
                "ping" => QueryAction::Ping,
                "stats" => QueryAction::Stats,
                "drain" => QueryAction::Drain,
                "count" => QueryAction::Count {
                    name: need("graph name")?,
                },
                "per-vertex" => QueryAction::PerVertex {
                    name: need("graph name")?,
                    range,
                },
                "kclique" => {
                    let name = need("graph name")?;
                    let k = parse_num("kclique k", &need("clique size k")?)?;
                    QueryAction::KClique { name, k }
                }
                "load" => {
                    let name = need("graph name")?;
                    let spec = need("graph spec")?;
                    QueryAction::Load { name, spec }
                }
                "evict" => QueryAction::Evict {
                    name: need("graph name")?,
                },
                "shard-stat" => QueryAction::ShardStat,
                "join" => QueryAction::Join {
                    addr: need("shard address")?,
                },
                other => return Err(ParseError(format!("unknown query action '{other}'"))),
            };
            if range.is_some() && !matches!(action, QueryAction::PerVertex { .. }) {
                return Err(ParseError("--range only applies to per-vertex".into()));
            }
            if let Some(extra) = words.next() {
                return Err(ParseError(format!("unexpected argument '{extra}'")));
            }
            Ok(Command::Query(QueryArgs {
                addr,
                action,
                deadline_ms,
            }))
        }
        "loadgen" => {
            let mut addr = None;
            let mut suite = None;
            let mut connections = None;
            let mut requests = None;
            let mut seed = None;
            let mut graph = None;
            let mut deadline_ms = None;
            let mut json = None;
            let mut pipeline = None;
            let mut legacy_threads = false;
            let mut cluster = false;
            while let Some(arg) = it.next() {
                match arg {
                    "--suite" | "-s" => {
                        let value = take_value(arg, &mut it)?;
                        if value != "ci" {
                            return Err(ParseError(format!("unknown loadgen suite '{value}'")));
                        }
                        suite = Some(value);
                    }
                    "--pipeline" => {
                        let depth: usize = parse_num(arg, &take_value(arg, &mut it)?)?;
                        if depth == 0 {
                            return Err(ParseError("--pipeline must be at least 1".into()));
                        }
                        pipeline = Some(depth);
                    }
                    "--legacy-threads" => legacy_threads = true,
                    "--cluster" => cluster = true,
                    "--connections" | "-c" => {
                        connections = Some(parse_num(arg, &take_value(arg, &mut it)?)?);
                    }
                    "--requests" | "-n" => {
                        requests = Some(parse_num(arg, &take_value(arg, &mut it)?)?);
                    }
                    "--seed" => seed = Some(parse_num(arg, &take_value(arg, &mut it)?)?),
                    "--graph" | "-g" => graph = Some(take_value(arg, &mut it)?),
                    "--deadline-ms" | "-d" => {
                        deadline_ms = Some(parse_num(arg, &take_value(arg, &mut it)?)?);
                    }
                    "--json" | "-j" => json = Some(take_value(arg, &mut it)?),
                    _ if addr.is_none() && !arg.starts_with('-') => {
                        addr = Some(arg.to_string());
                    }
                    _ => return Err(ParseError(format!("unexpected argument '{arg}'"))),
                }
            }
            let addr = addr.ok_or_else(|| ParseError("loadgen: missing daemon address".into()))?;
            Ok(Command::Loadgen(LoadgenCliArgs {
                addr,
                suite,
                connections,
                requests,
                seed,
                graph,
                deadline_ms,
                json,
                pipeline,
                legacy_threads,
                cluster,
            }))
        }
        "cluster" => {
            let rest: Vec<&str> = it.collect();
            match rest.first().copied() {
                Some("serve") => {
                    let mut bind = "127.0.0.1".to_string();
                    let mut port = 0u16;
                    let mut shards = Vec::new();
                    let mut data_dir = None;
                    let mut deadline_ms = None;
                    let mut allow_partial = false;
                    let mut retry_seed = None;
                    let mut it = rest[1..].iter().copied();
                    while let Some(arg) = it.next() {
                        match arg {
                            "--bind" | "-b" => bind = take_value(arg, &mut it)?,
                            "--port" | "-p" => port = parse_num(arg, &take_value(arg, &mut it)?)?,
                            "--shard" => shards.push(take_value(arg, &mut it)?),
                            "--data-dir" => data_dir = Some(take_value(arg, &mut it)?),
                            "--deadline-ms" | "-d" => {
                                deadline_ms = Some(parse_num(arg, &take_value(arg, &mut it)?)?);
                            }
                            "--allow-partial" => allow_partial = true,
                            "--retry-seed" => {
                                retry_seed = Some(parse_num(arg, &take_value(arg, &mut it)?)?);
                            }
                            _ => return Err(ParseError(format!("unexpected argument '{arg}'"))),
                        }
                    }
                    Ok(Command::ClusterServe(ClusterServeArgs {
                        bind,
                        port,
                        shards,
                        data_dir,
                        deadline_ms,
                        allow_partial,
                        retry_seed,
                    }))
                }
                Some("shard") => {
                    // Peel --coordinator, forward everything else to the
                    // serve parser so the two verbs never drift apart.
                    let mut coordinator = None;
                    let mut forwarded = vec!["serve"];
                    let mut i = 1;
                    while i < rest.len() {
                        if rest[i] == "--coordinator" {
                            i += 1;
                            let addr = rest.get(i).copied().ok_or_else(|| {
                                ParseError("--coordinator requires a value".into())
                            })?;
                            coordinator = Some(addr.to_string());
                        } else {
                            forwarded.push(rest[i]);
                        }
                        i += 1;
                    }
                    match parse(&forwarded)? {
                        Command::Serve(serve) => Ok(Command::ClusterShard(ClusterShardArgs {
                            serve,
                            coordinator,
                        })),
                        _ => Err(ParseError("unexpected argument 'recover'".into())),
                    }
                }
                Some("query") => {
                    // Same wire protocol as a single daemon: alias.
                    let mut forwarded = vec!["query"];
                    forwarded.extend(rest[1..].iter().copied());
                    parse(&forwarded)
                }
                Some(other) => Err(ParseError(format!("unknown cluster verb '{other}'"))),
                None => Err(ParseError("cluster: missing verb (serve|shard|query)".into())),
            }
        }
        other => Err(ParseError(format!("unknown subcommand '{other}'"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_count_defaults() {
        let c = parse(&["count", "g.txt"]).unwrap();
        assert_eq!(
            c,
            Command::Count(CountArgs {
                input: "g.txt".into(),
                algorithm: "lotus".into(),
                hubs: None,
                per_vertex: false,
                timeout: None,
                mem_budget: None,
                strict: false,
                threads: None,
            })
        );
    }

    #[test]
    fn parses_count_flags() {
        let c = parse(&[
            "count",
            "g.lotg",
            "--algorithm",
            "forward",
            "--hubs",
            "512",
            "--per-vertex",
        ])
        .unwrap();
        match c {
            Command::Count(a) => {
                assert_eq!(a.algorithm, "forward");
                assert_eq!(a.hubs, Some(512));
                assert!(a.per_vertex);
            }
            _ => panic!("wrong command"),
        }
    }

    #[test]
    fn parses_resilience_flags() {
        let c = parse(&[
            "count",
            "g.lotg",
            "--timeout",
            "2.5",
            "--mem-budget",
            "512m",
            "--strict",
            "--threads",
            "2",
        ])
        .unwrap();
        match c {
            Command::Count(a) => {
                assert_eq!(a.timeout, Some(2.5));
                assert_eq!(a.mem_budget, Some(MemoryBudget::from_bytes(512 << 20)));
                assert!(a.strict);
                assert_eq!(a.threads, Some(2));
            }
            _ => panic!("wrong command"),
        }
    }

    #[test]
    fn rejects_bad_resilience_flags() {
        assert!(parse(&["count", "g", "--timeout"]).is_err());
        assert!(parse(&["count", "g", "--timeout", "abc"]).is_err());
        assert!(parse(&["count", "g", "--timeout", "-1"]).is_err());
        assert!(parse(&["count", "g", "--timeout", "inf"]).is_err());
        assert!(parse(&["count", "g", "--mem-budget"]).is_err());
        assert!(parse(&["count", "g", "--mem-budget", "12x"]).is_err());
    }

    #[test]
    fn parses_generate() {
        let c = parse(&[
            "generate",
            "rmat",
            "--scale",
            "12",
            "--edge-factor",
            "8",
            "--seed",
            "7",
            "--params",
            "web",
            "-o",
            "out.lotg",
        ])
        .unwrap();
        match c {
            Command::Generate(g) => {
                assert_eq!(g.scale, 12);
                assert_eq!(g.edge_factor, 8);
                assert_eq!(g.seed, 7);
                assert_eq!(g.params, "web");
                assert_eq!(g.output, "out.lotg");
            }
            _ => panic!("wrong command"),
        }
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse(&[]).is_err());
        assert!(parse(&["frobnicate"]).is_err());
        assert!(parse(&["count"]).is_err());
        assert!(parse(&["count", "g.txt", "--hubs"]).is_err());
        assert!(parse(&["count", "g.txt", "--hubs", "abc"]).is_err());
        assert!(parse(&["generate", "rmat", "-o", "x"]).is_err()); // no scale
        assert!(parse(&["generate", "nope", "--scale", "4", "-o", "x"]).is_err());
        assert!(parse(&["analyze", "g", "--hub-fraction", "2.0"]).is_err());
        assert!(parse(&["convert", "only-one"]).is_err());
    }

    #[test]
    fn parses_check() {
        let c = parse(&["check", "g.lotg", "--hubs", "64", "--differential"]).unwrap();
        assert_eq!(
            c,
            Command::Check(CheckArgs {
                input: "g.lotg".into(),
                hubs: Some(64),
                differential: true,
            })
        );
        assert_eq!(
            parse(&["check", "g.txt"]).unwrap(),
            Command::Check(CheckArgs {
                input: "g.txt".into(),
                hubs: None,
                differential: false
            })
        );
        assert!(parse(&["check"]).is_err());
        assert!(parse(&["check", "g.txt", "--hubs"]).is_err());
    }

    #[test]
    fn parses_bench_run() {
        assert_eq!(
            parse(&["bench"]).unwrap(),
            Command::Bench(BenchArgs::Run(BenchRunArgs {
                suite: "ci".into(),
                json: None,
                threads: None,
            }))
        );
        assert_eq!(
            parse(&[
                "bench",
                "--suite",
                "full",
                "--json",
                "out.json",
                "--threads",
                "4"
            ])
            .unwrap(),
            Command::Bench(BenchArgs::Run(BenchRunArgs {
                suite: "full".into(),
                json: Some("out.json".into()),
                threads: Some(4),
            }))
        );
        assert!(parse(&["bench", "--suite"]).is_err());
        assert!(parse(&["bench", "extra"]).is_err());
        assert!(parse(&["bench", "--threads", "0"]).is_err());
        assert!(parse(&["bench", "--threads", "x"]).is_err());
    }

    #[test]
    fn parses_bench_compare() {
        assert_eq!(
            parse(&["bench", "compare", "a.json", "b.json"]).unwrap(),
            Command::Bench(BenchArgs::Compare(BenchCompareArgs {
                baseline: "a.json".into(),
                current: "b.json".into(),
                tolerance: 0.25,
            }))
        );
        assert_eq!(
            parse(&["bench", "compare", "a.json", "b.json", "--tolerance", "0.1"]).unwrap(),
            Command::Bench(BenchArgs::Compare(BenchCompareArgs {
                baseline: "a.json".into(),
                current: "b.json".into(),
                tolerance: 0.1,
            }))
        );
        assert!(parse(&["bench", "compare", "a.json"]).is_err());
        assert!(parse(&["bench", "compare", "a", "b", "c"]).is_err());
        assert!(parse(&["bench", "compare", "a", "b", "--tolerance", "-1"]).is_err());
        assert!(parse(&["bench", "compare", "a", "b", "--tolerance", "nan"]).is_err());
    }

    #[test]
    fn parses_analyze_modes() {
        // Bare path (back-compat) and explicit `graph` spelling agree.
        let bare = parse(&["analyze", "g.txt"]).unwrap();
        let explicit = parse(&["analyze", "graph", "g.txt"]).unwrap();
        assert_eq!(bare, explicit);
        assert_eq!(
            bare,
            Command::Analyze(AnalyzeArgs::Graph(AnalyzeGraphArgs {
                input: "g.txt".into(),
                hub_fraction: 0.01,
            }))
        );
        assert_eq!(
            parse(&["analyze", "lint"]).unwrap(),
            Command::Analyze(AnalyzeArgs::Lint(AnalyzeLintArgs {
                waivers: None,
                json: None,
                deny_stale: false,
            }))
        );
        assert_eq!(
            parse(&[
                "analyze",
                "lint",
                "--waivers",
                "w.json",
                "--json",
                "out.json",
                "--deny-stale"
            ])
            .unwrap(),
            Command::Analyze(AnalyzeArgs::Lint(AnalyzeLintArgs {
                waivers: Some("w.json".into()),
                json: Some("out.json".into()),
                deny_stale: true,
            }))
        );
        assert_eq!(
            parse(&["analyze", "locks"]).unwrap(),
            Command::Analyze(AnalyzeArgs::Locks(AnalyzeLocksArgs {
                waivers: None,
                json: None,
            }))
        );
        assert_eq!(
            parse(&[
                "analyze",
                "locks",
                "--waivers",
                "w.json",
                "--json",
                "l.json"
            ])
            .unwrap(),
            Command::Analyze(AnalyzeArgs::Locks(AnalyzeLocksArgs {
                waivers: Some("w.json".into()),
                json: Some("l.json".into()),
            }))
        );
        assert_eq!(
            parse(&["analyze", "race"]).unwrap(),
            Command::Analyze(AnalyzeArgs::Race(AnalyzeRaceArgs {
                seeds: vec![],
                json: None,
            }))
        );
        assert_eq!(
            parse(&["analyze", "race", "--seeds", "7,42, 3", "--json", "r.json"]).unwrap(),
            Command::Analyze(AnalyzeArgs::Race(AnalyzeRaceArgs {
                seeds: vec![7, 42, 3],
                json: Some("r.json".into()),
            }))
        );
        assert!(parse(&["analyze"]).is_err());
        assert!(parse(&["analyze", "lint", "--waivers"]).is_err());
        assert!(parse(&["analyze", "lint", "extra"]).is_err());
        assert!(parse(&["analyze", "race", "--seeds", "x"]).is_err());
        assert!(parse(&["analyze", "locks", "extra"]).is_err());
        assert!(parse(&["analyze", "locks", "--waivers"]).is_err());
        assert!(parse(&["analyze", "graph"]).is_err());
    }

    #[test]
    fn parses_serve() {
        assert_eq!(
            parse(&["serve"]).unwrap(),
            Command::Serve(ServeCliArgs {
                bind: "127.0.0.1".into(),
                port: 0,
                workers: 0,
                queue: 0,
                mem_budget: None,
                preload: vec![],
                data_dir: None,
                snapshot_interval_secs: None,
                event_threads: 0,
                max_conns: 0,
            })
        );
        let c = parse(&[
            "serve",
            "--bind",
            "0.0.0.0",
            "--port",
            "7070",
            "--workers",
            "8",
            "--queue",
            "32",
            "--mem-budget",
            "1g",
            "--preload",
            "g=rmat:9:8:7",
            "--preload",
            "h=er:128:512:3",
            "--data-dir",
            "/tmp/lotus-data",
            "--snapshot-interval",
            "30",
            "--event-threads",
            "2",
            "--max-conns",
            "2048",
        ])
        .unwrap();
        match c {
            Command::Serve(a) => {
                assert_eq!(a.bind, "0.0.0.0");
                assert_eq!(a.port, 7070);
                assert_eq!(a.workers, 8);
                assert_eq!(a.queue, 32);
                assert_eq!(a.mem_budget, Some(MemoryBudget::from_bytes(1 << 30)));
                assert_eq!(
                    a.preload,
                    vec![
                        ("g".into(), "rmat:9:8:7".into()),
                        ("h".into(), "er:128:512:3".into())
                    ]
                );
                assert_eq!(a.data_dir.as_deref(), Some("/tmp/lotus-data"));
                assert_eq!(a.snapshot_interval_secs, Some(30));
                assert_eq!(a.event_threads, 2);
                assert_eq!(a.max_conns, 2048);
            }
            _ => panic!("wrong command"),
        }
        assert!(parse(&["serve", "--port", "99999"]).is_err());
        assert!(parse(&["serve", "--event-threads", "x"]).is_err());
        assert!(parse(&["serve", "--max-conns"]).is_err());
        assert!(parse(&["serve", "--preload", "no-equals"]).is_err());
        assert!(parse(&["serve", "--preload", "=spec"]).is_err());
        assert!(parse(&["serve", "--snapshot-interval", "x"]).is_err());
        assert!(parse(&["serve", "stray"]).is_err());
    }

    #[test]
    fn parses_serve_recover() {
        assert_eq!(
            parse(&["serve", "recover", "/var/lotus"]).unwrap(),
            Command::ServeRecover(ServeRecoverArgs {
                data_dir: "/var/lotus".into(),
                dry_run: false,
                json: None,
            })
        );
        assert_eq!(
            parse(&["serve", "recover", "d", "--dry-run", "--json", "r.json"]).unwrap(),
            Command::ServeRecover(ServeRecoverArgs {
                data_dir: "d".into(),
                dry_run: true,
                json: Some("r.json".into()),
            })
        );
        assert!(parse(&["serve", "recover"]).is_err());
        assert!(parse(&["serve", "recover", "a", "b"]).is_err());
        assert!(parse(&["serve", "recover", "d", "--frob"]).is_err());
    }

    #[test]
    fn parses_query_actions() {
        assert_eq!(
            parse(&["query", "127.0.0.1:7070", "ping"]).unwrap(),
            Command::Query(QueryArgs {
                addr: "127.0.0.1:7070".into(),
                action: QueryAction::Ping,
                deadline_ms: None,
            })
        );
        assert_eq!(
            parse(&["query", "a:1", "count", "g", "--deadline-ms", "250"]).unwrap(),
            Command::Query(QueryArgs {
                addr: "a:1".into(),
                action: QueryAction::Count { name: "g".into() },
                deadline_ms: Some(250),
            })
        );
        assert_eq!(
            parse(&["query", "a:1", "per-vertex", "g", "--range", "16..80"]).unwrap(),
            Command::Query(QueryArgs {
                addr: "a:1".into(),
                action: QueryAction::PerVertex {
                    name: "g".into(),
                    range: Some((16, 80)),
                },
                deadline_ms: None,
            })
        );
        assert_eq!(
            parse(&["query", "a:1", "kclique", "g", "5"]).unwrap(),
            Command::Query(QueryArgs {
                addr: "a:1".into(),
                action: QueryAction::KClique {
                    name: "g".into(),
                    k: 5
                },
                deadline_ms: None,
            })
        );
        assert_eq!(
            parse(&["query", "a:1", "load", "g", "rmat:9:8:7"]).unwrap(),
            Command::Query(QueryArgs {
                addr: "a:1".into(),
                action: QueryAction::Load {
                    name: "g".into(),
                    spec: "rmat:9:8:7".into()
                },
                deadline_ms: None,
            })
        );
        assert_eq!(
            parse(&["query", "a:1", "evict", "g"]).unwrap(),
            Command::Query(QueryArgs {
                addr: "a:1".into(),
                action: QueryAction::Evict { name: "g".into() },
                deadline_ms: None,
            })
        );
        assert!(parse(&["query"]).is_err());
        assert!(parse(&["query", "a:1"]).is_err());
        assert!(parse(&["query", "a:1", "frobnicate"]).is_err());
        assert!(parse(&["query", "a:1", "count"]).is_err());
        assert!(parse(&["query", "a:1", "kclique", "g"]).is_err());
        assert!(parse(&["query", "a:1", "kclique", "g", "x"]).is_err());
        assert!(parse(&["query", "a:1", "per-vertex", "g", "--range", "80..16"]).is_err());
        assert!(parse(&["query", "a:1", "per-vertex", "g", "--range", "16"]).is_err());
        assert!(parse(&["query", "a:1", "count", "g", "--range", "0..4"]).is_err());
        assert!(parse(&["query", "a:1", "ping", "extra"]).is_err());
        assert_eq!(
            parse(&["query", "a:1", "shard-stat"]).unwrap(),
            Command::Query(QueryArgs {
                addr: "a:1".into(),
                action: QueryAction::ShardStat,
                deadline_ms: None,
            })
        );
        assert_eq!(
            parse(&["query", "a:1", "join", "b:2"]).unwrap(),
            Command::Query(QueryArgs {
                addr: "a:1".into(),
                action: QueryAction::Join { addr: "b:2".into() },
                deadline_ms: None,
            })
        );
        assert!(parse(&["query", "a:1", "join"]).is_err());
    }

    #[test]
    fn parses_cluster_serve() {
        assert_eq!(
            parse(&[
                "cluster",
                "serve",
                "--shard",
                "a:1",
                "--shard",
                "b:2",
                "--data-dir",
                "/var/lotus",
                "--deadline-ms",
                "2500",
                "--allow-partial",
                "--retry-seed",
                "9",
            ])
            .unwrap(),
            Command::ClusterServe(ClusterServeArgs {
                bind: "127.0.0.1".into(),
                port: 0,
                shards: vec!["a:1".into(), "b:2".into()],
                data_dir: Some("/var/lotus".into()),
                deadline_ms: Some(2500),
                allow_partial: true,
                retry_seed: Some(9),
            })
        );
        assert_eq!(
            parse(&["cluster", "serve"]).unwrap(),
            Command::ClusterServe(ClusterServeArgs {
                bind: "127.0.0.1".into(),
                port: 0,
                shards: vec![],
                data_dir: None,
                deadline_ms: None,
                allow_partial: false,
                retry_seed: None,
            })
        );
        assert!(parse(&["cluster", "serve", "--shard"]).is_err());
        assert!(parse(&["cluster", "serve", "stray"]).is_err());
        assert!(parse(&["cluster"]).is_err());
        assert!(parse(&["cluster", "frobnicate"]).is_err());
    }

    #[test]
    fn parses_cluster_shard() {
        let c = parse(&[
            "cluster",
            "shard",
            "--port",
            "7071",
            "--workers",
            "2",
            "--coordinator",
            "c:1",
        ])
        .unwrap();
        match c {
            Command::ClusterShard(a) => {
                assert_eq!(a.serve.port, 7071);
                assert_eq!(a.serve.workers, 2);
                assert_eq!(a.coordinator.as_deref(), Some("c:1"));
            }
            other => panic!("{other:?}"),
        }
        // Without --coordinator the shard is a plain daemon awaiting a join.
        match parse(&["cluster", "shard"]).unwrap() {
            Command::ClusterShard(a) => assert_eq!(a.coordinator, None),
            other => panic!("{other:?}"),
        }
        assert!(parse(&["cluster", "shard", "--coordinator"]).is_err());
        assert!(parse(&["cluster", "shard", "recover", "d"]).is_err());
    }

    #[test]
    fn cluster_query_is_an_alias() {
        assert_eq!(
            parse(&["cluster", "query", "a:1", "shard-stat"]).unwrap(),
            parse(&["query", "a:1", "shard-stat"]).unwrap(),
        );
    }

    #[test]
    fn parses_loadgen() {
        assert_eq!(
            parse(&["loadgen", "a:1", "--suite", "ci"]).unwrap(),
            Command::Loadgen(LoadgenCliArgs {
                addr: "a:1".into(),
                suite: Some("ci".into()),
                connections: None,
                requests: None,
                seed: None,
                graph: None,
                deadline_ms: None,
                json: None,
                pipeline: None,
                legacy_threads: false,
                cluster: false,
            })
        );
        let c = parse(&[
            "loadgen",
            "a:1",
            "--connections",
            "8",
            "--requests",
            "100",
            "--seed",
            "7",
            "--graph",
            "er:256:1024:5",
            "--deadline-ms",
            "500",
            "--json",
            "serve.json",
            "--pipeline",
            "4",
            "--legacy-threads",
        ])
        .unwrap();
        match c {
            Command::Loadgen(a) => {
                assert_eq!(a.connections, Some(8));
                assert_eq!(a.requests, Some(100));
                assert_eq!(a.seed, Some(7));
                assert_eq!(a.graph.as_deref(), Some("er:256:1024:5"));
                assert_eq!(a.deadline_ms, Some(500));
                assert_eq!(a.json.as_deref(), Some("serve.json"));
                assert_eq!(a.pipeline, Some(4));
                assert!(a.legacy_threads);
                assert!(!a.cluster);
            }
            _ => panic!("wrong command"),
        }
        assert!(parse(&["loadgen"]).is_err());
        assert!(parse(&["loadgen", "a:1", "--suite", "nope"]).is_err());
        assert!(parse(&["loadgen", "a:1", "--connections", "x"]).is_err());
        assert!(parse(&["loadgen", "a:1", "--pipeline", "0"]).is_err());
    }

    #[test]
    fn help_variants() {
        for h in [&["help"][..], &["--help"], &["-h"]] {
            assert_eq!(parse(h).unwrap(), Command::Help);
        }
    }
}
