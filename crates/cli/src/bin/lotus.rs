//! The `lotus` command-line tool. See `lotus help`.

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let argv_refs: Vec<&str> = argv.iter().map(String::as_str).collect();
    match lotus_cli::parse(&argv_refs) {
        Ok(cmd) => match lotus_cli::run(cmd) {
            Ok(output) => {
                print!("{output}");
                if !output.ends_with('\n') {
                    println!();
                }
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::from(e.code)
            }
        },
        Err(e) => {
            eprintln!("{e}");
            ExitCode::from(2)
        }
    }
}
