//! Subcommand implementations.

use std::fmt;
use std::fmt::Write as _;
use std::path::Path;
use std::time::{Duration, Instant};

use lotus_algos::bbtc::BbtcCounter;
use lotus_algos::edge_iterator::edge_iterator_count_timed;
use lotus_algos::forward::{forward_count_guarded, ForwardCounter};
use lotus_algos::gbbs::gbbs_count_timed;
use lotus_algos::intersect::IntersectKind;
use lotus_analysis::hub_stats::hub_stats;
use lotus_analysis::topology_size::topology_sizes;
use lotus_core::adaptive::{adaptive_count, AdaptiveConfig, ChosenAlgorithm};
use lotus_core::config::{HubCount, LotusConfig};
use lotus_core::count::{CountError, LotusCounter};
use lotus_core::per_vertex::count_per_vertex;
use lotus_core::preprocess::build_lotus_graph;
use lotus_core::resilient::count_with_budget;
use lotus_gen::{BarabasiAlbert, ErdosRenyi, Rmat, RmatParams, WattsStrogatz};
use lotus_graph::{io, EdgeList, GraphStats, ParseWarning, Strictness, UndirectedCsr};
use lotus_resilience::{isolate, Deadline, MemoryBudget, RunGuard};

use crate::args::{
    AnalyzeArgs, AnalyzeGraphArgs, AnalyzeLintArgs, AnalyzeLocksArgs, AnalyzeRaceArgs, BenchArgs,
    BenchCompareArgs, BenchRunArgs, CheckArgs, ClusterServeArgs, ClusterShardArgs, ConvertArgs,
    CountArgs, GenerateArgs, LoadgenCliArgs, QueryAction, QueryArgs, ServeCliArgs,
    ServeRecoverArgs,
};

/// A command failure: user-facing message plus process exit code.
///
/// Codes follow the conventions documented in [`crate::args::USAGE`]:
/// 1 runtime error, 2 usage error, 101 isolated worker panic, 124
/// interrupted (timeout(1)'s convention for expired deadlines).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliError {
    /// What went wrong, for stderr.
    pub message: String,
    /// The process exit code.
    pub code: u8,
}

impl CliError {
    /// A runtime failure (exit code 1).
    pub fn runtime(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
            code: 1,
        }
    }

    /// A usage error (exit code 2).
    pub fn usage(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
            code: 2,
        }
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for CliError {}

/// Maps a guarded-run failure to its exit code (124 interrupted, 101
/// panic), keeping the partial-progress message.
fn map_count_error(e: &CountError) -> CliError {
    let code = match e {
        CountError::Interrupted { .. } => 124,
        CountError::PhasePanic { .. } => 101,
    };
    CliError {
        message: e.to_string(),
        code,
    }
}

/// Runs `f` with panic isolation: a worker panic becomes exit code 101
/// instead of aborting the process.
fn isolated<T>(f: impl FnOnce() -> T) -> Result<T, CliError> {
    isolate(f).map_err(|p| CliError {
        message: format!("worker panic: {}", p.message),
        code: 101,
    })
}

/// Loads an edge list, selecting the format by extension. Text formats
/// honour `strictness`; the binary format has no warnings (corruption is
/// a hard error via its checksum).
fn load_edges(
    path: &str,
    strictness: Strictness,
) -> Result<(EdgeList, Vec<ParseWarning>), CliError> {
    let el = if path.ends_with(".lotg") {
        io::load_binary(path).map(|edges| (edges, Vec::new()))
    } else {
        io::load_edge_list_text_with(path, strictness).map(|p| (p.edges, p.warnings))
    };
    el.map_err(|e| CliError::runtime(format!("cannot load '{path}': {e}")))
}

/// Loads a graph, selecting the format by extension.
fn load_graph(
    path: &str,
    strictness: Strictness,
) -> Result<(UndirectedCsr, Vec<ParseWarning>), CliError> {
    let (mut el, warnings) = load_edges(path, strictness)?;
    el.canonicalize();
    Ok((UndirectedCsr::from_canonical_edges(&el), warnings))
}

fn write_warnings(out: &mut String, path: &str, warnings: &[ParseWarning]) {
    for w in warnings {
        let _ = writeln!(out, "warning: {path}: {w}");
    }
}

fn lotus_config(hubs: Option<u32>, graph: &UndirectedCsr) -> LotusConfig {
    match hubs {
        Some(n) => LotusConfig::default().with_hub_count(HubCount::Fixed(n)),
        None => LotusConfig::auto(graph),
    }
}

/// `lotus count`.
///
/// # Errors
/// Returns a [`CliError`] when the graph cannot be loaded or the
/// guarded run stops early.
pub fn count(args: CountArgs) -> Result<String, CliError> {
    if let Some(n) = args.threads {
        rayon::configure_threads(n);
    }
    let strictness = if args.strict {
        Strictness::Strict
    } else {
        Strictness::Lenient
    };
    let (graph, warnings) = load_graph(&args.input, strictness)?;
    let mut out = String::new();
    write_warnings(&mut out, &args.input, &warnings);
    let _ = writeln!(out, "{}", GraphStats::of(&graph));

    let mut guard = RunGuard::unlimited();
    if let Some(secs) = args.timeout {
        guard = guard.with_deadline(Deadline::after(Duration::from_secs_f64(secs)));
    }
    let limited = guard.is_limited() || args.mem_budget.is_some();
    if limited && !matches!(args.algorithm.as_str(), "lotus" | "forward") {
        return Err(CliError::usage(
            "--timeout/--mem-budget require --algorithm lotus or forward",
        ));
    }
    if args.mem_budget.is_some() && args.algorithm != "lotus" {
        return Err(CliError::usage("--mem-budget requires --algorithm lotus"));
    }

    let config = lotus_config(args.hubs, &graph);
    let start = Instant::now();
    let (triangles, detail) = match args.algorithm.as_str() {
        "lotus" if limited => {
            // The budgeted runner subsumes the plain guarded one: with no
            // explicit budget the unlimited budget never degrades.
            let budget = args
                .mem_budget
                .unwrap_or_else(|| MemoryBudget::from_bytes(u64::MAX));
            let r = count_with_budget(&config, &graph, &budget, &guard)
                .map_err(|e| map_count_error(&e))?;
            if let Some(reason) = r.degraded {
                let _ = writeln!(out, "degraded: {reason}");
            }
            (r.total(), format!("phases: {}", r.result.breakdown))
        }
        "lotus" => {
            let r = isolated(|| LotusCounter::new(config).count(&graph))?;
            (r.total(), format!("phases: {}", r.breakdown))
        }
        "forward" if limited => {
            let total = match isolated(|| forward_count_guarded(&graph, &guard))? {
                Ok(total) => total,
                Err((reason, partial)) => {
                    return Err(CliError {
                        message: format!(
                            "interrupted ({reason}) during forward count; \
                             {partial} triangles counted so far"
                        ),
                        code: 124,
                    })
                }
            };
            (total, String::new())
        }
        "forward" => {
            let r = isolated(|| ForwardCounter::new().count(&graph))?;
            (
                r.triangles,
                format!(
                    "preprocess {:.3}s count {:.3}s",
                    r.preprocess.as_secs_f64(),
                    r.count.as_secs_f64()
                ),
            )
        }
        "edge-iterator" => {
            let r = isolated(|| edge_iterator_count_timed(&graph, IntersectKind::Merge))?;
            (r.triangles, String::new())
        }
        "gbbs" => {
            let r = isolated(|| gbbs_count_timed(&graph))?;
            (r.triangles, String::new())
        }
        "bbtc" => {
            let r = isolated(|| BbtcCounter::default().count(&graph))?;
            (r.triangles, format!("{} tiles", r.tiles))
        }
        "adaptive" => {
            let r = isolated(|| adaptive_count(&graph, &config, &AdaptiveConfig::default()))?;
            let picked = match r.algorithm {
                ChosenAlgorithm::Lotus => "lotus",
                ChosenAlgorithm::Forward => "forward",
            };
            (
                r.triangles,
                format!("dispatched to {picked} (skew {:.2})", r.skew_ratio),
            )
        }
        other => return Err(CliError::usage(format!("unknown algorithm '{other}'"))),
    };
    let elapsed = start.elapsed();
    let _ = writeln!(out, "triangles: {triangles}");
    let _ = writeln!(
        out,
        "time: {:.3}s ({})",
        elapsed.as_secs_f64(),
        args.algorithm
    );
    if !detail.is_empty() {
        let _ = writeln!(out, "{detail}");
    }

    if args.per_vertex {
        let lg = build_lotus_graph(&graph, &config);
        let pv = count_per_vertex(&lg);
        let mut ranked: Vec<(u32, u64)> =
            pv.iter().enumerate().map(|(v, &t)| (v as u32, t)).collect();
        ranked.sort_unstable_by_key(|&(v, t)| (std::cmp::Reverse(t), v));
        let _ = writeln!(out, "top vertices by triangle count:");
        for (v, t) in ranked.into_iter().take(10) {
            let _ = writeln!(out, "  {v}: {t}");
        }
    }
    Ok(out)
}

/// `lotus analyze`: graph analysis or one of the static-analysis gates.
///
/// # Errors
/// Returns a [`CliError`] when input is unreadable, the lint gate
/// finds unwaived violations, or a race scenario fails.
pub fn analyze(args: AnalyzeArgs) -> Result<String, CliError> {
    match args {
        AnalyzeArgs::Graph(a) => analyze_graph(a),
        AnalyzeArgs::Lint(a) => analyze_lint(&a),
        AnalyzeArgs::Race(a) => analyze_race(&a),
        AnalyzeArgs::Locks(a) => analyze_locks(&a),
    }
}

/// `lotus analyze [graph] <path>` — the paper's §3 hub/topology analysis.
fn analyze_graph(args: AnalyzeGraphArgs) -> Result<String, CliError> {
    let (graph, warnings) = load_graph(&args.input, Strictness::Lenient)?;
    let mut out = String::new();
    write_warnings(&mut out, &args.input, &warnings);
    let _ = writeln!(out, "{}", GraphStats::of(&graph));

    let s = hub_stats(&graph, args.hub_fraction);
    let _ = writeln!(
        out,
        "hubs ({} = top {:.1}% by degree):",
        s.hub_count,
        args.hub_fraction * 100.0
    );
    let _ = writeln!(
        out,
        "  hub-to-hub edges:     {:>6.1}%",
        s.hub_to_hub * 100.0
    );
    let _ = writeln!(
        out,
        "  hub-to-non-hub edges: {:>6.1}%",
        s.hub_to_nonhub * 100.0
    );
    let _ = writeln!(out, "  non-hub edges:        {:>6.1}%", s.nonhub * 100.0);
    let _ = writeln!(
        out,
        "  hub triangles:        {:>6.1}%",
        s.hub_triangles * 100.0
    );
    let _ = writeln!(out, "  hub relative density: {:>6.0}x", s.relative_density);
    let _ = writeln!(out, "  fruitless accesses:   {:>6.1}%", s.fruitless * 100.0);

    let lg = build_lotus_graph(&graph, &LotusConfig::auto(&graph));
    let sizes = topology_sizes(&graph, &lg);
    let _ = writeln!(
        out,
        "topology: CSX {} B, LOTUS {} B ({:+.1}%)",
        sizes.csx,
        sizes.lotus,
        sizes.growth_percent()
    );
    Ok(out)
}

/// `lotus analyze lint` — the project-rule source lint gate. Scans the
/// workspace from the current directory, applies the waiver file, and
/// fails (exit 1) on any unwaived finding, mirroring `lotus check`.
/// Stale waivers are reported but gate only under `--deny-stale`.
fn analyze_lint(args: &AnalyzeLintArgs) -> Result<String, CliError> {
    let waiver_path = args
        .waivers
        .as_deref()
        .unwrap_or(lotus_analyzer::DEFAULT_WAIVER_FILE);
    let report = lotus_analyzer::analyze_workspace(Path::new("."), Path::new(waiver_path))
        .map_err(|e| CliError::runtime(e.to_string()))?;
    if let Some(path) = &args.json {
        std::fs::write(path, report.to_json())
            .map_err(|e| CliError::runtime(format!("cannot write '{path}': {e}")))?;
    }
    let rendered = format!("{report}\n");
    let gating = report
        .findings
        .iter()
        .filter(|f| !f.waived && (args.deny_stale || f.rule != "stale-waiver"))
        .count();
    if gating == 0 {
        Ok(rendered)
    } else {
        Err(CliError::runtime(rendered))
    }
}

/// `lotus analyze locks` — the static lock-discipline gate. Builds the
/// cross-crate lock-order graph from the workspace sources, applies the
/// lock-rule waivers, and fails (exit 1) on ordering cycles, blocking
/// calls under a guard, double acquisition, or a planted detector
/// control that fails to fire.
fn analyze_locks(args: &AnalyzeLocksArgs) -> Result<String, CliError> {
    let waiver_path = args
        .waivers
        .as_deref()
        .unwrap_or(lotus_analyzer::DEFAULT_WAIVER_FILE);
    let report = lotus_analyzer::analyze_locks_workspace(Path::new("."), Path::new(waiver_path))
        .map_err(|e| CliError::runtime(e.to_string()))?;
    if let Some(path) = &args.json {
        std::fs::write(path, report.to_json())
            .map_err(|e| CliError::runtime(format!("cannot write '{path}': {e}")))?;
    }
    let rendered = format!("{report}\n");
    if report.is_clean() {
        Ok(rendered)
    } else {
        Err(CliError::runtime(rendered))
    }
}

/// `lotus analyze race` — replays every shipped parallel kernel under
/// seeded deterministic schedules; fails (exit 1) on any shadow-log race
/// or schedule-dependent result.
fn analyze_race(args: &AnalyzeRaceArgs) -> Result<String, CliError> {
    let seeds: &[u64] = if args.seeds.is_empty() {
        &lotus_analyzer::FIXED_SEEDS
    } else {
        &args.seeds
    };
    let suite = lotus_analyzer::run_suite(seeds);
    if let Some(path) = &args.json {
        std::fs::write(path, suite.to_json())
            .map_err(|e| CliError::runtime(format!("cannot write '{path}': {e}")))?;
    }
    let mut out = String::new();
    for o in &suite.outcomes {
        let verdict = if o.is_clean() {
            "ok".to_string()
        } else if o.agrees {
            format!("{} race(s)", o.race.total_races)
        } else {
            "result diverged".to_string()
        };
        let _ = writeln!(
            out,
            "{:<20} seed {:<6} regions {:<4} accesses {:<7} {verdict}",
            o.scenario, o.seed, o.race.regions, o.race.accesses
        );
    }
    for c in &suite.controls {
        if c.flagged() {
            let clocks = c
                .report
                .races
                .first()
                .map(|r| format!("; clocks {} vs {}", r.clock_a, r.clock_b))
                .unwrap_or_default();
            let _ = writeln!(
                out,
                "control {:<20} flagged ({} race(s){clocks})",
                c.name, c.report.total_races
            );
        } else {
            let _ = writeln!(
                out,
                "control {:<20} MISSED — detector failed to fire",
                c.name
            );
        }
    }
    let _ = writeln!(
        out,
        "{} scenario run(s), {} planted control(s), {}",
        suite.outcomes.len(),
        suite.controls.len(),
        if suite.is_clean() {
            "all clean"
        } else {
            "RACES FOUND"
        }
    );
    if suite.is_clean() {
        Ok(out)
    } else {
        Err(CliError::runtime(out))
    }
}

/// `lotus generate`.
///
/// # Errors
/// Returns a [`CliError`] when the output file cannot be written.
pub fn generate(args: GenerateArgs) -> Result<String, CliError> {
    let n = 1u32 << args.scale;
    let edges = match args.kind.as_str() {
        "rmat" => {
            let params = match args.params.as_str() {
                "web" => RmatParams::WEB,
                "mild" => RmatParams::MILD,
                _ => RmatParams::GRAPH500,
            };
            Rmat {
                scale: args.scale,
                edge_factor: args.edge_factor,
                params,
                noise: 0.05,
            }
            .generate_edges(args.seed)
        }
        "ba" => BarabasiAlbert::new(n, args.edge_factor.clamp(1, n - 1)).generate_edges(args.seed),
        "er" => ErdosRenyi::new(n, args.edge_factor as u64 * n as u64).generate_edges(args.seed),
        "ws" => {
            let k = (args.edge_factor & !1).max(2).min(n - 1);
            WattsStrogatz::new(n, k, 0.1).generate_edges(args.seed)
        }
        other => return Err(CliError::usage(format!("unknown generator '{other}'"))),
    };
    save_edges(&edges, &args.output)?;
    Ok(format!(
        "wrote {} edges over {} vertices to {}",
        edges.len(),
        edges.num_vertices(),
        args.output
    ))
}

/// `lotus check`: structural validation, LOTUS-structure checks, and the
/// phase-sum cross-check; `--differential` additionally runs every
/// algorithm in the workspace and compares counts. Returns `Err` (nonzero
/// exit) when any violation is found, so it can gate CI.
///
/// # Errors
/// Returns a [`CliError`] when the graph cannot be loaded or any
/// validation rule is violated (nonzero exit for CI).
pub fn check(args: CheckArgs) -> Result<String, CliError> {
    let (graph, warnings) = load_graph(&args.input, Strictness::Lenient)?;
    let mut out = String::new();
    write_warnings(&mut out, &args.input, &warnings);
    let _ = writeln!(out, "{}", GraphStats::of(&graph));
    let mut violations = 0usize;

    let structural = lotus_check::Validator::new().check_undirected(&graph);
    violations += structural.len();
    let _ = writeln!(out, "structural (csr/symmetry/ordering): {structural}");

    let config = lotus_config(args.hubs, &graph);
    let lg = build_lotus_graph(&graph, &config);
    let lotus_report = lotus_check::lotus::check_lotus_graph(&lg);
    violations += lotus_report.len();
    let _ = writeln!(
        out,
        "lotus structure ({} hubs, he/nhe/h2h/relabeling): {lotus_report}",
        lg.hub_count
    );

    let result = LotusCounter::new(config).count_prepared(&lg);
    let reference = ForwardCounter::new().count(&graph).triangles;
    let phase = lotus_check::lotus::check_phase_sum(&result.stats, reference);
    violations += phase.len();
    let _ = writeln!(
        out,
        "phase sum (hhh {} + hhn {} + hnn {} + nnn {} vs forward {reference}): {phase}",
        result.stats.hhh, result.stats.hhn, result.stats.hnn, result.stats.nnn
    );

    if args.differential {
        let diff = lotus_check::differential::run(&graph);
        violations += diff.disagreements.len();
        let _ = writeln!(
            out,
            "differential ({} algorithms): {}",
            diff.runs.len(),
            diff.disagreements
        );
        if let Some(cex) = &diff.counterexample {
            let _ = writeln!(out, "minimized counterexample ({} edges):", cex.len());
            for &(u, v) in cex.pairs() {
                let _ = writeln!(out, "  {u} {v}");
            }
        }
    }

    if violations == 0 {
        let _ = writeln!(out, "ok: no violations");
        Ok(out)
    } else {
        let _ = writeln!(out, "FAILED: {violations} violation(s)");
        Err(CliError::runtime(out))
    }
}

/// `lotus bench`: run a named suite (writing `BENCH.json` with
/// `--json`) or diff two artifacts with `bench compare`.
///
/// # Errors
/// Returns a [`CliError`] when the suite fails, an artifact cannot be
/// read or written, or a compare regresses past tolerance.
pub fn bench(args: BenchArgs) -> Result<String, CliError> {
    match args {
        BenchArgs::Run(run) => bench_run(&run),
        BenchArgs::Compare(cmp) => bench_compare(&cmp),
    }
}

fn bench_run(args: &BenchRunArgs) -> Result<String, CliError> {
    if let Some(n) = args.threads {
        rayon::configure_threads(n);
    }
    let suite = lotus_bench::BenchSuite::by_name(&args.suite).ok_or_else(|| {
        CliError::usage(format!(
            "unknown suite '{}' (expected one of: {})",
            args.suite,
            lotus_bench::BenchSuite::NAMES.join(", ")
        ))
    })?;
    let report = isolated(|| lotus_bench::BenchReport::run_suite(&suite))?;
    let mut out = report.summary();
    if let Some(path) = &args.json {
        std::fs::write(path, report.to_pretty_string())
            .map_err(|e| CliError::runtime(format!("cannot write '{path}': {e}")))?;
        let _ = writeln!(out, "wrote {} run(s) to {path}", report.runs.len());
    }
    Ok(out)
}

/// Gates on the baseline: any hard failure or beyond-tolerance wall-time
/// regression exits nonzero, so CI can call this directly.
fn bench_compare(args: &BenchCompareArgs) -> Result<String, CliError> {
    let load = |path: &str| -> Result<
        (lotus_bench::BenchReport, Option<lotus_bench::ServeSection>),
        CliError,
    > {
        let text = std::fs::read_to_string(path)
            .map_err(|e| CliError::runtime(format!("cannot read '{path}': {e}")))?;
        let report = lotus_bench::BenchReport::parse(&text)
            .map_err(|e| CliError::runtime(format!("'{path}' is not a valid BENCH.json: {e}")))?;
        let serve = lotus_bench::ServeSection::from_document(&text).map_err(|e| {
            CliError::runtime(format!("'{path}' has a malformed serve section: {e}"))
        })?;
        Ok((report, serve))
    };
    let (baseline, baseline_serve) = load(&args.baseline)?;
    let (current, current_serve) = load(&args.current)?;
    let mut cmp = lotus_bench::compare::compare(&baseline, &current, args.tolerance);
    // The serving layer is gated alongside the counting runs: one gate,
    // one exit code (sections absent on both sides are simply skipped).
    cmp.findings.extend(lotus_bench::compare::compare_serve(
        baseline_serve.as_ref(),
        current_serve.as_ref(),
        args.tolerance,
    ));
    let rendered = cmp.to_string();
    if cmp.passed() {
        Ok(rendered)
    } else {
        Err(CliError::runtime(rendered))
    }
}

/// `lotus convert`.
///
/// # Errors
/// Returns a [`CliError`] when either file cannot be read or written
/// or the formats cannot be inferred.
pub fn convert(args: ConvertArgs) -> Result<String, CliError> {
    let strictness = if args.strict {
        Strictness::Strict
    } else {
        Strictness::Lenient
    };
    let (mut el, warnings) = load_edges(&args.input, strictness)?;
    el.canonicalize();
    save_edges(&el, &args.output)?;
    let mut out = String::new();
    write_warnings(&mut out, &args.input, &warnings);
    let _ = writeln!(out, "wrote {} canonical edges to {}", el.len(), args.output);
    Ok(out)
}

/// `lotus serve`: run the graph query daemon until drained.
///
/// Prints `listening on <addr>` (flushed) before blocking, so scripts
/// can poll stdout for the bound ephemeral port.
///
/// # Errors
/// Returns a [`CliError`] when the listener cannot bind or a
/// `--preload` graph fails to build.
pub fn serve(args: ServeCliArgs) -> Result<String, CliError> {
    use std::io::Write as _;

    let handle = spawn_daemon(args)?;
    println!("listening on {}", handle.addr());
    let _ = std::io::stdout().flush();
    handle.wait();
    Ok("drained".into())
}

/// Spawns the serve daemon behind `lotus serve` / `lotus cluster
/// shard`, printing the recovery report when the data directory
/// replayed anything.
fn spawn_daemon(args: ServeCliArgs) -> Result<lotus_serve::ServerHandle, CliError> {
    // Crash-recovery tests arm fault points in the spawned daemon via
    // LOTUS_FAULT_PLAN; a plain build ignores the variable entirely.
    #[cfg(feature = "fault-injection")]
    lotus_resilience::fault::arm_from_env();

    let mut config = lotus_serve::ServeConfig {
        bind: args.bind,
        port: args.port,
        workers: args.workers,
        queue_capacity: args.queue,
        preload: args.preload,
        data_dir: args.data_dir.map(std::path::PathBuf::from),
        snapshot_interval: args.snapshot_interval_secs.map(Duration::from_secs),
        event_threads: args.event_threads,
        max_conns: args.max_conns,
        ..lotus_serve::ServeConfig::default()
    };
    if let Some(budget) = args.mem_budget {
        config.budget = budget;
    }
    let handle = lotus_serve::spawn(config).map_err(|e| CliError::runtime(e.to_string()))?;
    if let Some(report) = handle.state().recovery_report() {
        println!(
            "recovered {} graph(s) in {} ms ({} quarantined)",
            report.recovered,
            report.recovery_ms,
            report.quarantined.len()
        );
    }
    Ok(handle)
}

/// `lotus cluster serve`: run the fan-out coordinator until drained.
///
/// Prints `coordinating on <addr>` (flushed) before blocking, mirroring
/// `lotus serve`'s stdout contract so scripts can poll for the port.
///
/// # Errors
/// Returns a [`CliError`] when the listener cannot bind or the
/// shard-map journal cannot be opened.
pub fn cluster_serve(args: ClusterServeArgs) -> Result<String, CliError> {
    use std::io::Write as _;

    let mut config = lotus_cluster::ClusterConfig {
        bind: args.bind,
        port: args.port,
        shards: args.shards,
        data_dir: args.data_dir.map(std::path::PathBuf::from),
        allow_partial: args.allow_partial,
        ..lotus_cluster::ClusterConfig::default()
    };
    if let Some(ms) = args.deadline_ms {
        config.default_deadline = Duration::from_millis(ms);
    }
    if let Some(seed) = args.retry_seed {
        config.retry_seed = seed;
    }
    let handle = lotus_cluster::spawn(config).map_err(|e| CliError::runtime(e.to_string()))?;
    println!("coordinating on {}", handle.addr());
    let _ = std::io::stdout().flush();
    handle.wait();
    Ok("drained".into())
}

/// `lotus cluster shard`: a full serve daemon that optionally
/// registers itself with a coordinator once its port is bound.
///
/// # Errors
/// Returns a [`CliError`] when the daemon cannot start, the
/// coordinator is unreachable, or it refuses the join.
pub fn cluster_shard(args: ClusterShardArgs) -> Result<String, CliError> {
    use std::io::Write as _;

    use lotus_serve::{Request, Response};

    let handle = spawn_daemon(args.serve)?;
    println!("listening on {}", handle.addr());
    if let Some(coordinator) = &args.coordinator {
        let retry = lotus_resilience::RetryPolicy::serve_default(handle.addr().port().into());
        let reply = lotus_serve::Client::connect_with_retry(coordinator, &retry)
            .map_err(|e| {
                CliError::runtime(format!("connecting to coordinator {coordinator}: {e}"))
            })
            .and_then(|(mut client, _)| {
                client
                    .call(&Request::ShardJoin {
                        addr: handle.addr().to_string(),
                    })
                    .map_err(|e| CliError::runtime(format!("joining {coordinator}: {e}")))
            })?;
        match reply {
            Response::ShardJoined { shards } => {
                println!("joined {coordinator} as one of {shards} shard(s)");
            }
            other => {
                return Err(CliError::runtime(format!(
                    "coordinator {coordinator} refused the join: {other:?}"
                )))
            }
        }
    }
    let _ = std::io::stdout().flush();
    handle.wait();
    Ok("drained".into())
}

/// `lotus serve recover`: replay a daemon data directory offline and
/// print the recovery report as JSON — no daemon is started.
///
/// With `--dry-run` the pass only reports: nothing is quarantined and
/// the journal is left untouched. Exit code 1 signals that damage was
/// found (quarantined files or a torn journal), mirroring the audit
/// commands' exit-code contract.
///
/// # Errors
/// Returns a [`CliError`] when the data directory cannot be read or the
/// report cannot be written.
pub fn serve_recover(args: ServeRecoverArgs) -> Result<String, CliError> {
    let state = lotus_serve::recover(Path::new(&args.data_dir), args.dry_run)
        .map_err(|e| CliError::runtime(format!("recovering '{}': {e}", args.data_dir)))?;
    let rendered = state.report.to_json().pretty();
    if let Some(path) = &args.json {
        std::fs::write(path, &rendered)
            .map_err(|e| CliError::runtime(format!("cannot write '{path}': {e}")))?;
    }
    let damaged = !state.report.quarantined.is_empty() || state.report.journal_damage.is_some();
    if damaged {
        return Err(CliError::runtime(rendered));
    }
    Ok(rendered)
}

/// `lotus query`: issue one request to a running daemon and print the
/// reply as JSON.
///
/// Error replies map onto the shared exit-code contract: deadline or
/// cancellation 124, worker panic 101, bad request 2, everything
/// else 1.
///
/// # Errors
/// Returns a [`CliError`] when the daemon is unreachable, the
/// transport fails, or the daemon answers with an error response.
pub fn query(args: QueryArgs) -> Result<String, CliError> {
    use lotus_serve::proto::NO_DEADLINE;
    use lotus_serve::{ErrorKind, Request, Response};

    let deadline_ms = args.deadline_ms.unwrap_or(NO_DEADLINE);
    let request = match args.action {
        QueryAction::Ping => Request::Ping,
        QueryAction::Stats => Request::Stats,
        QueryAction::Drain => Request::Drain,
        QueryAction::Count { name } => Request::Count { name, deadline_ms },
        QueryAction::PerVertex { name, range } => {
            // (0, 0) asks the daemon for its default span.
            let (start, end) = range.unwrap_or((0, 0));
            Request::PerVertex {
                name,
                start,
                end,
                deadline_ms,
            }
        }
        QueryAction::KClique { name, k } => Request::KClique {
            name,
            k,
            deadline_ms,
        },
        QueryAction::Load { name, spec } => Request::LoadGraph { name, spec },
        QueryAction::Evict { name } => Request::EvictGraph { name },
        QueryAction::ShardStat => Request::ShardStat,
        QueryAction::Join { addr } => Request::ShardJoin { addr },
    };
    let mut client = lotus_serve::Client::connect(args.addr.as_str())
        .map_err(|e| CliError::runtime(format!("connecting to {}: {e}", args.addr)))?;
    let reply = client
        .call(&request)
        .map_err(|e| CliError::runtime(format!("request failed: {e}")))?;
    let rendered = reply.to_json().pretty();
    match reply {
        Response::Error { kind, message } => {
            let code = match kind {
                ErrorKind::DeadlineExpired | ErrorKind::Cancelled => 124,
                ErrorKind::WorkerPanic => 101,
                ErrorKind::BadRequest => 2,
                _ => 1,
            };
            Err(CliError {
                message: format!("{}: {message}\n{rendered}", kind.name()),
                code,
            })
        }
        _ => Ok(rendered),
    }
}

/// `lotus loadgen`: drive a seeded request mix against a running
/// daemon and render the latency report; `--json` writes the
/// BENCH-schema artifact carrying the `serve` section.
///
/// # Errors
/// Returns a [`CliError`] when the daemon is unreachable, the warm-up
/// graph is refused, or the artifact cannot be written.
pub fn loadgen(args: LoadgenCliArgs) -> Result<String, CliError> {
    let mut config = lotus_serve::LoadgenConfig::ci_suite(&args.addr);
    let suite = args.suite.unwrap_or_else(|| "custom".to_string());
    if let Some(connections) = args.connections {
        config.connections = connections.max(1);
    }
    if let Some(requests) = args.requests {
        config.requests = requests;
    }
    if let Some(seed) = args.seed {
        config.seed = seed;
    }
    if let Some(graph) = args.graph {
        config.graph = graph;
    }
    if let Some(deadline_ms) = args.deadline_ms {
        config.deadline_ms = deadline_ms;
    }
    if let Some(pipeline) = args.pipeline {
        config.pipeline = pipeline;
    }
    config.legacy_threads = args.legacy_threads;
    config.cluster = args.cluster;
    // Backoff jitter follows the mix seed so two runs retry identically.
    config.retry = lotus_resilience::RetryPolicy::serve_default(config.seed);
    let report = lotus_serve::loadgen::run(&config).map_err(CliError::runtime)?;
    // One Stats round-trip fills the durability columns; a daemon
    // running without --data-dir legitimately reports all zeros.
    let durability = query_durability_stats(&config.addr, &config.retry);
    let section = lotus_bench::ServeSection {
        suite: suite.clone(),
        graph: config.graph.clone(),
        connections: report.connections as u64,
        requests: report.sent,
        ok: report.ok,
        overloaded: report.overloaded,
        deadline_expired: report.deadline_expired,
        errors: report.errors,
        p50_us: report.percentile_us(50.0),
        p90_us: report.percentile_us(90.0),
        p99_us: report.percentile_us(99.0),
        throughput_rps: report.throughput_rps(),
        wall_ms: report.wall_ms,
        retries: report.retries,
        snapshot_writes: durability.snapshot_writes,
        journal_appends: durability.journal_appends,
        journal_replays: durability.journal_replays,
        quarantined: durability.recovery_quarantined,
        recovery_ms: durability.recovery_ms,
        open_conns: report.open_conns,
        max_sustained_rps: report.max_sustained_rps,
    };

    let mut out = String::new();
    let _ = writeln!(
        out,
        "loadgen '{suite}' against {}: {} connections x {} requests on {}",
        config.addr, config.connections, config.requests, config.graph
    );
    let _ = writeln!(
        out,
        "sent {} ok {} overloaded {} deadline-expired {} errors {}",
        report.sent, report.ok, report.overloaded, report.deadline_expired, report.errors
    );
    let _ = writeln!(
        out,
        "latency p50 {} us, p90 {} us, p99 {} us; {:.1} req/s over {} ms ({} retries)",
        section.p50_us,
        section.p90_us,
        section.p99_us,
        section.throughput_rps,
        section.wall_ms,
        section.retries,
    );
    let _ = writeln!(
        out,
        "open conns {} (peak), max sustained {:.1} req/s",
        section.open_conns, section.max_sustained_rps,
    );
    if let Some(path) = &args.json {
        use lotus_telemetry::json::Json;
        // Against a coordinator the section goes under "cluster" with
        // the fleet size; the Stats round-trip reports the fleet as
        // `workers` (DESIGN.md §16).
        let (key, section_json) = if args.cluster {
            let cluster = lotus_bench::ClusterSection {
                shards: u64::from(durability.workers),
                section,
            };
            ("cluster", cluster.to_json())
        } else {
            ("serve", section.to_json())
        };
        let doc = Json::Obj(vec![
            (
                "schema_version".into(),
                Json::Int(lotus_bench::report::SCHEMA_VERSION),
            ),
            ("suite".into(), Json::Str(suite)),
            // An empty runs array keeps the artifact a valid BENCH.json
            // document, so `bench compare` can gate serve-only runs.
            ("runs".into(), Json::Arr(vec![])),
            (key.into(), section_json),
        ]);
        std::fs::write(path, doc.pretty())
            .map_err(|e| CliError::runtime(format!("cannot write '{path}': {e}")))?;
        let _ = writeln!(out, "wrote {key} section to {path}");
    }
    if report.ok == 0 {
        return Err(CliError::runtime(format!("no request succeeded\n{out}")));
    }
    Ok(out)
}

/// Asks the daemon for its durability counters; best-effort — a daemon
/// that vanished mid-teardown just yields zeros rather than failing the
/// whole loadgen run (the latency report is already in hand).
fn query_durability_stats(
    addr: &str,
    retry: &lotus_resilience::RetryPolicy,
) -> lotus_serve::StatsReply {
    use lotus_serve::{Client, Request, Response};

    let reply = Client::connect_with_retry(addr, retry)
        .ok()
        .and_then(|(mut client, _)| client.call(&Request::Stats).ok());
    match reply {
        Some(Response::Stats(stats)) => stats,
        _ => lotus_serve::StatsReply::default(),
    }
}

fn save_edges(el: &EdgeList, path: &str) -> Result<(), CliError> {
    let result = if path.ends_with(".lotg") {
        io::save_binary(el, path)
    } else {
        std::fs::File::create(path)
            .map_err(lotus_graph::GraphError::from)
            .and_then(|f| io::write_edge_list_text(el, f))
    };
    result.map_err(|e| CliError::runtime(format!("cannot write '{path}': {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::parse;

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join("lotus_cli_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name).to_string_lossy().into_owned()
    }

    /// `CountArgs` with every resilience flag off.
    fn count_args(input: String, algorithm: &str, hubs: Option<u32>) -> CountArgs {
        CountArgs {
            input,
            algorithm: algorithm.into(),
            hubs,
            per_vertex: false,
            timeout: None,
            mem_budget: None,
            strict: false,
            threads: None,
        }
    }

    #[test]
    fn generate_count_analyze_pipeline() {
        let path = tmp("pipeline.lotg");
        let msg = generate(GenerateArgs {
            kind: "rmat".into(),
            scale: 9,
            edge_factor: 8,
            seed: 3,
            params: "social".into(),
            output: path.clone(),
        })
        .unwrap();
        assert!(msg.contains("wrote"));

        let out = count(CountArgs {
            per_vertex: true,
            ..count_args(path.clone(), "lotus", None)
        })
        .unwrap();
        assert!(out.contains("triangles:"), "{out}");
        assert!(out.contains("top vertices"), "{out}");

        // All algorithms agree through the CLI path.
        let reference: u64 = extract_triangles(&out);
        for alg in ["forward", "edge-iterator", "gbbs", "bbtc", "adaptive"] {
            let out = count(count_args(path.clone(), alg, Some(64))).unwrap();
            assert_eq!(extract_triangles(&out), reference, "{alg}");
        }

        let out = analyze(AnalyzeArgs::Graph(AnalyzeGraphArgs {
            input: path.clone(),
            hub_fraction: 0.01,
        }))
        .unwrap();
        assert!(out.contains("hub triangles"), "{out}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn convert_text_to_binary_round_trip() {
        let txt = tmp("conv.el");
        let bin = tmp("conv.lotg");
        std::fs::write(&txt, "0 1\n1 2\n2 0\n").unwrap();
        convert(ConvertArgs {
            input: txt.clone(),
            output: bin.clone(),
            strict: false,
        })
        .unwrap();
        let out = count(count_args(bin.clone(), "forward", None)).unwrap();
        assert_eq!(extract_triangles(&out), 1);
        std::fs::remove_file(&txt).ok();
        std::fs::remove_file(&bin).ok();
    }

    #[test]
    fn check_reports_clean_rmat() {
        let path = tmp("check.lotg");
        generate(GenerateArgs {
            kind: "rmat".into(),
            scale: 8,
            edge_factor: 8,
            seed: 11,
            params: "social".into(),
            output: path.clone(),
        })
        .unwrap();
        let out = check(CheckArgs {
            input: path.clone(),
            hubs: Some(32),
            differential: true,
        })
        .unwrap();
        assert!(out.contains("ok: no violations"), "{out}");
        assert!(out.contains("differential"), "{out}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn count_rejects_unknown_algorithm() {
        let path = tmp("empty.el");
        std::fs::write(&path, "0 1\n").unwrap();
        let err = count(count_args(path.clone(), "quantum", None)).unwrap_err();
        assert!(err.message.contains("unknown algorithm"));
        assert_eq!(err.code, 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_a_clean_error() {
        let err = count(count_args("/nonexistent/graph.el".into(), "lotus", None)).unwrap_err();
        assert!(err.message.contains("cannot load"));
        assert_eq!(err.code, 1);
    }

    #[test]
    fn zero_timeout_interrupts_with_code_124() {
        let path = tmp("timeout.lotg");
        generate(GenerateArgs {
            kind: "rmat".into(),
            scale: 10,
            edge_factor: 8,
            seed: 5,
            params: "social".into(),
            output: path.clone(),
        })
        .unwrap();
        for alg in ["lotus", "forward"] {
            let err = count(CountArgs {
                timeout: Some(0.0),
                ..count_args(path.clone(), alg, Some(64))
            })
            .unwrap_err();
            assert_eq!(err.code, 124, "{alg}: {}", err.message);
            assert!(
                err.message.contains("interrupted"),
                "{alg}: {}",
                err.message
            );
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn generous_timeout_still_counts() {
        let path = tmp("timeout_ok.el");
        std::fs::write(&path, "0 1\n1 2\n0 2\n").unwrap();
        let out = count(CountArgs {
            timeout: Some(3600.0),
            ..count_args(path.clone(), "lotus", None)
        })
        .unwrap();
        assert_eq!(extract_triangles(&out), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn tiny_mem_budget_degrades_and_stays_correct() {
        let path = tmp("budget.lotg");
        generate(GenerateArgs {
            kind: "rmat".into(),
            scale: 9,
            edge_factor: 8,
            seed: 9,
            params: "social".into(),
            output: path.clone(),
        })
        .unwrap();
        let reference =
            extract_triangles(&count(count_args(path.clone(), "forward", None)).unwrap());
        let out = count(CountArgs {
            mem_budget: Some(MemoryBudget::from_bytes(64)),
            ..count_args(path.clone(), "lotus", Some(256))
        })
        .unwrap();
        assert!(out.contains("degraded:"), "{out}");
        assert_eq!(extract_triangles(&out), reference);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn resilience_flags_reject_unsupported_algorithms() {
        let path = tmp("unsupported.el");
        std::fs::write(&path, "0 1\n").unwrap();
        let err = count(CountArgs {
            timeout: Some(1.0),
            ..count_args(path.clone(), "gbbs", None)
        })
        .unwrap_err();
        assert_eq!(err.code, 2);
        let err = count(CountArgs {
            mem_budget: Some(MemoryBudget::from_bytes(1 << 30)),
            ..count_args(path.clone(), "forward", None)
        })
        .unwrap_err();
        assert_eq!(err.code, 2);
        assert!(err.message.contains("--mem-budget"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn strict_mode_rejects_trailing_garbage() {
        let path = tmp("garbage.el");
        std::fs::write(&path, "0 1\n1 2 99 extra\n0 2\n").unwrap();
        // Lenient: warns and counts the triangle anyway.
        let out = count(count_args(path.clone(), "lotus", None)).unwrap();
        assert!(out.contains("warning:"), "{out}");
        assert!(out.contains("trailing"), "{out}");
        assert_eq!(extract_triangles(&out), 1);
        // Strict: a hard load error.
        let err = count(CountArgs {
            strict: true,
            ..count_args(path.clone(), "lotus", None)
        })
        .unwrap_err();
        assert_eq!(err.code, 1);
        assert!(err.message.contains("trailing"), "{}", err.message);
        // convert follows the same switch.
        let converted = tmp("garbage.lotg");
        let out = convert(ConvertArgs {
            input: path.clone(),
            output: converted.clone(),
            strict: false,
        })
        .unwrap();
        assert!(out.contains("warning:"), "{out}");
        assert!(convert(ConvertArgs {
            input: path.clone(),
            output: converted.clone(),
            strict: true,
        })
        .is_err());
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&converted).ok();
    }

    #[test]
    fn bench_small_suite_writes_and_gates_a_valid_artifact() {
        let json = tmp("bench_small.json");
        // `small` (Tiny scale, 2 algorithms) keeps this test quick.
        let out = bench(BenchArgs::Run(BenchRunArgs {
            suite: "small".into(),
            json: Some(json.clone()),
            threads: None,
        }))
        .unwrap();
        assert!(out.contains("suite 'small'"), "{out}");
        assert!(out.contains("edges/s"), "{out}");

        // The artifact round-trips and self-compares clean at 0 tolerance.
        let report =
            lotus_bench::BenchReport::parse(&std::fs::read_to_string(&json).unwrap()).unwrap();
        assert!(!report.runs.is_empty());
        let out = bench(BenchArgs::Compare(BenchCompareArgs {
            baseline: json.clone(),
            current: json.clone(),
            tolerance: 0.0,
        }))
        .unwrap();
        assert!(out.contains("result: PASS"), "{out}");

        // An injected beyond-tolerance regression fails with exit code 1.
        let mut slow = report.clone();
        for run in &mut slow.runs {
            run.wall_ms *= 2.0;
        }
        let slow_path = tmp("bench_small_slow.json");
        std::fs::write(&slow_path, slow.to_pretty_string()).unwrap();
        let err = bench(BenchArgs::Compare(BenchCompareArgs {
            baseline: json.clone(),
            current: slow_path.clone(),
            tolerance: 0.25,
        }))
        .unwrap_err();
        assert_eq!(err.code, 1);
        assert!(err.message.contains("REGRESSION"), "{}", err.message);

        // A triangle-count change fails even at huge tolerance.
        let mut wrong = report;
        wrong.runs[0].triangles += 1;
        std::fs::write(&slow_path, wrong.to_pretty_string()).unwrap();
        let err = bench(BenchArgs::Compare(BenchCompareArgs {
            baseline: json.clone(),
            current: slow_path.clone(),
            tolerance: 100.0,
        }))
        .unwrap_err();
        assert_eq!(err.code, 1);
        assert!(err.message.contains("triangle count"), "{}", err.message);

        std::fs::remove_file(&json).ok();
        std::fs::remove_file(&slow_path).ok();
    }

    #[test]
    fn bench_rejects_unknown_suite_and_bad_artifacts() {
        let err = bench(BenchArgs::Run(BenchRunArgs {
            suite: "nope".into(),
            json: None,
            threads: None,
        }))
        .unwrap_err();
        assert_eq!(err.code, 2);
        assert!(err.message.contains("unknown suite"), "{}", err.message);

        let err = bench(BenchArgs::Compare(BenchCompareArgs {
            baseline: "/nonexistent/base.json".into(),
            current: "/nonexistent/cur.json".into(),
            tolerance: 0.25,
        }))
        .unwrap_err();
        assert_eq!(err.code, 1);
        assert!(err.message.contains("cannot read"), "{}", err.message);

        let bad = tmp("bench_bad.json");
        std::fs::write(&bad, "{\"schema_version\": 99}").unwrap();
        let err = bench(BenchArgs::Compare(BenchCompareArgs {
            baseline: bad.clone(),
            current: bad.clone(),
            tolerance: 0.25,
        }))
        .unwrap_err();
        assert_eq!(err.code, 1);
        assert!(
            err.message.contains("not a valid BENCH.json"),
            "{}",
            err.message
        );
        std::fs::remove_file(&bad).ok();
    }

    #[test]
    fn query_and_loadgen_against_in_process_daemon() {
        let handle = lotus_serve::spawn(lotus_serve::ServeConfig::default()).unwrap();
        let addr = handle.addr().to_string();

        let out = query(QueryArgs {
            addr: addr.clone(),
            action: QueryAction::Ping,
            deadline_ms: None,
        })
        .unwrap();
        assert!(out.contains("pong"), "{out}");

        let out = query(QueryArgs {
            addr: addr.clone(),
            action: QueryAction::Load {
                name: "g".into(),
                spec: "rmat:7:8:5".into(),
            },
            deadline_ms: None,
        })
        .unwrap();
        assert!(out.contains("loaded"), "{out}");
        let out = query(QueryArgs {
            addr: addr.clone(),
            action: QueryAction::Count { name: "g".into() },
            deadline_ms: None,
        })
        .unwrap();
        assert!(out.contains("triangles"), "{out}");

        // A 0 ms deadline maps onto the interrupted exit code.
        let err = query(QueryArgs {
            addr: addr.clone(),
            action: QueryAction::Count { name: "g".into() },
            deadline_ms: Some(0),
        })
        .unwrap_err();
        assert_eq!(err.code, 124, "{}", err.message);
        // An unknown graph is a runtime error.
        let err = query(QueryArgs {
            addr: addr.clone(),
            action: QueryAction::Count {
                name: "missing".into(),
            },
            deadline_ms: None,
        })
        .unwrap_err();
        assert_eq!(err.code, 1, "{}", err.message);

        // A tiny loadgen run writes a parseable serve section.
        let json = tmp("loadgen.json");
        let out = loadgen(LoadgenCliArgs {
            addr: addr.clone(),
            suite: None,
            connections: Some(2),
            requests: Some(5),
            seed: Some(7),
            graph: Some("rmat:7:8:5".into()),
            deadline_ms: None,
            json: Some(json.clone()),
            pipeline: Some(2),
            legacy_threads: false,
            cluster: false,
        })
        .unwrap();
        assert!(out.contains("latency p50"), "{out}");
        let section =
            lotus_bench::ServeSection::from_document(&std::fs::read_to_string(&json).unwrap())
                .unwrap()
                .expect("serve section");
        assert_eq!(section.suite, "custom");
        assert_eq!(section.requests, 10);
        assert_eq!(section.ok + section.overloaded + section.errors, 10);
        assert_eq!(section.open_conns, 2);
        assert!(section.max_sustained_rps > 0.0);
        // The artifact is a full BENCH.json document and self-compares
        // clean at zero tolerance — exactly what the serve-load CI gate
        // runs against the checked-in serve baseline.
        lotus_bench::BenchReport::parse(&std::fs::read_to_string(&json).unwrap()).unwrap();
        let out = bench(BenchArgs::Compare(BenchCompareArgs {
            baseline: json.clone(),
            current: json.clone(),
            tolerance: 0.0,
        }))
        .unwrap();
        assert!(out.contains("result: PASS"), "{out}");
        std::fs::remove_file(&json).ok();

        // Drain through the client path shuts the daemon down.
        let out = query(QueryArgs {
            addr,
            action: QueryAction::Drain,
            deadline_ms: None,
        })
        .unwrap();
        assert!(out.contains("draining"), "{out}");
        handle.wait();
    }

    #[test]
    fn cluster_query_and_loadgen_against_in_process_fleet() {
        let shard = |n| {
            lotus_serve::spawn(lotus_serve::ServeConfig {
                workers: n,
                queue_capacity: 16,
                ..lotus_serve::ServeConfig::default()
            })
            .unwrap()
        };
        let shards = [shard(2), shard(2)];
        let extra = shard(2);
        let coordinator = lotus_cluster::spawn(lotus_cluster::ClusterConfig {
            shards: shards.iter().map(|s| s.addr().to_string()).collect(),
            ..lotus_cluster::ClusterConfig::default()
        })
        .unwrap();
        let addr = coordinator.addr().to_string();

        // `query join` grows the fleet through the one-shot client.
        let out = query(QueryArgs {
            addr: addr.clone(),
            action: QueryAction::Join {
                addr: extra.addr().to_string(),
            },
            deadline_ms: None,
        })
        .unwrap();
        assert!(out.contains("\"shards\": 3"), "{out}");

        // A cluster loadgen run writes a parseable cluster section with
        // the fleet size, beside no serve section at all.
        let json = tmp("loadgen_cluster.json");
        let out = loadgen(LoadgenCliArgs {
            addr: addr.clone(),
            suite: None,
            connections: Some(2),
            requests: Some(5),
            seed: Some(7),
            graph: Some("rmat:7:8:5".into()),
            deadline_ms: None,
            json: Some(json.clone()),
            pipeline: Some(2),
            legacy_threads: false,
            cluster: true,
        })
        .unwrap();
        assert!(out.contains("wrote cluster section"), "{out}");
        let text = std::fs::read_to_string(&json).unwrap();
        let section = lotus_bench::ClusterSection::from_document(&text)
            .unwrap()
            .expect("cluster section");
        assert_eq!(section.shards, 3);
        assert_eq!(section.section.requests, 10);
        assert_eq!(section.section.errors, 0, "{text}");
        assert_eq!(lotus_bench::ServeSection::from_document(&text), Ok(None));
        std::fs::remove_file(&json).ok();

        // `query shard-stat` aggregates fleet occupancy (the loadgen
        // warm-up graph is still placed).
        let out = query(QueryArgs {
            addr,
            action: QueryAction::ShardStat,
            deadline_ms: None,
        })
        .unwrap();
        assert!(out.contains("\"shard_graphs\": 1"), "{out}");

        coordinator.shutdown();
        for s in shards {
            s.shutdown();
        }
        extra.shutdown();
    }

    #[test]
    fn end_to_end_through_parser() {
        let path = tmp("e2e.el");
        std::fs::write(&path, "0 1\n1 2\n0 2\n2 3\n").unwrap();
        let cmd = parse(&["count", &path]).unwrap();
        let out = crate::run(cmd).unwrap();
        assert!(out.contains("triangles: 1"), "{out}");
        std::fs::remove_file(&path).ok();
    }

    fn extract_triangles(out: &str) -> u64 {
        out.lines()
            .find_map(|l| l.strip_prefix("triangles: "))
            .expect("triangles line")
            .trim()
            .parse()
            .expect("number")
    }
}
