//! Subcommand implementations.

use std::fmt::Write as _;
use std::time::Instant;

use lotus_algos::bbtc::BbtcCounter;
use lotus_algos::edge_iterator::edge_iterator_count_timed;
use lotus_algos::forward::ForwardCounter;
use lotus_algos::gbbs::gbbs_count_timed;
use lotus_algos::intersect::IntersectKind;
use lotus_analysis::hub_stats::hub_stats;
use lotus_analysis::topology_size::topology_sizes;
use lotus_core::adaptive::{adaptive_count, AdaptiveConfig, ChosenAlgorithm};
use lotus_core::config::{HubCount, LotusConfig};
use lotus_core::count::LotusCounter;
use lotus_core::per_vertex::count_per_vertex;
use lotus_core::preprocess::build_lotus_graph;
use lotus_gen::{BarabasiAlbert, ErdosRenyi, Rmat, RmatParams, WattsStrogatz};
use lotus_graph::{io, EdgeList, GraphStats, UndirectedCsr};

use crate::args::{AnalyzeArgs, CheckArgs, ConvertArgs, CountArgs, GenerateArgs};

/// Loads an edge list, selecting the format by extension.
fn load_edges(path: &str) -> Result<EdgeList, String> {
    let el = if path.ends_with(".lotg") {
        io::load_binary(path)
    } else {
        io::load_edge_list_text(path)
    };
    el.map_err(|e| format!("cannot load '{path}': {e}"))
}

/// Loads a graph, selecting the format by extension.
fn load_graph(path: &str) -> Result<UndirectedCsr, String> {
    let mut el = load_edges(path)?;
    el.canonicalize();
    Ok(UndirectedCsr::from_canonical_edges(&el))
}

fn lotus_config(hubs: Option<u32>, graph: &UndirectedCsr) -> LotusConfig {
    match hubs {
        Some(n) => LotusConfig::default().with_hub_count(HubCount::Fixed(n)),
        None => LotusConfig::auto(graph),
    }
}

/// `lotus count`.
pub fn count(args: CountArgs) -> Result<String, String> {
    let graph = load_graph(&args.input)?;
    let mut out = String::new();
    let _ = writeln!(out, "{}", GraphStats::of(&graph));

    let config = lotus_config(args.hubs, &graph);
    let start = Instant::now();
    let (triangles, detail) = match args.algorithm.as_str() {
        "lotus" => {
            let r = LotusCounter::new(config).count(&graph);
            (r.total(), format!("phases: {}", r.breakdown))
        }
        "forward" => {
            let r = ForwardCounter::new().count(&graph);
            (
                r.triangles,
                format!(
                    "preprocess {:.3}s count {:.3}s",
                    r.preprocess.as_secs_f64(),
                    r.count.as_secs_f64()
                ),
            )
        }
        "edge-iterator" => {
            let r = edge_iterator_count_timed(&graph, IntersectKind::Merge);
            (r.triangles, String::new())
        }
        "gbbs" => {
            let r = gbbs_count_timed(&graph);
            (r.triangles, String::new())
        }
        "bbtc" => {
            let r = BbtcCounter::default().count(&graph);
            (r.triangles, format!("{} tiles", r.tiles))
        }
        "adaptive" => {
            let r = adaptive_count(&graph, &config, &AdaptiveConfig::default());
            let picked = match r.algorithm {
                ChosenAlgorithm::Lotus => "lotus",
                ChosenAlgorithm::Forward => "forward",
            };
            (
                r.triangles,
                format!("dispatched to {picked} (skew {:.2})", r.skew_ratio),
            )
        }
        other => return Err(format!("unknown algorithm '{other}'")),
    };
    let elapsed = start.elapsed();
    let _ = writeln!(out, "triangles: {triangles}");
    let _ = writeln!(
        out,
        "time: {:.3}s ({})",
        elapsed.as_secs_f64(),
        args.algorithm
    );
    if !detail.is_empty() {
        let _ = writeln!(out, "{detail}");
    }

    if args.per_vertex {
        let lg = build_lotus_graph(&graph, &config);
        let pv = count_per_vertex(&lg);
        let mut ranked: Vec<(u32, u64)> =
            pv.iter().enumerate().map(|(v, &t)| (v as u32, t)).collect();
        ranked.sort_unstable_by_key(|&(v, t)| (std::cmp::Reverse(t), v));
        let _ = writeln!(out, "top vertices by triangle count:");
        for (v, t) in ranked.into_iter().take(10) {
            let _ = writeln!(out, "  {v}: {t}");
        }
    }
    Ok(out)
}

/// `lotus analyze`.
pub fn analyze(args: AnalyzeArgs) -> Result<String, String> {
    let graph = load_graph(&args.input)?;
    let mut out = String::new();
    let _ = writeln!(out, "{}", GraphStats::of(&graph));

    let s = hub_stats(&graph, args.hub_fraction);
    let _ = writeln!(
        out,
        "hubs ({} = top {:.1}% by degree):",
        s.hub_count,
        args.hub_fraction * 100.0
    );
    let _ = writeln!(
        out,
        "  hub-to-hub edges:     {:>6.1}%",
        s.hub_to_hub * 100.0
    );
    let _ = writeln!(
        out,
        "  hub-to-non-hub edges: {:>6.1}%",
        s.hub_to_nonhub * 100.0
    );
    let _ = writeln!(out, "  non-hub edges:        {:>6.1}%", s.nonhub * 100.0);
    let _ = writeln!(
        out,
        "  hub triangles:        {:>6.1}%",
        s.hub_triangles * 100.0
    );
    let _ = writeln!(out, "  hub relative density: {:>6.0}x", s.relative_density);
    let _ = writeln!(out, "  fruitless accesses:   {:>6.1}%", s.fruitless * 100.0);

    let lg = build_lotus_graph(&graph, &LotusConfig::auto(&graph));
    let sizes = topology_sizes(&graph, &lg);
    let _ = writeln!(
        out,
        "topology: CSX {} B, LOTUS {} B ({:+.1}%)",
        sizes.csx,
        sizes.lotus,
        sizes.growth_percent()
    );
    Ok(out)
}

/// `lotus generate`.
pub fn generate(args: GenerateArgs) -> Result<String, String> {
    let n = 1u32 << args.scale;
    let edges = match args.kind.as_str() {
        "rmat" => {
            let params = match args.params.as_str() {
                "web" => RmatParams::WEB,
                "mild" => RmatParams::MILD,
                _ => RmatParams::GRAPH500,
            };
            Rmat {
                scale: args.scale,
                edge_factor: args.edge_factor,
                params,
                noise: 0.05,
            }
            .generate_edges(args.seed)
        }
        "ba" => BarabasiAlbert::new(n, args.edge_factor.clamp(1, n - 1)).generate_edges(args.seed),
        "er" => ErdosRenyi::new(n, args.edge_factor as u64 * n as u64).generate_edges(args.seed),
        "ws" => {
            let k = (args.edge_factor & !1).max(2).min(n - 1);
            WattsStrogatz::new(n, k, 0.1).generate_edges(args.seed)
        }
        other => return Err(format!("unknown generator '{other}'")),
    };
    save_edges(&edges, &args.output)?;
    Ok(format!(
        "wrote {} edges over {} vertices to {}",
        edges.len(),
        edges.num_vertices(),
        args.output
    ))
}

/// `lotus check`: structural validation, LOTUS-structure checks, and the
/// phase-sum cross-check; `--differential` additionally runs every
/// algorithm in the workspace and compares counts. Returns `Err` (nonzero
/// exit) when any violation is found, so it can gate CI.
pub fn check(args: CheckArgs) -> Result<String, String> {
    let graph = load_graph(&args.input)?;
    let mut out = String::new();
    let _ = writeln!(out, "{}", GraphStats::of(&graph));
    let mut violations = 0usize;

    let structural = lotus_check::Validator::new().check_undirected(&graph);
    violations += structural.len();
    let _ = writeln!(out, "structural (csr/symmetry/ordering): {structural}");

    let config = lotus_config(args.hubs, &graph);
    let lg = build_lotus_graph(&graph, &config);
    let lotus_report = lotus_check::lotus::check_lotus_graph(&lg);
    violations += lotus_report.len();
    let _ = writeln!(
        out,
        "lotus structure ({} hubs, he/nhe/h2h/relabeling): {lotus_report}",
        lg.hub_count
    );

    let result = LotusCounter::new(config).count_prepared(&lg);
    let reference = ForwardCounter::new().count(&graph).triangles;
    let phase = lotus_check::lotus::check_phase_sum(&result.stats, reference);
    violations += phase.len();
    let _ = writeln!(
        out,
        "phase sum (hhh {} + hhn {} + hnn {} + nnn {} vs forward {reference}): {phase}",
        result.stats.hhh, result.stats.hhn, result.stats.hnn, result.stats.nnn
    );

    if args.differential {
        let diff = lotus_check::differential::run(&graph);
        violations += diff.disagreements.len();
        let _ = writeln!(
            out,
            "differential ({} algorithms): {}",
            diff.runs.len(),
            diff.disagreements
        );
        if let Some(cex) = &diff.counterexample {
            let _ = writeln!(out, "minimized counterexample ({} edges):", cex.len());
            for &(u, v) in cex.pairs() {
                let _ = writeln!(out, "  {u} {v}");
            }
        }
    }

    if violations == 0 {
        let _ = writeln!(out, "ok: no violations");
        Ok(out)
    } else {
        let _ = writeln!(out, "FAILED: {violations} violation(s)");
        Err(out)
    }
}

/// `lotus convert`.
pub fn convert(args: ConvertArgs) -> Result<String, String> {
    let mut el = load_edges(&args.input)?;
    el.canonicalize();
    save_edges(&el, &args.output)?;
    Ok(format!(
        "wrote {} canonical edges to {}",
        el.len(),
        args.output
    ))
}

fn save_edges(el: &EdgeList, path: &str) -> Result<(), String> {
    let result = if path.ends_with(".lotg") {
        io::save_binary(el, path)
    } else {
        std::fs::File::create(path)
            .map_err(lotus_graph::GraphError::from)
            .and_then(|f| io::write_edge_list_text(el, f))
    };
    result.map_err(|e| format!("cannot write '{path}': {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::parse;

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join("lotus_cli_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name).to_string_lossy().into_owned()
    }

    #[test]
    fn generate_count_analyze_pipeline() {
        let path = tmp("pipeline.lotg");
        let msg = generate(GenerateArgs {
            kind: "rmat".into(),
            scale: 9,
            edge_factor: 8,
            seed: 3,
            params: "social".into(),
            output: path.clone(),
        })
        .unwrap();
        assert!(msg.contains("wrote"));

        let out = count(CountArgs {
            input: path.clone(),
            algorithm: "lotus".into(),
            hubs: None,
            per_vertex: true,
        })
        .unwrap();
        assert!(out.contains("triangles:"), "{out}");
        assert!(out.contains("top vertices"), "{out}");

        // All algorithms agree through the CLI path.
        let reference: u64 = extract_triangles(&out);
        for alg in ["forward", "edge-iterator", "gbbs", "bbtc", "adaptive"] {
            let out = count(CountArgs {
                input: path.clone(),
                algorithm: alg.into(),
                hubs: Some(64),
                per_vertex: false,
            })
            .unwrap();
            assert_eq!(extract_triangles(&out), reference, "{alg}");
        }

        let out = analyze(AnalyzeArgs {
            input: path.clone(),
            hub_fraction: 0.01,
        })
        .unwrap();
        assert!(out.contains("hub triangles"), "{out}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn convert_text_to_binary_round_trip() {
        let txt = tmp("conv.el");
        let bin = tmp("conv.lotg");
        std::fs::write(&txt, "0 1\n1 2\n2 0\n").unwrap();
        convert(ConvertArgs {
            input: txt.clone(),
            output: bin.clone(),
        })
        .unwrap();
        let out = count(CountArgs {
            input: bin.clone(),
            algorithm: "forward".into(),
            hubs: None,
            per_vertex: false,
        })
        .unwrap();
        assert_eq!(extract_triangles(&out), 1);
        std::fs::remove_file(&txt).ok();
        std::fs::remove_file(&bin).ok();
    }

    #[test]
    fn check_reports_clean_rmat() {
        let path = tmp("check.lotg");
        generate(GenerateArgs {
            kind: "rmat".into(),
            scale: 8,
            edge_factor: 8,
            seed: 11,
            params: "social".into(),
            output: path.clone(),
        })
        .unwrap();
        let out = check(CheckArgs {
            input: path.clone(),
            hubs: Some(32),
            differential: true,
        })
        .unwrap();
        assert!(out.contains("ok: no violations"), "{out}");
        assert!(out.contains("differential"), "{out}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn count_rejects_unknown_algorithm() {
        let path = tmp("empty.el");
        std::fs::write(&path, "0 1\n").unwrap();
        let err = count(CountArgs {
            input: path.clone(),
            algorithm: "quantum".into(),
            hubs: None,
            per_vertex: false,
        })
        .unwrap_err();
        assert!(err.contains("unknown algorithm"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_a_clean_error() {
        let err = count(CountArgs {
            input: "/nonexistent/graph.el".into(),
            algorithm: "lotus".into(),
            hubs: None,
            per_vertex: false,
        })
        .unwrap_err();
        assert!(err.contains("cannot load"));
    }

    #[test]
    fn end_to_end_through_parser() {
        let path = tmp("e2e.el");
        std::fs::write(&path, "0 1\n1 2\n0 2\n2 3\n").unwrap();
        let cmd = parse(&["count", &path]).unwrap();
        let out = crate::run(cmd).unwrap();
        assert!(out.contains("triangles: 1"), "{out}");
        std::fs::remove_file(&path).ok();
    }

    fn extract_triangles(out: &str) -> u64 {
        out.lines()
            .find_map(|l| l.strip_prefix("triangles: "))
            .expect("triangles line")
            .trim()
            .parse()
            .expect("number")
    }
}
