//! Implementation of the `lotus` command-line tool.
//!
//! Subcommands:
//!
//! * `count <graph> [--algorithm A] [--hubs N]` — triangle counting.
//! * `analyze <graph> [--hub-fraction F]` — hub/topology analysis (§3).
//! * `generate <kind> --scale S [--edge-factor F] [--seed X] -o FILE` —
//!   synthetic graph generation.
//! * `convert <in> <out>` — text ↔ binary edge-list conversion.
//! * `check <graph> [--hubs N] [--differential]` — structural and LOTUS
//!   invariant audit, optionally cross-checking every algorithm's count.
//!
//! Graph files are whitespace edge lists (`.txt`, `.el`) or the binary
//! `.lotg` format; the format is chosen by extension.

pub mod args;
pub mod commands;

pub use args::{parse, Command, ParseError};

/// Runs a parsed command, returning the text to print.
pub fn run(cmd: Command) -> Result<String, String> {
    match cmd {
        Command::Count(c) => commands::count(c),
        Command::Analyze(c) => commands::analyze(c),
        Command::Generate(c) => commands::generate(c),
        Command::Convert(c) => commands::convert(c),
        Command::Check(c) => commands::check(c),
        Command::Help => Ok(args::USAGE.to_string()),
    }
}
