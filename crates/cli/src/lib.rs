//! Implementation of the `lotus` command-line tool.
//!
//! Subcommands:
//!
//! * `count <graph> [--algorithm A] [--hubs N]` — triangle counting.
//! * `analyze <graph> [--hub-fraction F]` — hub/topology analysis (§3).
//! * `generate <kind> --scale S [--edge-factor F] [--seed X] -o FILE` —
//!   synthetic graph generation.
//! * `convert <in> <out>` — text ↔ binary edge-list conversion.
//! * `check <graph> [--hubs N] [--differential]` — structural and LOTUS
//!   invariant audit, optionally cross-checking every algorithm's count.
//! * `bench [--suite S] [--json FILE]` — named benchmark suites emitting
//!   the machine-readable `BENCH.json` artifact; `bench compare` diffs
//!   two artifacts and fails on regressions (the CI perf gate).
//! * `serve [--port P] [--preload NAME=SPEC] [--data-dir DIR]` — the
//!   graph query daemon (DESIGN.md §11); with `--data-dir` it persists
//!   registered graphs and recovers them on restart (DESIGN.md §13).
//!   `serve recover <dir>` replays a data directory offline; `query
//!   <addr> <action>` is the one-shot client and `loadgen <addr>` the
//!   latency-measuring harness.
//! * `cluster serve|shard|query` — the sharded counting fleet
//!   (DESIGN.md §16): a coordinator fanning requests over shard
//!   daemons, a shard verb that self-registers with a coordinator, and
//!   a query alias (the coordinator speaks the same LSRV protocol).
//!
//! Graph files are whitespace edge lists (`.txt`, `.el`) or the binary
//! `.lotg` format; the format is chosen by extension.
//!
//! Exit codes: 0 success (including degraded runs — the degradation is
//! printed), 1 runtime error, 2 usage error, 101 isolated worker panic,
//! 124 interrupted (`--timeout`, matching timeout(1)).

pub mod args;
pub mod commands;

pub use args::{parse, Command, ParseError};
pub use commands::CliError;

/// Runs a parsed command, returning the text to print or a structured
/// error carrying the process exit code.
///
/// # Errors
/// Returns the command's [`CliError`], which carries the process exit
/// code.
pub fn run(cmd: Command) -> Result<String, CliError> {
    match cmd {
        Command::Count(c) => commands::count(c),
        Command::Analyze(c) => commands::analyze(c),
        Command::Generate(c) => commands::generate(c),
        Command::Convert(c) => commands::convert(c),
        Command::Check(c) => commands::check(c),
        Command::Bench(c) => commands::bench(c),
        Command::Serve(c) => commands::serve(c),
        Command::ServeRecover(c) => commands::serve_recover(c),
        Command::ClusterServe(c) => commands::cluster_serve(c),
        Command::ClusterShard(c) => commands::cluster_shard(c),
        Command::Query(c) => commands::query(c),
        Command::Loadgen(c) => commands::loadgen(c),
        Command::Help => Ok(args::USAGE.to_string()),
    }
}
