//! End-to-end crash durability: `kill -9` a live daemon while it is
//! inside a snapshot write, restart it on the same data directory, and
//! assert it quarantines the torn file and serves bit-identical counts
//! for every graph whose registration was durably acknowledged.
//!
//! Requires `--features fault-injection`: the daemon under test is held
//! mid-write by a `stall` fault armed through `LOTUS_FAULT_PLAN`, which
//! turns "kill at exactly the wrong instant" into a deterministic test.

#![cfg(feature = "fault-injection")]

use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use lotus_serve::store::{enc_name, snapshot_dir};
use lotus_serve::{Client, Request, Response};

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lotus-crash-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Spawns `lotus serve --data-dir <dir>` and returns the child plus the
/// bound address scraped from its stdout.
fn spawn_daemon(data_dir: &Path, fault_plan: Option<&str>) -> (Child, String) {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_lotus"));
    cmd.args([
        "serve",
        "--port",
        "0",
        "--data-dir",
        data_dir.to_str().unwrap(),
    ])
    .stdout(Stdio::piped())
    .stderr(Stdio::null());
    match fault_plan {
        Some(plan) => cmd.env("LOTUS_FAULT_PLAN", plan),
        None => cmd.env_remove("LOTUS_FAULT_PLAN"),
    };
    let mut child = cmd.spawn().expect("spawn daemon");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut lines = BufReader::new(stdout).lines();
    let addr = loop {
        let line = lines
            .next()
            .expect("daemon exited before listening")
            .expect("read stdout");
        if let Some(addr) = line.strip_prefix("listening on ") {
            break addr.to_string();
        }
    };
    // Keep draining stdout so the daemon never blocks on a full pipe.
    std::thread::spawn(move || for _ in lines {});
    (child, addr)
}

fn connect(addr: &str) -> Client {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match Client::connect(addr) {
            Ok(client) => return client,
            Err(e) if Instant::now() < deadline => {
                let _ = e;
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(e) => panic!("connect {addr}: {e}"),
        }
    }
}

fn load(client: &mut Client, name: &str, spec: &str) {
    match client.call(&Request::LoadGraph {
        name: name.into(),
        spec: spec.into(),
    }) {
        Ok(Response::Loaded { .. }) => {}
        other => panic!("LoadGraph {name}: {other:?}"),
    }
}

fn count(client: &mut Client, name: &str) -> u64 {
    match client.call(&Request::Count {
        name: name.into(),
        deadline_ms: lotus_serve::proto::NO_DEADLINE,
    }) {
        Ok(Response::Count { triangles, .. }) => triangles,
        other => panic!("Count {name}: {other:?}"),
    }
}

#[test]
fn kill_nine_mid_snapshot_recovers_identical_counts() {
    let dir = tmp_dir("kill9");

    // Phase 1 — a clean daemon registers two graphs durably and we
    // record their ground-truth counts.
    let (mut daemon, addr) = spawn_daemon(&dir, None);
    let mut client = connect(&addr);
    load(&mut client, "keep1", "rmat:9:8:7");
    load(&mut client, "keep2", "er:512:2048:11");
    let want1 = count(&mut client, "keep1");
    let want2 = count(&mut client, "keep2");
    assert!(client.call(&Request::Drain).is_ok());
    let _ = daemon.wait();

    // Phase 2 — a daemon armed to stall inside the second 4 KiB chunk
    // of any snapshot write. Registering `victim` wedges mid-write with
    // a genuinely torn temp file on disk; SIGKILL lands right there.
    let (mut daemon, addr) = spawn_daemon(&dir, Some("serve.snapshot.write=stall:60000@2"));
    let addr2 = addr.clone();
    let loader = std::thread::spawn(move || {
        let mut client = connect(&addr2);
        // This call never completes: the worker stalls, then dies.
        let _ = client.call(&Request::LoadGraph {
            name: "victim".into(),
            spec: "rmat:9:8:3".into(),
        });
    });
    let temp = snapshot_dir(&dir).join(format!("{}.lotg.tmp", enc_name("victim")));
    let deadline = Instant::now() + Duration::from_secs(20);
    while !temp.exists() {
        assert!(Instant::now() < deadline, "daemon never reached the write");
        std::thread::sleep(Duration::from_millis(10));
    }
    daemon.kill().expect("SIGKILL the daemon");
    let _ = daemon.wait();
    let _ = loader.join();
    assert!(temp.exists(), "the torn temp survives the kill");

    // Phase 3 — restart on the same directory: the torn temp is
    // quarantined, both durable graphs come back, and their counts are
    // bit-identical to phase 1.
    let (mut daemon, addr) = spawn_daemon(&dir, None);
    let mut client = connect(&addr);
    assert_eq!(count(&mut client, "keep1"), want1);
    assert_eq!(count(&mut client, "keep2"), want2);
    assert!(!temp.exists(), "torn temp was moved aside");
    assert!(dir.join("quarantine").read_dir().unwrap().next().is_some());

    match client.call(&Request::Stats) {
        Ok(Response::Stats(stats)) => {
            // Phase 1's clean shutdown checkpointed the journal, so the
            // two registrations replay as one Checkpoint record.
            assert!(stats.journal_replays >= 1, "{stats:?}");
            assert!(stats.recovery_quarantined >= 1, "{stats:?}");
            assert!(stats.recovery_ms < 5_000, "{stats:?}");
        }
        other => panic!("Stats: {other:?}"),
    }
    // `victim` was never durably acknowledged, so the restarted daemon
    // must not serve it from disk (counting it now rebuilds it fresh).
    match client.call(&Request::EvictGraph {
        name: "victim".into(),
    }) {
        Ok(Response::Error { .. } | Response::Evicted { .. }) => {}
        other => panic!("EvictGraph victim: {other:?}"),
    }
    assert!(client.call(&Request::Drain).is_ok());
    let _ = daemon.wait();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn serve_recover_cli_reports_and_heals_offline() {
    let dir = tmp_dir("cli-recover");

    // Seed one durable graph, then fake a crash artifact by hand.
    let (mut daemon, addr) = spawn_daemon(&dir, None);
    let mut client = connect(&addr);
    load(&mut client, "g", "rmat:8:8:5");
    assert!(client.call(&Request::Drain).is_ok());
    let _ = daemon.wait();
    std::fs::write(
        snapshot_dir(&dir).join(format!("{}.lotg.tmp", enc_name("torn"))),
        b"partial bytes",
    )
    .unwrap();

    // Dry run reports damage (exit 1) without touching the file.
    let out = Command::new(env!("CARGO_BIN_EXE_lotus"))
        .args(["serve", "recover", dir.to_str().unwrap(), "--dry-run"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1), "damage found => exit 1");
    assert!(snapshot_dir(&dir)
        .join(format!("{}.lotg.tmp", enc_name("torn")))
        .exists());

    // A real pass quarantines it and writes the JSON artifact.
    let json_path = dir.join("recovery.json");
    let out = Command::new(env!("CARGO_BIN_EXE_lotus"))
        .args([
            "serve",
            "recover",
            dir.to_str().unwrap(),
            "--json",
            json_path.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert_eq!(
        out.status.code(),
        Some(1),
        "quarantining run reports damage"
    );
    let report = std::fs::read_to_string(&json_path).unwrap();
    assert!(report.contains("\"recovered\": 1"), "{report}");
    assert!(report.contains("torn temp"), "{report}");

    // Healed: the next pass is clean and exits 0.
    let out = Command::new(env!("CARGO_BIN_EXE_lotus"))
        .args(["serve", "recover", dir.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let _ = std::fs::remove_dir_all(&dir);
}
