//! The cluster coordinator daemon (DESIGN.md §16).
//!
//! A thread-per-connection LSRV front-end that owns the shard map and
//! answers the same wire protocol as a single `lotus-serve` daemon —
//! clients do not change. Graph queries fan out to every shard holding
//! a partition (over the pipelined [`crate::fleet`]), and per-shard
//! answers merge into one exact result:
//!
//! * `Count` → `ShardCount` to shards `0..parts`; triangles **sum**
//!   (each triangle is owned by exactly one shard — the one whose
//!   vertex range contains its apex).
//! * `PerVertex` → `ShardPerVertex`; counts sum **element-wise**.
//! * `LoadGraph` → `ShardLoad` with `(parts = fleet size, index = i)`;
//!   the placement is journaled through the PR-7 durable store before
//!   the client sees `Loaded`.
//! * `EvictGraph` → fan + journaled un-placement.
//! * `ShardJoin` / `ShardStat` — fleet membership and merged occupancy.
//!
//! A slow or dead shard resolves to a typed
//! [`ErrorKind::ShardUnavailable`] within the request deadline — never
//! a hang. With [`ClusterConfig::allow_partial`] the coordinator
//! instead degrades `Count` to a partial sum over the live shards
//! (marked `cached: false`; see DESIGN.md §16 for why this is off by
//! default).
//!
//! Lock discipline (PR-9): the map (`cluster.map`), fleet
//! (`cluster.fleet`) and journal (`cluster.journal`) mutexes are all
//! [`TracedMutex`]es and are **never nested** — every dispatch clones
//! what it needs from the map, releases it, fans out, then re-acquires
//! to record the outcome. No ordering edges, no cycles.

use std::io::Write as _;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use lotus_resilience::retry::RetryPolicy;
use lotus_resilience::Deadline;
use lotus_serve::journal::{read_journal, Journal, JournalRecord};
use lotus_serve::proto::{
    self, ErrorKind, Request, Response, StatsReply, MAX_BATCH, NO_DEADLINE,
};
use lotus_telemetry::counters::{self, Counter};
use lotus_telemetry::sync::{TracedGuard, TracedMutex};

use crate::fleet::{Fleet, FleetError, ShardCall};
use crate::map::ShardMap;

/// File name of the coordinator's shard-map journal inside
/// [`ClusterConfig::data_dir`].
pub const CLUSTER_JOURNAL: &str = "cluster.journal";

/// Coordinator configuration.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Address to bind (no port), e.g. `127.0.0.1`.
    pub bind: String,
    /// TCP port; `0` asks the OS for an ephemeral port.
    pub port: u16,
    /// Initial shard endpoints (`host:port`), joined before accepting
    /// connections. More shards may `ShardJoin` later.
    pub shards: Vec<String>,
    /// Durability directory for the shard-map journal; `None` keeps the
    /// map in memory only.
    pub data_dir: Option<PathBuf>,
    /// Fan-out deadline applied when a request carries none.
    pub default_deadline: Duration,
    /// Degraded mode: answer `Count` with a partial sum over live
    /// shards instead of `ShardUnavailable` when some shards fail.
    pub allow_partial: bool,
    /// Seed for the deterministic connect-retry backoff schedule.
    pub retry_seed: u64,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            bind: "127.0.0.1".to_string(),
            port: 0,
            shards: Vec::new(),
            data_dir: None,
            default_deadline: Duration::from_secs(10),
            allow_partial: false,
            retry_seed: 0x10705,
        }
    }
}

/// Coordinator startup failure.
#[derive(Debug)]
pub enum ClusterError {
    /// Socket setup failed.
    Io(std::io::Error),
    /// The shard-map journal could not be read or opened.
    Journal(std::io::Error),
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::Io(e) => write!(f, "coordinator socket error: {e}"),
            ClusterError::Journal(e) => write!(f, "shard-map journal error: {e}"),
        }
    }
}

impl std::error::Error for ClusterError {}

/// Always-on coordinator counters (relaxed atomics, mirrored into
/// `lotus_telemetry::counters` in armed builds).
#[derive(Debug, Default)]
pub struct ClusterStats {
    served: AtomicU64,
    fanout_calls: AtomicU64,
    shard_failures: AtomicU64,
    partial_answers: AtomicU64,
    conns_accepted: AtomicU64,
}

impl ClusterStats {
    /// Requests answered (any outcome).
    #[must_use]
    pub fn served(&self) -> u64 {
        self.served.load(Ordering::Relaxed)
    }

    /// Individual shard calls fanned out.
    #[must_use]
    pub fn fanout_calls(&self) -> u64 {
        self.fanout_calls.load(Ordering::Relaxed)
    }

    /// Shard calls that resolved to an error (dead/slow/desynced).
    #[must_use]
    pub fn shard_failures(&self) -> u64 {
        self.shard_failures.load(Ordering::Relaxed)
    }

    /// Degraded partial `Count` answers returned.
    #[must_use]
    pub fn partial_answers(&self) -> u64 {
        self.partial_answers.load(Ordering::Relaxed)
    }

    /// Connections accepted since startup.
    #[must_use]
    pub fn conns_accepted(&self) -> u64 {
        self.conns_accepted.load(Ordering::Relaxed)
    }
}

/// Shared coordinator state (map + fleet + journal + counters).
#[derive(Debug)]
pub struct ClusterState {
    config: ClusterConfig,
    map: TracedMutex<ShardMap>,
    fleet: TracedMutex<Fleet>,
    journal: Option<TracedMutex<Journal>>,
    stats: ClusterStats,
    shutdown: AtomicBool,
    started: Instant,
}

impl ClusterState {
    /// Coordinator counters.
    #[must_use]
    pub fn stats(&self) -> &ClusterStats {
        &self.stats
    }

    /// Whether drain has been requested.
    #[must_use]
    pub fn draining(&self) -> bool {
        self.shutdown.load(Ordering::Relaxed)
    }

    /// Requests shutdown: the accept loop exits on its next poll.
    pub fn begin_drain(&self) {
        self.shutdown.store(true, Ordering::Relaxed);
    }

    fn lock_map(&self) -> TracedGuard<'_, ShardMap> {
        self.map
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn lock_fleet(&self) -> TracedGuard<'_, Fleet> {
        self.fleet
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Appends one record to the shard-map journal (fsynced per append,
    /// same guarantee as the PR-7 registry manifest). Journal I/O
    /// failures are surfaced to the caller so admin replies can report
    /// them instead of claiming durability that did not happen.
    fn journal_append(&self, record: &JournalRecord) -> Result<(), std::io::Error> {
        let Some(journal) = self.journal.as_ref() else {
            return Ok(());
        };
        journal
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .append(record)
    }

    /// Fans `calls` out through the fleet under one deadline.
    fn fan_out(
        &self,
        calls: &[ShardCall],
        deadline: Deadline,
    ) -> Vec<Result<Response, FleetError>> {
        self.stats
            .fanout_calls
            .fetch_add(calls.len() as u64, Ordering::Relaxed);
        counters::add(Counter::ClusterFanoutCalls, calls.len() as u64);
        let replies = self.lock_fleet().broadcast(calls, deadline);
        let failures = replies.iter().filter(|r| r.is_err()).count() as u64;
        if failures > 0 {
            self.stats
                .shard_failures
                .fetch_add(failures, Ordering::Relaxed);
            counters::add(Counter::ClusterShardFailures, failures);
        }
        replies
    }

    fn effective_deadline(&self, deadline_ms: u64) -> Deadline {
        if deadline_ms == NO_DEADLINE {
            Deadline::after(self.config.default_deadline)
        } else {
            Deadline::after(Duration::from_millis(deadline_ms))
        }
    }
}

/// Handle to a running coordinator.
#[derive(Debug)]
pub struct CoordinatorHandle {
    addr: SocketAddr,
    state: Arc<ClusterState>,
    accept: Option<JoinHandle<()>>,
}

impl CoordinatorHandle {
    /// The bound address (port `0` resolved).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared coordinator state, for tests and embedding.
    #[must_use]
    pub fn state(&self) -> &Arc<ClusterState> {
        &self.state
    }

    /// Requests shutdown (same path as a `Drain` request).
    pub fn shutdown(&self) {
        self.state.begin_drain();
    }

    /// Blocks until the accept loop exits. Connections already accepted
    /// finish serving their client and close when the client does.
    pub fn wait(mut self) {
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for CoordinatorHandle {
    fn drop(&mut self) {
        self.state.begin_drain();
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
    }
}

/// Starts a coordinator: recovers the shard map from the journal (if a
/// data dir is configured), registers the configured shard endpoints,
/// binds, and spawns the accept loop.
///
/// # Errors
/// [`ClusterError::Journal`] when the journal cannot be read or opened;
/// [`ClusterError::Io`] when the listener cannot bind.
pub fn spawn(config: ClusterConfig) -> Result<CoordinatorHandle, ClusterError> {
    let mut map = ShardMap::new();
    let mut journal = None;
    if let Some(dir) = config.data_dir.as_ref() {
        std::fs::create_dir_all(dir).map_err(ClusterError::Journal)?;
        let path = dir.join(CLUSTER_JOURNAL);
        if path.exists() {
            let readout = read_journal(&path).map_err(ClusterError::Journal)?;
            let (recovered, errors) = ShardMap::from_entries(&readout.fold());
            // Per-entry damage is tolerated (the map degrades), but it
            // is not silent: counted for the operator.
            counters::add(
                Counter::ClusterMapRecoveryErrors,
                errors.len() as u64,
            );
            map = recovered;
        }
        journal = Some(TracedMutex::new(
            "cluster.journal",
            Journal::open(&path).map_err(ClusterError::Journal)?,
        ));
    }

    let retry = RetryPolicy::serve_default(config.retry_seed);
    let mut fleet = Fleet::new(map.endpoints(), retry);
    // Configured endpoints join after recovered ones; re-listing a
    // recovered endpoint is a no-op.
    let mut join_records = Vec::new();
    for addr in &config.shards {
        if let Some((_index, (key, value))) = map.join(addr) {
            fleet.push_endpoint(addr);
            join_records.push(JournalRecord::Register {
                name: key,
                spec: value,
            });
        }
    }

    let state = Arc::new(ClusterState {
        config,
        map: TracedMutex::new("cluster.map", map),
        fleet: TracedMutex::new("cluster.fleet", fleet),
        journal,
        stats: ClusterStats::default(),
        shutdown: AtomicBool::new(false),
        started: Instant::now(),
    });
    for record in &join_records {
        state.journal_append(record).map_err(ClusterError::Journal)?;
    }

    let listener = TcpListener::bind((state.config.bind.as_str(), state.config.port))
        .map_err(ClusterError::Io)?;
    let addr = listener.local_addr().map_err(ClusterError::Io)?;
    listener.set_nonblocking(true).map_err(ClusterError::Io)?;

    let accept_state = Arc::clone(&state);
    let accept = std::thread::Builder::new()
        .name("cluster-accept".to_string())
        .spawn(move || accept_loop(&listener, &accept_state))
        .map_err(ClusterError::Io)?;

    Ok(CoordinatorHandle {
        addr,
        state,
        accept: Some(accept),
    })
}

/// Polls the nonblocking listener (via the shared `accept4` fast path)
/// until drain, handing each connection to its own handler thread.
fn accept_loop(listener: &TcpListener, state: &Arc<ClusterState>) {
    while !state.draining() {
        match lotus_net::accept_nonblocking(listener) {
            Ok(Some(stream)) => {
                state.stats.conns_accepted.fetch_add(1, Ordering::Relaxed);
                let _ = stream.set_nodelay(true);
                // The handler reads with blocking frame I/O.
                if stream.set_nonblocking(false).is_err() {
                    continue;
                }
                let conn_state = Arc::clone(state);
                let spawned = std::thread::Builder::new()
                    .name("cluster-conn".to_string())
                    .spawn(move || serve_connection(stream, &conn_state));
                if spawned.is_err() {
                    // Thread exhaustion: drop the connection rather
                    // than wedge the accept loop.
                    continue;
                }
            }
            Ok(None) => std::thread::sleep(Duration::from_millis(5)),
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

/// Serves one client connection: frame in, dispatch, frame out, until
/// EOF, protocol damage, or `Drain`.
fn serve_connection(mut stream: TcpStream, state: &Arc<ClusterState>) {
    loop {
        let request = match proto::read_frame(&mut stream).and_then(|p| Request::decode(&p)) {
            Ok(request) => request,
            Err(proto::ProtoError::Io(_)) => return,
            Err(e) => {
                let resp =
                    Response::error(ErrorKind::Protocol, format!("malformed request: {e}"));
                let _ = proto::write_response(&mut stream, &resp);
                return;
            }
        };
        let draining = matches!(request, Request::Drain);
        let response = dispatch(state, &request);
        state.stats.served.fetch_add(1, Ordering::Relaxed);
        if proto::write_response(&mut stream, &response).is_err() {
            return;
        }
        let _ = stream.flush();
        if draining {
            state.begin_drain();
            return;
        }
    }
}

/// Routes one request to its cluster semantics.
fn dispatch(state: &Arc<ClusterState>, request: &Request) -> Response {
    match request {
        Request::Ping => Response::Pong,
        Request::Stats => Response::Stats(coordinator_stats(state)),
        Request::Count { name, deadline_ms } => run_count(state, name, *deadline_ms),
        Request::PerVertex {
            name,
            start,
            end,
            deadline_ms,
        } => run_per_vertex(state, name, *start, *end, *deadline_ms),
        Request::KClique { .. } => Response::error(
            ErrorKind::BadRequest,
            "k-clique queries are not supported in cluster mode (DESIGN.md §16)",
        ),
        Request::LoadGraph { name, spec } => run_load(state, name, spec),
        Request::EvictGraph { name } => run_evict(state, name),
        Request::Drain => Response::Draining,
        Request::Batch(items) => run_batch(state, items),
        Request::ShardJoin { addr } => run_join(state, addr),
        Request::ShardStat => run_fleet_stat(state),
        Request::ShardLoad { .. } | Request::ShardCount { .. } | Request::ShardPerVertex { .. } => {
            Response::error(
                ErrorKind::BadRequest,
                "shard-internal request sent to the coordinator",
            )
        }
    }
}

/// `Count`: fan `ShardCount` to the placement's shards and sum.
fn run_count(state: &Arc<ClusterState>, name: &str, deadline_ms: u64) -> Response {
    let Some(placement) = state.lock_map().placement(name).cloned() else {
        return placement_not_found(name);
    };
    let deadline = state.effective_deadline(deadline_ms);
    let started = Instant::now();
    let calls: Vec<ShardCall> = (0..placement.parts as usize)
        .map(|shard| {
            (
                shard,
                Request::ShardCount {
                    name: name.to_string(),
                    deadline_ms: remaining_ms(deadline),
                },
            )
        })
        .collect();
    let replies = state.fan_out(&calls, deadline);

    let mut total = 0u64;
    let mut live = 0u32;
    let mut failures = Vec::new();
    for (shard, reply) in replies.iter().enumerate() {
        match reply {
            Ok(Response::Count { triangles, .. }) => {
                total += triangles;
                live += 1;
            }
            Ok(other) => failures.push(describe_shard_reply(shard, other)),
            Err(e) => failures.push(format!("shard {shard}: {e}")),
        }
    }
    if failures.is_empty() {
        return Response::Count {
            triangles: total,
            cached: true,
            wall_micros: started.elapsed().as_micros() as u64,
        };
    }
    if state.config.allow_partial && live > 0 {
        state
            .stats
            .partial_answers
            .fetch_add(1, Ordering::Relaxed);
        counters::add(Counter::ClusterPartialAnswers, 1);
        // Degraded mode: a partial sum over the live shards, flagged
        // `cached: false` so callers can tell it from an exact answer.
        return Response::Count {
            triangles: total,
            cached: false,
            wall_micros: started.elapsed().as_micros() as u64,
        };
    }
    shard_unavailable(&failures)
}

/// `PerVertex`: fan `ShardPerVertex` and sum element-wise. Every shard
/// resolves the default `(0, 0)` window identically (the shard CSR
/// keeps full vertex width), so windows always line up.
fn run_per_vertex(
    state: &Arc<ClusterState>,
    name: &str,
    start: u32,
    end: u32,
    deadline_ms: u64,
) -> Response {
    let Some(placement) = state.lock_map().placement(name).cloned() else {
        return placement_not_found(name);
    };
    let deadline = state.effective_deadline(deadline_ms);
    let calls: Vec<ShardCall> = (0..placement.parts as usize)
        .map(|shard| {
            (
                shard,
                Request::ShardPerVertex {
                    name: name.to_string(),
                    start,
                    end,
                    deadline_ms: remaining_ms(deadline),
                },
            )
        })
        .collect();
    let replies = state.fan_out(&calls, deadline);

    let mut merged: Option<(u32, Vec<u64>)> = None;
    let mut failures = Vec::new();
    for (shard, reply) in replies.iter().enumerate() {
        match reply {
            Ok(Response::PerVertex { start, counts }) => match merged.as_mut() {
                None => merged = Some((*start, counts.clone())),
                Some((mstart, acc)) => {
                    if *mstart != *start || acc.len() != counts.len() {
                        failures.push(format!(
                            "shard {shard}: window mismatch ({start}+{} vs {mstart}+{})",
                            counts.len(),
                            acc.len()
                        ));
                        continue;
                    }
                    for (a, c) in acc.iter_mut().zip(counts) {
                        *a += c;
                    }
                }
            },
            Ok(other) => failures.push(describe_shard_reply(shard, other)),
            Err(e) => failures.push(format!("shard {shard}: {e}")),
        }
    }
    match (failures.is_empty(), merged) {
        (true, Some((start, counts))) => Response::PerVertex { start, counts },
        (true, None) => Response::error(ErrorKind::BadRequest, "placement has no shards"),
        (false, _) => shard_unavailable(&failures),
    }
}

/// `LoadGraph`: place the graph across the whole current fleet. All
/// shards must load; the placement is journaled before the reply.
fn run_load(state: &Arc<ClusterState>, name: &str, spec: &str) -> Response {
    let parts = state.lock_map().endpoints().len() as u32;
    if parts == 0 {
        return Response::error(
            ErrorKind::BadRequest,
            "no shards have joined the coordinator",
        );
    }
    let deadline = Deadline::after(state.config.default_deadline);
    let calls: Vec<ShardCall> = (0..parts as usize)
        .map(|shard| {
            (
                shard,
                Request::ShardLoad {
                    name: name.to_string(),
                    spec: spec.to_string(),
                    parts,
                    index: shard as u32,
                },
            )
        })
        .collect();
    let replies = state.fan_out(&calls, deadline);

    let mut vertices = 0u32;
    let mut edges = 0u64;
    let mut bytes = 0u64;
    let mut failures = Vec::new();
    for (shard, reply) in replies.iter().enumerate() {
        match reply {
            Ok(Response::Loaded {
                vertices: v,
                edges: e,
                bytes: b,
                ..
            }) => {
                vertices += v;
                edges += e;
                bytes += b;
            }
            Ok(other) => failures.push(describe_shard_reply(shard, other)),
            Err(e) => failures.push(format!("shard {shard}: {e}")),
        }
    }
    if !failures.is_empty() {
        // Partial placements are never recorded: shards that did load
        // keep a harmless orphan subgraph the next successful LoadGraph
        // overwrites, but the map stays truthful.
        return shard_unavailable(&failures);
    }
    let (key, value) = state.lock_map().place(name, spec, parts);
    if let Err(e) = state.journal_append(&JournalRecord::Register {
        name: key,
        spec: value,
    }) {
        return Response::error(
            ErrorKind::DurabilityFailed,
            format!("placement loaded but journal append failed: {e}"),
        );
    }
    Response::Loaded {
        vertices,
        edges,
        bytes,
        evicted: 0,
    }
}

/// `EvictGraph`: drop the placement everywhere it lives, then unrecord.
fn run_evict(state: &Arc<ClusterState>, name: &str) -> Response {
    let Some(placement) = state.lock_map().placement(name).cloned() else {
        return Response::Evicted { existed: false };
    };
    let deadline = Deadline::after(state.config.default_deadline);
    let calls: Vec<ShardCall> = (0..placement.parts as usize)
        .map(|shard| {
            (
                shard,
                Request::EvictGraph {
                    name: name.to_string(),
                },
            )
        })
        .collect();
    // Best-effort fan-out: a dead shard cannot hold the eviction of the
    // map entry hostage — its copy dies with its process anyway.
    let _ = state.fan_out(&calls, deadline);
    let evict_key = state.lock_map().unplace(name);
    if let Some(key) = evict_key {
        if let Err(e) = state.journal_append(&JournalRecord::Evict { name: key }) {
            return Response::error(
                ErrorKind::DurabilityFailed,
                format!("evicted but journal append failed: {e}"),
            );
        }
    }
    Response::Evicted { existed: true }
}

/// `ShardJoin`: append the endpoint to the fleet (idempotent) and
/// journal the membership.
fn run_join(state: &Arc<ClusterState>, addr: &str) -> Response {
    let joined = state.lock_map().join(addr);
    let shards;
    if let Some((_index, (key, value))) = joined {
        state.lock_fleet().push_endpoint(addr);
        shards = state.lock_map().endpoints().len() as u32;
        if let Err(e) = state.journal_append(&JournalRecord::Register {
            name: key,
            spec: value,
        }) {
            return Response::error(
                ErrorKind::DurabilityFailed,
                format!("joined but journal append failed: {e}"),
            );
        }
    } else {
        shards = state.lock_map().endpoints().len() as u32;
    }
    Response::ShardJoined { shards }
}

/// `ShardStat` on the coordinator: merged occupancy across the fleet.
fn run_fleet_stat(state: &Arc<ClusterState>) -> Response {
    let parts = state.lock_map().endpoints().len();
    if parts == 0 {
        return Response::ShardStat {
            graphs: 0,
            owned_vertices: 0,
            entries: 0,
            ghost_entries: 0,
        };
    }
    let deadline = Deadline::after(state.config.default_deadline);
    let calls: Vec<ShardCall> = (0..parts).map(|shard| (shard, Request::ShardStat)).collect();
    let replies = state.fan_out(&calls, deadline);
    let mut graphs = 0u32;
    let mut owned = 0u64;
    let mut entries = 0u64;
    let mut ghosts = 0u64;
    let mut failures = Vec::new();
    for (shard, reply) in replies.iter().enumerate() {
        match reply {
            Ok(Response::ShardStat {
                graphs: g,
                owned_vertices: o,
                entries: e,
                ghost_entries: gh,
            }) => {
                graphs = graphs.max(*g);
                owned += o;
                entries += e;
                ghosts += gh;
            }
            Ok(other) => failures.push(describe_shard_reply(shard, other)),
            Err(e) => failures.push(format!("shard {shard}: {e}")),
        }
    }
    if failures.is_empty() {
        Response::ShardStat {
            graphs,
            owned_vertices: owned,
            entries,
            ghost_entries: ghosts,
        }
    } else {
        shard_unavailable(&failures)
    }
}

/// `Batch`: sequential evaluation of the non-admin sub-requests the
/// coordinator supports. Admin and nested batches answer per-item
/// typed errors, same shape as single-node batching.
fn run_batch(state: &Arc<ClusterState>, items: &[Request]) -> Response {
    if items.len() > MAX_BATCH {
        return Response::error(
            ErrorKind::BadRequest,
            format!("batch of {} exceeds the {MAX_BATCH} cap", items.len()),
        );
    }
    let responses = items
        .iter()
        .map(|item| match item {
            Request::Ping
            | Request::Stats
            | Request::Count { .. }
            | Request::PerVertex { .. }
            | Request::ShardStat => dispatch(state, item),
            _ => Response::error(
                ErrorKind::BadRequest,
                "only Ping/Stats/Count/PerVertex/ShardStat may be batched on a coordinator",
            ),
        })
        .collect();
    Response::Batch(responses)
}

/// The coordinator's own `Stats` reply: map occupancy plus coordinator
/// counters. Registry/pool fields stay zero — there is no registry or
/// worker pool here, and honest zeros beat fabricated numbers.
fn coordinator_stats(state: &Arc<ClusterState>) -> StatsReply {
    let (graphs, shards) = {
        let map = state.lock_map();
        (map.graphs() as u32, map.endpoints().len() as u32)
    };
    StatsReply {
        graphs,
        requests_served: state.stats.served(),
        conns_accepted: state.stats.conns_accepted(),
        // Reuse the worker-count slot for fleet size: the closest
        // analogue a coordinator has to "how much parallelism behind
        // this socket".
        workers: shards,
        recovery_ms: state.started.elapsed().as_millis() as u64,
        ..StatsReply::default()
    }
}

fn placement_not_found(name: &str) -> Response {
    Response::error(
        ErrorKind::NotFound,
        format!("no cluster placement for `{name}` (LoadGraph it first)"),
    )
}

fn shard_unavailable(failures: &[String]) -> Response {
    Response::error(ErrorKind::ShardUnavailable, failures.join("; "))
}

fn describe_shard_reply(shard: usize, reply: &Response) -> String {
    match reply {
        Response::Error { kind, message } => {
            format!("shard {shard}: {} ({message})", kind.name())
        }
        other => format!("shard {shard}: unexpected reply {other:?}"),
    }
}

fn remaining_ms(deadline: Deadline) -> u64 {
    let ms = deadline.remaining().as_millis();
    if ms == 0 {
        1
    } else {
        ms.min(u128::from(u64::MAX - 1)) as u64
    }
}
