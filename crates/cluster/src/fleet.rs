//! The coordinator's fan-out engine: one multiplexed nonblocking
//! connection per shard daemon, pipelined requests, deadline-bounded
//! collection (DESIGN.md §16).
//!
//! A [`Fleet`] holds at most one connection per shard endpoint and
//! reuses it across broadcasts. [`Fleet::broadcast`] writes every
//! request up front (pipelining — the LSRV daemon answers frames in
//! order per connection, so a FIFO of in-flight call indices is enough
//! to match responses), then drives all connections through one
//! [`lotus_net::Poller`] until every call resolves or the deadline
//! expires. A shard that is slow, dead, or desynced resolves its
//! pending calls to [`FleetError`] — never a hang — and its connection
//! is reset so the next broadcast starts clean.
//!
//! Connects retry transient failures under the workspace's seeded
//! backoff policy ([`lotus_resilience::retry`]), bounded by the
//! broadcast deadline.

use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::os::fd::AsRawFd;
use std::time::Duration;

use lotus_net::{Events, Interest, Poller, Token};
use lotus_resilience::retry::{is_transient_io, retry, RetryPolicy};
use lotus_resilience::Deadline;
use lotus_serve::proto::{self, FrameProgress, Request, Response};

/// Why a shard call failed to produce a response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FleetError {
    /// The shard could not be dialed (after retries) or its connection
    /// died mid-broadcast.
    Unavailable(String),
    /// The broadcast deadline expired before the shard answered.
    DeadlineExpired,
}

impl std::fmt::Display for FleetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FleetError::Unavailable(detail) => write!(f, "shard unavailable: {detail}"),
            FleetError::DeadlineExpired => write!(f, "deadline expired awaiting shard reply"),
        }
    }
}

/// One shard call of a broadcast: `(shard index, request)`.
pub type ShardCall = (usize, Request);

const READ_CHUNK: usize = 64 * 1024;
/// Poll granularity: short enough that deadline expiry is noticed
/// promptly even when no readiness arrives, long enough to stay cheap.
const WAIT_SLICE: Duration = Duration::from_millis(25);

#[derive(Debug)]
struct Conn {
    stream: TcpStream,
    read_buf: Vec<u8>,
    out: Vec<u8>,
    out_pos: usize,
    /// Broadcast-local call indices awaiting replies, FIFO (the daemon
    /// flushes responses in request order per connection).
    pending: VecDeque<usize>,
}

#[derive(Debug)]
struct Link {
    addr: String,
    conn: Option<Conn>,
}

/// The per-shard connection set. Not internally synchronized — the
/// coordinator serializes broadcasts behind one traced mutex.
#[derive(Debug)]
pub struct Fleet {
    links: Vec<Link>,
    retry: RetryPolicy,
}

impl Fleet {
    /// A fleet over `endpoints` (shard index = position), dialing with
    /// the given retry policy.
    #[must_use]
    pub fn new(endpoints: &[String], retry: RetryPolicy) -> Fleet {
        Fleet {
            links: endpoints
                .iter()
                .map(|addr| Link {
                    addr: addr.clone(),
                    conn: None,
                })
                .collect(),
            retry,
        }
    }

    /// Appends a newly joined shard endpoint.
    pub fn push_endpoint(&mut self, addr: &str) {
        self.links.push(Link {
            addr: addr.to_string(),
            conn: None,
        });
    }

    /// Endpoints currently tracked.
    #[must_use]
    pub fn len(&self) -> usize {
        self.links.len()
    }

    /// Whether the fleet tracks no shards.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.links.is_empty()
    }

    /// Sends every call to its shard (pipelined per connection) and
    /// collects responses until all resolve or `deadline` expires.
    ///
    /// Returns one result per call, in call order. A dead or slow shard
    /// yields [`FleetError`] for each of its calls; its connection is
    /// dropped so a later broadcast re-dials. Calls naming a shard
    /// index outside the fleet resolve to [`FleetError::Unavailable`].
    pub fn broadcast(
        &mut self,
        calls: &[ShardCall],
        deadline: Deadline,
    ) -> Vec<Result<Response, FleetError>> {
        let mut results: Vec<Option<Result<Response, FleetError>>> = vec![None; calls.len()];

        // Dial + enqueue. Encoding failures and unknown shards resolve
        // immediately; everything else lands in a per-link out buffer.
        for (call_idx, (shard, request)) in calls.iter().enumerate() {
            if *shard >= self.links.len() {
                results[call_idx] = Some(Err(FleetError::Unavailable(format!(
                    "shard {shard} is not in the fleet (size {})",
                    self.links.len()
                ))));
                continue;
            }
            if self.links[*shard].conn.is_none() {
                if let Err(detail) = self.dial(*shard, deadline) {
                    results[call_idx] = Some(Err(FleetError::Unavailable(detail)));
                    continue;
                }
            }
            let Some(conn) = self.links[*shard].conn.as_mut() else {
                results[call_idx] = Some(Err(FleetError::Unavailable(
                    "connection lost before send".to_string(),
                )));
                continue;
            };
            let payload = match request.encode() {
                Ok(payload) => payload,
                Err(e) => {
                    results[call_idx] =
                        Some(Err(FleetError::Unavailable(format!("encode failed: {e}"))));
                    continue;
                }
            };
            let mut frame = Vec::new();
            match proto::write_frame(&mut frame, &payload) {
                Ok(()) => {
                    conn.out.extend_from_slice(&frame);
                    conn.pending.push_back(call_idx);
                }
                Err(e) => {
                    results[call_idx] =
                        Some(Err(FleetError::Unavailable(format!("encode failed: {e}"))));
                }
            }
        }

        self.drive(deadline, &mut results);

        // Anything still unresolved hit the deadline. The connection's
        // FIFO no longer matches what the shard will send, so reset it.
        for (call_idx, slot) in results.iter_mut().enumerate() {
            if slot.is_none() {
                *slot = Some(Err(FleetError::DeadlineExpired));
                let shard = calls[call_idx].0;
                if shard < self.links.len() {
                    self.links[shard].conn = None;
                }
            }
        }
        results
            .into_iter()
            .map(|slot| slot.unwrap_or(Err(FleetError::DeadlineExpired)))
            .collect()
    }

    /// Event-drives every link with pending work until all calls
    /// resolve or the deadline passes.
    fn drive(
        &mut self,
        deadline: Deadline,
        results: &mut [Option<Result<Response, FleetError>>],
    ) {
        let poller = match Poller::new() {
            Ok(p) => p,
            Err(_) => Poller::fallback(),
        };
        let mut registered: Vec<usize> = Vec::new();
        let mut unregisterable: Vec<usize> = Vec::new();
        for shard in 0..self.links.len() {
            let Some(conn) = self.links[shard].conn.as_ref() else {
                continue;
            };
            if conn.pending.is_empty() {
                continue;
            }
            let interest = if conn.out_pos < conn.out.len() {
                Interest::BOTH
            } else {
                Interest::READ
            };
            if poller
                .register(conn.stream.as_raw_fd(), Token(shard as u64), interest)
                .is_ok()
            {
                registered.push(shard);
            } else {
                unregisterable.push(shard);
            }
        }
        for shard in unregisterable {
            self.fail_link(shard, "poller registration failed", results);
        }

        let mut events = Events::with_capacity(64);
        while results.iter().any(Option::is_none) && !deadline.expired() {
            let timeout = deadline.remaining().min(WAIT_SLICE);
            if poller.wait(&mut events, Some(timeout)).is_err() {
                break;
            }
            // Collect tokens first: handling an event may drop a
            // connection, and `events` borrows nothing from it.
            let ready: Vec<(usize, bool, bool)> = events
                .iter()
                .map(|e| (e.token.0 as usize, e.readable, e.writable))
                .collect();
            for (shard, readable, writable) in ready {
                if shard >= self.links.len() || self.links[shard].conn.is_none() {
                    continue;
                }
                if writable {
                    self.flush_out(shard, &poller, results);
                }
                if readable && self.links[shard].conn.is_some() {
                    self.drain_in(shard, results);
                }
            }
        }
        for shard in registered {
            if let Some(conn) = self.links[shard].conn.as_ref() {
                let _ = poller.deregister(conn.stream.as_raw_fd());
            }
        }
    }

    /// Connects to a shard, retrying transient failures under the
    /// seeded policy while the deadline allows.
    fn dial(&mut self, shard: usize, deadline: Deadline) -> Result<(), String> {
        let addr_str = self.links[shard].addr.clone();
        let sock_addr: SocketAddr = addr_str
            .to_socket_addrs()
            .map_err(|e| format!("bad shard address `{addr_str}`: {e}"))?
            .next()
            .ok_or_else(|| format!("shard address `{addr_str}` resolves to nothing"))?;
        let policy = self.retry;
        let (connected, _retries) = retry(
            &policy,
            |e: &std::io::Error| is_transient_io(e) && !deadline.expired(),
            || {
                let timeout = deadline.remaining().min(Duration::from_secs(1));
                if timeout.is_zero() {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::TimedOut,
                        "deadline expired before connect",
                    ));
                }
                TcpStream::connect_timeout(&sock_addr, timeout)
            },
        );
        let stream = connected.map_err(|e| format!("connect `{addr_str}`: {e}"))?;
        let _ = stream.set_nodelay(true);
        stream
            .set_nonblocking(true)
            .map_err(|e| format!("set_nonblocking `{addr_str}`: {e}"))?;
        self.links[shard].conn = Some(Conn {
            stream,
            read_buf: Vec::new(),
            out: Vec::new(),
            out_pos: 0,
            pending: VecDeque::new(),
        });
        Ok(())
    }

    /// Writes as much queued output as the socket accepts; downgrades
    /// poller interest to read-only once the buffer drains.
    fn flush_out(
        &mut self,
        shard: usize,
        poller: &Poller,
        results: &mut [Option<Result<Response, FleetError>>],
    ) {
        loop {
            let Some(conn) = self.links[shard].conn.as_mut() else {
                return;
            };
            if conn.out_pos >= conn.out.len() {
                conn.out.clear();
                conn.out_pos = 0;
                let _ = poller.reregister(
                    conn.stream.as_raw_fd(),
                    Token(shard as u64),
                    Interest::READ,
                );
                return;
            }
            match conn.stream.write(&conn.out[conn.out_pos..]) {
                Ok(0) => {
                    self.fail_link(shard, "shard closed connection mid-write", results);
                    return;
                }
                Ok(n) => conn.out_pos += n,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => {
                    self.fail_link(shard, &format!("write failed: {e}"), results);
                    return;
                }
            }
        }
    }

    /// Reads available bytes and resolves complete frames against the
    /// connection's FIFO of in-flight calls.
    fn drain_in(&mut self, shard: usize, results: &mut [Option<Result<Response, FleetError>>]) {
        let mut chunk = [0u8; READ_CHUNK];
        loop {
            let Some(conn) = self.links[shard].conn.as_mut() else {
                return;
            };
            match conn.stream.read(&mut chunk) {
                Ok(0) => {
                    self.fail_link(shard, "shard closed connection", results);
                    return;
                }
                Ok(n) => {
                    conn.read_buf.extend_from_slice(&chunk[..n]);
                    loop {
                        let Some(conn) = self.links[shard].conn.as_mut() else {
                            return;
                        };
                        match proto::try_parse_frame(&conn.read_buf) {
                            FrameProgress::Incomplete => break,
                            FrameProgress::Frame { payload, consumed } => {
                                conn.read_buf.drain(..consumed);
                                let Some(call_idx) = conn.pending.pop_front() else {
                                    self.fail_link(
                                        shard,
                                        "shard sent an unsolicited frame",
                                        results,
                                    );
                                    return;
                                };
                                match Response::decode(&payload) {
                                    Ok(response) => {
                                        results[call_idx] = Some(Ok(response));
                                    }
                                    Err(e) => {
                                        results[call_idx] = Some(Err(FleetError::Unavailable(
                                            format!("undecodable reply: {e}"),
                                        )));
                                        self.fail_link(
                                            shard,
                                            "reply stream desynced",
                                            results,
                                        );
                                        return;
                                    }
                                }
                            }
                            FrameProgress::Damaged(e) => {
                                self.fail_link(shard, &format!("framing damage: {e}"), results);
                                return;
                            }
                        }
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => {
                    self.fail_link(shard, &format!("read failed: {e}"), results);
                    return;
                }
            }
        }
    }

    /// Resolves every pending call on a link to `Unavailable` and drops
    /// its connection (the stream's FIFO can no longer be trusted).
    fn fail_link(
        &mut self,
        shard: usize,
        detail: &str,
        results: &mut [Option<Result<Response, FleetError>>],
    ) {
        if let Some(conn) = self.links[shard].conn.take() {
            for call_idx in conn.pending {
                if results[call_idx].is_none() {
                    results[call_idx] = Some(Err(FleetError::Unavailable(format!(
                        "{} ({detail})",
                        self.links[shard].addr
                    ))));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lotus_serve::{spawn, ServeConfig};

    fn shard_daemon() -> lotus_serve::ServerHandle {
        spawn(ServeConfig {
            workers: 2,
            queue_capacity: 8,
            ..ServeConfig::default()
        })
        .expect("spawn shard daemon")
    }

    #[test]
    fn pipelined_broadcast_answers_every_call_in_order() {
        let a = shard_daemon();
        let b = shard_daemon();
        let mut fleet = Fleet::new(
            &[a.addr().to_string(), b.addr().to_string()],
            RetryPolicy::serve_default(7),
        );
        let calls: Vec<ShardCall> = (0..8).map(|i| (i % 2, Request::Ping)).collect();
        let replies = fleet.broadcast(&calls, Deadline::after(Duration::from_secs(5)));
        assert_eq!(replies.len(), 8);
        for reply in replies {
            assert_eq!(reply, Ok(Response::Pong));
        }
        a.shutdown();
        b.shutdown();
    }

    #[test]
    fn dead_shard_resolves_typed_error_within_deadline() {
        let a = shard_daemon();
        let dead_addr = {
            let victim = shard_daemon();
            let addr = victim.addr().to_string();
            victim.shutdown();
            victim.wait();
            addr
        };
        let mut fleet = Fleet::new(
            &[a.addr().to_string(), dead_addr],
            RetryPolicy {
                max_attempts: 2,
                base_delay_ms: 1,
                max_delay_ms: 2,
                seed: 7,
            },
        );
        let start = std::time::Instant::now();
        let replies = fleet.broadcast(
            &[(0, Request::Ping), (1, Request::Ping)],
            Deadline::after(Duration::from_secs(3)),
        );
        assert!(
            start.elapsed() < Duration::from_secs(3),
            "dead shard must not consume the whole deadline"
        );
        assert_eq!(replies[0], Ok(Response::Pong));
        assert!(
            matches!(replies[1], Err(FleetError::Unavailable(_))),
            "{:?}",
            replies[1]
        );
        a.shutdown();
    }

    #[test]
    fn unknown_shard_index_is_unavailable() {
        let mut fleet = Fleet::new(&[], RetryPolicy::no_retry());
        let replies = fleet.broadcast(
            &[(3, Request::Ping)],
            Deadline::after(Duration::from_millis(100)),
        );
        assert!(matches!(replies[0], Err(FleetError::Unavailable(_))));
    }
}
