//! `lotus-cluster`: the sharded counting fleet of the LOTUS workspace
//! (DESIGN.md §16).
//!
//! One coordinator daemon owns the **shard map** — which shard daemons
//! exist and which of them hold each graph — and speaks the same LSRV
//! wire protocol as a single `lotus-serve` daemon, so existing clients
//! (CLI, loadgen, tests) point at a coordinator unchanged. Each shard
//! daemon is an ordinary `lotus-serve` process answering the `Shard*`
//! requests: it builds its graph from the deterministic spec, keeps
//! only its edge-balanced [`lotus_graph::shard`] partition (owned
//! forward columns plus ghost columns), and counts the triangles whose
//! apex it owns. Per-shard answers **sum** to the exact single-node
//! result — bit-identical, not approximate.
//!
//! Modules:
//!
//! * [`map`] — the shard map, journaled through the PR-7 durable-store
//!   record format (`Register`/`Evict`/`Checkpoint` over last-wins
//!   `(key, value)` pairs).
//! * [`fleet`] — the fan-out engine: one multiplexed nonblocking
//!   connection per shard, pipelined requests, one poller, deadlines.
//! * [`coordinator`] — the daemon: accept loop, dispatch, merge logic,
//!   typed `ShardUnavailable` on slow/dead shards, optional degraded
//!   partial counts.

pub mod coordinator;
pub mod fleet;
pub mod map;

pub use coordinator::{
    spawn, ClusterConfig, ClusterError, ClusterState, ClusterStats, CoordinatorHandle,
    CLUSTER_JOURNAL,
};
pub use fleet::{Fleet, FleetError, ShardCall};
pub use map::{MapEntryError, Placement, ShardMap};
