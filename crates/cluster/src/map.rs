//! The coordinator's shard map: which shard daemons exist and which of
//! them hold each graph (DESIGN.md §16).
//!
//! The map is journaled through the PR-7 durable-store primitives
//! ([`lotus_serve::journal`]) without any new record types: every fact
//! is a last-wins `(key, value)` pair, so `Register` / `Evict` /
//! `Checkpoint` replay reconstructs it exactly.
//!
//! * `shard:<index>` → `<host:port>` — a fleet endpoint, in join order.
//!   Endpoints are append-only; index `i` is shard `i` forever (a
//!   restarted daemon re-joins under its old address).
//! * `graph:<name>` → `<parts>|<spec>` — a placement: the graph built
//!   from `spec` is split `parts` ways across shards `0..parts` (the
//!   fleet prefix at load time). Shards that join later never dilute an
//!   existing placement — fan-out must hit exactly the shards that hold
//!   partitions, or sums would be wrong.
//!
//! The `|` separator is safe because graph specs (`rmat:...`,
//! `er:...`, `path:...`) never contain it.

use std::collections::BTreeMap;
use std::fmt;

/// Where one graph lives: its deterministic spec and how many shards
/// (always the fleet prefix `0..parts`) hold a partition of it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Placement {
    /// Deterministic graph spec every shard built its partition from.
    pub spec: String,
    /// Partition count; shard `i < parts` holds edge-balanced part `i`.
    pub parts: u32,
}

/// The in-memory shard map (endpoints + placements). Persistence is the
/// caller's job: mutators return the journal `(key, value)` pair to
/// append, and [`ShardMap::from_entries`] rebuilds the map from a
/// journal readout's folded pairs.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct ShardMap {
    endpoints: Vec<String>,
    placements: BTreeMap<String, Placement>,
}

/// A malformed journal entry encountered while rebuilding the map.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MapEntryError {
    /// The offending journal key.
    pub key: String,
    /// What was wrong with it.
    pub reason: String,
}

impl fmt::Display for MapEntryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "shard-map entry `{}`: {}", self.key, self.reason)
    }
}

impl ShardMap {
    /// An empty map.
    #[must_use]
    pub fn new() -> ShardMap {
        ShardMap::default()
    }

    /// Rebuilds a map from folded journal pairs (the output of
    /// [`lotus_serve::journal::JournalReadout::fold`]). Unknown key
    /// prefixes and malformed values are collected, not fatal — the
    /// journal survives crashes, so recovery degrades per-entry.
    #[must_use]
    pub fn from_entries(entries: &[(String, String)]) -> (ShardMap, Vec<MapEntryError>) {
        let mut map = ShardMap::new();
        let mut errors = Vec::new();
        let mut shards: BTreeMap<u32, String> = BTreeMap::new();
        for (key, value) in entries {
            if let Some(index) = key.strip_prefix("shard:") {
                match index.parse::<u32>() {
                    Ok(index) => {
                        shards.insert(index, value.clone());
                    }
                    Err(_) => errors.push(MapEntryError {
                        key: key.clone(),
                        reason: "shard index is not a u32".to_string(),
                    }),
                }
            } else if let Some(name) = key.strip_prefix("graph:") {
                match parse_placement(value) {
                    Ok(placement) => {
                        map.placements.insert(name.to_string(), placement);
                    }
                    Err(reason) => errors.push(MapEntryError {
                        key: key.clone(),
                        reason,
                    }),
                }
            } else {
                errors.push(MapEntryError {
                    key: key.clone(),
                    reason: "unknown key prefix".to_string(),
                });
            }
        }
        // Endpoints must be the dense prefix 0..n — a gap means a lost
        // join record, and placements past the gap would misroute.
        for (want, (index, addr)) in shards.into_iter().enumerate() {
            if index as usize != want {
                errors.push(MapEntryError {
                    key: format!("shard:{index}"),
                    reason: format!("gap in shard indices (expected {want})"),
                });
                break;
            }
            map.endpoints.push(addr);
        }
        // A placement that references shards beyond the recovered fleet
        // cannot be served; drop it rather than return wrong sums.
        let fleet = map.endpoints.len() as u32;
        map.placements.retain(|name, p| {
            let fits = p.parts <= fleet;
            if !fits {
                errors.push(MapEntryError {
                    key: format!("graph:{name}"),
                    reason: format!("placement needs {} shards, fleet has {fleet}", p.parts),
                });
            }
            fits
        });
        (map, errors)
    }

    /// The journal pairs that reproduce this map (checkpoint payload).
    #[must_use]
    pub fn to_entries(&self) -> Vec<(String, String)> {
        let mut entries = Vec::new();
        for (index, addr) in self.endpoints.iter().enumerate() {
            entries.push((format!("shard:{index}"), addr.clone()));
        }
        for (name, p) in &self.placements {
            entries.push((format!("graph:{name}"), encode_placement(p)));
        }
        entries
    }

    /// Fleet endpoints in join order.
    #[must_use]
    pub fn endpoints(&self) -> &[String] {
        &self.endpoints
    }

    /// Registered placements.
    #[must_use]
    pub fn placement(&self, name: &str) -> Option<&Placement> {
        self.placements.get(name)
    }

    /// How many graphs have placements.
    #[must_use]
    pub fn graphs(&self) -> usize {
        self.placements.len()
    }

    /// Registers a shard endpoint. Returns `Some((index, journal
    /// pair))` when the address is new, `None` when it was already
    /// registered (re-join after a daemon restart is idempotent).
    pub fn join(&mut self, addr: &str) -> Option<(u32, (String, String))> {
        if self.endpoints.iter().any(|a| a == addr) {
            return None;
        }
        let index = self.endpoints.len() as u32;
        self.endpoints.push(addr.to_string());
        Some((index, (format!("shard:{index}"), addr.to_string())))
    }

    /// Records a placement over the current fleet prefix. Returns the
    /// journal pair to append.
    pub fn place(&mut self, name: &str, spec: &str, parts: u32) -> (String, String) {
        let placement = Placement {
            spec: spec.to_string(),
            parts,
        };
        let value = encode_placement(&placement);
        self.placements.insert(name.to_string(), placement);
        (format!("graph:{name}"), value)
    }

    /// Drops a placement. Returns the journal key to `Evict` when the
    /// graph had one.
    pub fn unplace(&mut self, name: &str) -> Option<String> {
        self.placements
            .remove(name)
            .map(|_| format!("graph:{name}"))
    }
}

fn encode_placement(p: &Placement) -> String {
    format!("{}|{}", p.parts, p.spec)
}

fn parse_placement(value: &str) -> Result<Placement, String> {
    let Some((parts, spec)) = value.split_once('|') else {
        return Err("missing `parts|spec` separator".to_string());
    };
    let parts: u32 = parts
        .parse()
        .map_err(|_| "placement parts is not a u32".to_string())?;
    if parts == 0 {
        return Err("placement parts is zero".to_string());
    }
    Ok(Placement {
        spec: spec.to_string(),
        parts,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_through_journal_entries() {
        let mut map = ShardMap::new();
        assert!(map.join("127.0.0.1:7001").is_some());
        assert!(map.join("127.0.0.1:7002").is_some());
        assert!(map.join("127.0.0.1:7001").is_none(), "re-join is idempotent");
        map.place("g", "rmat:9:8:7", 2);
        map.place("h", "er:100:300:1", 1);
        let (rebuilt, errors) = ShardMap::from_entries(&map.to_entries());
        assert!(errors.is_empty(), "{errors:?}");
        assert_eq!(rebuilt, map);
        assert_eq!(rebuilt.endpoints().len(), 2);
        assert_eq!(rebuilt.placement("g").map(|p| p.parts), Some(2));
    }

    #[test]
    fn unplace_returns_the_evict_key() {
        let mut map = ShardMap::new();
        map.place("g", "rmat:6:8:1", 1);
        assert_eq!(map.unplace("g"), Some("graph:g".to_string()));
        assert_eq!(map.unplace("g"), None);
        assert_eq!(map.graphs(), 0);
    }

    #[test]
    fn recovery_degrades_per_entry() {
        let entries = vec![
            ("shard:0".to_string(), "127.0.0.1:7001".to_string()),
            ("shard:x".to_string(), "bad".to_string()),
            ("graph:ok".to_string(), "1|rmat:6:8:1".to_string()),
            ("graph:bad".to_string(), "no-separator".to_string()),
            ("graph:wide".to_string(), "9|rmat:6:8:1".to_string()),
            ("mystery:k".to_string(), "v".to_string()),
        ];
        let (map, errors) = ShardMap::from_entries(&entries);
        assert_eq!(map.endpoints().len(), 1);
        assert!(map.placement("ok").is_some());
        assert!(map.placement("bad").is_none());
        assert!(
            map.placement("wide").is_none(),
            "placement wider than the fleet must not survive recovery"
        );
        assert_eq!(errors.len(), 4, "{errors:?}");
    }

    #[test]
    fn shard_index_gap_truncates_the_fleet() {
        let entries = vec![
            ("shard:0".to_string(), "a:1".to_string()),
            ("shard:2".to_string(), "c:3".to_string()),
        ];
        let (map, errors) = ShardMap::from_entries(&entries);
        assert_eq!(map.endpoints(), ["a:1".to_string()]);
        assert!(errors.iter().any(|e| e.key == "shard:2"));
    }
}
