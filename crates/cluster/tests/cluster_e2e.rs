//! End-to-end cluster acceptance: a coordinator fronting three real
//! `lotus-serve` shard daemons over loopback TCP.
//!
//! The load-bearing assertions (ISSUE acceptance):
//! * sharded `Count` / `PerVertex` are **bit-identical** to the
//!   single-node answers for both R-MAT and ER seeds;
//! * killing a shard yields a typed `ShardUnavailable` error within
//!   the request deadline — not a hang;
//! * the degraded partial mode (flagged on) answers with a partial sum
//!   marked `cached: false`;
//! * the shard map journal survives a coordinator restart.

use std::time::{Duration, Instant};

use lotus_cluster::{spawn as spawn_coordinator, ClusterConfig, CoordinatorHandle};
use lotus_serve::proto::{ErrorKind, Request, Response, NO_DEADLINE};
use lotus_serve::{spawn as spawn_serve, Client, ServeConfig, ServerHandle};

fn shard_daemon() -> ServerHandle {
    spawn_serve(ServeConfig {
        workers: 2,
        queue_capacity: 16,
        ..ServeConfig::default()
    })
    .expect("spawn shard daemon")
}

fn coordinator_for(shards: &[&ServerHandle], allow_partial: bool) -> CoordinatorHandle {
    spawn_coordinator(ClusterConfig {
        shards: shards.iter().map(|s| s.addr().to_string()).collect(),
        default_deadline: Duration::from_secs(10),
        allow_partial,
        ..ClusterConfig::default()
    })
    .expect("spawn coordinator")
}

fn count(client: &mut Client, name: &str, deadline_ms: u64) -> Response {
    client
        .call(&Request::Count {
            name: name.to_string(),
            deadline_ms,
        })
        .expect("count call")
}

fn single_node_reference(spec: &str) -> (u64, Vec<u64>) {
    let single = shard_daemon();
    let mut client = Client::connect(single.addr()).expect("connect single");
    let loaded = client
        .call(&Request::LoadGraph {
            name: "ref".to_string(),
            spec: spec.to_string(),
        })
        .expect("load single");
    assert!(matches!(loaded, Response::Loaded { .. }), "{loaded:?}");
    let Response::Count { triangles, .. } = count(&mut client, "ref", NO_DEADLINE) else {
        panic!("single-node count failed");
    };
    let Response::PerVertex { counts, .. } = client
        .call(&Request::PerVertex {
            name: "ref".to_string(),
            start: 0,
            end: 0,
            deadline_ms: NO_DEADLINE,
        })
        .expect("single per-vertex")
    else {
        panic!("single-node per-vertex failed");
    };
    single.shutdown();
    (triangles, counts)
}

#[test]
fn sharded_answers_are_bit_identical_to_single_node() {
    let shards = [shard_daemon(), shard_daemon(), shard_daemon()];
    let coordinator = coordinator_for(&[&shards[0], &shards[1], &shards[2]], false);
    let mut client = Client::connect(coordinator.addr()).expect("connect coordinator");

    for spec in ["rmat:9:8:7", "er:400:2400:5"] {
        let (expected_count, expected_pv) = single_node_reference(spec);
        let name = format!("g-{spec}");
        let loaded = client
            .call(&Request::LoadGraph {
                name: name.clone(),
                spec: spec.to_string(),
            })
            .expect("cluster load");
        assert!(matches!(loaded, Response::Loaded { .. }), "{loaded:?}");

        let Response::Count {
            triangles, cached, ..
        } = count(&mut client, &name, NO_DEADLINE)
        else {
            panic!("cluster count failed for {spec}");
        };
        assert_eq!(triangles, expected_count, "sharded Count must be exact ({spec})");
        assert!(cached, "a full fan-out answer is not partial");

        let Response::PerVertex { start, counts } = client
            .call(&Request::PerVertex {
                name: name.clone(),
                start: 0,
                end: 0,
                deadline_ms: NO_DEADLINE,
            })
            .expect("cluster per-vertex")
        else {
            panic!("cluster per-vertex failed for {spec}");
        };
        assert_eq!(start, 0);
        assert_eq!(counts, expected_pv, "sharded PerVertex must be exact ({spec})");
    }

    // Merged fleet occupancy reflects both placements on all 3 shards.
    let Response::ShardStat {
        graphs,
        owned_vertices,
        entries,
        ..
    } = client.call(&Request::ShardStat).expect("fleet stat")
    else {
        panic!("fleet stat failed");
    };
    assert_eq!(graphs, 2);
    assert!(owned_vertices > 0 && entries > 0);

    coordinator.shutdown();
    for shard in shards {
        shard.shutdown();
    }
}

#[test]
fn killed_shard_yields_typed_error_within_deadline() {
    let a = shard_daemon();
    let b = shard_daemon();
    let victim = shard_daemon();
    let coordinator = coordinator_for(&[&a, &b, &victim], false);
    let mut client = Client::connect(coordinator.addr()).expect("connect coordinator");

    let loaded = client
        .call(&Request::LoadGraph {
            name: "g".to_string(),
            spec: "rmat:8:8:3".to_string(),
        })
        .expect("cluster load");
    assert!(matches!(loaded, Response::Loaded { .. }), "{loaded:?}");

    // Kill one shard daemon outright, then query with a deadline.
    victim.shutdown();
    victim.wait();

    let started = Instant::now();
    let reply = count(&mut client, "g", 3_000);
    let elapsed = started.elapsed();
    let Response::Error { kind, message } = reply else {
        panic!("expected a typed error, got {reply:?}");
    };
    assert_eq!(
        kind,
        ErrorKind::ShardUnavailable,
        "kind was {kind:?} ({message})"
    );
    assert!(
        elapsed < Duration::from_secs(5),
        "typed error must arrive within the deadline, took {elapsed:?}"
    );
    // The two live shards still answer the fleet stat fan-out is not
    // required to — but a fresh Count after a reload still works if the
    // dead shard is replaced. Here we only assert the coordinator
    // itself stayed up:
    assert!(matches!(
        client.call(&Request::Ping).expect("ping after failure"),
        Response::Pong
    ));

    coordinator.shutdown();
    a.shutdown();
    b.shutdown();
}

#[test]
fn partial_mode_degrades_instead_of_failing() {
    let a = shard_daemon();
    let b = shard_daemon();
    let victim = shard_daemon();
    let coordinator = coordinator_for(&[&a, &b, &victim], true);
    let mut client = Client::connect(coordinator.addr()).expect("connect coordinator");

    let (expected, _) = single_node_reference("rmat:8:8:3");
    client
        .call(&Request::LoadGraph {
            name: "g".to_string(),
            spec: "rmat:8:8:3".to_string(),
        })
        .expect("cluster load");

    victim.shutdown();
    victim.wait();

    let Response::Count {
        triangles, cached, ..
    } = count(&mut client, "g", 3_000)
    else {
        panic!("partial mode must still answer Count");
    };
    assert!(!cached, "a partial answer must be flagged");
    assert!(
        triangles <= expected,
        "partial sum {triangles} cannot exceed the exact count {expected}"
    );
    assert!(coordinator.state().stats().partial_answers() >= 1);

    coordinator.shutdown();
    a.shutdown();
    b.shutdown();
}

#[test]
fn shard_join_extends_the_fleet_for_new_placements() {
    let a = shard_daemon();
    let b = shard_daemon();
    let c = shard_daemon();
    let coordinator = coordinator_for(&[&a, &b], false);
    let mut client = Client::connect(coordinator.addr()).expect("connect coordinator");

    let Response::ShardJoined { shards } = client
        .call(&Request::ShardJoin {
            addr: c.addr().to_string(),
        })
        .expect("join")
    else {
        panic!("join failed");
    };
    assert_eq!(shards, 3);
    // Joining the same endpoint again is idempotent.
    let Response::ShardJoined { shards } = client
        .call(&Request::ShardJoin {
            addr: c.addr().to_string(),
        })
        .expect("re-join")
    else {
        panic!("re-join failed");
    };
    assert_eq!(shards, 3);

    let (expected, _) = single_node_reference("er:300:1500:9");
    client
        .call(&Request::LoadGraph {
            name: "g".to_string(),
            spec: "er:300:1500:9".to_string(),
        })
        .expect("cluster load");
    let Response::Count { triangles, .. } = count(&mut client, "g", NO_DEADLINE) else {
        panic!("count failed");
    };
    assert_eq!(triangles, expected);

    coordinator.shutdown();
    a.shutdown();
    b.shutdown();
    c.shutdown();
}

#[test]
fn shard_map_journal_survives_coordinator_restart() {
    let dir = std::env::temp_dir().join(format!(
        "lotus-cluster-e2e-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);

    let a = shard_daemon();
    let b = shard_daemon();
    let (expected, _) = single_node_reference("rmat:8:8:11");

    let first = spawn_coordinator(ClusterConfig {
        shards: vec![a.addr().to_string(), b.addr().to_string()],
        data_dir: Some(dir.clone()),
        ..ClusterConfig::default()
    })
    .expect("spawn first coordinator");
    {
        let mut client = Client::connect(first.addr()).expect("connect first");
        client
            .call(&Request::LoadGraph {
                name: "g".to_string(),
                spec: "rmat:8:8:11".to_string(),
            })
            .expect("load");
    }
    first.shutdown();
    first.wait();

    // Restart with an empty shard list: endpoints and the placement
    // must both come back from the journal.
    let second = spawn_coordinator(ClusterConfig {
        shards: Vec::new(),
        data_dir: Some(dir.clone()),
        ..ClusterConfig::default()
    })
    .expect("spawn second coordinator");
    let mut client = Client::connect(second.addr()).expect("connect second");
    let Response::Count { triangles, .. } = count(&mut client, "g", NO_DEADLINE) else {
        panic!("recovered coordinator could not serve the placement");
    };
    assert_eq!(triangles, expected);

    second.shutdown();
    a.shutdown();
    b.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
