//! Skew-checked algorithm selection (paper §5.5).
//!
//! Less-power-law graphs may not benefit from LOTUS: when only a few edges
//! attach to the 64K selected hubs, most time is spent in the NNN phase and
//! the Forward algorithm is as good or better. The paper recommends
//! "checking the degree distribution of the graph at the start of TC and
//! applying the Forward or edge-iterator algorithms if the graph is
//! not skewed enough", citing GAP's average-vs-median heuristic. This
//! module implements that dispatcher.

use lotus_algos::forward::ForwardCounter;
use lotus_graph::{DegreeStats, UndirectedCsr};

use crate::config::LotusConfig;
use crate::count::{LotusCounter, LotusResult};

/// Which algorithm the dispatcher chose.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChosenAlgorithm {
    /// The graph was skewed enough for LOTUS.
    Lotus,
    /// The graph was too uniform; Forward was used.
    Forward,
}

/// Result of an adaptive run.
#[derive(Debug, Clone, Copy)]
pub struct AdaptiveResult {
    /// Total triangles.
    pub triangles: u64,
    /// Which path was taken.
    pub algorithm: ChosenAlgorithm,
    /// The skew ratio that drove the decision (mean / median degree).
    pub skew_ratio: f64,
    /// Full LOTUS result when the LOTUS path was taken.
    pub lotus: Option<LotusResult>,
}

/// Skew dispatcher configuration.
#[derive(Debug, Clone, Copy)]
pub struct AdaptiveConfig {
    /// The graph counts as skewed when `mean > ratio · median`. GAP's
    /// relabeling heuristic uses a comparable mean-vs-median test.
    pub skew_ratio_threshold: f64,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        Self {
            skew_ratio_threshold: 2.0,
        }
    }
}

/// Counts triangles, choosing LOTUS or Forward based on degree skew.
pub fn adaptive_count(
    graph: &UndirectedCsr,
    lotus_config: &LotusConfig,
    adaptive: &AdaptiveConfig,
) -> AdaptiveResult {
    let stats = DegreeStats::of(graph);
    let skew_ratio = stats.mean_degree / stats.median_degree.max(1) as f64;
    if stats.is_skewed(adaptive.skew_ratio_threshold) {
        let result = LotusCounter::new(*lotus_config).count(graph);
        AdaptiveResult {
            triangles: result.total(),
            algorithm: ChosenAlgorithm::Lotus,
            skew_ratio,
            lotus: Some(result),
        }
    } else {
        let r = ForwardCounter::new().count(graph);
        AdaptiveResult {
            triangles: r.triangles,
            algorithm: ChosenAlgorithm::Forward,
            skew_ratio,
            lotus: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skewed_graph_takes_lotus_path() {
        let g = lotus_gen::Rmat::new(11, 16).generate(7);
        let r = adaptive_count(&g, &LotusConfig::default(), &AdaptiveConfig::default());
        assert_eq!(r.algorithm, ChosenAlgorithm::Lotus);
        assert!(r.lotus.is_some());
        assert_eq!(r.triangles, lotus_algos::forward::forward_count(&g));
    }

    #[test]
    fn uniform_graph_takes_forward_path() {
        let g = lotus_gen::WattsStrogatz::new(2000, 8, 0.1).generate(7);
        let r = adaptive_count(&g, &LotusConfig::default(), &AdaptiveConfig::default());
        assert_eq!(r.algorithm, ChosenAlgorithm::Forward);
        assert!(r.lotus.is_none());
        assert_eq!(r.triangles, lotus_algos::forward::forward_count(&g));
    }

    #[test]
    fn threshold_flips_decision() {
        let g = lotus_gen::WattsStrogatz::new(500, 6, 0.2).generate(3);
        let strict = AdaptiveConfig {
            skew_ratio_threshold: 0.1,
        };
        let r = adaptive_count(&g, &LotusConfig::default(), &strict);
        assert_eq!(r.algorithm, ChosenAlgorithm::Lotus);
    }
}
