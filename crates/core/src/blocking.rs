//! Blocked HNN counting (paper §7, second future-work item).
//!
//! Phase 2's random accesses hit `HE.N_u` for the non-hub neighbours `u`
//! of each vertex — scattered over the whole HE entry array. The paper
//! proposes "applying blocking strategies [Im & Yelick] to limit the
//! domain of random accesses": partition the `u` space into contiguous
//! blocks and make one pass per block, so the HE lists touched in a pass
//! span a cache-sized window.
//!
//! Because NHE lists are sorted, the `u`-range of each pass is a
//! contiguous sub-slice found by binary search — the extra traversal cost
//! is `O(log)` per list per pass, traded against locality.

use rayon::prelude::*;

use lotus_algos::intersect::count_merge;

use crate::structure::LotusGraph;

/// Counts HNN triangles in `u`-blocks of `2^block_bits` vertices each.
///
/// Equivalent to [`crate::count::count_hnn_phase`]; the block size only
/// affects locality.
pub fn count_hnn_blocked(lg: &LotusGraph, block_bits: u32) -> u64 {
    let n = lg.num_vertices();
    if n == 0 {
        return 0;
    }
    let block = 1u64 << block_bits;
    let blocks = (n as u64).div_ceil(block);
    let mut total = 0u64;
    for b in 0..blocks {
        let lo = (b * block) as u32;
        let hi = ((b + 1) * block).min(n as u64) as u32;
        total += (0..n)
            .into_par_iter()
            .map(|v| {
                let he_v = lg.hub_neighbors(v);
                if he_v.is_empty() {
                    return 0;
                }
                let nhe_v = lg.nonhub_neighbors(v);
                // Contiguous sub-slice of neighbours inside [lo, hi).
                let start = nhe_v.partition_point(|&u| u < lo);
                let end = nhe_v.partition_point(|&u| u < hi);
                let mut local = 0u64;
                for &u in &nhe_v[start..end] {
                    local += count_merge(he_v, lg.hub_neighbors(u));
                }
                local
            })
            .sum::<u64>();
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{HubCount, LotusConfig};
    use crate::count::count_hnn_phase;
    use crate::preprocess::build_lotus_graph;

    fn lotus_graph(seed: u64) -> LotusGraph {
        let g = lotus_gen::Rmat::new(10, 10).generate(seed);
        let cfg = LotusConfig::default().with_hub_count(HubCount::Fixed(64));
        build_lotus_graph(&g, &cfg)
    }

    #[test]
    fn blocked_matches_plain_for_all_block_sizes() {
        let lg = lotus_graph(3);
        let want = count_hnn_phase(&lg);
        for bits in [2u32, 6, 9, 12, 30] {
            assert_eq!(count_hnn_blocked(&lg, bits), want, "block_bits {bits}");
        }
    }

    #[test]
    fn single_block_degenerates_to_plain() {
        let lg = lotus_graph(5);
        assert_eq!(count_hnn_blocked(&lg, 31), count_hnn_phase(&lg));
    }

    #[test]
    fn empty_graph() {
        let g = lotus_graph::builder::graph_from_edges(std::iter::empty());
        let lg = build_lotus_graph(&g, &LotusConfig::default());
        assert_eq!(count_hnn_blocked(&lg, 8), 0);
    }
}
