//! Per-phase timing breakdown (paper Figure 6).

use std::fmt;
use std::time::Duration;

/// Wall time of each LOTUS stage.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Breakdown {
    /// Preprocessing (Algorithm 2): relabel + sub-graph construction.
    pub preprocess: Duration,
    /// Phase 1: HHH and HHN counting.
    pub hhh_hhn: Duration,
    /// Phase 2: HNN counting.
    pub hnn: Duration,
    /// Phase 3: NNN counting.
    pub nnn: Duration,
}

impl Breakdown {
    /// Total end-to-end duration.
    pub fn total(&self) -> Duration {
        self.preprocess + self.hhh_hhn + self.hnn + self.nnn
    }

    /// Counting-only duration (everything but preprocessing).
    pub fn counting(&self) -> Duration {
        self.hhh_hhn + self.hnn + self.nnn
    }

    /// Preprocessing share of the end-to-end time (§5.4 reports 19.4%
    /// on average).
    pub fn preprocess_fraction(&self) -> f64 {
        let t = self.total().as_secs_f64();
        if t == 0.0 {
            0.0
        } else {
            self.preprocess.as_secs_f64() / t
        }
    }

    /// NNN share of the counting time (§5.4 reports 40.4% on average).
    pub fn nnn_fraction_of_counting(&self) -> f64 {
        let t = self.counting().as_secs_f64();
        if t == 0.0 {
            0.0
        } else {
            self.nnn.as_secs_f64() / t
        }
    }
}

impl fmt::Display for Breakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "pre={:.3}s hhh+hhn={:.3}s hnn={:.3}s nnn={:.3}s (total {:.3}s)",
            self.preprocess.as_secs_f64(),
            self.hhh_hhn.as_secs_f64(),
            self.hnn.as_secs_f64(),
            self.nnn.as_secs_f64(),
            self.total().as_secs_f64()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_fractions() {
        let b = Breakdown {
            preprocess: Duration::from_millis(100),
            hhh_hhn: Duration::from_millis(200),
            hnn: Duration::from_millis(100),
            nnn: Duration::from_millis(100),
        };
        assert_eq!(b.total(), Duration::from_millis(500));
        assert_eq!(b.counting(), Duration::from_millis(400));
        assert!((b.preprocess_fraction() - 0.2).abs() < 1e-9);
        assert!((b.nnn_fraction_of_counting() - 0.25).abs() < 1e-9);
    }

    #[test]
    fn zero_breakdown_has_zero_fractions() {
        let b = Breakdown::default();
        assert_eq!(b.preprocess_fraction(), 0.0);
        assert_eq!(b.nnn_fraction_of_counting(), 0.0);
    }

    #[test]
    fn display_mentions_phases() {
        let b = Breakdown::default();
        let s = b.to_string();
        assert!(s.contains("pre=") && s.contains("nnn="));
    }
}
