//! LOTUS configuration.
//!
//! The paper fixes the hub count at 64K (2¹⁶) vertices (§4.2) so HE
//! neighbour IDs fit 16 bits, relabels the top 10% of vertices by degree
//! (§4.3.1), applies squared edge tiling above degree 512 with
//! `p = 2 × threads` partitions per vertex (§5.8). All of those are
//! configurable here; [`LotusConfig::paper`] reproduces the paper's exact
//! constants and [`LotusConfig::auto`] scales the hub count down for
//! graphs far smaller than the paper's (see DESIGN.md §3, substitution 5).

use lotus_graph::UndirectedCsr;

/// The paper's fixed hub count: 2¹⁶.
pub const PAPER_HUB_COUNT: u32 = 1 << 16;

/// The paper's squared-edge-tiling degree threshold (§5.8).
pub const PAPER_TILING_THRESHOLD: u32 = 512;

/// Hub-count selection policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HubCount {
    /// A fixed number of hubs (clamped to `min(n, 2¹⁶)` at build time so
    /// HE IDs always fit 16 bits).
    Fixed(u32),
    /// `min(2¹⁶, max(64, |V|/64))` — keeps the H2H array proportionate
    /// on scaled-down graphs while matching the paper on large ones. The
    /// 1/64 fraction is calibrated on the scaled suite as the best joint
    /// fit of the paper's Figure 7/8 shares (hub edges ~50%, hub
    /// triangles ~69%) and its Table 5 speedups (2.2–5.5×): smaller
    /// fractions match the shares better but dilute the speedup, larger
    /// ones the reverse. See EXPERIMENTS.md.
    Auto,
}

impl HubCount {
    /// Resolves the policy for a graph with `num_vertices` vertices.
    pub fn resolve(&self, num_vertices: u32) -> u32 {
        let raw = match *self {
            HubCount::Fixed(n) => n,
            HubCount::Auto => (num_vertices / 64).max(64),
        };
        raw.min(PAPER_HUB_COUNT).min(num_vertices)
    }
}

/// Full LOTUS configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LotusConfig {
    /// Hub-count policy.
    pub hub_count: HubCount,
    /// Fraction of highest-degree vertices relabeled to the front
    /// (paper: 0.10). The head is never smaller than the hub count.
    pub head_fraction: f64,
    /// Vertices with more hub neighbours than this threshold are split by
    /// squared edge tiling in phase 1 (paper: 512).
    pub tiling_threshold: u32,
    /// Work partitions per tiled vertex (paper: 2 × threads).
    pub partitions_per_vertex: usize,
    /// Ablation switch: fuse the HNN and NNN loops into one pass. The
    /// paper argues *against* fusing (§4.5) because it grows the randomly
    /// accessed working set; `true` reproduces that ablation.
    pub fuse_hnn_nnn: bool,
}

impl LotusConfig {
    /// Configuration with automatic hub count, suited to any graph size.
    pub fn auto(graph: &UndirectedCsr) -> Self {
        let _ = graph; // size-independent defaults; kept for future tuning
        Self::default()
    }

    /// The paper's exact constants (64K hubs, 10% head, threshold 512).
    pub fn paper() -> Self {
        Self {
            hub_count: HubCount::Fixed(PAPER_HUB_COUNT),
            ..Self::default()
        }
    }

    /// Overrides the hub-count policy.
    pub fn with_hub_count(mut self, hc: HubCount) -> Self {
        self.hub_count = hc;
        self
    }

    /// Overrides the tiling threshold.
    pub fn with_tiling_threshold(mut self, t: u32) -> Self {
        self.tiling_threshold = t;
        self
    }

    /// Enables the fused HNN+NNN ablation.
    pub fn with_fused_phases(mut self, fuse: bool) -> Self {
        self.fuse_hnn_nnn = fuse;
        self
    }

    /// Resolved hub count for a given graph.
    pub fn resolved_hub_count(&self, num_vertices: u32) -> u32 {
        self.hub_count.resolve(num_vertices)
    }

    /// Resolved relabeling head size: `max(hubs, head_fraction·|V|)`.
    pub fn resolved_head_count(&self, num_vertices: u32) -> u32 {
        let hubs = self.resolved_hub_count(num_vertices);
        let head = (num_vertices as f64 * self.head_fraction).round() as u32;
        head.max(hubs).min(num_vertices)
    }
}

impl Default for LotusConfig {
    fn default() -> Self {
        Self {
            hub_count: HubCount::Auto,
            head_fraction: 0.10,
            tiling_threshold: PAPER_TILING_THRESHOLD,
            partitions_per_vertex: 2 * rayon::current_num_threads().max(1),
            fuse_hnn_nnn: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn auto_hub_count_scales() {
        assert_eq!(HubCount::Auto.resolve(1_000_000), 15625);
        assert_eq!(HubCount::Auto.resolve(100), 64);
        assert_eq!(HubCount::Auto.resolve(10), 10);
        // Saturates at the paper's 2^16 so HE stays 16-bit.
        assert_eq!(HubCount::Auto.resolve(100_000_000), PAPER_HUB_COUNT);
    }

    #[test]
    fn fixed_hub_count_is_clamped() {
        assert_eq!(HubCount::Fixed(500).resolve(1000), 500);
        assert_eq!(HubCount::Fixed(5000).resolve(1000), 1000);
        assert_eq!(HubCount::Fixed(1 << 20).resolve(1 << 24), PAPER_HUB_COUNT);
    }

    #[test]
    fn head_covers_hubs_and_fraction() {
        let c = LotusConfig::default();
        // 10% of 10_000 = 1000, hubs = 156 → head = 1000.
        assert_eq!(c.resolved_head_count(10_000), 1000);
        // Tiny graph: hubs (64) exceed 10% → head = hubs.
        assert_eq!(c.resolved_head_count(200), 64);
    }

    #[test]
    fn paper_config_uses_64k_hubs() {
        let c = LotusConfig::paper();
        assert_eq!(c.resolved_hub_count(10_000_000), PAPER_HUB_COUNT);
        assert_eq!(c.tiling_threshold, 512);
    }

    #[test]
    fn builder_methods() {
        let c = LotusConfig::default()
            .with_hub_count(HubCount::Fixed(128))
            .with_tiling_threshold(64)
            .with_fused_phases(true);
        assert_eq!(c.resolved_hub_count(1 << 20), 128);
        assert_eq!(c.tiling_threshold, 64);
        assert!(c.fuse_hnn_nnn);
    }
}
