//! LOTUS triangle counting (paper Algorithm 3).
//!
//! Three phases over the [`LotusGraph`]:
//!
//! 1. **HHH + HHN** — for every vertex, probe all pairs of its hub
//!    neighbours in the H2H bit array. Work is distributed as squared-edge
//!    tiles (§4.6) so the quadratic pair loop of high-degree vertices is
//!    split evenly.
//! 2. **HNN** — for every non-hub edge `(v, u)`, merge-join the 16-bit HE
//!    lists of `v` and `u`.
//! 3. **NNN** — for every non-hub edge `(v, u)`, merge-join the 32-bit NHE
//!    lists, never touching hub edges.
//!
//! The HNN and NNN loops run over the same edge set but are deliberately
//! *not* fused (§4.5): each phase's random accesses then target a single
//! small structure. The fused variant is available as an ablation via
//! [`LotusConfig::with_fused_phases`].

// `CountError` deliberately carries the partial per-type counts and the
// per-phase breakdown (~137 bytes); guarded runs are once-per-invocation,
// so the large Err is never on a hot path.
#![allow(clippy::result_large_err)]

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

use rayon::prelude::*;

use lotus_algos::intersect::count_merge;
use lotus_graph::UndirectedCsr;
use lotus_resilience::{fault_point, isolate, RunGuard, StopReason};
use lotus_telemetry::{counters, Counter, Span, SpanId};

use crate::breakdown::Breakdown;
use crate::config::LotusConfig;
use crate::h2h::TriBitArray;
use crate::preprocess::{build_lotus_graph, build_lotus_graph_guarded};
use crate::stats::LotusStats;
use crate::structure::LotusGraph;
use crate::tiling::{make_tiles, Tile};

/// Result of a LOTUS run: per-type counts and per-phase timings.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LotusResult {
    /// Per-type triangle counts and edge-split statistics.
    pub stats: LotusStats,
    /// Per-phase wall times.
    pub breakdown: Breakdown,
}

impl LotusResult {
    /// Total triangle count.
    pub fn total(&self) -> u64 {
        self.stats.total()
    }
}

/// A stage of the LOTUS pipeline, named in structured errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Algorithm 2: relabeling and sub-graph construction.
    Preprocess,
    /// Phase 1: HHH + HHN over the H2H bit array.
    HhhHhn,
    /// Phase 2: HNN over the HE lists.
    Hnn,
    /// Phase 3: NNN over the NHE lists.
    Nnn,
    /// The forward-hashed fallback driver of the memory-budget
    /// degradation path (see [`crate::resilient`]).
    Fallback,
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Phase::Preprocess => write!(f, "preprocess"),
            Phase::HhhHhn => write!(f, "hhh+hhn"),
            Phase::Hnn => write!(f, "hnn"),
            Phase::Nnn => write!(f, "nnn"),
            Phase::Fallback => write!(f, "fallback"),
        }
    }
}

/// Failure of a guarded run ([`LotusCounter::count_guarded`]): either a
/// cooperative stop (cancellation/deadline) or an isolated worker panic.
/// Both carry the per-phase timings and per-type counts accumulated
/// before the failure, so callers can report partial progress.
///
/// For [`Phase::Fallback`] interruptions the partial count of the
/// fallback driver is reported in `partial.nnn` (the fallback does not
/// distinguish triangle types).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CountError {
    /// The run was stopped cooperatively by its [`RunGuard`].
    Interrupted {
        /// The phase that observed the stop condition.
        phase: Phase,
        /// Why the run stopped.
        reason: StopReason,
        /// Counts completed before the stop (phases after `phase` are
        /// zero; `phase` itself holds a partial count).
        partial: LotusStats,
        /// Per-phase wall times up to and including the stopped phase.
        breakdown: Breakdown,
    },
    /// A worker panicked; the panic was confined to its phase.
    PhasePanic {
        /// The phase whose worker panicked.
        phase: Phase,
        /// The stringified panic payload.
        message: String,
        /// Counts completed by the phases before the panic.
        partial: LotusStats,
        /// Per-phase wall times up to the panicking phase.
        breakdown: Breakdown,
    },
}

impl CountError {
    /// The phase in which the run failed.
    pub fn phase(&self) -> Phase {
        match self {
            CountError::Interrupted { phase, .. } | CountError::PhasePanic { phase, .. } => *phase,
        }
    }

    /// The per-type counts accumulated before the failure.
    pub fn partial(&self) -> &LotusStats {
        match self {
            CountError::Interrupted { partial, .. } | CountError::PhasePanic { partial, .. } => {
                partial
            }
        }
    }
}

impl fmt::Display for CountError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CountError::Interrupted {
                phase,
                reason,
                partial,
                ..
            } => write!(
                f,
                "interrupted ({reason}) during phase {phase}; {} triangles counted so far",
                partial.total()
            ),
            CountError::PhasePanic {
                phase,
                message,
                partial,
                ..
            } => write!(
                f,
                "worker panic in phase {phase}: {message}; {} triangles counted before the panic",
                partial.total()
            ),
        }
    }
}

impl std::error::Error for CountError {}

/// The LOTUS counter: configuration plus entry points.
#[derive(Debug, Clone, Default)]
pub struct LotusCounter {
    config: LotusConfig,
}

impl LotusCounter {
    /// Creates a counter with the given configuration.
    pub fn new(config: LotusConfig) -> Self {
        Self { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &LotusConfig {
        &self.config
    }

    /// End-to-end run: preprocessing (Algorithm 2) plus counting
    /// (Algorithm 3).
    pub fn count(&self, graph: &UndirectedCsr) -> LotusResult {
        let pre_start = Instant::now();
        let lg = {
            let _span = Span::enter(SpanId::Preprocess);
            build_lotus_graph(graph, &self.config)
        };
        let preprocess = pre_start.elapsed();
        let mut result = self.count_prepared(&lg);
        result.breakdown.preprocess = preprocess;
        result
    }

    /// Counts triangles of an already-built LOTUS graph.
    pub fn count_prepared(&self, lg: &LotusGraph) -> LotusResult {
        let mut breakdown = Breakdown::default();

        // Phase 1: HHH and HHN.
        let start = Instant::now();
        let span = Span::enter(SpanId::HhhHhn);
        let tiles = make_tiles(
            &lg.he,
            self.config.tiling_threshold,
            self.config.partitions_per_vertex,
        );
        let (hhh, hhn) = count_hub_pairs(lg, &tiles);
        drop(span);
        breakdown.hhh_hhn = start.elapsed();

        let (hnn, nnn) = if self.config.fuse_hnn_nnn {
            // Ablation path: the fused pass has no per-phase span; its
            // merge work still lands in the kernel counters.
            let start = Instant::now();
            let counts = count_hnn_nnn_fused(lg);
            // Attribute the fused time to both phases evenly.
            let half = start.elapsed() / 2;
            breakdown.hnn = half;
            breakdown.nnn = half;
            counts
        } else {
            // Phase 2: HNN.
            let start = Instant::now();
            let span = Span::enter(SpanId::Hnn);
            let hnn = count_hnn(lg);
            drop(span);
            breakdown.hnn = start.elapsed();

            // Phase 3: NNN.
            let start = Instant::now();
            let span = Span::enter(SpanId::Nnn);
            let nnn = count_nnn(lg);
            drop(span);
            breakdown.nnn = start.elapsed();
            (hnn, nnn)
        };

        LotusResult {
            stats: LotusStats {
                hhh,
                hhn,
                hnn,
                nnn,
                he_edges: lg.he_edges(),
                nhe_edges: lg.nhe_edges(),
            },
            breakdown,
        }
    }

    /// End-to-end run under a [`RunGuard`], with each stage isolated by
    /// `catch_unwind`: cancellation, deadline expiry, and worker panics
    /// all surface as a structured [`CountError`] carrying the partial
    /// per-type counts and the per-phase breakdown collected so far.
    ///
    /// The guard is polled at tile granularity in phase 1 and every few
    /// hundred vertices in phases 2 and 3. The guarded runner always
    /// executes the paper's split HNN/NNN phases (the fused ablation of
    /// [`LotusConfig::with_fused_phases`] is a perf experiment, not a
    /// production path).
    ///
    /// # Errors
    /// Returns a [`CountError`] when the guard stops the run or a worker
    /// panics inside an isolated phase.
    pub fn count_guarded(
        &self,
        graph: &UndirectedCsr,
        guard: &RunGuard,
    ) -> Result<LotusResult, CountError> {
        let breakdown = Breakdown::default();
        let stats = LotusStats::default();

        let start = Instant::now();
        let lg = match isolate(|| {
            let _span = Span::enter(SpanId::Preprocess);
            build_lotus_graph_guarded(graph, &self.config, guard)
        }) {
            Err(panic) => {
                counters::incr(Counter::PhasePanics);
                return Err(CountError::PhasePanic {
                    phase: Phase::Preprocess,
                    message: panic.message,
                    partial: stats,
                    breakdown,
                });
            }
            Ok(Err(reason)) => {
                counters::incr(Counter::GuardStops);
                return Err(CountError::Interrupted {
                    phase: Phase::Preprocess,
                    reason,
                    partial: stats,
                    breakdown,
                });
            }
            Ok(Ok(lg)) => lg,
        };
        let mut breakdown = breakdown;
        breakdown.preprocess = start.elapsed();
        self.count_prepared_guarded_with(&lg, guard, breakdown)
    }

    /// Guarded counting of an already-built LOTUS graph.
    ///
    /// # Errors
    /// Returns a [`CountError`] when the guard stops the run or a worker
    /// panics inside an isolated phase.
    pub fn count_prepared_guarded(
        &self,
        lg: &LotusGraph,
        guard: &RunGuard,
    ) -> Result<LotusResult, CountError> {
        self.count_prepared_guarded_with(lg, guard, Breakdown::default())
    }

    fn count_prepared_guarded_with(
        &self,
        lg: &LotusGraph,
        guard: &RunGuard,
        mut breakdown: Breakdown,
    ) -> Result<LotusResult, CountError> {
        let mut stats = LotusStats {
            he_edges: lg.he_edges(),
            nhe_edges: lg.nhe_edges(),
            ..LotusStats::default()
        };

        // Phase 1: HHH and HHN.
        let start = Instant::now();
        let tiles = make_tiles(
            &lg.he,
            self.config.tiling_threshold,
            self.config.partitions_per_vertex,
        );
        let outcome = isolate(|| {
            let _span = Span::enter(SpanId::HhhHhn);
            fault_point!(panic: "core.phase.hhh_hhn");
            count_hub_pairs_guarded(lg, &tiles, guard)
        });
        breakdown.hhh_hhn = start.elapsed();
        let (hhh, hhn) = unwrap_phase(
            outcome,
            Phase::HhhHhn,
            &mut stats,
            &breakdown,
            |s, (a, b)| {
                s.hhh = a;
                s.hhn = b;
            },
        )?;
        stats.hhh = hhh;
        stats.hhn = hhn;

        // Phase 2: HNN.
        let start = Instant::now();
        let outcome = isolate(|| {
            let _span = Span::enter(SpanId::Hnn);
            fault_point!(panic: "core.phase.hnn");
            count_hnn_guarded(lg, guard)
        });
        breakdown.hnn = start.elapsed();
        let hnn = unwrap_phase(outcome, Phase::Hnn, &mut stats, &breakdown, |s, c| {
            s.hnn = c;
        })?;
        stats.hnn = hnn;

        // Phase 3: NNN.
        let start = Instant::now();
        let outcome = isolate(|| {
            let _span = Span::enter(SpanId::Nnn);
            fault_point!(panic: "core.phase.nnn");
            count_nnn_guarded(lg, guard)
        });
        breakdown.nnn = start.elapsed();
        let nnn = unwrap_phase(outcome, Phase::Nnn, &mut stats, &breakdown, |s, c| {
            s.nnn = c;
        })?;
        stats.nnn = nnn;

        Ok(LotusResult { stats, breakdown })
    }
}

/// Folds one phase's tri-state outcome (ok / interrupted-with-partial /
/// panicked) into either the completed counts or a [`CountError`] that
/// records the partial counts via `record`.
fn unwrap_phase<C: Copy>(
    outcome: Result<Result<C, (StopReason, C)>, lotus_resilience::PanicCaught>,
    phase: Phase,
    stats: &mut LotusStats,
    breakdown: &Breakdown,
    record: impl FnOnce(&mut LotusStats, C),
) -> Result<C, CountError> {
    match outcome {
        Ok(Ok(counts)) => Ok(counts),
        Ok(Err((reason, partial_counts))) => {
            counters::incr(Counter::GuardStops);
            record(stats, partial_counts);
            Err(CountError::Interrupted {
                phase,
                reason,
                partial: *stats,
                breakdown: *breakdown,
            })
        }
        Err(panic) => {
            counters::incr(Counter::PhasePanics);
            Err(CountError::PhasePanic {
                phase,
                message: panic.message,
                partial: *stats,
                breakdown: *breakdown,
            })
        }
    }
}

/// Phase 1 over a prepared tile list: returns `(hhh, hhn)`.
fn count_hub_pairs(lg: &LotusGraph, tiles: &[Tile]) -> (u64, u64) {
    tiles
        .par_iter()
        .map(|t| {
            let found = count_tile(&lg.h2h, lg.hub_neighbors(t.v), t);
            if lg.is_hub(t.v) {
                (found, 0)
            } else {
                (0, found)
            }
        })
        .reduce(|| (0, 0), |a, b| (a.0 + b.0, a.1 + b.1))
}

/// Counts the connected hub pairs of one tile.
///
/// The row base `h1(h1−1)/2` is computed once per outer iteration and the
/// inner loop probes consecutive bits (§4.4.1).
#[inline]
fn count_tile(h2h: &TriBitArray, he: &[u16], tile: &Tile) -> u64 {
    rayon::sched::log_read(he, "phase1.he");
    let mut found = 0u64;
    for i in tile.begin..tile.end {
        let h1 = he[i as usize] as u32;
        let base = TriBitArray::row_base(h1);
        for &h2 in &he[..i as usize] {
            // Lists are strictly ascending, so h2 < h1 always holds.
            if h2h.is_set_with_base(base, h2 as u32) {
                found += 1;
            }
        }
    }
    #[cfg(feature = "telemetry")]
    {
        // Row `i` probes `i` earlier hub neighbours, so the tile's probe
        // count is the difference of two triangular numbers.
        let (b, e) = (tile.begin as u64, tile.end as u64);
        counters::incr(Counter::TileVisits);
        counters::add(
            Counter::H2hProbes,
            (e * e.saturating_sub(1) - b * b.saturating_sub(1)) / 2,
        );
        counters::add(Counter::H2hHits, found);
    }
    found
}

/// Phase 2: HNN triangles.
fn count_hnn(lg: &LotusGraph) -> u64 {
    (0..lg.num_vertices())
        .into_par_iter()
        .map(|v| {
            let he_v = lg.hub_neighbors(v);
            if he_v.is_empty() {
                return 0;
            }
            rayon::sched::log_read(he_v, "phase2.he");
            let mut local = 0u64;
            for &u in lg.nonhub_neighbors(v) {
                local += count_merge(he_v, lg.hub_neighbors(u));
            }
            local
        })
        .sum()
}

/// Phase 3: NNN triangles.
fn count_nnn(lg: &LotusGraph) -> u64 {
    (0..lg.num_vertices())
        .into_par_iter()
        .map(|v| {
            let nhe_v = lg.nonhub_neighbors(v);
            rayon::sched::log_read(nhe_v, "phase3.nhe");
            let mut local = 0u64;
            for &u in nhe_v {
                local += count_merge(nhe_v, lg.nonhub_neighbors(u));
            }
            local
        })
        .sum()
}

/// Guarded phase 1: like [`count_hub_pairs`] but polls the guard every
/// 16 tiles. On a stop, workers that have not started yet contribute
/// zero and the partial sums reduced so far are returned with the
/// reason.
fn count_hub_pairs_guarded(
    lg: &LotusGraph,
    tiles: &[Tile],
    guard: &RunGuard,
) -> Result<(u64, u64), (StopReason, (u64, u64))> {
    let stopped = AtomicBool::new(false);
    let partial = tiles
        .par_iter()
        .enumerate()
        .map(|(i, t)| {
            if stopped.load(Ordering::Relaxed) {
                return (0, 0);
            }
            if i & 0xf == 0 && guard.should_stop().is_some() {
                stopped.store(true, Ordering::Relaxed);
                return (0, 0);
            }
            let found = count_tile(&lg.h2h, lg.hub_neighbors(t.v), t);
            if lg.is_hub(t.v) {
                (found, 0)
            } else {
                (0, found)
            }
        })
        .reduce(|| (0, 0), |a, b| (a.0 + b.0, a.1 + b.1));
    match guard.should_stop() {
        Some(reason) if stopped.load(Ordering::Relaxed) => Err((reason, partial)),
        _ => Ok(partial),
    }
}

/// Guarded phase 2: like [`count_hnn`] but polls the guard every 256
/// vertices.
fn count_hnn_guarded(lg: &LotusGraph, guard: &RunGuard) -> Result<u64, (StopReason, u64)> {
    let stopped = AtomicBool::new(false);
    let partial = (0..lg.num_vertices())
        .into_par_iter()
        .map(|v| {
            if stopped.load(Ordering::Relaxed) {
                return 0;
            }
            if v & 0xff == 0 && guard.should_stop().is_some() {
                stopped.store(true, Ordering::Relaxed);
                return 0;
            }
            let he_v = lg.hub_neighbors(v);
            if he_v.is_empty() {
                return 0;
            }
            rayon::sched::log_read(he_v, "phase2.he");
            let mut local = 0u64;
            for &u in lg.nonhub_neighbors(v) {
                local += count_merge(he_v, lg.hub_neighbors(u));
            }
            local
        })
        .sum();
    match guard.should_stop() {
        Some(reason) if stopped.load(Ordering::Relaxed) => Err((reason, partial)),
        _ => Ok(partial),
    }
}

/// Guarded phase 3: like [`count_nnn`] but polls the guard every 256
/// vertices.
fn count_nnn_guarded(lg: &LotusGraph, guard: &RunGuard) -> Result<u64, (StopReason, u64)> {
    let stopped = AtomicBool::new(false);
    let partial = (0..lg.num_vertices())
        .into_par_iter()
        .map(|v| {
            if stopped.load(Ordering::Relaxed) {
                return 0;
            }
            if v & 0xff == 0 && guard.should_stop().is_some() {
                stopped.store(true, Ordering::Relaxed);
                return 0;
            }
            let nhe_v = lg.nonhub_neighbors(v);
            rayon::sched::log_read(nhe_v, "phase3.nhe");
            let mut local = 0u64;
            for &u in nhe_v {
                local += count_merge(nhe_v, lg.nonhub_neighbors(u));
            }
            local
        })
        .sum();
    match guard.should_stop() {
        Some(reason) if stopped.load(Ordering::Relaxed) => Err((reason, partial)),
        _ => Ok(partial),
    }
}

/// Fused HNN + NNN ablation: one pass over the non-hub edges performing
/// both intersections. Returns `(hnn, nnn)`.
fn count_hnn_nnn_fused(lg: &LotusGraph) -> (u64, u64) {
    (0..lg.num_vertices())
        .into_par_iter()
        .map(|v| {
            let he_v = lg.hub_neighbors(v);
            let nhe_v = lg.nonhub_neighbors(v);
            let mut hnn = 0u64;
            let mut nnn = 0u64;
            for &u in nhe_v {
                hnn += count_merge(he_v, lg.hub_neighbors(u));
                nnn += count_merge(nhe_v, lg.nonhub_neighbors(u));
            }
            (hnn, nnn)
        })
        .reduce(|| (0, 0), |a, b| (a.0 + b.0, a.1 + b.1))
}

/// Convenience: end-to-end LOTUS count with default configuration.
pub fn lotus_count(graph: &UndirectedCsr) -> u64 {
    LotusCounter::default().count(graph).total()
}

/// Public phase-1 entry over an explicit tile list: returns `(hhh, hhn)`.
/// Used by the recursive extension and the load-balance experiments.
pub fn count_hub_phase(lg: &LotusGraph, tiles: &[Tile]) -> (u64, u64) {
    count_hub_pairs(lg, tiles)
}

/// Public phase-2 (HNN) entry. Used by the recursive extension.
pub fn count_hnn_phase(lg: &LotusGraph) -> u64 {
    count_hnn(lg)
}

/// Public phase-3 (NNN) entry.
pub fn count_nnn_phase(lg: &LotusGraph) -> u64 {
    count_nnn(lg)
}

/// Counts the hub pairs of a single tile against the H2H array. Exposed
/// for the load-balance model (Table 9), which replays tiles one by one.
pub fn count_single_tile(h2h: &TriBitArray, he: &[u16], tile: &Tile) -> u64 {
    count_tile(h2h, he, tile)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HubCount;
    use lotus_algos::forward::forward_count;
    use lotus_graph::builder::graph_from_edges;

    fn cfg(hubs: u32) -> LotusConfig {
        LotusConfig::default().with_hub_count(HubCount::Fixed(hubs))
    }

    fn figure2_graph() -> UndirectedCsr {
        graph_from_edges([
            (0, 1),
            (0, 3),
            (0, 4),
            (0, 5),
            (0, 6),
            (1, 3),
            (1, 4),
            (1, 6),
            (1, 7),
            (2, 3),
            (4, 6),
            (6, 8),
            (7, 8),
        ])
    }

    #[test]
    fn counts_figure2_graph() {
        let g = figure2_graph();
        let want = forward_count(&g);
        let r = LotusCounter::new(cfg(2)).count(&g);
        assert_eq!(r.total(), want);
        // Hubs 0 and 1 participate in triangles (0,1,3), (0,1,4), (0,1,6),
        // (0,4,6), (1,4,6): all are HHN or HNN with 2 hubs.
        assert!(r.stats.hub_triangles() > 0);
    }

    #[test]
    fn counts_k4_with_various_hub_counts() {
        let g = graph_from_edges([(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        for hubs in 0..=4 {
            let r = LotusCounter::new(cfg(hubs)).count(&g);
            assert_eq!(r.total(), 4, "hubs={hubs}: {:?}", r.stats);
        }
    }

    #[test]
    fn type_split_on_k4() {
        // With 2 hubs, K4 triangles: (0,1,2),(0,1,3) have 2 hubs;
        // (0,2,3),(1,2,3) have 1 hub.
        let g = graph_from_edges([(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        let r = LotusCounter::new(cfg(2)).count(&g);
        assert_eq!(r.stats.hhh, 0);
        assert_eq!(r.stats.hhn, 2);
        assert_eq!(r.stats.hnn, 2);
        assert_eq!(r.stats.nnn, 0);
    }

    #[test]
    fn all_hub_triangle_is_hhh() {
        let g = graph_from_edges([(0, 1), (1, 2), (0, 2)]);
        let r = LotusCounter::new(cfg(3)).count(&g);
        assert_eq!(r.stats.hhh, 1);
        assert_eq!(r.total(), 1);
    }

    #[test]
    fn zero_hubs_makes_everything_nnn() {
        let g = graph_from_edges([(0, 1), (1, 2), (0, 2), (1, 3), (2, 3)]);
        let r = LotusCounter::new(cfg(0)).count(&g);
        assert_eq!(r.stats.nnn, r.total());
        assert_eq!(r.total(), forward_count(&g));
    }

    #[test]
    fn matches_forward_on_rmat_graphs() {
        for seed in [1u64, 2, 3] {
            let g = lotus_gen::Rmat::new(10, 10).generate(seed);
            let want = forward_count(&g);
            for hubs in [0u32, 16, 64, 256] {
                let r = LotusCounter::new(cfg(hubs)).count(&g);
                assert_eq!(r.total(), want, "seed {seed} hubs {hubs}");
            }
        }
    }

    #[test]
    fn fused_ablation_matches_split_phases() {
        let g = lotus_gen::Rmat::new(9, 8).generate(13);
        let split = LotusCounter::new(cfg(64)).count(&g);
        let fused = LotusCounter::new(cfg(64).with_fused_phases(true)).count(&g);
        assert_eq!(split.stats.hnn, fused.stats.hnn);
        assert_eq!(split.stats.nnn, fused.stats.nnn);
        assert_eq!(split.total(), fused.total());
    }

    #[test]
    fn tiling_threshold_does_not_change_counts() {
        let g = lotus_gen::Rmat::new(9, 12).generate(21);
        let want = LotusCounter::new(cfg(64)).count(&g).total();
        for threshold in [1u32, 4, 32, 10_000] {
            let c = cfg(64).with_tiling_threshold(threshold);
            assert_eq!(
                LotusCounter::new(c).count(&g).total(),
                want,
                "thr {threshold}"
            );
        }
    }

    #[test]
    fn breakdown_is_populated() {
        let g = lotus_gen::Rmat::new(9, 8).generate(2);
        let r = LotusCounter::default().count(&g);
        assert!(r.breakdown.preprocess > std::time::Duration::ZERO);
        assert!(r.breakdown.total() >= r.breakdown.preprocess);
    }

    #[test]
    fn lotus_count_helper() {
        let g = graph_from_edges([(0, 1), (1, 2), (0, 2)]);
        assert_eq!(lotus_count(&g), 1);
    }

    #[test]
    fn empty_graph() {
        let g = graph_from_edges(std::iter::empty());
        assert_eq!(lotus_count(&g), 0);
    }

    #[test]
    fn guarded_unlimited_matches_unguarded() {
        let g = lotus_gen::Rmat::new(9, 10).generate(11);
        let counter = LotusCounter::new(cfg(64));
        let plain = counter.count(&g);
        let guarded = counter
            .count_guarded(&g, &RunGuard::unlimited())
            .expect("unlimited guard never stops");
        assert_eq!(guarded.stats, plain.stats);
    }

    #[test]
    fn pre_cancelled_token_interrupts_preprocessing() {
        use lotus_resilience::CancelToken;
        let g = lotus_gen::Rmat::new(9, 8).generate(4);
        let token = CancelToken::new();
        token.cancel();
        let guard = RunGuard::unlimited().with_cancel(token);
        let err = LotusCounter::new(cfg(64))
            .count_guarded(&g, &guard)
            .expect_err("cancelled before the run started");
        assert_eq!(err.phase(), Phase::Preprocess);
        match err {
            CountError::Interrupted {
                reason, partial, ..
            } => {
                assert_eq!(reason, StopReason::Cancelled);
                assert_eq!(partial.total(), 0);
            }
            other => panic!("expected Interrupted, got {other:?}"),
        }
    }

    #[test]
    fn expired_deadline_interrupts_with_partial_stats() {
        use lotus_resilience::Deadline;
        let g = lotus_gen::Rmat::new(10, 10).generate(6);
        let guard = RunGuard::unlimited().with_deadline(Deadline::after(std::time::Duration::ZERO));
        let err = LotusCounter::new(cfg(64))
            .count_guarded(&g, &guard)
            .expect_err("zero deadline must interrupt");
        match err {
            CountError::Interrupted { reason, .. } => {
                assert_eq!(reason, StopReason::DeadlineExpired);
            }
            other => panic!("expected Interrupted, got {other:?}"),
        }
    }

    #[test]
    fn guarded_prepared_matches_prepared() {
        let g = lotus_gen::Rmat::new(9, 8).generate(17);
        let counter = LotusCounter::new(cfg(32));
        let lg = build_lotus_graph(&g, counter.config());
        let plain = counter.count_prepared(&lg);
        let guarded = counter
            .count_prepared_guarded(&lg, &RunGuard::unlimited())
            .expect("unlimited guard never stops");
        assert_eq!(guarded.stats, plain.stats);
    }
}
