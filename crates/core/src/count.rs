//! LOTUS triangle counting (paper Algorithm 3).
//!
//! Three phases over the [`LotusGraph`]:
//!
//! 1. **HHH + HHN** — for every vertex, probe all pairs of its hub
//!    neighbours in the H2H bit array. Work is distributed as squared-edge
//!    tiles (§4.6) so the quadratic pair loop of high-degree vertices is
//!    split evenly.
//! 2. **HNN** — for every non-hub edge `(v, u)`, merge-join the 16-bit HE
//!    lists of `v` and `u`.
//! 3. **NNN** — for every non-hub edge `(v, u)`, merge-join the 32-bit NHE
//!    lists, never touching hub edges.
//!
//! The HNN and NNN loops run over the same edge set but are deliberately
//! *not* fused (§4.5): each phase's random accesses then target a single
//! small structure. The fused variant is available as an ablation via
//! [`LotusConfig::with_fused_phases`].

use std::time::Instant;

use rayon::prelude::*;

use lotus_algos::intersect::count_merge;
use lotus_graph::UndirectedCsr;

use crate::breakdown::Breakdown;
use crate::config::LotusConfig;
use crate::h2h::TriBitArray;
use crate::preprocess::build_lotus_graph;
use crate::stats::LotusStats;
use crate::structure::LotusGraph;
use crate::tiling::{make_tiles, Tile};

/// Result of a LOTUS run: per-type counts and per-phase timings.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LotusResult {
    /// Per-type triangle counts and edge-split statistics.
    pub stats: LotusStats,
    /// Per-phase wall times.
    pub breakdown: Breakdown,
}

impl LotusResult {
    /// Total triangle count.
    pub fn total(&self) -> u64 {
        self.stats.total()
    }
}

/// The LOTUS counter: configuration plus entry points.
#[derive(Debug, Clone, Default)]
pub struct LotusCounter {
    config: LotusConfig,
}

impl LotusCounter {
    /// Creates a counter with the given configuration.
    pub fn new(config: LotusConfig) -> Self {
        Self { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &LotusConfig {
        &self.config
    }

    /// End-to-end run: preprocessing (Algorithm 2) plus counting
    /// (Algorithm 3).
    pub fn count(&self, graph: &UndirectedCsr) -> LotusResult {
        let pre_start = Instant::now();
        let lg = build_lotus_graph(graph, &self.config);
        let preprocess = pre_start.elapsed();
        let mut result = self.count_prepared(&lg);
        result.breakdown.preprocess = preprocess;
        result
    }

    /// Counts triangles of an already-built LOTUS graph.
    pub fn count_prepared(&self, lg: &LotusGraph) -> LotusResult {
        let mut breakdown = Breakdown::default();

        // Phase 1: HHH and HHN.
        let start = Instant::now();
        let tiles = make_tiles(
            &lg.he,
            self.config.tiling_threshold,
            self.config.partitions_per_vertex,
        );
        let (hhh, hhn) = count_hub_pairs(lg, &tiles);
        breakdown.hhh_hhn = start.elapsed();

        let (hnn, nnn) = if self.config.fuse_hnn_nnn {
            let start = Instant::now();
            let counts = count_hnn_nnn_fused(lg);
            // Attribute the fused time to both phases evenly.
            let half = start.elapsed() / 2;
            breakdown.hnn = half;
            breakdown.nnn = half;
            counts
        } else {
            // Phase 2: HNN.
            let start = Instant::now();
            let hnn = count_hnn(lg);
            breakdown.hnn = start.elapsed();

            // Phase 3: NNN.
            let start = Instant::now();
            let nnn = count_nnn(lg);
            breakdown.nnn = start.elapsed();
            (hnn, nnn)
        };

        LotusResult {
            stats: LotusStats {
                hhh,
                hhn,
                hnn,
                nnn,
                he_edges: lg.he_edges(),
                nhe_edges: lg.nhe_edges(),
            },
            breakdown,
        }
    }
}

/// Phase 1 over a prepared tile list: returns `(hhh, hhn)`.
fn count_hub_pairs(lg: &LotusGraph, tiles: &[Tile]) -> (u64, u64) {
    tiles
        .par_iter()
        .map(|t| {
            let found = count_tile(&lg.h2h, lg.hub_neighbors(t.v), t);
            if lg.is_hub(t.v) {
                (found, 0)
            } else {
                (0, found)
            }
        })
        .reduce(|| (0, 0), |a, b| (a.0 + b.0, a.1 + b.1))
}

/// Counts the connected hub pairs of one tile.
///
/// The row base `h1(h1−1)/2` is computed once per outer iteration and the
/// inner loop probes consecutive bits (§4.4.1).
#[inline]
fn count_tile(h2h: &TriBitArray, he: &[u16], tile: &Tile) -> u64 {
    let mut found = 0u64;
    for i in tile.begin..tile.end {
        let h1 = he[i as usize] as u32;
        let base = TriBitArray::row_base(h1);
        for &h2 in &he[..i as usize] {
            // Lists are strictly ascending, so h2 < h1 always holds.
            if h2h.is_set_with_base(base, h2 as u32) {
                found += 1;
            }
        }
    }
    found
}

/// Phase 2: HNN triangles.
fn count_hnn(lg: &LotusGraph) -> u64 {
    (0..lg.num_vertices())
        .into_par_iter()
        .map(|v| {
            let he_v = lg.hub_neighbors(v);
            if he_v.is_empty() {
                return 0;
            }
            let mut local = 0u64;
            for &u in lg.nonhub_neighbors(v) {
                local += count_merge(he_v, lg.hub_neighbors(u));
            }
            local
        })
        .sum()
}

/// Phase 3: NNN triangles.
fn count_nnn(lg: &LotusGraph) -> u64 {
    (0..lg.num_vertices())
        .into_par_iter()
        .map(|v| {
            let nhe_v = lg.nonhub_neighbors(v);
            let mut local = 0u64;
            for &u in nhe_v {
                local += count_merge(nhe_v, lg.nonhub_neighbors(u));
            }
            local
        })
        .sum()
}

/// Fused HNN + NNN ablation: one pass over the non-hub edges performing
/// both intersections. Returns `(hnn, nnn)`.
fn count_hnn_nnn_fused(lg: &LotusGraph) -> (u64, u64) {
    (0..lg.num_vertices())
        .into_par_iter()
        .map(|v| {
            let he_v = lg.hub_neighbors(v);
            let nhe_v = lg.nonhub_neighbors(v);
            let mut hnn = 0u64;
            let mut nnn = 0u64;
            for &u in nhe_v {
                hnn += count_merge(he_v, lg.hub_neighbors(u));
                nnn += count_merge(nhe_v, lg.nonhub_neighbors(u));
            }
            (hnn, nnn)
        })
        .reduce(|| (0, 0), |a, b| (a.0 + b.0, a.1 + b.1))
}

/// Convenience: end-to-end LOTUS count with default configuration.
pub fn lotus_count(graph: &UndirectedCsr) -> u64 {
    LotusCounter::default().count(graph).total()
}

/// Public phase-1 entry over an explicit tile list: returns `(hhh, hhn)`.
/// Used by the recursive extension and the load-balance experiments.
pub fn count_hub_phase(lg: &LotusGraph, tiles: &[Tile]) -> (u64, u64) {
    count_hub_pairs(lg, tiles)
}

/// Public phase-2 (HNN) entry. Used by the recursive extension.
pub fn count_hnn_phase(lg: &LotusGraph) -> u64 {
    count_hnn(lg)
}

/// Public phase-3 (NNN) entry.
pub fn count_nnn_phase(lg: &LotusGraph) -> u64 {
    count_nnn(lg)
}

/// Counts the hub pairs of a single tile against the H2H array. Exposed
/// for the load-balance model (Table 9), which replays tiles one by one.
pub fn count_single_tile(h2h: &TriBitArray, he: &[u16], tile: &Tile) -> u64 {
    count_tile(h2h, he, tile)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HubCount;
    use lotus_algos::forward::forward_count;
    use lotus_graph::builder::graph_from_edges;

    fn cfg(hubs: u32) -> LotusConfig {
        LotusConfig::default().with_hub_count(HubCount::Fixed(hubs))
    }

    fn figure2_graph() -> UndirectedCsr {
        graph_from_edges([
            (0, 1),
            (0, 3),
            (0, 4),
            (0, 5),
            (0, 6),
            (1, 3),
            (1, 4),
            (1, 6),
            (1, 7),
            (2, 3),
            (4, 6),
            (6, 8),
            (7, 8),
        ])
    }

    #[test]
    fn counts_figure2_graph() {
        let g = figure2_graph();
        let want = forward_count(&g);
        let r = LotusCounter::new(cfg(2)).count(&g);
        assert_eq!(r.total(), want);
        // Hubs 0 and 1 participate in triangles (0,1,3), (0,1,4), (0,1,6),
        // (0,4,6), (1,4,6): all are HHN or HNN with 2 hubs.
        assert!(r.stats.hub_triangles() > 0);
    }

    #[test]
    fn counts_k4_with_various_hub_counts() {
        let g = graph_from_edges([(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        for hubs in 0..=4 {
            let r = LotusCounter::new(cfg(hubs)).count(&g);
            assert_eq!(r.total(), 4, "hubs={hubs}: {:?}", r.stats);
        }
    }

    #[test]
    fn type_split_on_k4() {
        // With 2 hubs, K4 triangles: (0,1,2),(0,1,3) have 2 hubs;
        // (0,2,3),(1,2,3) have 1 hub.
        let g = graph_from_edges([(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        let r = LotusCounter::new(cfg(2)).count(&g);
        assert_eq!(r.stats.hhh, 0);
        assert_eq!(r.stats.hhn, 2);
        assert_eq!(r.stats.hnn, 2);
        assert_eq!(r.stats.nnn, 0);
    }

    #[test]
    fn all_hub_triangle_is_hhh() {
        let g = graph_from_edges([(0, 1), (1, 2), (0, 2)]);
        let r = LotusCounter::new(cfg(3)).count(&g);
        assert_eq!(r.stats.hhh, 1);
        assert_eq!(r.total(), 1);
    }

    #[test]
    fn zero_hubs_makes_everything_nnn() {
        let g = graph_from_edges([(0, 1), (1, 2), (0, 2), (1, 3), (2, 3)]);
        let r = LotusCounter::new(cfg(0)).count(&g);
        assert_eq!(r.stats.nnn, r.total());
        assert_eq!(r.total(), forward_count(&g));
    }

    #[test]
    fn matches_forward_on_rmat_graphs() {
        for seed in [1u64, 2, 3] {
            let g = lotus_gen::Rmat::new(10, 10).generate(seed);
            let want = forward_count(&g);
            for hubs in [0u32, 16, 64, 256] {
                let r = LotusCounter::new(cfg(hubs)).count(&g);
                assert_eq!(r.total(), want, "seed {seed} hubs {hubs}");
            }
        }
    }

    #[test]
    fn fused_ablation_matches_split_phases() {
        let g = lotus_gen::Rmat::new(9, 8).generate(13);
        let split = LotusCounter::new(cfg(64)).count(&g);
        let fused = LotusCounter::new(cfg(64).with_fused_phases(true)).count(&g);
        assert_eq!(split.stats.hnn, fused.stats.hnn);
        assert_eq!(split.stats.nnn, fused.stats.nnn);
        assert_eq!(split.total(), fused.total());
    }

    #[test]
    fn tiling_threshold_does_not_change_counts() {
        let g = lotus_gen::Rmat::new(9, 12).generate(21);
        let want = LotusCounter::new(cfg(64)).count(&g).total();
        for threshold in [1u32, 4, 32, 10_000] {
            let c = cfg(64).with_tiling_threshold(threshold);
            assert_eq!(
                LotusCounter::new(c).count(&g).total(),
                want,
                "thr {threshold}"
            );
        }
    }

    #[test]
    fn breakdown_is_populated() {
        let g = lotus_gen::Rmat::new(9, 8).generate(2);
        let r = LotusCounter::default().count(&g);
        assert!(r.breakdown.preprocess > std::time::Duration::ZERO);
        assert!(r.breakdown.total() >= r.breakdown.preprocess);
    }

    #[test]
    fn lotus_count_helper() {
        let g = graph_from_edges([(0, 1), (1, 2), (0, 2)]);
        assert_eq!(lotus_count(&g), 1);
    }

    #[test]
    fn empty_graph() {
        let g = graph_from_edges(std::iter::empty());
        assert_eq!(lotus_count(&g), 0);
    }
}
