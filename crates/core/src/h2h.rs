//! The H2H triangular bit array (paper §4.2).
//!
//! Hub-to-hub adjacency stored as 1 bit per hub pair. Each hub only records
//! edges to hubs with lower IDs, so the array is triangular: for hubs
//! `h1 > h2 ≥ 0`, bit `h1(h1−1)/2 + h2` is set iff the edge exists. The
//! layout is "h1-major" — bits for consecutive `h2` are adjacent — so the
//! inner loop of phase 1 walks consecutive memory and the `h1(h1−1)/2`
//! base is computed once per outer iteration (§4.4.1).
//!
//! At the paper's 2¹⁶ hubs the array is 256 MB; random accesses during
//! counting concentrate on it instead of on the (much larger) edge arrays,
//! which is the locality argument of §4.5.

use std::sync::atomic::{AtomicU64, Ordering};

/// Dense triangular bit array over `hub_count` hubs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TriBitArray {
    words: Vec<u64>,
    hub_count: u32,
    bits_set: u64,
}

/// Bit index of pair `(h1, h2)` with `h1 > h2`.
#[inline(always)]
pub fn pair_bit_index(h1: u32, h2: u32) -> u64 {
    debug_assert!(h1 > h2, "pair index requires h1 > h2 (got {h1}, {h2})");
    (h1 as u64 * (h1 as u64 - 1)) / 2 + h2 as u64
}

impl TriBitArray {
    /// Total bits of a triangular array over `hub_count` hubs.
    pub fn bit_len(hub_count: u32) -> u64 {
        hub_count as u64 * (hub_count as u64).saturating_sub(1) / 2
    }

    /// Creates an all-zero array.
    pub fn new(hub_count: u32) -> Self {
        let words = Self::bit_len(hub_count).div_ceil(64) as usize;
        Self {
            words: vec![0u64; words],
            hub_count,
            bits_set: 0,
        }
    }

    /// Number of hubs covered.
    #[inline]
    pub fn hub_count(&self) -> u32 {
        self.hub_count
    }

    /// Size of the array in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.words.len() as u64 * 8
    }

    /// Number of set bits (hub-to-hub edges).
    pub fn bits_set(&self) -> u64 {
        self.bits_set
    }

    /// Fraction of set bits (Table 8, "H2H Density").
    pub fn density(&self) -> f64 {
        let total = Self::bit_len(self.hub_count);
        if total == 0 {
            0.0
        } else {
            self.bits_set as f64 / total as f64
        }
    }

    /// Sets the bit for hub pair `(h1, h2)`; order-insensitive.
    pub fn set(&mut self, h1: u32, h2: u32) {
        let (hi, lo) = if h1 > h2 { (h1, h2) } else { (h2, h1) };
        assert!(hi < self.hub_count && hi != lo);
        let bit = pair_bit_index(hi, lo);
        let word = &mut self.words[(bit >> 6) as usize];
        let mask = 1u64 << (bit & 63);
        if *word & mask == 0 {
            *word |= mask;
            self.bits_set += 1;
        }
    }

    /// Tests the bit for hub pair `(h1, h2)` with `h1 > h2`.
    ///
    /// The hot path of phase 1; a handful of instructions and exactly one
    /// random load, as §4.5 requires.
    #[inline(always)]
    pub fn is_set(&self, h1: u32, h2: u32) -> bool {
        let bit = pair_bit_index(h1, h2);
        (self.words[(bit >> 6) as usize] >> (bit & 63)) & 1 != 0
    }

    /// Tests using a precomputed row base (`h1(h1−1)/2`), the reuse trick
    /// of §4.4.1: the outer loop computes the base once per `h1`.
    #[inline(always)]
    pub fn is_set_with_base(&self, row_base: u64, h2: u32) -> bool {
        let bit = row_base + h2 as u64;
        (self.words[(bit >> 6) as usize] >> (bit & 63)) & 1 != 0
    }

    /// Row base for hub `h1` (0 for hub 0, whose row is empty).
    #[inline(always)]
    pub fn row_base(h1: u32) -> u64 {
        h1 as u64 * (h1 as u64).saturating_sub(1) / 2
    }

    /// The raw words (used by the perf simulator to model addresses).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Fraction of 64-byte-aligned blocks containing no set bit
    /// (Table 8, "H2H Zero Cachelines").
    pub fn zero_cacheline_fraction(&self) -> f64 {
        if self.words.is_empty() {
            return 1.0;
        }
        let zero = self
            .words
            .chunks(8) // 8 × u64 = 64 bytes
            .filter(|block| block.iter().all(|&w| w == 0))
            .count();
        zero as f64 / self.words.chunks(8).count() as f64
    }
}

/// Concurrent builder: the preprocessing step sets bits from many threads,
/// then freezes into the read-only [`TriBitArray`].
#[derive(Debug)]
pub struct TriBitArrayBuilder {
    words: Vec<AtomicU64>,
    hub_count: u32,
}

impl TriBitArrayBuilder {
    /// Creates an all-zero concurrent builder.
    pub fn new(hub_count: u32) -> Self {
        let words = TriBitArray::bit_len(hub_count).div_ceil(64) as usize;
        Self {
            words: (0..words).map(|_| AtomicU64::new(0)).collect(),
            hub_count,
        }
    }

    /// Atomically sets the bit for `(h1, h2)`; order-insensitive.
    #[inline]
    pub fn set(&self, h1: u32, h2: u32) {
        let (hi, lo) = if h1 > h2 { (h1, h2) } else { (h2, h1) };
        debug_assert!(hi < self.hub_count && hi != lo);
        let bit = pair_bit_index(hi, lo);
        self.words[(bit >> 6) as usize].fetch_or(1u64 << (bit & 63), Ordering::Relaxed);
    }

    /// Freezes into the immutable array, computing the popcount.
    pub fn freeze(self) -> TriBitArray {
        let words: Vec<u64> = self
            .words
            .into_iter()
            .map(std::sync::atomic::AtomicU64::into_inner)
            .collect();
        let bits_set = words.iter().map(|w| w.count_ones() as u64).sum();
        TriBitArray {
            words,
            hub_count: self.hub_count,
            bits_set,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pair_indices_are_unique_and_dense() {
        let n = 40u32;
        let mut seen = std::collections::HashSet::new();
        for h1 in 1..n {
            for h2 in 0..h1 {
                assert!(seen.insert(pair_bit_index(h1, h2)));
            }
        }
        assert_eq!(seen.len() as u64, TriBitArray::bit_len(n));
        assert_eq!(*seen.iter().max().unwrap(), TriBitArray::bit_len(n) - 1);
    }

    #[test]
    fn set_and_test() {
        let mut a = TriBitArray::new(10);
        assert!(!a.is_set(5, 2));
        a.set(5, 2);
        assert!(a.is_set(5, 2));
        a.set(2, 5); // order-insensitive set
        assert_eq!(a.bits_set(), 1);
        a.set(9, 0);
        assert_eq!(a.bits_set(), 2);
        assert!(a.is_set(9, 0));
        assert!(!a.is_set(9, 1));
    }

    #[test]
    fn row_base_probe_matches_direct() {
        let mut a = TriBitArray::new(16);
        a.set(7, 3);
        a.set(7, 5);
        let base = TriBitArray::row_base(7);
        for h2 in 0..7 {
            assert_eq!(a.is_set_with_base(base, h2), a.is_set(7, h2));
        }
    }

    #[test]
    fn density_and_size() {
        let mut a = TriBitArray::new(100);
        assert_eq!(a.density(), 0.0);
        a.set(1, 0);
        let expected = 1.0 / TriBitArray::bit_len(100) as f64;
        assert!((a.density() - expected).abs() < 1e-15);
        assert_eq!(a.size_bytes(), TriBitArray::bit_len(100).div_ceil(64) * 8);
    }

    #[test]
    fn paper_sized_array_is_256mb() {
        // Don't allocate it; just check the arithmetic.
        let bits = TriBitArray::bit_len(1 << 16);
        let bytes = bits.div_ceil(8);
        assert!(bytes < 256 * 1024 * 1024);
        assert!(bytes > 255 * 1024 * 1024);
    }

    #[test]
    fn zero_cachelines() {
        let mut a = TriBitArray::new(128);
        let before = a.zero_cacheline_fraction();
        assert_eq!(before, 1.0);
        a.set(1, 0);
        assert!(a.zero_cacheline_fraction() < 1.0);
    }

    #[test]
    fn concurrent_builder_freezes_correctly() {
        let b = TriBitArrayBuilder::new(64);
        b.set(10, 3);
        b.set(3, 10); // duplicate, reversed
        b.set(63, 62);
        let a = b.freeze();
        assert_eq!(a.bits_set(), 2);
        assert!(a.is_set(10, 3));
        assert!(a.is_set(63, 62));
    }

    #[test]
    fn degenerate_hub_counts() {
        let a = TriBitArray::new(0);
        assert_eq!(a.bits_set(), 0);
        let a = TriBitArray::new(1);
        assert_eq!(TriBitArray::bit_len(1), 0);
        assert_eq!(a.size_bytes(), 0);
    }
}
