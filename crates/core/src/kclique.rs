//! k-clique counting (paper §7, future work).
//!
//! Triangle counting is the k = 3 case of clique counting; the paper
//! anticipates LOTUS-style hub skew to sharpen further for larger cliques.
//! This module provides the standard ordered enumeration on the
//! degree-ordered forward graph (each clique counted once at its
//! highest-ordered vertex, candidate sets shrunk by successive merge
//! intersections) plus a hub/non-hub split of the counts so the paper's
//! "hub cliques dominate" hypothesis can be measured.

use rayon::prelude::*;

use lotus_graph::{Csr, UndirectedCsr};

use crate::config::LotusConfig;
use crate::preprocess::build_lotus_graph;

/// Counts k-cliques. `k = 1` returns `|V|`, `k = 2` returns `|E|`.
pub fn count_kcliques(graph: &UndirectedCsr, k: usize) -> u64 {
    assert!(k >= 1, "k must be positive");
    match k {
        1 => graph.num_vertices() as u64,
        2 => graph.num_edges(),
        _ => {
            let pre = lotus_algos::preprocess::degree_order_and_orient(graph);
            count_oriented_kcliques(&pre.forward, k)
        }
    }
}

/// Counts k-cliques (k ≥ 3) of an oriented forward graph.
pub fn count_oriented_kcliques(forward: &Csr<u32>, k: usize) -> u64 {
    assert!(k >= 3);
    (0..forward.num_vertices())
        .into_par_iter()
        .map(|v| {
            let cand = forward.neighbors(v);
            if cand.len() + 1 < k {
                return 0;
            }
            let mut scratch = vec![Vec::new(); k - 2];
            extend_clique(forward, cand, k - 1, &mut scratch)
        })
        .sum()
}

/// Recursive extension: `depth` more vertices must come from `cand`.
///
/// Every vertex of a clique is picked through `cand ∩ N⁻(u)`, which only
/// contains IDs below `u` — each clique is therefore enumerated exactly
/// once, in descending ID order.
fn extend_clique(forward: &Csr<u32>, cand: &[u32], depth: usize, scratch: &mut [Vec<u32>]) -> u64 {
    if depth == 1 {
        return cand.len() as u64;
    }
    // The caller sizes `scratch` to the recursion depth; an empty slice
    // can only mean there is nothing left to extend.
    let Some((head, tail)) = scratch.split_first_mut() else {
        return 0;
    };
    let mut total = 0u64;
    for &u in cand {
        head.clear();
        intersect_into(cand, forward.neighbors(u), head);
        if head.len() + 1 >= depth {
            let sub = std::mem::take(head);
            total += extend_clique(forward, &sub, depth - 1, tail);
            *head = sub;
        }
    }
    total
}

/// Merge intersection into a reusable output buffer.
fn intersect_into(a: &[u32], b: &[u32], out: &mut Vec<u32>) {
    let mut i = 0;
    let mut j = 0;
    while i < a.len() && j < b.len() {
        let x = a[i];
        let y = b[j];
        if x < y {
            i += 1;
        } else if y < x {
            j += 1;
        } else {
            out.push(x);
            i += 1;
            j += 1;
        }
    }
}

/// k-clique counts split by whether the clique touches a hub, using the
/// LOTUS hub selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KCliqueSplit {
    /// Cliques containing at least one hub vertex.
    pub hub_cliques: u64,
    /// Cliques entirely among non-hubs.
    pub nonhub_cliques: u64,
}

impl KCliqueSplit {
    /// Total cliques.
    pub fn total(&self) -> u64 {
        self.hub_cliques + self.nonhub_cliques
    }

    /// Fraction of cliques touching a hub.
    pub fn hub_fraction(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.hub_cliques as f64 / self.total() as f64
        }
    }
}

/// Counts k-cliques split into hub / non-hub classes (k ≥ 3).
///
/// Non-hub cliques live entirely inside the NHE sub-graph, so they are
/// counted there (LOTUS's pruning argument, §3.3, applied to cliques);
/// hub cliques are the remainder.
pub fn count_kcliques_split(graph: &UndirectedCsr, k: usize, config: &LotusConfig) -> KCliqueSplit {
    assert!(k >= 3);
    let total = count_kcliques(graph, k);
    let lg = build_lotus_graph(graph, config);
    let residual = crate::recursive::extract_nonhub_graph(&lg);
    let nonhub = count_kcliques(&residual, k);
    KCliqueSplit {
        hub_cliques: total - nonhub,
        nonhub_cliques: nonhub,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lotus_graph::builder::graph_from_edges;

    fn complete_graph(n: u32) -> UndirectedCsr {
        graph_from_edges((0..n).flat_map(|u| ((u + 1)..n).map(move |v| (u, v))))
    }

    fn binomial(n: u64, k: u64) -> u64 {
        (0..k).fold(1u64, |acc, i| acc * (n - i) / (i + 1))
    }

    #[test]
    fn trivial_sizes() {
        let g = complete_graph(6);
        assert_eq!(count_kcliques(&g, 1), 6);
        assert_eq!(count_kcliques(&g, 2), 15);
    }

    #[test]
    fn complete_graph_cliques() {
        let g = complete_graph(8);
        for k in 3..=6 {
            assert_eq!(count_kcliques(&g, k), binomial(8, k as u64), "k={k}");
        }
        assert_eq!(count_kcliques(&g, 9), 0);
    }

    #[test]
    fn k3_matches_triangle_count() {
        let g = lotus_gen::Rmat::new(9, 8).generate(33);
        assert_eq!(
            count_kcliques(&g, 3),
            lotus_algos::forward::forward_count(&g)
        );
    }

    #[test]
    fn triangle_free_graph_has_no_cliques() {
        let g = graph_from_edges([(0, 1), (1, 2), (2, 3), (3, 0)]);
        assert_eq!(count_kcliques(&g, 3), 0);
        assert_eq!(count_kcliques(&g, 4), 0);
    }

    #[test]
    fn split_sums_to_total() {
        let g = lotus_gen::Rmat::new(9, 10).generate(44);
        let cfg = LotusConfig::default().with_hub_count(crate::config::HubCount::Fixed(32));
        for k in 3..=4 {
            let split = count_kcliques_split(&g, k, &cfg);
            assert_eq!(split.total(), count_kcliques(&g, k), "k={k}");
        }
    }

    #[test]
    fn hub_cliques_dominate_on_skewed_graphs() {
        // The paper's hypothesis (§7): skew sharpens with k.
        let g = lotus_gen::Rmat::new(10, 12).generate(55);
        let cfg = LotusConfig::default().with_hub_count(crate::config::HubCount::Fixed(64));
        let s3 = count_kcliques_split(&g, 3, &cfg);
        let s4 = count_kcliques_split(&g, 4, &cfg);
        assert!(s3.hub_fraction() > 0.5);
        assert!(s4.hub_fraction() >= s3.hub_fraction() - 0.05);
    }
}
