#![warn(missing_docs)]

//! The LOTUS locality-optimizing triangle-counting algorithm (PPoPP'22).
//!
//! LOTUS distinguishes four triangle types by how many hub vertices they
//! contain (HHH, HHN, HNN, NNN) and counts them in three phases, each with
//! a bespoke data structure sized so that the *randomly accessed* data fits
//! in cache (paper §4):
//!
//! 1. **HHH + HHN** — iterate each vertex's hub neighbours pairwise and
//!    probe the dense triangular [`h2h::TriBitArray`] (1 bit per hub pair).
//! 2. **HNN** — intersect the 16-bit hub-neighbour (HE) lists of non-hub
//!    endpoints of each non-hub edge.
//! 3. **NNN** — Forward-style merge joins over the 32-bit non-hub (NHE)
//!    lists, never touching hub edges (the fruitless-search pruning of
//!    §3.3).
//!
//! Entry points: [`count::LotusCounter`] for the end-to-end pipeline,
//! [`preprocess::build_lotus_graph`] to materialize the [`LotusGraph`]
//! structure separately, and [`adaptive::adaptive_count`] for the
//! skew-checked dispatcher of §5.5.

pub mod adaptive;
pub mod blocking;
pub mod breakdown;
pub mod config;
pub mod count;
pub mod h2h;
pub mod kclique;
pub mod per_vertex;
pub mod preprocess;
pub mod recursive;
pub mod resilient;
pub mod stats;
pub mod streaming;
pub mod structure;
pub mod tiling;
pub mod two_level;

pub use breakdown::Breakdown;
pub use config::{HubCount, LotusConfig};
pub use count::{CountError, LotusCounter, LotusResult, Phase};
pub use resilient::{count_with_budget, DegradeReason, ResilientCount};
pub use structure::LotusGraph;
