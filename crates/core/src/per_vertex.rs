//! Per-vertex (local) triangle counting with the LOTUS phases.
//!
//! Local triangle counts drive the clustering-coefficient and
//! community-detection applications the paper's introduction motivates.
//! Each LOTUS phase knows all three corners of every triangle it finds,
//! so the per-type structure extends naturally: corners are credited with
//! relaxed atomic increments, and results are reported in *original*
//! vertex IDs via the stored relabeling.

use std::sync::atomic::{AtomicU64, Ordering};

use rayon::prelude::*;

use lotus_algos::intersect::merge::merge_for_each;

use crate::structure::LotusGraph;
use crate::tiling::{make_tiles, Tile};

/// Counts triangles per vertex (original IDs). The sum over all vertices
/// is `3 × total triangles`.
pub fn count_per_vertex(lg: &LotusGraph) -> Vec<u64> {
    let n = lg.num_vertices() as usize;
    let counts: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();

    // Phase 1: HHH + HHN — corners are (v, h1, h2).
    let tiles = make_tiles(&lg.he, u32::MAX, 1);
    tiles.par_iter().for_each(|t: &Tile| {
        let he = lg.hub_neighbors(t.v);
        rayon::sched::log_read(he, "per_vertex.phase1.he");
        for i in t.begin..t.end {
            let h1 = he[i as usize] as u32;
            let base = crate::h2h::TriBitArray::row_base(h1);
            for &h2 in &he[..i as usize] {
                if lg.h2h.is_set_with_base(base, h2 as u32) {
                    counts[t.v as usize].fetch_add(1, Ordering::Relaxed);
                    counts[h1 as usize].fetch_add(1, Ordering::Relaxed);
                    counts[h2 as usize].fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    });

    // Phase 2: HNN — corners are (v, u, h).
    (0..lg.num_vertices()).into_par_iter().for_each(|v| {
        let he_v = lg.hub_neighbors(v);
        if he_v.is_empty() {
            return;
        }
        rayon::sched::log_read(he_v, "per_vertex.phase2.he");
        for &u in lg.nonhub_neighbors(v) {
            merge_for_each(he_v, lg.hub_neighbors(u), |h| {
                counts[v as usize].fetch_add(1, Ordering::Relaxed);
                counts[u as usize].fetch_add(1, Ordering::Relaxed);
                counts[h as usize].fetch_add(1, Ordering::Relaxed);
            });
        }
    });

    // Phase 3: NNN — corners are (v, u, w).
    (0..lg.num_vertices()).into_par_iter().for_each(|v| {
        let nhe_v = lg.nonhub_neighbors(v);
        rayon::sched::log_read(nhe_v, "per_vertex.phase3.nhe");
        for &u in nhe_v {
            merge_for_each(nhe_v, lg.nonhub_neighbors(u), |w| {
                counts[v as usize].fetch_add(1, Ordering::Relaxed);
                counts[u as usize].fetch_add(1, Ordering::Relaxed);
                counts[w as usize].fetch_add(1, Ordering::Relaxed);
            });
        }
    });

    // Map back to original IDs.
    let mut out = vec![0u64; n];
    for new_id in 0..n {
        out[lg.relabeling.old_id(new_id as u32) as usize] = counts[new_id].load(Ordering::Relaxed);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{HubCount, LotusConfig};
    use crate::preprocess::build_lotus_graph;
    use lotus_graph::builder::graph_from_edges;

    fn lotus(g: &lotus_graph::UndirectedCsr, hubs: u32) -> LotusGraph {
        build_lotus_graph(
            g,
            &LotusConfig::default().with_hub_count(HubCount::Fixed(hubs)),
        )
    }

    #[test]
    fn k4_every_vertex_in_three_triangles() {
        let g = graph_from_edges([(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        for hubs in 0..=4 {
            let lg = lotus(&g, hubs);
            assert_eq!(count_per_vertex(&lg), vec![3, 3, 3, 3], "hubs {hubs}");
        }
    }

    #[test]
    fn matches_baseline_per_vertex_counts() {
        let g = lotus_gen::Rmat::new(9, 8).generate(17);
        let want = lotus_algos::forward::per_vertex_counts(&g);
        for hubs in [0u32, 16, 128] {
            let lg = lotus(&g, hubs);
            assert_eq!(count_per_vertex(&lg), want, "hubs {hubs}");
        }
    }

    #[test]
    fn sum_is_three_times_total() {
        let g = lotus_gen::Rmat::new(9, 10).generate(23);
        let lg = lotus(&g, 64);
        let total = crate::count::LotusCounter::default()
            .count_prepared(&lg)
            .total();
        let pv = count_per_vertex(&lg);
        assert_eq!(pv.iter().sum::<u64>(), 3 * total);
    }
}
