//! LOTUS preprocessing (paper Algorithm 2).
//!
//! Builds the [`LotusGraph`] from an arbitrary undirected graph:
//!
//! 1. hub-first relabeling — hubs (top `hub_count` by degree) get the
//!    first IDs, the rest of the top-10% head follows, remaining vertices
//!    keep their original relative order (§4.3.1);
//! 2. per-vertex split of lower neighbours into hub (HE, 16-bit) and
//!    non-hub (NHE, 32-bit) lists;
//! 3. atomic population of the H2H triangular bit array for hub–hub edges.
//!
//! The pass over vertices is parallel (two passes: degree count + fill,
//! with prefix-sum offsets in between), mirroring the paper's `par_for`.

use std::sync::atomic::{AtomicBool, Ordering};

use rayon::prelude::*;

use lotus_graph::{Csr, Relabeling, UndirectedCsr};
use lotus_resilience::{fault_point, RunGuard, StopReason};

use crate::config::LotusConfig;
use crate::h2h::TriBitArrayBuilder;
use crate::structure::LotusGraph;

/// Builds the LOTUS graph structure from an undirected graph.
pub fn build_lotus_graph(graph: &UndirectedCsr, config: &LotusConfig) -> LotusGraph {
    match build_lotus_graph_guarded(graph, config, &RunGuard::unlimited()) {
        Ok(lg) => lg,
        // An unlimited guard never reports a stop condition.
        Err(reason) => unreachable!("unlimited guard stopped preprocessing: {reason}"),
    }
}

/// Builds the LOTUS graph under a [`RunGuard`], polling for cancellation
/// or deadline expiry every 1024 vertices in both parallel passes.
/// Preprocessing has no meaningful partial result, so a stop discards
/// everything built so far.
///
/// # Errors
/// Returns the guard's stop reason; no partial graph is kept.
pub fn build_lotus_graph_guarded(
    graph: &UndirectedCsr,
    config: &LotusConfig,
    guard: &RunGuard,
) -> Result<LotusGraph, StopReason> {
    fault_point!(panic: "core.preprocess.build");
    let n = graph.num_vertices();
    let hub_count = config.resolved_hub_count(n);
    let head_count = config.resolved_head_count(n);
    let stopped = AtomicBool::new(false);
    let poll = |v_new: u32| -> bool {
        if stopped.load(Ordering::Relaxed) {
            return true;
        }
        if v_new & 0x3ff == 0 && guard.should_stop().is_some() {
            stopped.store(true, Ordering::Relaxed);
            return true;
        }
        false
    };

    // Line 1 of Algorithm 2: the relabeling array.
    let relabeling = Relabeling::hub_first(&graph.degrees(), head_count as usize);

    // Pass 1: per-new-vertex HE/NHE degrees.
    let mut he_deg = vec![0u32; n as usize];
    let mut nhe_deg = vec![0u32; n as usize];
    he_deg
        .par_iter_mut()
        .zip(nhe_deg.par_iter_mut())
        .enumerate()
        .for_each(|(v_new, (he_d, nhe_d))| {
            let v_new = v_new as u32;
            if poll(v_new) {
                return;
            }
            rayon::sched::log_write(std::slice::from_ref(he_d), "preprocess.he_deg");
            rayon::sched::log_write(std::slice::from_ref(nhe_d), "preprocess.nhe_deg");
            let v_old = relabeling.old_id(v_new);
            let nbrs = graph.neighbors(v_old);
            rayon::sched::log_read(nbrs, "preprocess.csr_neighbors");
            for &u_old in nbrs {
                let u_new = relabeling.new_id(u_old);
                if u_new >= v_new {
                    continue; // symmetric edge (self-edges were removed at build)
                }
                if u_new < hub_count {
                    *he_d += 1;
                } else {
                    *nhe_d += 1;
                }
            }
        });
    if let Some(reason) = stop_reason(guard, &stopped) {
        return Err(reason);
    }

    let prefix = |deg: &[u32]| -> Vec<u64> {
        let mut offsets = Vec::with_capacity(deg.len() + 1);
        let mut acc = 0u64;
        offsets.push(0);
        for &d in deg {
            acc += d as u64;
            offsets.push(acc);
        }
        offsets
    };
    let he_offsets = prefix(&he_deg);
    let nhe_offsets = prefix(&nhe_deg);

    // Pass 2: fill the flat arrays; one writer per vertex, so the slices
    // can be handed out disjointly.
    let mut he_entries = vec![0u16; he_offsets.last().copied().unwrap_or(0) as usize];
    let mut nhe_entries = vec![0u32; nhe_offsets.last().copied().unwrap_or(0) as usize];
    let h2h = TriBitArrayBuilder::new(hub_count);

    {
        let he_slices = split_by_offsets(&mut he_entries, &he_offsets);
        let nhe_slices = split_by_offsets(&mut nhe_entries, &nhe_offsets);
        he_slices
            .into_par_iter()
            .zip(nhe_slices.into_par_iter())
            .enumerate()
            .for_each(|(v_new, (he_out, nhe_out))| {
                let v_new = v_new as u32;
                if poll(v_new) {
                    return;
                }
                rayon::sched::log_write(he_out, "preprocess.he_entries");
                rayon::sched::log_write(nhe_out, "preprocess.nhe_entries");
                let v_old = relabeling.old_id(v_new);
                let nbrs = graph.neighbors(v_old);
                rayon::sched::log_read(nbrs, "preprocess.csr_neighbors");
                let mut hi = 0;
                let mut ni = 0;
                for &u_old in nbrs {
                    let u_new = relabeling.new_id(u_old);
                    if u_new >= v_new {
                        continue;
                    }
                    if u_new < hub_count {
                        he_out[hi] = u_new as u16;
                        hi += 1;
                        if v_new < hub_count {
                            // Hub neighbour of a hub: record in H2H.
                            h2h.set(v_new, u_new);
                        }
                    } else {
                        nhe_out[ni] = u_new;
                        ni += 1;
                    }
                }
                // setEdges() sorts each list (Algorithm 2, lines 22-23).
                he_out.sort_unstable();
                nhe_out.sort_unstable();
            });
    }
    if let Some(reason) = stop_reason(guard, &stopped) {
        return Err(reason);
    }

    let he = Csr::from_parts(he_offsets, he_entries);
    let nhe = Csr::from_parts(nhe_offsets, nhe_entries);
    let lg = LotusGraph {
        hub_count,
        h2h: h2h.freeze(),
        he,
        nhe,
        relabeling,
        num_edges: graph.num_edges(),
    };
    // `validate`-feature hook: re-check the full LOTUS structural
    // invariants after preprocessing (debug-assert backed; `lotus check`
    // runs the richer lotus-check validator with per-violation reports).
    #[cfg(feature = "validate")]
    debug_assert!(
        lg.validate().is_ok(),
        "LOTUS structure invalid: {:?}",
        lg.validate()
    );
    Ok(lg)
}

/// Resolves the stop flag set inside a parallel pass back to its reason.
fn stop_reason(guard: &RunGuard, stopped: &AtomicBool) -> Option<StopReason> {
    if stopped.load(Ordering::Relaxed) {
        guard.should_stop()
    } else {
        None
    }
}

/// Splits a flat array into per-vertex windows according to offsets.
fn split_by_offsets<'a, T>(flat: &'a mut [T], offsets: &[u64]) -> Vec<&'a mut [T]> {
    let mut out = Vec::with_capacity(offsets.len() - 1);
    let mut rest = flat;
    for w in offsets.windows(2) {
        let len = (w[1] - w[0]) as usize;
        let (head, tail) = std::mem::take(&mut rest).split_at_mut(len);
        out.push(head);
        rest = tail;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HubCount;
    use lotus_graph::builder::graph_from_edges;

    fn cfg(hubs: u32) -> LotusConfig {
        LotusConfig::default().with_hub_count(HubCount::Fixed(hubs))
    }

    /// The example graph of paper Figure 2 (hubs: 0 and 1).
    fn figure2_graph() -> UndirectedCsr {
        graph_from_edges([
            (0, 1),
            (0, 3),
            (0, 4),
            (0, 5),
            (0, 6),
            (1, 3),
            (1, 4),
            (1, 6),
            (1, 7),
            (2, 3),
            (4, 6),
            (6, 8),
            (7, 8),
        ])
    }

    #[test]
    fn structure_is_valid_on_figure2() {
        let g = figure2_graph();
        let lg = build_lotus_graph(&g, &cfg(2));
        lg.validate().expect("valid LOTUS graph");
        assert_eq!(lg.hub_count, 2);
        assert_eq!(lg.he_edges() + lg.nhe_edges(), g.num_edges());
    }

    #[test]
    fn hubs_are_highest_degree_vertices() {
        let g = figure2_graph();
        let lg = build_lotus_graph(&g, &cfg(2));
        // Degrees: v0=5, v1=5 are the two hubs; they map to IDs 0 and 1.
        assert!(lg.relabeling.new_id(0) < 2);
        assert!(lg.relabeling.new_id(1) < 2);
    }

    #[test]
    fn h2h_records_the_hub_hub_edge() {
        let g = figure2_graph();
        let lg = build_lotus_graph(&g, &cfg(2));
        assert_eq!(lg.h2h.bits_set(), 1); // only edge (0, 1)
        assert!(lg.h2h.is_set(1, 0));
    }

    #[test]
    fn hub_nhe_lists_are_empty() {
        let g = figure2_graph();
        let lg = build_lotus_graph(&g, &cfg(2));
        for h in 0..lg.hub_count {
            assert!(lg.nonhub_neighbors(h).is_empty());
        }
    }

    #[test]
    fn edge_partition_is_exact_on_rmat() {
        let g = lotus_gen::Rmat::new(10, 8).generate(5);
        let lg = build_lotus_graph(&g, &cfg(64));
        lg.validate().expect("valid");
        assert_eq!(lg.he_edges() + lg.nhe_edges(), g.num_edges());
    }

    #[test]
    fn all_vertices_hubs_degenerate_case() {
        let g = graph_from_edges([(0, 1), (1, 2), (0, 2)]);
        let lg = build_lotus_graph(&g, &cfg(3));
        lg.validate().expect("valid");
        assert_eq!(lg.nhe_edges(), 0);
        assert_eq!(lg.he_edges(), 3);
        assert_eq!(lg.h2h.bits_set(), 3);
    }

    #[test]
    fn zero_hub_degenerate_case() {
        // hub_count resolves to at least min(n, ...) via Fixed(0) → 0 hubs.
        let g = graph_from_edges([(0, 1), (1, 2), (0, 2)]);
        let lg = build_lotus_graph(&g, &cfg(0));
        lg.validate().expect("valid");
        assert_eq!(lg.he_edges(), 0);
        assert_eq!(lg.nhe_edges(), 3);
    }

    #[test]
    fn relabeling_preserves_graph_size() {
        let g = lotus_gen::Rmat::new(9, 6).generate(8);
        let lg = build_lotus_graph(&g, &LotusConfig::default());
        assert_eq!(lg.num_vertices(), g.num_vertices());
        assert_eq!(lg.num_edges, g.num_edges());
        lg.validate().expect("valid");
    }
}
