//! Recursive LOTUS (paper §5.5 / §7 future work).
//!
//! Social networks with many low-degree hubs keep substantial structure in
//! the NHE sub-graph; the paper proposes "recursively applying Lotus and
//! splitting the NHE sub-graph further in new H2H, HE and NHE components".
//! This module implements that extension: the NNN phase is replaced by a
//! full LOTUS run over the non-hub sub-graph (with hubs re-selected from
//! its own degree distribution), recursing until a depth limit or until
//! the residual graph is too small to profit.

use lotus_graph::{EdgeList, UndirectedCsr};

use crate::config::LotusConfig;
use crate::count::LotusCounter;
use crate::preprocess::build_lotus_graph;
use crate::structure::LotusGraph;
use crate::tiling::make_tiles;

/// Per-level counting statistics of a recursive run.
#[derive(Debug, Clone, Default)]
pub struct RecursiveResult {
    /// Total triangles.
    pub triangles: u64,
    /// Hub triangles (HHH + HHN + HNN) found at each recursion level.
    pub hub_triangles_per_level: Vec<u64>,
    /// Number of levels actually used (≥ 1).
    pub depth: usize,
}

/// Recursive LOTUS counter.
#[derive(Debug, Clone)]
pub struct RecursiveLotus {
    /// Per-level LOTUS configuration.
    pub config: LotusConfig,
    /// Maximum recursion depth (1 = plain LOTUS).
    pub max_depth: usize,
    /// Stop recursing when the residual non-hub graph has fewer vertices.
    pub min_vertices: u32,
}

impl Default for RecursiveLotus {
    fn default() -> Self {
        Self {
            config: LotusConfig::default(),
            max_depth: 3,
            min_vertices: 1024,
        }
    }
}

impl RecursiveLotus {
    /// Creates a recursive counter.
    pub fn new(config: LotusConfig, max_depth: usize) -> Self {
        assert!(max_depth >= 1);
        Self {
            config,
            max_depth,
            ..Self::default()
        }
    }

    /// Counts triangles, recursing into the NHE sub-graph.
    pub fn count(&self, graph: &UndirectedCsr) -> RecursiveResult {
        let mut result = RecursiveResult::default();
        self.count_level(graph, 1, &mut result);
        result
    }

    fn count_level(&self, graph: &UndirectedCsr, level: usize, out: &mut RecursiveResult) {
        out.depth = level;
        let lg = build_lotus_graph(graph, &self.config);

        // Hub phases (1 and 2) at this level.
        let counter = LotusCounter::new(self.config);
        let tiles = make_tiles(
            &lg.he,
            self.config.tiling_threshold,
            self.config.partitions_per_vertex,
        );
        let (hhh, hhn) = crate::count::count_hub_phase(&lg, &tiles);
        let hnn = crate::count::count_hnn_phase(&lg);
        out.hub_triangles_per_level.push(hhh + hhn + hnn);
        out.triangles += hhh + hhn + hnn;

        // Residual non-hub sub-graph.
        let residual = extract_nonhub_graph(&lg);
        if level < self.max_depth && residual.num_vertices() >= self.min_vertices {
            self.count_level(&residual, level + 1, out);
        } else {
            // Base case: plain LOTUS on the residual (counts all its
            // triangle types).
            out.triangles += counter.count(&residual).total();
        }
    }
}

/// Materializes the NHE sub-graph as a standalone undirected graph over
/// the non-hub vertices (IDs shifted down by `hub_count`).
pub fn extract_nonhub_graph(lg: &LotusGraph) -> UndirectedCsr {
    let hub_count = lg.hub_count;
    let n = lg.num_vertices() - hub_count;
    let mut pairs = Vec::with_capacity(lg.nhe_edges() as usize);
    for v in hub_count..lg.num_vertices() {
        for &u in lg.nonhub_neighbors(v) {
            // NHE entries are non-hubs below v; shift both into 0..n.
            pairs.push((u - hub_count, v - hub_count));
        }
    }
    let mut el = EdgeList::from_pairs_with_vertices(pairs, n);
    el.canonicalize();
    UndirectedCsr::from_canonical_edges(&el)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HubCount;
    use lotus_algos::forward::forward_count;

    fn cfg(hubs: u32) -> LotusConfig {
        LotusConfig::default().with_hub_count(HubCount::Fixed(hubs))
    }

    #[test]
    fn depth_one_equals_plain_lotus() {
        let g = lotus_gen::Rmat::new(9, 8).generate(3);
        let plain = LotusCounter::new(cfg(32)).count(&g).total();
        let rec = RecursiveLotus::new(cfg(32), 1).count(&g);
        assert_eq!(rec.triangles, plain);
    }

    #[test]
    fn deeper_recursion_is_still_correct() {
        let g = lotus_gen::Rmat::new(10, 10).generate(5);
        let want = forward_count(&g);
        for depth in 1..=3 {
            let mut rl = RecursiveLotus::new(cfg(32), depth);
            rl.min_vertices = 16;
            let r = rl.count(&g);
            assert_eq!(r.triangles, want, "depth {depth}");
            assert!(r.depth <= depth);
        }
    }

    #[test]
    fn extract_nonhub_graph_matches_nhe_edges() {
        let g = lotus_gen::Rmat::new(9, 8).generate(7);
        let lg = build_lotus_graph(&g, &cfg(64));
        let residual = extract_nonhub_graph(&lg);
        assert_eq!(residual.num_edges(), lg.nhe_edges());
        assert_eq!(residual.num_vertices(), lg.num_vertices() - lg.hub_count);
    }

    #[test]
    fn per_level_hub_counts_recorded() {
        let g = lotus_gen::Rmat::new(10, 12).generate(9);
        let mut rl = RecursiveLotus::new(cfg(64), 2);
        rl.min_vertices = 16;
        let r = rl.count(&g);
        assert_eq!(r.hub_triangles_per_level.len(), r.depth);
    }
}
