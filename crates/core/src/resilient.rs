//! Memory-budget degradation for LOTUS runs.
//!
//! LOTUS trades memory for locality: the H2H bit array is quadratic in
//! the hub count and the HE/NHE split stores every edge in a
//! width-specialised list. On machines where that footprint does not
//! fit, [`count_with_budget`] degrades *before* allocating: it halves
//! the hub set until the estimated [`LotusGraph`](crate::LotusGraph)
//! footprint fits the [`MemoryBudget`], and if even a hub-less build is
//! too large it falls back to the forward-hashed baseline, which only
//! materialises one oriented CSR. The chosen degradation is reported as
//! a [`DegradeReason`] so callers can surface it.

// See crate::count: CountError is intentionally larger than clippy's
// 128-byte Err threshold; budgeted runs happen once per invocation.
#![allow(clippy::result_large_err)]

use std::fmt;
use std::time::Instant;

use lotus_algos::forward_hashed::forward_hashed_count_guarded;
use lotus_graph::UndirectedCsr;
use lotus_resilience::{isolate, MemoryBudget, RunGuard};
use lotus_telemetry::{span, Span, SpanId};

use crate::breakdown::Breakdown;
use crate::config::{HubCount, LotusConfig};
use crate::count::{CountError, LotusCounter, LotusResult, Phase};
use crate::h2h::TriBitArray;
use crate::stats::LotusStats;

/// Conservative estimate, in bytes, of the peak [`LotusGraph`]
/// footprint for a graph with `num_vertices` vertices and `num_edges`
/// undirected edges at the given hub count.
///
/// Each component is bounded independently (every edge could land in
/// either list, so HE and NHE are both sized for all of them):
///
/// * H2H bit array: `hub_count·(hub_count−1)/2` bits;
/// * HE entries: 2 bytes per edge, NHE entries: 4 bytes per edge;
/// * two CSR offset arrays: 8 bytes per vertex each;
/// * the relabeling (old→new and new→old): 2 × 4 bytes per vertex.
///
/// [`LotusGraph`]: crate::LotusGraph
pub fn estimate_footprint(num_vertices: u32, num_edges: u64, hub_count: u32) -> u64 {
    let h2h = TriBitArray::bit_len(hub_count).div_ceil(64) * 8;
    let he = 2 * num_edges;
    let nhe = 4 * num_edges;
    let offsets = 2 * (num_vertices as u64 + 1) * 8;
    let relabeling = 2 * num_vertices as u64 * 4;
    h2h + he + nhe + offsets + relabeling
}

/// How a budgeted run was degraded to fit its [`MemoryBudget`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegradeReason {
    /// The hub set was shrunk (halving from the configured count) until
    /// the estimated footprint fit the budget.
    ShrunkHubs {
        /// The configured (resolved) hub count.
        from: u32,
        /// The hub count actually used.
        to: u32,
        /// Estimated footprint at `to` hubs, in bytes.
        estimated: u64,
        /// The budget, in bytes.
        budget: u64,
    },
    /// Even a hub-less LOTUS build was estimated over budget; the run
    /// used the forward-hashed baseline instead.
    ForwardFallback {
        /// Estimated footprint of the hub-less build, in bytes.
        estimated: u64,
        /// The budget, in bytes.
        budget: u64,
    },
}

impl fmt::Display for DegradeReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DegradeReason::ShrunkHubs {
                from,
                to,
                estimated,
                budget,
            } => write!(
                f,
                "shrunk hub set {from} -> {to} (estimated {estimated} B, budget {budget} B)"
            ),
            DegradeReason::ForwardFallback { estimated, budget } => write!(
                f,
                "fell back to forward-hashed (hub-less estimate {estimated} B over budget {budget} B)"
            ),
        }
    }
}

/// Result of a budgeted run: the counts plus the degradation applied,
/// if any.
///
/// When `degraded` is a [`DegradeReason::ForwardFallback`] the driver
/// does not classify triangles by type: the undifferentiated total is
/// reported in `result.stats.nnn` (and its wall time in
/// `result.breakdown.nnn`).
#[derive(Debug, Clone)]
pub struct ResilientCount {
    /// The counting result.
    pub result: LotusResult,
    /// The degradation applied, or `None` when the configured run fit
    /// the budget unmodified.
    pub degraded: Option<DegradeReason>,
}

impl ResilientCount {
    /// Total triangle count.
    pub fn total(&self) -> u64 {
        self.result.total()
    }
}

/// Runs LOTUS under both a [`MemoryBudget`] and a [`RunGuard`].
///
/// The footprint is estimated from `(|V|, |E|)` *before* building
/// anything; if the configured hub count is over budget the hub set is
/// halved until it fits (recorded as [`DegradeReason::ShrunkHubs`]),
/// and if even zero hubs do not fit the forward-hashed baseline runs
/// instead ([`DegradeReason::ForwardFallback`]). Guard stops and worker
/// panics surface as [`CountError`] exactly as in
/// [`LotusCounter::count_guarded`].
///
/// # Errors
/// Returns a [`CountError`] when the guard stops the run or a worker
/// panics; budget degradation itself is not an error.
pub fn count_with_budget(
    config: &LotusConfig,
    graph: &UndirectedCsr,
    budget: &MemoryBudget,
    guard: &RunGuard,
) -> Result<ResilientCount, CountError> {
    let n = graph.num_vertices();
    let m = graph.num_edges();
    let configured = config.resolved_hub_count(n);

    let mut hubs = configured;
    let mut estimated = estimate_footprint(n, m, hubs);
    while !budget.fits(estimated) && hubs > 0 {
        hubs /= 2;
        estimated = estimate_footprint(n, m, hubs);
    }

    if !budget.fits(estimated) {
        // Even hub-less LOTUS is over budget: forward-hashed fallback.
        let reason = DegradeReason::ForwardFallback {
            estimated,
            budget: budget.bytes(),
        };
        // The degrade path is part of the run's observable story: record
        // it before the fallback driver starts, so telemetry keeps the
        // explanation even if the driver is later stopped or panics.
        span::record_degrade(&reason.to_string());
        let degraded = Some(reason);
        let start = Instant::now();
        let outcome = isolate(|| {
            let _span = Span::enter(SpanId::Fallback);
            forward_hashed_count_guarded(graph, guard)
        });
        let breakdown = Breakdown {
            nnn: start.elapsed(),
            ..Breakdown::default()
        };
        let total = match outcome {
            Ok(Ok(total)) => total,
            Ok(Err((reason, partial))) => {
                return Err(CountError::Interrupted {
                    phase: Phase::Fallback,
                    reason,
                    partial: LotusStats {
                        nnn: partial,
                        ..LotusStats::default()
                    },
                    breakdown,
                })
            }
            Err(panic) => {
                return Err(CountError::PhasePanic {
                    phase: Phase::Fallback,
                    message: panic.message,
                    partial: LotusStats::default(),
                    breakdown,
                })
            }
        };
        return Ok(ResilientCount {
            result: LotusResult {
                stats: LotusStats {
                    nnn: total,
                    ..LotusStats::default()
                },
                breakdown,
            },
            degraded,
        });
    }

    let degraded = (hubs != configured).then_some(DegradeReason::ShrunkHubs {
        from: configured,
        to: hubs,
        estimated,
        budget: budget.bytes(),
    });
    if let Some(reason) = &degraded {
        span::record_degrade(&reason.to_string());
    }
    let effective = if hubs == configured {
        *config
    } else {
        config.with_hub_count(HubCount::Fixed(hubs))
    };
    let result = LotusCounter::new(effective).count_guarded(graph, guard)?;
    Ok(ResilientCount { result, degraded })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HubCount;
    use lotus_algos::forward::forward_count;

    fn cfg(hubs: u32) -> LotusConfig {
        LotusConfig::default().with_hub_count(HubCount::Fixed(hubs))
    }

    #[test]
    fn footprint_grows_with_hubs_and_edges() {
        let base = estimate_footprint(1000, 5000, 0);
        assert!(estimate_footprint(1000, 5000, 512) > base);
        assert!(estimate_footprint(1000, 10_000, 0) > base);
    }

    #[test]
    fn generous_budget_runs_unmodified() {
        let g = lotus_gen::Rmat::new(9, 8).generate(7);
        let budget = MemoryBudget::from_bytes(u64::MAX);
        let r = count_with_budget(&cfg(64), &g, &budget, &RunGuard::unlimited()).unwrap();
        assert!(r.degraded.is_none());
        assert_eq!(r.total(), forward_count(&g));
    }

    #[test]
    fn tight_budget_shrinks_hubs_and_stays_correct() {
        let g = lotus_gen::Rmat::new(9, 8).generate(7);
        let full = estimate_footprint(g.num_vertices(), g.num_edges(), 512);
        let hubless = estimate_footprint(g.num_vertices(), g.num_edges(), 0);
        // A budget between the hub-less and the 512-hub estimate forces
        // halving without forcing the fallback.
        let budget = MemoryBudget::from_bytes((full + hubless) / 2);
        let r = count_with_budget(&cfg(512), &g, &budget, &RunGuard::unlimited()).unwrap();
        match r.degraded {
            Some(DegradeReason::ShrunkHubs { from, to, .. }) => {
                assert_eq!(from, 512);
                assert!(to < 512);
            }
            other => panic!("expected ShrunkHubs, got {other:?}"),
        }
        assert_eq!(r.total(), forward_count(&g));
    }

    #[test]
    fn hopeless_budget_falls_back_to_forward_hashed() {
        let g = lotus_gen::Rmat::new(8, 8).generate(3);
        let budget = MemoryBudget::from_bytes(16);
        let r = count_with_budget(&cfg(64), &g, &budget, &RunGuard::unlimited()).unwrap();
        assert!(matches!(
            r.degraded,
            Some(DegradeReason::ForwardFallback { .. })
        ));
        assert_eq!(r.total(), forward_count(&g));
        // The fallback reports the whole count as NNN.
        assert_eq!(r.result.stats.nnn, r.total());
    }
}
