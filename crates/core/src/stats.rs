//! Per-type triangle counts and structural statistics (Figures 7 and 8).

/// Triangle counts split by type, plus edge-split statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LotusStats {
    /// Triangles with three hub corners.
    pub hhh: u64,
    /// Triangles with two hub corners.
    pub hhn: u64,
    /// Triangles with one hub corner.
    pub hnn: u64,
    /// Triangles with no hub corner.
    pub nnn: u64,
    /// Edges stored in the HE sub-graph.
    pub he_edges: u64,
    /// Edges stored in the NHE sub-graph.
    pub nhe_edges: u64,
}

impl LotusStats {
    /// All triangles.
    pub fn total(&self) -> u64 {
        self.hhh + self.hhn + self.hnn + self.nnn
    }

    /// Triangles with at least one hub corner.
    pub fn hub_triangles(&self) -> u64 {
        self.hhh + self.hhn + self.hnn
    }

    /// Fraction of triangles that are hub triangles (Figure 7; the paper
    /// reports 68.9% on average with 64K hubs).
    pub fn hub_triangle_fraction(&self) -> f64 {
        let t = self.total();
        if t == 0 {
            0.0
        } else {
            self.hub_triangles() as f64 / t as f64
        }
    }

    /// Fraction of edges processed as hub edges (Figure 8).
    pub fn hub_edge_fraction(&self) -> f64 {
        let e = self.he_edges + self.nhe_edges;
        if e == 0 {
            0.0
        } else {
            self.he_edges as f64 / e as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals() {
        let s = LotusStats {
            hhh: 1,
            hhn: 2,
            hnn: 3,
            nnn: 4,
            he_edges: 30,
            nhe_edges: 70,
        };
        assert_eq!(s.total(), 10);
        assert_eq!(s.hub_triangles(), 6);
        assert!((s.hub_triangle_fraction() - 0.6).abs() < 1e-12);
        assert!((s.hub_edge_fraction() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn empty_stats() {
        let s = LotusStats::default();
        assert_eq!(s.total(), 0);
        assert_eq!(s.hub_triangle_fraction(), 0.0);
        assert_eq!(s.hub_edge_fraction(), 0.0);
    }
}
