//! Streaming triangle counting with an H2H fast path (paper §6.2).
//!
//! The paper observes that in a streaming context "Lotus stores the H2H
//! bit array in the memory and accelerates processing of hub edges that
//! are streamed in": hubs create most triangles, and hub–hub adjacency
//! tests against the resident bit array are O(1) loads instead of hash
//! probes. This module implements an exact incremental counter over a
//! fixed hub set: every inserted edge closes `|N(u) ∩ N(v)|` new
//! triangles, and common-neighbour tests route through H2H whenever both
//! sides are hubs.
//!
//! Vertices `0..hub_count` are the hubs; callers typically relabel with
//! [`lotus_graph::Relabeling::hub_first`] first (or use
//! [`StreamingLotus::from_degree_estimate`]).

use lotus_algos::fx::FxHashSet;
use lotus_graph::VertexId;

use crate::h2h::TriBitArray;

/// Exact incremental triangle counter with hub-aware adjacency storage.
#[derive(Debug, Clone)]
pub struct StreamingLotus {
    hub_count: u32,
    h2h: TriBitArray,
    /// Full adjacency sets (hash, O(1) membership).
    adj: Vec<FxHashSet<u32>>,
    /// Hub neighbours per vertex, kept separately (small, scanned).
    hub_adj: Vec<Vec<u32>>,
    triangles: u64,
    edges: u64,
}

impl StreamingLotus {
    /// Creates an empty streaming counter where IDs `0..hub_count` are
    /// treated as hubs.
    pub fn new(num_vertices: u32, hub_count: u32) -> Self {
        let hub_count = hub_count.min(num_vertices).min(1 << 16);
        Self {
            hub_count,
            h2h: TriBitArray::new(hub_count),
            adj: vec![FxHashSet::default(); num_vertices as usize],
            hub_adj: vec![Vec::new(); num_vertices as usize],
            triangles: 0,
            edges: 0,
        }
    }

    /// Convenience constructor matching LOTUS's auto policy:
    /// `min(2¹⁶, max(64, |V|/16))` hubs.
    pub fn from_degree_estimate(num_vertices: u32) -> Self {
        Self::new(
            num_vertices,
            crate::config::HubCount::Auto.resolve(num_vertices),
        )
    }

    /// Number of hubs.
    pub fn hub_count(&self) -> u32 {
        self.hub_count
    }

    /// Triangles closed so far.
    pub fn triangles(&self) -> u64 {
        self.triangles
    }

    /// Edges accepted so far.
    pub fn edges(&self) -> u64 {
        self.edges
    }

    /// The resident hub-to-hub bit array.
    pub fn h2h(&self) -> &TriBitArray {
        &self.h2h
    }

    #[inline(always)]
    fn is_hub(&self, v: VertexId) -> bool {
        v < self.hub_count
    }

    /// O(1)-ish adjacency test that prefers the H2H bit array for hub
    /// pairs — the streamed-hub-edge acceleration of §6.2.
    #[inline]
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        if u == v {
            return false;
        }
        if self.is_hub(u) && self.is_hub(v) {
            let (hi, lo) = if u > v { (u, v) } else { (v, u) };
            return self.h2h.is_set(hi, lo);
        }
        self.adj[u as usize].contains(&v)
    }

    /// Inserts an undirected edge; returns the number of triangles the
    /// edge closed, or `None` for self-loops and duplicates.
    pub fn insert(&mut self, u: VertexId, v: VertexId) -> Option<u64> {
        if u == v || self.has_edge(u, v) {
            return None;
        }

        let mut closed = 0u64;

        // Common hub neighbours: scan the shorter hub-neighbour list and
        // test the other endpoint's adjacency (H2H when that side is a
        // hub pair, hash probe otherwise).
        let (a, b) = if self.hub_adj[u as usize].len() <= self.hub_adj[v as usize].len() {
            (u, v)
        } else {
            (v, u)
        };
        for &w in &self.hub_adj[a as usize] {
            if self.has_edge(w, b) {
                closed += 1;
            }
        }

        // Common non-hub neighbours: scan the smaller full set, skip hubs.
        let (a, b) = if self.adj[u as usize].len() <= self.adj[v as usize].len() {
            (u, v)
        } else {
            (v, u)
        };
        for &w in &self.adj[a as usize] {
            if !self.is_hub(w) && self.adj[b as usize].contains(&w) {
                closed += 1;
            }
        }

        // Commit the edge.
        self.adj[u as usize].insert(v);
        self.adj[v as usize].insert(u);
        if self.is_hub(v) {
            self.hub_adj[u as usize].push(v);
        }
        if self.is_hub(u) {
            self.hub_adj[v as usize].push(u);
        }
        if self.is_hub(u) && self.is_hub(v) {
            self.h2h.set(u.max(v), u.min(v));
        }

        self.triangles += closed;
        self.edges += 1;
        Some(closed)
    }

    /// Inserts a batch of edges, returning total triangles closed.
    pub fn insert_batch(&mut self, edges: impl IntoIterator<Item = (u32, u32)>) -> u64 {
        edges
            .into_iter()
            .filter_map(|(u, v)| self.insert(u, v))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lotus_algos::forward::forward_count;
    use lotus_graph::builder::graph_from_edges;

    #[test]
    fn triangle_closes_on_third_edge() {
        let mut s = StreamingLotus::new(10, 2);
        assert_eq!(s.insert(0, 1), Some(0));
        assert_eq!(s.insert(1, 2), Some(0));
        assert_eq!(s.insert(0, 2), Some(1));
        assert_eq!(s.triangles(), 1);
        assert_eq!(s.edges(), 3);
    }

    #[test]
    fn duplicates_and_loops_rejected() {
        let mut s = StreamingLotus::new(5, 1);
        assert_eq!(s.insert(1, 1), None);
        assert_eq!(s.insert(0, 1), Some(0));
        assert_eq!(s.insert(1, 0), None);
        assert_eq!(s.edges(), 1);
    }

    #[test]
    fn hub_hub_edges_populate_h2h() {
        let mut s = StreamingLotus::new(10, 4);
        s.insert(0, 1);
        s.insert(2, 3);
        s.insert(0, 5);
        assert_eq!(s.h2h().bits_set(), 2);
        assert!(s.has_edge(0, 1));
        assert!(s.has_edge(3, 2));
        assert!(!s.has_edge(0, 2));
    }

    #[test]
    fn matches_forward_on_streamed_rmat() {
        let el = lotus_gen::Rmat::new(9, 8).generate_edges(19);
        let g = graph_from_edges(el.pairs().iter().copied());
        let want = forward_count(&g);

        let mut s = StreamingLotus::from_degree_estimate(el.num_vertices());
        let total = s.insert_batch(el.pairs().iter().copied());
        assert_eq!(s.triangles(), want);
        assert_eq!(total, want);
        assert_eq!(s.edges(), g.num_edges());
    }

    #[test]
    fn insertion_order_does_not_matter() {
        let el = lotus_gen::Rmat::new(8, 6).generate_edges(4);
        let mut forward_order = StreamingLotus::new(el.num_vertices(), 16);
        forward_order.insert_batch(el.pairs().iter().copied());
        let mut reverse_order = StreamingLotus::new(el.num_vertices(), 16);
        reverse_order.insert_batch(el.pairs().iter().rev().copied());
        assert_eq!(forward_order.triangles(), reverse_order.triangles());
    }

    #[test]
    fn zero_hubs_still_counts() {
        let mut s = StreamingLotus::new(4, 0);
        s.insert(0, 1);
        s.insert(1, 2);
        s.insert(0, 2);
        assert_eq!(s.triangles(), 1);
    }
}
