//! The LOTUS graph structure (paper §4.2 / Figure 3a).
//!
//! Four components, each sized for its access pattern:
//!
//! * **H2H** — triangular bit array of hub-to-hub edges (randomly probed
//!   in phase 1; small enough to live in cache).
//! * **HE** — per-vertex *hub* neighbour lists with 16-bit IDs (hubs
//!   occupy IDs `0..hub_count ≤ 2¹⁶`).
//! * **NHE** — per-vertex *non-hub* neighbour lists with 32-bit IDs.
//! * The hub-first [`Relabeling`] connecting original and LOTUS IDs.
//!
//! Hub-to-hub edges appear twice (in HE and in H2H), as in the paper.
//! All lists are forward-oriented (`u < v`) and sorted ascending.

use lotus_graph::{Csr, Relabeling, VertexId};

use crate::h2h::TriBitArray;

/// The preprocessed LOTUS representation of a graph.
#[derive(Debug, Clone)]
pub struct LotusGraph {
    /// Number of hub vertices (IDs `0..hub_count`).
    pub hub_count: u32,
    /// Hub-to-hub adjacency bits.
    pub h2h: TriBitArray,
    /// Hub-neighbour sub-graph, 16-bit IDs.
    pub he: Csr<u16>,
    /// Non-hub-neighbour sub-graph, 32-bit IDs.
    pub nhe: Csr<u32>,
    /// Mapping between original and LOTUS vertex IDs.
    pub relabeling: Relabeling,
    /// Undirected edge count of the source graph.
    pub num_edges: u64,
}

impl LotusGraph {
    /// Number of vertices.
    pub fn num_vertices(&self) -> u32 {
        self.he.num_vertices()
    }

    /// Whether `v` (LOTUS ID) is a hub.
    #[inline(always)]
    pub fn is_hub(&self, v: VertexId) -> bool {
        v < self.hub_count
    }

    /// Hub neighbours of `v` with lower IDs (16-bit entries).
    #[inline(always)]
    pub fn hub_neighbors(&self, v: VertexId) -> &[u16] {
        self.he.neighbors(v)
    }

    /// Non-hub neighbours of `v` with lower IDs.
    #[inline(always)]
    pub fn nonhub_neighbors(&self, v: VertexId) -> &[u32] {
        self.nhe.neighbors(v)
    }

    /// Edges stored in the HE sub-graph (hub edges; paper Figure 8).
    pub fn he_edges(&self) -> u64 {
        self.he.num_entries()
    }

    /// Edges stored in the NHE sub-graph (non-hub edges).
    pub fn nhe_edges(&self) -> u64 {
        self.nhe.num_entries()
    }

    /// Fraction of edges processed as hub edges (Figure 8; §5.4 reports
    /// 50.1% on average).
    pub fn hub_edge_fraction(&self) -> f64 {
        let total = self.he_edges() + self.nhe_edges();
        if total == 0 {
            0.0
        } else {
            self.he_edges() as f64 / total as f64
        }
    }

    /// Total topology bytes of the LOTUS structure (Table 7 "Lotus"
    /// column): both sub-graph indices + 16-bit HE entries + 32-bit NHE
    /// entries + the H2H bit array.
    pub fn topology_bytes(&self) -> u64 {
        self.he.topology_bytes() + self.nhe.topology_bytes() + self.h2h.size_bytes()
    }

    /// Consistency checks used by tests and debug builds:
    /// * every HE entry is a hub with ID `< v`;
    /// * every NHE entry is a non-hub with ID `< v`;
    /// * hubs have empty NHE lists;
    /// * H2H bits correspond exactly to hub–hub HE entries.
    ///
    /// # Errors
    /// Returns a description of the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        let n = self.num_vertices();
        if self.nhe.num_vertices() != n {
            return Err("HE and NHE vertex counts differ".into());
        }
        let mut h2h_edges = 0u64;
        for v in 0..n {
            let mut prev: Option<u16> = None;
            for &h in self.he.neighbors(v) {
                let h32 = h as u32;
                if h32 >= self.hub_count {
                    return Err(format!("HE entry {h32} of vertex {v} is not a hub"));
                }
                if h32 >= v {
                    return Err(format!("HE entry {h32} of vertex {v} is not lower"));
                }
                if prev.is_some_and(|p| p >= h) {
                    return Err(format!("HE list of {v} not strictly sorted"));
                }
                prev = Some(h);
                if self.is_hub(v) {
                    if !self.h2h.is_set(v, h32) {
                        return Err(format!("missing H2H bit for ({v}, {h32})"));
                    }
                    h2h_edges += 1;
                }
            }
            let mut prev: Option<u32> = None;
            for &u in self.nhe.neighbors(v) {
                if u < self.hub_count {
                    return Err(format!("NHE entry {u} of vertex {v} is a hub"));
                }
                if u >= v {
                    return Err(format!("NHE entry {u} of vertex {v} is not lower"));
                }
                if prev.is_some_and(|p| p >= u) {
                    return Err(format!("NHE list of {v} not strictly sorted"));
                }
                prev = Some(u);
            }
            if self.is_hub(v) && !self.nhe.neighbors(v).is_empty() {
                return Err(format!("hub {v} has a non-empty NHE list"));
            }
        }
        if h2h_edges != self.h2h.bits_set() {
            return Err(format!(
                "H2H has {} bits set but HE holds {} hub-hub edges",
                self.h2h.bits_set(),
                h2h_edges
            ));
        }
        if self.he_edges() + self.nhe_edges() != self.num_edges {
            return Err(format!(
                "HE ({}) + NHE ({}) != |E| ({})",
                self.he_edges(),
                self.nhe_edges(),
                self.num_edges
            ));
        }
        Ok(())
    }
}
