//! Squared Edge Tiling (paper §4.6).
//!
//! Phase 1 iterates, for each vertex, over all *pairs* of its hub
//! neighbours: neighbour `i` performs `i` comparisons, so splitting a
//! neighbour list into equal-length chunks gives quadratically unbalanced
//! work. Squared edge tiling instead places partition boundaries at
//! `i ≈ |N| · √(k/p)`, equalizing the pair count per tile. The `√(k/p)`
//! values depend only on `k/p`, so they are precomputed once and reused
//! for every high-degree vertex.

use lotus_graph::{Csr, NeighborId, VertexId};

/// One unit of phase-1 work: vertex `v`, pair-outer indices `[begin, end)`
/// of its hub-neighbour list (each outer index `i` pairs with all `j < i`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tile {
    /// The vertex whose hub-neighbour pairs this tile covers.
    pub v: VertexId,
    /// First outer index (inclusive).
    pub begin: u32,
    /// Last outer index (exclusive).
    pub end: u32,
}

impl Tile {
    /// Number of `(h1, h2)` pairs the tile covers:
    /// `Σ_{i=begin}^{end-1} i`.
    pub fn work(&self) -> u64 {
        let b = self.begin as u64;
        let e = self.end as u64;
        (e * e.saturating_sub(1) - b * b.saturating_sub(1)) / 2
    }
}

/// Precomputed `√(k/p)` factors for `k = 0..=p`.
#[derive(Debug, Clone)]
pub struct SqrtFractions {
    factors: Vec<f64>,
}

impl SqrtFractions {
    /// Precomputes factors for `p` partitions.
    pub fn new(partitions: usize) -> Self {
        assert!(partitions >= 1);
        let factors = (0..=partitions)
            .map(|k| (k as f64 / partitions as f64).sqrt())
            .collect();
        Self { factors }
    }

    /// Number of partitions.
    pub fn partitions(&self) -> usize {
        self.factors.len() - 1
    }

    /// Boundary outer-indices for a list of length `degree`: a
    /// non-decreasing sequence starting at 0 and ending at `degree`.
    pub fn boundaries(&self, degree: u32) -> Vec<u32> {
        self.factors
            .iter()
            .map(|f| ((degree as f64) * f).round() as u32)
            .map(|b| b.min(degree))
            .collect()
    }

    /// Emits the tiles for `(v, degree)`, skipping empty ranges.
    pub fn tiles_for(&self, v: VertexId, degree: u32, out: &mut Vec<Tile>) {
        let bounds = self.boundaries(degree);
        for w in bounds.windows(2) {
            if w[0] < w[1] {
                out.push(Tile {
                    v,
                    begin: w[0],
                    end: w[1],
                });
            }
        }
    }
}

/// Builds the phase-1 work list over a sub-graph's neighbour lists:
/// vertices with degree `> threshold` are split into `partitions` tiles by
/// squared edge tiling; the rest become single whole-vertex tiles.
pub fn make_tiles<N: NeighborId>(sub: &Csr<N>, threshold: u32, partitions: usize) -> Vec<Tile> {
    let fractions = SqrtFractions::new(partitions.max(1));
    let mut tiles = Vec::new();
    for v in 0..sub.num_vertices() {
        let d = sub.degree(v);
        if d < 2 {
            continue; // no pairs to form
        }
        if d > threshold {
            fractions.tiles_for(v, d, &mut tiles);
        } else {
            tiles.push(Tile {
                v,
                begin: 0,
                end: d,
            });
        }
    }
    tiles
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_boundaries() {
        // §4.6: 100 neighbours, 5 partitions → 0, 45, 63, 77, 89, 100.
        let f = SqrtFractions::new(5);
        assert_eq!(f.boundaries(100), vec![0, 45, 63, 77, 89, 100]);
    }

    #[test]
    fn boundaries_cover_range_monotonically() {
        let f = SqrtFractions::new(8);
        for d in [1u32, 2, 5, 100, 513, 10_000] {
            let b = f.boundaries(d);
            assert_eq!(b[0], 0);
            assert_eq!(*b.last().unwrap(), d);
            assert!(b.windows(2).all(|w| w[0] <= w[1]));
        }
    }

    #[test]
    fn tile_work_formula() {
        // Whole list [0, d): work = d(d-1)/2.
        let t = Tile {
            v: 0,
            begin: 0,
            end: 100,
        };
        assert_eq!(t.work(), 100 * 99 / 2);
        // Split at 45: the two halves sum to the total.
        let a = Tile {
            v: 0,
            begin: 0,
            end: 45,
        };
        let b = Tile {
            v: 0,
            begin: 45,
            end: 100,
        };
        assert_eq!(a.work() + b.work(), t.work());
    }

    #[test]
    fn tiles_balance_work_within_factor() {
        let f = SqrtFractions::new(5);
        let mut tiles = Vec::new();
        f.tiles_for(7, 1000, &mut tiles);
        let total: u64 = tiles.iter().map(Tile::work).sum();
        assert_eq!(total, 1000 * 999 / 2);
        let target = total / 5;
        for t in &tiles {
            let w = t.work();
            // Rounded boundaries: stay within 15% of the ideal share.
            assert!(
                (w as f64 - target as f64).abs() / (target as f64) < 0.15,
                "tile {t:?} work {w} vs target {target}"
            );
        }
    }

    #[test]
    fn make_tiles_splits_only_above_threshold() {
        // Vertex 0: degree 4 (below threshold), vertex 1: degree 20 (above).
        let sub = Csr::<u32>::from_adjacency(vec![
            (0..4u32).collect(),
            (0..20u32).collect(),
            vec![],
            vec![9],
        ]);
        let tiles = make_tiles(&sub, 8, 4);
        let v0: Vec<_> = tiles.iter().filter(|t| t.v == 0).collect();
        let v1: Vec<_> = tiles.iter().filter(|t| t.v == 1).collect();
        assert_eq!(v0.len(), 1);
        assert!(v1.len() > 1 && v1.len() <= 4);
        // Degree < 2 vertices produce no tiles at all.
        assert!(tiles.iter().all(|t| t.v != 2 && t.v != 3));
        // Coverage: total work equals the pair counts.
        let w0: u64 = v0.iter().map(|t| t.work()).sum();
        let w1: u64 = v1.iter().map(|t| t.work()).sum();
        assert_eq!(w0, 4 * 3 / 2);
        assert_eq!(w1, 20 * 19 / 2);
    }

    #[test]
    fn single_partition_is_one_tile() {
        let f = SqrtFractions::new(1);
        let mut tiles = Vec::new();
        f.tiles_for(3, 50, &mut tiles);
        assert_eq!(
            tiles,
            vec![Tile {
                v: 3,
                begin: 0,
                end: 50
            }]
        );
    }
}
