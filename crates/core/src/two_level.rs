//! Two-level hub classification: multiple HE sub-graphs (paper §5.5
//! category 1 / §7, third future-work bullet).
//!
//! The paper asks "whether recognizing a higher number of distinct vertex
//! types (two kinds of hubs and non-hubs) creates further opportunities to
//! prune fruitless searches during HNN and NNN search". This module
//! implements the split and *measures* the answer: hubs are divided into
//! **super-hubs** (the top `super_count` IDs) and **secondary hubs**, and
//! each vertex's hub-neighbour list is stored as two separate 16-bit
//! lists. The HNN phase then intersects the two classes independently —
//! and skips a class entirely whenever one endpoint has no neighbour in
//! it, a pruning test that a single fused HE list cannot perform without
//! scanning.

use rayon::prelude::*;

use lotus_algos::intersect::count_merge;
use lotus_graph::{Csr, UndirectedCsr};

use crate::config::LotusConfig;
use crate::preprocess::build_lotus_graph;
use crate::structure::LotusGraph;

/// LOTUS structure with the HE sub-graph split into super-hub and
/// secondary-hub lists.
#[derive(Debug, Clone)]
pub struct TwoLevelGraph {
    /// The underlying single-level structure (H2H, NHE, relabeling).
    pub base: LotusGraph,
    /// Number of super-hubs (IDs `0..super_count`).
    pub super_count: u32,
    /// Per-vertex super-hub neighbours (IDs `< super_count`).
    pub he_super: Csr<u16>,
    /// Per-vertex secondary-hub neighbours (IDs in
    /// `super_count..hub_count`).
    pub he_secondary: Csr<u16>,
}

/// Pruning statistics of a two-level HNN pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PruneStats {
    /// Class-merges executed.
    pub merges: u64,
    /// Class-merges skipped because an endpoint had no neighbours in the
    /// class (the §7 pruning opportunity).
    pub pruned: u64,
}

impl PruneStats {
    /// Fraction of class-merges avoided.
    pub fn pruned_fraction(&self) -> f64 {
        let total = self.merges + self.pruned;
        if total == 0 {
            0.0
        } else {
            self.pruned as f64 / total as f64
        }
    }
}

/// Builds the two-level structure: a LOTUS graph whose per-vertex HE list
/// is split at `super_count` (which must not exceed the hub count).
pub fn build_two_level(
    graph: &UndirectedCsr,
    config: &LotusConfig,
    super_count: u32,
) -> TwoLevelGraph {
    let base = build_lotus_graph(graph, config);
    let super_count = super_count.min(base.hub_count);

    let n = base.num_vertices();
    let mut sup_lists: Vec<Vec<u16>> = vec![Vec::new(); n as usize];
    let mut sec_lists: Vec<Vec<u16>> = vec![Vec::new(); n as usize];
    for v in 0..n {
        // HE lists are sorted, so the split point is a partition point.
        let he = base.hub_neighbors(v);
        let cut = he.partition_point(|&h| (h as u32) < super_count);
        sup_lists[v as usize] = he[..cut].to_vec();
        sec_lists[v as usize] = he[cut..].to_vec();
    }
    TwoLevelGraph {
        base,
        super_count,
        he_super: Csr::from_adjacency(sup_lists),
        he_secondary: Csr::from_adjacency(sec_lists),
    }
}

impl TwoLevelGraph {
    /// HNN counting over the split lists, returning `(hnn, stats)`.
    ///
    /// Equivalent to [`crate::count::count_hnn_phase`] on the base graph;
    /// the difference is that empty-class endpoints skip the merge for
    /// that class entirely.
    pub fn count_hnn_split(&self) -> (u64, PruneStats) {
        let (hnn, merges, pruned) = (0..self.base.num_vertices())
            .into_par_iter()
            .map(|v| {
                let sup_v = self.he_super.neighbors(v);
                let sec_v = self.he_secondary.neighbors(v);
                if sup_v.is_empty() && sec_v.is_empty() {
                    return (0, 0, 0);
                }
                let mut local = 0u64;
                let mut merges = 0u64;
                let mut pruned = 0u64;
                for &u in self.base.nonhub_neighbors(v) {
                    let sup_u = self.he_super.neighbors(u);
                    if sup_v.is_empty() || sup_u.is_empty() {
                        pruned += 1;
                    } else {
                        local += count_merge(sup_v, sup_u);
                        merges += 1;
                    }
                    let sec_u = self.he_secondary.neighbors(u);
                    if sec_v.is_empty() || sec_u.is_empty() {
                        pruned += 1;
                    } else {
                        local += count_merge(sec_v, sec_u);
                        merges += 1;
                    }
                }
                (local, merges, pruned)
            })
            .reduce(|| (0, 0, 0), |a, b| (a.0 + b.0, a.1 + b.1, a.2 + b.2));
        (hnn, PruneStats { merges, pruned })
    }

    /// Total triangles using the split HNN phase (other phases delegate to
    /// the single-level implementation, which they equal exactly).
    pub fn count(&self) -> (u64, PruneStats) {
        let tiles = crate::tiling::make_tiles(&self.base.he, u32::MAX, 1);
        let (hhh, hhn) = crate::count::count_hub_phase(&self.base, &tiles);
        let (hnn, stats) = self.count_hnn_split();
        let nnn = crate::count::count_nnn_phase(&self.base);
        (hhh + hhn + hnn + nnn, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HubCount;
    use lotus_algos::forward::forward_count;

    fn cfg(hubs: u32) -> LotusConfig {
        LotusConfig::default().with_hub_count(HubCount::Fixed(hubs))
    }

    #[test]
    fn split_lists_partition_he() {
        let g = lotus_gen::Rmat::new(9, 8).generate(3);
        let tl = build_two_level(&g, &cfg(64), 8);
        for v in 0..tl.base.num_vertices() {
            let mut joined: Vec<u16> = tl.he_super.neighbors(v).to_vec();
            joined.extend_from_slice(tl.he_secondary.neighbors(v));
            assert_eq!(joined.as_slice(), tl.base.hub_neighbors(v), "vertex {v}");
            assert!(tl.he_super.neighbors(v).iter().all(|&h| (h as u32) < 8));
            assert!(tl
                .he_secondary
                .neighbors(v)
                .iter()
                .all(|&h| (h as u32) >= 8));
        }
    }

    #[test]
    fn split_hnn_matches_single_level() {
        let g = lotus_gen::Rmat::new(10, 10).generate(5);
        for (hubs, supers) in [(64u32, 8u32), (128, 64), (32, 0), (32, 32)] {
            let tl = build_two_level(&g, &cfg(hubs), supers);
            let want = crate::count::count_hnn_phase(&tl.base);
            let (got, _) = tl.count_hnn_split();
            assert_eq!(got, want, "hubs {hubs} supers {supers}");
        }
    }

    #[test]
    fn total_count_matches_forward() {
        let g = lotus_gen::Rmat::new(9, 10).generate(7);
        let tl = build_two_level(&g, &cfg(48), 12);
        let (total, _) = tl.count();
        assert_eq!(total, forward_count(&g));
    }

    #[test]
    fn pruning_occurs_on_skewed_graphs() {
        // The §7 measurement: with few super-hubs, many non-hub vertices
        // have no super-hub neighbour, so the super-class merge is pruned.
        let g = lotus_gen::Rmat::new(11, 8).generate(9);
        let tl = build_two_level(&g, &cfg(256), 4);
        let (_, stats) = tl.count_hnn_split();
        assert!(
            stats.pruned_fraction() > 0.1,
            "expected pruning, got {:.3}",
            stats.pruned_fraction()
        );
    }

    #[test]
    fn degenerate_splits() {
        let g = lotus_gen::Rmat::new(8, 6).generate(1);
        // super_count larger than hub count clamps.
        let tl = build_two_level(&g, &cfg(16), 1000);
        assert_eq!(tl.super_count, tl.base.hub_count);
        let (total, _) = tl.count();
        assert_eq!(total, forward_count(&g));
    }
}
