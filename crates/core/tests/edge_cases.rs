//! Pathological-structure tests: LOTUS must stay correct on graphs at the
//! extremes of the skew spectrum the paper discusses (§5.5).

use lotus_core::config::{HubCount, LotusConfig};
use lotus_core::count::LotusCounter;
use lotus_core::preprocess::build_lotus_graph;
use lotus_graph::builder::graph_from_edges;
use lotus_graph::UndirectedCsr;

fn lotus_count_with(g: &UndirectedCsr, hubs: u32) -> u64 {
    LotusCounter::new(LotusConfig::default().with_hub_count(HubCount::Fixed(hubs)))
        .count(g)
        .total()
}

#[test]
fn star_graph_has_no_triangles_and_all_hub_edges() {
    // The extreme of §5.5 category 2: one very-high-degree hub.
    let g = graph_from_edges((1..2000u32).map(|v| (0, v)));
    let cfg = LotusConfig::default().with_hub_count(HubCount::Fixed(1));
    let lg = build_lotus_graph(&g, &cfg);
    assert_eq!(lg.he_edges(), g.num_edges(), "every edge touches the hub");
    assert_eq!(lg.nhe_edges(), 0);
    assert_eq!(LotusCounter::new(cfg).count(&g).total(), 0);
}

#[test]
fn complete_bipartite_is_triangle_free() {
    let g = graph_from_edges((0..40u32).flat_map(|a| (40..80u32).map(move |b| (a, b))));
    for hubs in [0, 5, 40, 80] {
        assert_eq!(lotus_count_with(&g, hubs), 0, "hubs {hubs}");
    }
}

#[test]
fn two_cliques_sharing_a_bridge() {
    // K10 on 0..10, K10 on 10..20, bridge edge (9, 10): no cross triangle.
    let clique =
        |base: u32| (base..base + 10).flat_map(move |u| ((u + 1)..base + 10).map(move |v| (u, v)));
    let mut edges: Vec<(u32, u32)> = clique(0).chain(clique(10)).collect();
    edges.push((9, 10));
    let g = graph_from_edges(edges);
    let expected = 2 * (10 * 9 * 8 / 6) as u64;
    for hubs in [0, 3, 10, 20] {
        assert_eq!(lotus_count_with(&g, hubs), expected, "hubs {hubs}");
    }
}

#[test]
fn path_and_cycle() {
    let path = graph_from_edges((0..100u32).map(|v| (v, v + 1)));
    assert_eq!(lotus_count_with(&path, 8), 0);
    let cycle = graph_from_edges((0..99u32).map(|v| (v, (v + 1) % 99)));
    assert_eq!(lotus_count_with(&cycle, 8), 0);
    let triangle_cycle = graph_from_edges([(0, 1), (1, 2), (2, 0)]);
    assert_eq!(lotus_count_with(&triangle_cycle, 2), 1);
}

#[test]
fn dense_clique_all_hub_configurations() {
    // K32: C(32,3) triangles regardless of how many vertices are hubs.
    let g = graph_from_edges((0..32u32).flat_map(|u| ((u + 1)..32).map(move |v| (u, v))));
    let expected = 32 * 31 * 30 / 6;
    for hubs in 0..=32 {
        assert_eq!(lotus_count_with(&g, hubs), expected, "hubs {hubs}");
    }
}

#[test]
fn duplicate_heavy_multigraph_input() {
    // GraphBuilder cleans duplicates/self-loops before LOTUS ever sees them.
    let mut edges = Vec::new();
    for _ in 0..50 {
        edges.extend([(0u32, 1u32), (1, 0), (1, 2), (2, 0), (2, 2)]);
    }
    let g = graph_from_edges(edges);
    assert_eq!(g.num_edges(), 3);
    assert_eq!(lotus_count_with(&g, 2), 1);
}

#[test]
fn vertex_ids_with_gaps() {
    // Sparse ID space: isolated vertices in between.
    let g = graph_from_edges([(0, 500), (500, 999), (0, 999)]);
    assert_eq!(g.num_vertices(), 1000);
    for hubs in [0, 64, 1000] {
        assert_eq!(lotus_count_with(&g, hubs), 1, "hubs {hubs}");
    }
}

#[test]
fn breakdown_times_are_consistent_on_large_input() {
    let g = lotus_gen::Rmat::new(12, 12).generate(5);
    let r = LotusCounter::new(LotusConfig::default()).count(&g);
    assert!(r.breakdown.preprocess > std::time::Duration::ZERO);
    assert_eq!(
        r.breakdown.total(),
        r.breakdown.preprocess + r.breakdown.counting()
    );
    assert!(r.stats.he_edges + r.stats.nhe_edges == g.num_edges());
}
