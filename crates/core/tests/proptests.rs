//! Property tests for the LOTUS core data structures.

use proptest::collection::vec;
use proptest::prelude::*;

use lotus_core::config::{HubCount, LotusConfig};
use lotus_core::count::LotusCounter;
use lotus_core::h2h::{pair_bit_index, TriBitArray, TriBitArrayBuilder};
use lotus_core::kclique::count_kcliques;
use lotus_core::per_vertex::count_per_vertex;
use lotus_core::preprocess::build_lotus_graph;
use lotus_graph::{EdgeList, UndirectedCsr};

fn graph_of(pairs: Vec<(u32, u32)>, n: u32) -> UndirectedCsr {
    let mut el = EdgeList::from_pairs_with_vertices(pairs, n);
    el.canonicalize();
    UndirectedCsr::from_canonical_edges(&el)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// The triangular pair index is a bijection onto `0..n(n-1)/2`.
    #[test]
    fn pair_index_bijective(n in 2u32..80) {
        let mut seen = std::collections::HashSet::new();
        for h1 in 1..n {
            for h2 in 0..h1 {
                let idx = pair_bit_index(h1, h2);
                prop_assert!(idx < TriBitArray::bit_len(n));
                prop_assert!(seen.insert(idx));
            }
        }
    }

    /// Concurrent builder and sequential array agree bit-for-bit.
    #[test]
    fn builder_matches_sequential(pairs in vec((0u32..32, 0u32..32), 0..120)) {
        let mut seq = TriBitArray::new(32);
        let par = TriBitArrayBuilder::new(32);
        for (a, b) in pairs {
            if a != b {
                seq.set(a, b);
                par.set(a, b);
            }
        }
        let par = par.freeze();
        prop_assert_eq!(par.bits_set(), seq.bits_set());
        for h1 in 1..32u32 {
            for h2 in 0..h1 {
                prop_assert_eq!(par.is_set(h1, h2), seq.is_set(h1, h2));
            }
        }
    }

    /// Per-vertex LOTUS counts match the Forward-based per-vertex counts
    /// for any hub count, and sum to 3T.
    #[test]
    fn per_vertex_matches_baseline(pairs in vec((0u32..40, 0u32..40), 0..160), hubs in 0u32..40) {
        let g = graph_of(pairs, 40);
        let cfg = LotusConfig::default().with_hub_count(HubCount::Fixed(hubs));
        let lg = build_lotus_graph(&g, &cfg);
        let got = count_per_vertex(&lg);
        let want = lotus_algos::forward::per_vertex_counts(&g);
        prop_assert_eq!(&got, &want);
        let total = LotusCounter::new(cfg).count(&g).total();
        prop_assert_eq!(got.iter().sum::<u64>(), 3 * total);
    }

    /// Blocked HNN equals the plain phase for arbitrary block sizes.
    #[test]
    fn blocked_hnn_matches(pairs in vec((0u32..48, 0u32..48), 0..160), hubs in 0u32..48, bits in 1u32..8) {
        let g = graph_of(pairs, 48);
        let cfg = LotusConfig::default().with_hub_count(HubCount::Fixed(hubs));
        let lg = build_lotus_graph(&g, &cfg);
        prop_assert_eq!(
            lotus_core::blocking::count_hnn_blocked(&lg, bits),
            lotus_core::count::count_hnn_phase(&lg)
        );
    }

    /// 3-cliques equal triangles; (k+1)-cliques never exceed k-cliques
    /// times the max degree (loose sanity bound).
    #[test]
    fn kclique_consistency(pairs in vec((0u32..30, 0u32..30), 0..140)) {
        let g = graph_of(pairs, 30);
        let t = lotus_algos::forward::forward_count(&g);
        prop_assert_eq!(count_kcliques(&g, 3), t);
        let c4 = count_kcliques(&g, 4);
        // Each 4-clique contains 4 triangles, so 4·C4 ≤ T·(V-2) trivially;
        // more usefully: C4 > 0 requires T ≥ 4.
        if c4 > 0 {
            prop_assert!(t >= 4);
        }
    }

    /// Hub/non-hub triangle split is consistent: zero hubs puts all
    /// triangles in NNN; all-vertices-hubs puts them in HHH.
    #[test]
    fn type_split_extremes(pairs in vec((0u32..32, 0u32..32), 0..140)) {
        let g = graph_of(pairs, 32);
        let none = LotusCounter::new(
            LotusConfig::default().with_hub_count(HubCount::Fixed(0)),
        ).count(&g);
        prop_assert_eq!(none.stats.nnn, none.total());
        let all = LotusCounter::new(
            LotusConfig::default().with_hub_count(HubCount::Fixed(32)),
        ).count(&g);
        prop_assert_eq!(all.stats.hhh, all.total());
        prop_assert_eq!(none.total(), all.total());
    }
}
