//! Randomized property tests for the LOTUS core data structures
//! (deterministic seeded cases; failures name the seed).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use lotus_core::config::{HubCount, LotusConfig};
use lotus_core::count::LotusCounter;
use lotus_core::h2h::{pair_bit_index, TriBitArray, TriBitArrayBuilder};
use lotus_core::kclique::count_kcliques;
use lotus_core::per_vertex::count_per_vertex;
use lotus_core::preprocess::build_lotus_graph;
use lotus_graph::{EdgeList, UndirectedCsr};

const CASES: u64 = 64;

fn raw_edges(rng: &mut SmallRng, max_v: u32, max_e: usize) -> Vec<(u32, u32)> {
    let count = rng.gen_range(0..max_e);
    (0..count)
        .map(|_| (rng.gen_range(0..max_v), rng.gen_range(0..max_v)))
        .collect()
}

fn graph_of(pairs: Vec<(u32, u32)>, n: u32) -> UndirectedCsr {
    let mut el = EdgeList::from_pairs_with_vertices(pairs, n);
    el.canonicalize();
    UndirectedCsr::from_canonical_edges(&el)
}

/// The triangular pair index is a bijection onto `0..n(n-1)/2`.
#[test]
fn pair_index_bijective() {
    for seed in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(seed);
        let n = rng.gen_range(2..80u32);
        let mut seen = std::collections::HashSet::new();
        for h1 in 1..n {
            for h2 in 0..h1 {
                let idx = pair_bit_index(h1, h2);
                assert!(idx < TriBitArray::bit_len(n), "n {n}");
                assert!(seen.insert(idx), "n {n} pair ({h1}, {h2})");
            }
        }
    }
}

/// Concurrent builder and sequential array agree bit-for-bit.
#[test]
fn builder_matches_sequential() {
    for seed in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(seed);
        let pairs = raw_edges(&mut rng, 32, 120);
        let mut seq = TriBitArray::new(32);
        let par = TriBitArrayBuilder::new(32);
        for (a, b) in pairs {
            if a != b {
                seq.set(a, b);
                par.set(a, b);
            }
        }
        let par = par.freeze();
        assert_eq!(par.bits_set(), seq.bits_set(), "seed {seed}");
        for h1 in 1..32u32 {
            for h2 in 0..h1 {
                assert_eq!(
                    par.is_set(h1, h2),
                    seq.is_set(h1, h2),
                    "seed {seed} ({h1}, {h2})"
                );
            }
        }
    }
}

/// Per-vertex LOTUS counts match the Forward-based per-vertex counts for
/// any hub count, and sum to 3T.
#[test]
fn per_vertex_matches_baseline() {
    for seed in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = graph_of(raw_edges(&mut rng, 40, 160), 40);
        let hubs = rng.gen_range(0..40u32);
        let cfg = LotusConfig::default().with_hub_count(HubCount::Fixed(hubs));
        let lg = build_lotus_graph(&g, &cfg);
        let got = count_per_vertex(&lg);
        let want = lotus_algos::forward::per_vertex_counts(&g);
        assert_eq!(got, want, "seed {seed} hubs {hubs}");
        let total = LotusCounter::new(cfg).count(&g).total();
        assert_eq!(got.iter().sum::<u64>(), 3 * total, "seed {seed}");
    }
}

/// Blocked HNN equals the plain phase for arbitrary block sizes.
#[test]
fn blocked_hnn_matches() {
    for seed in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = graph_of(raw_edges(&mut rng, 48, 160), 48);
        let hubs = rng.gen_range(0..48u32);
        let bits = rng.gen_range(1..8u32);
        let cfg = LotusConfig::default().with_hub_count(HubCount::Fixed(hubs));
        let lg = build_lotus_graph(&g, &cfg);
        assert_eq!(
            lotus_core::blocking::count_hnn_blocked(&lg, bits),
            lotus_core::count::count_hnn_phase(&lg),
            "seed {seed} hubs {hubs} bits {bits}"
        );
    }
}

/// 3-cliques equal triangles; a 4-clique implies at least 4 triangles.
#[test]
fn kclique_consistency() {
    for seed in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = graph_of(raw_edges(&mut rng, 30, 140), 30);
        let t = lotus_algos::forward::forward_count(&g);
        assert_eq!(count_kcliques(&g, 3), t, "seed {seed}");
        let c4 = count_kcliques(&g, 4);
        if c4 > 0 {
            assert!(t >= 4, "seed {seed}");
        }
    }
}

/// Hub/non-hub triangle split is consistent: zero hubs puts all triangles
/// in NNN; all-vertices-hubs puts them in HHH.
#[test]
fn type_split_extremes() {
    for seed in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = graph_of(raw_edges(&mut rng, 32, 140), 32);
        let none =
            LotusCounter::new(LotusConfig::default().with_hub_count(HubCount::Fixed(0))).count(&g);
        assert_eq!(none.stats.nnn, none.total(), "seed {seed}");
        let all =
            LotusCounter::new(LotusConfig::default().with_hub_count(HubCount::Fixed(32))).count(&g);
        assert_eq!(all.stats.hhh, all.total(), "seed {seed}");
        assert_eq!(none.total(), all.total(), "seed {seed}");
    }
}
