//! Observability-layer integration: the LOTUS pipeline records spans,
//! work counters, and the degrade path when built with `--features
//! telemetry`, and records nothing at all without it.
//!
//! Global telemetry state is shared, so the feature-on checks run as one
//! sequential test body.

use lotus_core::count::LotusCounter;
use lotus_core::resilient::count_with_budget;
use lotus_core::{HubCount, LotusConfig};
use lotus_resilience::{CancelToken, MemoryBudget, RunGuard};
#[cfg(not(feature = "telemetry"))]
use lotus_telemetry::counters;
use lotus_telemetry::{span, Counter, SpanId};

fn cfg(hubs: u32) -> LotusConfig {
    LotusConfig::default().with_hub_count(HubCount::Fixed(hubs))
}

#[test]
#[cfg(feature = "telemetry")]
fn pipeline_records_spans_counters_and_degrade_path() {
    let g = lotus_gen::Rmat::new(10, 8).generate(42);

    // A full run populates every phase span and the kernel counters.
    lotus_telemetry::reset();
    let result = LotusCounter::new(cfg(64)).count(&g);
    assert!(result.total() > 0);
    let snap = lotus_telemetry::snapshot();
    for id in [SpanId::Preprocess, SpanId::HhhHhn, SpanId::Hnn, SpanId::Nnn] {
        assert_eq!(snap.spans.get(id).entries, 1, "span {id} entered once");
    }
    // Span wall time tracks the breakdown's own measurement.
    assert!(snap.spans.get(SpanId::Nnn).nanos > 0);
    assert!(snap.counters.get(Counter::Intersections) > 0);
    assert!(snap.counters.get(Counter::MergeSteps) > 0);
    assert!(snap.counters.get(Counter::TileVisits) > 0);
    assert!(
        snap.counters.get(Counter::H2hProbes) >= snap.counters.get(Counter::H2hHits),
        "probes bound hits"
    );
    // Phase-1 hits are exactly the hub-pair triangles found.
    assert_eq!(
        snap.counters.get(Counter::H2hHits),
        result.stats.hhh + result.stats.hhn
    );
    assert_eq!(snap.degrade, None);

    // The degrade path is recorded and the fallback driver is spanned.
    lotus_telemetry::reset();
    let budget = MemoryBudget::from_bytes(16);
    let r = count_with_budget(&cfg(64), &g, &budget, &RunGuard::unlimited()).unwrap();
    assert!(r.degraded.is_some());
    let snap = lotus_telemetry::snapshot();
    assert_eq!(snap.counters.get(Counter::DegradedRuns), 1);
    assert_eq!(snap.spans.get(SpanId::Fallback).entries, 1);
    let degrade = span::last_degrade().expect("degrade recorded");
    assert!(degrade.contains("forward-hashed"), "{degrade}");

    // Spans survive cooperative cancellation: the preprocessing span is
    // still recorded even though the run was interrupted inside it.
    lotus_telemetry::reset();
    let token = CancelToken::new();
    token.cancel();
    let guard = RunGuard::unlimited().with_cancel(token);
    let err = LotusCounter::new(cfg(64)).count_guarded(&g, &guard);
    assert!(err.is_err());
    let snap = lotus_telemetry::snapshot();
    assert_eq!(snap.spans.get(SpanId::Preprocess).entries, 1);
    assert_eq!(snap.counters.get(Counter::GuardStops), 1);
    lotus_telemetry::reset();
}

#[test]
#[cfg(not(feature = "telemetry"))]
fn pipeline_records_nothing_without_the_feature() {
    let g = lotus_gen::Rmat::new(9, 8).generate(42);
    let result = LotusCounter::new(cfg(64)).count(&g);
    assert!(result.total() > 0);
    let budget = MemoryBudget::from_bytes(16);
    count_with_budget(&cfg(64), &g, &budget, &RunGuard::unlimited()).unwrap();
    let token = CancelToken::new();
    token.cancel();
    let _ = LotusCounter::new(cfg(64)).count_guarded(&g, &RunGuard::unlimited().with_cancel(token));

    // Instrumentation compiled to no-ops: nothing was recorded.
    let snap = lotus_telemetry::snapshot();
    assert!(snap.counters.is_zero());
    assert!(SpanId::ALL
        .iter()
        .all(|&id| snap.spans.get(id).entries == 0));
    assert_eq!(span::last_degrade(), None);
    assert!(!lotus_telemetry::enabled());
    let _ = counters::get(Counter::Intersections);
}
