//! Barabási–Albert preferential-attachment generator.
//!
//! Produces power-law graphs by growing the graph one vertex at a time and
//! attaching each new vertex to `m` existing vertices chosen with
//! probability proportional to their degree. Used by tests as a second,
//! structurally different source of skewed graphs (R-MAT hubs are spread by
//! the bit recursion; BA hubs are the oldest vertices).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use lotus_graph::{EdgeList, UndirectedCsr};

/// Barabási–Albert generator: `n` vertices, `m` attachments per new vertex.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BarabasiAlbert {
    /// Total vertex count.
    pub n: u32,
    /// Edges added per arriving vertex.
    pub m: u32,
}

impl BarabasiAlbert {
    /// Creates a generator; requires `n > m >= 1`.
    pub fn new(n: u32, m: u32) -> Self {
        assert!(m >= 1 && n > m, "need n > m >= 1");
        Self { n, m }
    }

    /// Generates the canonical edge list.
    ///
    /// Uses the repeated-endpoint array: every edge endpoint is appended to
    /// a list, and sampling a uniform element of that list is sampling
    /// proportional to degree.
    pub fn generate_edges(&self, seed: u64) -> EdgeList {
        let mut rng = SmallRng::seed_from_u64(seed);
        let m = self.m as usize;
        let mut endpoints: Vec<u32> = Vec::with_capacity(2 * m * self.n as usize);
        let mut pairs: Vec<(u32, u32)> = Vec::with_capacity(m * self.n as usize);

        // Seed clique over the first m+1 vertices.
        for u in 0..=self.m {
            for v in (u + 1)..=self.m {
                pairs.push((u, v));
                endpoints.push(u);
                endpoints.push(v);
            }
        }

        let mut targets = vec![0u32; m];
        for v in (self.m + 1)..self.n {
            // Sample m distinct targets by degree.
            let mut filled = 0;
            while filled < m {
                let t = endpoints[rng.gen_range(0..endpoints.len())];
                if !targets[..filled].contains(&t) {
                    targets[filled] = t;
                    filled += 1;
                }
            }
            for &t in &targets {
                pairs.push((t.min(v), t.max(v)));
                endpoints.push(t);
                endpoints.push(v);
            }
        }

        let mut el = EdgeList::from_pairs_with_vertices(pairs, self.n);
        el.canonicalize();
        el
    }

    /// Generates the final simple undirected graph.
    pub fn generate(&self, seed: u64) -> UndirectedCsr {
        UndirectedCsr::from_canonical_edges(&self.generate_edges(seed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lotus_graph::DegreeStats;

    #[test]
    fn deterministic() {
        let g = BarabasiAlbert::new(500, 3);
        assert_eq!(g.generate_edges(1), g.generate_edges(1));
        assert_ne!(g.generate_edges(1), g.generate_edges(2));
    }

    #[test]
    fn edge_count_is_expected() {
        let ba = BarabasiAlbert::new(1000, 4);
        let el = ba.generate_edges(9);
        // Seed clique C(5,2)=10 plus 4 per vertex thereafter.
        let expected = 10 + 4 * (1000 - 5);
        assert_eq!(el.len(), expected as usize);
    }

    #[test]
    fn produces_skewed_graph() {
        let g = BarabasiAlbert::new(4000, 4).generate(11);
        let s = DegreeStats::of(&g);
        assert!(s.max_degree > 50, "expected a hub, got {}", s.max_degree);
        assert!(s.is_skewed(1.2));
    }

    #[test]
    fn min_degree_is_m() {
        let g = BarabasiAlbert::new(300, 3).generate(5);
        for v in 0..g.num_vertices() {
            assert!(g.degree(v) >= 3, "vertex {v} degree {}", g.degree(v));
        }
    }

    #[test]
    #[should_panic]
    fn rejects_degenerate_parameters() {
        let _ = BarabasiAlbert::new(3, 3);
    }
}
