//! Erdős–Rényi `G(n, m)` uniform random graphs.
//!
//! Uniform graphs are the *anti-case* for LOTUS: no hubs, no skew. They
//! exercise the adaptive fallback path (paper §5.5: "apply the Forward or
//! edge-iterator algorithms if the graph is not skewed enough").

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;

use lotus_graph::{EdgeList, UndirectedCsr};

/// Erdős–Rényi generator: `n` vertices, `m` uniformly sampled edges
/// (before dedup).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ErdosRenyi {
    /// Vertex count.
    pub n: u32,
    /// Sampled edge count.
    pub m: u64,
}

impl ErdosRenyi {
    /// Creates a generator; requires `n >= 2`.
    pub fn new(n: u32, m: u64) -> Self {
        assert!(n >= 2, "need at least two vertices");
        Self { n, m }
    }

    /// Generates the canonical edge list.
    pub fn generate_edges(&self, seed: u64) -> EdgeList {
        let chunk = 1u64 << 16;
        let chunks = self.m.div_ceil(chunk);
        let n = self.n;
        let pairs: Vec<(u32, u32)> = (0..chunks)
            .into_par_iter()
            .flat_map_iter(|ci| {
                let mut rng = SmallRng::seed_from_u64(
                    seed.wrapping_mul(0xD131_0BA6_985D_F3E7).wrapping_add(ci),
                );
                let count = chunk.min(self.m - ci * chunk) as usize;
                (0..count)
                    .map(move |_| {
                        let u = rng.gen_range(0..n);
                        let v = rng.gen_range(0..n);
                        (u, v)
                    })
                    .collect::<Vec<_>>()
            })
            .collect();
        let mut el = EdgeList::from_pairs_with_vertices(pairs, self.n);
        el.canonicalize();
        el
    }

    /// Generates the final simple undirected graph.
    pub fn generate(&self, seed: u64) -> UndirectedCsr {
        UndirectedCsr::from_canonical_edges(&self.generate_edges(seed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lotus_graph::DegreeStats;

    #[test]
    fn deterministic() {
        let g = ErdosRenyi::new(256, 1000);
        assert_eq!(g.generate_edges(1), g.generate_edges(1));
    }

    #[test]
    fn roughly_requested_edge_count() {
        let el = ErdosRenyi::new(10_000, 50_000).generate_edges(2);
        // Dedup and self-loop removal lose a little.
        assert!(el.len() > 45_000 && el.len() <= 50_000, "{}", el.len());
    }

    #[test]
    fn uniform_graph_is_not_skewed() {
        let g = ErdosRenyi::new(4096, 40_000).generate(3);
        let s = DegreeStats::of(&g);
        assert!(!s.is_skewed(2.0), "ER graph should be unskewed: {s:?}");
    }
}
