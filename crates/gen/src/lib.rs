#![warn(missing_docs)]

//! Synthetic graph generators and the scaled dataset suite.
//!
//! The paper evaluates on 14 real-world graphs of up to 162 billion edges
//! (Table 4). Those datasets are multi-terabyte downloads that cannot be
//! fetched here, so this crate supplies the closest synthetic equivalents:
//! R-MAT (the Graph500 generator, for skewed social networks and web
//! graphs), Barabási–Albert preferential attachment, Erdős–Rényi, and
//! Watts–Strogatz generators, plus a [`suite`] that maps *every paper
//! dataset by name* to a generator configuration whose skew class matches,
//! scaled to fit a single machine. All of LOTUS's claims are driven by
//! degree-distribution structure (hub density, edge-class fractions), which
//! these generators reproduce; see DESIGN.md §3 for the substitution
//! rationale.

pub mod ba;
pub mod erdos_renyi;
pub mod rmat;
pub mod small_world;
pub mod suite;

pub use ba::BarabasiAlbert;
pub use erdos_renyi::ErdosRenyi;
pub use rmat::{Rmat, RmatParams};
pub use small_world::WattsStrogatz;
pub use suite::{Dataset, DatasetKind, DatasetScale};
