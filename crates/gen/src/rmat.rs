//! R-MAT (recursive matrix) graph generator.
//!
//! R-MAT drops each edge into one quadrant of the adjacency matrix with
//! probabilities `(a, b, c, d)` and recurses, producing the power-law
//! degree distributions that LOTUS targets. The Graph500 parameters
//! `(0.57, 0.19, 0.19, 0.05)` model social networks; more asymmetric
//! settings model web crawls with extremely dense hub cores.
//!
//! Generation is embarrassingly parallel: the requested edge count is split
//! into chunks, each seeded deterministically from the user seed and its
//! chunk index, so results are reproducible regardless of thread count.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;

use lotus_graph::{EdgeList, UndirectedCsr};

/// Quadrant probabilities of the R-MAT recursion. Must sum to ~1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RmatParams {
    /// Top-left (both endpoints in the low half): hub-hub mass.
    pub a: f64,
    /// Top-right quadrant.
    pub b: f64,
    /// Bottom-left quadrant.
    pub c: f64,
    /// Bottom-right (both endpoints in the high half): tail-tail mass.
    pub d: f64,
}

impl RmatParams {
    /// Graph500 social-network parameters.
    pub const GRAPH500: RmatParams = RmatParams {
        a: 0.57,
        b: 0.19,
        c: 0.19,
        d: 0.05,
    };

    /// Web-graph-like parameters: a heavier `a` concentrates edges among
    /// hubs, mimicking the dense hub cores of crawls (paper Table 1, where
    /// web graphs have high hub-to-hub edge fractions).
    pub const WEB: RmatParams = RmatParams {
        a: 0.65,
        b: 0.15,
        c: 0.15,
        d: 0.05,
    };

    /// Mildly skewed parameters for low-skew social networks such as
    /// Friendster (paper §5.5: highest degree only 5K).
    pub const MILD: RmatParams = RmatParams {
        a: 0.45,
        b: 0.22,
        c: 0.22,
        d: 0.11,
    };

    /// Validates that probabilities are non-negative and sum to ~1.
    pub fn validate(&self) -> bool {
        let s = self.a + self.b + self.c + self.d;
        self.a >= 0.0 && self.b >= 0.0 && self.c >= 0.0 && self.d >= 0.0 && (s - 1.0).abs() < 1e-9
    }
}

impl Default for RmatParams {
    fn default() -> Self {
        Self::GRAPH500
    }
}

/// R-MAT generator configuration: `2^scale` vertices, `edge_factor ·
/// 2^scale` sampled edges (duplicates and self-loops are removed, so the
/// final simple graph is somewhat smaller).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rmat {
    /// log2 of the vertex count.
    pub scale: u32,
    /// Sampled edges per vertex.
    pub edge_factor: u32,
    /// Quadrant probabilities.
    pub params: RmatParams,
    /// Probability noise added per level to smear the self-similar
    /// artefacts of pure R-MAT (as done by Graph500 reference generators).
    pub noise: f64,
}

impl Rmat {
    /// A generator with Graph500 parameters.
    pub fn new(scale: u32, edge_factor: u32) -> Self {
        Self {
            scale,
            edge_factor,
            params: RmatParams::GRAPH500,
            noise: 0.05,
        }
    }

    /// Overrides the quadrant parameters.
    pub fn with_params(mut self, params: RmatParams) -> Self {
        assert!(params.validate(), "R-MAT parameters must sum to 1");
        self.params = params;
        self
    }

    /// Number of vertices (`2^scale`).
    pub fn num_vertices(&self) -> u32 {
        1u32 << self.scale
    }

    /// Number of *sampled* edges before dedup.
    pub fn num_sampled_edges(&self) -> u64 {
        self.edge_factor as u64 * self.num_vertices() as u64
    }

    /// Samples one edge.
    fn sample_edge(&self, rng: &mut SmallRng) -> (u32, u32) {
        let mut u = 0u32;
        let mut v = 0u32;
        for _ in 0..self.scale {
            u <<= 1;
            v <<= 1;
            // Per-level noise keeps the distribution power-law while
            // breaking the exact self-similarity of the recursion.
            let jitter = |p: f64, r: &mut SmallRng| {
                (p * (1.0 - self.noise + 2.0 * self.noise * r.gen::<f64>())).max(0.0)
            };
            let a = jitter(self.params.a, rng);
            let b = jitter(self.params.b, rng);
            let c = jitter(self.params.c, rng);
            let d = jitter(self.params.d, rng);
            let total = a + b + c + d;
            let x = rng.gen::<f64>() * total;
            if x < a {
                // top-left: nothing to add
            } else if x < a + b {
                v |= 1;
            } else if x < a + b + c {
                u |= 1;
            } else {
                u |= 1;
                v |= 1;
            }
        }
        (u, v)
    }

    /// Generates the canonical edge list (self-loops removed, deduplicated).
    pub fn generate_edges(&self, seed: u64) -> EdgeList {
        let total = self.num_sampled_edges();
        let chunk = 1usize << 16;
        let chunks = total.div_ceil(chunk as u64);
        let pairs: Vec<(u32, u32)> = (0..chunks)
            .into_par_iter()
            .flat_map_iter(|ci| {
                let mut rng = SmallRng::seed_from_u64(
                    seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(ci),
                );
                let count = chunk.min((total - ci * chunk as u64) as usize);
                (0..count)
                    .map(move |_| self.sample_edge(&mut rng))
                    .collect::<Vec<_>>()
            })
            .collect();
        let mut el = EdgeList::from_pairs_with_vertices(pairs, self.num_vertices());
        el.canonicalize();
        el
    }

    /// Generates the final simple undirected graph.
    pub fn generate(&self, seed: u64) -> UndirectedCsr {
        UndirectedCsr::from_canonical_edges(&self.generate_edges(seed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lotus_graph::DegreeStats;

    #[test]
    fn params_validate() {
        assert!(RmatParams::GRAPH500.validate());
        assert!(RmatParams::WEB.validate());
        assert!(RmatParams::MILD.validate());
        assert!(!RmatParams {
            a: 0.5,
            b: 0.5,
            c: 0.5,
            d: 0.5
        }
        .validate());
    }

    #[test]
    fn generation_is_deterministic() {
        let g = Rmat::new(8, 8);
        let a = g.generate_edges(7);
        let b = g.generate_edges(7);
        assert_eq!(a, b);
        let c = g.generate_edges(8);
        assert_ne!(a, c);
    }

    #[test]
    fn edges_in_range_and_canonical() {
        let el = Rmat::new(8, 4).generate_edges(1);
        assert!(el.is_canonical());
        assert!(el.pairs().iter().all(|&(u, v)| u < v && v < 256));
    }

    #[test]
    fn graph500_graph_is_skewed() {
        let g = Rmat::new(12, 16).generate(3);
        let s = DegreeStats::of(&g);
        assert!(s.is_skewed(2.0), "expected skewed, got {s:?}");
        assert!(s.max_degree > 100);
    }

    #[test]
    fn mild_params_less_skewed_than_web() {
        let web = Rmat::new(12, 16).with_params(RmatParams::WEB).generate(3);
        let mild = Rmat::new(12, 16).with_params(RmatParams::MILD).generate(3);
        let sw = DegreeStats::of(&web);
        let sm = DegreeStats::of(&mild);
        assert!(
            sw.max_degree > sm.max_degree,
            "web max {} should exceed mild max {}",
            sw.max_degree,
            sm.max_degree
        );
    }

    #[test]
    #[should_panic]
    fn with_params_rejects_invalid() {
        let _ = Rmat::new(4, 4).with_params(RmatParams {
            a: 1.0,
            b: 1.0,
            c: 0.0,
            d: 0.0,
        });
    }

    #[test]
    fn sampled_count_accounting() {
        let g = Rmat::new(10, 16);
        assert_eq!(g.num_vertices(), 1024);
        assert_eq!(g.num_sampled_edges(), 16 * 1024);
        // After dedup the simple graph has fewer edges.
        let el = g.generate_edges(5);
        assert!(el.len() as u64 <= g.num_sampled_edges());
        assert!(el.len() > 1000);
    }
}
