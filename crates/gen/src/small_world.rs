//! Watts–Strogatz small-world generator.
//!
//! Ring lattices rewired with probability `beta`. Small-world graphs are
//! triangle-dense but *unskewed*, making them a useful stress case: LOTUS
//! must stay correct (and its adaptive check should prefer Forward) on
//! graphs where hubs carry no special weight.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use lotus_graph::{EdgeList, UndirectedCsr};

/// Watts–Strogatz generator: `n` vertices on a ring, each connected to `k`
/// nearest neighbours (k even), rewired with probability `beta`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WattsStrogatz {
    /// Vertex count.
    pub n: u32,
    /// Ring degree (must be even and `< n`).
    pub k: u32,
    /// Rewiring probability in `[0, 1]`.
    pub beta: f64,
}

impl WattsStrogatz {
    /// Creates a generator; `k` must be even and smaller than `n`.
    pub fn new(n: u32, k: u32, beta: f64) -> Self {
        assert!(k.is_multiple_of(2) && k < n, "k must be even and < n");
        assert!((0.0..=1.0).contains(&beta));
        Self { n, k, beta }
    }

    /// Generates the canonical edge list.
    pub fn generate_edges(&self, seed: u64) -> EdgeList {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut pairs = Vec::with_capacity((self.n as usize) * (self.k as usize) / 2);
        for v in 0..self.n {
            for j in 1..=(self.k / 2) {
                let mut u = (v + j) % self.n;
                if rng.gen::<f64>() < self.beta {
                    // Rewire to a uniform non-self target.
                    loop {
                        let cand = rng.gen_range(0..self.n);
                        if cand != v {
                            u = cand;
                            break;
                        }
                    }
                }
                pairs.push((v.min(u), v.max(u)));
            }
        }
        let mut el = EdgeList::from_pairs_with_vertices(pairs, self.n);
        el.canonicalize();
        el
    }

    /// Generates the final simple undirected graph.
    pub fn generate(&self, seed: u64) -> UndirectedCsr {
        UndirectedCsr::from_canonical_edges(&self.generate_edges(seed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lotus_graph::DegreeStats;

    #[test]
    fn zero_beta_is_ring_lattice() {
        let g = WattsStrogatz::new(20, 4, 0.0).generate(1);
        for v in 0..20 {
            assert_eq!(g.degree(v), 4);
        }
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(0, 2));
        assert!(!g.has_edge(0, 3));
    }

    #[test]
    fn ring_lattice_has_triangles() {
        // k=4 ring: v, v+1, v+2 always form a triangle.
        let g = WattsStrogatz::new(30, 4, 0.0).generate(1);
        assert!(g.has_edge(0, 1) && g.has_edge(1, 2) && g.has_edge(0, 2));
    }

    #[test]
    fn deterministic() {
        let ws = WattsStrogatz::new(100, 6, 0.3);
        assert_eq!(ws.generate_edges(5), ws.generate_edges(5));
    }

    #[test]
    fn rewired_graph_stays_unskewed() {
        let g = WattsStrogatz::new(2000, 8, 0.2).generate(9);
        let s = DegreeStats::of(&g);
        assert!(!s.is_skewed(2.0), "{s:?}");
    }

    #[test]
    #[should_panic]
    fn rejects_odd_k() {
        let _ = WattsStrogatz::new(10, 3, 0.1);
    }
}
