//! The scaled dataset suite: one named entry per paper dataset (Table 4).
//!
//! Each real-world dataset is replaced by an R-MAT configuration whose skew
//! class matches its type (social network, web graph, bio graph) and whose
//! average degree matches the paper's `|E| / |V|` ratio. Vertex counts are
//! scaled down ~10³× (relative sizes between datasets are preserved) so the
//! whole evaluation runs on one machine; see DESIGN.md §3, substitution 1.
//!
//! `Frndstr` uses the mild parameters because the paper singles it out as a
//! low-skew graph with maximum degree only 5K (§5.5) — the dataset on which
//! LOTUS profits least. Web graphs use heavier hub mass, matching their
//! larger hub-to-hub edge fractions in Table 1.

use lotus_graph::UndirectedCsr;

use crate::rmat::{Rmat, RmatParams};

/// Dataset category from the paper's Table 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DatasetKind {
    /// Social network (SN).
    SocialNetwork,
    /// Web graph (WG).
    WebGraph,
    /// Bio graph (BG).
    BioGraph,
}

impl DatasetKind {
    /// Two-letter tag used in tables.
    pub fn tag(&self) -> &'static str {
        match self {
            DatasetKind::SocialNetwork => "SN",
            DatasetKind::WebGraph => "WG",
            DatasetKind::BioGraph => "BG",
        }
    }
}

/// Size multiplier applied to a dataset's base (Small) configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DatasetScale {
    /// Scale shift −4 (1/16 the vertices): fast enough for unit tests.
    Tiny,
    /// The base configuration used by the report binaries.
    Small,
    /// Scale shift +2 (4× the vertices): longer benchmark runs.
    Full,
}

impl DatasetScale {
    fn shift(&self) -> i32 {
        match self {
            DatasetScale::Tiny => -4,
            DatasetScale::Small => 0,
            DatasetScale::Full => 2,
        }
    }
}

/// A named synthetic stand-in for one paper dataset.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Dataset {
    /// Paper's dataset name (Table 4).
    pub name: &'static str,
    /// Dataset category.
    pub kind: DatasetKind,
    /// log2 of the vertex count at `Small` scale.
    pub scale: u32,
    /// Sampled edges per vertex (matches the paper's `|E|/|V|`).
    pub edge_factor: u32,
    /// R-MAT quadrant parameters for the skew class.
    pub params: RmatParams,
    /// Generation seed (fixed per dataset for reproducibility).
    pub seed: u64,
}

impl Dataset {
    const fn new(
        name: &'static str,
        kind: DatasetKind,
        scale: u32,
        edge_factor: u32,
        params: RmatParams,
        seed: u64,
    ) -> Self {
        Self {
            name,
            kind,
            scale,
            edge_factor,
            params,
            seed,
        }
    }

    /// The ten datasets of Table 5 (the "< 10 billion edges" class).
    pub fn small_suite() -> Vec<Dataset> {
        use DatasetKind::*;
        vec![
            Dataset::new("LJGrp", SocialNetwork, 13, 31, RmatParams::GRAPH500, 101),
            Dataset::new("Twtr10", SocialNetwork, 14, 25, RmatParams::GRAPH500, 102),
            Dataset::new("Twtr", SocialNetwork, 15, 34, RmatParams::GRAPH500, 103),
            Dataset::new("TwtrMpi", SocialNetwork, 15, 59, RmatParams::GRAPH500, 104),
            Dataset::new("Frndstr", SocialNetwork, 16, 55, RmatParams::MILD, 105),
            Dataset::new("SK", WebGraph, 16, 73, RmatParams::WEB, 106),
            Dataset::new("WbCc", WebGraph, 16, 43, RmatParams::WEB, 107),
            Dataset::new("UKDls", WebGraph, 17, 63, RmatParams::WEB, 108),
            Dataset::new("UU", WebGraph, 17, 70, RmatParams::WEB, 109),
            Dataset::new("UKDmn", WebGraph, 17, 63, RmatParams::WEB, 110),
        ]
    }

    /// The four large datasets of Table 6 (the "> 10 billion edges" class).
    pub fn large_suite() -> Vec<Dataset> {
        use DatasetKind::*;
        vec![
            Dataset::new("MClst", BioGraph, 16, 152, RmatParams::GRAPH500, 111),
            Dataset::new("ClWb12", WebGraph, 18, 76, RmatParams::WEB, 112),
            Dataset::new("WDC14", WebGraph, 18, 72, RmatParams::WEB, 113),
            Dataset::new("EU15", WebGraph, 18, 150, RmatParams::WEB, 114),
        ]
    }

    /// All fourteen datasets of Table 4.
    pub fn all() -> Vec<Dataset> {
        let mut v = Self::small_suite();
        v.extend(Self::large_suite());
        v
    }

    /// Looks up a dataset by its paper name.
    pub fn by_name(name: &str) -> Option<Dataset> {
        Self::all().into_iter().find(|d| d.name == name)
    }

    /// Applies a size multiplier, clamping the scale to at least 8.
    pub fn at_scale(mut self, s: DatasetScale) -> Dataset {
        self.scale = (self.scale as i32 + s.shift()).max(8) as u32;
        self
    }

    /// The configured R-MAT generator.
    pub fn rmat(&self) -> Rmat {
        Rmat {
            scale: self.scale,
            edge_factor: self.edge_factor,
            params: self.params,
            noise: 0.05,
        }
    }

    /// Generates the graph.
    pub fn generate(&self) -> UndirectedCsr {
        self.rmat().generate(self.seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suites_have_paper_cardinalities() {
        assert_eq!(Dataset::small_suite().len(), 10);
        assert_eq!(Dataset::large_suite().len(), 4);
        assert_eq!(Dataset::all().len(), 14);
    }

    #[test]
    fn names_are_unique_and_resolvable() {
        let all = Dataset::all();
        for d in &all {
            assert_eq!(Dataset::by_name(d.name).unwrap().name, d.name);
        }
        let mut names: Vec<_> = all.iter().map(|d| d.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 14);
    }

    #[test]
    fn tiny_scale_shrinks() {
        let d = Dataset::by_name("UU").unwrap();
        let tiny = d.at_scale(DatasetScale::Tiny);
        assert_eq!(tiny.scale, d.scale - 4);
        let full = d.at_scale(DatasetScale::Full);
        assert_eq!(full.scale, d.scale + 2);
    }

    #[test]
    fn scale_clamps_at_eight() {
        let d = Dataset::new(
            "X",
            DatasetKind::SocialNetwork,
            9,
            8,
            RmatParams::GRAPH500,
            1,
        );
        assert_eq!(d.at_scale(DatasetScale::Tiny).scale, 8);
    }

    #[test]
    fn tiny_dataset_generates() {
        let g = Dataset::by_name("LJGrp")
            .unwrap()
            .at_scale(DatasetScale::Tiny)
            .generate();
        assert_eq!(g.num_vertices(), 1 << 9);
        assert!(g.num_edges() > 1000);
    }

    #[test]
    fn kind_tags() {
        assert_eq!(DatasetKind::SocialNetwork.tag(), "SN");
        assert_eq!(DatasetKind::WebGraph.tag(), "WG");
        assert_eq!(DatasetKind::BioGraph.tag(), "BG");
    }
}
