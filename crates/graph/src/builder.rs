//! High-level graph construction pipeline.
//!
//! [`GraphBuilder`] collects edges from any source (generators, files,
//! programmatic construction), canonicalizes them, and produces the
//! [`UndirectedCsr`] consumed by the counting algorithms. It also applies
//! the standard TC preprocessing (zero-degree removal, as in the paper's
//! dataset accounting §5.1.2).

use crate::csr::UndirectedCsr;
use crate::edge_list::EdgeList;
use crate::ids::VertexId;
use crate::ordering::Relabeling;

/// Builder that accumulates undirected edges and produces a clean graph.
#[derive(Debug, Clone, Default)]
pub struct GraphBuilder {
    edges: Vec<(VertexId, VertexId)>,
    num_vertices: u32,
    remove_isolated: bool,
}

impl GraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pre-declares `n` vertices (IDs `0..n`). Adding edges extends the
    /// bound automatically.
    pub fn with_vertices(mut self, n: u32) -> Self {
        self.num_vertices = self.num_vertices.max(n);
        self
    }

    /// When enabled, vertices of degree zero are removed and IDs compacted
    /// (paper §5.1.2: vertex counts are reported "after removing zero
    /// degree vertices").
    pub fn remove_isolated_vertices(mut self, yes: bool) -> Self {
        self.remove_isolated = yes;
        self
    }

    /// Adds an undirected edge; endpoints may be in any order, duplicates
    /// and self-loops are tolerated and cleaned up in [`GraphBuilder::build`].
    pub fn add_edge(&mut self, u: VertexId, v: VertexId) -> &mut Self {
        self.num_vertices = self.num_vertices.max(u + 1).max(v + 1);
        self.edges.push((u, v));
        self
    }

    /// Adds many edges at once.
    pub fn extend_edges(
        &mut self,
        it: impl IntoIterator<Item = (VertexId, VertexId)>,
    ) -> &mut Self {
        for (u, v) in it {
            self.add_edge(u, v);
        }
        self
    }

    /// Number of raw edge entries added so far.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Whether no edges have been added.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Finalizes into a symmetric CSX graph with sorted neighbour lists.
    pub fn build(self) -> UndirectedCsr {
        let mut el = EdgeList::from_pairs_with_vertices(self.edges, self.num_vertices);
        el.canonicalize();
        if self.remove_isolated {
            el = compact_isolated(el);
        }
        UndirectedCsr::from_canonical_edges(&el)
    }
}

/// Removes zero-degree vertices, remapping remaining IDs densely while
/// preserving relative order.
fn compact_isolated(el: EdgeList) -> EdgeList {
    let n = el.num_vertices() as usize;
    let mut present = vec![false; n];
    for &(u, v) in el.pairs() {
        present[u as usize] = true;
        present[v as usize] = true;
    }
    let mut remap = vec![0u32; n];
    let mut next = 0u32;
    for (old, &p) in present.iter().enumerate() {
        if p {
            remap[old] = next;
            next += 1;
        }
    }
    let pairs = el
        .into_pairs()
        .into_iter()
        .map(|(u, v)| (remap[u as usize], remap[v as usize]))
        .collect();
    let mut out = EdgeList::from_pairs_with_vertices(pairs, next);
    out.canonicalize();
    out
}

/// Convenience: builds a graph directly from an iterator of edge pairs.
pub fn graph_from_edges(edges: impl IntoIterator<Item = (VertexId, VertexId)>) -> UndirectedCsr {
    let mut b = GraphBuilder::new();
    b.extend_edges(edges);
    b.build()
}

/// Builds a graph and the LOTUS hub-first relabeled version of it in one
/// call; returns `(relabeled graph, relabeling)`.
pub fn build_hub_first(graph: &UndirectedCsr, head_count: usize) -> (UndirectedCsr, Relabeling) {
    let relabeling = Relabeling::hub_first(&graph.degrees(), head_count);
    let g = relabeling.apply(graph);
    (g, relabeling)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_cleans_input() {
        let mut b = GraphBuilder::new();
        b.add_edge(1, 0)
            .add_edge(0, 1)
            .add_edge(2, 2)
            .add_edge(1, 2);
        let g = b.build();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 2);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 2));
        assert!(!g.has_edge(2, 2));
    }

    #[test]
    fn isolated_removal_compacts_ids() {
        let mut b = GraphBuilder::new()
            .with_vertices(10)
            .remove_isolated_vertices(true);
        b.add_edge(2, 7).add_edge(7, 9);
        let g = b.build();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 2);
        // Order preserved: 2→0, 7→1, 9→2.
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 2));
        assert!(!g.has_edge(0, 2));
    }

    #[test]
    fn isolated_kept_without_flag() {
        let mut b = GraphBuilder::new().with_vertices(10);
        b.add_edge(2, 7);
        let g = b.build();
        assert_eq!(g.num_vertices(), 10);
    }

    #[test]
    fn graph_from_edges_helper() {
        let g = graph_from_edges([(0, 1), (1, 2), (0, 2)]);
        assert_eq!(g.num_edges(), 3);
    }

    #[test]
    fn build_hub_first_places_hub_at_zero() {
        let g = graph_from_edges([(0, 4), (1, 4), (2, 4), (3, 4), (0, 1)]);
        let (h, r) = build_hub_first(&g, 1);
        assert_eq!(r.new_id(4), 0); // vertex 4 is the hub
        assert_eq!(h.degree(0), 4);
        assert_eq!(h.num_edges(), g.num_edges());
    }

    #[test]
    fn empty_builder_builds_empty_graph() {
        let g = GraphBuilder::new().build();
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
    }
}
