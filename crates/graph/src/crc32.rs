//! CRC-32 (IEEE 802.3, the zlib/PNG polynomial), dependency-free.
//!
//! Used by the binary graph format v2 to detect corrupted files at load
//! time (see [`crate::io`]). The implementation is the classic
//! byte-at-a-time table walk; I/O dominates loading, so a faster slicing
//! variant would not be observable.

/// Reflected polynomial of CRC-32/ISO-HDLC.
const POLY: u32 = 0xedb8_8320;

const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// Incremental CRC-32 digest.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// A fresh digest.
    pub fn new() -> Self {
        Self { state: 0xffff_ffff }
    }

    /// Feeds `bytes` into the digest.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut crc = self.state;
        for &b in bytes {
            crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xff) as usize];
        }
        self.state = crc;
    }

    /// The checksum of everything fed so far (does not consume the
    /// digest; further updates continue from the same state).
    pub fn finalize(&self) -> u32 {
        self.state ^ 0xffff_ffff
    }
}

/// One-shot checksum of a byte slice.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut digest = Crc32::new();
    digest.update(bytes);
    digest.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard CRC-32/ISO-HDLC check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414f_a339
        );
    }

    #[test]
    fn incremental_equals_one_shot() {
        let data = b"LOTG\x02\x00\x00\x00 some payload bytes";
        let mut digest = Crc32::new();
        for chunk in data.chunks(3) {
            digest.update(chunk);
        }
        assert_eq!(digest.finalize(), crc32(data));
    }

    #[test]
    fn single_bit_flips_change_the_checksum() {
        let data = b"payload under test".to_vec();
        let baseline = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), baseline, "byte {byte} bit {bit}");
            }
        }
    }
}
