//! Compressed sparse row/column (CSX) adjacency storage.
//!
//! The paper represents graphs in CSX with 8-byte index values and 4-byte
//! neighbour IDs (§5.1.2), and LOTUS additionally stores its HE sub-graph
//! with 2-byte neighbour IDs (§4.2). [`Csr`] is generic over that width.
//!
//! [`UndirectedCsr`] is the symmetric input graph used by all counting
//! algorithms: every edge appears in both endpoint lists and neighbour lists
//! are sorted ascending, so a vertex's *lower* neighbours (`N⁻`, the
//! orientation used by the Forward algorithm) are a prefix of its list.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

use rayon::prelude::*;

use crate::edge_list::EdgeList;
use crate::ids::{NeighborId, VertexId};

/// Compressed sparse row adjacency, generic over neighbour-ID width.
///
/// Offsets use 8 bytes per vertex (as in the paper's CSX accounting,
/// §5.1.2); neighbour entries use `N::BYTES` each.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Csr<N> {
    offsets: Box<[u64]>,
    neighbors: Box<[N]>,
}

impl<N: NeighborId> Csr<N> {
    /// An empty graph with `num_vertices` vertices and no edges.
    pub fn empty(num_vertices: u32) -> Self {
        Self {
            offsets: vec![0u64; num_vertices as usize + 1].into_boxed_slice(),
            neighbors: Box::new([]),
        }
    }

    /// Builds from per-vertex adjacency lists. Lists are used as-is (no
    /// sorting); use [`Csr::sort_neighbor_lists`] afterwards if needed.
    pub fn from_adjacency(lists: Vec<Vec<N>>) -> Self {
        let mut offsets = Vec::with_capacity(lists.len() + 1);
        offsets.push(0u64);
        let mut total = 0u64;
        for l in &lists {
            total += l.len() as u64;
            offsets.push(total);
        }
        let mut neighbors = Vec::with_capacity(total as usize);
        for l in lists {
            neighbors.extend(l);
        }
        Self {
            offsets: offsets.into_boxed_slice(),
            neighbors: neighbors.into_boxed_slice(),
        }
    }

    /// Builds from raw offsets and a flat neighbour array.
    ///
    /// # Panics
    /// Panics if offsets are not monotonic or do not cover `neighbors`.
    pub fn from_parts(offsets: Vec<u64>, neighbors: Vec<N>) -> Self {
        assert!(!offsets.is_empty(), "offsets must have at least one entry");
        assert!(
            offsets.windows(2).all(|w| w[0] <= w[1]),
            "offsets must be monotonic"
        );
        assert_eq!(
            offsets.last().copied().unwrap_or(0) as usize,
            neighbors.len()
        );
        assert_eq!(offsets[0], 0);
        Self {
            offsets: offsets.into_boxed_slice(),
            neighbors: neighbors.into_boxed_slice(),
        }
    }

    /// Number of vertices.
    #[inline(always)]
    pub fn num_vertices(&self) -> u32 {
        (self.offsets.len() - 1) as u32
    }

    /// Total number of stored neighbour entries (directed edge slots).
    #[inline(always)]
    pub fn num_entries(&self) -> u64 {
        self.offsets.last().copied().unwrap_or(0)
    }

    /// Neighbour list of `v`.
    #[inline(always)]
    pub fn neighbors(&self, v: VertexId) -> &[N] {
        let lo = self.offsets[v as usize] as usize;
        let hi = self.offsets[v as usize + 1] as usize;
        &self.neighbors[lo..hi]
    }

    /// Degree (list length) of `v`.
    #[inline(always)]
    pub fn degree(&self, v: VertexId) -> u32 {
        (self.offsets[v as usize + 1] - self.offsets[v as usize]) as u32
    }

    /// The offset array (`|V| + 1` entries).
    #[inline]
    pub fn offsets(&self) -> &[u64] {
        &self.offsets
    }

    /// The flat neighbour array.
    #[inline]
    pub fn entries(&self) -> &[N] {
        &self.neighbors
    }

    /// Iterates `(vertex, neighbour list)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (VertexId, &[N])> + '_ {
        (0..self.num_vertices()).map(move |v| (v, self.neighbors(v)))
    }

    /// Parallel iterator over `(vertex, neighbour list)` pairs.
    pub fn par_iter(&self) -> impl ParallelIterator<Item = (VertexId, &[N])> + '_ {
        (0..self.num_vertices())
            .into_par_iter()
            .map(move |v| (v, self.neighbors(v)))
    }

    /// Sorts every neighbour list ascending, in parallel.
    pub fn sort_neighbor_lists(&mut self) {
        let offsets = &self.offsets;
        // Split the flat array at list boundaries so each list sorts
        // independently without aliasing.
        let mut rest: &mut [N] = &mut self.neighbors;
        let mut lists: Vec<&mut [N]> = Vec::with_capacity(offsets.len() - 1);
        let mut consumed = 0u64;
        for w in offsets.windows(2) {
            let len = (w[1] - w[0]) as usize;
            debug_assert_eq!(w[0], consumed);
            let (head, tail) = std::mem::take(&mut rest).split_at_mut(len);
            lists.push(head);
            rest = tail;
            consumed += len as u64;
        }
        lists.par_iter_mut().for_each(|l| l.sort_unstable());
    }

    /// Bytes of topology data: `8(|V| + 1)` for the index plus
    /// `N::BYTES · entries` for the neighbour array (paper §5.6 accounting).
    pub fn topology_bytes(&self) -> u64 {
        8 * (self.num_vertices() as u64 + 1) + N::BYTES as u64 * self.num_entries()
    }

    /// True when every neighbour list is sorted ascending.
    pub fn lists_sorted(&self) -> bool {
        self.iter()
            .all(|(_, ns)| ns.windows(2).all(|w| w[0] <= w[1]))
    }
}

/// A symmetric (undirected) graph in CSX form with sorted neighbour lists.
///
/// Both directions of every edge are stored, so `num_entries == 2·|E|`.
/// This is the input representation of every triangle-counting algorithm in
/// the workspace; the Forward orientation (`N⁻`, lower-ID neighbours only)
/// is available either as a prefix slice ([`UndirectedCsr::lower_neighbors`])
/// or materialized as a halved directed graph ([`UndirectedCsr::forward_graph`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UndirectedCsr {
    csr: Csr<u32>,
    num_edges: u64,
}

impl UndirectedCsr {
    /// Builds from a canonical edge list (see [`EdgeList::canonicalize`]).
    ///
    /// Construction is parallel: atomic degree counting, prefix-sum offsets,
    /// atomic-cursor scatter, then a parallel per-list sort.
    ///
    /// # Panics
    /// Panics if the edge list is not canonical.
    pub fn from_canonical_edges(edges: &EdgeList) -> Self {
        assert!(
            edges.is_canonical(),
            "edge list must be canonicalized first"
        );
        let n = edges.num_vertices() as usize;
        let pairs = edges.pairs();

        let degrees: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
        pairs.par_iter().for_each(|&(u, v)| {
            degrees[u as usize].fetch_add(1, Ordering::Relaxed);
            degrees[v as usize].fetch_add(1, Ordering::Relaxed);
        });

        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0u64);
        let mut acc = 0u64;
        for d in &degrees {
            acc += d.load(Ordering::Relaxed) as u64;
            offsets.push(acc);
        }

        let total = acc as usize;
        let neighbors: Vec<AtomicU32> = (0..total).map(|_| AtomicU32::new(0)).collect();
        let cursors: Vec<AtomicU64> = offsets[..n].iter().map(|&o| AtomicU64::new(o)).collect();
        pairs.par_iter().for_each(|&(u, v)| {
            let iu = cursors[u as usize].fetch_add(1, Ordering::Relaxed) as usize;
            neighbors[iu].store(v, Ordering::Relaxed);
            let iv = cursors[v as usize].fetch_add(1, Ordering::Relaxed) as usize;
            neighbors[iv].store(u, Ordering::Relaxed);
        });

        // AtomicU32 and u32 share layout; unwrap the atomics now that the
        // parallel scatter is complete.
        let neighbors: Vec<u32> = neighbors
            .into_iter()
            .map(std::sync::atomic::AtomicU32::into_inner)
            .collect();

        let mut csr = Csr::from_parts(offsets, neighbors);
        csr.sort_neighbor_lists();
        let g = Self {
            csr,
            num_edges: pairs.len() as u64,
        };
        #[cfg(feature = "validate")]
        g.debug_validate();
        g
    }

    /// `validate`-feature hook: re-checks the symmetric-CSR invariants
    /// after construction. Debug-assert backed, so release builds with the
    /// feature enabled still compile it away; `lotus check` runs the full
    /// `lotus-check` validator instead.
    #[cfg(feature = "validate")]
    fn debug_validate(&self) {
        debug_assert!(self.csr.lists_sorted(), "neighbour lists must be sorted");
        debug_assert_eq!(
            self.csr.num_entries(),
            2 * self.num_edges,
            "entry count must be twice the edge count"
        );
        debug_assert!(
            (0..self.num_vertices()).all(|v| {
                self.neighbors(v).iter().all(|&u| {
                    u != v && u < self.num_vertices() && self.neighbors(u).binary_search(&v).is_ok()
                })
            }),
            "graph must be symmetric, in-bounds, and self-loop free"
        );
    }

    /// Wraps an already-symmetric CSR without checking symmetry, sortedness,
    /// or the claimed edge count.
    ///
    /// Intended for deserialization fast paths and for validator tests that
    /// need to construct deliberately corrupt graphs; run
    /// `lotus_check::Validator` over the result when the input is untrusted.
    pub fn from_csr_unchecked(csr: Csr<u32>, num_edges: u64) -> Self {
        Self { csr, num_edges }
    }

    /// Number of vertices.
    #[inline(always)]
    pub fn num_vertices(&self) -> u32 {
        self.csr.num_vertices()
    }

    /// Number of undirected edges.
    #[inline(always)]
    pub fn num_edges(&self) -> u64 {
        self.num_edges
    }

    /// Sorted neighbour list of `v` (both directions stored).
    #[inline(always)]
    pub fn neighbors(&self, v: VertexId) -> &[u32] {
        self.csr.neighbors(v)
    }

    /// Undirected degree of `v`.
    #[inline(always)]
    pub fn degree(&self, v: VertexId) -> u32 {
        self.csr.degree(v)
    }

    /// Lower neighbours `N⁻(v) = { u ∈ N(v) | u < v }`, the Forward
    /// orientation. Because lists are sorted this is a prefix slice.
    #[inline(always)]
    pub fn lower_neighbors(&self, v: VertexId) -> &[u32] {
        let ns = self.neighbors(v);
        let cut = ns.partition_point(|&u| u < v);
        &ns[..cut]
    }

    /// Upper neighbours `N⁺(v) = { u ∈ N(v) | u > v }`.
    #[inline(always)]
    pub fn upper_neighbors(&self, v: VertexId) -> &[u32] {
        let ns = self.neighbors(v);
        let cut = ns.partition_point(|&u| u <= v);
        &ns[cut..]
    }

    /// The underlying symmetric CSR.
    #[inline]
    pub fn csr(&self) -> &Csr<u32> {
        &self.csr
    }

    /// Materializes the Forward-oriented directed graph: each vertex keeps
    /// only its lower neighbours. This is the "CSX without symmetric edges"
    /// of Table 7 — half the entries of the symmetric graph.
    pub fn forward_graph(&self) -> Csr<u32> {
        let n = self.num_vertices() as usize;
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0u64);
        let mut acc = 0u64;
        for v in 0..self.num_vertices() {
            acc += self.lower_neighbors(v).len() as u64;
            offsets.push(acc);
        }
        let mut neighbors = Vec::with_capacity(acc as usize);
        for v in 0..self.num_vertices() {
            neighbors.extend_from_slice(self.lower_neighbors(v));
        }
        Csr::from_parts(offsets, neighbors)
    }

    /// True when `u` and `v` are adjacent (binary search on the shorter of
    /// the two endpoint lists).
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        let (a, b) = if self.degree(u) <= self.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        self.neighbors(a).binary_search(&b).is_ok()
    }

    /// Topology bytes of the symmetric CSX (Table 7 "CSX" column).
    pub fn topology_bytes(&self) -> u64 {
        self.csr.topology_bytes()
    }

    /// Extracts the canonical edge list (`u < v`, sorted) this graph was
    /// built from. `from_canonical_edges(&g.to_canonical_edges())`
    /// reproduces `g` bit-for-bit, which is what makes a serialized
    /// snapshot of a resident graph trustworthy.
    pub fn to_canonical_edges(&self) -> EdgeList {
        let mut pairs = Vec::with_capacity(self.num_edges as usize);
        for v in 0..self.num_vertices() {
            for &w in self.upper_neighbors(v) {
                pairs.push((v, w));
            }
        }
        EdgeList::from_pairs_with_vertices(pairs, self.num_vertices())
    }

    /// Degree array of all vertices.
    pub fn degrees(&self) -> Vec<u32> {
        (0..self.num_vertices()).map(|v| self.degree(v)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle_plus_tail() -> UndirectedCsr {
        // Triangle 0-1-2 plus a tail 2-3.
        let mut el = EdgeList::from_pairs(vec![(0, 1), (1, 2), (0, 2), (2, 3)]);
        el.canonicalize();
        UndirectedCsr::from_canonical_edges(&el)
    }

    #[test]
    fn canonical_edges_round_trip() {
        let g = triangle_plus_tail();
        let el = g.to_canonical_edges();
        assert!(el.is_canonical());
        assert_eq!(el.len() as u64, g.num_edges());
        assert_eq!(UndirectedCsr::from_canonical_edges(&el), g);
    }

    #[test]
    fn symmetric_lists_sorted() {
        let g = triangle_plus_tail();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert_eq!(g.neighbors(2), &[0, 1, 3]);
        assert_eq!(g.neighbors(3), &[2]);
        assert!(g.csr().lists_sorted());
    }

    #[test]
    fn lower_and_upper_neighbors_partition_list() {
        let g = triangle_plus_tail();
        assert_eq!(g.lower_neighbors(2), &[0, 1]);
        assert_eq!(g.upper_neighbors(2), &[3]);
        assert_eq!(g.lower_neighbors(0), &[] as &[u32]);
        assert_eq!(g.upper_neighbors(0), &[1, 2]);
        for v in 0..g.num_vertices() {
            let mut joined = g.lower_neighbors(v).to_vec();
            joined.extend_from_slice(g.upper_neighbors(v));
            assert_eq!(joined.as_slice(), g.neighbors(v));
        }
    }

    #[test]
    fn forward_graph_halves_entries() {
        let g = triangle_plus_tail();
        let f = g.forward_graph();
        assert_eq!(f.num_entries(), g.num_edges());
        assert_eq!(f.neighbors(2), &[0, 1]);
        assert_eq!(f.neighbors(0), &[] as &[u32]);
    }

    #[test]
    fn has_edge_checks_both_directions() {
        let g = triangle_plus_tail();
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert!(g.has_edge(2, 3));
        assert!(!g.has_edge(0, 3));
        assert!(!g.has_edge(1, 3));
    }

    #[test]
    fn empty_graph() {
        let el = EdgeList::new(5);
        let g = UndirectedCsr::from_canonical_edges(&el);
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_edges(), 0);
        for v in 0..5 {
            assert!(g.neighbors(v).is_empty());
        }
    }

    #[test]
    fn topology_bytes_accounting() {
        let g = triangle_plus_tail();
        // 8 * (4 + 1) index bytes + 4 bytes per directed entry (2 per edge).
        assert_eq!(g.topology_bytes(), 8 * 5 + 4 * 8);
    }

    #[test]
    fn csr_u16_width() {
        let csr = Csr::<u16>::from_adjacency(vec![vec![1u16, 2], vec![], vec![0]]);
        assert_eq!(csr.num_vertices(), 3);
        assert_eq!(csr.num_entries(), 3);
        assert_eq!(csr.topology_bytes(), 8 * 4 + 2 * 3);
        assert_eq!(csr.neighbors(0), &[1, 2]);
    }

    #[test]
    fn sort_neighbor_lists_sorts_each_list() {
        let mut csr = Csr::<u32>::from_adjacency(vec![vec![3, 1, 2], vec![5, 0]]);
        assert!(!csr.lists_sorted());
        csr.sort_neighbor_lists();
        assert_eq!(csr.neighbors(0), &[1, 2, 3]);
        assert_eq!(csr.neighbors(1), &[0, 5]);
    }

    #[test]
    #[should_panic]
    fn from_parts_rejects_bad_offsets() {
        let _ = Csr::<u32>::from_parts(vec![0, 3, 2], vec![0, 0, 0]);
    }

    #[test]
    fn degrees_match_neighbor_lengths() {
        let g = triangle_plus_tail();
        assert_eq!(g.degrees(), vec![2, 2, 3, 1]);
    }
}
