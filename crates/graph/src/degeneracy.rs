//! k-core decomposition and degeneracy ordering.
//!
//! The *node-iterator-core* algorithm (Schank & Wagner; paper §6.1)
//! "prioritizes vertices with smaller degree and removes the vertex after
//! processing" — i.e. it processes vertices in degeneracy (peeling) order.
//! This module provides the O(|V| + |E|) bucket-queue peeling that backs
//! that baseline, plus core numbers, a standard structural metric for the
//! skewed graphs LOTUS targets.

use crate::csr::UndirectedCsr;
use crate::ids::VertexId;
use crate::ordering::Relabeling;

/// Result of k-core peeling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoreDecomposition {
    /// Core number of each vertex.
    pub core_numbers: Vec<u32>,
    /// Vertices in peeling order (smallest remaining degree first).
    pub order: Vec<VertexId>,
    /// The graph's degeneracy (maximum core number).
    pub degeneracy: u32,
}

/// Computes the k-core decomposition with the Matula–Beck bucket queue.
pub fn core_decomposition(graph: &UndirectedCsr) -> CoreDecomposition {
    let n = graph.num_vertices() as usize;
    let mut degree: Vec<u32> = graph.degrees();
    let max_degree = degree.iter().copied().max().unwrap_or(0) as usize;

    // Bucket sort vertices by degree.
    let mut bucket_start = vec![0usize; max_degree + 2];
    for &d in &degree {
        bucket_start[d as usize + 1] += 1;
    }
    for i in 1..bucket_start.len() {
        bucket_start[i] += bucket_start[i - 1];
    }
    let mut position = vec![0usize; n];
    let mut order: Vec<u32> = vec![0; n];
    {
        let mut cursor = bucket_start.clone();
        for v in 0..n as u32 {
            let d = degree[v as usize] as usize;
            let p = cursor[d];
            cursor[d] += 1;
            position[v as usize] = p;
            order[p] = v;
        }
    }
    // bucket_head[d] = index in `order` of the first vertex with degree d.
    let mut bucket_head = bucket_start;

    let mut core_numbers = vec![0u32; n];
    let mut degeneracy = 0u32;
    for i in 0..n {
        let v = order[i];
        let dv = degree[v as usize];
        degeneracy = degeneracy.max(dv);
        core_numbers[v as usize] = degeneracy;
        // "Remove" v: decrement each unpeeled neighbour, moving it one
        // bucket down by swapping it to the head of its current bucket.
        for &u in graph.neighbors(v) {
            let du = degree[u as usize];
            if du > dv && position[u as usize] > i {
                let head = bucket_head[du as usize].max(i + 1);
                let pu = position[u as usize];
                let w = order[head];
                order.swap(head, pu);
                position[u as usize] = head;
                position[w as usize] = pu;
                bucket_head[du as usize] = head + 1;
                degree[u as usize] = du - 1;
            }
        }
    }
    CoreDecomposition {
        core_numbers,
        order,
        degeneracy,
    }
}

impl CoreDecomposition {
    /// Relabeling that assigns IDs in peeling order (peel-first → ID 0).
    /// Orienting edges toward *later-peeled* endpoints bounds every
    /// forward list by the degeneracy.
    pub fn peeling_relabeling(&self) -> Relabeling {
        let mut old_to_new = vec![0u32; self.order.len()];
        for (new, &old) in self.order.iter().enumerate() {
            old_to_new[old as usize] = new as u32;
        }
        Relabeling::from_old_to_new(old_to_new)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::graph_from_edges;

    #[test]
    fn clique_core_numbers() {
        // K4: every vertex has core number 3.
        let g = graph_from_edges([(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        let c = core_decomposition(&g);
        assert_eq!(c.core_numbers, vec![3, 3, 3, 3]);
        assert_eq!(c.degeneracy, 3);
    }

    #[test]
    fn path_is_one_degenerate() {
        let g = graph_from_edges((0..9u32).map(|v| (v, v + 1)));
        let c = core_decomposition(&g);
        assert_eq!(c.degeneracy, 1);
        assert!(c.core_numbers.iter().all(|&k| k == 1));
    }

    #[test]
    fn clique_with_tail() {
        // Triangle 0-1-2 plus tail 2-3-4: tail is 1-core, triangle 2-core.
        let g = graph_from_edges([(0, 1), (1, 2), (0, 2), (2, 3), (3, 4)]);
        let c = core_decomposition(&g);
        assert_eq!(c.core_numbers[0], 2);
        assert_eq!(c.core_numbers[1], 2);
        assert_eq!(c.core_numbers[2], 2);
        assert_eq!(c.core_numbers[3], 1);
        assert_eq!(c.core_numbers[4], 1);
        assert_eq!(c.degeneracy, 2);
    }

    #[test]
    fn order_is_a_permutation_and_respects_peeling() {
        let g = lotus_test_graph();
        let c = core_decomposition(&g);
        let mut sorted = c.order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..g.num_vertices()).collect::<Vec<_>>());
        // Core numbers along the peel order are non-decreasing.
        let cores: Vec<u32> = c
            .order
            .iter()
            .map(|&v| c.core_numbers[v as usize])
            .collect();
        assert!(cores.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn forward_lists_bounded_by_degeneracy_after_relabel() {
        let g = lotus_test_graph();
        let c = core_decomposition(&g);
        let r = c.peeling_relabeling();
        assert!(r.is_permutation());
        let h = r.apply(&g);
        for v in 0..h.num_vertices() {
            // Upper neighbours (later-peeled) are bounded by degeneracy.
            assert!(
                h.upper_neighbors(v).len() as u32 <= c.degeneracy,
                "vertex {v}"
            );
        }
    }

    #[test]
    fn empty_graph() {
        let g = graph_from_edges(std::iter::empty());
        let c = core_decomposition(&g);
        assert_eq!(c.degeneracy, 0);
        assert!(c.order.is_empty());
    }

    /// Naive O(V²) peeling used as a reference implementation.
    fn naive_core_numbers(g: &UndirectedCsr) -> Vec<u32> {
        let n = g.num_vertices() as usize;
        let mut degree: Vec<i64> = (0..n).map(|v| g.degree(v as u32) as i64).collect();
        let mut removed = vec![false; n];
        let mut cores = vec![0u32; n];
        let mut k = 0i64;
        for _ in 0..n {
            let v = (0..n)
                .filter(|&v| !removed[v])
                .min_by_key(|&v| degree[v])
                .expect("vertex remains");
            k = k.max(degree[v]);
            cores[v] = k as u32;
            removed[v] = true;
            for &u in g.neighbors(v as u32) {
                if !removed[u as usize] {
                    degree[u as usize] -= 1;
                }
            }
        }
        cores
    }

    #[test]
    fn matches_naive_peeling_on_random_graphs() {
        for seed in 0..6u64 {
            let g = crate::builder::graph_from_edges(
                crate::edge_list::EdgeList::from_pairs(
                    (0..400)
                        .map(|i| {
                            let mut s = seed
                                .wrapping_mul(0x9E3779B97F4A7C15)
                                .wrapping_add((i as u64).wrapping_mul(0x2545F4914F6CDD1D));
                            s ^= s >> 33;
                            let u = (s % 80) as u32;
                            s = s.wrapping_mul(0xD1310BA6985DF3E7);
                            let v = ((s >> 17) % 80) as u32;
                            (u, v)
                        })
                        .collect(),
                )
                .into_pairs(),
            );
            let fast = core_decomposition(&g);
            let naive = naive_core_numbers(&g);
            assert_eq!(fast.core_numbers, naive, "seed {seed}");
        }
    }

    /// A mixed graph: star + clique + path.
    fn lotus_test_graph() -> UndirectedCsr {
        let mut edges = vec![(0u32, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)];
        edges.extend((4..14).map(|v| (0, v)));
        edges.extend((14..20u32).map(|v| (v, v - 10)));
        graph_from_edges(edges)
    }
}
