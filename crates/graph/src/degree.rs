//! Degree statistics and skew detection.
//!
//! LOTUS is designed for skewed (power-law) degree distributions; §5.5 of
//! the paper recommends checking skewness up front (as GAP does, by
//! comparing average and sampled-median degree) and falling back to the
//! Forward algorithm when the graph is not skewed enough. [`DegreeStats`]
//! implements that check.

use rayon::prelude::*;

use crate::csr::UndirectedCsr;
use crate::ids::VertexId;

/// Summary statistics of a degree distribution.
#[derive(Debug, Clone, PartialEq)]
pub struct DegreeStats {
    /// Number of vertices.
    pub num_vertices: u32,
    /// Number of undirected edges.
    pub num_edges: u64,
    /// Maximum degree.
    pub max_degree: u32,
    /// Mean degree (`2|E| / |V|`).
    pub mean_degree: f64,
    /// Exact median degree.
    pub median_degree: u32,
}

impl DegreeStats {
    /// Computes statistics for an undirected graph.
    pub fn of(graph: &UndirectedCsr) -> Self {
        let mut degrees = graph.degrees();
        let num_vertices = graph.num_vertices();
        let num_edges = graph.num_edges();
        let max_degree = degrees.par_iter().copied().max().unwrap_or(0);
        let mean_degree = if num_vertices == 0 {
            0.0
        } else {
            2.0 * num_edges as f64 / num_vertices as f64
        };
        let median_degree = if degrees.is_empty() {
            0
        } else {
            let mid = degrees.len() / 2;
            *degrees.select_nth_unstable(mid).1
        };
        Self {
            num_vertices,
            num_edges,
            max_degree,
            mean_degree,
            median_degree,
        }
    }

    /// GAP-style skewness heuristic (paper §5.5): a graph is "skewed" when
    /// the mean degree is substantially larger than the median. The ratio
    /// threshold follows GAP's relabeling trigger; power-law graphs have
    /// mean ≫ median because hubs drag the mean up.
    pub fn is_skewed(&self, ratio_threshold: f64) -> bool {
        if self.num_vertices == 0 {
            return false;
        }
        self.mean_degree > ratio_threshold * self.median_degree.max(1) as f64
    }
}

/// Histogram of degrees in logarithmic buckets (`[2^k, 2^{k+1})`), used to
/// inspect the power-law shape of generated graphs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DegreeDistribution {
    /// `buckets[k]` counts vertices with degree in `[2^k, 2^{k+1})`;
    /// `zero` counts isolated vertices.
    pub buckets: Vec<u64>,
    /// Number of degree-zero vertices.
    pub zero: u64,
}

impl DegreeDistribution {
    /// Builds the log-bucket histogram for a graph.
    pub fn of(graph: &UndirectedCsr) -> Self {
        let mut dist = DegreeDistribution::default();
        for v in 0..graph.num_vertices() {
            dist.add(graph.degree(v));
        }
        dist
    }

    /// Adds one vertex of degree `d`.
    pub fn add(&mut self, d: u32) {
        if d == 0 {
            self.zero += 1;
            return;
        }
        let k = (31 - d.leading_zeros()) as usize;
        if self.buckets.len() <= k {
            self.buckets.resize(k + 1, 0);
        }
        self.buckets[k] += 1;
    }

    /// Total vertices recorded.
    pub fn total(&self) -> u64 {
        self.zero + self.buckets.iter().sum::<u64>()
    }

    /// A crude power-law tail indicator: the fraction of vertices in the top
    /// half of the (log-scale) bucket range. Near zero for heavy-tailed
    /// graphs — almost all vertices sit in low buckets.
    pub fn tail_fraction(&self) -> f64 {
        if self.buckets.is_empty() || self.total() == 0 {
            return 0.0;
        }
        let half = self.buckets.len() / 2;
        let tail: u64 = self.buckets[half..].iter().sum();
        tail as f64 / self.total() as f64
    }

    /// Estimates the power-law exponent α of `P(deg = d) ∝ d^−α` by
    /// least-squares regression of log(count) on log(degree) over the
    /// log-scale buckets. Returns `None` with fewer than three non-empty
    /// buckets. Power-law graphs land around α ≈ 2–3; uniform random
    /// graphs produce small or even negative estimates.
    pub fn powerlaw_exponent(&self) -> Option<f64> {
        let points: Vec<(f64, f64)> = self
            .buckets
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(k, &c)| {
                // Bucket k covers [2^k, 2^{k+1}); use the midpoint and
                // normalize the count by the bucket width 2^k.
                let mid = (1.5 * (1u64 << k) as f64).ln();
                let density = (c as f64 / (1u64 << k) as f64).ln();
                (mid, density)
            })
            .collect();
        if points.len() < 3 {
            return None;
        }
        let n = points.len() as f64;
        let sx: f64 = points.iter().map(|p| p.0).sum();
        let sy: f64 = points.iter().map(|p| p.1).sum();
        let sxx: f64 = points.iter().map(|p| p.0 * p.0).sum();
        let sxy: f64 = points.iter().map(|p| p.0 * p.1).sum();
        let denom = n * sxx - sx * sx;
        if denom.abs() < 1e-12 {
            return None;
        }
        let slope = (n * sxy - sx * sy) / denom;
        Some(-slope)
    }
}

/// Returns the `k` vertices of highest degree, ties broken by lower vertex
/// ID first (deterministic). Used to pick the hub set.
pub fn top_k_by_degree(degrees: &[u32], k: usize) -> Vec<VertexId> {
    let mut order: Vec<VertexId> = (0..degrees.len() as u32).collect();
    let k = k.min(order.len());
    order.par_sort_unstable_by(|&a, &b| {
        degrees[b as usize]
            .cmp(&degrees[a as usize])
            .then_with(|| a.cmp(&b))
    });
    order.truncate(k);
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edge_list::EdgeList;

    fn star(n: u32) -> UndirectedCsr {
        // Vertex 0 connected to all others.
        let mut el = EdgeList::from_pairs((1..n).map(|v| (0, v)).collect());
        el.canonicalize();
        UndirectedCsr::from_canonical_edges(&el)
    }

    #[test]
    fn stats_of_star() {
        let g = star(11);
        let s = DegreeStats::of(&g);
        assert_eq!(s.max_degree, 10);
        assert_eq!(s.median_degree, 1);
        assert!((s.mean_degree - 20.0 / 11.0).abs() < 1e-9);
        assert!(s.is_skewed(1.5));
    }

    #[test]
    fn regular_graph_is_not_skewed() {
        // Cycle: all degrees 2.
        let n = 20u32;
        let mut el = EdgeList::from_pairs((0..n).map(|v| (v, (v + 1) % n)).collect());
        el.canonicalize();
        let g = UndirectedCsr::from_canonical_edges(&el);
        let s = DegreeStats::of(&g);
        assert_eq!(s.max_degree, 2);
        assert_eq!(s.median_degree, 2);
        assert!(!s.is_skewed(1.5));
    }

    #[test]
    fn empty_graph_stats() {
        let g = UndirectedCsr::from_canonical_edges(&EdgeList::new(0));
        let s = DegreeStats::of(&g);
        assert_eq!(s.max_degree, 0);
        assert!(!s.is_skewed(1.5));
    }

    #[test]
    fn distribution_buckets() {
        let mut d = DegreeDistribution::default();
        d.add(0);
        d.add(1);
        d.add(2);
        d.add(3);
        d.add(8);
        assert_eq!(d.zero, 1);
        assert_eq!(d.buckets[0], 1); // degree 1
        assert_eq!(d.buckets[1], 2); // degrees 2, 3
        assert_eq!(d.buckets[3], 1); // degree 8
        assert_eq!(d.total(), 5);
    }

    #[test]
    fn top_k_orders_by_degree_then_id() {
        let degrees = vec![3, 5, 5, 1, 0];
        assert_eq!(top_k_by_degree(&degrees, 3), vec![1, 2, 0]);
        assert_eq!(top_k_by_degree(&degrees, 10).len(), 5);
    }

    #[test]
    fn powerlaw_exponent_needs_enough_buckets() {
        let mut d = DegreeDistribution::default();
        d.add(1);
        d.add(2);
        assert_eq!(d.powerlaw_exponent(), None);
    }

    #[test]
    fn powerlaw_exponent_of_synthetic_powerlaw() {
        // Bucket counts following density ∝ d^-2.5 exactly.
        let mut d = DegreeDistribution::default();
        for k in 0..10u32 {
            let deg = 1u64 << k;
            // density(d) = d^-2.5, count over bucket width 2^k:
            let count = ((1.5 * deg as f64).powf(-2.5) * deg as f64 * 1e9) as u64;
            d.buckets.push(count.max(1));
        }
        let alpha = d.powerlaw_exponent().expect("enough buckets");
        assert!((alpha - 2.5).abs() < 0.1, "alpha {alpha}");
    }

    #[test]
    fn star_distribution_has_tail() {
        let g = star(64);
        let d = DegreeDistribution::of(&g);
        assert_eq!(d.total(), 64);
        // 63 leaves in bucket 0, one hub in the top bucket.
        assert_eq!(d.buckets[0], 63);
        assert_eq!(*d.buckets.last().unwrap(), 1);
    }
}
