//! Mutable undirected edge lists and their canonical form.
//!
//! Generators and file loaders produce an [`EdgeList`]; graph construction
//! consumes a *canonical* edge list (self-loops removed, each undirected
//! edge stored exactly once as `(min, max)`, sorted and deduplicated).

use rayon::prelude::*;

use crate::ids::VertexId;

/// A list of undirected edges, possibly with duplicates and self-loops.
///
/// Edges are unordered pairs; `(u, v)` and `(v, u)` denote the same edge.
/// [`EdgeList::canonicalize`] normalizes to the `(min, max)` representation,
/// sorts, and deduplicates so downstream CSR construction is deterministic.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EdgeList {
    edges: Vec<(VertexId, VertexId)>,
    num_vertices: u32,
}

impl EdgeList {
    /// Creates an empty edge list over `num_vertices` vertices.
    pub fn new(num_vertices: u32) -> Self {
        Self {
            edges: Vec::new(),
            num_vertices,
        }
    }

    /// Creates an edge list from raw pairs, inferring the vertex count as
    /// `max endpoint + 1` (0 for an empty list).
    pub fn from_pairs(edges: Vec<(VertexId, VertexId)>) -> Self {
        let num_vertices = edges.iter().map(|&(u, v)| u.max(v) + 1).max().unwrap_or(0);
        Self {
            edges,
            num_vertices,
        }
    }

    /// Creates an edge list from raw pairs with an explicit vertex count.
    ///
    /// # Panics
    /// Panics if any endpoint is `>= num_vertices`.
    pub fn from_pairs_with_vertices(edges: Vec<(VertexId, VertexId)>, num_vertices: u32) -> Self {
        for &(u, v) in &edges {
            assert!(
                u < num_vertices && v < num_vertices,
                "edge ({u}, {v}) out of range for {num_vertices} vertices"
            );
        }
        Self {
            edges,
            num_vertices,
        }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> u32 {
        self.num_vertices
    }

    /// Number of stored edge entries (before canonicalization this may count
    /// duplicates and self-loops).
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Whether the list holds no edges.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Appends an edge.
    pub fn push(&mut self, u: VertexId, v: VertexId) {
        debug_assert!(u < self.num_vertices && v < self.num_vertices);
        self.edges.push((u, v));
    }

    /// Raw view of the stored pairs.
    pub fn pairs(&self) -> &[(VertexId, VertexId)] {
        &self.edges
    }

    /// Grows the vertex count (IDs are dense, so this only moves the bound).
    pub fn grow_vertices(&mut self, num_vertices: u32) {
        assert!(num_vertices >= self.num_vertices);
        self.num_vertices = num_vertices;
    }

    /// Normalizes the list in place: each edge becomes `(min, max)`,
    /// self-loops are dropped, and duplicates removed. The result is sorted.
    ///
    /// The paper's preprocessing (Algorithm 2, lines 11–15) drops self-edges
    /// and symmetric duplicates in the same way.
    pub fn canonicalize(&mut self) {
        self.edges.par_iter_mut().for_each(|e| {
            if e.0 > e.1 {
                *e = (e.1, e.0);
            }
        });
        self.edges.retain(|&(u, v)| u != v);
        self.edges.par_sort_unstable();
        self.edges.dedup();
    }

    /// Returns a canonicalized copy, leaving `self` untouched.
    pub fn canonicalized(&self) -> Self {
        let mut c = self.clone();
        c.canonicalize();
        c
    }

    /// True when the list is in canonical form: every edge `(u, v)` has
    /// `u < v`, and edges are strictly increasing.
    pub fn is_canonical(&self) -> bool {
        self.edges.iter().all(|&(u, v)| u < v) && self.edges.windows(2).all(|w| w[0] < w[1])
    }

    /// Consumes the list, returning the raw pairs.
    pub fn into_pairs(self) -> Vec<(VertexId, VertexId)> {
        self.edges
    }

    /// Degree of each vertex counting both endpoints of every stored edge
    /// (canonical lists therefore yield undirected degrees).
    pub fn degrees(&self) -> Vec<u32> {
        let mut deg = vec![0u32; self.num_vertices as usize];
        for &(u, v) in &self.edges {
            deg[u as usize] += 1;
            if u != v {
                deg[v as usize] += 1;
            }
        }
        deg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_pairs_infers_vertex_count() {
        let el = EdgeList::from_pairs(vec![(0, 3), (1, 2)]);
        assert_eq!(el.num_vertices(), 4);
        assert_eq!(el.len(), 2);
    }

    #[test]
    fn empty_list() {
        let el = EdgeList::from_pairs(vec![]);
        assert_eq!(el.num_vertices(), 0);
        assert!(el.is_empty());
        assert!(el.is_canonical());
    }

    #[test]
    fn canonicalize_orders_dedups_and_drops_loops() {
        let mut el = EdgeList::from_pairs(vec![(2, 1), (1, 2), (3, 3), (0, 1), (1, 0)]);
        el.canonicalize();
        assert_eq!(el.pairs(), &[(0, 1), (1, 2)]);
        assert!(el.is_canonical());
    }

    #[test]
    fn canonicalized_leaves_original() {
        let el = EdgeList::from_pairs(vec![(2, 1), (1, 2)]);
        let c = el.canonicalized();
        assert_eq!(el.len(), 2);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn degrees_count_both_endpoints() {
        let mut el = EdgeList::from_pairs(vec![(0, 1), (1, 2), (2, 0)]);
        el.canonicalize();
        assert_eq!(el.degrees(), vec![2, 2, 2]);
    }

    #[test]
    fn is_canonical_rejects_unsorted() {
        let el = EdgeList::from_pairs(vec![(1, 2), (0, 1)]);
        assert!(!el.is_canonical());
    }

    #[test]
    #[should_panic]
    fn explicit_vertex_count_checks_range() {
        let _ = EdgeList::from_pairs_with_vertices(vec![(0, 5)], 3);
    }

    #[test]
    fn push_and_grow() {
        let mut el = EdgeList::new(2);
        el.push(0, 1);
        el.grow_vertices(10);
        el.push(8, 9);
        assert_eq!(el.len(), 2);
        assert_eq!(el.num_vertices(), 10);
    }
}
