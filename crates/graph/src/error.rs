//! Error type shared by graph construction and I/O.

use std::fmt;
use std::io;

/// Errors produced while constructing or (de)serializing graphs.
#[derive(Debug)]
pub enum GraphError {
    /// A vertex ID referenced by an edge is outside `0..num_vertices`.
    VertexOutOfRange {
        /// The offending vertex ID.
        vertex: u64,
        /// Number of vertices in the graph.
        num_vertices: u64,
    },
    /// A neighbour ID does not fit the requested storage width.
    NeighborWidthOverflow {
        /// The offending vertex ID.
        vertex: u64,
        /// Storage width in bits.
        bits: u32,
    },
    /// Input text could not be parsed as an edge list.
    Parse {
        /// 1-based line number of the malformed line.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// A binary graph file has an invalid header or truncated payload.
    Format(String),
    /// The input ended before a complete record could be read — a torn
    /// or truncated stream. Distinct from [`GraphError::Io`] so recovery
    /// code can treat a short file as quarantinable damage rather than a
    /// transient I/O failure.
    Truncated {
        /// Which section of the format the reader was mid-way through.
        section: &'static str,
        /// Bytes the section still needed when the stream ended.
        needed: usize,
    },
    /// Underlying I/O failure.
    Io(io::Error),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::VertexOutOfRange {
                vertex,
                num_vertices,
            } => {
                write!(
                    f,
                    "vertex {vertex} out of range for graph with {num_vertices} vertices"
                )
            }
            GraphError::NeighborWidthOverflow { vertex, bits } => {
                write!(f, "vertex {vertex} does not fit a {bits}-bit neighbour ID")
            }
            GraphError::Parse { line, message } => {
                write!(f, "parse error on line {line}: {message}")
            }
            GraphError::Format(msg) => write!(f, "invalid graph file: {msg}"),
            GraphError::Truncated { section, needed } => write!(
                f,
                "truncated input: stream ended {needed} byte(s) short while reading {section}"
            ),
            GraphError::Io(e) => write!(f, "I/O error: {e}"),
        }
    }
}

impl std::error::Error for GraphError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GraphError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for GraphError {
    fn from(e: io::Error) -> Self {
        GraphError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = GraphError::VertexOutOfRange {
            vertex: 10,
            num_vertices: 5,
        };
        assert!(e.to_string().contains("10"));
        assert!(e.to_string().contains("5"));

        let e = GraphError::Parse {
            line: 3,
            message: "bad token".into(),
        };
        assert!(e.to_string().contains("line 3"));

        let e = GraphError::from(io::Error::new(io::ErrorKind::NotFound, "gone"));
        assert!(e.to_string().contains("gone"));
    }

    #[test]
    fn io_source_is_preserved() {
        use std::error::Error;
        let e = GraphError::from(io::Error::other("x"));
        assert!(e.source().is_some());
        let e = GraphError::Format("bad".into());
        assert!(e.source().is_none());
    }
}
