//! Vertex and neighbour identifier types.
//!
//! Vertices are identified by dense `u32` IDs (`0..num_vertices`), matching
//! the public datasets in the paper (all have fewer than 2³² vertices,
//! §4.3.2). Neighbour lists, in contrast, are stored with a *configurable
//! width*: the LOTUS HE sub-graph uses 16-bit IDs because hubs occupy the
//! first 2¹⁶ IDs, while the NHE sub-graph uses 32-bit IDs. The
//! [`NeighborId`] trait abstracts that width so one CSR implementation
//! serves both.

use std::fmt::Debug;
use std::hash::Hash;

/// Dense vertex identifier. IDs are contiguous in `0..num_vertices`.
pub type VertexId = u32;

/// An integer type usable as a stored neighbour ID inside a CSR.
///
/// Implemented for `u16` (LOTUS HE sub-graph), `u32` (general graphs and the
/// NHE sub-graph) and `u64` (graphs beyond 2³² vertices, §4.3.2 of the
/// paper). Conversions are checked in debug builds: narrowing a vertex ID
/// that does not fit the neighbour width is a construction-time logic error.
pub trait NeighborId:
    Copy + Clone + Ord + Eq + Hash + Debug + Default + Send + Sync + 'static
{
    /// Number of bits of the stored representation.
    const BITS: u32;
    /// Number of bytes of the stored representation.
    const BYTES: usize;

    /// Converts a vertex ID to this width. Panics in debug builds when the
    /// value does not fit.
    fn from_vertex(v: VertexId) -> Self;

    /// Widens back to a vertex ID.
    fn to_vertex(self) -> VertexId;

    /// Widens to a `usize` index.
    #[inline(always)]
    fn index(self) -> usize {
        self.to_vertex() as usize
    }
}

impl NeighborId for u16 {
    const BITS: u32 = 16;
    const BYTES: usize = 2;

    #[inline(always)]
    fn from_vertex(v: VertexId) -> Self {
        debug_assert!(v <= u16::MAX as u32, "vertex {v} does not fit in u16");
        v as u16
    }

    #[inline(always)]
    fn to_vertex(self) -> VertexId {
        self as VertexId
    }
}

impl NeighborId for u32 {
    const BITS: u32 = 32;
    const BYTES: usize = 4;

    #[inline(always)]
    fn from_vertex(v: VertexId) -> Self {
        v
    }

    #[inline(always)]
    fn to_vertex(self) -> VertexId {
        self
    }
}

impl NeighborId for u64 {
    const BITS: u32 = 64;
    const BYTES: usize = 8;

    #[inline(always)]
    fn from_vertex(v: VertexId) -> Self {
        v as u64
    }

    #[inline(always)]
    fn to_vertex(self) -> VertexId {
        debug_assert!(self <= u32::MAX as u64, "vertex {self} does not fit in u32");
        self as VertexId
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u16_round_trip() {
        for v in [0u32, 1, 255, 65535] {
            assert_eq!(<u16 as NeighborId>::from_vertex(v).to_vertex(), v);
        }
    }

    #[test]
    fn u32_round_trip() {
        for v in [0u32, 1, 65536, u32::MAX] {
            assert_eq!(<u32 as NeighborId>::from_vertex(v).to_vertex(), v);
        }
    }

    #[test]
    fn u64_round_trip() {
        for v in [0u32, 1, 65536, u32::MAX] {
            assert_eq!(<u64 as NeighborId>::from_vertex(v).to_vertex(), v);
        }
    }

    #[test]
    #[should_panic]
    #[cfg(debug_assertions)]
    fn u16_narrowing_panics_in_debug() {
        let _ = <u16 as NeighborId>::from_vertex(70_000);
    }

    #[test]
    fn widths() {
        assert_eq!(<u16 as NeighborId>::BYTES, 2);
        assert_eq!(<u32 as NeighborId>::BYTES, 4);
        assert_eq!(<u64 as NeighborId>::BYTES, 8);
    }

    #[test]
    fn index_matches_vertex() {
        assert_eq!(<u16 as NeighborId>::from_vertex(9).index(), 9);
        assert_eq!(<u32 as NeighborId>::from_vertex(9).index(), 9);
    }
}
