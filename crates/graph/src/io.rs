//! Graph (de)serialization: whitespace-separated edge-list text and a
//! compact little-endian binary format.
//!
//! The binary layout (version 2) is:
//!
//! ```text
//! magic  "LOTG"            4 bytes
//! version u32              4 bytes
//! num_vertices u32         4 bytes
//! num_edges u64            8 bytes
//! edges (u32, u32) pairs   8·num_edges bytes
//! crc32 u32                4 bytes  (over everything above)
//! ```
//!
//! Edges are stored canonically (`u < v`, sorted), so loading produces the
//! same graph bit-for-bit. Version 1 files (no checksum trailer) are still
//! read; [`write_binary`] always emits version 2.
//!
//! All readers treat their input as untrusted: header counts never drive
//! unbounded allocations (reservations are capped at
//! [`MAX_PREALLOC_BYTES`]), every record is read through a take-limited
//! helper that maps EOF-mid-record to the typed
//! [`GraphError::Truncated`] (a torn snapshot is *damage*, not a
//! transient I/O failure), a corrupt version-2 payload fails the CRC
//! check with [`GraphError::Format`], and the fault points
//! `io.read_binary.header`, `io.read_binary.payload` and
//! `io.read_text.line` let the fault-injection harness prove every error
//! path returns a typed [`GraphError`] (see DESIGN.md "Resilience layer").

use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use lotus_resilience::fault_point;

use crate::crc32::Crc32;
use crate::edge_list::EdgeList;
use crate::error::GraphError;

const MAGIC: &[u8; 4] = b"LOTG";
/// Current binary format version (checksummed).
pub const VERSION: u32 = 2;
/// Legacy version without the CRC trailer; still readable.
pub const VERSION_V1: u32 = 1;

/// Cap on any up-front reservation driven by an untrusted header field.
/// A corrupt `num_edges` then costs at most one modest allocation before
/// the short payload surfaces as a typed error; genuine large graphs
/// still load fine because the vector grows geometrically from here.
pub const MAX_PREALLOC_BYTES: usize = 64 * 1024;

/// How text parsing treats recoverable irregularities such as trailing
/// tokens after the two endpoint IDs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum Strictness {
    /// Accept the line, record a [`ParseWarning`].
    #[default]
    Lenient,
    /// Reject the line with [`GraphError::Parse`].
    Strict,
}

/// A recoverable irregularity found while parsing text input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseWarning {
    /// 1-based line number.
    pub line: usize,
    /// Description of the irregularity.
    pub message: String,
}

impl std::fmt::Display for ParseWarning {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

/// Result of a reporting text parse: the edges plus any warnings.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedEdgeList {
    /// The parsed edges.
    pub edges: EdgeList,
    /// Irregularities encountered (always empty under
    /// [`Strictness::Strict`], which turns them into errors).
    pub warnings: Vec<ParseWarning>,
}

/// Parses a whitespace-separated edge list (`u v` per line, `#`/`%`
/// comments), reporting lines with trailing garbage tokens as warnings
/// (lenient) or errors (strict).
///
/// # Errors
/// Returns a [`GraphError`] on I/O failure or malformed input; under
/// [`Strictness::Strict`], trailing garbage is also an error.
pub fn read_edge_list_text_with<R: Read>(
    reader: R,
    strictness: Strictness,
) -> Result<ParsedEdgeList, GraphError> {
    let reader = BufReader::new(reader);
    let mut pairs = Vec::new();
    let mut warnings = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        fault_point!("io.read_text.line")?;
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') || line.starts_with('%') {
            continue;
        }
        let mut it = line.split_whitespace();
        let parse = |tok: Option<&str>| -> Result<u32, GraphError> {
            tok.ok_or_else(|| GraphError::Parse {
                line: lineno + 1,
                message: "expected two vertex IDs".into(),
            })?
            .parse::<u32>()
            .map_err(|e| GraphError::Parse {
                line: lineno + 1,
                message: e.to_string(),
            })
        };
        let u = parse(it.next())?;
        let v = parse(it.next())?;
        let trailing = it.count();
        if trailing > 0 {
            let message = format!("{trailing} trailing token(s) after the two vertex IDs ignored");
            match strictness {
                Strictness::Strict => {
                    return Err(GraphError::Parse {
                        line: lineno + 1,
                        message: format!("{trailing} trailing token(s) after the two vertex IDs"),
                    });
                }
                Strictness::Lenient => warnings.push(ParseWarning {
                    line: lineno + 1,
                    message,
                }),
            }
        }
        pairs.push((u, v));
    }
    Ok(ParsedEdgeList {
        edges: EdgeList::from_pairs(pairs),
        warnings,
    })
}

/// Parses a whitespace-separated edge list leniently, discarding any
/// warnings. Prefer [`read_edge_list_text_with`] in user-facing paths so
/// irregular input is reported rather than silently accepted.
///
/// # Errors
/// Returns a [`GraphError`] on I/O failure or malformed input.
pub fn read_edge_list_text<R: Read>(reader: R) -> Result<EdgeList, GraphError> {
    read_edge_list_text_with(reader, Strictness::Lenient).map(|parsed| parsed.edges)
}

/// Reads an edge-list text file (lenient; warnings discarded).
///
/// # Errors
/// Returns a [`GraphError`] when the file cannot be opened or parsed.
pub fn load_edge_list_text(path: impl AsRef<Path>) -> Result<EdgeList, GraphError> {
    read_edge_list_text(File::open(path)?)
}

/// Reads an edge-list text file with the given strictness, reporting
/// warnings.
///
/// # Errors
/// Returns a [`GraphError`] when the file cannot be opened or parsed.
pub fn load_edge_list_text_with(
    path: impl AsRef<Path>,
    strictness: Strictness,
) -> Result<ParsedEdgeList, GraphError> {
    read_edge_list_text_with(File::open(path)?, strictness)
}

/// Writes an edge list as text (`u v` per line).
///
/// # Errors
/// Returns a [`GraphError`] when writing fails.
pub fn write_edge_list_text<W: Write>(el: &EdgeList, writer: W) -> Result<(), GraphError> {
    let mut w = BufWriter::new(writer);
    for &(u, v) in el.pairs() {
        writeln!(w, "{u} {v}")?;
    }
    w.flush()?;
    Ok(())
}

/// Writes the canonical binary format (version 2, with CRC32 trailer).
///
/// # Errors
/// Returns a [`GraphError`] when writing fails.
pub fn write_binary<W: Write>(el: &EdgeList, writer: W) -> Result<(), GraphError> {
    let mut w = BufWriter::new(writer);
    let mut digest = Crc32::new();
    let mut put = |w: &mut BufWriter<W>, bytes: &[u8]| -> Result<(), GraphError> {
        digest.update(bytes);
        w.write_all(bytes)?;
        Ok(())
    };
    put(&mut w, MAGIC)?;
    put(&mut w, &VERSION.to_le_bytes())?;
    put(&mut w, &el.num_vertices().to_le_bytes())?;
    put(&mut w, &(el.len() as u64).to_le_bytes())?;
    for &(u, v) in el.pairs() {
        put(&mut w, &u.to_le_bytes())?;
        put(&mut w, &v.to_le_bytes())?;
    }
    let checksum = digest.finalize();
    w.write_all(&checksum.to_le_bytes())?;
    w.flush()?;
    Ok(())
}

/// Writes the legacy version-1 binary format (no checksum). Kept for
/// compatibility tooling and for tests that prove v1 files still load.
///
/// # Errors
/// Returns a [`GraphError`] when writing fails.
pub fn write_binary_v1<W: Write>(el: &EdgeList, writer: W) -> Result<(), GraphError> {
    let mut w = BufWriter::new(writer);
    w.write_all(MAGIC)?;
    w.write_all(&VERSION_V1.to_le_bytes())?;
    w.write_all(&el.num_vertices().to_le_bytes())?;
    w.write_all(&(el.len() as u64).to_le_bytes())?;
    for &(u, v) in el.pairs() {
        w.write_all(&u.to_le_bytes())?;
        w.write_all(&v.to_le_bytes())?;
    }
    w.flush()?;
    Ok(())
}

/// `read_exact` with the EOF case mapped to the typed
/// [`GraphError::Truncated`]: a short stream is *damage* (torn write,
/// truncated snapshot), not a transient I/O failure, and recovery code
/// needs to tell the two apart. The read is take-limited to the exact
/// record size, so a hostile length can never drive an oversized read.
fn read_exact_or_truncated<R: Read>(
    r: &mut R,
    buf: &mut [u8],
    section: &'static str,
) -> Result<(), GraphError> {
    let mut limited = r.take(buf.len() as u64);
    let mut filled = 0usize;
    while filled < buf.len() {
        match limited.read(&mut buf[filled..]) {
            Ok(0) => {
                return Err(GraphError::Truncated {
                    section,
                    needed: buf.len() - filled,
                })
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => {
                return Err(GraphError::Truncated {
                    section,
                    needed: buf.len() - filled,
                })
            }
            Err(e) => return Err(GraphError::Io(e)),
        }
    }
    Ok(())
}

/// Reads the canonical binary format (versions 1 and 2; version 2
/// verifies the CRC32 trailer).
///
/// # Errors
/// Returns a [`GraphError`] on I/O failure, a bad magic or version,
/// an out-of-range vertex, or a checksum mismatch;
/// [`GraphError::Truncated`] when the stream ends mid-record.
pub fn read_binary<R: Read>(reader: R) -> Result<EdgeList, GraphError> {
    let mut r = BufReader::new(reader);
    let mut digest = Crc32::new();
    fault_point!("io.read_binary.header")?;
    let mut magic = [0u8; 4];
    read_exact_or_truncated(&mut r, &mut magic, "magic")?;
    digest.update(&magic);
    if &magic != MAGIC {
        return Err(GraphError::Format("bad magic".into()));
    }
    let mut buf4 = [0u8; 4];
    read_exact_or_truncated(&mut r, &mut buf4, "version")?;
    digest.update(&buf4);
    let version = u32::from_le_bytes(buf4);
    if version != VERSION_V1 && version != VERSION {
        return Err(GraphError::Format(format!("unsupported version {version}")));
    }
    read_exact_or_truncated(&mut r, &mut buf4, "num_vertices")?;
    digest.update(&buf4);
    let num_vertices = u32::from_le_bytes(buf4);
    let mut buf8 = [0u8; 8];
    read_exact_or_truncated(&mut r, &mut buf8, "num_edges")?;
    digest.update(&buf8);
    let num_edges = u64::from_le_bytes(buf8) as usize;
    // The header is untrusted: cap the reservation so a corrupt edge
    // count cannot drive a multi-GiB allocation before the (short)
    // payload fails to materialize.
    let mut pairs = Vec::with_capacity(num_edges.min(MAX_PREALLOC_BYTES / 8));
    let mut buf_edge = [0u8; 8];
    for _ in 0..num_edges {
        fault_point!("io.read_binary.payload")?;
        read_exact_or_truncated(&mut r, &mut buf_edge, "edge payload")?;
        digest.update(&buf_edge);
        let u = u32::from_le_bytes([buf_edge[0], buf_edge[1], buf_edge[2], buf_edge[3]]);
        let v = u32::from_le_bytes([buf_edge[4], buf_edge[5], buf_edge[6], buf_edge[7]]);
        if u >= num_vertices || v >= num_vertices {
            return Err(GraphError::VertexOutOfRange {
                vertex: u.max(v) as u64,
                num_vertices: num_vertices as u64,
            });
        }
        pairs.push((u, v));
    }
    if version == VERSION {
        let mut trailer = [0u8; 4];
        read_exact_or_truncated(&mut r, &mut trailer, "crc trailer")?;
        let stored = u32::from_le_bytes(trailer);
        let computed = digest.finalize();
        if stored != computed {
            return Err(GraphError::Format(format!(
                "checksum mismatch: stored {stored:#010x}, computed {computed:#010x}"
            )));
        }
    }
    Ok(EdgeList::from_pairs_with_vertices(pairs, num_vertices))
}

/// Saves an edge list to a binary file.
///
/// # Errors
/// Returns a [`GraphError`] when the file cannot be created or
/// written.
pub fn save_binary(el: &EdgeList, path: impl AsRef<Path>) -> Result<(), GraphError> {
    write_binary(el, File::create(path)?)
}

/// Loads an edge list from a binary file.
///
/// # Errors
/// Returns a [`GraphError`] when the file cannot be opened, read, or
/// validated.
pub fn load_binary(path: impl AsRef<Path>) -> Result<EdgeList, GraphError> {
    read_binary(File::open(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_round_trip() {
        let mut el = EdgeList::from_pairs(vec![(0, 1), (1, 2), (0, 3)]);
        el.canonicalize();
        let mut buf = Vec::new();
        write_edge_list_text(&el, &mut buf).unwrap();
        let back = read_edge_list_text(&buf[..]).unwrap();
        assert_eq!(back.pairs(), el.pairs());
    }

    #[test]
    fn text_skips_comments_and_blank_lines() {
        let input = "# comment\n\n% also comment\n0 1\n 2 3 \n";
        let el = read_edge_list_text(input.as_bytes()).unwrap();
        assert_eq!(el.pairs(), &[(0, 1), (2, 3)]);
    }

    #[test]
    fn text_reports_parse_errors_with_line() {
        let input = "0 1\nnot numbers\n";
        let err = read_edge_list_text(input.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
    }

    #[test]
    fn text_rejects_missing_endpoint() {
        let err = read_edge_list_text("42\n".as_bytes()).unwrap_err();
        assert!(matches!(err, GraphError::Parse { .. }));
    }

    #[test]
    fn lenient_parse_reports_trailing_tokens() {
        let input = "0 1\n1 2 0.5 extra\n2 3\n";
        let parsed = read_edge_list_text_with(input.as_bytes(), Strictness::Lenient).unwrap();
        assert_eq!(parsed.edges.pairs(), &[(0, 1), (1, 2), (2, 3)]);
        assert_eq!(parsed.warnings.len(), 1);
        assert_eq!(parsed.warnings[0].line, 2);
        assert!(
            parsed.warnings[0].message.contains("2 trailing token(s)"),
            "{}",
            parsed.warnings[0].message
        );
        assert!(parsed.warnings[0].to_string().contains("line 2"));
    }

    #[test]
    fn strict_parse_rejects_trailing_tokens() {
        let input = "0 1\n1 2 77\n";
        let err = read_edge_list_text_with(input.as_bytes(), Strictness::Strict).unwrap_err();
        match err {
            GraphError::Parse { line, message } => {
                assert_eq!(line, 2);
                assert!(message.contains("trailing"), "{message}");
            }
            other => panic!("expected Parse error, got {other:?}"),
        }
    }

    #[test]
    fn strict_parse_accepts_clean_input() {
        let input = "# comment\n0 1\n1 2\n";
        let parsed = read_edge_list_text_with(input.as_bytes(), Strictness::Strict).unwrap();
        assert_eq!(parsed.edges.pairs(), &[(0, 1), (1, 2)]);
        assert!(parsed.warnings.is_empty());
    }

    #[test]
    fn binary_round_trip() {
        let mut el = EdgeList::from_pairs(vec![(5, 1), (1, 2), (0, 3), (1, 5)]);
        el.canonicalize();
        let mut buf = Vec::new();
        write_binary(&el, &mut buf).unwrap();
        let back = read_binary(&buf[..]).unwrap();
        assert_eq!(back, el);
    }

    #[test]
    fn binary_v2_carries_a_checksum_trailer() {
        let el = EdgeList::from_pairs(vec![(0, 1), (1, 2)]).canonicalized();
        let mut v2 = Vec::new();
        write_binary(&el, &mut v2).unwrap();
        let mut v1 = Vec::new();
        write_binary_v1(&el, &mut v1).unwrap();
        assert_eq!(v2.len(), v1.len() + 4);
        let payload = &v2[..v2.len() - 4];
        let stored = u32::from_le_bytes(v2[v2.len() - 4..].try_into().unwrap());
        assert_eq!(stored, crate::crc32::crc32(payload));
    }

    #[test]
    fn binary_v1_files_still_load() {
        let mut el = EdgeList::from_pairs(vec![(5, 1), (1, 2), (0, 3)]);
        el.canonicalize();
        let mut buf = Vec::new();
        write_binary_v1(&el, &mut buf).unwrap();
        let back = read_binary(&buf[..]).unwrap();
        assert_eq!(back, el);
    }

    #[test]
    fn binary_rejects_corrupted_payload_byte() {
        let el = EdgeList::from_pairs((0..50u32).map(|i| (i, i + 1)).collect()).canonicalized();
        let mut buf = Vec::new();
        write_binary(&el, &mut buf).unwrap();
        // Flip the low bit of the first endpoint (0 → 1): the edge stays
        // in range, so only the CRC can catch the corruption.
        let payload_start = 20; // magic 4 + version 4 + n 4 + m 8
        buf[payload_start] ^= 0x01;
        let err = read_binary(&buf[..]).unwrap_err();
        assert!(
            matches!(&err, GraphError::Format(m) if m.contains("checksum")),
            "{err:?}"
        );
    }

    #[test]
    fn binary_rejects_corrupted_trailer() {
        let el = EdgeList::from_pairs(vec![(0, 1), (1, 2)]).canonicalized();
        let mut buf = Vec::new();
        write_binary(&el, &mut buf).unwrap();
        let last = buf.len() - 1;
        buf[last] ^= 0xff;
        assert!(read_binary(&buf[..]).is_err());
    }

    #[test]
    fn binary_rejects_bad_magic() {
        let err = read_binary(&b"XXXX\0\0\0\0"[..]).unwrap_err();
        assert!(matches!(err, GraphError::Format(_)));
    }

    #[test]
    fn binary_rejects_truncated() {
        let el = EdgeList::from_pairs(vec![(0, 1)]).canonicalized();
        let mut buf = Vec::new();
        write_binary(&el, &mut buf).unwrap();
        buf.truncate(buf.len() - 3);
        let err = read_binary(&buf[..]).unwrap_err();
        assert!(matches!(err, GraphError::Truncated { .. }), "{err:?}");
    }

    /// Byte-boundary truncation fuzz: every proper prefix of a valid v2
    /// file must fail with the typed `Truncated` error — never a panic,
    /// never a silent success, never an untyped I/O error.
    #[test]
    fn every_truncation_boundary_fails_typed() {
        let el = EdgeList::from_pairs((0..40u32).map(|i| (i, i + 1)).collect()).canonicalized();
        let mut buf = Vec::new();
        write_binary(&el, &mut buf).unwrap();
        assert!(read_binary(&buf[..]).is_ok(), "whole file loads");
        for cut in 0..buf.len() {
            let result = read_binary(&buf[..cut]);
            let Err(err) = result else {
                panic!("prefix of {cut} bytes must not load")
            };
            assert!(
                matches!(err, GraphError::Truncated { .. }),
                "cut {cut}: {err:?}"
            );
        }
    }

    #[test]
    fn binary_rejects_out_of_range_vertex() {
        // Hand-craft a v1 file: 2 vertices but edge (0, 7).
        let mut buf = Vec::new();
        buf.extend_from_slice(b"LOTG");
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.extend_from_slice(&2u32.to_le_bytes());
        buf.extend_from_slice(&1u64.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        buf.extend_from_slice(&7u32.to_le_bytes());
        let err = read_binary(&buf[..]).unwrap_err();
        assert!(matches!(err, GraphError::VertexOutOfRange { .. }));
    }

    #[test]
    fn hostile_edge_count_fails_without_huge_allocation() {
        // A v1 header claiming u64::MAX edges followed by no payload: the
        // capped reservation means this returns a typed error quickly
        // instead of attempting a multi-GiB allocation.
        let mut buf = Vec::new();
        buf.extend_from_slice(b"LOTG");
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.extend_from_slice(&100u32.to_le_bytes());
        buf.extend_from_slice(&u64::MAX.to_le_bytes());
        let err = read_binary(&buf[..]).unwrap_err();
        assert!(matches!(err, GraphError::Truncated { .. }), "{err:?}");
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("lotus_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.lotg");
        let el = EdgeList::from_pairs(vec![(0, 1), (1, 2)]).canonicalized();
        save_binary(&el, &path).unwrap();
        let back = load_binary(&path).unwrap();
        assert_eq!(back, el);
        std::fs::remove_file(&path).ok();
    }
}
