//! Graph (de)serialization: whitespace-separated edge-list text and a
//! compact little-endian binary format.
//!
//! The binary layout is:
//!
//! ```text
//! magic  "LOTG"            4 bytes
//! version u32              4 bytes
//! num_vertices u32         4 bytes
//! num_edges u64            8 bytes
//! edges (u32, u32) pairs   16·num_edges... (8 bytes per edge)
//! ```
//!
//! Edges are stored canonically (`u < v`, sorted), so loading produces the
//! same graph bit-for-bit.

use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::edge_list::EdgeList;
use crate::error::GraphError;

const MAGIC: &[u8; 4] = b"LOTG";
const VERSION: u32 = 1;

/// Parses a whitespace-separated edge list (`u v` per line, `#`/`%` comments)
/// from a reader.
pub fn read_edge_list_text<R: Read>(reader: R) -> Result<EdgeList, GraphError> {
    let reader = BufReader::new(reader);
    let mut pairs = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') || line.starts_with('%') {
            continue;
        }
        let mut it = line.split_whitespace();
        let parse = |tok: Option<&str>| -> Result<u32, GraphError> {
            tok.ok_or_else(|| GraphError::Parse {
                line: lineno + 1,
                message: "expected two vertex IDs".into(),
            })?
            .parse::<u32>()
            .map_err(|e| GraphError::Parse {
                line: lineno + 1,
                message: e.to_string(),
            })
        };
        let u = parse(it.next())?;
        let v = parse(it.next())?;
        pairs.push((u, v));
    }
    Ok(EdgeList::from_pairs(pairs))
}

/// Reads an edge-list text file.
pub fn load_edge_list_text(path: impl AsRef<Path>) -> Result<EdgeList, GraphError> {
    read_edge_list_text(File::open(path)?)
}

/// Writes an edge list as text (`u v` per line).
pub fn write_edge_list_text<W: Write>(el: &EdgeList, writer: W) -> Result<(), GraphError> {
    let mut w = BufWriter::new(writer);
    for &(u, v) in el.pairs() {
        writeln!(w, "{u} {v}")?;
    }
    w.flush()?;
    Ok(())
}

/// Writes the canonical binary format.
pub fn write_binary<W: Write>(el: &EdgeList, writer: W) -> Result<(), GraphError> {
    let mut w = BufWriter::new(writer);
    w.write_all(MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    w.write_all(&el.num_vertices().to_le_bytes())?;
    w.write_all(&(el.len() as u64).to_le_bytes())?;
    for &(u, v) in el.pairs() {
        w.write_all(&u.to_le_bytes())?;
        w.write_all(&v.to_le_bytes())?;
    }
    w.flush()?;
    Ok(())
}

/// Reads the canonical binary format.
pub fn read_binary<R: Read>(reader: R) -> Result<EdgeList, GraphError> {
    let mut r = BufReader::new(reader);
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(GraphError::Format("bad magic".into()));
    }
    let mut buf4 = [0u8; 4];
    r.read_exact(&mut buf4)?;
    let version = u32::from_le_bytes(buf4);
    if version != VERSION {
        return Err(GraphError::Format(format!("unsupported version {version}")));
    }
    r.read_exact(&mut buf4)?;
    let num_vertices = u32::from_le_bytes(buf4);
    let mut buf8 = [0u8; 8];
    r.read_exact(&mut buf8)?;
    let num_edges = u64::from_le_bytes(buf8) as usize;
    let mut pairs = Vec::with_capacity(num_edges);
    for _ in 0..num_edges {
        r.read_exact(&mut buf4)?;
        let u = u32::from_le_bytes(buf4);
        r.read_exact(&mut buf4)?;
        let v = u32::from_le_bytes(buf4);
        if u >= num_vertices || v >= num_vertices {
            return Err(GraphError::VertexOutOfRange {
                vertex: u.max(v) as u64,
                num_vertices: num_vertices as u64,
            });
        }
        pairs.push((u, v));
    }
    Ok(EdgeList::from_pairs_with_vertices(pairs, num_vertices))
}

/// Saves an edge list to a binary file.
pub fn save_binary(el: &EdgeList, path: impl AsRef<Path>) -> Result<(), GraphError> {
    write_binary(el, File::create(path)?)
}

/// Loads an edge list from a binary file.
pub fn load_binary(path: impl AsRef<Path>) -> Result<EdgeList, GraphError> {
    read_binary(File::open(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_round_trip() {
        let mut el = EdgeList::from_pairs(vec![(0, 1), (1, 2), (0, 3)]);
        el.canonicalize();
        let mut buf = Vec::new();
        write_edge_list_text(&el, &mut buf).unwrap();
        let back = read_edge_list_text(&buf[..]).unwrap();
        assert_eq!(back.pairs(), el.pairs());
    }

    #[test]
    fn text_skips_comments_and_blank_lines() {
        let input = "# comment\n\n% also comment\n0 1\n 2 3 \n";
        let el = read_edge_list_text(input.as_bytes()).unwrap();
        assert_eq!(el.pairs(), &[(0, 1), (2, 3)]);
    }

    #[test]
    fn text_reports_parse_errors_with_line() {
        let input = "0 1\nnot numbers\n";
        let err = read_edge_list_text(input.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
    }

    #[test]
    fn text_rejects_missing_endpoint() {
        let err = read_edge_list_text("42\n".as_bytes()).unwrap_err();
        assert!(matches!(err, GraphError::Parse { .. }));
    }

    #[test]
    fn binary_round_trip() {
        let mut el = EdgeList::from_pairs(vec![(5, 1), (1, 2), (0, 3), (1, 5)]);
        el.canonicalize();
        let mut buf = Vec::new();
        write_binary(&el, &mut buf).unwrap();
        let back = read_binary(&buf[..]).unwrap();
        assert_eq!(back, el);
    }

    #[test]
    fn binary_rejects_bad_magic() {
        let err = read_binary(&b"XXXX\0\0\0\0"[..]).unwrap_err();
        assert!(matches!(err, GraphError::Format(_)));
    }

    #[test]
    fn binary_rejects_truncated() {
        let el = EdgeList::from_pairs(vec![(0, 1)]).canonicalized();
        let mut buf = Vec::new();
        write_binary(&el, &mut buf).unwrap();
        buf.truncate(buf.len() - 3);
        assert!(read_binary(&buf[..]).is_err());
    }

    #[test]
    fn binary_rejects_out_of_range_vertex() {
        // Hand-craft: 2 vertices but edge (0, 7).
        let mut buf = Vec::new();
        buf.extend_from_slice(b"LOTG");
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.extend_from_slice(&2u32.to_le_bytes());
        buf.extend_from_slice(&1u64.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        buf.extend_from_slice(&7u32.to_le_bytes());
        let err = read_binary(&buf[..]).unwrap_err();
        assert!(matches!(err, GraphError::VertexOutOfRange { .. }));
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("lotus_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.lotg");
        let el = EdgeList::from_pairs(vec![(0, 1), (1, 2)]).canonicalized();
        save_binary(&el, &path).unwrap();
        let back = load_binary(&path).unwrap();
        assert_eq!(back, el);
        std::fs::remove_file(&path).ok();
    }
}
