#![warn(missing_docs)]

//! Graph substrate for the LOTUS triangle-counting reproduction.
//!
//! This crate provides the storage and preprocessing layer that every
//! triangle-counting algorithm in the workspace builds on:
//!
//! * [`EdgeList`] — a mutable list of undirected edges with canonicalization
//!   (self-loop removal, deduplication).
//! * [`Csr`] — compressed sparse row/column (CSX) adjacency storage, generic
//!   over the neighbour-ID width ([`NeighborId`]: `u16`, `u32` or `u64`).
//!   LOTUS stores hub neighbours in 16 bits and non-hub neighbours in 32 bits;
//!   the same container backs both.
//! * [`UndirectedCsr`] — a symmetric graph with sorted neighbour lists, the
//!   input format of all counting algorithms, plus its *forward* (oriented)
//!   view where each vertex keeps only lower-ID neighbours.
//! * Orderings ([`ordering`]) — degree-descending and LOTUS hub-first
//!   relabelings.
//! * Partitioning ([`partition`]) — edge-balanced range partitioning used by
//!   the load-balance experiments (Table 9 of the paper).
//! * Sharding ([`shard`]) — extraction of a partition's forward columns plus
//!   the ghost columns needed for exact cross-shard triangle counting, used
//!   by the cluster tier (DESIGN.md §16).
//! * I/O ([`io`]) — text edge-list and a compact binary format.

pub mod builder;
pub mod crc32;
pub mod csr;
pub mod degeneracy;
pub mod degree;
pub mod edge_list;
pub mod error;
pub mod ids;
pub mod io;
pub mod ordering;
pub mod partition;
pub mod shard;
pub mod stats;
pub mod varint;

pub use builder::GraphBuilder;
pub use csr::{Csr, UndirectedCsr};
pub use degeneracy::{core_decomposition, CoreDecomposition};
pub use degree::{DegreeDistribution, DegreeStats};
pub use edge_list::EdgeList;
pub use error::GraphError;
pub use ids::{NeighborId, VertexId};
pub use io::{ParseWarning, ParsedEdgeList, Strictness};
pub use ordering::Relabeling;
pub use shard::ShardSubgraph;
pub use stats::GraphStats;
