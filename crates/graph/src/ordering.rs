//! Vertex relabelings: degree ordering and the LOTUS hub-first ordering.
//!
//! The Forward algorithm relabels vertices by descending degree (§2.2);
//! LOTUS instead assigns the first consecutive IDs to the top fraction of
//! vertices by degree (10% by default, §4.3.1) and keeps all remaining
//! vertices in their *original* relative order, preserving whatever spatial
//! locality the input ordering had — a known artefact destroyed by full
//! degree ordering.

use rayon::prelude::*;

use crate::csr::UndirectedCsr;
use crate::edge_list::EdgeList;
use crate::ids::VertexId;

/// A bijective vertex relabeling with both directions materialized.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Relabeling {
    /// `new_id[old] = new`.
    old_to_new: Vec<VertexId>,
    /// `old_id[new] = old`.
    new_to_old: Vec<VertexId>,
}

impl Relabeling {
    /// The identity relabeling on `n` vertices.
    pub fn identity(n: u32) -> Self {
        let ids: Vec<VertexId> = (0..n).collect();
        Self {
            old_to_new: ids.clone(),
            new_to_old: ids,
        }
    }

    /// Builds from an `old → new` map.
    ///
    /// # Panics
    /// Panics if the map is not a permutation of `0..n`.
    pub fn from_old_to_new(old_to_new: Vec<VertexId>) -> Self {
        let n = old_to_new.len();
        let mut new_to_old = vec![u32::MAX; n];
        for (old, &new) in old_to_new.iter().enumerate() {
            assert!((new as usize) < n, "new ID {new} out of range");
            assert_eq!(new_to_old[new as usize], u32::MAX, "duplicate new ID {new}");
            new_to_old[new as usize] = old as u32;
        }
        Self {
            old_to_new,
            new_to_old,
        }
    }

    /// Full degree-descending relabeling (ties by original ID), as used by
    /// the baseline Forward algorithm.
    pub fn degree_descending(degrees: &[u32]) -> Self {
        let mut order: Vec<VertexId> = (0..degrees.len() as u32).collect();
        order.par_sort_unstable_by(|&a, &b| {
            degrees[b as usize]
                .cmp(&degrees[a as usize])
                .then_with(|| a.cmp(&b))
        });
        let mut old_to_new = vec![0u32; degrees.len()];
        for (new, &old) in order.iter().enumerate() {
            old_to_new[old as usize] = new as u32;
        }
        Self {
            old_to_new,
            new_to_old: order,
        }
    }

    /// LOTUS hub-first relabeling (§4.3.1, `create_relabeling_array`):
    /// the `head_count` highest-degree vertices receive the first
    /// consecutive IDs (sorted by descending degree), and all remaining
    /// vertices keep their original relative order.
    pub fn hub_first(degrees: &[u32], head_count: usize) -> Self {
        let n = degrees.len();
        let head_count = head_count.min(n);
        let head = crate::degree::top_k_by_degree(degrees, head_count);

        let mut is_head = vec![false; n];
        for &v in &head {
            is_head[v as usize] = true;
        }

        let mut old_to_new = vec![0u32; n];
        for (new, &old) in head.iter().enumerate() {
            old_to_new[old as usize] = new as u32;
        }
        let mut next = head_count as u32;
        for old in 0..n {
            if !is_head[old] {
                old_to_new[old] = next;
                next += 1;
            }
        }
        Self::from_old_to_new(old_to_new)
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.old_to_new.len()
    }

    /// Whether the relabeling covers zero vertices.
    pub fn is_empty(&self) -> bool {
        self.old_to_new.is_empty()
    }

    /// Maps an original ID to its new ID.
    #[inline(always)]
    pub fn new_id(&self, old: VertexId) -> VertexId {
        self.old_to_new[old as usize]
    }

    /// Maps a new ID back to the original ID.
    #[inline(always)]
    pub fn old_id(&self, new: VertexId) -> VertexId {
        self.new_to_old[new as usize]
    }

    /// The full `old → new` array (indexed by original ID), as returned by
    /// the paper's `create_relabeling_array()`.
    pub fn old_to_new(&self) -> &[VertexId] {
        &self.old_to_new
    }

    /// The inverse `new → old` array.
    pub fn new_to_old(&self) -> &[VertexId] {
        &self.new_to_old
    }

    /// Applies the relabeling to a graph, rebuilding CSX with sorted lists.
    pub fn apply(&self, graph: &UndirectedCsr) -> UndirectedCsr {
        assert_eq!(self.len(), graph.num_vertices() as usize);
        #[cfg(feature = "validate")]
        debug_assert!(
            self.is_permutation(),
            "relabeling must be a bijective permutation"
        );
        let mut pairs: Vec<(u32, u32)> = Vec::with_capacity(graph.num_edges() as usize);
        for v in 0..graph.num_vertices() {
            let nv = self.new_id(v);
            for &u in graph.upper_neighbors(v) {
                let nu = self.new_id(u);
                pairs.push((nv.min(nu), nv.max(nu)));
            }
        }
        let mut el = EdgeList::from_pairs_with_vertices(pairs, graph.num_vertices());
        el.canonicalize();
        UndirectedCsr::from_canonical_edges(&el)
    }

    /// Verifies the permutation property (used by tests and debug checks).
    pub fn is_permutation(&self) -> bool {
        self.old_to_new.len() == self.new_to_old.len()
            && self
                .old_to_new
                .iter()
                .enumerate()
                .all(|(old, &new)| self.new_to_old[new as usize] == old as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example_graph() -> UndirectedCsr {
        // Degrees: v0=3, v1=2, v2=2, v3=1; star-ish.
        let mut el = EdgeList::from_pairs(vec![(0, 1), (0, 2), (0, 3), (1, 2)]);
        el.canonicalize();
        UndirectedCsr::from_canonical_edges(&el)
    }

    #[test]
    fn identity_maps_to_self() {
        let r = Relabeling::identity(4);
        assert!(r.is_permutation());
        for v in 0..4 {
            assert_eq!(r.new_id(v), v);
            assert_eq!(r.old_id(v), v);
        }
    }

    #[test]
    fn degree_descending_orders_by_degree() {
        let g = example_graph();
        let r = Relabeling::degree_descending(&g.degrees());
        assert!(r.is_permutation());
        assert_eq!(r.new_id(0), 0); // highest degree
        assert_eq!(r.new_id(3), 3); // lowest degree
                                    // v1 and v2 tie at degree 2; lower original ID first.
        assert_eq!(r.new_id(1), 1);
        assert_eq!(r.new_id(2), 2);
    }

    #[test]
    fn hub_first_keeps_tail_in_original_order() {
        // Degrees: 1, 5, 1, 4, 1 → head (2) = [1, 3]; tail keeps order 0, 2, 4.
        let degrees = vec![1, 5, 1, 4, 1];
        let r = Relabeling::hub_first(&degrees, 2);
        assert!(r.is_permutation());
        assert_eq!(r.new_id(1), 0);
        assert_eq!(r.new_id(3), 1);
        assert_eq!(r.new_id(0), 2);
        assert_eq!(r.new_id(2), 3);
        assert_eq!(r.new_id(4), 4);
    }

    #[test]
    fn hub_first_head_larger_than_graph() {
        let degrees = vec![2, 1];
        let r = Relabeling::hub_first(&degrees, 10);
        assert!(r.is_permutation());
        assert_eq!(r.new_id(0), 0);
    }

    #[test]
    fn apply_preserves_structure() {
        let g = example_graph();
        let r = Relabeling::degree_descending(&g.degrees());
        let h = r.apply(&g);
        assert_eq!(h.num_edges(), g.num_edges());
        assert_eq!(h.num_vertices(), g.num_vertices());
        // Adjacency is preserved under the mapping.
        for v in 0..g.num_vertices() {
            for &u in g.neighbors(v) {
                assert!(h.has_edge(r.new_id(v), r.new_id(u)));
            }
        }
    }

    #[test]
    #[should_panic]
    fn from_old_to_new_rejects_duplicates() {
        let _ = Relabeling::from_old_to_new(vec![0, 0, 1]);
    }

    #[test]
    fn round_trip_ids() {
        let degrees = vec![4, 2, 7, 1, 3, 3];
        let r = Relabeling::hub_first(&degrees, 3);
        for v in 0..degrees.len() as u32 {
            assert_eq!(r.old_id(r.new_id(v)), v);
        }
    }
}
