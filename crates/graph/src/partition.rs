//! Edge-balanced range partitioning.
//!
//! The paper's Table 9 compares LOTUS's squared edge tiling against
//! *edge-balanced* partitioning (as used by GraphGrind and Polymer), which
//! cuts the vertex range into contiguous chunks containing roughly equal
//! numbers of edges. The squared-edge-tiling side lives in `lotus-core`
//! (it needs the HE sub-graph); the classical edge-balanced scheme lives
//! here because it only needs CSR offsets.

use crate::csr::Csr;
use crate::ids::{NeighborId, VertexId};

/// A contiguous vertex range `[start, end)` produced by a partitioner.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VertexRange {
    /// First vertex of the range.
    pub start: VertexId,
    /// One past the last vertex.
    pub end: VertexId,
}

impl VertexRange {
    /// Number of vertices in the range.
    pub fn len(&self) -> u32 {
        self.end - self.start
    }

    /// Whether the range is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Iterates the vertices of the range.
    pub fn iter(&self) -> impl Iterator<Item = VertexId> {
        self.start..self.end
    }
}

/// Splits `0..num_vertices` into `parts` contiguous ranges with roughly
/// equal numbers of CSR entries (edges) per range.
///
/// Boundaries are found by binary search on the offset array, so a single
/// ultra-high-degree vertex can still make one range heavy — exactly the
/// imbalance Table 9 demonstrates and squared edge tiling fixes.
pub fn edge_balanced<N: NeighborId>(csr: &Csr<N>, parts: usize) -> Vec<VertexRange> {
    assert!(parts > 0, "need at least one partition");
    let n = csr.num_vertices();
    let offsets = csr.offsets();
    let total = csr.num_entries();
    let mut ranges = Vec::with_capacity(parts);
    let mut start = 0u32;
    for p in 1..=parts {
        let target = total * p as u64 / parts as u64;
        // First vertex whose end offset reaches the target.
        let end = if p == parts {
            n
        } else {
            let idx = offsets.partition_point(|&o| o < target);
            (idx.saturating_sub(1) as u32).clamp(start, n)
        };
        ranges.push(VertexRange { start, end });
        start = end;
    }
    ranges
}

/// Splits `0..n` into `parts` contiguous ranges with equal vertex counts
/// (the naive scheme; useful as a load-balance strawman).
pub fn vertex_balanced(n: u32, parts: usize) -> Vec<VertexRange> {
    assert!(parts > 0, "need at least one partition");
    let mut ranges = Vec::with_capacity(parts);
    let mut start = 0u64;
    for p in 1..=parts {
        let end = n as u64 * p as u64 / parts as u64;
        ranges.push(VertexRange {
            start: start as u32,
            end: end as u32,
        });
        start = end;
    }
    ranges
}

/// Sum of CSR entries covered by a range.
pub fn range_edges<N: NeighborId>(csr: &Csr<N>, r: VertexRange) -> u64 {
    csr.offsets()[r.end as usize] - csr.offsets()[r.start as usize]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::graph_from_edges;

    fn path_graph(n: u32) -> Csr<u32> {
        graph_from_edges((0..n - 1).map(|v| (v, v + 1))).forward_graph()
    }

    #[test]
    fn ranges_cover_all_vertices_exactly_once() {
        let csr = path_graph(100);
        for parts in [1, 2, 3, 7, 100, 200] {
            let ranges = edge_balanced(&csr, parts);
            assert_eq!(ranges.len(), parts);
            assert_eq!(ranges[0].start, 0);
            assert_eq!(ranges.last().unwrap().end, 100);
            for w in ranges.windows(2) {
                assert_eq!(w[0].end, w[1].start);
            }
        }
    }

    #[test]
    fn edge_balanced_is_roughly_even_on_uniform_graph() {
        let csr = path_graph(1000);
        let ranges = edge_balanced(&csr, 4);
        let total = csr.num_entries();
        for r in &ranges {
            let e = range_edges(&csr, *r);
            assert!((e as i64 - (total / 4) as i64).abs() <= 2, "uneven: {e}");
        }
    }

    #[test]
    fn vertex_balanced_covers_range() {
        let ranges = vertex_balanced(10, 3);
        assert_eq!(ranges.iter().map(super::VertexRange::len).sum::<u32>(), 10);
        assert_eq!(ranges[0].start, 0);
        assert_eq!(ranges.last().unwrap().end, 10);
    }

    #[test]
    fn single_partition_is_whole_graph() {
        let csr = path_graph(10);
        let ranges = edge_balanced(&csr, 1);
        assert_eq!(ranges, vec![VertexRange { start: 0, end: 10 }]);
    }

    #[test]
    fn empty_graph_partitions() {
        let csr = Csr::<u32>::empty(0);
        let ranges = edge_balanced(&csr, 3);
        assert_eq!(ranges.len(), 3);
        assert!(ranges.iter().all(super::VertexRange::is_empty));
    }

    #[test]
    fn more_parts_than_vertices() {
        // parts > n must still return exactly `parts` ranges covering
        // 0..n exactly once; the surplus ranges come out empty.
        let csr = path_graph(5);
        for parts in [6, 17, 64] {
            let ranges = edge_balanced(&csr, parts);
            assert_eq!(ranges.len(), parts);
            assert_eq!(ranges[0].start, 0);
            assert_eq!(ranges.last().unwrap().end, 5);
            for w in ranges.windows(2) {
                assert_eq!(w[0].end, w[1].start);
            }
            let covered: u32 = ranges.iter().map(VertexRange::len).sum();
            assert_eq!(covered, 5);
            assert!(ranges.iter().filter(|r| r.is_empty()).count() >= parts - 5);
        }
    }

    #[test]
    fn single_giant_degree_hub() {
        // Star graph: vertex 0 adjacent to everyone. The forward graph
        // puts every edge in the non-hub columns (each v > 0 lists 0),
        // so edge-balanced splitting can still spread the load; the
        // invariants (exact cover, monotone bounds) must hold even when
        // one vertex carries all the degree in the symmetric view.
        let star = graph_from_edges((1..1000u32).map(|v| (0, v)));
        let fwd = star.forward_graph();
        for parts in [2, 3, 7] {
            let ranges = edge_balanced(&fwd, parts);
            assert_eq!(ranges.len(), parts);
            assert_eq!(ranges[0].start, 0);
            assert_eq!(ranges.last().unwrap().end, 1000);
            for w in ranges.windows(2) {
                assert_eq!(w[0].end, w[1].start);
            }
            let total: u64 = ranges.iter().map(|r| range_edges(&fwd, *r)).sum();
            assert_eq!(total, fwd.num_entries());
        }
        // Hub-heavy symmetric CSR: all mass on column 0. The first range
        // absorbs the hub; later ranges stay valid (possibly empty).
        let sym = star.csr();
        let ranges = edge_balanced(sym, 4);
        assert_eq!(ranges.len(), 4);
        assert_eq!(ranges[0].start, 0);
        assert_eq!(ranges.last().unwrap().end, 1000);
        let total: u64 = ranges.iter().map(|r| range_edges(sym, *r)).sum();
        assert_eq!(total, sym.num_entries());
    }

    #[test]
    fn range_helpers() {
        let r = VertexRange { start: 3, end: 7 };
        assert_eq!(r.len(), 4);
        assert!(!r.is_empty());
        assert_eq!(r.iter().collect::<Vec<_>>(), vec![3, 4, 5, 6]);
    }
}
