//! Shard subgraph extraction for distributed triangle counting.
//!
//! The cluster tier (DESIGN.md §16) splits a graph across shard daemons
//! by contiguous vertex range ([`crate::partition::edge_balanced`]) over
//! the *forward-oriented* graph, where every vertex keeps only its
//! lower-ID neighbours ([`crate::UndirectedCsr::forward_graph`]).
//!
//! Under that orientation each triangle `a < b < c` appears exactly once
//! as the wedge closed at its **maximum** vertex `c` (the *apex*): the
//! forward lists of `c` contain `a` and `b`, and `b`'s forward list
//! contains `a`. A shard that owns the vertex range `[s, e)` therefore
//! owns exactly the triangles whose apex lies in `[s, e)` — a partition
//! of the triangle set, so summing per-shard counts is exact, with no
//! double counting and no missed cross-shard triangles.
//!
//! To close its wedges a shard needs, besides the forward columns of its
//! owned vertices, the forward columns of every vertex that *appears* in
//! an owned column (the *ghost* columns). Ghosts are always at lower
//! vertex IDs than the owned range. Counting on the subgraph must remain
//! **apex-restricted** (only apexes in the owned range): a plain triangle
//! count over the subgraph would also count ghost-only triangles, which
//! belong to other shards.

use crate::csr::Csr;
use crate::ids::VertexId;
use crate::partition::VertexRange;

/// A shard's slice of a forward-oriented graph: the owned vertex range,
/// the owned forward columns, and the ghost columns needed to close
/// wedges whose apex is owned.
///
/// Stored as a full-width CSR (offsets over all `n + 1` vertices, empty
/// columns for vertices the shard does not need) so neighbour lookups
/// stay O(1) and vertex IDs stay global. The offsets array is O(n) per
/// shard; the neighbour payload — the part that dominates at scale — is
/// proportional to the owned partition plus its ghost fringe.
#[derive(Debug, Clone)]
pub struct ShardSubgraph {
    owned: VertexRange,
    csr: Csr<u32>,
    ghost_columns: u32,
    ghost_entries: u64,
}

impl ShardSubgraph {
    /// Extracts the shard subgraph for `owned` from a forward-oriented
    /// graph (each vertex's list holds only lower-ID neighbours, sorted).
    ///
    /// # Panics
    /// Panics if `owned` does not lie within `0..forward.num_vertices()`.
    pub fn extract(forward: &Csr<u32>, owned: VertexRange) -> Self {
        let n = forward.num_vertices();
        assert!(
            owned.start <= owned.end && owned.end <= n,
            "owned range {}..{} out of bounds for {n} vertices",
            owned.start,
            owned.end,
        );
        // Mark ghost columns: every vertex referenced from an owned column.
        let mut ghost = vec![false; n as usize];
        for v in owned.iter() {
            for &u in forward.neighbors(v) {
                ghost[u as usize] = true;
            }
        }
        // Owned columns are copied wholesale; a vertex that is both owned
        // and referenced counts as owned, not ghost.
        let mut ghost_columns = 0u32;
        let mut ghost_entries = 0u64;
        let mut offsets = Vec::with_capacity(n as usize + 1);
        offsets.push(0u64);
        let mut acc = 0u64;
        for v in 0..n {
            let keep_owned = v >= owned.start && v < owned.end;
            let keep_ghost = !keep_owned && ghost[v as usize];
            if keep_owned || keep_ghost {
                let deg = forward.neighbors(v).len() as u64;
                acc += deg;
                if keep_ghost {
                    ghost_columns += 1;
                    ghost_entries += deg;
                }
            }
            offsets.push(acc);
        }
        let mut neighbors = Vec::with_capacity(acc as usize);
        for v in 0..n {
            let keep = (v >= owned.start && v < owned.end) || ghost[v as usize];
            if keep {
                neighbors.extend_from_slice(forward.neighbors(v));
            }
        }
        Self {
            owned,
            csr: Csr::from_parts(offsets, neighbors),
            ghost_columns,
            ghost_entries,
        }
    }

    /// The vertex range whose apex triangles this shard owns.
    pub fn owned(&self) -> VertexRange {
        self.owned
    }

    /// Total vertex-ID space of the original graph.
    pub fn num_vertices(&self) -> u32 {
        self.csr.num_vertices()
    }

    /// Forward entries stored (owned plus ghost columns).
    pub fn num_entries(&self) -> u64 {
        self.csr.num_entries()
    }

    /// Number of ghost (non-owned, referenced) columns retained.
    pub fn ghost_columns(&self) -> u32 {
        self.ghost_columns
    }

    /// Forward entries held in ghost columns.
    pub fn ghost_entries(&self) -> u64 {
        self.ghost_entries
    }

    /// Approximate resident bytes of the subgraph topology.
    pub fn topology_bytes(&self) -> u64 {
        self.csr.topology_bytes()
    }

    /// Counts the triangles owned by this shard: those whose apex
    /// (maximum vertex) lies in the owned range. Summing this across an
    /// exact partition of `0..n` yields the graph's triangle count.
    pub fn count_owned_triangles(&self) -> u64 {
        let mut total = 0u64;
        for v in self.owned.iter() {
            let fwd_v = self.csr.neighbors(v);
            for &u in fwd_v {
                total += sorted_intersection_len(fwd_v, self.csr.neighbors(u));
            }
        }
        total
    }

    /// Accumulates per-vertex triangle participation for vertices in
    /// `window`, restricted to triangles owned by this shard. Each owned
    /// triangle `(w, u, v)` contributes `+1` to each of its three
    /// corners that fall inside the window. Element-wise sums of these
    /// windows across an exact partition equal the single-node
    /// per-vertex counts.
    ///
    /// Returns a `window.len()`-sized vector indexed by `vertex - window.start`.
    pub fn per_vertex_owned(&self, window: VertexRange) -> Vec<u64> {
        let mut counts = vec![0u64; window.len() as usize];
        let mut bump = |x: VertexId| {
            if x >= window.start && x < window.end {
                counts[(x - window.start) as usize] += 1;
            }
        };
        for v in self.owned.iter() {
            let fwd_v = self.csr.neighbors(v);
            for &u in fwd_v {
                for w in sorted_intersection(fwd_v, self.csr.neighbors(u)) {
                    bump(w);
                    bump(u);
                    bump(v);
                }
            }
        }
        counts
    }
}

/// Length of the intersection of two sorted ascending slices.
fn sorted_intersection_len(a: &[u32], b: &[u32]) -> u64 {
    let mut count = 0u64;
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            core::cmp::Ordering::Less => i += 1,
            core::cmp::Ordering::Greater => j += 1,
            core::cmp::Ordering::Equal => {
                count += 1;
                i += 1;
                j += 1;
            }
        }
    }
    count
}

/// Iterates the intersection of two sorted ascending slices.
fn sorted_intersection<'a>(a: &'a [u32], b: &'a [u32]) -> impl Iterator<Item = u32> + 'a {
    let mut i = 0usize;
    let mut j = 0usize;
    core::iter::from_fn(move || {
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                core::cmp::Ordering::Less => i += 1,
                core::cmp::Ordering::Greater => j += 1,
                core::cmp::Ordering::Equal => {
                    let v = a[i];
                    i += 1;
                    j += 1;
                    return Some(v);
                }
            }
        }
        None
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::graph_from_edges;
    use crate::partition::edge_balanced;
    use crate::UndirectedCsr;

    /// Single-node reference: forward count over the whole graph.
    fn reference_count(g: &UndirectedCsr) -> u64 {
        let fwd = g.forward_graph();
        let whole = VertexRange {
            start: 0,
            end: g.num_vertices(),
        };
        ShardSubgraph::extract(&fwd, whole).count_owned_triangles()
    }

    fn reference_per_vertex(g: &UndirectedCsr) -> Vec<u64> {
        let fwd = g.forward_graph();
        let whole = VertexRange {
            start: 0,
            end: g.num_vertices(),
        };
        ShardSubgraph::extract(&fwd, whole).per_vertex_owned(whole)
    }

    fn pseudo_random_graph(n: u32, m: usize, seed: u64) -> UndirectedCsr {
        // splitmix64-driven pair sampling; deterministic, self-contained.
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        let edges = (0..m)
            .map(|_| ((next() % n as u64) as u32, (next() % n as u64) as u32))
            .filter(|(a, b)| a != b);
        graph_from_edges(edges)
    }

    #[test]
    fn sharded_count_matches_reference_across_partitions() {
        let g = pseudo_random_graph(300, 2500, 7);
        let expected = reference_count(&g);
        assert!(expected > 0, "test graph should contain triangles");
        let fwd = g.forward_graph();
        for parts in [1, 2, 3, 5, 8, 300] {
            let total: u64 = edge_balanced(&fwd, parts)
                .into_iter()
                .map(|r| ShardSubgraph::extract(&fwd, r).count_owned_triangles())
                .sum();
            assert_eq!(total, expected, "parts={parts}");
        }
    }

    #[test]
    fn sharded_per_vertex_matches_reference() {
        let g = pseudo_random_graph(120, 900, 11);
        let expected = reference_per_vertex(&g);
        let fwd = g.forward_graph();
        let window = VertexRange {
            start: 0,
            end: g.num_vertices(),
        };
        let mut summed = vec![0u64; window.len() as usize];
        for r in edge_balanced(&fwd, 4) {
            let shard = ShardSubgraph::extract(&fwd, r);
            for (acc, c) in summed.iter_mut().zip(shard.per_vertex_owned(window)) {
                *acc += c;
            }
        }
        assert_eq!(summed, expected);
    }

    #[test]
    fn per_vertex_window_subset() {
        let g = pseudo_random_graph(80, 600, 3);
        let full = reference_per_vertex(&g);
        let fwd = g.forward_graph();
        let window = VertexRange { start: 20, end: 50 };
        let mut summed = vec![0u64; window.len() as usize];
        for r in edge_balanced(&fwd, 3) {
            let shard = ShardSubgraph::extract(&fwd, r);
            for (acc, c) in summed.iter_mut().zip(shard.per_vertex_owned(window)) {
                *acc += c;
            }
        }
        assert_eq!(summed.as_slice(), &full[20..50]);
    }

    #[test]
    fn ghost_only_triangles_are_not_counted() {
        // Triangle 0-1-2 entirely below the owned range; shard owning
        // [3, 4) sees vertex 3 attached to all of 0,1,2 — its subgraph
        // contains the ghost triangle, but apex restriction skips it.
        let g = graph_from_edges([(0, 1), (0, 2), (1, 2), (3, 0), (3, 1), (3, 2)]);
        let fwd = g.forward_graph();
        let shard = ShardSubgraph::extract(&fwd, VertexRange { start: 3, end: 4 });
        // Shard 3 owns the triangles with apex 3: (0,1,3), (0,2,3), (1,2,3).
        assert_eq!(shard.count_owned_triangles(), 3);
        let lower = ShardSubgraph::extract(&fwd, VertexRange { start: 0, end: 3 });
        assert_eq!(lower.count_owned_triangles(), 1);
        assert_eq!(reference_count(&g), 4);
    }

    #[test]
    fn ghost_accounting_and_empty_ranges() {
        let g = graph_from_edges([(0, 1), (0, 2), (1, 2), (2, 3)]);
        let fwd = g.forward_graph();
        let shard = ShardSubgraph::extract(&fwd, VertexRange { start: 2, end: 4 });
        // Columns 2 and 3 are owned; their lists reference 0 and 1 but
        // only column 1 is non-empty as a ghost ({0}); column 0 is empty.
        assert_eq!(shard.owned().len(), 2);
        assert!(shard.ghost_columns() >= 1);
        assert_eq!(shard.count_owned_triangles(), 1);
        let empty = ShardSubgraph::extract(&fwd, VertexRange { start: 1, end: 1 });
        assert_eq!(empty.count_owned_triangles(), 0);
        assert_eq!(empty.num_entries(), 0);
    }
}
