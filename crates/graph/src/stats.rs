//! One-line summary of a graph, for dataset tables and logging.

use crate::csr::UndirectedCsr;
use crate::degree::DegreeStats;

/// Compact summary used by dataset tables (paper Table 4).
#[derive(Debug, Clone, PartialEq)]
pub struct GraphStats {
    /// Number of vertices.
    pub num_vertices: u32,
    /// Number of undirected edges.
    pub num_edges: u64,
    /// Maximum degree.
    pub max_degree: u32,
    /// Mean degree.
    pub mean_degree: f64,
    /// Median degree.
    pub median_degree: u32,
    /// Skewness indicator: mean / max(median, 1).
    pub skew_ratio: f64,
}

impl GraphStats {
    /// Computes the summary for a graph.
    pub fn of(graph: &UndirectedCsr) -> Self {
        let d = DegreeStats::of(graph);
        Self {
            num_vertices: d.num_vertices,
            num_edges: d.num_edges,
            max_degree: d.max_degree,
            mean_degree: d.mean_degree,
            median_degree: d.median_degree,
            skew_ratio: d.mean_degree / d.median_degree.max(1) as f64,
        }
    }
}

impl std::fmt::Display for GraphStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "|V|={} |E|={} d_max={} d_avg={:.2} d_med={} skew={:.2}",
            self.num_vertices,
            self.num_edges,
            self.max_degree,
            self.mean_degree,
            self.median_degree,
            self.skew_ratio
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::graph_from_edges;

    #[test]
    fn summary_of_star() {
        let g = graph_from_edges((1..9).map(|v| (0, v)));
        let s = GraphStats::of(&g);
        assert_eq!(s.num_vertices, 9);
        assert_eq!(s.num_edges, 8);
        assert_eq!(s.max_degree, 8);
        assert_eq!(s.median_degree, 1);
        assert!(s.skew_ratio > 1.5);
        let line = s.to_string();
        assert!(line.contains("|V|=9"));
        assert!(line.contains("d_max=8"));
    }
}
