//! Delta-varint compressed neighbour lists.
//!
//! §3.2 of the paper frames TC's locality problem through coding theory:
//! representing frequently occurring (hub) IDs with full-width integers is
//! wasteful, but any compression "must not incur runtime overhead to read
//! graph topology data". This module provides the classic WebGraph-style
//! gap + LEB128 varint encoding as the *comparison point*: it is the most
//! compact general representation, but decoding costs instructions per
//! edge. LOTUS's answer — fixed 16-bit IDs for the hub sub-graph — is
//! cheaper to read; the `representation` ablation quantifies the gap.

use crate::csr::Csr;
use crate::ids::VertexId;

/// Gap-compressed adjacency: each sorted neighbour list is stored as
/// LEB128 varints of successive deltas (first entry stored as-is).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VarintCsr {
    offsets: Vec<u64>,
    data: Vec<u8>,
    num_entries: u64,
}

/// Appends `value` as LEB128.
#[inline]
fn push_varint(data: &mut Vec<u8>, mut value: u32) {
    loop {
        let byte = (value & 0x7F) as u8;
        value >>= 7;
        if value == 0 {
            data.push(byte);
            break;
        }
        data.push(byte | 0x80);
    }
}

/// Reads one LEB128 value, returning `(value, bytes_consumed)`.
#[inline]
fn read_varint(data: &[u8]) -> (u32, usize) {
    let mut value = 0u32;
    let mut shift = 0u32;
    for (i, &byte) in data.iter().enumerate() {
        value |= ((byte & 0x7F) as u32) << shift;
        if byte & 0x80 == 0 {
            return (value, i + 1);
        }
        shift += 7;
    }
    // In-crate encoders always terminate every sequence, so a truncated
    // buffer is unreachable; saturate rather than abort the count.
    debug_assert!(false, "truncated varint");
    (value, data.len().max(1))
}

impl VarintCsr {
    /// Compresses a CSR with sorted `u32` neighbour lists.
    pub fn from_csr(csr: &Csr<u32>) -> Self {
        debug_assert!(csr.lists_sorted(), "varint encoding requires sorted lists");
        let mut offsets = Vec::with_capacity(csr.num_vertices() as usize + 1);
        let mut data = Vec::new();
        offsets.push(0u64);
        for v in 0..csr.num_vertices() {
            let mut prev = 0u32;
            for (i, &u) in csr.neighbors(v).iter().enumerate() {
                let delta = if i == 0 { u } else { u - prev };
                push_varint(&mut data, delta);
                prev = u;
            }
            offsets.push(data.len() as u64);
        }
        Self {
            offsets,
            data,
            num_entries: csr.num_entries(),
        }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> u32 {
        (self.offsets.len() - 1) as u32
    }

    /// Number of encoded neighbour entries.
    pub fn num_entries(&self) -> u64 {
        self.num_entries
    }

    /// Total bytes: 8-byte index entries plus the byte stream (the same
    /// accounting as [`Csr::topology_bytes`]).
    pub fn topology_bytes(&self) -> u64 {
        8 * (self.offsets.len() as u64) + self.data.len() as u64
    }

    /// Decodes the list of `v` into `out` (cleared first).
    pub fn decode_into(&self, v: VertexId, out: &mut Vec<u32>) {
        out.clear();
        let mut slice =
            &self.data[self.offsets[v as usize] as usize..self.offsets[v as usize + 1] as usize];
        let mut prev = 0u32;
        let mut first = true;
        while !slice.is_empty() {
            let (delta, used) = read_varint(slice);
            slice = &slice[used..];
            prev = if first { delta } else { prev + delta };
            first = false;
            out.push(prev);
        }
    }

    /// Streaming iterator over the list of `v` (no allocation).
    pub fn neighbors(&self, v: VertexId) -> VarintIter<'_> {
        VarintIter {
            slice: &self.data
                [self.offsets[v as usize] as usize..self.offsets[v as usize + 1] as usize],
            prev: 0,
            first: true,
        }
    }
}

/// Streaming decoder over one compressed list.
#[derive(Debug, Clone)]
pub struct VarintIter<'a> {
    slice: &'a [u8],
    prev: u32,
    first: bool,
}

impl Iterator for VarintIter<'_> {
    type Item = u32;

    #[inline]
    fn next(&mut self) -> Option<u32> {
        if self.slice.is_empty() {
            return None;
        }
        let (delta, used) = read_varint(self.slice);
        self.slice = &self.slice[used..];
        self.prev = if self.first { delta } else { self.prev + delta };
        self.first = false;
        Some(self.prev)
    }
}

/// Counts `|a ∩ b|` where `b` is decoded on the fly — the merge-join used
/// by the representation ablation to measure varint traversal overhead.
pub fn count_merge_varint(a: &[u32], mut b: VarintIter<'_>) -> u64 {
    let mut count = 0u64;
    let mut i = 0usize;
    let Some(mut y) = b.next() else { return 0 };
    while i < a.len() {
        let x = a[i];
        if x < y {
            i += 1;
        } else if y < x {
            match b.next() {
                Some(next) => y = next,
                None => break,
            }
        } else {
            count += 1;
            i += 1;
            match b.next() {
                Some(next) => y = next,
                None => break,
            }
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::graph_from_edges;

    #[test]
    fn varint_codec_round_trip() {
        let mut data = Vec::new();
        for v in [0u32, 1, 127, 128, 300, 16_383, 16_384, u32::MAX] {
            data.clear();
            push_varint(&mut data, v);
            let (back, used) = read_varint(&data);
            assert_eq!(back, v);
            assert_eq!(used, data.len());
        }
    }

    #[test]
    fn csr_round_trip() {
        let g = lotus_graph_for_test();
        let fwd = g.forward_graph();
        let vc = VarintCsr::from_csr(&fwd);
        assert_eq!(vc.num_entries(), fwd.num_entries());
        let mut buf = Vec::new();
        for v in 0..fwd.num_vertices() {
            vc.decode_into(v, &mut buf);
            assert_eq!(buf.as_slice(), fwd.neighbors(v), "vertex {v}");
            let streamed: Vec<u32> = vc.neighbors(v).collect();
            assert_eq!(streamed.as_slice(), fwd.neighbors(v));
        }
    }

    #[test]
    fn compression_shrinks_clustered_lists() {
        // Consecutive IDs compress to ~1 byte/edge vs 4 in CSR.
        let g = graph_from_edges(
            (0..2000u32)
                .flat_map(|v| (1..4u32).filter_map(move |d| (v + d < 2000).then_some((v, v + d)))),
        );
        let fwd = g.forward_graph();
        let vc = VarintCsr::from_csr(&fwd);
        assert!(
            vc.topology_bytes() < fwd.topology_bytes(),
            "varint {} vs csr {}",
            vc.topology_bytes(),
            fwd.topology_bytes()
        );
    }

    #[test]
    fn merge_varint_counts_correctly() {
        let g = lotus_graph_for_test();
        let fwd = g.forward_graph();
        let vc = VarintCsr::from_csr(&fwd);
        for v in 0..fwd.num_vertices() {
            let nv = fwd.neighbors(v);
            for &u in nv {
                let direct = crate::csr::Csr::neighbors(&fwd, u);
                let want = nv.iter().filter(|x| direct.contains(x)).count() as u64;
                assert_eq!(count_merge_varint(nv, vc.neighbors(u)), want);
            }
        }
    }

    #[test]
    fn empty_lists() {
        let g = graph_from_edges([(0, 5)]);
        let vc = VarintCsr::from_csr(&g.forward_graph());
        assert_eq!(vc.neighbors(0).count(), 0);
        assert_eq!(vc.neighbors(5).count(), 1);
    }

    fn lotus_graph_for_test() -> crate::csr::UndirectedCsr {
        graph_from_edges([
            (0, 1),
            (0, 2),
            (0, 300),
            (1, 2),
            (1, 300),
            (2, 3),
            (3, 300),
            (150, 300),
            (150, 151),
        ])
    }
}
